// Ablation (paper future work, Sec. IX): cost-model-driven dynamic
// selection of the compression scheme per message. A mixed workload sends
// one large message of each Table-III dataset; static policies use one
// scheme for everything, the dynamic policy samples each message and picks
// per message. Expected: dynamic matches or beats every static policy.
#include "common.hpp"

#include "core/dynamic.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

sim::Time send_with(const net::ClusterSpec& cluster, core::CompressionConfig cfg,
                    const std::vector<float>& payload) {
  return ping_pong(cluster, cfg, payload).one_way;
}

}  // namespace

int main() {
  const auto cluster = net::longhorn(2, 1);
  const std::size_t n = (8u << 20) / 4;

  print_header("Future-work ablation: dynamic per-message scheme selection (8MB, EDR)");
  std::printf("%-12s | %10s %10s %10s | %-18s %10s\n", "dataset", "none", "MPC-OPT", "ZFP-8",
              "dynamic choice", "dynamic");

  core::DynamicSelector selector(cluster.gpu, cluster.inter.bandwidth_gbs,
                                 /*lossy_allowed=*/true, /*min_zfp_rate=*/8);
  sim::Time tot_none, tot_mpc, tot_zfp, tot_dyn;
  for (const auto& info : data::table3_datasets()) {
    const auto payload = data::generate(info.name, n);
    const sim::Time t_none = send_with(cluster, core::CompressionConfig::off(), payload);
    const sim::Time t_mpc =
        send_with(cluster, core::CompressionConfig::mpc_opt(info.mpc_dimensionality), payload);
    const sim::Time t_zfp = send_with(cluster, core::CompressionConfig::zfp_opt(8), payload);

    const auto decision = selector.choose(payload);
    core::CompressionConfig dyn_cfg = core::CompressionConfig::mpc_opt(info.mpc_dimensionality);
    core::DynamicSelector::apply(decision, dyn_cfg);
    const sim::Time t_dyn = send_with(cluster, dyn_cfg, payload);

    char choice[32];
    if (decision.algorithm == core::Algorithm::ZFP) {
      std::snprintf(choice, sizeof(choice), "ZFP(rate %d)", decision.zfp_rate);
    } else {
      std::snprintf(choice, sizeof(choice), "%s",
                    core::algorithm_name(decision.algorithm));
    }
    std::printf("%-12s | %8.1fus %8.1fus %8.1fus | %-18s %8.1fus\n", info.name,
                t_none.to_us(), t_mpc.to_us(), t_zfp.to_us(), choice, t_dyn.to_us());
    tot_none += t_none;
    tot_mpc += t_mpc;
    tot_zfp += t_zfp;
    tot_dyn += t_dyn;
  }
  std::printf("%-12s | %8.1fus %8.1fus %8.1fus | %-18s %8.1fus\n", "TOTAL", tot_none.to_us(),
              tot_mpc.to_us(), tot_zfp.to_us(), "", tot_dyn.to_us());
  const sim::Time best_static = std::min({tot_none, tot_mpc, tot_zfp});
  std::printf("\nDynamic vs best static policy: %.2fx (>= 1.0 means dynamic wins or ties).\n",
              best_static.to_seconds() / tot_dyn.to_seconds());
  return 0;
}
