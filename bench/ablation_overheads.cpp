// Ablation: isolate each MPC-OPT / ZFP-OPT optimization (Sec. IV-B, V-B)
// by toggling them one at a time on a 4MB inter-node transfer.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

sim::Time mpc_latency(bool pool, bool gdrcopy, bool partitions) {
  auto cfg = core::CompressionConfig::mpc_naive();
  cfg.use_buffer_pool = pool;
  cfg.use_gdrcopy = gdrcopy;
  cfg.multi_stream_partitions = partitions;
  const auto payload = omb_dummy(4u << 20);
  return ping_pong(net::longhorn(2, 1), cfg, payload, false).one_way;
}

sim::Time zfp_latency(bool attr_cache, bool pool) {
  auto cfg = core::CompressionConfig::zfp_naive(16);
  cfg.cache_device_attributes = attr_cache;
  cfg.use_buffer_pool = pool;
  const auto payload = omb_dummy(4u << 20);
  return ping_pong(net::longhorn(2, 1), cfg, payload, attr_cache).one_way;
}

}  // namespace

int main() {
  print_header("Ablation: MPC optimizations one at a time (4MB, Longhorn inter-node)");
  const sim::Time naive = mpc_latency(false, false, false);
  struct Row {
    const char* name;
    sim::Time t;
  };
  const Row rows[] = {
      {"naive (no optimizations)", naive},
      {"+ buffer pool (IV-B 1+2)", mpc_latency(true, false, false)},
      {"+ GDRCopy readback (IV-B 3)", mpc_latency(false, true, false)},
      {"+ multi-stream partitions", mpc_latency(false, false, true)},
      {"MPC-OPT (all)", mpc_latency(true, true, true)},
  };
  std::printf("%-30s %12s %10s\n", "configuration", "latency", "vs naive");
  for (const auto& r : rows) {
    std::printf("%-30s %10.1fus %9.2fx\n", r.name, r.t.to_us(),
                naive.to_seconds() / r.t.to_seconds());
  }

  std::printf("\n");
  print_header("Ablation: ZFP optimizations (4MB, rate 16, Longhorn inter-node)");
  const sim::Time znaive = zfp_latency(false, false);
  const Row zrows[] = {
      {"naive (properties/call)", znaive},
      {"+ cached attribute (V-B)", zfp_latency(true, false)},
      {"+ buffer pool too", zfp_latency(true, true)},
  };
  std::printf("%-30s %12s %10s\n", "configuration", "latency", "vs naive");
  for (const auto& r : zrows) {
    std::printf("%-30s %10.1fus %9.2fx\n", r.name, r.t.to_us(),
                znaive.to_seconds() / r.t.to_seconds());
  }
  std::printf("\nPaper anchors: buffer pool removes the dominant cudaMalloc cost (83.4%% of\n"
              "a 256KB message); GDRCopy cuts the 20us size readback to 1-5us; the cached\n"
              "attribute cuts get_max_grid_dims from ~4000us to ~1us.\n");
  return 0;
}
