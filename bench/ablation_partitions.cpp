// Ablation (Sec. IV-B): the MPC-OPT data-partitioning + multi-stream
// design. Sweeps the partition count for several message sizes and shows
// (1) the kernel-model claim "half the SMs is roughly as fast as the full
// GPU", and (2) the end-to-end latency sweet spot that the tuning table
// encodes.
#include "common.hpp"

#include "compress/kernel_cost.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

sim::Time latency_with_partitions(std::size_t bytes, int partitions) {
  auto cfg = core::CompressionConfig::mpc_opt();
  cfg.partition_table = {{~0ull, partitions}};
  const auto payload = omb_dummy(bytes);
  return ping_pong(net::longhorn(2, 1), cfg, payload).one_way;
}

}  // namespace

int main() {
  print_header("Ablation: MPC kernel time vs thread blocks (Sec. IV-B claim)");
  const comp::KernelCostModel model;
  const auto gpu = gpu::v100_spec();
  std::printf("%8s %12s %12s %12s\n", "blocks", "16MB kernel", "vs 80 blocks", "sync share");
  const sim::Time full = model.mpc_compress(16u << 20, 8u << 20, 80, gpu);
  for (int blocks : {80, 40, 20, 10, 5}) {
    const sim::Time t = model.mpc_compress(16u << 20, 8u << 20, blocks, gpu);
    const double sync_us = 0.35 * blocks;
    std::printf("%8d %10.1fus %11.2fx %10.1fus\n", blocks, t.to_us(),
                t.to_seconds() / full.to_seconds(), sync_us);
  }

  std::printf("\n");
  print_header("Ablation: end-to-end latency vs partition count (Longhorn inter-node)");
  std::printf("%8s %12s %12s %12s %12s | %s\n", "size", "N=1", "N=2", "N=4", "N=8", "best");
  for (std::size_t bytes : {1u << 20, 4u << 20, 16u << 20, 32u << 20}) {
    sim::Time best = sim::Time::seconds(1e9);
    int best_n = 1;
    double us[4];
    int idx = 0;
    for (int n : {1, 2, 4, 8}) {
      const sim::Time t = latency_with_partitions(bytes, n);
      us[idx++] = t.to_us();
      if (t < best) {
        best = t;
        best_n = n;
      }
    }
    std::printf("%8s %10.1fus %10.1fus %10.1fus %10.1fus | N=%d\n", size_label(bytes), us[0],
                us[1], us[2], us[3], best_n);
  }
  std::printf("\nPaper: partition counts are fine-tuned per message size; each kernel uses\n"
              "1/N of the SMs with proportionally lower busy-wait sync overhead (Fig. 7).\n");
  return 0;
}
