// adaptive_control — closed-loop codec selection vs every fixed codec on a
// drifting-compressibility workload.
//
// Rank 0 streams 4 MiB messages to rank 1 over Longhorn (IB-EDR
// inter-node) through three phases: highly compressible (msg_sppm-like),
// incompressible (quantized noise), then compressible again. A fixed codec
// is right for at most one regime; the AdaptiveController re-decides per
// message from live telemetry. The simulation is deterministic, so the
// JSON this writes (BENCH_adaptive.json) is an exact, reproducible
// artifact: CI re-runs the sweep and compares against the committed file
// with a tight threshold.
//
// Usage:
//   adaptive_control [--quick] [--out FILE] [--baseline FILE] [--threshold FRAC]
//
// Exit status is nonzero if (a) any baseline entry regressed beyond the
// threshold, or (b) the PR's acceptance bar fails: adaptive must beat the
// worst fixed codec by >= 10% and stay within 5% of the best.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "mpi/world.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gcmpi;

struct Options {
  bool quick = false;
  std::string out = "BENCH_adaptive.json";
  std::string baseline;
  double threshold = 0.02;  // simulation is deterministic; tiny drift budget
};

struct Row {
  std::string name;  // adaptive/<mode>
  std::string mode;  // fixed_raw | fixed_mpc | fixed_zfp16 | adaptive
  double elapsed_us = 0.0;
  double mbps = 0.0;  // original bytes / simulated elapsed time
  std::uint64_t decisions = 0;
  std::uint64_t probes = 0;
};

constexpr std::size_t kMsgBytes = 4u << 20;
constexpr double kNetworkGbs = 12.5;  // matches the static selector's prior

/// Per-phase payloads: compressible, incompressible, compressible again.
std::vector<std::vector<float>> make_phases() {
  const std::size_t n = kMsgBytes / 4;
  return {data::generate("msg_sppm", n, 42),
          data::quantized_noise(n, 4096, 7),
          data::generate("msg_sppm", n, 43)};
}

/// Stream `iters_per_phase` messages of each phase through the fabric and
/// return the total simulated time.
sim::Time run_stream(const core::CompressionConfig& cfg,
                     adapt::AdaptiveController* controller, core::Telemetry* telemetry,
                     int iters_per_phase) {
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.telemetry = telemetry;
  opts.adaptive = controller;
  if (controller != nullptr && telemetry != nullptr) controller->bind(*telemetry);
  mpi::World world(engine, net::longhorn(2, 1), cfg, opts);

  const auto phases = make_phases();
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(kMsgBytes));
    int tag = 0;
    for (const auto& phase : phases) {
      if (R.rank() == 0) std::memcpy(dev, phase.data(), kMsgBytes);
      for (int i = 0; i < iters_per_phase; ++i, ++tag) {
        if (R.rank() == 0) {
          R.send(dev, kMsgBytes, 1, tag);
        } else {
          R.recv(dev, kMsgBytes, 0, tag);
        }
      }
    }
    R.gpu_free(dev);
  });
  return engine.now();
}

Row run_mode(const std::string& mode, const core::CompressionConfig& cfg,
             bool adaptive, int iters_per_phase) {
  core::Telemetry telemetry;
  adapt::AdaptiveController controller(gpu::v100_spec(), kNetworkGbs);
  const sim::Time elapsed = run_stream(cfg, adaptive ? &controller : nullptr,
                                       &telemetry, iters_per_phase);
  const double total_bytes = 3.0 * iters_per_phase * static_cast<double>(kMsgBytes);
  Row row;
  row.name = "adaptive/" + mode;
  row.mode = mode;
  row.elapsed_us = elapsed.to_seconds() * 1e6;
  row.mbps = total_bytes / elapsed.to_seconds() / 1e6;
  for (const auto& d : telemetry.decisions()) {
    ++row.decisions;
    if (d.probe) ++row.probes;
  }
  return row;
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"gcmpi-bench-adaptive-v1\",\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"units\": {\"mbps\": \"original MB per simulated second, drifting "
        "3-phase stream, Longhorn inter-node\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[384];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"mode\": \"%s\", \"elapsed_us\": %.3f, "
                  "\"mbps\": %.1f, \"decisions\": %llu, \"probes\": %llu}%s\n",
                  r.name.c_str(), r.mode.c_str(), r.elapsed_us, r.mbps,
                  static_cast<unsigned long long>(r.decisions),
                  static_cast<unsigned long long>(r.probes),
                  i + 1 < rows.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  std::ofstream f(opt.out);
  if (!f) {
    std::fprintf(stderr, "adaptive_control: cannot write %s\n", opt.out.c_str());
    std::exit(2);
  }
  f << os.str();
  std::printf("wrote %s (%zu entries)\n", opt.out.c_str(), rows.size());
}

std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "adaptive_control: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::pair<std::string, double>> out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t np = line.find("\"name\": \"");
    const std::size_t mp = line.find("\"mbps\": ");
    if (np == std::string::npos || mp == std::string::npos) continue;
    const std::size_t ns = np + 9;
    const std::size_t ne = line.find('"', ns);
    if (ne == std::string::npos) continue;
    out.emplace_back(line.substr(ns, ne - ns), std::strtod(line.c_str() + mp + 8, nullptr));
  }
  return out;
}

int compare_baseline(const Options& opt, const std::vector<Row>& rows) {
  const auto base = read_baseline(opt.baseline);
  int regressions = 0;
  std::size_t matched = 0;
  for (const Row& r : rows) {
    const auto it = std::find_if(base.begin(), base.end(),
                                 [&](const auto& b) { return b.first == r.name; });
    if (it == base.end()) continue;
    ++matched;
    if (r.mbps < it->second * (1.0 - opt.threshold)) {
      ++regressions;
      std::printf("REGRESSION %-32s %8.1f -> %8.1f MB/s\n", r.name.c_str(), it->second,
                  r.mbps);
    }
  }
  std::printf("baseline: %zu/%zu entries matched, %d regression(s) beyond %.1f%%\n",
              matched, rows.size(), regressions, opt.threshold * 100.0);
  return regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      opt.threshold = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: adaptive_control [--quick] [--out FILE] [--baseline FILE] "
                   "[--threshold FRAC]\n");
      return 2;
    }
  }

  // The sweep is only 4 rows and runs in seconds, so --quick does not
  // shrink it: quick rows stay numerically identical to the committed
  // baseline (the CI gate compares them exactly, modulo --threshold).
  const int iters_per_phase = 24;
  std::printf("adaptive_control: drifting 3-phase stream, %d x 4 MiB per phase, "
              "Longhorn inter-node (IB-EDR)\n",
              iters_per_phase);

  std::vector<Row> rows;
  rows.push_back(run_mode("fixed_raw", core::CompressionConfig::off(), false,
                          iters_per_phase));
  rows.push_back(run_mode("fixed_mpc", core::CompressionConfig::mpc_opt(), false,
                          iters_per_phase));
  rows.push_back(run_mode("fixed_zfp16", core::CompressionConfig::zfp_opt(16), false,
                          iters_per_phase));
  rows.push_back(run_mode("adaptive", core::CompressionConfig::mpc_opt(), true,
                          iters_per_phase));
  for (const Row& r : rows) {
    std::printf("%-28s %12.1f us %9.1f MB/s  decisions=%llu probes=%llu\n",
                r.name.c_str(), r.elapsed_us, r.mbps,
                static_cast<unsigned long long>(r.decisions),
                static_cast<unsigned long long>(r.probes));
  }

  // The PR's acceptance bar on the drifting workload.
  double worst = rows[0].mbps, best = rows[0].mbps;
  for (std::size_t i = 0; i < 3; ++i) {
    worst = std::min(worst, rows[i].mbps);
    best = std::max(best, rows[i].mbps);
  }
  const double adaptive_mbps = rows[3].mbps;
  int gate_failures = 0;
  if (adaptive_mbps < worst * 1.10) {
    ++gate_failures;
    std::printf("GATE FAIL adaptive %.1f MB/s not >= 10%% over worst fixed %.1f MB/s\n",
                adaptive_mbps, worst);
  }
  if (adaptive_mbps < best * 0.95) {
    ++gate_failures;
    std::printf("GATE FAIL adaptive %.1f MB/s not within 5%% of best fixed %.1f MB/s\n",
                adaptive_mbps, best);
  }
  if (gate_failures == 0) {
    std::printf("gates OK: adaptive %.1f MB/s vs fixed [%.1f, %.1f] MB/s\n",
                adaptive_mbps, worst, best);
  }

  write_json(opt, rows);
  int rc = gate_failures == 0 ? 0 : 1;
  if (!opt.baseline.empty()) rc = std::max(rc, compare_baseline(opt, rows));
  return rc;
}
