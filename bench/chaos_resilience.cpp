// Chaos resilience: completion-time cost of wire faults on a pt2pt sweep.
//
// Sweeps packet drop / corruption rates over the Longhorn inter-node link
// and reports, per rate, the end-to-end completion time of a fixed message
// schedule plus the reliability work it took (retransmissions, detected
// corruptions, payload bytes re-sent). The zero-rate row is the baseline:
// with no plan installed the reliability layer is bit- and time-transparent,
// so row 0 doubles as a regression check that chaos support costs nothing
// when idle.
#include "common.hpp"
#include "core/telemetry.hpp"
#include "fault/injector.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

struct ChaosRow {
  Time completion = Time::zero();
  std::uint64_t retransmits = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t drops = 0;
  std::uint64_t data_packets = 0;
};

ChaosRow run_sweep(double drop, double corrupt, std::uint64_t seed) {
  fault::FaultInjector injector(fault::FaultPlan::lossy(seed, drop, corrupt));
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  if (drop > 0.0 || corrupt > 0.0) opts.fault = &injector;

  mpi::World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);
  const std::size_t n = (1u << 20) / 4;  // 1 MB messages: rendezvous
  const auto payload = data::generate("msg_sppm", n, 17);
  const int iters = 16;

  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::memcpy(dev, payload.data(), n * 4);
    std::vector<float> rbuf(n);
    for (int it = 0; it < iters; ++it) {
      const bool sender = (it % 2 == 0) == (R.rank() == 0);
      if (sender) {
        R.send(dev, n * 4, 1 - R.rank(), it);
      } else {
        R.recv(rbuf.data(), n * 4, 1 - R.rank(), it);
      }
    }
    R.gpu_free(dev);
  });

  ChaosRow row;
  row.completion = engine.now();
  const auto s = telemetry.summarize();
  row.retransmits = s.retransmits;
  row.corruptions = s.corruptions_detected;
  row.drops = injector.stats().drops;
  row.data_packets = injector.stats().data_packets;
  return row;
}

}  // namespace

int main() {
  print_header("Chaos resilience: 16 x 1MB pt2pt (MPC-OPT, Longhorn inter-node)");
  std::printf("%7s %9s | %12s %10s | %8s %8s %8s\n", "drop%", "corrupt%", "completion",
              "overhead%", "packets", "retrans", "corrupt");
  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  Time baseline = Time::zero();
  for (const double rate : rates) {
    const auto row = run_sweep(rate, rate, /*seed=*/0xC4A05);
    if (rate == 0.0) baseline = row.completion;
    const double overhead =
        (row.completion.to_seconds() / baseline.to_seconds() - 1.0) * 100.0;
    std::printf("%6.1f%% %8.1f%% | %10.1fus %9.1f%% | %8llu %8llu %8llu\n", rate * 100,
                rate * 100, row.completion.to_us(), overhead,
                static_cast<unsigned long long>(row.data_packets),
                static_cast<unsigned long long>(row.retransmits),
                static_cast<unsigned long long>(row.corruptions));
  }
  std::printf("\nEvery run delivers all 16 messages bit-exactly; the overhead column is\n"
              "the price of retransmission on the virtual clock.\n");
  return 0;
}
