// Shared harness utilities for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the paper: it runs
// the simulated cluster(s), prints the same rows/series the paper reports,
// and (where the paper gives numbers) prints the paper's value next to the
// measured one. Simulations are deterministic, so a single measured
// iteration equals the paper's 1000-iteration average; ITERS exists only to
// exercise warm-cache effects (e.g. the ZFP attribute cache).
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "data/datasets.hpp"
#include "mpi/world.hpp"

namespace gcmpi::bench {

using core::CompressionConfig;
using sim::Time;

/// OMB-style message sizes 256KB..32MB (the paper's large-message range).
inline std::vector<std::size_t> omb_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 256 << 10; s <= (32u << 20); s <<= 1) sizes.push_back(s);
  return sizes;
}

inline const char* size_label(std::size_t bytes) {
  static char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%zuM", bytes >> 20);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
  }
  return buf;
}

struct PingPongResult {
  Time one_way = Time::zero();
  sim::Breakdown sender;    // rank-0 compression-side costs
  sim::Breakdown receiver;  // rank-1 decompression-side costs
  double ratio = 1.0;
};

/// osu_latency: one-way D-D latency of `payload` (device-resident) from
/// rank 0 to rank 1 of `cluster`. The simulation has one global clock and
/// is deterministic, so a single one-way send measures exactly what the
/// paper's 1000-iteration ping-pong average reports. A tiny warmup send
/// warms the ZFP attribute cache like OMB's warmup iterations do.
inline PingPongResult ping_pong(const net::ClusterSpec& cluster, CompressionConfig cfg,
                                std::span<const float> payload, bool warmup = true,
                                const mpi::WorldOptions& opts = {}) {
  const std::size_t bytes = payload.size() * 4;
  sim::Engine engine;
  mpi::World world(engine, cluster, cfg, opts);
  PingPongResult result;
  Time send_start = Time::zero();
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(bytes));
    std::memcpy(dev, payload.data(), bytes);
    if (warmup && R.rank() <= 1) {
      // Warm the attribute cache / pools with a minimal qualifying message.
      const std::uint64_t warm_bytes = std::min<std::uint64_t>(bytes, cfg.threshold_bytes);
      if (R.rank() == 0) {
        R.send(dev, warm_bytes, 1, 3);
      } else {
        R.recv(dev, warm_bytes, 0, 3);
      }
      R.compression().reset_stats();
    }
    R.barrier();
    if (R.rank() == 0) {
      send_start = R.now();
      R.send(dev, bytes, 1, 1);
      result.sender = R.compression().sender_breakdown();
      result.ratio = R.compression().stats().achieved_ratio();
    } else if (R.rank() == 1) {
      R.recv(dev, bytes, 0, 1);
      result.one_way = R.now() - send_start;
      result.receiver = R.compression().receiver_breakdown();
    }
    R.gpu_free(dev);
  });
  return result;
}

/// OMB dummy buffer: the constant-ish fill osu_latency transmits, on which
/// MPC reaches the high compression ratios the paper notes (Fig. 10a).
inline std::vector<float> omb_dummy(std::size_t bytes) {
  return data::plateau_field(bytes / 4, 200, 256, 1234);
}

inline double pct_improvement(Time baseline, Time value) {
  return (1.0 - value.to_seconds() / baseline.to_seconds()) * 100.0;
}

inline void print_header(const std::string& title) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("=====================================================================\n");
}

}  // namespace gcmpi::bench
