// Extension (paper future work, Sec. IX): "explore the designs to
// accelerate various communication patterns like Alltoall and Allreduce".
//
// MPI_Alltoall algorithm sweep on the Longhorn preset: the naive pairwise
// sendrecv loop (one compression launch + sync per destination block, P-1
// of them serialized) against the batched engine (ONE launch for all P-1
// blocks via CompressionManager::compress_batch, slab slices exchanged
// over the scattered pairwise schedule, decodes overlapped). Per-stage
// breakdowns come from the telemetry event log. The simulation is
// deterministic, so the JSON this writes (BENCH_alltoall.json) is an exact
// expected output; CI regenerates it with --quick and gates on the
// committed file.
//
//   ext_alltoall [--quick] [--out FILE] [--baseline FILE] [--threshold FRAC]
//
// Exit status is nonzero if (a) any baseline entry regressed beyond the
// threshold, or (b) the engine's acceptance bar fails: batched+MPC must
// beat the naive pairwise path by >= 25% at 8 ranks / 4 MiB blocks, with
// exactly one compression launch per rank recorded in telemetry.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "core/collective.hpp"
#include "core/telemetry.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

struct Options {
  bool quick = false;
  std::string out = "BENCH_alltoall.json";
  std::string baseline;
  double threshold = 0.02;  // simulation is deterministic; tiny drift budget
};

struct Row {
  std::string name;
  std::size_t bytes = 0;  // per-destination block bytes
  double latency_us = 0.0;
  double mbps = 0.0;  // total payload (P * P * block) per simulated second
  double compress_us = 0.0;    // telemetry: summed compression event time
  double decompress_us = 0.0;  // telemetry: summed decompression event time
  std::uint64_t compress_events = 0;
};

struct RunResult {
  sim::Time latency;
  core::Telemetry::Summary summary;
};

RunResult run_alltoall(core::CollectiveAlgorithm algorithm, core::CompressionConfig cfg,
                       const std::vector<float>& payload, std::size_t block_bytes,
                       int ranks) {
  sim::Engine engine;
  core::Telemetry telemetry;
  cfg.pool_buffer_bytes =
      static_cast<std::size_t>(ranks) * (block_bytes + (1u << 16)) + (1u << 20);
  cfg.pool_buffers = 24;  // the batch slab + P-1 decompressions in flight
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.collectives.alltoall_algorithm = algorithm;
  mpi::World world(engine, net::longhorn(ranks, 1), cfg, opts);
  sim::Time t = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    const auto P = static_cast<std::size_t>(R.size());
    auto* send = static_cast<std::uint8_t*>(R.gpu_malloc(block_bytes * P));
    std::vector<std::uint8_t> recv(block_bytes * P);
    for (std::size_t b = 0; b < P; ++b) {
      std::memcpy(send + b * block_bytes, payload.data(), block_bytes);
    }
    R.barrier();
    const sim::Time t0 = R.now();
    R.alltoall(send, block_bytes, recv.data());
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(send);
  });
  RunResult res;
  res.latency = t;
  res.summary = telemetry.summarize();
  return res;
}

Row make_row(const char* algo, const char* codec, core::CollectiveAlgorithm a,
             core::CompressionConfig cfg, std::size_t block_bytes, int ranks) {
  const auto payload = data::generate("msg_sppm", block_bytes / 4);
  const RunResult res = run_alltoall(a, std::move(cfg), payload, block_bytes, ranks);
  Row r;
  std::ostringstream name;
  name << "alltoall/" << algo << "/" << codec << "/" << size_label(block_bytes) << "@"
       << ranks << "x1";
  r.name = name.str();
  r.bytes = block_bytes;
  r.latency_us = res.latency.to_seconds() * 1e6;
  const double total =
      static_cast<double>(block_bytes) * static_cast<double>(ranks) * ranks;
  r.mbps = total / 1e6 / res.latency.to_seconds();
  r.compress_us = res.summary.compression_time.to_seconds() * 1e6;
  r.decompress_us = res.summary.decompression_time.to_seconds() * 1e6;
  r.compress_events = res.summary.compressions;
  std::printf("%-34s %10.1f us %9.1f MB/s  c=%8.1fus d=%8.1fus launches=%llu\n",
              r.name.c_str(), r.latency_us, r.mbps, r.compress_us, r.decompress_us,
              static_cast<unsigned long long>(r.compress_events));
  return r;
}

int sweep(const Options& opt, std::vector<Row>& rows) {
  print_header("Ext: MPI_Alltoall by algorithm, Longhorn 8x1 (msg_sppm)");
  auto mpc = core::CompressionConfig::mpc_opt();
  mpc.threshold_bytes = 256 * 1024;
  auto zfp = core::CompressionConfig::zfp_opt(8);
  zfp.threshold_bytes = 256 * 1024;
  const auto raw = core::CompressionConfig::off();
  const int P = 8;
  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{4u << 20}
                : std::vector<std::size_t>{1u << 20, 4u << 20, 8u << 20};

  double naive_4m = 0.0, batched_4m = 0.0;
  std::uint64_t batched_4m_launches = 0;
  for (const std::size_t block : sizes) {
    const Row naive_raw =
        make_row("naive", "raw", core::CollectiveAlgorithm::Linear, raw, block, P);
    const Row naive_mpc =
        make_row("naive", "mpc", core::CollectiveAlgorithm::Linear, mpc, block, P);
    const Row batched_mpc = make_row("batched", "mpc",
                                     core::CollectiveAlgorithm::BatchedPairwise, mpc,
                                     block, P);
    const Row batched_zfp = make_row("batched", "zfp8",
                                     core::CollectiveAlgorithm::BatchedPairwise, zfp,
                                     block, P);
    if (block == (4u << 20)) {
      naive_4m = naive_mpc.latency_us;
      batched_4m = batched_mpc.latency_us;
      batched_4m_launches = batched_mpc.compress_events;
    }
    rows.push_back(naive_raw);
    rows.push_back(naive_mpc);
    rows.push_back(batched_mpc);
    rows.push_back(batched_zfp);
  }

  const double improvement = (1.0 - batched_4m / naive_4m) * 100.0;
  std::printf("\nbatched+MPC vs naive+MPC at 4M blocks / 8 ranks: %.1f%% faster "
              "(gate: >= 25%%)\n",
              improvement);
  int failures = 0;
  if (!(batched_4m <= 0.75 * naive_4m)) {
    std::fprintf(stderr,
                 "FAIL: batched alltoall (%.1f us) does not beat naive (%.1f us) by 25%%\n",
                 batched_4m, naive_4m);
    ++failures;
  }
  // One batched launch per rank per alltoall: exactly P Compress events.
  std::printf("compression launches in the batched+MPC run: %llu (gate: == %d, one "
              "per rank)\n\n",
              static_cast<unsigned long long>(batched_4m_launches), P);
  if (batched_4m_launches != static_cast<std::uint64_t>(P)) {
    std::fprintf(stderr, "FAIL: expected %d compression launches (one per rank), got %llu\n",
                 P, static_cast<unsigned long long>(batched_4m_launches));
    ++failures;
  }
  return failures;
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"gcmpi-bench-alltoall-v1\",\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"units\": {\"mbps\": \"total alltoall payload (P*P*block) MB per simulated "
        "second, both barriers included\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"bytes\": %zu, \"latency_us\": %.3f, "
                  "\"mbps\": %.1f, \"compress_us\": %.3f, \"decompress_us\": %.3f, "
                  "\"compress_events\": %llu}%s\n",
                  r.name.c_str(), r.bytes, r.latency_us, r.mbps, r.compress_us,
                  r.decompress_us, static_cast<unsigned long long>(r.compress_events),
                  i + 1 < rows.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  std::ofstream f(opt.out);
  if (!f) {
    std::fprintf(stderr, "ext_alltoall: cannot write %s\n", opt.out.c_str());
    std::exit(2);
  }
  f << os.str();
  std::printf("wrote %s (%zu entries)\n", opt.out.c_str(), rows.size());
}

std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "ext_alltoall: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::pair<std::string, double>> out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t np = line.find("\"name\": \"");
    const std::size_t mp = line.find("\"mbps\": ");
    if (np == std::string::npos || mp == std::string::npos) continue;
    const std::size_t ns = np + 9;
    const std::size_t ne = line.find('"', ns);
    if (ne == std::string::npos) continue;
    out.emplace_back(line.substr(ns, ne - ns), std::strtod(line.c_str() + mp + 8, nullptr));
  }
  return out;
}

int compare_baseline(const Options& opt, const std::vector<Row>& rows) {
  const auto base = read_baseline(opt.baseline);
  int regressions = 0;
  std::size_t matched = 0;
  for (const Row& r : rows) {
    const auto it = std::find_if(base.begin(), base.end(),
                                 [&](const auto& b) { return b.first == r.name; });
    if (it == base.end()) continue;
    ++matched;
    if (r.mbps < it->second * (1.0 - opt.threshold)) {
      std::fprintf(stderr, "REGRESSION %s: %.1f MB/s vs baseline %.1f MB/s\n",
                   r.name.c_str(), r.mbps, it->second);
      ++regressions;
    }
  }
  std::printf("baseline check: %zu entries matched, %d regressions (threshold %.0f%%)\n",
              matched, regressions, opt.threshold * 100.0);
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (a == "--threshold" && i + 1 < argc) {
      opt.threshold = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: ext_alltoall [--quick] [--out FILE] [--baseline FILE] "
                   "[--threshold FRAC]\n");
      return 2;
    }
  }

  std::vector<Row> rows;
  int gate_failures = sweep(opt, rows);
  write_json(opt, rows);
  if (!opt.baseline.empty()) gate_failures += compare_baseline(opt, rows);
  return gate_failures > 0 ? 1 : 0;
}
