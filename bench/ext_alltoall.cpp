// Extension (paper future work, Sec. IX): "explore the designs to
// accelerate various communication patterns like Alltoall and Allreduce".
// MPI_Alltoall over the compression-enabled point-to-point path, on the
// real datasets, 8 nodes x 2 ppn on Frontera Liquid (the Fig. 11 setup).
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

sim::Time run_alltoall(core::CompressionConfig cfg, const std::vector<float>& payload,
                       std::size_t block_bytes) {
  sim::Engine engine;
  cfg.threshold_bytes = 128 * 1024;
  cfg.pool_buffer_bytes = block_bytes + (1u << 20);
  cfg.pool_buffers = 8;
  mpi::World world(engine, net::frontera_liquid(8, 2), cfg);
  sim::Time t = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    const auto P = static_cast<std::size_t>(R.size());
    auto* send = static_cast<float*>(R.gpu_malloc(block_bytes * P));
    auto* recv = static_cast<float*>(R.gpu_malloc(block_bytes * P));
    for (std::size_t b = 0; b < P; ++b) {
      std::memcpy(reinterpret_cast<std::uint8_t*>(send) + b * block_bytes, payload.data(),
                  block_bytes);
    }
    R.barrier();
    const sim::Time t0 = R.now();
    R.alltoall(send, block_bytes, recv);
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(send);
    R.gpu_free(recv);
  });
  return t;
}

}  // namespace

int main() {
  const std::size_t block = 512u << 10;
  print_header("Extension: MPI_Alltoall latency, 8 nodes x 2 ppn, Frontera (512KB blocks)");
  std::printf("%-12s %10s %10s %10s %10s | %9s %9s\n", "dataset", "base", "MPC-OPT", "ZFP-8",
              "ZFP-4", "MPC impr", "ZFP4impr");
  for (const auto& info : data::table3_datasets()) {
    const auto payload = data::generate(info.name, block / 4);
    const auto base = run_alltoall(core::CompressionConfig::off(), payload, block);
    const auto mpc =
        run_alltoall(core::CompressionConfig::mpc_opt(info.mpc_dimensionality), payload, block);
    const auto z8 = run_alltoall(core::CompressionConfig::zfp_opt(8), payload, block);
    const auto z4 = run_alltoall(core::CompressionConfig::zfp_opt(4), payload, block);
    std::printf("%-12s %8.2fms %8.2fms %8.2fms %8.2fms | %8.1f%% %8.1f%%\n", info.name,
                base.to_ms(), mpc.to_ms(), z8.to_ms(), z4.to_ms(),
                pct_improvement(base, mpc), pct_improvement(base, z4));
  }
  std::printf("\nAlltoall moves P distinct blocks per rank, so (unlike bcast/allgather)\n"
              "every block pays one compression and one decompression — gains come purely\n"
              "from the reduced wire volume on the shared NICs.\n");
  return 0;
}
