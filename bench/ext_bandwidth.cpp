// Extension: osu_bw-style effective bandwidth WITH on-the-fly compression.
// The paper only reports latency figures; the bandwidth view makes the
// headline claim vivid — compression lifts the *effective* application
// bandwidth above the physical wire rate of the link.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

double effective_bw_gbs(const net::ClusterSpec& cluster, core::CompressionConfig cfg,
                        const std::vector<float>& payload, int window) {
  const std::size_t bytes = payload.size() * 4;
  cfg.pool_buffer_bytes = bytes + (1u << 20);
  cfg.pool_buffers = static_cast<std::size_t>(window) + 2;
  sim::Engine engine;
  mpi::World world(engine, cluster, cfg);
  double gbs = 0.0;
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(bytes));
    std::memcpy(dev, payload.data(), bytes);
    R.barrier();
    if (R.rank() == 0) {
      const sim::Time t0 = R.now();
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < window; ++i) reqs.push_back(R.isend(dev, bytes, 1, i));
      R.waitall(reqs);
      char ack = 0;
      R.recv(&ack, 1, 1, 999);
      gbs = static_cast<double>(bytes) * window / (R.now() - t0).to_seconds() / 1e9;
    } else {
      // One receive buffer per in-flight message, as osu_bw does.
      std::vector<void*> bufs;
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < window; ++i) {
        bufs.push_back(R.gpu_malloc(bytes));
        reqs.push_back(R.irecv(bufs.back(), bytes, 0, i));
      }
      R.waitall(reqs);
      char ack = 0;
      R.send(&ack, 1, 0, 999);
      for (void* b : bufs) R.gpu_free(b);
    }
    R.gpu_free(dev);
  });
  return gbs;
}

}  // namespace

int main() {
  const auto cluster = net::longhorn(2, 1);
  print_header("Extension: effective inter-node bandwidth with compression (Longhorn, EDR)");
  std::printf("%8s %12s %12s %12s %12s | %s\n", "size", "baseline", "MPC-OPT", "ZFP-8",
              "ZFP-4", "GB/s (wire peak 12.5)");
  for (std::size_t bytes : {1u << 20, 4u << 20, 16u << 20}) {
    const auto payload = omb_dummy(bytes);
    const int window = 8;
    const double base =
        effective_bw_gbs(cluster, core::CompressionConfig::off(), payload, window);
    const double mpc =
        effective_bw_gbs(cluster, core::CompressionConfig::mpc_opt(), payload, window);
    const double z8 =
        effective_bw_gbs(cluster, core::CompressionConfig::zfp_opt(8), payload, window);
    const double z4 =
        effective_bw_gbs(cluster, core::CompressionConfig::zfp_opt(4), payload, window);
    std::printf("%8s %12.2f %12.2f %12.2f %12.2f |\n", size_label(bytes), base, mpc, z8, z4);
  }
  std::printf("\nWith a pipeline of in-flight messages, compression overlaps the wire and\n"
              "the effective bandwidth exceeds the physical 12.5 GB/s EDR rate.\n");
  return 0;
}
