// Fig. 10: inter-node latency percentage breakdown (compression /
// decompression / communication+other) for MPC-OPT and ZFP-OPT(rate 4) on
// Frontera Liquid. Expected shape: MPC-OPT's kernel shares grow with
// message size; ZFP-OPT decompression is cheap and nearly constant; MPC's
// communication share is lower than ZFP's because of the higher ratio on
// dummy data (the paper's own observation).
#include "common.hpp"
#include "core/telemetry.hpp"
#include "net/cluster.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

void panel(const char* title, const core::CompressionConfig& cfg) {
  print_header(title);
  std::printf("%8s %10s | %12s %12s %12s | %7s\n", "size", "total", "compression",
              "decompression", "comm+other", "ratio");
  for (const std::size_t bytes : omb_sizes()) {
    const auto payload = omb_dummy(bytes);
    const auto r = ping_pong(net::frontera_liquid(2, 1), cfg, payload);
    const double total = r.one_way.to_us();
    // "Compression/decompression time includes all overheads on the
    // sender/receiver side" (Sec. VI-A3).
    const double comp = r.sender.total().to_us();
    const double decomp = r.receiver.total().to_us();
    const double comm = total - comp - decomp;
    std::printf("%8s %8.1fus | %8.1fus %2.0f%% %6.1fus %2.0f%% %7.1fus %2.0f%% | %6.2fx\n",
                size_label(bytes), total, comp, comp / total * 100, decomp,
                decomp / total * 100, comm, comm / total * 100, r.ratio);
  }
  std::printf("\n");
}

// Extension panel: the chunked pipelined rendezvous against the serial
// protocol on the same workload — how much of the compress/transfer/
// decompress sum the chunk overlap hides (see bench/pipeline_overlap for
// the full sweep and the committed regression baseline).
void pipeline_panel(const char* title, const core::CompressionConfig& cfg) {
  print_header(title);
  std::printf("%8s %12s %12s %7s | %6s %9s\n", "size", "serial", "pipelined", "win",
              "chunks", "overlap");
  for (const std::size_t bytes : omb_sizes()) {
    if (bytes < (1u << 20)) continue;  // below min_bytes the paths coincide
    const auto payload = omb_dummy(bytes);
    const auto serial = ping_pong(net::longhorn(2, 1), cfg, payload);
    core::Telemetry telemetry;
    mpi::WorldOptions opts;
    opts.telemetry = &telemetry;
    opts.pipeline.enabled = true;
    const auto piped = ping_pong(net::longhorn(2, 1), cfg, payload, true, opts);
    std::uint32_t chunks = 0;
    double overlap = 0.0;
    if (!telemetry.pipelines().empty()) {
      const auto& p = telemetry.pipelines().front();
      chunks = p.chunks;
      const double busy =
          (p.compress_busy + p.transfer_busy + p.decompress_busy).to_seconds();
      if (busy > 0.0) overlap = (1.0 - p.span.to_seconds() / busy) * 100.0;
    }
    std::printf("%8s %10.1fus %10.1fus %6.1f%% | %6u %8.1f%%\n", size_label(bytes),
                serial.one_way.to_us(), piped.one_way.to_us(),
                pct_improvement(serial.one_way, piped.one_way), chunks, overlap);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  panel("Fig 10(a): MPC-OPT latency breakdown (Frontera Liquid inter-node)",
        core::CompressionConfig::mpc_opt());
  panel("Fig 10(b): ZFP-OPT(rate 4) latency breakdown (Frontera Liquid inter-node)",
        core::CompressionConfig::zfp_opt(4));
  pipeline_panel("Ext: MPC-OPT serial vs chunked pipelined rendezvous (Longhorn inter-node)",
                 core::CompressionConfig::mpc_opt());
  std::printf("Paper shapes: MPC overheads grow with size; ZFP-OPT decompression nearly\n"
              "constant 256KB-32MB; MPC comm share lower due to high CR on dummy data.\n");
  return 0;
}
