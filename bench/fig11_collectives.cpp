// Fig. 11: latency of MPI_Bcast (a) and MPI_Allgather (b) on 8 nodes x
// 2 ppn on Frontera Liquid, transferring data from the eight real HPC
// datasets (the paper's modified OMB). Expected shapes:
//   (a) MPC-OPT improves 15% (msg_bt) to 57% (msg_sppm — highest CR);
//       ZFP-OPT improvement is nearly constant per rate; rate 4 => ~85%.
//   (b) MPC-OPT 20-30%; ZFP-OPT up to 73%.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

enum class Coll { Bcast, Allgather };

sim::Time run_collective(Coll which, core::CompressionConfig cfg,
                         const std::vector<float>& payload) {
  sim::Engine engine;
  cfg.pool_buffer_bytes = payload.size() * 4 + (1u << 20);
  cfg.pool_buffers = 24;  // the ring keeps P-1 decompressions in flight
  mpi::World world(engine, net::frontera_liquid(8, 2), cfg);
  sim::Time t = sim::Time::zero();
  const std::size_t bytes = payload.size() * 4;
  world.run([&](mpi::Rank& R) {
    const std::size_t total = which == Coll::Bcast
                                  ? bytes
                                  : bytes * static_cast<std::size_t>(R.size());
    auto* dev = static_cast<float*>(R.gpu_malloc(total));
    std::memcpy(dev, payload.data(), bytes);
    // Our allgather contribution is a device-resident dataset slice,
    // allocated outside the timed region like OMB does.
    auto* mine = static_cast<float*>(R.gpu_malloc(bytes));
    std::memcpy(mine, payload.data(), bytes);
    R.barrier();
    const sim::Time t0 = R.now();
    if (which == Coll::Bcast) {
      R.bcast(dev, bytes, 0);
    } else {
      R.allgather(mine, bytes, dev);
    }
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(mine);
    R.gpu_free(dev);
  });
  return t;
}

void panel(const char* title, Coll which, std::size_t message_bytes) {
  print_header(title);
  std::printf("%-12s %10s %10s %10s %10s %10s | %8s %8s\n", "dataset", "base", "MPC-OPT",
              "ZFP-16", "ZFP-8", "ZFP-4", "MPC impr", "ZFP4impr");
  for (const auto& info : data::table3_datasets()) {
    const auto payload = data::generate(info.name, message_bytes / 4);
    const auto base = run_collective(which, core::CompressionConfig::off(), payload);
    const auto mpc =
        run_collective(which, core::CompressionConfig::mpc_opt(info.mpc_dimensionality), payload);
    const auto z16 = run_collective(which, core::CompressionConfig::zfp_opt(16), payload);
    const auto z8 = run_collective(which, core::CompressionConfig::zfp_opt(8), payload);
    const auto z4 = run_collective(which, core::CompressionConfig::zfp_opt(4), payload);
    std::printf("%-12s %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms | %7.1f%% %7.1f%%\n",
                info.name, base.to_ms(), mpc.to_ms(), z16.to_ms(), z8.to_ms(), z4.to_ms(),
                pct_improvement(base, mpc), pct_improvement(base, z4));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  panel("Fig 11(a): MPI_Bcast latency, 8 nodes x 2 ppn, Frontera Liquid (4MB)", Coll::Bcast,
        4u << 20);
  panel("Fig 11(b): MPI_Allgather latency, 8 nodes x 2 ppn, Frontera Liquid (512KB blocks)",
        Coll::Allgather, 512u << 10);
  std::printf("Paper anchors: Bcast MPC-OPT 15%% (msg_bt) .. 57%% (msg_sppm), ZFP-OPT(4) 85%%;\n"
              "Allgather MPC-OPT 20-30%%, ZFP-OPT up to 73%%. Improvements track dataset CR\n"
              "for MPC and are rate-constant for ZFP.\n");
  return 0;
}
