// Fig. 11: latency of MPI_Bcast (a) and MPI_Allgather (b) on 8 nodes x
// 2 ppn on Frontera Liquid, transferring data from the eight real HPC
// datasets (the paper's modified OMB). Expected shapes:
//   (a) MPC-OPT improves 15% (msg_bt) to 57% (msg_sppm — highest CR);
//       ZFP-OPT improvement is nearly constant per rate; rate 4 => ~85%.
//   (b) MPC-OPT 20-30%; ZFP-OPT up to 73%.
// Panel (c) extends the figure with the collective algorithm engine:
// allreduce latency for the linear (Rabenseifner-style p2p composition),
// compression-aware ring, and hierarchical leader-ring schedules. The
// simulation is deterministic, so the JSON this writes
// (BENCH_collectives.json) is an exact expected output; CI regenerates it
// with --quick and gates on the committed file.
//
//   fig11_collectives [--quick] [--out FILE] [--baseline FILE] [--threshold FRAC]
//
// Exit status is nonzero if (a) any baseline entry regressed beyond the
// threshold, or (b) the engine's acceptance bar fails: ring+MPC must beat
// the linear p2p allreduce by >= 25% at 8 ranks / 16 MiB. (The linear path
// moves host accumulators, so compression never applies to it and
// linear+raw IS the linear+MPC baseline; at 8 MiB the ring's per-hop MPC
// kernels still eat most of the wire win — the gap opens decisively from
// 16 MiB on, which is the smallest size the gate pins.)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "core/collective.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

enum class Coll { Bcast, Allgather };

struct Options {
  bool quick = false;
  std::string out = "BENCH_collectives.json";
  std::string baseline;
  double threshold = 0.02;  // simulation is deterministic; tiny drift budget
};

sim::Time run_collective(Coll which, core::CompressionConfig cfg,
                         const std::vector<float>& payload) {
  sim::Engine engine;
  cfg.pool_buffer_bytes = payload.size() * 4 + (1u << 20);
  cfg.pool_buffers = 24;  // the ring keeps P-1 decompressions in flight
  mpi::World world(engine, net::frontera_liquid(8, 2), cfg);
  sim::Time t = sim::Time::zero();
  const std::size_t bytes = payload.size() * 4;
  world.run([&](mpi::Rank& R) {
    const std::size_t total = which == Coll::Bcast
                                  ? bytes
                                  : bytes * static_cast<std::size_t>(R.size());
    auto* dev = static_cast<float*>(R.gpu_malloc(total));
    std::memcpy(dev, payload.data(), bytes);
    // Our allgather contribution is a device-resident dataset slice,
    // allocated outside the timed region like OMB does.
    auto* mine = static_cast<float*>(R.gpu_malloc(bytes));
    std::memcpy(mine, payload.data(), bytes);
    R.barrier();
    const sim::Time t0 = R.now();
    if (which == Coll::Bcast) {
      R.bcast(dev, bytes, 0);
    } else {
      R.allgather(mine, bytes, dev);
    }
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(mine);
    R.gpu_free(dev);
  });
  return t;
}

void panel(const char* title, Coll which, std::size_t message_bytes) {
  print_header(title);
  std::printf("%-12s %10s %10s %10s %10s %10s | %8s %8s\n", "dataset", "base", "MPC-OPT",
              "ZFP-16", "ZFP-8", "ZFP-4", "MPC impr", "ZFP4impr");
  for (const auto& info : data::table3_datasets()) {
    const auto payload = data::generate(info.name, message_bytes / 4);
    const auto base = run_collective(which, core::CompressionConfig::off(), payload);
    const auto mpc =
        run_collective(which, core::CompressionConfig::mpc_opt(info.mpc_dimensionality), payload);
    const auto z16 = run_collective(which, core::CompressionConfig::zfp_opt(16), payload);
    const auto z8 = run_collective(which, core::CompressionConfig::zfp_opt(8), payload);
    const auto z4 = run_collective(which, core::CompressionConfig::zfp_opt(4), payload);
    std::printf("%-12s %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms | %7.1f%% %7.1f%%\n",
                info.name, base.to_ms(), mpc.to_ms(), z16.to_ms(), z8.to_ms(), z4.to_ms(),
                pct_improvement(base, mpc), pct_improvement(base, z4));
  }
  std::printf("\n");
}

// --- panel (c): the allreduce algorithm engine ---

struct Row {
  std::string name;
  std::size_t bytes = 0;
  double latency_us = 0.0;
  double mbps = 0.0;
};

sim::Time run_allreduce(core::CollectiveAlgorithm algorithm, core::CompressionConfig cfg,
                        const std::vector<float>& payload, int nodes, int gpn) {
  sim::Engine engine;
  const std::size_t bytes = payload.size() * 4;
  cfg.pool_buffer_bytes = bytes + (1u << 20);
  cfg.pool_buffers = 24;
  mpi::WorldOptions opts;
  opts.collectives.algorithm = algorithm;
  mpi::World world(engine, net::longhorn(nodes, gpn), cfg, opts);
  sim::Time t = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(bytes));
    std::memcpy(dev, payload.data(), bytes);
    std::vector<float> out(payload.size());
    R.barrier();
    const sim::Time t0 = R.now();
    R.allreduce(dev, out.data(), payload.size(), mpi::ReduceOp::Sum);
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(dev);
  });
  return t;
}

Row make_row(const char* algo, const char* codec, core::CollectiveAlgorithm a,
             core::CompressionConfig cfg, std::size_t bytes, int nodes, int gpn) {
  const auto payload = data::generate("msg_sppm", bytes / 4);
  const auto t = run_allreduce(a, std::move(cfg), payload, nodes, gpn);
  Row r;
  std::ostringstream name;
  name << "allreduce/" << algo << "/" << codec << "/" << size_label(bytes) << "@" << nodes
       << "x" << gpn;
  r.name = name.str();
  r.bytes = bytes;
  r.latency_us = t.to_seconds() * 1e6;
  r.mbps = static_cast<double>(bytes) / 1e6 / t.to_seconds();
  std::printf("%-36s %10.1f us %9.1f MB/s\n", r.name.c_str(), r.latency_us, r.mbps);
  return r;
}

int allreduce_panel(const Options& opt, std::vector<Row>& rows) {
  print_header("Fig 11(c): MPI_Allreduce latency by algorithm, Longhorn (msg_sppm)");
  auto mpc = core::CompressionConfig::mpc_opt();
  mpc.threshold_bytes = 64 * 1024;  // 2 MiB / 8 ranks shards must compress
  const auto raw = core::CompressionConfig::off();
  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{16u << 20}
                : std::vector<std::size_t>{2u << 20, 8u << 20, 16u << 20};

  double linear_16m = 0.0, ring_mpc_16m = 0.0;
  for (const std::size_t bytes : sizes) {
    const Row lin =
        make_row("linear", "raw", core::CollectiveAlgorithm::Linear, raw, bytes, 8, 1);
    const Row rring =
        make_row("ring", "raw", core::CollectiveAlgorithm::Ring, raw, bytes, 8, 1);
    const Row cring =
        make_row("ring", "mpc", core::CollectiveAlgorithm::Ring, mpc, bytes, 8, 1);
    const Row hier = make_row("hier", "mpc", core::CollectiveAlgorithm::Hierarchical, mpc,
                              bytes, 4, 2);
    if (bytes == (16u << 20)) {
      linear_16m = lin.latency_us;
      ring_mpc_16m = cring.latency_us;
    }
    rows.push_back(lin);
    rows.push_back(rring);
    rows.push_back(cring);
    rows.push_back(hier);
  }

  const double improvement = (1.0 - ring_mpc_16m / linear_16m) * 100.0;
  std::printf("\nring+MPC vs linear at 16M / 8 ranks: %.1f%% faster (gate: >= 25%%)\n\n",
              improvement);
  if (!(ring_mpc_16m <= 0.75 * linear_16m)) {
    std::fprintf(stderr,
                 "FAIL: ring+MPC (%.1f us) does not beat linear (%.1f us) by 25%%\n",
                 ring_mpc_16m, linear_16m);
    return 1;
  }
  return 0;
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"gcmpi-bench-collectives-v1\",\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"units\": {\"mbps\": \"original MB per simulated second, full allreduce "
        "including both barriers\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"bytes\": %zu, \"latency_us\": %.3f, "
                  "\"mbps\": %.1f}%s\n",
                  r.name.c_str(), r.bytes, r.latency_us, r.mbps,
                  i + 1 < rows.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  std::ofstream f(opt.out);
  if (!f) {
    std::fprintf(stderr, "fig11_collectives: cannot write %s\n", opt.out.c_str());
    std::exit(2);
  }
  f << os.str();
  std::printf("wrote %s (%zu entries)\n", opt.out.c_str(), rows.size());
}

std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "fig11_collectives: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::pair<std::string, double>> out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t np = line.find("\"name\": \"");
    const std::size_t mp = line.find("\"mbps\": ");
    if (np == std::string::npos || mp == std::string::npos) continue;
    const std::size_t ns = np + 9;
    const std::size_t ne = line.find('"', ns);
    if (ne == std::string::npos) continue;
    out.emplace_back(line.substr(ns, ne - ns), std::strtod(line.c_str() + mp + 8, nullptr));
  }
  return out;
}

int compare_baseline(const Options& opt, const std::vector<Row>& rows) {
  const auto base = read_baseline(opt.baseline);
  int regressions = 0;
  std::size_t matched = 0;
  for (const Row& r : rows) {
    const auto it = std::find_if(base.begin(), base.end(),
                                 [&](const auto& b) { return b.first == r.name; });
    if (it == base.end()) continue;
    ++matched;
    if (r.mbps < it->second * (1.0 - opt.threshold)) {
      ++regressions;
      std::printf("REGRESSION %-44s %8.1f -> %8.1f MB/s\n", r.name.c_str(), it->second, r.mbps);
    }
  }
  std::printf("baseline: %zu/%zu entries matched, %d regression(s) beyond %.1f%%\n", matched,
              rows.size(), regressions, opt.threshold * 100.0);
  return regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      opt.threshold = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: fig11_collectives [--quick] [--out FILE] [--baseline FILE] "
                   "[--threshold FRAC]\n");
      return 2;
    }
  }

  if (!opt.quick) {
    panel("Fig 11(a): MPI_Bcast latency, 8 nodes x 2 ppn, Frontera Liquid (4MB)", Coll::Bcast,
          4u << 20);
    panel("Fig 11(b): MPI_Allgather latency, 8 nodes x 2 ppn, Frontera Liquid (512KB blocks)",
          Coll::Allgather, 512u << 10);
  }

  std::vector<Row> rows;
  int rc = allreduce_panel(opt, rows);
  write_json(opt, rows);
  if (!opt.baseline.empty()) rc = std::max(rc, compare_baseline(opt, rows));

  if (!opt.quick) {
    std::printf(
        "Paper anchors: Bcast MPC-OPT 15%% (msg_bt) .. 57%% (msg_sppm), ZFP-OPT(4) 85%%;\n"
        "Allgather MPC-OPT 20-30%%, ZFP-OPT up to 73%%. Improvements track dataset CR\n"
        "for MPC and are rate-constant for ZFP.\n");
  }
  return rc;
}
