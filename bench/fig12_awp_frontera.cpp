// Fig. 12: weak scaling of the AWP-ODC proxy on Frontera Liquid — GPU
// computing flops (higher is better) for baseline, MPC-OPT, ZFP-OPT(16),
// ZFP-OPT(8), at 2 and 4 GPUs/node. Expected shape: flops grow with GPU
// count; ZFP-OPT(8) gains up to ~37% and MPC-OPT up to ~19% over baseline
// at the largest scale (compression relieves the shared-NIC bottleneck).
#include "common.hpp"

#include "apps/awp/distributed.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

apps::awp::AwpReport run(int gpus, int gpus_per_node, core::CompressionConfig cfg) {
  const int px = gpus >= 2 ? gpus / 2 : 1;
  const int py = gpus / px;
  sim::Engine engine;
  cfg.threshold_bytes = 128 * 1024;
  cfg.pool_buffer_bytes = 2u << 20;
  mpi::World world(engine, net::frontera_liquid(gpus / gpus_per_node, gpus_per_node), cfg);
  apps::awp::AwpReport report;
  world.run([&](mpi::Rank& R) {
    apps::awp::AwpConfig c;
    c.local = {8, 32, 512};  // 256KB halo faces (paper messages: 2-16MB range, scaled)
    c.px = px;
    c.py = py;
    c.steps = 3;
    auto rep = apps::awp::run_awp(R, c);
    if (R.rank() == 0) report = rep;
  });
  return report;
}

void panel(int gpus_per_node, const std::vector<int>& gpu_counts) {
  std::printf("--- %d GPUs/node ---\n", gpus_per_node);
  std::printf("%6s %10s %10s %10s %10s | %9s %9s %8s\n", "GPUs", "base", "MPC-OPT", "ZFP-16",
              "ZFP-8", "MPC impr", "ZFP8 impr", "MPC CR");
  for (int gpus : gpu_counts) {
    const auto base = run(gpus, gpus_per_node, core::CompressionConfig::off());
    const auto mpc = run(gpus, gpus_per_node, core::CompressionConfig::mpc_opt());
    const auto z16 = run(gpus, gpus_per_node, core::CompressionConfig::zfp_opt(16));
    const auto z8 = run(gpus, gpus_per_node, core::CompressionConfig::zfp_opt(8));
    std::printf("%6d %9.2fT %9.2fT %9.2fT %9.2fT | %8.1f%% %8.1f%% %7.1fx\n", gpus,
                base.gpu_tflops, mpc.gpu_tflops, z16.gpu_tflops, z8.gpu_tflops,
                (mpc.gpu_tflops / base.gpu_tflops - 1.0) * 100.0,
                (z8.gpu_tflops / base.gpu_tflops - 1.0) * 100.0, mpc.mpc_ratio);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Fig 12: AWP-ODC weak scaling on Frontera Liquid — GPU computing flops");
  panel(2, {4, 8, 16, 32});
  panel(4, {4, 8, 16, 32, 64});
  std::printf("Paper anchors: ZFP-OPT(8) up to +37%% on 64 GPUs (4/node); MPC-OPT up to\n"
              "+19%%; MPC CR on AWP wavefield data ranged 3..31. ZFP rates below 8 break\n"
              "AWP's accuracy tolerance (hence no rate-4 series).\n");
  return 0;
}
