// Fig. 13: AWP-ODC weak scaling on Lassen up to 512 GPUs (4 GPUs/node):
// (a) GPU computing flops (higher is better), (b) run time per time step
// (lower is better). Expected shape: MPC-OPT ~+18% flops / -15% step time
// at 512 GPUs; ZFP-OPT(8) ~+35% / -26% at 128 GPUs.
#include "common.hpp"

#include "apps/awp/distributed.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

apps::awp::AwpReport run(int gpus, core::CompressionConfig cfg) {
  int px = 1;
  while (px * px < gpus) px *= 2;  // near-square process grid
  if (px * (gpus / px) != gpus) px = gpus;
  const int py = gpus / px;
  sim::Engine engine;
  cfg.threshold_bytes = 64 * 1024;
  cfg.compress_intra_node = false;  // NVLink is faster than the codecs (Fig. 9c)
  cfg.pool_buffer_bytes = 1u << 20;
  mpi::World world(engine, net::lassen(gpus / 4, 4), cfg);
  apps::awp::AwpReport report;
  world.run([&](mpi::Rank& R) {
    apps::awp::AwpConfig c;
    c.local = {6, 24, 256};  // ~96KB halo faces, small enough for 512 ranks
    c.px = px;
    c.py = py;
    c.steps = 3;
    auto rep = apps::awp::run_awp(R, c);
    if (R.rank() == 0) report = rep;
  });
  return report;
}

}  // namespace

int main() {
  print_header("Fig 13: AWP-ODC weak scaling on Lassen (4 GPUs/node), up to 512 GPUs");
  std::printf("%6s | %9s %9s %9s | %11s %11s %11s | %9s %9s\n", "GPUs", "base-TF", "MPC-TF",
              "ZFP8-TF", "base ms/it", "MPC ms/it", "ZFP8 ms/it", "MPC impr", "ZFP8 impr");
  for (int gpus : {8, 16, 64, 128, 512}) {
    const auto base = run(gpus, core::CompressionConfig::off());
    const auto mpc = run(gpus, core::CompressionConfig::mpc_opt());
    const auto z8 = run(gpus, core::CompressionConfig::zfp_opt(8));
    std::printf("%6d | %9.2f %9.2f %9.2f | %11.2f %11.2f %11.2f | %8.1f%% %8.1f%%\n", gpus,
                base.gpu_tflops, mpc.gpu_tflops, z8.gpu_tflops, base.time_per_step_ms,
                mpc.time_per_step_ms, z8.time_per_step_ms,
                (mpc.gpu_tflops / base.gpu_tflops - 1.0) * 100.0,
                (z8.gpu_tflops / base.gpu_tflops - 1.0) * 100.0);
  }
  std::printf("\nPaper anchors: MPC-OPT +18%% flops / -15%% step time at 512 GPUs;\n"
              "ZFP-OPT(8) +35%% / -26%% at 128 GPUs. Scaling trends similar at 1-2 GPUs/node.\n");
  return 0;
}
