// Fig. 14: Dask "sum of cuPy array and its transpose" on the RI2 cluster —
// (a) execution time (lower is better) and (b) aggregate throughput
// (higher is better) for 2-8 workers, baseline vs ZFP-OPT rates 16 and 8.
// Expected shape: ZFP-OPT(8) averages ~1.18x speedup and reaches ~1.56x
// aggregate-throughput gain at 8 workers.
#include "common.hpp"

#include "apps/dask/distributed_array.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

apps::dask::DaskReport run(int workers, core::CompressionConfig cfg) {
  apps::dask::DaskConfig dc;
  dc.matrix_n = 4096;   // scaled from the paper's 10K x 10K cuPy array
  dc.chunk_n = 1024;    // 4MB chunks (paper: 8MB-1GB messages)
  dc.verify = false;
  cfg.threshold_bytes = 256 * 1024;
  cfg.pool_buffer_bytes = 8u << 20;
  sim::Engine engine;
  mpi::World world(engine, net::ri2(workers, 1), cfg);
  apps::dask::DaskReport report;
  world.run([&](mpi::Rank& R) {
    auto rep = apps::dask::run_transpose_sum(R, dc);
    if (R.rank() == 0) report = rep;
  });
  return report;
}

}  // namespace

int main() {
  print_header("Fig 14: Dask y = x + x.T on RI2 (1 GPU/node), baseline vs ZFP-OPT");
  std::printf("%8s | %10s %10s %10s | %9s %9s %9s | %9s\n", "workers", "base(ms)",
              "zfp16(ms)", "zfp8(ms)", "base GB/s", "zfp16GB/s", "zfp8 GB/s", "zfp8 gain");
  double sum_speedup = 0;
  int count = 0;
  double gain8 = 0;
  for (int w : {2, 4, 6, 8}) {
    const auto base = run(w, core::CompressionConfig::off());
    const auto z16 = run(w, core::CompressionConfig::zfp_opt(16));
    const auto z8 = run(w, core::CompressionConfig::zfp_opt(8));
    const double gain = z8.aggregate_throughput_gbs / base.aggregate_throughput_gbs;
    std::printf("%8d | %10.2f %10.2f %10.2f | %9.1f %9.1f %9.1f | %8.2fx\n", w,
                base.exec_time.to_ms(), z16.exec_time.to_ms(), z8.exec_time.to_ms(),
                base.aggregate_throughput_gbs, z16.aggregate_throughput_gbs,
                z8.aggregate_throughput_gbs, gain);
    sum_speedup += base.exec_time.to_seconds() / z8.exec_time.to_seconds();
    ++count;
    if (w == 8) gain8 = gain;
  }
  std::printf("\nZFP-OPT(8): average speedup %.2fx (paper 1.18x); throughput gain at 8\n"
              "workers %.2fx (paper 1.56x).\n", sum_speedup / count, gain8);
  return 0;
}
