// Fig. 2(a): inter-node device-to-device bandwidth on Longhorn — the
// motivating observation that a well-optimized GPU-aware MPI saturates the
// IB EDR network (peak 12.5 GB/s) for large messages, so compression, not
// more tuning, is the only way to cut communication time.
//
// osu_bw-style: a window of non-blocking sends per size, bandwidth =
// window_bytes / time. No compression (this is the baseline motivation).
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

double bandwidth_gbs(std::size_t bytes, int window) {
  sim::Engine engine;
  mpi::World world(engine, net::longhorn(2, 1), core::CompressionConfig::off());
  double gbs = 0.0;
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(bytes));
    std::memset(dev, 0, bytes);
    R.barrier();
    if (R.rank() == 0) {
      const sim::Time t0 = R.now();
      std::vector<mpi::Request> reqs;
      reqs.reserve(static_cast<std::size_t>(window));
      for (int i = 0; i < window; ++i) reqs.push_back(R.isend(dev, bytes, 1, i));
      R.waitall(reqs);
      char ack = 0;
      R.recv(&ack, 1, 1, 999);
      const double secs = (R.now() - t0).to_seconds();
      gbs = static_cast<double>(bytes) * window / secs / 1e9;
    } else {
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < window; ++i) reqs.push_back(R.irecv(dev, bytes, 0, i));
      R.waitall(reqs);
      char ack = 0;
      R.send(&ack, 1, 0, 999);
    }
    R.gpu_free(dev);
  });
  return gbs;
}

}  // namespace

int main() {
  print_header("Fig 2(a): Longhorn inter-node D-D bandwidth (baseline MPI, no compression)");
  std::printf("%10s %14s %14s\n", "size", "BW (GB/s)", "of peak 12.5");
  for (std::size_t bytes = 16 << 10; bytes <= (64u << 20); bytes <<= 2) {
    const int window = bytes >= (16u << 20) ? 4 : 16;
    const double bw = bandwidth_gbs(bytes, window);
    std::printf("%10s %14.2f %13.1f%%\n", size_label(bytes), bw, bw / 12.5 * 100.0);
  }
  std::printf("\nPaper: MVAPICH2-GDR and Spectrum MPI both saturate IB EDR for large\n"
              "messages; the bottleneck is the wire, motivating on-the-fly compression.\n");
  return 0;
}
