// Fig. 2(b): AWP-ODC computation vs communication time breakdown at 4, 8,
// and 16 GPUs (baseline, no compression). Expected shape: communication
// remains a significant fraction (tens of percent) and grows with GPU
// count even though the network is already saturated.
#include "common.hpp"

#include "apps/awp/distributed.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

int main() {
  print_header("Fig 2(b): AWP-ODC time breakdown, Longhorn, weak scaling (baseline)");
  std::printf("%6s %12s %12s %12s %8s\n", "GPUs", "compute(ms)", "comm(ms)", "total(ms)",
              "comm%");
  for (int gpus : {4, 8, 16}) {
    const int px = gpus / 2, py = 2;
    sim::Engine engine;
    mpi::World world(engine, net::longhorn(gpus / 4 > 0 ? gpus / 4 : 1, std::min(4, gpus)),
                     core::CompressionConfig::off());
    apps::awp::AwpReport report;
    world.run([&](mpi::Rank& R) {
      apps::awp::AwpConfig cfg;
      cfg.local = {8, 32, 512};  // thin slabs: paper-like 0.25-1MB halo faces
      cfg.px = px;
      cfg.py = py;
      cfg.steps = 4;
      auto rep = apps::awp::run_awp(R, cfg);
      if (R.rank() == 0) report = rep;
    });
    const double comm_pct =
        report.comm_time.to_seconds() / report.total_time.to_seconds() * 100.0;
    std::printf("%6d %12.2f %12.2f %12.2f %7.1f%%\n", gpus, report.compute_time.to_ms(),
                report.comm_time.to_ms(), report.total_time.to_ms(), comm_pct);
  }
  std::printf("\nPaper: communication stays a major fraction of AWP-ODC step time as the\n"
              "GPU count grows (message range 2-16MB), despite a saturated network.\n");
  return 0;
}
