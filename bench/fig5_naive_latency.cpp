// Fig. 5: latency of NAIVELY integrating the compression algorithms into
// the MPI library (Longhorn, inter-node, 256KB-32MB). Expected shape: both
// naive MPC and naive ZFP(16) are strictly WORSE than the no-compression
// baseline — the per-message cudaMalloc / cudaMemcpy / device-properties
// overheads outweigh the reduced wire time.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

int main() {
  print_header("Fig 5: naive integration, Longhorn inter-node D-D latency");
  std::printf("%8s %14s %16s %16s | %s\n", "size", "baseline", "naive MPC",
              "naive ZFP(16)", "naive slower?");
  // Naive integration has no warmup benefit: every message pays full cost.
  for (const std::size_t bytes : omb_sizes()) {
    const auto payload = omb_dummy(bytes);
    const auto base =
        ping_pong(net::longhorn(2, 1), core::CompressionConfig::off(), payload, false);
    const auto mpc =
        ping_pong(net::longhorn(2, 1), core::CompressionConfig::mpc_naive(), payload, false);
    const auto zfp =
        ping_pong(net::longhorn(2, 1), core::CompressionConfig::zfp_naive(16), payload, false);
    const bool worse = mpc.one_way > base.one_way && zfp.one_way > base.one_way;
    std::printf("%8s %12.1fus %14.1fus %14.1fus | %s\n", size_label(bytes),
                base.one_way.to_us(), mpc.one_way.to_us(), zfp.one_way.to_us(),
                worse ? "yes (as in paper)" : "NO");
  }
  std::printf("\nPaper: naive integration shows 'poor performance ... the overhead of the\n"
              "compression and decompression process outweighs the reduced communication\n"
              "time' (Sec. III-B).\n");
  return 0;
}
