// Fig. 6: breakdown of overall inter-node latency using MPC before (a) and
// after (b) optimization, on Longhorn. Expected shape:
//   (a) naive: memory allocation dominates small messages (83.4% at 256KB,
//       28.3% at 32MB); kernels take 11.7-46.3%; a ~20us cudaMemcpy per
//       message for the size readback.
//   (b) MPC-OPT: allocation gone, kernels + comm dominate; up to 4x faster.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

void panel(const char* title, const core::CompressionConfig& cfg) {
  print_header(title);
  std::printf("%8s %10s | %8s %8s %8s %8s %8s %8s | %7s\n", "size", "total", "alloc%",
              "copies%", "comp%", "decomp%", "combine%", "comm+o%", "alloc");
  for (const std::size_t bytes : omb_sizes()) {
    const auto payload = omb_dummy(bytes);
    const auto r = ping_pong(net::longhorn(2, 1), cfg, payload, false);
    sim::Breakdown all = r.sender;
    all += r.receiver;
    const double total = r.one_way.to_us();
    auto pct = [&](sim::Phase p) { return all.get(p).to_us() / total * 100.0; };
    const double alloc = pct(sim::Phase::MemoryAllocation);
    const double copies = pct(sim::Phase::DataCopies);
    const double comp = pct(sim::Phase::CompressionKernel);
    const double decomp = pct(sim::Phase::DecompressionKernel);
    const double combine = pct(sim::Phase::CombinePartitions);
    const double comm = 100.0 - alloc - copies - comp - decomp - combine;
    std::printf("%8s %8.1fus | %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %5.0fus\n",
                size_label(bytes), total, alloc, copies, comp, decomp, combine, comm,
                all.get(sim::Phase::MemoryAllocation).to_us());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  panel("Fig 6(a): MPC naive integration breakdown (Longhorn inter-node)",
        core::CompressionConfig::mpc_naive());
  panel("Fig 6(b): MPC-OPT breakdown (Longhorn inter-node)",
        core::CompressionConfig::mpc_opt());

  // The paper's headline: up to 4x improvement over the naive integration.
  const auto payload = omb_dummy(1u << 20);
  const auto naive =
      ping_pong(net::longhorn(2, 1), core::CompressionConfig::mpc_naive(), payload, false);
  const auto opt =
      ping_pong(net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), payload, false);
  std::printf("1MB naive/OPT speedup: %.2fx (paper: up to 4x)\n",
              naive.one_way.to_seconds() / opt.one_way.to_seconds());
  std::printf("Paper anchors (a): alloc 83.4%% at 256KB, 28.3%% at 32MB; kernels 11.7-46.3%%;\n"
              "cudaMemcpy size readback ~20us per message.\n");
  return 0;
}
