// Fig. 8: breakdown of overall inter-node latency using ZFP before (a) and
// after (b) optimization, on Frontera Liquid (rate 16, 1D arrays).
// Expected shape:
//   (a) naive: get_max_grid_dims (cudaGetDeviceProperties, ~1840us/call)
//       dominates at every size; zfp_stream/field creation is only ~9us.
//   (b) ZFP-OPT: the cached attribute read costs ~1us; compression,
//       decompression and (reduced) communication dominate.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

void panel(const char* title, const core::CompressionConfig& cfg, bool warm) {
  print_header(title);
  std::printf("%8s %10s | %10s %12s %8s %8s %8s\n", "size", "total", "grid_dims",
              "stream/field", "comp%", "decomp%", "comm+o%");
  for (const std::size_t bytes : omb_sizes()) {
    const auto payload = omb_dummy(bytes);
    const auto r = ping_pong(net::frontera_liquid(2, 1), cfg, payload, warm);
    sim::Breakdown all = r.sender;
    all += r.receiver;
    const double total = r.one_way.to_us();
    const double grid = all.get(sim::Phase::DeviceQuery).to_us();
    const double sf = all.get(sim::Phase::StreamFieldCreation).to_us();
    const double comp = all.get(sim::Phase::CompressionKernel).to_us() / total * 100;
    const double decomp = all.get(sim::Phase::DecompressionKernel).to_us() / total * 100;
    const double comm = 100.0 - comp - decomp - (grid + sf) / total * 100;
    std::printf("%8s %8.1fus | %8.1fus %10.1fus %7.1f%% %7.1f%% %7.1f%%\n",
                size_label(bytes), total, grid, sf, comp, decomp, comm);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  panel("Fig 8(a): ZFP naive integration breakdown (Frontera Liquid inter-node, rate 16)",
        core::CompressionConfig::zfp_naive(16), false);
  panel("Fig 8(b): ZFP-OPT breakdown (Frontera Liquid inter-node, rate 16)",
        core::CompressionConfig::zfp_opt(16), true);
  std::printf(
      "Paper anchors: cudaGetDeviceProperties ~1840us per call (two sides => ~3.7ms\n"
      "per message); after caching the attribute read drops to ~1us (4000us -> 1us);\n"
      "zfp_stream/zfp_field creation ~9us (Sec. V).\n");
  return 0;
}
