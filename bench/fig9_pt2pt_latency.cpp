// Fig. 9: inter-node and intra-node point-to-point D-D latency on Longhorn
// (V100, NVLink, IB-EDR) and Frontera Liquid (RTX5000, PCIe, IB-FDR) for
// baseline, MPC-OPT, and ZFP-OPT at rates 16/8/4, message sizes 256KB-32MB.
//
// Expected shapes (paper Sec. VI-A):
//   (a) Longhorn inter-node: MPC-OPT wins from ~1MB, -62.5% at 32MB;
//       ZFP-OPT(4) up to -78.3%.
//   (b) Frontera inter-node: MPC-OPT -77.1%, ZFP-OPT(4) -83.1% at 32MB.
//   (c) Longhorn intra-node (NVLink): MPC-OPT never wins; ZFP-OPT(4/8)
//       only above 8MB (-40.5% / -27.7% at 32MB).
//   (d) Frontera intra-node (PCIe): MPC-OPT -60.6%, ZFP-OPT(4) -79.8%.
#include "common.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

void panel(const char* title, const net::ClusterSpec& cluster, double paper_mpc_32m,
           double paper_zfp4_32m) {
  print_header(title);
  std::printf("%8s %12s %12s %12s %12s %12s | %10s %10s\n", "size", "baseline",
              "MPC-OPT", "ZFP-16", "ZFP-8", "ZFP-4", "MPC impr%", "ZFP4 impr%");
  double mpc32 = 0, zfp32 = 0;
  for (const std::size_t bytes : omb_sizes()) {
    const auto payload = omb_dummy(bytes);
    const auto base = ping_pong(cluster, core::CompressionConfig::off(), payload);
    const auto mpc = ping_pong(cluster, core::CompressionConfig::mpc_opt(), payload);
    const auto z16 = ping_pong(cluster, core::CompressionConfig::zfp_opt(16), payload);
    const auto z8 = ping_pong(cluster, core::CompressionConfig::zfp_opt(8), payload);
    const auto z4 = ping_pong(cluster, core::CompressionConfig::zfp_opt(4), payload);
    const double mpc_impr = pct_improvement(base.one_way, mpc.one_way);
    const double zfp_impr = pct_improvement(base.one_way, z4.one_way);
    std::printf("%8s %10.1fus %10.1fus %10.1fus %10.1fus %10.1fus | %9.1f%% %9.1f%%\n",
                size_label(bytes), base.one_way.to_us(), mpc.one_way.to_us(),
                z16.one_way.to_us(), z8.one_way.to_us(), z4.one_way.to_us(), mpc_impr,
                zfp_impr);
    if (bytes == (32u << 20)) {
      mpc32 = mpc_impr;
      zfp32 = zfp_impr;
    }
  }
  std::printf("  at 32MB: MPC-OPT %.1f%% (paper %.1f%%), ZFP-OPT(4) %.1f%% (paper %.1f%%)\n\n",
              mpc32, paper_mpc_32m, zfp32, paper_zfp4_32m);
}

}  // namespace

int main() {
  panel("Fig 9(a) Longhorn inter-node D-D latency", net::longhorn(2, 1), 62.5, 78.3);
  panel("Fig 9(b) Frontera Liquid inter-node D-D latency", net::frontera_liquid(2, 1), 77.1,
        83.1);
  panel("Fig 9(c) Longhorn intra-node (NVLink) D-D latency", net::longhorn(1, 2), -1.0, 40.5);
  panel("Fig 9(d) Frontera Liquid intra-node (PCIe) D-D latency", net::frontera_liquid(1, 2),
        60.6, 79.8);
  return 0;
}
