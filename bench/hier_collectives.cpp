// Topology-aware hierarchical collectives (see src/mpi/hier_engine.cpp):
// flat wire-forwarding bcast (one transit per remote RANK crossing the
// shared IB NIC) against the hierarchical schedule (root compresses once,
// the wire form hops a binomial tree over node REPRESENTATIVES, then fans
// out intra-node over NVLink). An inert fault injector rides along purely
// as a packet counter: its inter_node_data_packets split measures the IB
// transit budget directly. The simulation is deterministic, so the JSON
// this writes (BENCH_hierarchical.json) is an exact expected output; CI
// regenerates it with --quick and gates on the committed file.
//
//   hier_collectives [--quick] [--out FILE] [--baseline FILE] [--threshold FRAC]
//
// Exit status is nonzero if (a) any baseline entry regressed beyond the
// threshold, or (b) the engine's acceptance bar fails: hierarchical+MPC
// must beat the flat schedule by >= 30% at 16 MiB on 4 nodes x 4 GPUs,
// with exactly one inter-node wire transit per non-root node (nodes-1).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common.hpp"
#include "core/collective.hpp"
#include "core/telemetry.hpp"
#include "fault/injector.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

struct Options {
  bool quick = false;
  std::string out = "BENCH_hierarchical.json";
  std::string baseline;
  double threshold = 0.02;  // simulation is deterministic; tiny drift budget
};

struct Row {
  std::string name;
  std::size_t bytes = 0;  // bcast message bytes
  double latency_us = 0.0;
  double mbps = 0.0;  // message bytes per simulated second, barriers included
  double compress_us = 0.0;
  double decompress_us = 0.0;
  std::uint64_t inter_packets = 0;  // IB data-packet transits (clean fabric)
};

struct RunResult {
  sim::Time latency;
  core::Telemetry::Summary summary;
  std::uint64_t inter_packets = 0;
};

RunResult run_bcast(core::CollectiveAlgorithm algorithm, core::CompressionConfig cfg,
                    const std::vector<float>& payload, std::size_t bytes, int nodes,
                    int gpn) {
  sim::Engine engine;
  core::Telemetry telemetry;
  fault::FaultInjector counter{fault::FaultPlan{}};  // inert: pure packet counting
  cfg.pool_buffer_bytes = bytes + (1u << 20);
  cfg.pool_buffers = 8;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.fault = &counter;
  opts.collectives.bcast_algorithm = algorithm;
  mpi::World world(engine, net::longhorn(nodes, gpn), cfg, opts);
  const int root = 1;  // off-leader root: the representative tree is not aligned
  sim::Time t = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<std::uint8_t*>(R.gpu_malloc(bytes));
    if (R.rank() == root) std::memcpy(dev, payload.data(), bytes);
    R.barrier();
    const sim::Time t0 = R.now();
    R.bcast(dev, bytes, root);
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(dev);
  });
  RunResult res;
  res.latency = t;
  res.summary = telemetry.summarize();
  res.inter_packets = counter.stats().inter_node_data_packets;
  return res;
}

Row make_row(const char* algo, const char* codec, core::CollectiveAlgorithm a,
             core::CompressionConfig cfg, std::size_t bytes, int nodes, int gpn) {
  const auto payload = data::generate("obs_error", bytes / 4);
  const RunResult res = run_bcast(a, std::move(cfg), payload, bytes, nodes, gpn);
  Row r;
  std::ostringstream name;
  name << "bcast/" << algo << "/" << codec << "/" << size_label(bytes) << "@" << nodes
       << "x" << gpn;
  r.name = name.str();
  r.bytes = bytes;
  r.latency_us = res.latency.to_seconds() * 1e6;
  r.mbps = static_cast<double>(bytes) / 1e6 / res.latency.to_seconds();
  r.compress_us = res.summary.compression_time.to_seconds() * 1e6;
  r.decompress_us = res.summary.decompression_time.to_seconds() * 1e6;
  r.inter_packets = res.inter_packets;
  std::printf("%-32s %10.1f us %9.1f MB/s  c=%8.1fus d=%8.1fus ib_transits=%llu\n",
              r.name.c_str(), r.latency_us, r.mbps, r.compress_us, r.decompress_us,
              static_cast<unsigned long long>(r.inter_packets));
  return r;
}

int sweep(const Options& opt, std::vector<Row>& rows) {
  print_header("Hierarchical bcast: flat wire-forwarding vs per-node staging "
               "(obs_error, root=1)");
  auto mpc = core::CompressionConfig::mpc_opt();
  mpc.threshold_bytes = 256 * 1024;
  auto zfp = core::CompressionConfig::zfp_opt(8);
  zfp.threshold_bytes = 256 * 1024;
  const auto raw = core::CompressionConfig::off();
  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{16u << 20}
                : std::vector<std::size_t>{4u << 20, 16u << 20, 64u << 20};
  const std::vector<std::pair<int, int>> topos =
      opt.quick ? std::vector<std::pair<int, int>>{{4, 4}}
                : std::vector<std::pair<int, int>>{{2, 4}, {4, 4}};

  double flat_16m = 0.0, hier_16m = 0.0;
  std::uint64_t hier_16m_transits = 0;
  int gate_nodes = 0;
  for (const auto& [nodes, gpn] : topos) {
    for (const std::size_t bytes : sizes) {
      struct Cfg {
        const char* codec;
        core::CompressionConfig cfg;
      };
      const Cfg cfgs[] = {{"raw", raw}, {"mpc", mpc}, {"zfp8", zfp}};
      for (const auto& [codec, cfg] : cfgs) {
        if (opt.quick && std::string(codec) != "mpc") continue;
        const Row flat =
            make_row("flat", codec, core::CollectiveAlgorithm::Linear, cfg, bytes, nodes,
                     gpn);
        const Row hier = make_row("hier", codec, core::CollectiveAlgorithm::Hierarchical,
                                  cfg, bytes, nodes, gpn);
        if (nodes == 4 && gpn == 4 && bytes == (16u << 20) &&
            std::string(codec) == "mpc") {
          flat_16m = flat.latency_us;
          hier_16m = hier.latency_us;
          hier_16m_transits = hier.inter_packets;
          gate_nodes = nodes;
        }
        rows.push_back(flat);
        rows.push_back(hier);
      }
    }
  }

  const double improvement = (1.0 - hier_16m / flat_16m) * 100.0;
  std::printf("\nhier+MPC vs flat+MPC at 16M on 4x4: %.1f%% faster (gate: >= 30%%)\n",
              improvement);
  int failures = 0;
  if (!(hier_16m <= 0.70 * flat_16m)) {
    std::fprintf(stderr,
                 "FAIL: hierarchical bcast (%.1f us) does not beat flat (%.1f us) by "
                 "30%%\n",
                 hier_16m, flat_16m);
    ++failures;
  }
  std::printf("inter-node wire transits in the hier+MPC run: %llu (gate: == %d, one per "
              "non-root node)\n\n",
              static_cast<unsigned long long>(hier_16m_transits), gate_nodes - 1);
  if (hier_16m_transits != static_cast<std::uint64_t>(gate_nodes - 1)) {
    std::fprintf(stderr, "FAIL: expected %d inter-node transits (nodes-1), got %llu\n",
                 gate_nodes - 1, static_cast<unsigned long long>(hier_16m_transits));
    ++failures;
  }
  return failures;
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"gcmpi-bench-hierarchical-v1\",\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"units\": {\"mbps\": \"bcast message MB per simulated second, both barriers "
        "included\", \"inter_packets\": \"inter-node rendezvous data packets on a clean "
        "fabric\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"bytes\": %zu, \"latency_us\": %.3f, "
                  "\"mbps\": %.1f, \"compress_us\": %.3f, \"decompress_us\": %.3f, "
                  "\"inter_packets\": %llu}%s\n",
                  r.name.c_str(), r.bytes, r.latency_us, r.mbps, r.compress_us,
                  r.decompress_us, static_cast<unsigned long long>(r.inter_packets),
                  i + 1 < rows.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  std::ofstream f(opt.out);
  if (!f) {
    std::fprintf(stderr, "hier_collectives: cannot write %s\n", opt.out.c_str());
    std::exit(2);
  }
  f << os.str();
  std::printf("wrote %s (%zu entries)\n", opt.out.c_str(), rows.size());
}

std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "hier_collectives: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::pair<std::string, double>> out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t np = line.find("\"name\": \"");
    const std::size_t mp = line.find("\"mbps\": ");
    if (np == std::string::npos || mp == std::string::npos) continue;
    const std::size_t ns = np + 9;
    const std::size_t ne = line.find('"', ns);
    if (ne == std::string::npos) continue;
    out.emplace_back(line.substr(ns, ne - ns), std::strtod(line.c_str() + mp + 8, nullptr));
  }
  return out;
}

int compare_baseline(const Options& opt, const std::vector<Row>& rows) {
  const auto base = read_baseline(opt.baseline);
  int regressions = 0;
  std::size_t matched = 0;
  for (const Row& r : rows) {
    const auto it = std::find_if(base.begin(), base.end(),
                                 [&](const auto& b) { return b.first == r.name; });
    if (it == base.end()) continue;
    ++matched;
    if (r.mbps < it->second * (1.0 - opt.threshold)) {
      std::fprintf(stderr, "REGRESSION %s: %.1f MB/s vs baseline %.1f MB/s\n",
                   r.name.c_str(), r.mbps, it->second);
      ++regressions;
    }
  }
  std::printf("baseline check: %zu entries matched, %d regressions (threshold %.0f%%)\n",
              matched, regressions, opt.threshold * 100.0);
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      opt.quick = true;
    } else if (a == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (a == "--threshold" && i + 1 < argc) {
      opt.threshold = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: hier_collectives [--quick] [--out FILE] [--baseline FILE] "
                   "[--threshold FRAC]\n");
      return 2;
    }
  }

  std::vector<Row> rows;
  int gate_failures = sweep(opt, rows);
  write_json(opt, rows);
  if (!opt.baseline.empty()) gate_failures += compare_baseline(opt, rows);
  return gate_failures > 0 ? 1 : 0;
}
