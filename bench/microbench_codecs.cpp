// google-benchmark microbenchmarks of the REAL codec implementations (CPU
// wall-clock, this machine): MPC, ZFP at several rates, FPC. These measure
// our from-scratch implementations honestly — the GPU throughputs used in
// the simulation come from the calibrated model, not from these numbers.
#include <benchmark/benchmark.h>

#include <cmath>

#include <vector>

#include "compress/fpc.hpp"
#include "compress/mpc.hpp"
#include "compress/zfp.hpp"
#include "data/datasets.hpp"

namespace {

using namespace gcmpi;

const std::vector<float>& payload() {
  static const auto data = data::generate("msg_sweep3d", (4u << 20) / 4);
  return data;
}

void BM_MpcCompress(benchmark::State& state) {
  const auto& in = payload();
  comp::MpcCodec codec(static_cast<int>(state.range(0)));
  std::vector<std::uint8_t> out(codec.max_compressed_bytes(in.size()));
  std::size_t size = 0;
  for (auto _ : state) {
    size = codec.compress(in, out);
    benchmark::DoNotOptimize(size);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * in.size() * 4));
  state.counters["ratio"] = static_cast<double>(in.size() * 4) / static_cast<double>(size);
}
BENCHMARK(BM_MpcCompress)->Arg(1)->Arg(4);

void BM_MpcDecompress(benchmark::State& state) {
  const auto& in = payload();
  comp::MpcCodec codec(1);
  std::vector<std::uint8_t> buf(codec.max_compressed_bytes(in.size()));
  const std::size_t size = codec.compress(in, buf);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decompress({buf.data(), size}, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * in.size() * 4));
}
BENCHMARK(BM_MpcDecompress);

void BM_ZfpCompress(benchmark::State& state) {
  const auto& in = payload();
  const int rate = static_cast<int>(state.range(0));
  comp::ZfpCodec codec(rate);
  const comp::ZfpField field = comp::ZfpField::d1(in.size());
  std::vector<std::uint8_t> out(codec.compressed_bytes(field));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.compress(in, field, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * in.size() * 4));
}
BENCHMARK(BM_ZfpCompress)->Arg(4)->Arg(8)->Arg(16);

void BM_ZfpDecompress(benchmark::State& state) {
  const auto& in = payload();
  const int rate = static_cast<int>(state.range(0));
  comp::ZfpCodec codec(rate);
  const comp::ZfpField field = comp::ZfpField::d1(in.size());
  std::vector<std::uint8_t> buf(codec.compressed_bytes(field));
  (void)codec.compress(in, field, buf);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    codec.decompress(buf, field, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * in.size() * 4));
}
BENCHMARK(BM_ZfpDecompress)->Arg(4)->Arg(16);

void BM_FpcCompress(benchmark::State& state) {
  std::vector<double> in((2u << 20) / 8);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = std::sin(1e-3 * static_cast<double>(i));
  comp::FpcCodec codec;
  std::vector<std::uint8_t> out(codec.max_compressed_bytes(in.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.compress(in, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * in.size() * 8));
}
BENCHMARK(BM_FpcCompress);

}  // namespace

BENCHMARK_MAIN();
