// persistent_channels — warm (plan-cached, handshake-free) vs cold repeated
// exchanges on one channel.
//
// A 2-rank halo-style ping: rank 0 sends the same (tag, shape) device
// message every iteration. Iteration 0 pays the full cold rendezvous
// (RTS with serialized header, CTS, staging acquisition, plan derivation);
// after the one-time warm-up grant, steady-state iterations ship only a
// compact RepeatHeader and reuse the held staging + cached launch plan.
// The bench reports cold (iteration 0) vs warm (median of iterations 3+)
// one-way latency per size x codec, plus the channel telemetry that proves
// the handshake really disappeared.
//
// The simulation is deterministic, so the JSON (BENCH_persistent.json) is
// an exact, reproducible artifact: CI re-runs the sweep and compares
// against the committed file with a tight threshold.
//
// Usage:
//   persistent_channels [--quick] [--out FILE] [--baseline FILE] [--threshold FRAC]
//
// Exit status is nonzero if (a) any baseline entry regressed beyond the
// threshold, or (b) the PR's acceptance bar fails: warm iterations must cut
// >= 25% off the cold latency for 64 KiB..1 MiB messages on the headline
// route (the compressible codec; 64 KiB sits below the compression
// threshold, so raw must clear the bar there too) and stay a measurable
// >= 5% win at 4 MiB.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/telemetry.hpp"
#include "mpi/world.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gcmpi;
using bench::omb_dummy;

struct Options {
  bool quick = false;
  std::string out = "BENCH_persistent.json";
  std::string baseline;
  double threshold = 0.02;  // simulation is deterministic; tiny drift budget
};

struct Row {
  std::string name;  // persistent/<codec>/<size>
  std::string codec;
  std::size_t bytes = 0;
  double cold_us = 0.0;
  double warm_us = 0.0;
  double saving_pct = 0.0;
  double mbps = 0.0;  // original bytes / simulated warm one-way latency
  std::uint64_t warm_sends = 0;
  std::uint64_t header_bytes_saved = 0;
};

/// Repeated one-way rank0 -> rank1 transfers of the same (tag, shape)
/// device payload; returns the per-iteration one-way latencies.
Row run_row(const std::string& codec_label, const core::CompressionConfig& cfg,
            std::size_t bytes, int iters) {
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.persistent.enabled = true;
  mpi::World world(engine, net::longhorn(2, 1), cfg, opts);
  const auto payload = omb_dummy(bytes);
  std::vector<double> lat(static_cast<std::size_t>(iters), 0.0);
  sim::Time start = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    void* d = R.gpu_malloc(bytes);
    std::memcpy(d, payload.data(), bytes);
    for (int it = 0; it < iters; ++it) {
      R.barrier();
      if (R.rank() == 0) {
        start = R.now();
        R.send(d, bytes, 1, 1);
      } else {
        R.recv(d, bytes, 0, 1);
        lat[static_cast<std::size_t>(it)] = (R.now() - start).to_seconds() * 1e6;
      }
      R.barrier();
    }
    R.gpu_free(d);
  });

  Row row;
  row.name = "persistent/" + codec_label + "/" + bench::size_label(bytes);
  row.codec = codec_label;
  row.bytes = bytes;
  row.cold_us = lat[0];
  std::vector<double> warm(lat.begin() + 3, lat.end());
  std::sort(warm.begin(), warm.end());
  row.warm_us = warm[warm.size() / 2];
  row.saving_pct = (1.0 - row.warm_us / row.cold_us) * 100.0;
  row.mbps = static_cast<double>(bytes) / row.warm_us;  // bytes/us == MB/s
  for (const auto& ch : telemetry.channels()) {
    row.warm_sends += ch.warm_sends;
    row.header_bytes_saved += ch.header_bytes_saved;
  }
  return row;
}

void print_row(const Row& r) {
  std::printf("%-28s cold %9.1f us  warm %9.1f us  saving %5.1f%%  %9.1f MB/s  "
              "warm_sends=%llu  ctrl_bytes_saved=%llu\n",
              r.name.c_str(), r.cold_us, r.warm_us, r.saving_pct, r.mbps,
              static_cast<unsigned long long>(r.warm_sends),
              static_cast<unsigned long long>(r.header_bytes_saved));
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"gcmpi-bench-persistent-v1\",\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"units\": {\"mbps\": \"original MB per simulated second of warm one-way "
        "latency, D-D Longhorn inter-node\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"codec\": \"%s\", \"bytes\": %zu, "
                  "\"cold_us\": %.3f, \"warm_us\": %.3f, \"saving_pct\": %.1f, "
                  "\"mbps\": %.1f, \"warm_sends\": %llu}%s\n",
                  r.name.c_str(), r.codec.c_str(), r.bytes, r.cold_us, r.warm_us,
                  r.saving_pct, r.mbps, static_cast<unsigned long long>(r.warm_sends),
                  i + 1 < rows.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  std::ofstream f(opt.out);
  if (!f) {
    std::fprintf(stderr, "persistent_channels: cannot write %s\n", opt.out.c_str());
    std::exit(2);
  }
  f << os.str();
  std::printf("wrote %s (%zu entries)\n", opt.out.c_str(), rows.size());
}

std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "persistent_channels: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::pair<std::string, double>> out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t np = line.find("\"name\": \"");
    const std::size_t mp = line.find("\"mbps\": ");
    if (np == std::string::npos || mp == std::string::npos) continue;
    const std::size_t ns = np + 9;
    const std::size_t ne = line.find('"', ns);
    if (ne == std::string::npos) continue;
    out.emplace_back(line.substr(ns, ne - ns), std::strtod(line.c_str() + mp + 8, nullptr));
  }
  return out;
}

int compare_baseline(const Options& opt, const std::vector<Row>& rows) {
  const auto base = read_baseline(opt.baseline);
  int regressions = 0;
  std::size_t matched = 0;
  for (const Row& r : rows) {
    const auto it = std::find_if(base.begin(), base.end(),
                                 [&](const auto& b) { return b.first == r.name; });
    if (it == base.end()) continue;
    ++matched;
    if (r.mbps < it->second * (1.0 - opt.threshold)) {
      ++regressions;
      std::printf("REGRESSION %-36s %8.1f -> %8.1f MB/s\n", r.name.c_str(), it->second, r.mbps);
    }
  }
  std::printf("baseline: %zu/%zu entries matched, %d regression(s) beyond %.1f%%\n", matched,
              rows.size(), regressions, opt.threshold * 100.0);
  return regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      opt.threshold = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: persistent_channels [--quick] [--out FILE] [--baseline FILE] "
                   "[--threshold FRAC]\n");
      return 2;
    }
  }

  // The sweep is a few seconds of simulation either way, so --quick runs
  // the same grid (it only marks the JSON); CI can diff quick output
  // against the committed full baseline 1:1.
  const int iters = 12;
  const std::vector<std::size_t> sizes = {64u << 10, 256u << 10, 1u << 20, 4u << 20};
  struct CodecCase {
    std::string label;
    core::CompressionConfig cfg;
  };
  const std::vector<CodecCase> codecs = {
      {"raw", core::CompressionConfig::off()},
      {"zfp8", core::CompressionConfig::zfp_opt(8)},
  };

  std::printf("persistent_channels: cold vs warm one-way D-D latency, Longhorn "
              "inter-node (IB-EDR)\n");
  std::vector<Row> rows;
  int gate_failures = 0;
  for (const auto& codec : codecs) {
    for (std::size_t bytes : sizes) {
      Row row = run_row(codec.label, codec.cfg, bytes, iters);
      print_row(row);
      if (row.warm_sends == 0) {
        ++gate_failures;
        std::printf("GATE FAIL %s: channel never went warm\n", row.name.c_str());
      }
      // Acceptance bars (see header comment): the headline compressible
      // route must save >= 25% up to 1 MiB and >= 5% at 4 MiB; 64 KiB is
      // below the compression threshold on every route, so raw carries
      // the same bar there.
      const bool bar25 = (codec.label == "zfp8" && bytes <= (1u << 20)) ||
                         (codec.label == "raw" && bytes <= (64u << 10));
      const bool bar5 = codec.label == "zfp8" && bytes == (4u << 20);
      const double need = bar25 ? 25.0 : bar5 ? 5.0 : 0.0;
      if (need > 0.0 && row.saving_pct < need) {
        ++gate_failures;
        std::printf("GATE FAIL %s: %.1f%% saving (< %.0f%%)\n", row.name.c_str(),
                    row.saving_pct, need);
      }
      rows.push_back(std::move(row));
    }
  }

  write_json(opt, rows);
  int rc = gate_failures == 0 ? 0 : 1;
  if (!opt.baseline.empty()) rc = std::max(rc, compare_baseline(opt, rows));
  return rc;
}
