// pipeline_overlap — chunked pipelined rendezvous vs the serial protocol.
//
// Sweeps message size x codec x chunking mode for a one-way D-D transfer on
// Longhorn (IB-EDR inter-node), reporting the simulated one-way latency, the
// effective throughput, and the per-stage busy breakdown the pipeline
// telemetry records (compress / wire / decompress overlap). The simulation
// is deterministic, so the JSON this writes (BENCH_pipeline.json) is an
// exact, reproducible artifact: CI re-runs the sweep and compares against
// the committed file with a tight threshold.
//
// Usage:
//   pipeline_overlap [--quick] [--out FILE] [--baseline FILE] [--threshold FRAC]
//
// Exit status is nonzero if (a) any baseline entry regressed beyond the
// threshold, or (b) the PR's acceptance bar fails: auto-tuned pipelining
// must cut >= 20% off the serial one-way latency for MPC messages >= 4 MiB.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/telemetry.hpp"
#include "mpi/pipeline.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"

namespace {

using namespace gcmpi;
using bench::omb_dummy;

struct Options {
  bool quick = false;
  std::string out = "BENCH_pipeline.json";
  std::string baseline;
  double threshold = 0.02;  // simulation is deterministic; tiny drift budget
};

struct Row {
  std::string name;   // pipeline/<codec>/<size>/<mode>
  std::string codec;
  std::string mode;   // serial | auto | chunk512K | ...
  std::size_t bytes = 0;
  double latency_us = 0.0;
  double mbps = 0.0;  // original bytes / simulated one-way latency
  core::PipelineRecord rec;  // zeroed for serial rows
  bool pipelined = false;
};

struct Measurement {
  sim::Time one_way = sim::Time::zero();
  core::Telemetry telemetry;
};

/// One-way rank0 -> rank1 transfer of a device-resident payload.
Measurement one_way_transfer(const core::CompressionConfig& cfg, mpi::WorldOptions opts,
                             const std::vector<float>& payload) {
  Measurement m;
  sim::Engine engine;
  opts.telemetry = &m.telemetry;
  mpi::World world(engine, net::longhorn(2, 1), cfg, opts);
  const std::uint64_t bytes = payload.size() * 4;
  sim::Time start = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    void* d = R.gpu_malloc(bytes);
    std::memcpy(d, payload.data(), bytes);
    R.barrier();
    if (R.rank() == 0) {
      start = R.now();
      R.send(d, bytes, 1, 1);
    } else {
      R.recv(d, bytes, 0, 1);
      m.one_way = R.now() - start;
    }
    R.gpu_free(d);
  });
  return m;
}

Row run_row(const std::string& codec_label, const core::CompressionConfig& cfg,
            std::size_t bytes, const std::string& mode, std::uint64_t chunk_bytes,
            bool pipelined) {
  mpi::WorldOptions opts;
  opts.pipeline.enabled = pipelined;
  opts.pipeline.chunk_bytes = chunk_bytes;
  const auto payload = omb_dummy(bytes);
  const Measurement m = one_way_transfer(cfg, opts, payload);
  Row row;
  row.name = "pipeline/" + codec_label + "/" + bench::size_label(bytes) + "/" + mode;
  row.codec = codec_label;
  row.mode = mode;
  row.bytes = bytes;
  row.latency_us = m.one_way.to_seconds() * 1e6;
  row.mbps = static_cast<double>(bytes) / m.one_way.to_seconds() / 1e6;
  row.pipelined = !m.telemetry.pipelines().empty();
  if (row.pipelined) row.rec = m.telemetry.pipelines().front();
  return row;
}

void print_row(const Row& r) {
  if (r.pipelined) {
    const auto& p = r.rec;
    const double busy_sum = (p.compress_busy + p.transfer_busy + p.decompress_busy).to_seconds();
    const double overlap = busy_sum > 0.0 ? (1.0 - p.span.to_seconds() / busy_sum) * 100.0 : 0.0;
    std::printf(
        "%-36s %10.1f us %9.1f MB/s  chunks=%2u  c/w/d=%.0f/%.0f/%.0f us  overlap=%4.1f%%\n",
        r.name.c_str(), r.latency_us, r.mbps, p.chunks,
        p.compress_busy.to_seconds() * 1e6, p.transfer_busy.to_seconds() * 1e6,
        p.decompress_busy.to_seconds() * 1e6, overlap);
  } else {
    std::printf("%-36s %10.1f us %9.1f MB/s\n", r.name.c_str(), r.latency_us, r.mbps);
  }
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"gcmpi-bench-pipeline-v1\",\n"
     << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
     << "  \"units\": {\"mbps\": \"original MB per simulated second, one-way D-D "
        "Longhorn inter-node\"},\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"codec\": \"%s\", \"mode\": \"%s\", \"bytes\": %zu, "
                  "\"latency_us\": %.3f, \"mbps\": %.1f, \"chunks\": %u}%s\n",
                  r.name.c_str(), r.codec.c_str(), r.mode.c_str(), r.bytes, r.latency_us,
                  r.mbps, r.pipelined ? r.rec.chunks : 0u, i + 1 < rows.size() ? "," : "");
    os << line;
  }
  os << "  ]\n}\n";
  std::ofstream f(opt.out);
  if (!f) {
    std::fprintf(stderr, "pipeline_overlap: cannot write %s\n", opt.out.c_str());
    std::exit(2);
  }
  f << os.str();
  std::printf("wrote %s (%zu entries)\n", opt.out.c_str(), rows.size());
}

std::vector<std::pair<std::string, double>> read_baseline(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "pipeline_overlap: cannot read baseline %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::pair<std::string, double>> out;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t np = line.find("\"name\": \"");
    const std::size_t mp = line.find("\"mbps\": ");
    if (np == std::string::npos || mp == std::string::npos) continue;
    const std::size_t ns = np + 9;
    const std::size_t ne = line.find('"', ns);
    if (ne == std::string::npos) continue;
    out.emplace_back(line.substr(ns, ne - ns), std::strtod(line.c_str() + mp + 8, nullptr));
  }
  return out;
}

int compare_baseline(const Options& opt, const std::vector<Row>& rows) {
  const auto base = read_baseline(opt.baseline);
  int regressions = 0;
  std::size_t matched = 0;
  for (const Row& r : rows) {
    const auto it = std::find_if(base.begin(), base.end(),
                                 [&](const auto& b) { return b.first == r.name; });
    if (it == base.end()) continue;
    ++matched;
    if (r.mbps < it->second * (1.0 - opt.threshold)) {
      ++regressions;
      std::printf("REGRESSION %-44s %8.1f -> %8.1f MB/s\n", r.name.c_str(), it->second, r.mbps);
    }
  }
  std::printf("baseline: %zu/%zu entries matched, %d regression(s) beyond %.1f%%\n", matched,
              rows.size(), regressions, opt.threshold * 100.0);
  return regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opt.baseline = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      opt.threshold = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: pipeline_overlap [--quick] [--out FILE] [--baseline FILE] "
                   "[--threshold FRAC]\n");
      return 2;
    }
  }

  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{4u << 20, 16u << 20}
                : std::vector<std::size_t>{1u << 20, 4u << 20, 8u << 20, 16u << 20, 32u << 20};
  struct CodecCase {
    std::string label;
    core::CompressionConfig cfg;
  };
  const std::vector<CodecCase> codecs = {
      {"mpc", core::CompressionConfig::mpc_opt()},
      {"zfp16", core::CompressionConfig::zfp_opt(16)},
  };
  struct Mode {
    std::string label;
    std::uint64_t chunk_bytes;  // 0 = auto-tune
    bool pipelined;
  };
  const std::vector<Mode> modes = {
      {"serial", 0, false},
      {"auto", 0, true},
      {"chunk512K", 512u << 10, true},
      {"chunk2M", 2u << 20, true},
  };

  std::printf("pipeline_overlap: one-way D-D latency, Longhorn inter-node (IB-EDR)\n");
  std::vector<Row> rows;
  int gate_failures = 0;
  for (const auto& codec : codecs) {
    for (std::size_t bytes : sizes) {
      double serial_lat = 0.0;
      for (const auto& mode : modes) {
        Row row = run_row(codec.label, codec.cfg, bytes, mode.label, mode.chunk_bytes,
                          mode.pipelined);
        print_row(row);
        if (mode.label == "serial") serial_lat = row.latency_us;
        // The PR's acceptance bar: auto-tuned pipelining cuts >= 20% off the
        // serial one-way latency for MPC messages of 4 MiB and up.
        if (codec.label == "mpc" && bytes >= (4u << 20) && mode.label == "auto" &&
            row.latency_us > 0.8 * serial_lat) {
          ++gate_failures;
          std::printf("GATE FAIL %s: %.1f us vs serial %.1f us (< 20%% win)\n",
                      row.name.c_str(), row.latency_us, serial_lat);
        }
        rows.push_back(std::move(row));
      }
    }
  }

  write_json(opt, rows);
  int rc = gate_failures == 0 ? 0 : 1;
  if (!opt.baseline.empty()) rc = std::max(rc, compare_baseline(opt, rows));
  return rc;
}
