// Table I: comparison between compression techniques. The paper's table is
// qualitative; we print it, then back the key quantitative claim — CPU
// compressors are an order of magnitude too slow for 100 Gb/s fabrics
// while GPU schemes are not — with real wall-clock measurements of our FPC
// (CPU, serial) implementation vs the modeled GPU throughputs of MPC/ZFP.
#include <chrono>
#include <cmath>

#include "common.hpp"

#include "compress/fpc.hpp"
#include "compress/gfc.hpp"
#include "compress/kernel_cost.hpp"
#include "compress/mpc.hpp"
#include "compress/sz.hpp"
#include "compress/zfp.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

namespace {

double wall_gbps(std::uint64_t bytes, const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(bytes) * 8 / secs / 1e9;
}

}  // namespace

int main() {
  print_header("Table I: compression technique feature matrix");
  std::printf("%-18s %9s %7s %5s %7s %9s %7s %9s\n", "design", "lossless", "lossy", "GPU",
              "float", "'on-the-fly'", "public", "MPI supp.");
  auto row = [](const char* name, const char* a, const char* b, const char* c, const char* d,
                const char* e, const char* f, const char* g) {
    std::printf("%-18s %9s %7s %5s %7s %9s %7s %9s\n", name, a, b, c, d, e, f, g);
  };
  row("FPC", "yes", "no", "no", "double", "no", "yes", "no");
  row("fpzip", "yes", "yes", "no", "both", "no", "yes", "no");
  row("ISOBAR", "yes", "no", "no", "both", "no", "yes", "no");
  row("SPDP", "yes", "no", "no", "both", "no", "yes", "no");
  row("GFC", "yes", "no", "yes", "double", "no", "yes", "no");
  row("MPC", "yes", "no", "yes", "both", "no", "yes", "no");
  row("SZ", "no", "yes", "yes", "both", "no", "yes", "no");
  row("ZFP", "no", "yes", "yes", "both", "no", "yes", "no");
  row("MPC-OPT (ours)", "yes", "no", "yes", "float", "YES", "yes", "YES");
  row("ZFP-OPT (ours)", "no", "yes", "yes", "float", "YES", "yes", "YES");

  // Quantitative backing: measured CPU throughput vs modeled GPU throughput.
  const std::size_t n = (8u << 20) / 8;
  std::vector<double> doubles(n);
  for (std::size_t i = 0; i < n; ++i) doubles[i] = std::sin(0.001 * static_cast<double>(i));
  comp::FpcCodec fpc;
  std::vector<std::uint8_t> out(fpc.max_compressed_bytes(n));
  const double fpc_gbps = wall_gbps(n * 8, [&] { (void)fpc.compress(doubles, out); });
  comp::GfcCodec gfc;
  std::vector<std::uint8_t> gout(gfc.max_compressed_bytes(n));
  const double gfc_gbps = wall_gbps(n * 8, [&] { (void)gfc.compress(doubles, gout); });
  const auto floats = data::generate("msg_sweep3d", n);
  comp::SzCodec sz(1e-3);
  std::vector<std::uint8_t> szout(sz.max_compressed_bytes(n));
  const double sz_gbps = wall_gbps(n * 4, [&] { (void)sz.compress(floats, szout); });

  const comp::KernelCostModel model;
  const auto gpu = gpu::v100_spec();
  const std::uint64_t bytes = 64ull << 20;
  const double mpc_gbps = static_cast<double>(bytes) * 8 /
                          model.mpc_compress(bytes, bytes / 2, 80, gpu).to_seconds() / 1e9;
  const double zfp_gbps =
      static_cast<double>(bytes) * 8 / model.zfp_compress(bytes, 16, gpu).to_seconds() / 1e9;

  std::printf("\nWhy CPU compression cannot feed a 100 Gb/s (EDR) link\n");
  std::printf("(serial CPU wall-clock of our implementations vs the V100 kernel model):\n");
  std::printf("  FPC  (CPU, this machine, measured): %8.2f Gb/s\n", fpc_gbps);
  std::printf("  GFC  (CPU serial of GPU algo):      %8.2f Gb/s\n", gfc_gbps);
  std::printf("  SZ   (CPU, eb 1e-3, measured):      %8.2f Gb/s\n", sz_gbps);
  std::printf("  MPC  (GPU V100 model, Table III):   %8.2f Gb/s\n", mpc_gbps);
  std::printf("  ZFP16(GPU V100 model, Table III):   %8.2f Gb/s\n", zfp_gbps);
  std::printf("  IB EDR wire rate:                     100.00 Gb/s\n");
  return 0;
}
