// Table III: performance and compression ratio of MPC and ZFP on the eight
// HPC datasets (V100). Compression ratios are REAL (measured on the
// synthetic stand-in datasets through the actual codecs); throughputs are
// the calibrated V100 kernel model evaluated on the realized sizes.
#include "common.hpp"

#include "compress/kernel_cost.hpp"
#include "compress/mpc.hpp"
#include "compress/zfp.hpp"

using namespace gcmpi;
using namespace gcmpi::bench;

int main() {
  const std::size_t n = (16u << 20) / 4;  // 16MB per dataset (paper: 9-128MB)
  const comp::KernelCostModel model;
  const auto gpu = gpu::v100_spec();

  print_header("Table III: MPC and ZFP on the eight HPC datasets (V100 model)");
  std::printf("%-12s | %9s %9s %6s | %9s %9s %6s %7s | %7s\n", "dataset", "TPc-ZFP",
              "TPd-ZFP", "CR", "TPc-MPC", "TPd-MPC", "CR", "paper", "unique%");
  std::printf("%-12s | %9s %9s %6s | %9s %9s %6s %7s | %7s\n", "", "(Gb/s)", "(Gb/s)", "",
              "(Gb/s)", "(Gb/s)", "", "CR-MPC", "");

  for (const auto& info : data::table3_datasets()) {
    const auto values = data::generate(info.name, n);
    const std::uint64_t bytes = n * 4;

    // ZFP rate 16 (fixed CR 2).
    const comp::ZfpCodec zfp(16);
    const double zfp_cr = 32.0 / 16.0;
    const double tpc_zfp = static_cast<double>(bytes) * 8 /
                           model.zfp_compress(bytes, 16, gpu).to_seconds() / 1e9;
    const double tpd_zfp = static_cast<double>(bytes) * 8 /
                           model.zfp_decompress(bytes, 16, gpu).to_seconds() / 1e9;

    // MPC with the per-dataset tuned dimensionality (real compression).
    const comp::MpcCodec mpc(info.mpc_dimensionality);
    std::vector<std::uint8_t> buf(mpc.max_compressed_bytes(n));
    const std::size_t compressed = mpc.compress(values, buf);
    const double mpc_cr = static_cast<double>(bytes) / static_cast<double>(compressed);
    const double tpc_mpc =
        static_cast<double>(bytes) * 8 /
        model.mpc_compress(bytes, compressed, gpu.sm_count, gpu).to_seconds() / 1e9;
    const double tpd_mpc =
        static_cast<double>(bytes) * 8 /
        model.mpc_decompress(compressed, bytes, gpu.sm_count, gpu).to_seconds() / 1e9;

    std::printf("%-12s | %9.1f %9.1f %6.2f | %9.1f %9.1f %6.3f %7.3f | %6.1f%%\n", info.name,
                tpc_zfp, tpd_zfp, zfp_cr, tpc_mpc, tpd_mpc, mpc_cr, info.mpc_cr_paper,
                data::unique_fraction(values) * 100.0);
  }
  std::printf("\nPaper anchors: ZFP(16) ~450/735 Gb/s fixed CR 2; MPC ~195-212/169-211 Gb/s,\n"
              "CR 1.301-1.537 except msg_sppm at 8.951. Lowest throughput 168.91 Gb/s is\n"
              "still above the 100 Gb/s EDR wire.\n");
  return 0;
}
