file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_selection.dir/ablation_dynamic_selection.cpp.o"
  "CMakeFiles/ablation_dynamic_selection.dir/ablation_dynamic_selection.cpp.o.d"
  "ablation_dynamic_selection"
  "ablation_dynamic_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
