file(REMOVE_RECURSE
  "CMakeFiles/ext_alltoall.dir/ext_alltoall.cpp.o"
  "CMakeFiles/ext_alltoall.dir/ext_alltoall.cpp.o.d"
  "ext_alltoall"
  "ext_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
