# Empty compiler generated dependencies file for ext_alltoall.
# This may be replaced when dependencies are built.
