file(REMOVE_RECURSE
  "CMakeFiles/ext_bandwidth.dir/ext_bandwidth.cpp.o"
  "CMakeFiles/ext_bandwidth.dir/ext_bandwidth.cpp.o.d"
  "ext_bandwidth"
  "ext_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
