file(REMOVE_RECURSE
  "CMakeFiles/fig11_collectives.dir/fig11_collectives.cpp.o"
  "CMakeFiles/fig11_collectives.dir/fig11_collectives.cpp.o.d"
  "fig11_collectives"
  "fig11_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
