# Empty compiler generated dependencies file for fig11_collectives.
# This may be replaced when dependencies are built.
