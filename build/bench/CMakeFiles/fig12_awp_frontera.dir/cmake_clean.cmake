file(REMOVE_RECURSE
  "CMakeFiles/fig12_awp_frontera.dir/fig12_awp_frontera.cpp.o"
  "CMakeFiles/fig12_awp_frontera.dir/fig12_awp_frontera.cpp.o.d"
  "fig12_awp_frontera"
  "fig12_awp_frontera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_awp_frontera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
