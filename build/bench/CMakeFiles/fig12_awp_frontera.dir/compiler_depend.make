# Empty compiler generated dependencies file for fig12_awp_frontera.
# This may be replaced when dependencies are built.
