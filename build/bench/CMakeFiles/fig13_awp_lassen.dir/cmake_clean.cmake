file(REMOVE_RECURSE
  "CMakeFiles/fig13_awp_lassen.dir/fig13_awp_lassen.cpp.o"
  "CMakeFiles/fig13_awp_lassen.dir/fig13_awp_lassen.cpp.o.d"
  "fig13_awp_lassen"
  "fig13_awp_lassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_awp_lassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
