# Empty compiler generated dependencies file for fig13_awp_lassen.
# This may be replaced when dependencies are built.
