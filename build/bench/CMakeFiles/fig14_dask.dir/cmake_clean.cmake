file(REMOVE_RECURSE
  "CMakeFiles/fig14_dask.dir/fig14_dask.cpp.o"
  "CMakeFiles/fig14_dask.dir/fig14_dask.cpp.o.d"
  "fig14_dask"
  "fig14_dask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
