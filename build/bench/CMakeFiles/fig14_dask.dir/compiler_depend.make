# Empty compiler generated dependencies file for fig14_dask.
# This may be replaced when dependencies are built.
