file(REMOVE_RECURSE
  "CMakeFiles/fig2a_bandwidth.dir/fig2a_bandwidth.cpp.o"
  "CMakeFiles/fig2a_bandwidth.dir/fig2a_bandwidth.cpp.o.d"
  "fig2a_bandwidth"
  "fig2a_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
