# Empty dependencies file for fig2a_bandwidth.
# This may be replaced when dependencies are built.
