file(REMOVE_RECURSE
  "CMakeFiles/fig2b_awp_breakdown.dir/fig2b_awp_breakdown.cpp.o"
  "CMakeFiles/fig2b_awp_breakdown.dir/fig2b_awp_breakdown.cpp.o.d"
  "fig2b_awp_breakdown"
  "fig2b_awp_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_awp_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
