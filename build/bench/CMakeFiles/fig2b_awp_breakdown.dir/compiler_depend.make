# Empty compiler generated dependencies file for fig2b_awp_breakdown.
# This may be replaced when dependencies are built.
