file(REMOVE_RECURSE
  "CMakeFiles/fig5_naive_latency.dir/fig5_naive_latency.cpp.o"
  "CMakeFiles/fig5_naive_latency.dir/fig5_naive_latency.cpp.o.d"
  "fig5_naive_latency"
  "fig5_naive_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_naive_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
