# Empty dependencies file for fig6_mpc_breakdown.
# This may be replaced when dependencies are built.
