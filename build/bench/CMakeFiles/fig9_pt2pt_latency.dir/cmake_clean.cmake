file(REMOVE_RECURSE
  "CMakeFiles/fig9_pt2pt_latency.dir/fig9_pt2pt_latency.cpp.o"
  "CMakeFiles/fig9_pt2pt_latency.dir/fig9_pt2pt_latency.cpp.o.d"
  "fig9_pt2pt_latency"
  "fig9_pt2pt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pt2pt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
