# Empty compiler generated dependencies file for fig9_pt2pt_latency.
# This may be replaced when dependencies are built.
