file(REMOVE_RECURSE
  "CMakeFiles/table3_compressors.dir/table3_compressors.cpp.o"
  "CMakeFiles/table3_compressors.dir/table3_compressors.cpp.o.d"
  "table3_compressors"
  "table3_compressors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_compressors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
