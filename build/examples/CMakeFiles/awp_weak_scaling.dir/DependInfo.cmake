
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/awp_weak_scaling.cpp" "examples/CMakeFiles/awp_weak_scaling.dir/awp_weak_scaling.cpp.o" "gcc" "examples/CMakeFiles/awp_weak_scaling.dir/awp_weak_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/gcmpi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/gcmpi_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gcmpi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/gcmpi_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gcmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/gcmpi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gcmpi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gcmpi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
