file(REMOVE_RECURSE
  "CMakeFiles/awp_weak_scaling.dir/awp_weak_scaling.cpp.o"
  "CMakeFiles/awp_weak_scaling.dir/awp_weak_scaling.cpp.o.d"
  "awp_weak_scaling"
  "awp_weak_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awp_weak_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
