# Empty compiler generated dependencies file for awp_weak_scaling.
# This may be replaced when dependencies are built.
