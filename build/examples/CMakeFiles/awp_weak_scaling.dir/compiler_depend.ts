# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for awp_weak_scaling.
