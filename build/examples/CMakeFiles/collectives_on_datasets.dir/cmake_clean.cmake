file(REMOVE_RECURSE
  "CMakeFiles/collectives_on_datasets.dir/collectives_on_datasets.cpp.o"
  "CMakeFiles/collectives_on_datasets.dir/collectives_on_datasets.cpp.o.d"
  "collectives_on_datasets"
  "collectives_on_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_on_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
