# Empty dependencies file for collectives_on_datasets.
# This may be replaced when dependencies are built.
