file(REMOVE_RECURSE
  "CMakeFiles/dask_transpose.dir/dask_transpose.cpp.o"
  "CMakeFiles/dask_transpose.dir/dask_transpose.cpp.o.d"
  "dask_transpose"
  "dask_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dask_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
