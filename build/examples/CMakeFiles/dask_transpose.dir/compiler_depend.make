# Empty compiler generated dependencies file for dask_transpose.
# This may be replaced when dependencies are built.
