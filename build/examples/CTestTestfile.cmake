# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_awp_weak_scaling "/root/repo/build/examples/awp_weak_scaling" "8")
set_tests_properties(example_awp_weak_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dask_transpose "/root/repo/build/examples/dask_transpose" "1024" "256")
set_tests_properties(example_dask_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collectives "/root/repo/build/examples/collectives_on_datasets" "1")
set_tests_properties(example_collectives PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_monitoring "/root/repo/build/examples/monitoring")
set_tests_properties(example_monitoring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
