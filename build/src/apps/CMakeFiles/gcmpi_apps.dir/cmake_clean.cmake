file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_apps.dir/awp/distributed.cpp.o"
  "CMakeFiles/gcmpi_apps.dir/awp/distributed.cpp.o.d"
  "CMakeFiles/gcmpi_apps.dir/awp/elastic.cpp.o"
  "CMakeFiles/gcmpi_apps.dir/awp/elastic.cpp.o.d"
  "CMakeFiles/gcmpi_apps.dir/awp/solver.cpp.o"
  "CMakeFiles/gcmpi_apps.dir/awp/solver.cpp.o.d"
  "CMakeFiles/gcmpi_apps.dir/dask/distributed_array.cpp.o"
  "CMakeFiles/gcmpi_apps.dir/dask/distributed_array.cpp.o.d"
  "libgcmpi_apps.a"
  "libgcmpi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
