file(REMOVE_RECURSE
  "libgcmpi_apps.a"
)
