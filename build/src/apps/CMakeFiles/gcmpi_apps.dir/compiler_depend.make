# Empty compiler generated dependencies file for gcmpi_apps.
# This may be replaced when dependencies are built.
