
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/fpc.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/fpc.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/fpc.cpp.o.d"
  "/root/repo/src/compress/gfc.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/gfc.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/gfc.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/kernel_cost.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/kernel_cost.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/kernel_cost.cpp.o.d"
  "/root/repo/src/compress/mpc.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/mpc.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/mpc.cpp.o.d"
  "/root/repo/src/compress/sz.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/sz.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/sz.cpp.o.d"
  "/root/repo/src/compress/zfp.cpp" "src/compress/CMakeFiles/gcmpi_compress.dir/zfp.cpp.o" "gcc" "src/compress/CMakeFiles/gcmpi_compress.dir/zfp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gcmpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gcmpi_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
