file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_compress.dir/fpc.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/fpc.cpp.o.d"
  "CMakeFiles/gcmpi_compress.dir/gfc.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/gfc.cpp.o.d"
  "CMakeFiles/gcmpi_compress.dir/huffman.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/gcmpi_compress.dir/kernel_cost.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/kernel_cost.cpp.o.d"
  "CMakeFiles/gcmpi_compress.dir/mpc.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/mpc.cpp.o.d"
  "CMakeFiles/gcmpi_compress.dir/sz.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/sz.cpp.o.d"
  "CMakeFiles/gcmpi_compress.dir/zfp.cpp.o"
  "CMakeFiles/gcmpi_compress.dir/zfp.cpp.o.d"
  "libgcmpi_compress.a"
  "libgcmpi_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
