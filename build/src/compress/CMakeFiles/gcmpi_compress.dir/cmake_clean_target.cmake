file(REMOVE_RECURSE
  "libgcmpi_compress.a"
)
