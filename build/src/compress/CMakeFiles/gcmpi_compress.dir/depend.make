# Empty dependencies file for gcmpi_compress.
# This may be replaced when dependencies are built.
