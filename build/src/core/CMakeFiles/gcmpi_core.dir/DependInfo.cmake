
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/gcmpi_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/gcmpi_core.dir/config.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/core/CMakeFiles/gcmpi_core.dir/dynamic.cpp.o" "gcc" "src/core/CMakeFiles/gcmpi_core.dir/dynamic.cpp.o.d"
  "/root/repo/src/core/header.cpp" "src/core/CMakeFiles/gcmpi_core.dir/header.cpp.o" "gcc" "src/core/CMakeFiles/gcmpi_core.dir/header.cpp.o.d"
  "/root/repo/src/core/manager.cpp" "src/core/CMakeFiles/gcmpi_core.dir/manager.cpp.o" "gcc" "src/core/CMakeFiles/gcmpi_core.dir/manager.cpp.o.d"
  "/root/repo/src/core/telemetry.cpp" "src/core/CMakeFiles/gcmpi_core.dir/telemetry.cpp.o" "gcc" "src/core/CMakeFiles/gcmpi_core.dir/telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/gcmpi_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gcmpi_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gcmpi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
