file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_core.dir/config.cpp.o"
  "CMakeFiles/gcmpi_core.dir/config.cpp.o.d"
  "CMakeFiles/gcmpi_core.dir/dynamic.cpp.o"
  "CMakeFiles/gcmpi_core.dir/dynamic.cpp.o.d"
  "CMakeFiles/gcmpi_core.dir/header.cpp.o"
  "CMakeFiles/gcmpi_core.dir/header.cpp.o.d"
  "CMakeFiles/gcmpi_core.dir/manager.cpp.o"
  "CMakeFiles/gcmpi_core.dir/manager.cpp.o.d"
  "CMakeFiles/gcmpi_core.dir/telemetry.cpp.o"
  "CMakeFiles/gcmpi_core.dir/telemetry.cpp.o.d"
  "libgcmpi_core.a"
  "libgcmpi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
