file(REMOVE_RECURSE
  "libgcmpi_core.a"
)
