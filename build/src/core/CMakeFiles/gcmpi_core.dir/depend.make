# Empty dependencies file for gcmpi_core.
# This may be replaced when dependencies are built.
