file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_data.dir/datasets.cpp.o"
  "CMakeFiles/gcmpi_data.dir/datasets.cpp.o.d"
  "libgcmpi_data.a"
  "libgcmpi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
