file(REMOVE_RECURSE
  "libgcmpi_data.a"
)
