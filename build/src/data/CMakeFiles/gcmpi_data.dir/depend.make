# Empty dependencies file for gcmpi_data.
# This may be replaced when dependencies are built.
