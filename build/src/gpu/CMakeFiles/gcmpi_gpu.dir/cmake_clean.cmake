file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_gpu.dir/buffer_pool.cpp.o"
  "CMakeFiles/gcmpi_gpu.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/gcmpi_gpu.dir/device.cpp.o"
  "CMakeFiles/gcmpi_gpu.dir/device.cpp.o.d"
  "libgcmpi_gpu.a"
  "libgcmpi_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
