file(REMOVE_RECURSE
  "libgcmpi_gpu.a"
)
