# Empty compiler generated dependencies file for gcmpi_gpu.
# This may be replaced when dependencies are built.
