file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_mpi.dir/collectives.cpp.o"
  "CMakeFiles/gcmpi_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/gcmpi_mpi.dir/world.cpp.o"
  "CMakeFiles/gcmpi_mpi.dir/world.cpp.o.d"
  "libgcmpi_mpi.a"
  "libgcmpi_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
