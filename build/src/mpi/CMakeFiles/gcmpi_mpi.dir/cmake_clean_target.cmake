file(REMOVE_RECURSE
  "libgcmpi_mpi.a"
)
