# Empty dependencies file for gcmpi_mpi.
# This may be replaced when dependencies are built.
