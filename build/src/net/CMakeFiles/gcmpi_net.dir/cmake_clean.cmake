file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_net.dir/cluster.cpp.o"
  "CMakeFiles/gcmpi_net.dir/cluster.cpp.o.d"
  "libgcmpi_net.a"
  "libgcmpi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
