file(REMOVE_RECURSE
  "libgcmpi_net.a"
)
