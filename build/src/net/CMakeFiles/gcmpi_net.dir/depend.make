# Empty dependencies file for gcmpi_net.
# This may be replaced when dependencies are built.
