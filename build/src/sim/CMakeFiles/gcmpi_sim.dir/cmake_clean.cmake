file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_sim.dir/engine.cpp.o"
  "CMakeFiles/gcmpi_sim.dir/engine.cpp.o.d"
  "CMakeFiles/gcmpi_sim.dir/stats.cpp.o"
  "CMakeFiles/gcmpi_sim.dir/stats.cpp.o.d"
  "libgcmpi_sim.a"
  "libgcmpi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
