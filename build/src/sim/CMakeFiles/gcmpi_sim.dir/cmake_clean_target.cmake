file(REMOVE_RECURSE
  "libgcmpi_sim.a"
)
