# Empty dependencies file for gcmpi_sim.
# This may be replaced when dependencies are built.
