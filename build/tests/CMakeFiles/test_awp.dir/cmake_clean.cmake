file(REMOVE_RECURSE
  "CMakeFiles/test_awp.dir/test_awp.cpp.o"
  "CMakeFiles/test_awp.dir/test_awp.cpp.o.d"
  "test_awp"
  "test_awp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_awp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
