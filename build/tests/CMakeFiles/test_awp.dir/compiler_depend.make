# Empty compiler generated dependencies file for test_awp.
# This may be replaced when dependencies are built.
