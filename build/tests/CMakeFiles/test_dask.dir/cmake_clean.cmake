file(REMOVE_RECURSE
  "CMakeFiles/test_dask.dir/test_dask.cpp.o"
  "CMakeFiles/test_dask.dir/test_dask.cpp.o.d"
  "test_dask"
  "test_dask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
