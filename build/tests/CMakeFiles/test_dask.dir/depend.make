# Empty dependencies file for test_dask.
# This may be replaced when dependencies are built.
