file(REMOVE_RECURSE
  "CMakeFiles/test_gfc.dir/test_gfc.cpp.o"
  "CMakeFiles/test_gfc.dir/test_gfc.cpp.o.d"
  "test_gfc"
  "test_gfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
