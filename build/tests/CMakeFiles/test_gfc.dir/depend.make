# Empty dependencies file for test_gfc.
# This may be replaced when dependencies are built.
