file(REMOVE_RECURSE
  "CMakeFiles/test_header.dir/test_header.cpp.o"
  "CMakeFiles/test_header.dir/test_header.cpp.o.d"
  "test_header"
  "test_header.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
