file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_cost.dir/test_kernel_cost.cpp.o"
  "CMakeFiles/test_kernel_cost.dir/test_kernel_cost.cpp.o.d"
  "test_kernel_cost"
  "test_kernel_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
