# Empty compiler generated dependencies file for test_kernel_cost.
# This may be replaced when dependencies are built.
