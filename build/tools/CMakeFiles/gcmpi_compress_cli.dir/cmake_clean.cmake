file(REMOVE_RECURSE
  "CMakeFiles/gcmpi_compress_cli.dir/gcmpi_compress.cpp.o"
  "CMakeFiles/gcmpi_compress_cli.dir/gcmpi_compress.cpp.o.d"
  "gcmpi_compress"
  "gcmpi_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcmpi_compress_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
