# Empty compiler generated dependencies file for gcmpi_compress_cli.
# This may be replaced when dependencies are built.
