// Example: weak-scaling the AWP wave-propagation proxy with and without
// on-the-fly MPC compression (a miniature of the paper's Fig. 12).
//
//   $ ./awp_weak_scaling [max_gpus]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/awp/distributed.hpp"
#include "mpi/world.hpp"

using namespace gcmpi;

namespace {

apps::awp::AwpReport run(int px, int py, core::CompressionConfig cfg) {
  sim::Engine engine;
  cfg.pool_buffer_bytes = 4u << 20;  // halo-sized pool buffers
  const int gpus = px * py;
  const int per_node = std::min(4, gpus);
  mpi::World world(engine, net::longhorn(gpus / per_node, per_node), cfg);
  apps::awp::AwpReport report;
  world.run([&](mpi::Rank& R) {
    apps::awp::AwpConfig c;
    c.local = {16, 16, 96};
    c.px = px;
    c.py = py;
    c.steps = 4;
    auto rep = apps::awp::run_awp(R, c);
    if (R.rank() == 0) report = rep;
  });
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_gpus = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("AWP-ODC proxy weak scaling on Longhorn-like cluster (4 GPUs/node)\n\n");
  std::printf("%6s %14s %14s %12s %12s\n", "GPUs", "baseline ms/it", "MPC-OPT ms/it",
              "TFLOPS base", "TFLOPS MPC");
  for (int gpus = 4; gpus <= max_gpus; gpus *= 2) {
    const int px = gpus >= 2 ? gpus / 2 : 1;
    const int py = gpus / px;
    auto base = run(px, py, core::CompressionConfig::off());
    auto mpc_cfg = core::CompressionConfig::mpc_opt();
    mpc_cfg.threshold_bytes = 128 * 1024;
    auto mpc = run(px, py, mpc_cfg);
    std::printf("%6d %14.2f %14.2f %12.2f %12.2f\n", gpus, base.time_per_step_ms,
                mpc.time_per_step_ms, base.gpu_tflops, mpc.gpu_tflops);
  }
  return 0;
}
