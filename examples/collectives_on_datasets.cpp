// Example: MPI_Bcast latency on the eight Table-III HPC datasets with the
// compression-enabled collectives (a miniature of the paper's Fig. 11a).
//
//   $ ./collectives_on_datasets [message_mb]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "compress/mpc.hpp"
#include "data/datasets.hpp"
#include "mpi/world.hpp"

using namespace gcmpi;

namespace {

double bcast_ms(core::CompressionConfig cfg, const std::vector<float>& payload) {
  sim::Engine engine;
  mpi::World world(engine, net::frontera_liquid(4, 2), cfg);
  sim::Time t = sim::Time::zero();
  const std::size_t bytes = payload.size() * 4;
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(bytes));
    if (R.rank() == 0) std::memcpy(dev, payload.data(), bytes);
    R.barrier();
    const sim::Time t0 = R.now();
    R.bcast(dev, bytes, 0);
    R.barrier();
    if (R.rank() == 0) t = R.now() - t0;
    R.gpu_free(dev);
  });
  return t.to_ms();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t mb = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4;
  const std::size_t n = mb * (1u << 20) / 4;
  std::printf("MPI_Bcast of %zu MB device data, 4 nodes x 2 GPUs, Frontera-Liquid-like\n\n", mb);
  std::printf("%-14s %12s %12s %12s %10s\n", "dataset", "base(ms)", "MPC-OPT(ms)",
              "ZFP8(ms)", "MPC ratio");
  for (const auto& info : data::table3_datasets()) {
    const auto payload = data::generate(info.name, n);
    const double base = bcast_ms(core::CompressionConfig::off(), payload);
    const double mpc = bcast_ms(core::CompressionConfig::mpc_opt(info.mpc_dimensionality), payload);
    const double zfp = bcast_ms(core::CompressionConfig::zfp_opt(8), payload);

    // Measure the MPC ratio directly for the report column.
    comp::MpcCodec codec(info.mpc_dimensionality);
    std::vector<std::uint8_t> buf(codec.max_compressed_bytes(n));
    const double ratio = static_cast<double>(n * 4) / static_cast<double>(codec.compress(payload, buf));
    std::printf("%-14s %12.2f %12.2f %12.2f %9.2fx\n", info.name, base, mpc, zfp, ratio);
  }
  return 0;
}
