// Example: the Dask cuPy "x + x.T" application benchmark (paper Sec. VII-B)
// across worker counts, baseline vs ZFP-OPT.
//
//   $ ./dask_transpose [matrix_n] [chunk_n]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/dask/distributed_array.hpp"
#include "mpi/world.hpp"

using namespace gcmpi;

namespace {

apps::dask::DaskReport run(int workers, core::CompressionConfig cfg,
                           const apps::dask::DaskConfig& dc) {
  sim::Engine engine;
  cfg.pool_buffer_bytes = std::max<std::size_t>(dc.chunk_n * dc.chunk_n * 4, 1u << 20);
  mpi::World world(engine, net::ri2(workers, 1), cfg);
  apps::dask::DaskReport report;
  world.run([&](mpi::Rank& R) {
    auto rep = apps::dask::run_transpose_sum(R, dc);
    if (R.rank() == 0) report = rep;
  });
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  apps::dask::DaskConfig dc;
  dc.matrix_n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2048;
  dc.chunk_n = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 256;
  dc.verify = false;

  auto zfp8 = core::CompressionConfig::zfp_opt(8);
  zfp8.threshold_bytes = 128 * 1024;

  std::printf("Dask proxy: y = x + x.T on the RI2-like cluster (chunks %zux%zu)\n\n",
              dc.chunk_n, dc.chunk_n);
  std::printf("%8s %16s %16s %14s\n", "workers", "base time(ms)", "zfp8 time(ms)", "speedup");
  for (int w : {2, 4, 6, 8}) {
    const auto base = run(w, core::CompressionConfig::off(), dc);
    const auto comp = run(w, zfp8, dc);
    std::printf("%8d %16.2f %16.2f %13.2fx\n", w, base.exec_time.to_ms(),
                comp.exec_time.to_ms(),
                base.exec_time.to_seconds() / comp.exec_time.to_seconds());
  }
  return 0;
}
