// Example: INAM-style monitoring of the compression framework (the paper's
// Sec. IX future work). Runs a mixed workload — several datasets broadcast
// across the cluster — with telemetry attached, then prints per-rank
// summaries and dumps the raw event stream as CSV. A second run repeats
// the workload over a lossy fabric to show the reliability counters
// (retransmissions, detected corruptions, codec faults).
//
// A third run closes the loop: the AdaptiveController subscribes to the
// telemetry streams and re-decides the codec per message while the payload
// drifts from compressible to incompressible; the decision log it leaves
// behind is printed at the end.
//
//   $ ./monitoring [out.csv]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "adapt/controller.hpp"
#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "fault/injector.hpp"
#include "mpi/world.hpp"

using namespace gcmpi;

namespace {

int run_workload(core::Telemetry& telemetry, fault::FaultInjector* fault) {
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.fault = fault;

  sim::Engine engine;
  mpi::World world(engine, net::longhorn(4, 2), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = (2u << 20) / 4;
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    for (const auto& info : data::table3_datasets()) {
      if (R.rank() == 0) {
        const auto payload = data::generate(info.name, n);
        std::memcpy(dev, payload.data(), n * 4);
      }
      R.bcast(dev, n * 4, 0);
    }
    R.gpu_free(dev);
  });
  return world.size();
}

/// Adaptive run: rank 0 streams 4 MiB messages whose compressibility
/// drifts mid-stream; the controller's decision log shows the closed loop
/// switching codecs (and occasionally probing the runner-up).
void run_adaptive(core::Telemetry& telemetry) {
  adapt::AdaptiveOptions aopts;
  aopts.lossy_allowed = false;  // lossless duel (raw vs MPC) shows the drift
  adapt::AdaptiveController controller(gpu::v100_spec(), 12.5, aopts);
  controller.bind(telemetry);
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.adaptive = &controller;
  sim::Engine engine;
  mpi::World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = (4u << 20) / 4;
  const auto smooth = data::generate("msg_sppm", n);
  const auto noisy = data::quantized_noise(n, 4096, 7);
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    int tag = 0;
    for (const auto* phase : {&smooth, &noisy, &smooth}) {
      if (R.rank() == 0) std::memcpy(dev, phase->data(), n * 4);
      for (int i = 0; i < 8; ++i, ++tag) {
        if (R.rank() == 0) {
          R.send(dev, n * 4, 1, tag);
        } else {
          R.recv(dev, n * 4, 0, tag);
        }
      }
    }
    R.gpu_free(dev);
  });
}

}  // namespace

int main(int argc, char** argv) {
  core::Telemetry telemetry;
  const int ranks = run_workload(telemetry, nullptr);

  std::printf("Per-rank compression activity (8 broadcasts of 2MB dataset slices):\n\n");
  std::printf("%5s %10s %12s %10s %12s %14s\n", "rank", "compress", "decompress", "ratio",
              "t_comp(us)", "t_decomp(us)");
  for (int r = 0; r < ranks; ++r) {
    const auto s = telemetry.summarize(r);
    std::printf("%5d %10llu %12llu %9.2fx %12.1f %14.1f\n", r,
                static_cast<unsigned long long>(s.compressions),
                static_cast<unsigned long long>(s.decompressions), s.achieved_ratio(),
                s.compression_time.to_us(), s.decompression_time.to_us());
  }
  const auto all = telemetry.summarize();
  std::printf("\nGlobal: %llu compressions, %.1f MB saved on the wire (ratio %.2fx)\n",
              static_cast<unsigned long long>(all.compressions),
              static_cast<double>(all.bytes_saved()) / 1e6, all.achieved_ratio());

  // Same workload, unhealthy fabric: 2% packet drop, 1% corruption, and the
  // occasional decompression kernel fault. The reliability layer keeps the
  // broadcasts bit-exact; the new telemetry kinds show what it cost.
  fault::FaultPlan plan = fault::FaultPlan::lossy(/*seed=*/2026, 0.02, 0.01);
  plan.decompress_fail_probability = 0.01;
  fault::FaultInjector injector(plan);
  core::Telemetry chaos_telemetry;
  run_workload(chaos_telemetry, &injector);

  const auto chaos = chaos_telemetry.summarize();
  const auto& fs = injector.stats();
  std::printf("\nSame workload over a lossy fabric (2%% drop, 1%% corruption):\n");
  std::printf("  data packets %llu, dropped %llu, corrupted %llu\n",
              static_cast<unsigned long long>(fs.data_packets),
              static_cast<unsigned long long>(fs.drops),
              static_cast<unsigned long long>(fs.corruptions));
  std::printf("  retransmissions %llu, corruptions detected (CRC32C) %llu, codec faults %llu\n",
              static_cast<unsigned long long>(chaos.retransmits),
              static_cast<unsigned long long>(chaos.corruptions_detected),
              static_cast<unsigned long long>(chaos.codec_faults));

  // Closed-loop run: drifting compressibility, codec re-decided per message.
  core::Telemetry adaptive_telemetry;
  run_adaptive(adaptive_telemetry);
  std::printf("\nAdaptive control plane over a drifting stream (24 x 4MB, "
              "compressible -> noise -> compressible):\n");
  std::printf("%10s %6s %8s %8s %8s %12s\n", "t(us)", "scope", "choice", "probe",
              "quarant", "predict(us)");
  for (const auto& d : adaptive_telemetry.decisions()) {
    std::printf("%10.1f %6s %8s %8s %8s %12.1f\n", d.at.to_us(), d.scope, d.choice,
                d.probe ? "yes" : "-", d.quarantined ? "yes" : "-", d.predicted_us);
  }
  const auto ad = adaptive_telemetry.summarize();
  std::printf("decisions %llu (probes %llu), achieved ratio %.2fx\n",
              static_cast<unsigned long long>(ad.decisions),
              static_cast<unsigned long long>(ad.probes), ad.achieved_ratio());

  if (argc > 1) {
    std::ofstream out(argv[1]);
    telemetry.write_csv(out);
    std::printf("Event stream written to %s (%zu events)\n", argv[1],
                telemetry.events().size());
  }
  return 0;
}
