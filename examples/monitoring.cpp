// Example: INAM-style monitoring of the compression framework (the paper's
// Sec. IX future work). Runs a mixed workload — several datasets broadcast
// across the cluster — with telemetry attached, then prints per-rank
// summaries and dumps the raw event stream as CSV.
//
//   $ ./monitoring [out.csv]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "mpi/world.hpp"

using namespace gcmpi;

int main(int argc, char** argv) {
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;

  sim::Engine engine;
  mpi::World world(engine, net::longhorn(4, 2), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = (2u << 20) / 4;
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    for (const auto& info : data::table3_datasets()) {
      if (R.rank() == 0) {
        const auto payload = data::generate(info.name, n);
        std::memcpy(dev, payload.data(), n * 4);
      }
      R.bcast(dev, n * 4, 0);
    }
    R.gpu_free(dev);
  });

  std::printf("Per-rank compression activity (8 broadcasts of 2MB dataset slices):\n\n");
  std::printf("%5s %10s %12s %10s %12s %14s\n", "rank", "compress", "decompress", "ratio",
              "t_comp(us)", "t_decomp(us)");
  for (int r = 0; r < world.size(); ++r) {
    const auto s = telemetry.summarize(r);
    std::printf("%5d %10llu %12llu %9.2fx %12.1f %14.1f\n", r,
                static_cast<unsigned long long>(s.compressions),
                static_cast<unsigned long long>(s.decompressions), s.achieved_ratio(),
                s.compression_time.to_us(), s.decompression_time.to_us());
  }
  const auto all = telemetry.summarize();
  std::printf("\nGlobal: %llu compressions, %.1f MB saved on the wire (ratio %.2fx)\n",
              static_cast<unsigned long long>(all.compressions),
              static_cast<double>(all.bytes_saved()) / 1e6, all.achieved_ratio());

  if (argc > 1) {
    std::ofstream out(argv[1]);
    telemetry.write_csv(out);
    std::printf("Event stream written to %s (%zu events)\n", argv[1],
                telemetry.events().size());
  }
  return 0;
}
