// Quickstart: send a 16 MB GPU-resident scientific array between two nodes
// of a simulated Longhorn-like cluster, with and without on-the-fly
// compression, and print what the paper's Fig. 9(a) measures.
//
//   $ ./quickstart
//
// Walks through the full public API: build a cluster, configure the
// compression framework, run MPI-style rank code, inspect stats.
#include <cstdio>
#include <cstring>
#include <vector>

#include "data/datasets.hpp"
#include "mpi/world.hpp"

using namespace gcmpi;

namespace {

/// One ping-pong; returns one-way latency in microseconds.
double measure(core::CompressionConfig cfg, const std::vector<float>& payload,
               double* ratio_out) {
  const std::size_t bytes = payload.size() * 4;
  sim::Engine engine;
  // 2 nodes x 1 V100, NVLink intra-node, InfiniBand EDR inter-node.
  mpi::World world(engine, net::longhorn(2, 1), cfg);

  sim::Time rtt = sim::Time::zero();
  world.run([&](mpi::Rank& R) {
    // Allocate on the (simulated) GPU — MiniMPI detects device pointers
    // exactly like a CUDA-aware MPI and routes them through the
    // compression-enabled rendezvous path.
    auto* dev = static_cast<float*>(R.gpu_malloc(bytes));
    std::memcpy(dev, payload.data(), bytes);
    if (R.rank() == 0) {
      const sim::Time t0 = R.now();
      R.send(dev, bytes, /*dst=*/1, /*tag=*/0);
      R.recv(dev, bytes, 1, 1);
      rtt = R.now() - t0;
      if (ratio_out != nullptr) *ratio_out = R.compression().stats().achieved_ratio();
    } else {
      R.recv(dev, bytes, 0, 0);
      R.send(dev, bytes, 0, 1);
    }
    R.gpu_free(dev);
  });
  return rtt.to_us() / 2.0;
}

}  // namespace

int main() {
  const std::size_t n = (16u << 20) / 4;  // 16 MB of float32
  const auto payload = data::smooth_field(n, 1e-4, 42);

  std::printf("GCMPI quickstart: 16 MB device-to-device ping-pong, 2 nodes over IB EDR\n\n");
  std::printf("%-22s %12s %10s\n", "scheme", "latency(us)", "ratio");

  double ratio = 1.0;
  const double base = measure(core::CompressionConfig::off(), payload, nullptr);
  std::printf("%-22s %12.1f %10s\n", "baseline", base, "-");

  const double mpc = measure(core::CompressionConfig::mpc_opt(), payload, &ratio);
  std::printf("%-22s %12.1f %9.2fx (lossless)\n", "MPC-OPT", mpc, ratio);

  for (int rate : {16, 8, 4}) {
    char name[32];
    std::snprintf(name, sizeof(name), "ZFP-OPT (rate %d)", rate);
    const double zfp = measure(core::CompressionConfig::zfp_opt(rate), payload, &ratio);
    std::printf("%-22s %12.1f %9.2fx (lossy)\n", name, zfp, ratio);
  }

  std::printf("\nImprovement over baseline with ZFP-OPT(4): %.0f%%\n",
              (1.0 - measure(core::CompressionConfig::zfp_opt(4), payload, nullptr) / base) * 100.0);
  return 0;
}
