#include "adapt/controller.hpp"

#include <algorithm>
#include <iterator>

#include "sim/rng.hpp"

namespace gcmpi::adapt {

AdaptiveController::AdaptiveController(const gpu::GpuSpec& gpu, double network_gbs,
                                       AdaptiveOptions opts)
    : gpu_(gpu),
      network_gbs_(network_gbs),
      opts_(std::move(opts)),
      prior_(gpu, network_gbs, opts_.lossy_allowed, opts_.min_zfp_rate),
      history_(opts_.ewma_alpha) {}

void AdaptiveController::bind(core::Telemetry& telemetry) {
  telemetry_ = &telemetry;
  telemetry.set_observer(this);
}

double AdaptiveController::wire_us(double bytes) const {
  return bytes * 1e6 / (network_gbs_ * 1e9);
}

AdaptiveController::Channel& AdaptiveController::channel(const char* scope,
                                                         std::uint64_t bytes) {
  return channels_[{scope_id(scope), size_bucket(bytes)}];
}

void AdaptiveController::update_quarantine(Channel& ch, const char* scope,
                                           std::uint64_t bytes) {
  const std::uint64_t k = ch.rounds;
  // Re-admit families whose backoff elapsed (their streak was reset on
  // entry, so a still-broken codec re-quarantines after quarantine_after
  // more bad events — periodic, bounded re-probing of a faulty kernel).
  for (auto it = ch.quarantined_until.begin(); it != ch.quarantined_until.end();) {
    it = it->second <= k ? ch.quarantined_until.erase(it) : std::next(it);
  }
  for (core::Algorithm family : {core::Algorithm::MPC, core::Algorithm::ZFP}) {
    const int f = static_cast<int>(family);
    if (ch.quarantined_until.count(f) != 0) continue;
    if (history_.bad_streak(scope, bytes, family) >= opts_.quarantine_after) {
      ch.quarantined_until[f] = k + opts_.quarantine_backoff;
      history_.reset_streak(scope, bytes, family);
    }
  }
}

std::vector<AdaptiveController::Candidate> AdaptiveController::evaluate(
    const Channel& ch, const char* scope, std::uint64_t bytes) const {
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
  // Per-term substitution: the exact channel's measured EWMA when sampled,
  // else the bucket's scope-agnostic aggregate (decodes land on the
  // receiver under a different scope), else the static prior.
  const auto pick_term = [&](double exact, std::uint64_t exact_n, double any,
                             std::uint64_t any_n, double prior) {
    if (exact_n >= opts_.min_samples) return exact;
    if (any_n >= opts_.min_samples) return any;
    return prior;
  };
  const auto quarantined = [&](core::Algorithm family) {
    return ch.quarantined_until.count(static_cast<int>(family)) != 0;
  };

  std::vector<Candidate> out;
  out.push_back({candidate_id(core::Algorithm::None, 0), core::Algorithm::None, 0,
                 wire_us(static_cast<double>(bytes)), false});

  {  // MPC: measured ratio/throughputs over the eq. 2 prior.
    const int cand = candidate_id(core::Algorithm::MPC, 0);
    const CodecStats& ex = history_.codec(scope, bytes, cand);
    const CodecStats& any = history_.codec_any_scope(bytes, cand);
    const double cr = std::max(
        1.0, pick_term(ex.ratio, ex.ratio_samples, any.ratio, any.ratio_samples,
                       opts_.prior_mpc_ratio));
    const auto comp_b = static_cast<std::uint64_t>(static_cast<double>(bytes) / cr);
    const int blocks = std::max(1, gpu_.sm_count / 4);
    const double prior_comp =
        model_.mpc_compress(bytes / 4, comp_b / 4, blocks, gpu_).to_us();
    const double prior_dec =
        model_.mpc_decompress(comp_b / 4, bytes / 4, blocks, gpu_).to_us();
    const double comp =
        pick_term(ex.compress_us_per_mb * mb, ex.compress_samples,
                  any.compress_us_per_mb * mb, any.compress_samples, prior_comp);
    const double dec =
        pick_term(ex.decompress_us_per_mb * mb, ex.decompress_samples,
                  any.decompress_us_per_mb * mb, any.decompress_samples, prior_dec);
    out.push_back({cand, core::Algorithm::MPC, 0,
                   comp + wire_us(static_cast<double>(bytes) / cr) + dec,
                   quarantined(core::Algorithm::MPC)});
  }

  if (opts_.lossy_allowed) {
    for (int rate : opts_.zfp_rates) {
      if (rate < opts_.min_zfp_rate) continue;
      const int cand = candidate_id(core::Algorithm::ZFP, rate);
      const CodecStats& ex = history_.codec(scope, bytes, cand);
      const CodecStats& any = history_.codec_any_scope(bytes, cand);
      const double cr =
          std::max(1.0, pick_term(ex.ratio, ex.ratio_samples, any.ratio,
                                  any.ratio_samples, 32.0 / rate));
      const double prior_comp = model_.zfp_compress(bytes, rate, gpu_).to_us();
      const double prior_dec = model_.zfp_decompress(bytes, rate, gpu_).to_us();
      const double comp =
          pick_term(ex.compress_us_per_mb * mb, ex.compress_samples,
                    any.compress_us_per_mb * mb, any.compress_samples, prior_comp);
      const double dec =
          pick_term(ex.decompress_us_per_mb * mb, ex.decompress_samples,
                    any.decompress_us_per_mb * mb, any.decompress_samples, prior_dec);
      out.push_back({cand, core::Algorithm::ZFP, rate,
                     comp + wire_us(static_cast<double>(bytes) / cr) + dec,
                     quarantined(core::Algorithm::ZFP)});
    }
  }

  // Best-first; ties broken by candidate id so the order (and with it the
  // whole decision sequence) is deterministic.
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.predicted_us != b.predicted_us) return a.predicted_us < b.predicted_us;
    return a.id < b.id;
  });
  return out;
}

void AdaptiveController::record(sim::Time now, int rank, const char* scope,
                                std::uint64_t bytes, const char* choice, bool probe,
                                bool quarantined, double predicted_us) {
  if (telemetry_ == nullptr) return;
  core::DecisionRecord d;
  d.at = now;
  d.rank = rank;
  d.scope = scope;
  d.bytes = bytes;
  d.choice = choice;
  d.probe = probe;
  d.quarantined = quarantined;
  d.predicted_us = predicted_us;
  telemetry_->record_decision(d);
}

core::CompressChoice AdaptiveController::choose_codec(sim::Time now, int rank,
                                                      const char* scope,
                                                      std::uint64_t bytes) {
  Channel& ch = channel(scope, bytes);
  update_quarantine(ch, scope, bytes);
  const std::uint64_t k = ch.rounds++;
  const std::vector<Candidate> cands = evaluate(ch, scope, bytes);
  const bool any_quarantined = !ch.quarantined_until.empty();

  // Raw is never quarantined, so an allowed best always exists.
  const Candidate* best = nullptr;
  for (const auto& c : cands) {
    if (!c.quarantined) {
      best = &c;
      break;
    }
  }
  const auto find_cand = [&](int id) -> const Candidate* {
    for (const auto& c : cands) {
      if (c.id == id) return &c;
    }
    return nullptr;
  };

  const Candidate* inc = ch.incumbent >= 0 ? find_cand(ch.incumbent) : nullptr;
  if (inc == nullptr || inc->quarantined) {
    ch.incumbent = best->id;  // first decision, or the incumbent fell ill
    inc = best;
  } else if (best->id != inc->id &&
             best->predicted_us < inc->predicted_us * (1.0 - opts_.hysteresis)) {
    ch.incumbent = best->id;  // challenger cleared the hysteresis band
    inc = best;
  }

  const Candidate* pick = inc;
  bool probe = false;
  if (opts_.probe_period > 0) {
    const Candidate* runner = nullptr;
    for (const auto& c : cands) {
      if (!c.quarantined && c.id != ch.incumbent) {
        runner = &c;
        break;
      }
    }
    if (runner != nullptr) {
      // Counter-based exploration: the draw depends only on (seed,
      // channel, round), so reruns replay the identical probe schedule.
      sim::Rng rng(opts_.seed ^ (static_cast<std::uint64_t>(scope_id(scope)) << 48) ^
                   (static_cast<std::uint64_t>(size_bucket(bytes)) << 40) ^ k);
      if (rng.next_below(opts_.probe_period) == 0) {
        pick = runner;
        probe = true;
      }
    }
  }

  record(now, rank, scope, bytes, candidate_name(pick->id), probe, any_quarantined,
         pick->predicted_us);
  core::CompressChoice choice;
  choice.use_compression = pick->algorithm != core::Algorithm::None;
  choice.algorithm = pick->algorithm;
  choice.zfp_rate = pick->zfp_rate;
  return choice;
}

core::CollectiveAlgorithm AdaptiveController::refine_collective(
    const char* op, core::CollectiveAlgorithm prior_choice, std::uint64_t bytes,
    std::initializer_list<core::CollectiveAlgorithm> candidates) const {
  // The prior stays in charge until ITS schedule has been measured; from
  // then on, a measured alternative displaces it only past the hysteresis
  // band (same anti-oscillation rule as the codec loop).
  const CollectiveStats& inc = history_.collective(op, prior_choice, bytes);
  if (inc.samples < opts_.min_samples) return prior_choice;
  core::CollectiveAlgorithm best = prior_choice;
  double best_us = inc.span_us;
  for (core::CollectiveAlgorithm a : candidates) {
    if (a == prior_choice) continue;
    const CollectiveStats& m = history_.collective(op, a, bytes);
    if (m.samples >= opts_.min_samples && m.span_us < best_us * (1.0 - opts_.hysteresis)) {
      best = a;
      best_us = m.span_us;
    }
  }
  return best;
}

core::CollectiveAlgorithm AdaptiveController::choose_allreduce(sim::Time now, int rank,
                                                               std::uint64_t bytes,
                                                               int ranks, int nodes,
                                                               int gpus_per_node) {
  const std::size_t k = allreduce_.cursor[rank]++;
  if (k < allreduce_.seq.size()) return allreduce_.seq[k];  // replay round k
  const double cr = history_.global_mpc_ratio(opts_.prior_mpc_ratio);
  core::CollectiveAlgorithm alg =
      prior_.choose_allreduce_algorithm(bytes, ranks, nodes, gpus_per_node, cr);
  alg = refine_collective("allreduce", alg, bytes,
                          {core::CollectiveAlgorithm::Linear, core::CollectiveAlgorithm::Ring,
                           core::CollectiveAlgorithm::Hierarchical});
  allreduce_.seq.push_back(alg);
  record(now, rank, core::kScopeAllreduce, bytes, core::collective_algorithm_name(alg),
         false, false, history_.collective("allreduce", alg, bytes).span_us);
  return alg;
}

core::CollectiveAlgorithm AdaptiveController::choose_alltoall(sim::Time now, int rank,
                                                              std::uint64_t block_bytes,
                                                              int ranks) {
  const std::size_t k = alltoall_.cursor[rank]++;
  if (k < alltoall_.seq.size()) return alltoall_.seq[k];
  const double cr = history_.global_mpc_ratio(opts_.prior_mpc_ratio);
  core::CollectiveAlgorithm alg = prior_.choose_alltoall_algorithm(block_bytes, ranks, cr);
  alg = refine_collective("alltoall", alg, block_bytes,
                          {core::CollectiveAlgorithm::Linear,
                           core::CollectiveAlgorithm::BatchedPairwise});
  alltoall_.seq.push_back(alg);
  record(now, rank, core::kScopeAlltoall, block_bytes,
         core::collective_algorithm_name(alg), false, false,
         history_.collective("alltoall", alg, block_bytes).span_us);
  return alg;
}

core::CollectiveAlgorithm AdaptiveController::choose_bcast(sim::Time now, int rank,
                                                           std::uint64_t bytes, int ranks,
                                                           int nodes, int gpus_per_node) {
  const std::size_t k = bcast_.cursor[rank]++;
  if (k < bcast_.seq.size()) return bcast_.seq[k];
  const double cr = history_.global_mpc_ratio(opts_.prior_mpc_ratio);
  core::CollectiveAlgorithm alg =
      prior_.choose_bcast_algorithm(bytes, ranks, nodes, gpus_per_node, cr);
  alg = refine_collective("bcast", alg, bytes,
                          {core::CollectiveAlgorithm::Linear,
                           core::CollectiveAlgorithm::Hierarchical});
  bcast_.seq.push_back(alg);
  record(now, rank, core::kScopeBcast, bytes, core::collective_algorithm_name(alg), false,
         false, history_.collective("bcast", alg, bytes).span_us);
  return alg;
}

core::CollectiveAlgorithm AdaptiveController::choose_allgather(sim::Time now, int rank,
                                                               std::uint64_t block_bytes,
                                                               int ranks, int nodes,
                                                               int gpus_per_node) {
  const std::size_t k = allgather_.cursor[rank]++;
  if (k < allgather_.seq.size()) return allgather_.seq[k];
  const double cr = history_.global_mpc_ratio(opts_.prior_mpc_ratio);
  core::CollectiveAlgorithm alg =
      prior_.choose_allgather_algorithm(block_bytes, ranks, nodes, gpus_per_node, cr);
  alg = refine_collective("allgather", alg, block_bytes,
                          {core::CollectiveAlgorithm::Linear,
                           core::CollectiveAlgorithm::Hierarchical});
  allgather_.seq.push_back(alg);
  record(now, rank, core::kScopeAllgather, block_bytes,
         core::collective_algorithm_name(alg), false, false,
         history_.collective("allgather", alg, block_bytes).span_us);
  return alg;
}

core::CollectiveAlgorithm AdaptiveController::choose_gather(sim::Time now, int rank,
                                                            std::uint64_t block_bytes,
                                                            int ranks, int nodes,
                                                            int gpus_per_node) {
  const std::size_t k = gather_.cursor[rank]++;
  if (k < gather_.seq.size()) return gather_.seq[k];
  const double cr = history_.global_mpc_ratio(opts_.prior_mpc_ratio);
  core::CollectiveAlgorithm alg =
      prior_.choose_gather_algorithm(block_bytes, ranks, nodes, gpus_per_node, cr);
  alg = refine_collective("gather", alg, block_bytes,
                          {core::CollectiveAlgorithm::Linear,
                           core::CollectiveAlgorithm::Hierarchical});
  gather_.seq.push_back(alg);
  record(now, rank, core::kScopeGather, block_bytes, core::collective_algorithm_name(alg),
         false, false, history_.collective("gather", alg, block_bytes).span_us);
  return alg;
}

core::CollectiveAlgorithm AdaptiveController::choose_scatter(sim::Time now, int rank,
                                                             std::uint64_t block_bytes,
                                                             int ranks, int nodes,
                                                             int gpus_per_node) {
  const std::size_t k = scatter_.cursor[rank]++;
  if (k < scatter_.seq.size()) return scatter_.seq[k];
  const double cr = history_.global_mpc_ratio(opts_.prior_mpc_ratio);
  core::CollectiveAlgorithm alg =
      prior_.choose_scatter_algorithm(block_bytes, ranks, nodes, gpus_per_node, cr);
  alg = refine_collective("scatter", alg, block_bytes,
                          {core::CollectiveAlgorithm::Linear,
                           core::CollectiveAlgorithm::Hierarchical});
  scatter_.seq.push_back(alg);
  record(now, rank, core::kScopeScatter, block_bytes,
         core::collective_algorithm_name(alg), false, false,
         history_.collective("scatter", alg, block_bytes).span_us);
  return alg;
}

}  // namespace gcmpi::adapt
