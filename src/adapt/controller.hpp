// AdaptiveController: the closed loop between the telemetry streams and
// the codec / collective-algorithm decisions (the paper's Sec. IX "dynamic
// design" driven by a real-time monitor).
//
// The controller starts from DynamicSelector's static cost model as its
// prior and substitutes measured per-channel terms (History's EWMAs) as
// samples arrive. Three mechanisms keep the loop stable and deterministic:
//
//  * Hysteresis — the per-channel incumbent codec is only displaced when a
//    challenger's prediction beats it by a configurable margin, so noisy
//    EWMAs cannot make decisions oscillate.
//  * Probing — a deterministic, counter-based draw (sim::Rng seeded from
//    (seed, channel, round); never the wall clock) routes ~1/probe_period
//    messages to the best non-incumbent candidate so a displaced codec's
//    statistics stay fresh. Probes never move the incumbent.
//  * Quarantine — a codec family with quarantine_after consecutive
//    fallbacks/faults on a channel is excluded for quarantine_backoff
//    decisions (graceful degradation to raw under a fault storm, riding
//    the fault-injection subsystem), then re-admitted so a drifting
//    workload can recover it.
//
// Collective algorithm choices must agree across ranks: ranks issue their
// collectives in identical program order, so the controller keeps ONE
// shared decision sequence per collective op and a per-rank cursor into
// it — the first rank to reach round k computes decision k, the others
// replay it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "adapt/history.hpp"
#include "compress/kernel_cost.hpp"
#include "core/adapt.hpp"
#include "core/dynamic.hpp"
#include "core/telemetry.hpp"
#include "gpu/cost_model.hpp"

namespace gcmpi::adapt {

struct AdaptiveOptions {
  std::uint64_t seed = 0xAD4F7;   // probe-draw stream (no wall clock anywhere)
  double ewma_alpha = 0.3;        // History smoothing
  double hysteresis = 0.15;       // challenger must beat incumbent by 15%
  std::uint32_t probe_period = 16;       // ~1 in N decisions probes the runner-up
  std::uint32_t min_samples = 2;         // measured terms below this use the prior
  std::uint32_t quarantine_after = 3;    // consecutive fallbacks/faults
  std::uint32_t quarantine_backoff = 32; // decisions excluded before re-entry
  double prior_mpc_ratio = 2.0;   // assumed CR until the first measurement
  bool lossy_allowed = true;      // admit ZFP candidates (fixed-rate loss)
  int min_zfp_rate = 8;
  std::vector<int> zfp_rates = {16, 8};
};

class AdaptiveController final : public core::AdaptivePolicy,
                                 public core::TelemetryObserver {
 public:
  AdaptiveController(const gpu::GpuSpec& gpu, double network_gbs,
                     AdaptiveOptions opts = {});

  /// Subscribe to `telemetry`'s streams (the feedback path) and use it as
  /// the DecisionRecord sink. Pass the same Telemetry the World uses.
  void bind(core::Telemetry& telemetry);

  // --- core::AdaptivePolicy ---
  core::CompressChoice choose_codec(sim::Time now, int rank, const char* scope,
                                    std::uint64_t bytes) override;
  core::CollectiveAlgorithm choose_allreduce(sim::Time now, int rank, std::uint64_t bytes,
                                             int ranks, int nodes,
                                             int gpus_per_node) override;
  core::CollectiveAlgorithm choose_alltoall(sim::Time now, int rank,
                                            std::uint64_t block_bytes, int ranks) override;
  core::CollectiveAlgorithm choose_bcast(sim::Time now, int rank, std::uint64_t bytes,
                                         int ranks, int nodes, int gpus_per_node) override;
  core::CollectiveAlgorithm choose_allgather(sim::Time now, int rank,
                                             std::uint64_t block_bytes, int ranks,
                                             int nodes, int gpus_per_node) override;
  core::CollectiveAlgorithm choose_gather(sim::Time now, int rank,
                                          std::uint64_t block_bytes, int ranks, int nodes,
                                          int gpus_per_node) override;
  core::CollectiveAlgorithm choose_scatter(sim::Time now, int rank,
                                           std::uint64_t block_bytes, int ranks, int nodes,
                                           int gpus_per_node) override;

  // --- core::TelemetryObserver (the feedback path) ---
  void on_event(const core::TelemetryEvent& ev) override { history_.observe(ev); }
  void on_pipeline(const core::PipelineRecord& rec) override { history_.observe(rec); }
  void on_collective(const core::CollectiveRecord& rec) override { history_.observe(rec); }

  [[nodiscard]] const History& history() const { return history_; }
  [[nodiscard]] const AdaptiveOptions& options() const { return opts_; }

 private:
  struct Candidate {
    int id = 0;
    core::Algorithm algorithm = core::Algorithm::None;
    int zfp_rate = 0;
    double predicted_us = 0.0;
    bool quarantined = false;
  };

  struct Channel {
    std::uint64_t rounds = 0;
    int incumbent = -1;  // candidate id; -1 until the first decision
    // codec family (int Algorithm) -> round at which it re-enters
    std::map<int, std::uint64_t> quarantined_until;
  };

  /// One shared decision sequence + per-rank replay cursors (see header
  /// comment: all ranks of one collective must get the same answer).
  struct CollectiveSequence {
    std::vector<core::CollectiveAlgorithm> seq;
    std::map<int, std::size_t> cursor;  // rank -> next round index
  };

  Channel& channel(const char* scope, std::uint64_t bytes);
  void update_quarantine(Channel& ch, const char* scope, std::uint64_t bytes);
  [[nodiscard]] std::vector<Candidate> evaluate(const Channel& ch, const char* scope,
                                                std::uint64_t bytes) const;
  [[nodiscard]] double wire_us(double bytes) const;
  void record(sim::Time now, int rank, const char* scope, std::uint64_t bytes,
              const char* choice, bool probe, bool quarantined, double predicted_us);
  [[nodiscard]] core::CollectiveAlgorithm refine_collective(
      const char* op, core::CollectiveAlgorithm prior_choice, std::uint64_t bytes,
      std::initializer_list<core::CollectiveAlgorithm> candidates) const;

  gpu::GpuSpec gpu_;
  double network_gbs_;
  AdaptiveOptions opts_;
  comp::KernelCostModel model_;
  core::DynamicSelector prior_;
  History history_;
  core::Telemetry* telemetry_ = nullptr;
  std::map<std::pair<int, int>, Channel> channels_;  // (scope, bucket)
  CollectiveSequence allreduce_;
  CollectiveSequence alltoall_;
  CollectiveSequence bcast_;
  CollectiveSequence allgather_;
  CollectiveSequence gather_;
  CollectiveSequence scatter_;
};

}  // namespace gcmpi::adapt
