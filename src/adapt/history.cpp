#include "adapt/history.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/adapt.hpp"

namespace gcmpi::adapt {

namespace {

constexpr int kAnyScope = -1;

const CodecStats kEmptyCodec{};
const CollectiveStats kEmptyCollective{};

/// ZFP's rate is not part of the telemetry event; recover it from the
/// achieved ratio (a fixed-rate stream is rate/32 of the input plus small
/// block headers). Only meaningful for successful compressions.
int infer_zfp_rate(const core::TelemetryEvent& ev) {
  if (ev.original_bytes == 0 || ev.wire_bytes == 0) return 32;
  const double rate = 32.0 * static_cast<double>(ev.wire_bytes) /
                      static_cast<double>(ev.original_bytes);
  return std::clamp(static_cast<int>(std::lround(rate)), 1, 32);
}

double mib(std::uint64_t bytes) {
  return std::max(1e-6, static_cast<double>(bytes) / (1024.0 * 1024.0));
}

int op_id(const char* op) {
  if (std::strcmp(op, "allreduce") == 0) return 0;
  if (std::strcmp(op, "reduce_scatter") == 0) return 1;
  if (std::strcmp(op, "alltoall") == 0) return 2;
  if (std::strcmp(op, "bcast") == 0) return 4;
  if (std::strcmp(op, "allgather") == 0) return 5;
  if (std::strcmp(op, "gather") == 0) return 6;
  if (std::strcmp(op, "scatter") == 0) return 7;
  if (std::strcmp(op, "reduce") == 0) return 8;
  return 3;
}

}  // namespace

int candidate_id(core::Algorithm algorithm, int zfp_rate) {
  switch (algorithm) {
    case core::Algorithm::None: return 0;
    case core::Algorithm::MPC: return 1;
    case core::Algorithm::ZFP: return 100 + zfp_rate;
  }
  return 0;
}

const char* candidate_name(int candidate) {
  switch (candidate) {
    case 0: return "raw";
    case 1: return "mpc";
    case 104: return "zfp4";
    case 108: return "zfp8";
    case 116: return "zfp16";
    case 132: return "zfp32";
    default: return candidate >= 100 ? "zfp" : "?";
  }
}

int size_bucket(std::uint64_t bytes) {
  int b = 0;
  while (bytes > 1 && b < 40) {
    bytes >>= 1;
    ++b;
  }
  return b;
}

int scope_id(const char* scope) {
  if (scope == nullptr) return 5;
  if (std::strcmp(scope, core::kScopeP2P) == 0) return 0;
  if (std::strcmp(scope, core::kScopeBatch) == 0) return 1;
  if (std::strcmp(scope, core::kScopeChunk) == 0) return 2;
  if (std::strcmp(scope, core::kScopeAllreduce) == 0) return 3;
  if (std::strcmp(scope, core::kScopeAlltoall) == 0) return 4;
  if (std::strcmp(scope, core::kScopeBcast) == 0) return 6;
  if (std::strcmp(scope, core::kScopeAllgather) == 0) return 7;
  if (std::strcmp(scope, core::kScopeGather) == 0) return 8;
  if (std::strcmp(scope, core::kScopeScatter) == 0) return 9;
  return 5;
}

void History::ewma(double& value, std::uint64_t& samples, double sample) {
  value = samples == 0 ? sample : alpha_ * sample + (1.0 - alpha_) * value;
  ++samples;
}

CodecStats& History::cell(int scope, int bucket, int candidate) {
  return codec_[{scope, bucket, candidate}];
}

void History::observe(const core::TelemetryEvent& ev) {
  if (ev.kind == core::EventKind::RawBypass || ev.kind == core::EventKind::Retransmit ||
      ev.kind == core::EventKind::CorruptionDetected) {
    return;
  }
  const int scope = scope_id(ev.channel);
  const int bucket = size_bucket(ev.original_bytes);
  const int streak_family = static_cast<int>(ev.algorithm);

  switch (ev.kind) {
    case core::EventKind::Compress: {
      const int cand = ev.algorithm == core::Algorithm::ZFP
                           ? candidate_id(ev.algorithm, infer_zfp_rate(ev))
                           : candidate_id(ev.algorithm, 0);
      const double ratio = ev.wire_bytes == 0
                               ? 1.0
                               : static_cast<double>(ev.original_bytes) /
                                     static_cast<double>(ev.wire_bytes);
      for (int s : {scope, kAnyScope}) {
        CodecStats& c = cell(s, bucket, cand);
        ewma(c.ratio, c.ratio_samples, ratio);
        ewma(c.compress_us_per_mb, c.compress_samples,
             ev.duration.to_us() / mib(ev.original_bytes));
      }
      if (ev.algorithm == core::Algorithm::MPC) {
        ewma(global_mpc_ratio_, global_mpc_samples_, ratio);
      }
      streak_[{scope, bucket, streak_family}] = 0;
      break;
    }
    case core::EventKind::Decompress: {
      const int cand = ev.algorithm == core::Algorithm::ZFP
                           ? candidate_id(ev.algorithm, infer_zfp_rate(ev))
                           : candidate_id(ev.algorithm, 0);
      for (int s : {scope, kAnyScope}) {
        CodecStats& c = cell(s, bucket, cand);
        ewma(c.decompress_us_per_mb, c.decompress_samples,
             ev.duration.to_us() / mib(ev.original_bytes));
      }
      break;
    }
    case core::EventKind::FallbackRaw: {
      // The kernel ran, paid off nothing: feed ratio 1.0 so the cost model
      // learns this channel is incompressible, and advance the bad streak.
      const int cand = candidate_id(ev.algorithm, 32);
      for (int s : {scope, kAnyScope}) {
        CodecStats& c = cell(s, bucket, cand);
        ewma(c.ratio, c.ratio_samples, 1.0);
        ++c.fallbacks;
      }
      if (ev.algorithm == core::Algorithm::MPC) {
        ewma(global_mpc_ratio_, global_mpc_samples_, 1.0);
      }
      ++streak_[{scope, bucket, streak_family}];
      break;
    }
    case core::EventKind::CodecFault: {
      const int cand = candidate_id(ev.algorithm, 32);
      for (int s : {scope, kAnyScope}) ++cell(s, bucket, cand).faults;
      ++streak_[{scope, bucket, streak_family}];
      break;
    }
    default:
      break;
  }
}

void History::observe(const core::PipelineRecord& rec) {
  // A pipelined transfer is a train of chunk events that already landed
  // individually under the chunk scope; the whole-transfer record refines
  // the chunk channel's ratio with the end-to-end original/wire (which
  // includes retransmission overhead the per-chunk events cannot see).
  if (rec.algorithm == core::Algorithm::None || rec.wire_bytes == 0) return;
  const int scope = scope_id(core::kScopeChunk);
  const int bucket = size_bucket(rec.original_bytes);
  const int cand = candidate_id(rec.algorithm, 0);
  if (cand >= 100) return;  // per-chunk ZFP events carry the rate; skip
  const double ratio =
      static_cast<double>(rec.original_bytes) / static_cast<double>(rec.wire_bytes);
  for (int s : {scope, kAnyScope}) {
    CodecStats& c = cell(s, bucket, cand);
    ewma(c.ratio, c.ratio_samples, ratio);
  }
}

void History::observe(const core::CollectiveRecord& rec) {
  core::CollectiveAlgorithm alg = core::CollectiveAlgorithm::Auto;
  for (core::CollectiveAlgorithm a :
       {core::CollectiveAlgorithm::Linear, core::CollectiveAlgorithm::Ring,
        core::CollectiveAlgorithm::Hierarchical, core::CollectiveAlgorithm::BatchedPairwise}) {
    if (std::strcmp(rec.algorithm, core::collective_algorithm_name(a)) == 0) alg = a;
  }
  if (alg == core::CollectiveAlgorithm::Auto) return;
  CollectiveStats& c = coll_[{op_id(rec.op), static_cast<int>(alg), size_bucket(rec.bytes)}];
  ewma(c.span_us, c.samples, rec.span.to_us());
}

const CodecStats& History::codec(const char* scope, std::uint64_t bytes,
                                 int candidate) const {
  const auto it = codec_.find({scope_id(scope), size_bucket(bytes), candidate});
  return it == codec_.end() ? kEmptyCodec : it->second;
}

const CodecStats& History::codec_any_scope(std::uint64_t bytes, int candidate) const {
  const auto it = codec_.find({kAnyScope, size_bucket(bytes), candidate});
  return it == codec_.end() ? kEmptyCodec : it->second;
}

std::uint64_t History::bad_streak(const char* scope, std::uint64_t bytes,
                                  core::Algorithm family) const {
  const auto it =
      streak_.find({scope_id(scope), size_bucket(bytes), static_cast<int>(family)});
  return it == streak_.end() ? 0 : it->second;
}

void History::reset_streak(const char* scope, std::uint64_t bytes, core::Algorithm family) {
  streak_[{scope_id(scope), size_bucket(bytes), static_cast<int>(family)}] = 0;
}

const CollectiveStats& History::collective(const char* op,
                                           core::CollectiveAlgorithm algorithm,
                                           std::uint64_t bytes) const {
  const auto it = coll_.find({op_id(op), static_cast<int>(algorithm), size_bucket(bytes)});
  return it == coll_.end() ? kEmptyCollective : it->second;
}

double History::global_mpc_ratio(double fallback) const {
  return global_mpc_samples_ == 0 ? fallback : std::max(1.0, global_mpc_ratio_);
}

}  // namespace gcmpi::adapt
