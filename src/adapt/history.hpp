// Per-channel EWMA statistics for the adaptive compression control plane.
//
// A "channel" is (scope, size-bucket): the serial p2p path, a batched
// alltoall launch, a pipeline chunk, or a collective engine, crossed with
// the power-of-two bucket of the message size. History folds the three
// telemetry streams (TelemetryEvent / PipelineRecord / CollectiveRecord)
// into per-(channel, codec) exponentially weighted moving averages of the
// achieved compression ratio and the compress/decompress throughput, plus
// fallback / codec-fault counters — the measured terms the controller
// substitutes into DynamicSelector's a-priori cost model.
//
// Decompression events land on the receiver under their own scope (a
// batch-compressed slice decodes as a p2p message), so every lookup can
// also fall back to the scope-agnostic aggregate of the same bucket.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "core/collective.hpp"
#include "core/telemetry.hpp"

namespace gcmpi::adapt {

/// Codec candidate ids: raw = 0, MPC = 1, ZFP at rate r = 100 + r.
[[nodiscard]] int candidate_id(core::Algorithm algorithm, int zfp_rate);
/// Static display name: "raw", "mpc", "zfp8", "zfp16", ...
[[nodiscard]] const char* candidate_name(int candidate);
/// Power-of-two size bucket (floor(log2(bytes)), clamped to [0, 40]).
[[nodiscard]] int size_bucket(std::uint64_t bytes);
/// Interned scope index for the core/adapt.hpp scope names.
[[nodiscard]] int scope_id(const char* scope);

/// Measured behaviour of one codec on one channel.
struct CodecStats {
  double ratio = 1.0;  // achieved original/wire (EWMA)
  std::uint64_t ratio_samples = 0;
  double compress_us_per_mb = 0.0;  // kernel time per MiB of input (EWMA)
  std::uint64_t compress_samples = 0;
  double decompress_us_per_mb = 0.0;
  std::uint64_t decompress_samples = 0;
  std::uint64_t fallbacks = 0;  // compression ran but did not pay off
  std::uint64_t faults = 0;     // injected kernel faults
};

/// Measured span of one collective algorithm at one size bucket.
struct CollectiveStats {
  double span_us = 0.0;  // per-rank entry-to-result span (EWMA)
  std::uint64_t samples = 0;
};

class History {
 public:
  explicit History(double ewma_alpha = 0.3) : alpha_(ewma_alpha) {}

  void observe(const core::TelemetryEvent& ev);
  void observe(const core::PipelineRecord& rec);
  void observe(const core::CollectiveRecord& rec);

  /// Stats for (scope, bucket-of-bytes, candidate); a zero-sample default
  /// when the combination was never seen.
  [[nodiscard]] const CodecStats& codec(const char* scope, std::uint64_t bytes,
                                        int candidate) const;
  /// Scope-agnostic aggregate of the same bucket.
  [[nodiscard]] const CodecStats& codec_any_scope(std::uint64_t bytes, int candidate) const;

  /// Consecutive fallback/fault streak of a codec family on a channel
  /// (rate-agnostic for ZFP: an injected kernel fault does not tell us the
  /// rate, and it would fault at any). Reset by a successful compression
  /// of the same family, or explicitly when a quarantine is entered.
  [[nodiscard]] std::uint64_t bad_streak(const char* scope, std::uint64_t bytes,
                                         core::Algorithm family) const;
  void reset_streak(const char* scope, std::uint64_t bytes, core::Algorithm family);

  /// Measured per-rank span of `algorithm` for op ("allreduce"/"alltoall")
  /// at the bucket of `bytes`.
  [[nodiscard]] const CollectiveStats& collective(const char* op,
                                                 core::CollectiveAlgorithm algorithm,
                                                 std::uint64_t bytes) const;

  /// Job-wide measured MPC ratio (all scopes and sizes); `fallback` until
  /// the first compression lands.
  [[nodiscard]] double global_mpc_ratio(double fallback) const;

 private:
  using CodecKey = std::tuple<int, int, int>;        // scope, bucket, candidate
  using StreakKey = std::tuple<int, int, int>;       // scope, bucket, family
  using CollKey = std::tuple<int, int, int>;         // op, algorithm, bucket

  void fold_compression(int scope, const core::TelemetryEvent& ev, int candidate);
  CodecStats& cell(int scope, int bucket, int candidate);
  void ewma(double& value, std::uint64_t& samples, double sample);

  double alpha_;
  std::map<CodecKey, CodecStats> codec_;      // scope >= 0 exact, -1 any-scope
  std::map<StreakKey, std::uint64_t> streak_;
  std::map<CollKey, CollectiveStats> coll_;
  double global_mpc_ratio_ = 0.0;
  std::uint64_t global_mpc_samples_ = 0;
};

}  // namespace gcmpi::adapt
