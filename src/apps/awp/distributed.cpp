#include "apps/awp/distributed.hpp"

#include "apps/awp/elastic.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace gcmpi::apps::awp {

using mpi::Rank;
using sim::Time;

namespace {

constexpr int kTagXm = 101, kTagXp = 102, kTagYm = 103, kTagYp = 104;

struct Neighbors {
  int xm = -1, xp = -1, ym = -1, yp = -1;
};

Neighbors neighbors_of(int rank, int px, int py) {
  const int cx = rank % px;
  const int cy = rank / px;
  Neighbors n;
  if (cx > 0) n.xm = rank - 1;
  if (cx < px - 1) n.xp = rank + 1;
  if (cy > 0) n.ym = rank - px;
  if (cy < py - 1) n.yp = rank + px;
  return n;
}

/// Exchange ghost planes of every field with the (up to) four neighbours,
/// device-buffer to device-buffer, non-blocking + waitall to avoid
/// ordering deadlocks — the AWP-ODC-OS pattern. Works for both the
/// 4-field acoustic and the 9-field elastic solver.
template <typename SolverT>
void halo_exchange(Rank& R, SolverT& solver, const Neighbors& nb, float* sxm, float* sxp,
                   float* sym, float* syp, float* rxm, float* rxp, float* rym, float* ryp) {
  const std::size_t xv = solver.x_face_values();
  const std::size_t yv = solver.y_face_values();
  std::vector<mpi::Request> reqs;
  if (nb.xm >= 0) reqs.push_back(R.irecv(rxm, xv * 4, nb.xm, kTagXp));
  if (nb.xp >= 0) reqs.push_back(R.irecv(rxp, xv * 4, nb.xp, kTagXm));
  if (nb.ym >= 0) reqs.push_back(R.irecv(rym, yv * 4, nb.ym, kTagYp));
  if (nb.yp >= 0) reqs.push_back(R.irecv(ryp, yv * 4, nb.yp, kTagYm));

  if (nb.xm >= 0) {
    solver.pack_x(false, {sxm, xv});
    reqs.push_back(R.isend(sxm, xv * 4, nb.xm, kTagXm));
  }
  if (nb.xp >= 0) {
    solver.pack_x(true, {sxp, xv});
    reqs.push_back(R.isend(sxp, xv * 4, nb.xp, kTagXp));
  }
  if (nb.ym >= 0) {
    solver.pack_y(false, {sym, yv});
    reqs.push_back(R.isend(sym, yv * 4, nb.ym, kTagYm));
  }
  if (nb.yp >= 0) {
    solver.pack_y(true, {syp, yv});
    reqs.push_back(R.isend(syp, yv * 4, nb.yp, kTagYp));
  }
  R.waitall(reqs);
  if (nb.xm >= 0) solver.unpack_x(false, {rxm, xv});
  if (nb.xp >= 0) solver.unpack_x(true, {rxp, xv});
  if (nb.ym >= 0) solver.unpack_y(false, {rym, yv});
  if (nb.yp >= 0) solver.unpack_y(true, {ryp, yv});
}

}  // namespace

AwpReport run_awp(Rank& R, const AwpConfig& config) {
  const int P = R.size();
  if (config.px * config.py != P) {
    throw std::invalid_argument("run_awp: px*py must equal world size");
  }
  const Grid& g = config.local;
  const int cx = R.rank() % config.px;
  const int cy = R.rank() / config.px;
  const Neighbors nb = neighbors_of(R.rank(), config.px, config.py);

  // Fields live in (simulated) GPU memory so halo sends are device buffers.
  const std::size_t store = g.storage();
  auto* p = static_cast<float*>(R.gpu_malloc(store * 4));
  auto* vx = static_cast<float*>(R.gpu_malloc(store * 4));
  auto* vy = static_cast<float*>(R.gpu_malloc(store * 4));
  auto* vz = static_cast<float*>(R.gpu_malloc(store * 4));
  std::memset(p, 0, store * 4);
  std::memset(vx, 0, store * 4);
  std::memset(vy, 0, store * 4);
  std::memset(vz, 0, store * 4);
  Solver solver(g, config.physics, {p, store}, {vx, store}, {vy, store}, {vz, store});

  // Single moment source at the global center (Sec. VII-A).
  const auto gcx = static_cast<std::ptrdiff_t>(config.px * g.nx / 2);
  const auto gcy = static_cast<std::ptrdiff_t>(config.py * g.ny / 2);
  solver.inject_pulse(gcx - static_cast<std::ptrdiff_t>(cx * g.nx),
                      gcy - static_cast<std::ptrdiff_t>(cy * g.ny),
                      static_cast<std::ptrdiff_t>(g.nz / 2), config.pulse_amplitude,
                      config.pulse_sigma);

  const std::size_t xv = solver.x_face_values();
  const std::size_t yv = solver.y_face_values();
  auto dev_floats = [&R](std::size_t n) { return static_cast<float*>(R.gpu_malloc(n * 4)); };
  float *sxm = dev_floats(xv), *sxp = dev_floats(xv), *rxm = dev_floats(xv), *rxp = dev_floats(xv);
  float *sym = dev_floats(yv), *syp = dev_floats(yv), *rym = dev_floats(yv), *ryp = dev_floats(yv);

  // GPU compute-time charge per half step (velocity or pressure update).
  const double peak = R.gpu().spec().peak_fp32_tflops * 1e12;
  const Time half_step = Time::seconds(static_cast<double>(g.cells()) *
                                       config.model_flops_per_cell / 2.0 /
                                       (peak * config.gpu_efficiency));

  AwpReport report;
  report.ranks = P;
  report.steps = config.steps;
  report.halo_message_bytes = static_cast<double>(std::max(xv, yv) * 4);

  R.barrier();
  const Time t0 = R.now();
  Time compute_acc = Time::zero();
  Time comm_acc = Time::zero();

  for (int s = 0; s < config.steps; ++s) {
    Time c0 = R.now();
    halo_exchange(R, solver, nb, sxm, sxp, sym, syp, rxm, rxp, rym, ryp);
    comm_acc += R.now() - c0;
    solver.apply_rigid_boundary(cx == 0, cx == config.px - 1, cy == 0, cy == config.py - 1);
    solver.step_velocity();
    R.compute(half_step);
    compute_acc += half_step;

    c0 = R.now();
    halo_exchange(R, solver, nb, sxm, sxp, sym, syp, rxm, rxp, rym, ryp);
    comm_acc += R.now() - c0;
    solver.apply_rigid_boundary(cx == 0, cx == config.px - 1, cy == 0, cy == config.py - 1);
    solver.step_pressure();
    R.compute(half_step);
    compute_acc += half_step;
  }
  R.barrier();
  report.total_time = R.now() - t0;
  report.compute_time = compute_acc;
  report.comm_time = comm_acc;
  report.time_per_step_ms = report.total_time.to_ms() / config.steps;
  const double total_flops = static_cast<double>(g.cells()) * config.model_flops_per_cell *
                             config.steps * P;
  report.gpu_tflops = total_flops / report.total_time.to_seconds() / 1e12;
  report.mpc_ratio = R.compression().stats().achieved_ratio();

  // Global energy for validation (sum of local energies).
  float local_e = static_cast<float>(solver.energy());
  float global_e = 0.0f;
  R.allreduce(&local_e, &global_e, 1, mpi::ReduceOp::Sum);
  report.final_energy = global_e;

  for (float* q : {p, vx, vy, vz, sxm, sxp, rxm, rxp, sym, syp, rym, ryp}) R.gpu_free(q);
  return report;
}

AwpReport run_elastic(Rank& R, const AwpConfig& config) {
  const int P = R.size();
  if (config.px * config.py != P) {
    throw std::invalid_argument("run_elastic: px*py must equal world size");
  }
  const Grid& g = config.local;
  const int cx = R.rank() % config.px;
  const int cy = R.rank() / config.px;
  const Neighbors nb = neighbors_of(R.rank(), config.px, config.py);

  const std::size_t store = ElasticSolver::storage_floats(g);
  auto* fields = static_cast<float*>(R.gpu_malloc(store * 4));
  std::memset(fields, 0, store * 4);
  ElasticParams phys;
  phys.dt = config.physics.dt * 0.5;  // elastic CFL is tighter (vp > c)
  phys.dx = config.physics.dx;
  ElasticSolver solver(g, phys, {fields, store});

  const auto gcx = static_cast<std::ptrdiff_t>(config.px * g.nx / 2);
  const auto gcy = static_cast<std::ptrdiff_t>(config.py * g.ny / 2);
  solver.inject_pulse(gcx - static_cast<std::ptrdiff_t>(cx * g.nx),
                      gcy - static_cast<std::ptrdiff_t>(cy * g.ny),
                      static_cast<std::ptrdiff_t>(g.nz / 2), config.pulse_amplitude,
                      config.pulse_sigma);

  const std::size_t xv = solver.x_face_values();
  const std::size_t yv = solver.y_face_values();
  auto dev_floats = [&R](std::size_t n) { return static_cast<float*>(R.gpu_malloc(n * 4)); };
  float *sxm = dev_floats(xv), *sxp = dev_floats(xv), *rxm = dev_floats(xv), *rxp = dev_floats(xv);
  float *sym = dev_floats(yv), *syp = dev_floats(yv), *rym = dev_floats(yv), *ryp = dev_floats(yv);

  const double peak = R.gpu().spec().peak_fp32_tflops * 1e12;
  const Time half_step = Time::seconds(static_cast<double>(g.cells()) *
                                       config.model_flops_per_cell / 2.0 /
                                       (peak * config.gpu_efficiency));

  AwpReport report;
  report.ranks = P;
  report.steps = config.steps;
  report.halo_message_bytes = static_cast<double>(std::max(xv, yv) * 4);

  R.barrier();
  const Time t0 = R.now();
  Time compute_acc = Time::zero();
  Time comm_acc = Time::zero();
  for (int s = 0; s < config.steps; ++s) {
    Time c0 = R.now();
    halo_exchange(R, solver, nb, sxm, sxp, sym, syp, rxm, rxp, rym, ryp);
    comm_acc += R.now() - c0;
    solver.apply_rigid_boundary(cx == 0, cx == config.px - 1, cy == 0, cy == config.py - 1);
    solver.step_velocity();
    R.compute(half_step);
    compute_acc += half_step;

    c0 = R.now();
    halo_exchange(R, solver, nb, sxm, sxp, sym, syp, rxm, rxp, rym, ryp);
    comm_acc += R.now() - c0;
    solver.apply_rigid_boundary(cx == 0, cx == config.px - 1, cy == 0, cy == config.py - 1);
    solver.step_stress();
    R.compute(half_step);
    compute_acc += half_step;
  }
  R.barrier();
  report.total_time = R.now() - t0;
  report.compute_time = compute_acc;
  report.comm_time = comm_acc;
  report.time_per_step_ms = report.total_time.to_ms() / config.steps;
  const double total_flops = static_cast<double>(g.cells()) * config.model_flops_per_cell *
                             config.steps * P;
  report.gpu_tflops = total_flops / report.total_time.to_seconds() / 1e12;
  report.mpc_ratio = R.compression().stats().achieved_ratio();

  float local_e = static_cast<float>(solver.energy());
  float global_e = 0.0f;
  R.allreduce(&local_e, &global_e, 1, mpi::ReduceOp::Sum);
  report.final_energy = global_e;

  for (float* q : {sxm, sxp, rxm, rxp, sym, syp, rym, ryp}) R.gpu_free(q);
  R.gpu_free(fields);
  return report;
}

}  // namespace gcmpi::apps::awp
