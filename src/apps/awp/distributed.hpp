// Distributed AWP proxy: 2D (X,Y) domain decomposition with CUDA-aware
// halo exchange through MiniMPI, the communication pattern of AWP-ODC-OS
// ("passing device buffers directly to MPI_Isend without an explicit
// copy", Sec. VII-A). Reports the paper's metrics: averaged run time per
// time step and GPU computing flops.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/awp/solver.hpp"
#include "mpi/world.hpp"

namespace gcmpi::apps::awp {

struct AwpConfig {
  Grid local;             // interior cells per rank (weak scaling unit)
  int px = 1, py = 1;     // process grid; px*py must equal world size
  int steps = 8;
  PhysicsParams physics{};
  double pulse_amplitude = 1.0;
  double pulse_sigma = 3.0;

  /// GPU-time charge per cell per step. Default calibrated so that the
  /// baseline compute/communication split matches Fig. 2(b) (compute is
  /// roughly 55-75% of a step at the paper's scales).
  double model_flops_per_cell = Solver::kModelFlopsPerCell;
  double gpu_efficiency = 0.018;  // fraction of peak FP32 sustained
};

struct AwpReport {
  int ranks = 0;
  int steps = 0;
  sim::Time total_time;
  sim::Time compute_time;        // max over ranks
  sim::Time comm_time;           // max over ranks
  double time_per_step_ms = 0.0;
  double gpu_tflops = 0.0;       // aggregate "GPU computing flops"
  double halo_message_bytes = 0; // largest halo message
  double mpc_ratio = 0.0;        // achieved compression ratio (rank 0)
  double final_energy = 0.0;     // for validation
};

/// Run the distributed simulation on the calling rank; collective — every
/// rank of the world must call it with the same config. The returned
/// report is complete on rank 0 (reduced), partial elsewhere.
AwpReport run_awp(mpi::Rank& R, const AwpConfig& config);

}  // namespace gcmpi::apps::awp

namespace gcmpi::apps::awp {
/// Same driver with the faithful 9-field elastic solver (elastic.hpp):
/// halo messages carry 3 velocity + 6 stress planes per face, the layout
/// AWP-ODC actually exchanges. Uses half the acoustic dt (tighter CFL).
AwpReport run_elastic(mpi::Rank& R, const AwpConfig& config);
}  // namespace gcmpi::apps::awp
