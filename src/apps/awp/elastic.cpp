#include "apps/awp/elastic.hpp"

#include <cmath>
#include <stdexcept>

namespace gcmpi::apps::awp {

double ElasticParams::vp() const { return std::sqrt((lambda + 2.0 * mu) / rho); }
double ElasticParams::vs() const { return std::sqrt(mu / rho); }

ElasticSolver::ElasticSolver(Grid grid, ElasticParams params, std::span<float> storage)
    : grid_(grid), params_(params) {
  if (grid_.nx == 0 || grid_.ny == 0 || grid_.nz == 0) {
    throw std::invalid_argument("ElasticSolver: empty grid");
  }
  if (storage.size() < storage_floats(grid_)) {
    throw std::invalid_argument("ElasticSolver: storage too small");
  }
  const double cfl = params_.vp() * params_.dt / params_.dx * std::sqrt(3.0);
  if (cfl >= 1.0) throw std::invalid_argument("ElasticSolver: CFL condition violated");
  const std::size_t per = grid_.storage();
  for (int k = 0; k < kFields; ++k) {
    fields_[k] = storage.data() + static_cast<std::size_t>(k) * per;
  }
}

std::span<float> ElasticSolver::field(Field fld) { return {f(fld), grid_.storage()}; }
std::span<const float> ElasticSolver::field(Field fld) const {
  return {f(fld), grid_.storage()};
}

void ElasticSolver::inject_pulse(std::ptrdiff_t ci, std::ptrdiff_t cj, std::ptrdiff_t ck,
                                 double amplitude, double sigma) {
  const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
  float* sxx = f(Sxx);
  float* syy = f(Syy);
  float* szz = f(Szz);
  for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(grid_.ny); ++j) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(grid_.nx); ++i) {
        const double r2 = static_cast<double>((i - ci) * (i - ci) + (j - cj) * (j - cj) +
                                              (k - ck) * (k - ck));
        const auto s = static_cast<float>(amplitude * std::exp(-r2 * inv2s2));
        const std::size_t c = grid_.at(i, j, k);
        sxx[c] += s;
        syy[c] += s;
        szz[c] += s;
      }
    }
  }
}

void ElasticSolver::step_velocity() {
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  const float c = static_cast<float>(params_.dt / (params_.rho * params_.dx));
  float* vx = f(Vx);
  float* vy = f(Vy);
  float* vz = f(Vz);
  const float* sxx = f(Sxx);
  const float* syy = f(Syy);
  const float* szz = f(Szz);
  const float* sxy = f(Sxy);
  const float* sxz = f(Sxz);
  const float* syz = f(Syz);
  for (std::ptrdiff_t k = 0; k < nz; ++k) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const std::size_t at = grid_.at(i, j, k);
        // vx at (i+1/2,j,k): forward d/dx of sxx; backward d/dy, d/dz.
        vx[at] += c * ((sxx[grid_.at(i + 1, j, k)] - sxx[at]) +
                       (sxy[at] - sxy[grid_.at(i, j - 1, k)]) +
                       (sxz[at] - sxz[grid_.at(i, j, k - 1)]));
        // vy at (i,j+1/2,k): backward d/dx; forward d/dy; backward d/dz.
        vy[at] += c * ((sxy[at] - sxy[grid_.at(i - 1, j, k)]) +
                       (syy[grid_.at(i, j + 1, k)] - syy[at]) +
                       (syz[at] - syz[grid_.at(i, j, k - 1)]));
        // vz at (i,j,k+1/2): backward d/dx, d/dy; forward d/dz.
        vz[at] += c * ((sxz[at] - sxz[grid_.at(i - 1, j, k)]) +
                       (syz[at] - syz[grid_.at(i, j - 1, k)]) +
                       (szz[grid_.at(i, j, k + 1)] - szz[at]));
      }
    }
  }
}

void ElasticSolver::step_stress() {
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  const double dtdx = params_.dt / params_.dx;
  const float l = static_cast<float>(params_.lambda * dtdx);
  const float l2m = static_cast<float>((params_.lambda + 2.0 * params_.mu) * dtdx);
  const float m = static_cast<float>(params_.mu * dtdx);
  const float* vx = f(Vx);
  const float* vy = f(Vy);
  const float* vz = f(Vz);
  float* sxx = f(Sxx);
  float* syy = f(Syy);
  float* szz = f(Szz);
  float* sxy = f(Sxy);
  float* sxz = f(Sxz);
  float* syz = f(Syz);
  for (std::ptrdiff_t k = 0; k < nz; ++k) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const std::size_t at = grid_.at(i, j, k);
        // Normal stresses at (i,j,k): backward differences of velocities.
        const float dvx = vx[at] - vx[grid_.at(i - 1, j, k)];
        const float dvy = vy[at] - vy[grid_.at(i, j - 1, k)];
        const float dvz = vz[at] - vz[grid_.at(i, j, k - 1)];
        sxx[at] += l2m * dvx + l * (dvy + dvz);
        syy[at] += l2m * dvy + l * (dvx + dvz);
        szz[at] += l2m * dvz + l * (dvx + dvy);
        // Shear stresses: forward differences toward their stagger points.
        sxy[at] += m * ((vx[grid_.at(i, j + 1, k)] - vx[at]) +
                        (vy[grid_.at(i + 1, j, k)] - vy[at]));
        sxz[at] += m * ((vx[grid_.at(i, j, k + 1)] - vx[at]) +
                        (vz[grid_.at(i + 1, j, k)] - vz[at]));
        syz[at] += m * ((vy[grid_.at(i, j, k + 1)] - vy[at]) +
                        (vz[grid_.at(i, j + 1, k)] - vz[at]));
      }
    }
  }
}

void ElasticSolver::apply_rigid_boundary(bool lo_x, bool hi_x, bool lo_y, bool hi_y) {
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  // Rigid wall: zero every velocity in the ghost shell and mirror the
  // stresses (zero normal gradient) so ghost reads are defined.
  auto wall_x = [&](std::ptrdiff_t ghost, std::ptrdiff_t mirror) {
    for (std::ptrdiff_t k = -1; k <= nz; ++k) {
      for (std::ptrdiff_t j = -1; j <= ny; ++j) {
        const std::size_t g = grid_.at(ghost, j, k);
        const std::size_t s = grid_.at(mirror, j, k);
        for (int fl = Vx; fl <= Vz; ++fl) f(static_cast<Field>(fl))[g] = 0.0f;
        for (int fl = Sxx; fl <= Syz; ++fl) {
          f(static_cast<Field>(fl))[g] = f(static_cast<Field>(fl))[s];
        }
      }
    }
  };
  auto wall_y = [&](std::ptrdiff_t ghost, std::ptrdiff_t mirror) {
    for (std::ptrdiff_t k = -1; k <= nz; ++k) {
      for (std::ptrdiff_t i = -1; i <= nx; ++i) {
        const std::size_t g = grid_.at(i, ghost, k);
        const std::size_t s = grid_.at(i, mirror, k);
        for (int fl = Vx; fl <= Vz; ++fl) f(static_cast<Field>(fl))[g] = 0.0f;
        for (int fl = Sxx; fl <= Syz; ++fl) {
          f(static_cast<Field>(fl))[g] = f(static_cast<Field>(fl))[s];
        }
      }
    }
  };
  auto wall_z = [&](std::ptrdiff_t ghost, std::ptrdiff_t mirror) {
    for (std::ptrdiff_t j = -1; j <= ny; ++j) {
      for (std::ptrdiff_t i = -1; i <= nx; ++i) {
        const std::size_t g = grid_.at(i, j, ghost);
        const std::size_t s = grid_.at(i, j, mirror);
        for (int fl = Vx; fl <= Vz; ++fl) f(static_cast<Field>(fl))[g] = 0.0f;
        for (int fl = Sxx; fl <= Syz; ++fl) {
          f(static_cast<Field>(fl))[g] = f(static_cast<Field>(fl))[s];
        }
      }
    }
  };
  if (lo_x) wall_x(-1, 0);
  if (hi_x) wall_x(nx, nx - 1);
  if (lo_y) wall_y(-1, 0);
  if (hi_y) wall_y(ny, ny - 1);
  wall_z(-1, 0);
  wall_z(nz, nz - 1);
}

double ElasticSolver::energy() const {
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  // Kinetic energy + a stress-norm proxy for strain energy (exact strain
  // energy needs the compliance tensor; the proxy is enough to detect
  // instability growth or collapse in tests).
  const double inv2mu = 1.0 / (2.0 * params_.mu);
  double e = 0.0;
  for (std::ptrdiff_t k = 0; k < nz; ++k) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const std::size_t at = grid_.at(i, j, k);
        double v2 = 0.0, s2 = 0.0;
        for (int fl = Vx; fl <= Vz; ++fl) {
          const double v = f(static_cast<Field>(fl))[at];
          v2 += v * v;
        }
        for (int fl = Sxx; fl <= Syz; ++fl) {
          const double s = f(static_cast<Field>(fl))[at];
          s2 += s * s;
        }
        e += 0.5 * params_.rho * v2 + inv2mu * s2 * 0.25;
      }
    }
  }
  return e;
}

void ElasticSolver::pack_x(bool high, std::span<float> out) const {
  if (out.size() < x_face_values()) throw std::invalid_argument("pack_x: buffer too small");
  const std::ptrdiff_t i = high ? static_cast<std::ptrdiff_t>(grid_.nx) - 1 : 0;
  std::size_t w = 0;
  for (int fl = 0; fl < kFields; ++fl) {
    const float* field_p = f(static_cast<Field>(fl));
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(grid_.ny); ++j) {
        out[w++] = field_p[grid_.at(i, j, k)];
      }
    }
  }
}

void ElasticSolver::unpack_x(bool high, std::span<const float> in) {
  if (in.size() < x_face_values()) throw std::invalid_argument("unpack_x: buffer too small");
  const std::ptrdiff_t i = high ? static_cast<std::ptrdiff_t>(grid_.nx) : -1;
  std::size_t w = 0;
  for (int fl = 0; fl < kFields; ++fl) {
    float* field_p = f(static_cast<Field>(fl));
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(grid_.ny); ++j) {
        field_p[grid_.at(i, j, k)] = in[w++];
      }
    }
  }
}

void ElasticSolver::pack_y(bool high, std::span<float> out) const {
  if (out.size() < y_face_values()) throw std::invalid_argument("pack_y: buffer too small");
  const std::ptrdiff_t j = high ? static_cast<std::ptrdiff_t>(grid_.ny) - 1 : 0;
  std::size_t w = 0;
  for (int fl = 0; fl < kFields; ++fl) {
    const float* field_p = f(static_cast<Field>(fl));
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(grid_.nx); ++i) {
        out[w++] = field_p[grid_.at(i, j, k)];
      }
    }
  }
}

void ElasticSolver::unpack_y(bool high, std::span<const float> in) {
  if (in.size() < y_face_values()) throw std::invalid_argument("unpack_y: buffer too small");
  const std::ptrdiff_t j = high ? static_cast<std::ptrdiff_t>(grid_.ny) : -1;
  std::size_t w = 0;
  for (int fl = 0; fl < kFields; ++fl) {
    float* field_p = f(static_cast<Field>(fl));
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(grid_.nx); ++i) {
        field_p[grid_.at(i, j, k)] = in[w++];
      }
    }
  }
}

}  // namespace gcmpi::apps::awp
