// Full elastic velocity-stress solver — the actual physics of AWP-ODC
// ("anelastic wave propagation ... in a 3D viscoelastic or elastic
// solid"). Nine fields on the standard Virieux staggered grid:
//
//   velocities    vx (i+1/2,j,k)   vy (i,j+1/2,k)   vz (i,j,k+1/2)
//   normal stress sxx,syy,szz (i,j,k)
//   shear stress  sxy (i+1/2,j+1/2,k)  sxz (i+1/2,j,k+1/2)
//                 syz (i,j+1/2,k+1/2)
//
// Leapfrog time stepping; uniform isotropic medium (rho, lambda, mu).
// The 4-field acoustic Solver (solver.hpp) is the cheap proxy used by the
// large benchmark sweeps; this solver carries the faithful physics and the
// same halo-exchange interface, so the distributed driver and the
// compression framework exercise the real 9-field message layout
// (3 velocity + 6 stress planes per face, as AWP-ODC exchanges).
#pragma once

#include <cstdint>
#include <span>

#include "apps/awp/solver.hpp"  // Grid

namespace gcmpi::apps::awp {

struct ElasticParams {
  double dt = 0.2;
  double dx = 1.0;
  double rho = 1.0;     // density
  double lambda = 1.0;  // Lamé first parameter
  double mu = 1.0;      // shear modulus

  [[nodiscard]] double vp() const;  // P-wave speed
  [[nodiscard]] double vs() const;  // S-wave speed
};

class ElasticSolver {
 public:
  static constexpr int kFields = 9;
  enum Field : int { Vx = 0, Vy, Vz, Sxx, Syy, Szz, Sxy, Sxz, Syz };

  /// `storage` must hold kFields * grid.storage() floats (one ghost cell
  /// on every side per field); typically simulated-GPU memory.
  ElasticSolver(Grid grid, ElasticParams params, std::span<float> storage);

  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] std::span<float> field(Field f);
  [[nodiscard]] std::span<const float> field(Field f) const;
  [[nodiscard]] static std::size_t storage_floats(const Grid& g) {
    return static_cast<std::size_t>(kFields) * g.storage();
  }

  /// Explosive point source: isotropic stress pulse at interior (ci,cj,ck).
  void inject_pulse(std::ptrdiff_t ci, std::ptrdiff_t cj, std::ptrdiff_t ck,
                    double amplitude, double sigma);

  void step_velocity();
  void step_stress();

  /// Rigid boundary on the selected physical X/Y faces; Z faces always.
  void apply_rigid_boundary(bool lo_x, bool hi_x, bool lo_y, bool hi_y);

  /// Kinetic + strain energy (monitoring/stability metric).
  [[nodiscard]] double energy() const;

  // Halo interface identical in shape to the acoustic Solver, but with all
  // nine fields per face plane.
  [[nodiscard]] std::size_t x_face_values() const { return grid_.ny * grid_.nz * kFields; }
  [[nodiscard]] std::size_t y_face_values() const { return grid_.nx * grid_.nz * kFields; }
  void pack_x(bool high, std::span<float> out) const;
  void unpack_x(bool high, std::span<const float> in);
  void pack_y(bool high, std::span<float> out) const;
  void unpack_y(bool high, std::span<const float> in);

 private:
  [[nodiscard]] float* f(Field fld) { return fields_[static_cast<std::size_t>(fld)]; }
  [[nodiscard]] const float* f(Field fld) const { return fields_[static_cast<std::size_t>(fld)]; }

  Grid grid_;
  ElasticParams params_;
  float* fields_[kFields] = {};
};

}  // namespace gcmpi::apps::awp
