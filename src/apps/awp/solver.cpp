#include "apps/awp/solver.hpp"

#include <cmath>
#include <stdexcept>

namespace gcmpi::apps::awp {

Solver::Solver(Grid grid, PhysicsParams params, std::span<float> p, std::span<float> vx,
               std::span<float> vy, std::span<float> vz)
    : grid_(grid), params_(params), p_(p), vx_(vx), vy_(vy), vz_(vz) {
  if (grid_.nx == 0 || grid_.ny == 0 || grid_.nz == 0) {
    throw std::invalid_argument("Solver: empty grid");
  }
  const std::size_t need = grid_.storage();
  if (p.size() < need || vx.size() < need || vy.size() < need || vz.size() < need) {
    throw std::invalid_argument("Solver: field storage too small");
  }
  const double cfl = params_.c * params_.dt / params_.dx * std::sqrt(3.0);
  if (cfl >= 1.0) throw std::invalid_argument("Solver: CFL condition violated");
}

std::span<float> Solver::field(Field f) {
  switch (f) {
    case Field::P: return p_;
    case Field::Vx: return vx_;
    case Field::Vy: return vy_;
    case Field::Vz: return vz_;
  }
  throw std::logic_error("bad field");
}

std::span<const float> Solver::field(Field f) const {
  return const_cast<Solver*>(this)->field(f);
}

void Solver::inject_pulse(std::ptrdiff_t ci, std::ptrdiff_t cj, std::ptrdiff_t ck,
                          double amplitude, double sigma) {
  const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
  for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
    for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(grid_.ny); ++j) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(grid_.nx); ++i) {
        const double r2 = static_cast<double>((i - ci) * (i - ci) + (j - cj) * (j - cj) +
                                              (k - ck) * (k - ck));
        p_[grid_.at(i, j, k)] += static_cast<float>(amplitude * std::exp(-r2 * inv2s2));
      }
    }
  }
}

void Solver::step_velocity() {
  const float coef = static_cast<float>(-params_.dt / (params_.rho * params_.dx));
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  for (std::ptrdiff_t k = 0; k < nz; ++k) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const std::size_t c = grid_.at(i, j, k);
        vx_[c] += coef * (p_[grid_.at(i + 1, j, k)] - p_[c]);
        vy_[c] += coef * (p_[grid_.at(i, j + 1, k)] - p_[c]);
        vz_[c] += coef * (p_[grid_.at(i, j, k + 1)] - p_[c]);
      }
    }
  }
}

void Solver::step_pressure() {
  const float coef = static_cast<float>(-params_.bulk_modulus() * params_.dt / params_.dx);
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  for (std::ptrdiff_t k = 0; k < nz; ++k) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const std::size_t c = grid_.at(i, j, k);
        const float div = (vx_[c] - vx_[grid_.at(i - 1, j, k)]) +
                          (vy_[c] - vy_[grid_.at(i, j - 1, k)]) +
                          (vz_[c] - vz_[grid_.at(i, j, k - 1)]);
        p_[c] += coef * div;
      }
    }
  }
}

void Solver::apply_rigid_boundary(bool lo_x, bool hi_x, bool lo_y, bool hi_y) {
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  // Mirror pressure into the ghost shell (zero normal gradient) and zero
  // the normal velocity at the wall: a rigid, energy-conserving boundary.
  for (std::ptrdiff_t k = -1; k <= nz; ++k) {
    for (std::ptrdiff_t j = -1; j <= ny; ++j) {
      if (lo_x) {
        p_[grid_.at(-1, j, k)] = p_[grid_.at(0, j, k)];
        vx_[grid_.at(-1, j, k)] = 0.0f;
      }
      if (hi_x) {
        p_[grid_.at(nx, j, k)] = p_[grid_.at(nx - 1, j, k)];
        vx_[grid_.at(nx, j, k)] = 0.0f;
      }
    }
  }
  for (std::ptrdiff_t k = -1; k <= nz; ++k) {
    for (std::ptrdiff_t i = -1; i <= nx; ++i) {
      if (lo_y) {
        p_[grid_.at(i, -1, k)] = p_[grid_.at(i, 0, k)];
        vy_[grid_.at(i, -1, k)] = 0.0f;
      }
      if (hi_y) {
        p_[grid_.at(i, ny, k)] = p_[grid_.at(i, ny - 1, k)];
        vy_[grid_.at(i, ny, k)] = 0.0f;
      }
    }
  }
  // Z boundaries are always physical (the paper decomposes in X/Y only).
  for (std::ptrdiff_t j = -1; j <= ny; ++j) {
    for (std::ptrdiff_t i = -1; i <= nx; ++i) {
      p_[grid_.at(i, j, -1)] = p_[grid_.at(i, j, 0)];
      vz_[grid_.at(i, j, -1)] = 0.0f;
      p_[grid_.at(i, j, nz)] = p_[grid_.at(i, j, nz - 1)];
      vz_[grid_.at(i, j, nz)] = 0.0f;
    }
  }
}

double Solver::energy() const {
  const double k_bulk = params_.bulk_modulus();
  double e = 0.0;
  const auto nx = static_cast<std::ptrdiff_t>(grid_.nx);
  const auto ny = static_cast<std::ptrdiff_t>(grid_.ny);
  const auto nz = static_cast<std::ptrdiff_t>(grid_.nz);
  for (std::ptrdiff_t k = 0; k < nz; ++k) {
    for (std::ptrdiff_t j = 0; j < ny; ++j) {
      for (std::ptrdiff_t i = 0; i < nx; ++i) {
        const std::size_t c = grid_.at(i, j, k);
        const double pv = p_[c];
        const double v2 = static_cast<double>(vx_[c]) * vx_[c] +
                          static_cast<double>(vy_[c]) * vy_[c] +
                          static_cast<double>(vz_[c]) * vz_[c];
        e += 0.5 * (pv * pv / k_bulk + params_.rho * v2);
      }
    }
  }
  return e;
}

void Solver::pack_x(bool high, std::span<float> out) const {
  if (out.size() < x_face_values()) throw std::invalid_argument("pack_x: buffer too small");
  const std::ptrdiff_t i = high ? static_cast<std::ptrdiff_t>(grid_.nx) - 1 : 0;
  std::size_t w = 0;
  const std::span<const float> fields[kFields] = {p_, vx_, vy_, vz_};
  for (const auto& f : fields) {
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(grid_.ny); ++j) {
        out[w++] = f[grid_.at(i, j, k)];
      }
    }
  }
}

void Solver::unpack_x(bool high, std::span<const float> in) {
  if (in.size() < x_face_values()) throw std::invalid_argument("unpack_x: buffer too small");
  const std::ptrdiff_t i = high ? static_cast<std::ptrdiff_t>(grid_.nx) : -1;
  std::size_t w = 0;
  const std::span<float> fields[kFields] = {p_, vx_, vy_, vz_};
  for (const auto& f : fields) {
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(grid_.ny); ++j) {
        f[grid_.at(i, j, k)] = in[w++];
      }
    }
  }
}

void Solver::pack_y(bool high, std::span<float> out) const {
  if (out.size() < y_face_values()) throw std::invalid_argument("pack_y: buffer too small");
  const std::ptrdiff_t j = high ? static_cast<std::ptrdiff_t>(grid_.ny) - 1 : 0;
  std::size_t w = 0;
  const std::span<const float> fields[kFields] = {p_, vx_, vy_, vz_};
  for (const auto& f : fields) {
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(grid_.nx); ++i) {
        out[w++] = f[grid_.at(i, j, k)];
      }
    }
  }
}

void Solver::unpack_y(bool high, std::span<const float> in) {
  if (in.size() < y_face_values()) throw std::invalid_argument("unpack_y: buffer too small");
  const std::ptrdiff_t j = high ? static_cast<std::ptrdiff_t>(grid_.ny) : -1;
  std::size_t w = 0;
  const std::span<float> fields[kFields] = {p_, vx_, vy_, vz_};
  for (const auto& f : fields) {
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(grid_.nz); ++k) {
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(grid_.nx); ++i) {
        f[grid_.at(i, j, k)] = in[w++];
      }
    }
  }
}

}  // namespace gcmpi::apps::awp
