// AWP-ODC proxy: a real 3D acoustic velocity-stress finite-difference wave
// solver (staggered grid, leapfrog in time).
//
// The paper's application study runs AWP-ODC-OS (anelastic wave
// propagation) on GPUs with CUDA-aware MPI halo exchange. We reproduce the
// communication/computation structure with an acoustic (4-field) kernel:
// the wavefields are real floating-point data evolving by a real PDE, so
// the halo messages have exactly the smooth, highly-MPC-compressible
// character the paper reports (CR 3 to 31); GPU compute time is charged
// from a flops model (see DistributedAwp).
//
// Fields on the staggered grid (local box nx*ny*nz + 1-cell ghost shell):
//   p           pressure at cell centers
//   vx, vy, vz  particle velocities at face centers
// Update (leapfrog):
//   v += -(dt/rho) * grad(p);   p += -(K*dt) * div(v)
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gcmpi::apps::awp {

struct Grid {
  std::size_t nx = 0, ny = 0, nz = 0;  // interior cells
  [[nodiscard]] std::size_t cells() const { return nx * ny * nz; }
  // Storage includes a 1-cell ghost shell on every side.
  [[nodiscard]] std::size_t sx() const { return nx + 2; }
  [[nodiscard]] std::size_t sy() const { return ny + 2; }
  [[nodiscard]] std::size_t sz() const { return nz + 2; }
  [[nodiscard]] std::size_t storage() const { return sx() * sy() * sz(); }
  /// Linear index of (i,j,k), each in [-1, n+1) interior coordinates.
  [[nodiscard]] std::size_t at(std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) const {
    return (static_cast<std::size_t>(k + 1) * sy() + static_cast<std::size_t>(j + 1)) * sx() +
           static_cast<std::size_t>(i + 1);
  }
};

struct PhysicsParams {
  double dt = 0.3;       // CFL-stable for c = dx = 1
  double dx = 1.0;
  double c = 1.0;        // wave speed
  double rho = 1.0;      // density
  [[nodiscard]] double bulk_modulus() const { return c * c * rho; }
};

/// Which of the four fields; used by the halo packing helpers.
enum class Field : std::uint8_t { P = 0, Vx = 1, Vy = 2, Vz = 3 };
inline constexpr int kFields = 4;

/// Single-domain solver operating on caller-provided field storage (the
/// distributed driver allocates the fields in simulated GPU memory).
class Solver {
 public:
  Solver(Grid grid, PhysicsParams params, std::span<float> p, std::span<float> vx,
         std::span<float> vy, std::span<float> vz);

  [[nodiscard]] const Grid& grid() const { return grid_; }

  /// Gaussian pressure pulse centered at interior cell (ci,cj,ck).
  void inject_pulse(std::ptrdiff_t ci, std::ptrdiff_t cj, std::ptrdiff_t ck,
                    double amplitude, double sigma);

  /// One leapfrog step, interior only; ghost cells must be current.
  void step_velocity();
  void step_pressure();

  /// Zero-velocity (rigid) boundary on the physical edges of the global
  /// domain; the distributed driver applies this only on non-shared faces.
  void apply_rigid_boundary(bool lo_x, bool hi_x, bool lo_y, bool hi_y);

  /// Total discrete energy (kinetic + potential), for conservation tests.
  [[nodiscard]] double energy() const;

  [[nodiscard]] std::span<float> field(Field f);
  [[nodiscard]] std::span<const float> field(Field f) const;

  // --- halo packing: X faces are (ny*nz) planes, Y faces (nx*nz) planes.
  // All four fields are packed into one buffer per direction, which is what
  // the paper's CUDA-aware halo exchange sends as a single large message.
  [[nodiscard]] std::size_t x_face_values() const { return grid_.ny * grid_.nz * kFields; }
  [[nodiscard]] std::size_t y_face_values() const { return grid_.nx * grid_.nz * kFields; }
  /// Pack interior plane i = 0 (low) or i = nx-1 (high) of every field.
  void pack_x(bool high, std::span<float> out) const;
  /// Unpack into ghost plane i = -1 (low) or i = nx (high).
  void unpack_x(bool high, std::span<const float> in);
  void pack_y(bool high, std::span<float> out) const;
  void unpack_y(bool high, std::span<const float> in);

  /// Flops per cell per full step of the modeled (anelastic, 4th order)
  /// production kernel — used for the GPU-time charge, not the CPU work.
  static constexpr double kModelFlopsPerCell = 307.0;

 private:
  Grid grid_;
  PhysicsParams params_;
  std::span<float> p_, vx_, vy_, vz_;
};

}  // namespace gcmpi::apps::awp
