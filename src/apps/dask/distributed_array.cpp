#include "apps/dask/distributed_array.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace gcmpi::apps::dask {

using mpi::Rank;
using sim::Time;

namespace {

/// Deterministic chunk content independent of which worker materializes it
/// (what cupy.random with a fixed per-chunk seed would give us).
void fill_chunk(float* data, std::size_t n, std::size_t ci, std::size_t cj,
                std::uint64_t seed) {
  sim::Rng rng(seed ^ (ci * 0x9e3779b9ull) ^ (cj * 0x85ebca6bull));
  for (std::size_t i = 0; i < n * n; ++i) {
    data[i] = static_cast<float>(rng.next_double());
  }
}

}  // namespace

DaskReport run_transpose_sum(Rank& R, const DaskConfig& config) {
  const int P = R.size();
  if (config.matrix_n % config.chunk_n != 0) {
    throw std::invalid_argument("dask: matrix_n must be a multiple of chunk_n");
  }
  const std::size_t C = config.matrix_n / config.chunk_n;  // chunks per side
  const std::size_t cn = config.chunk_n;
  const std::size_t chunk_bytes = cn * cn * 4;
  auto owner = [&](std::size_t i, std::size_t j) {
    return static_cast<int>((i * C + j) % static_cast<std::size_t>(P));
  };
  auto tag_of = [&](std::size_t i, std::size_t j) {
    return static_cast<int>(i * C + j);
  };

  // Materialize owned chunks of x in device memory.
  struct Chunk {
    std::size_t i, j;
    float* x;
    float* y;
    float* peer;  // staging for x(j,i) when remote
  };
  std::vector<Chunk> owned;
  for (std::size_t i = 0; i < C; ++i) {
    for (std::size_t j = 0; j < C; ++j) {
      if (owner(i, j) != R.rank()) continue;
      Chunk c{i, j, nullptr, nullptr, nullptr};
      c.x = static_cast<float*>(R.gpu_malloc(chunk_bytes));
      c.y = static_cast<float*>(R.gpu_malloc(chunk_bytes));
      fill_chunk(c.x, cn, i, j, config.seed);
      owned.push_back(c);
    }
  }

  R.barrier();
  const Time t0 = R.now();

  // Task graph: every owned chunk (i,j) needs x(j,i); send ours to whoever
  // needs it, receive what we need, all non-blocking (the Dask scheduler
  // issues these transfers in bulk).
  std::vector<mpi::Request> reqs;
  for (auto& c : owned) {
    if (owner(c.j, c.i) != R.rank()) {
      c.peer = static_cast<float*>(R.gpu_malloc(chunk_bytes));
      reqs.push_back(R.irecv(c.peer, chunk_bytes, owner(c.j, c.i), tag_of(c.j, c.i)));
    }
  }
  // The shuffle's outgoing chunks are independent per-destination blocks:
  // compress them all in one batched launch (isend_batched falls back to
  // plain isends when fewer than two chunks qualify).
  std::vector<mpi::Rank::WireBlock> outgoing;
  for (auto& c : owned) {
    const int need_by = owner(c.j, c.i);
    if (need_by != R.rank()) {
      outgoing.push_back({c.x, chunk_bytes, need_by, tag_of(c.i, c.j)});
    }
  }
  for (auto& r : R.isend_batched(outgoing)) reqs.push_back(std::move(r));
  R.waitall(reqs);

  // y(i,j) = x(i,j) + x(j,i)^T — real arithmetic, plus a GPU-time charge
  // for the elementwise kernel (3 array touches at memory bandwidth).
  const double bw = R.gpu().spec().mem_bandwidth_gbs;
  for (auto& c : owned) {
    const float* xt = nullptr;
    if (c.peer != nullptr) {
      xt = c.peer;
    } else if (c.i == c.j) {
      xt = c.x;
    } else {
      // Both (i,j) and (j,i) are local to this worker: find the twin.
      for (const auto& o : owned) {
        if (o.i == c.j && o.j == c.i) {
          xt = o.x;
          break;
        }
      }
      if (xt == nullptr) throw std::logic_error("dask: missing local twin chunk");
    }
    for (std::size_t r = 0; r < cn; ++r) {
      for (std::size_t col = 0; col < cn; ++col) {
        c.y[r * cn + col] = c.x[r * cn + col] + xt[col * cn + r];
      }
    }
    R.compute(sim::transfer_time(3 * chunk_bytes, bw));
  }

  R.barrier();
  const Time t1 = R.now();

  DaskReport report;
  report.workers = P;
  report.exec_time = t1 - t0;

  // Aggregate the bytes that actually crossed the fabric.
  float local_bytes = 0.0f;
  for (const auto& c : owned) {
    if (c.peer != nullptr) local_bytes += static_cast<float>(chunk_bytes);
  }
  float global_bytes = 0.0f;
  R.allreduce(&local_bytes, &global_bytes, 1, mpi::ReduceOp::Sum);
  report.bytes_transferred = static_cast<std::uint64_t>(global_bytes) * 2;  // tx + rx
  report.aggregate_throughput_gbs =
      static_cast<double>(report.bytes_transferred) / report.exec_time.to_seconds() / 1e9;

  // Verify y against independently regenerated chunk contents.
  if (config.verify) {
    double max_err = 0.0;
    std::vector<float> ref_a(cn * cn), ref_b(cn * cn);
    for (const auto& c : owned) {
      fill_chunk(ref_a.data(), cn, c.i, c.j, config.seed);
      fill_chunk(ref_b.data(), cn, c.j, c.i, config.seed);
      for (std::size_t r = 0; r < cn; ++r) {
        for (std::size_t col = 0; col < cn; ++col) {
          // Same float arithmetic as the compute kernel, so the
          // no-compression case verifies bit-exactly.
          const float expect = ref_a[r * cn + col] + ref_b[col * cn + r];
          const double err = std::fabs(static_cast<double>(expect) - c.y[r * cn + col]);
          if (err > max_err) max_err = err;
        }
      }
    }
    float local_err = static_cast<float>(max_err);
    float global_err = 0.0f;
    R.allreduce(&local_err, &global_err, 1, mpi::ReduceOp::Max);
    report.max_error = global_err;
    report.verified = global_err <= config.verify_tolerance + 1e-12;
  }

  for (auto& c : owned) {
    R.gpu_free(c.x);
    R.gpu_free(c.y);
    if (c.peer != nullptr) R.gpu_free(c.peer);
  }
  return report;
}

}  // namespace gcmpi::apps::dask
