// Dask proxy: a distributed chunked 2D array over MiniMPI reproducing the
// paper's MPI4Dask application benchmark (Sec. VII-B):
//
//     y = x + x.T ; y.persist() ; wait(y)
//
// A square float32 matrix is split into square chunks distributed
// round-robin across workers (Dask's default for cuPy-backed arrays); the
// transpose term forces every off-diagonal chunk to move between workers
// over the (compressed) GPU communication path. Chunks live in simulated
// GPU memory, so messages take the device rendezvous path.
#pragma once

#include <cstdint>

#include "mpi/world.hpp"

namespace gcmpi::apps::dask {

struct DaskConfig {
  std::size_t matrix_n = 4096;  // matrix is matrix_n x matrix_n floats
  std::size_t chunk_n = 512;    // chunk is chunk_n x chunk_n
  std::uint64_t seed = 7;
  bool verify = true;           // check y == x + x^T (within lossy tolerance)
  double verify_tolerance = 0.0;  // 0 => exact (no/lossless compression)
};

struct DaskReport {
  int workers = 0;
  sim::Time exec_time;
  std::uint64_t bytes_transferred = 0;  // global, both directions
  double aggregate_throughput_gbs = 0.0;
  bool verified = false;
  double max_error = 0.0;
};

/// Collective: all ranks (workers) call with the same config. The report is
/// complete on every rank (results are allreduced).
DaskReport run_transpose_sum(mpi::Rank& R, const DaskConfig& config);

}  // namespace gcmpi::apps::dask
