// In-place bit-matrix transposes for MPC's tile stage.
//
// Convention: row r of the matrix is word a[r], and bit c (LSB-first) of
// that word is column c, i.e. M[r][c] = (a[r] >> c) & 1. The transpose
// satisfies M'[r][c] = M[c][r] — exactly the "out[b] collects bit b of
// in[0..N)" layout MPC's zero-elimination stage expects.
//
// The implementation is the Hacker's Delight recursive block swap
// (Sec. 7-3), mirrored for LSB-first bit order: at each level, the
// block of rows with bit j clear / columns with bit j set trades places
// with the block of rows with bit j set / columns with bit j clear using a
// mask/shift/xor exchange. log2(N) passes of N/2 word operations replace
// the naive N*N double loop; the whole 32x32 tile transposes in ~160 word
// ops. Each function is an involution: applying it twice is the identity,
// which is what lets MPC decompression reuse the forward transpose.
#pragma once

#include <cstdint>

namespace gcmpi::comp {

/// Transpose a 32x32 bit matrix in place.
inline void bit_transpose32(std::uint32_t a[32]) {
  std::uint32_t m = 0x0000FFFFu;
  for (int j = 16; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 32; k = (k + j + 1) & ~j) {
      const std::uint32_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

/// Transpose a 64x64 bit matrix in place.
inline void bit_transpose64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

}  // namespace gcmpi::comp
