// Bit-granular stream writer/reader used by the ZFP codec.
//
// Bits are packed LSB-first into little-endian 64-bit words, matching the
// convention of Lindstrom's zfp bitstream. The reader supports absolute
// seeks so fixed-rate blocks (each exactly `maxbits` long) can be skipped
// to independently of how many bits the previous block consumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace gcmpi::comp {

class BitWriter {
 public:
  void put_bit(std::uint32_t bit) {
    accum_ |= static_cast<std::uint64_t>(bit & 1u) << fill_;
    if (++fill_ == 64) flush_word();
  }

  /// Write the low `n` bits of `v` (LSB first), 0 <= n <= 64.
  void put_bits(std::uint64_t v, int n) {
    if (n == 0) return;
    if (n < 0 || n > 64) throw std::invalid_argument("BitWriter::put_bits: bad n");
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    accum_ |= v << fill_;
    if (fill_ + n >= 64) {
      words_.push_back(accum_);
      const int rem = fill_ + n - 64;
      accum_ = (fill_ > 0) ? (v >> (64 - fill_)) : 0;
      fill_ = rem;
    } else {
      fill_ += n;
    }
  }

  /// Pad with zero bits until the stream is exactly `bits` long.
  void pad_to(std::size_t bits) {
    if (bits < bit_size()) throw std::invalid_argument("BitWriter::pad_to: shrinking");
    std::size_t todo = bits - bit_size();
    while (todo >= 64) {
      put_bits(0, 64);
      todo -= 64;
    }
    if (todo > 0) put_bits(0, static_cast<int>(todo));
  }

  [[nodiscard]] std::size_t bit_size() const { return words_.size() * 64 + fill_; }

  /// Finish the stream and return the bytes (padded to a whole word).
  [[nodiscard]] std::vector<std::uint8_t> take() {
    if (fill_ > 0) flush_word_partial();
    std::vector<std::uint8_t> out(words_.size() * 8);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      for (int b = 0; b < 8; ++b) {
        out[i * 8 + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(words_[i] >> (8 * b));
      }
    }
    words_.clear();
    accum_ = 0;
    fill_ = 0;
    return out;
  }

 private:
  void flush_word() {
    words_.push_back(accum_);
    accum_ = 0;
    fill_ = 0;
  }
  void flush_word_partial() {
    words_.push_back(accum_);
    accum_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t accum_ = 0;
  int fill_ = 0;  // bits used in accum_
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint32_t get_bit() {
    const std::size_t byte = pos_ >> 3;
    const unsigned shift = static_cast<unsigned>(pos_ & 7);
    ++pos_;
    if (byte >= bytes_.size()) return 0;  // reading past end yields zeros
    return (bytes_[byte] >> shift) & 1u;
  }

  /// Read `n` bits LSB-first, 0 <= n <= 64.
  [[nodiscard]] std::uint64_t get_bits(int n) {
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(get_bit()) << i;
    return v;
  }

  void seek(std::size_t bit_pos) { pos_ = bit_pos; }
  [[nodiscard]] std::size_t tell() const { return pos_; }
  [[nodiscard]] std::size_t bit_size() const { return bytes_.size() * 8; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace gcmpi::comp
