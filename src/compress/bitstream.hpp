// Bit-granular stream writer/reader used by the ZFP codec.
//
// Bits are packed LSB-first into little-endian 64-bit words, matching the
// convention of Lindstrom's zfp bitstream. The reader supports absolute
// seeks so fixed-rate blocks (each exactly `maxbits` long) can be skipped
// to independently of how many bits the previous block consumed.
//
// Both ends are word-parallel: the writer packs into a 64-bit accumulator
// and emits whole words; the reader keeps a 64-bit refill buffer so
// `get_bits(n)` costs at most two word loads (never n per-bit probes).
// Reading past the end of the buffer yields zero bits, which fixed-rate
// ZFP relies on for the zero-padded tail of the final block.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace gcmpi::comp {

class BitWriter {
 public:
  void put_bit(std::uint32_t bit) {
    accum_ |= static_cast<std::uint64_t>(bit & 1u) << fill_;
    if (++fill_ == 64) flush_word();
  }

  /// Write the low `n` bits of `v` (LSB first), 0 <= n <= 64.
  void put_bits(std::uint64_t v, int n) {
    if (n == 0) return;
    if (n < 0 || n > 64) throw std::invalid_argument("BitWriter::put_bits: bad n");
    if (n < 64) v &= (std::uint64_t{1} << n) - 1;
    accum_ |= v << fill_;
    if (fill_ + n >= 64) {
      words_.push_back(accum_);
      const int rem = fill_ + n - 64;
      accum_ = (fill_ > 0) ? (v >> (64 - fill_)) : 0;
      fill_ = rem;
    } else {
      fill_ += n;
    }
  }

  /// Pad with zero bits until the stream is exactly `bits` long. Whole
  /// zero words are appended directly instead of being shifted through the
  /// accumulator bit by bit.
  void pad_to(std::size_t bits) {
    if (bits < bit_size()) throw std::invalid_argument("BitWriter::pad_to: shrinking");
    std::size_t todo = bits - bit_size();
    if (fill_ > 0) {
      const int align = static_cast<int>(
          std::min<std::size_t>(static_cast<std::size_t>(64 - fill_), todo));
      todo -= static_cast<std::size_t>(align);
      fill_ += align;
      if (fill_ == 64) flush_word();
    }
    if (todo == 0) return;
    words_.resize(words_.size() + todo / 64, 0);  // accum_ is zero here
    fill_ = static_cast<int>(todo % 64);
  }

  /// Grow the word buffer up front so a stream of known maximum length
  /// never reallocates mid-encode.
  void reserve_bits(std::size_t bits) { words_.reserve((bits + 63) / 64); }

  [[nodiscard]] std::size_t bit_size() const {
    return words_.size() * 64 + static_cast<std::size_t>(fill_);
  }

  /// Finish the stream and return the bytes (padded to a whole word).
  [[nodiscard]] std::vector<std::uint8_t> take() {
    if (fill_ > 0) flush_word();
    std::vector<std::uint8_t> out(words_.size() * 8);
    if constexpr (std::endian::native == std::endian::little) {
      if (!out.empty()) std::memcpy(out.data(), words_.data(), out.size());
    } else {
      for (std::size_t i = 0; i < words_.size(); ++i) {
        for (int b = 0; b < 8; ++b) {
          out[i * 8 + static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(words_[i] >> (8 * b));
        }
      }
    }
    words_.clear();
    accum_ = 0;
    fill_ = 0;
    return out;
  }

 private:
  void flush_word() {
    words_.push_back(accum_);
    accum_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t accum_ = 0;
  int fill_ = 0;  // bits used in accum_
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) { seek(0); }

  [[nodiscard]] std::uint32_t get_bit() {
    if (avail_ == 0) {
      buf_ = load_word(word_idx_++);
      avail_ = 64;
    }
    const auto bit = static_cast<std::uint32_t>(buf_ & 1u);
    buf_ >>= 1;
    --avail_;
    ++pos_;
    return bit;
  }

  /// Read `n` bits LSB-first, 0 <= n <= 64: at most two word loads.
  [[nodiscard]] std::uint64_t get_bits(int n) {
    if (n <= 0) return 0;
    std::uint64_t v;
    if (avail_ >= n) {
      v = (n < 64) ? (buf_ & mask(n)) : buf_;
      buf_ = (n < 64) ? (buf_ >> n) : 0;
      avail_ -= n;
    } else {
      v = buf_;
      const int got = avail_;  // 0..63, < n
      buf_ = load_word(word_idx_++);
      const int need = n - got;  // 1..64
      v |= ((need < 64) ? (buf_ & mask(need)) : buf_) << got;
      buf_ = (need < 64) ? (buf_ >> need) : 0;
      avail_ = 64 - need;
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  /// Next `n` bits (LSB-first, 0 <= n < 64) without consuming them; like
  /// get_bits, positions past the end read as zeros.
  [[nodiscard]] std::uint64_t peek_bits(int n) const {
    if (n <= 0) return 0;
    std::uint64_t v = buf_;
    if (avail_ < n) v |= load_word(word_idx_) << avail_;  // avail_ < n <= 63
    return v & mask(n);
  }

  /// Consume `n` bits previously examined with peek_bits.
  void skip(int n) { (void)get_bits(n); }

  /// Absolute reposition; refills the accumulator from the target word.
  void seek(std::size_t bit_pos) {
    pos_ = bit_pos;
    word_idx_ = bit_pos / 64;
    const int used = static_cast<int>(bit_pos % 64);
    buf_ = load_word(word_idx_++) >> used;
    avail_ = 64 - used;
  }

  [[nodiscard]] std::size_t tell() const { return pos_; }
  [[nodiscard]] std::size_t bit_size() const { return bytes_.size() * 8; }

 private:
  [[nodiscard]] static constexpr std::uint64_t mask(int n) {  // n in [0, 63]
    return (std::uint64_t{1} << n) - 1;
  }

  /// Little-endian 64-bit word `w` of the buffer; partial tail words and
  /// words past the end are zero-filled.
  [[nodiscard]] std::uint64_t load_word(std::size_t w) const {
    const std::size_t byte = w * 8;
    if (byte >= bytes_.size()) return 0;
    std::uint64_t v = 0;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, bytes_.data() + byte, std::min<std::size_t>(8, bytes_.size() - byte));
    } else {
      const std::size_t len = std::min<std::size_t>(8, bytes_.size() - byte);
      for (std::size_t b = 0; b < len; ++b) {
        v |= static_cast<std::uint64_t>(bytes_[byte + b]) << (8 * b);
      }
    }
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;       // logical bit position
  std::size_t word_idx_ = 0;  // next word to load into buf_
  std::uint64_t buf_ = 0;     // unread bits at pos_, LSB first
  int avail_ = 0;             // valid bits in buf_
};

}  // namespace gcmpi::comp
