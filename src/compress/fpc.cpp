#include "compress/fpc.hpp"

#include <cstring>
#include <stdexcept>

namespace gcmpi::comp {

namespace {

constexpr std::uint32_t kMagic = 0x46504331u;  // "FPC1"

[[nodiscard]] int leading_zero_bytes(std::uint64_t x) {
  if (x == 0) return 8;
  return __builtin_clzll(x) / 8;
}

}  // namespace

FpcCodec::FpcCodec(unsigned table_size_log2) : lg_(table_size_log2) {
  if (lg_ < 4 || lg_ > 24) throw std::invalid_argument("FpcCodec: table_size_log2 must be 4..24");
}

std::size_t FpcCodec::max_compressed_bytes(std::size_t n_values) const {
  // Header (12 bytes) + 1 code byte per pair + 8 bytes per value worst case.
  return 12 + (n_values + 1) / 2 + n_values * 8 + 8;
}

std::size_t FpcCodec::compress(std::span<const double> in, std::span<std::uint8_t> out) const {
  const std::size_t n = in.size();
  if (out.size() < max_compressed_bytes(n)) {
    throw std::invalid_argument("FpcCodec::compress: output too small");
  }
  const std::size_t table_size = std::size_t{1} << lg_;
  const std::uint64_t hash_mask = table_size - 1;
  std::vector<std::uint64_t> fcm(table_size, 0), dfcm(table_size, 0);

  std::uint8_t* p = out.data();
  std::memcpy(p, &kMagic, 4);
  const auto n32 = static_cast<std::uint32_t>(n);
  std::memcpy(p + 4, &n32, 4);
  const auto lg32 = static_cast<std::uint32_t>(lg_);
  std::memcpy(p + 8, &lg32, 4);
  std::size_t pos = 12;

  std::uint64_t fcm_hash = 0, dfcm_hash = 0, last = 0;

  // Predict one value, update the tables, and return (code, residual,
  // payload byte count). The 3-bit leading-zero-byte code cannot represent
  // a count of 4 (the original FPC quirk): 4 keeps an extra payload byte
  // and counts 5..8 shift down by one.
  auto encode_one = [&](double value, std::uint8_t& code, std::uint64_t& residual,
                        int& payload) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, 8);
    const std::uint64_t pred_fcm = fcm[fcm_hash];
    const std::uint64_t pred_dfcm = dfcm[dfcm_hash] + last;
    fcm[fcm_hash] = bits;
    fcm_hash = ((fcm_hash << 6) ^ (bits >> 48)) & hash_mask;
    dfcm[dfcm_hash] = bits - last;
    dfcm_hash = ((dfcm_hash << 2) ^ ((bits - last) >> 40)) & hash_mask;
    last = bits;

    const std::uint64_t xor_fcm = bits ^ pred_fcm;
    const std::uint64_t xor_dfcm = bits ^ pred_dfcm;
    const bool use_dfcm = xor_dfcm < xor_fcm;
    residual = use_dfcm ? xor_dfcm : xor_fcm;

    int lzb = leading_zero_bytes(residual);
    if (lzb == 4) lzb = 3;
    const int stored = lzb > 4 ? lzb - 1 : lzb;
    payload = 8 - lzb;
    code = static_cast<std::uint8_t>((use_dfcm ? 8 : 0) | stored);
  };

  // Payload bytes go out most-significant-first; byteswapping once and
  // copying the tail of the big-endian image emits all of them in one store
  // instead of a shift-and-mask per byte.
  auto put_payload = [&](std::uint64_t residual, int payload) {
    const std::uint64_t be = __builtin_bswap64(residual);
    std::memcpy(out.data() + pos, reinterpret_cast<const std::uint8_t*>(&be) + (8 - payload),
                static_cast<std::size_t>(payload));
    pos += static_cast<std::size_t>(payload);
  };

  // One shared code byte per pair of values, written BEFORE their payloads.
  for (std::size_t i = 0; i < n; i += 2) {
    std::uint8_t c0 = 0, c1 = 0;
    std::uint64_t r0 = 0, r1 = 0;
    int p0 = 0, p1 = 0;
    encode_one(in[i], c0, r0, p0);
    if (i + 1 < n) encode_one(in[i + 1], c1, r1, p1);
    out[pos++] = static_cast<std::uint8_t>(c0 | (c1 << 4));
    put_payload(r0, p0);
    if (i + 1 < n) put_payload(r1, p1);
  }
  return pos;
}

std::size_t FpcCodec::decompress(std::span<const std::uint8_t> in, std::span<double> out) const {
  if (in.size() < 12) throw std::invalid_argument("FpcCodec: truncated input");
  std::uint32_t magic = 0, n32 = 0, lg32 = 0;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&n32, in.data() + 4, 4);
  std::memcpy(&lg32, in.data() + 8, 4);
  if (magic != kMagic) throw std::invalid_argument("FpcCodec: bad magic");
  if (lg32 != lg_) throw std::invalid_argument("FpcCodec: table size mismatch");
  const std::size_t n = n32;
  if (out.size() < n) throw std::invalid_argument("FpcCodec::decompress: output too small");

  const std::size_t table_size = std::size_t{1} << lg_;
  const std::uint64_t hash_mask = table_size - 1;
  std::vector<std::uint64_t> fcm(table_size, 0), dfcm(table_size, 0);

  std::size_t pos = 12;
  std::uint64_t fcm_hash = 0, dfcm_hash = 0, last = 0;
  std::uint8_t pair = 0;
  bool have_pair = false;

  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t code = 0;
    if (!have_pair) {
      if (pos >= in.size()) throw std::runtime_error("FpcCodec: truncated codes");
      pair = in[pos++];
      code = pair & 0x0f;
      have_pair = true;
    } else {
      code = (pair >> 4) & 0x0f;
      have_pair = false;
    }
    const bool use_dfcm = (code & 8) != 0;
    const int stored = code & 7;
    const int enc_lzb = stored >= 4 ? stored + 1 : stored;
    const int payload = 8 - enc_lzb;
    if (pos + static_cast<std::size_t>(payload) > in.size()) {
      throw std::runtime_error("FpcCodec: truncated payload");
    }
    std::uint64_t be = 0;
    std::memcpy(reinterpret_cast<std::uint8_t*>(&be) + (8 - payload), in.data() + pos,
                static_cast<std::size_t>(payload));
    pos += static_cast<std::size_t>(payload);
    const std::uint64_t residual = __builtin_bswap64(be);
    const std::uint64_t pred = use_dfcm ? dfcm[dfcm_hash] + last : fcm[fcm_hash];
    const std::uint64_t bits = residual ^ pred;

    fcm[fcm_hash] = bits;
    fcm_hash = ((fcm_hash << 6) ^ (bits >> 48)) & hash_mask;
    dfcm[dfcm_hash] = bits - last;
    dfcm_hash = ((dfcm_hash << 2) ^ ((bits - last) >> 40)) & hash_mask;
    last = bits;

    std::memcpy(&out[i], &bits, 8);
  }
  return n;
}

}  // namespace gcmpi::comp
