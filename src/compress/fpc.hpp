// FPC: lossless compression of double-precision data (Burtscher &
// Ratanaworabhan, DCC 2007). Serial CPU algorithm — included as the
// representative CPU-based compressor from the paper's Table I, so the
// "CPU compressors cannot keep up with the network" claim can be measured
// rather than asserted.
//
// Per value: predict with both an FCM and a DFCM hash predictor, XOR the
// better prediction with the true bits, and emit a 4-bit code (1 selector
// bit + 3-bit count of leading zero bytes) followed by the non-zero bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gcmpi::comp {

class FpcCodec {
 public:
  /// `table_size_log2`: log2 of predictor table entries (paper default 16).
  explicit FpcCodec(unsigned table_size_log2 = 16);

  [[nodiscard]] std::size_t max_compressed_bytes(std::size_t n_values) const;

  std::size_t compress(std::span<const double> in, std::span<std::uint8_t> out) const;
  std::size_t decompress(std::span<const std::uint8_t> in, std::span<double> out) const;

 private:
  unsigned lg_;
};

}  // namespace gcmpi::comp
