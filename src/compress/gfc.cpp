#include "compress/gfc.hpp"

#include <cstring>
#include <vector>
#include <stdexcept>

namespace gcmpi::comp {

namespace {

constexpr std::uint32_t kMagic = 0x47464331u;  // "GFC1"

[[nodiscard]] int significant_bytes(std::uint64_t x) {
  if (x == 0) return 0;
  return 8 - __builtin_clzll(x) / 8;
}

}  // namespace

GfcCodec::GfcCodec(std::size_t chunk_values) : chunk_(chunk_values) {
  if (chunk_ == 0) throw std::invalid_argument("GfcCodec: chunk_values must be > 0");
}

std::size_t GfcCodec::max_compressed_bytes(std::size_t n_values) const {
  // Header (16) + half a header byte and up to 8 payload bytes per value
  // (sig-count 7 encodes 8 significant bytes).
  return 16 + (n_values + 1) / 2 + n_values * 8 + 8;
}

std::size_t GfcCodec::compress(std::span<const double> in, std::span<std::uint8_t> out) const {
  const std::size_t n = in.size();
  if (out.size() < max_compressed_bytes(n)) {
    throw std::invalid_argument("GfcCodec::compress: output too small");
  }
  std::uint8_t* p = out.data();
  std::memcpy(p, &kMagic, 4);
  const auto n32 = static_cast<std::uint32_t>(n);
  std::memcpy(p + 4, &n32, 4);
  const auto c32 = static_cast<std::uint32_t>(chunk_);
  std::memcpy(p + 8, &c32, 4);
  std::memset(p + 12, 0, 4);
  std::size_t pos = 16;

  // Nibble-packed headers: two values share one header byte. Per value:
  // bit3 = sign of the delta, bits0..2 = significant byte count (7 => 8).
  std::uint8_t pending = 0;
  bool half = false;
  auto emit_header = [&](std::uint8_t nibble) {
    if (!half) {
      pending = nibble;
      half = true;
    } else {
      out[pos++] = static_cast<std::uint8_t>(pending | (nibble << 4));
      half = false;
    }
  };

  std::vector<std::uint8_t> payload;
  payload.reserve(n * 8);  // worst case: every delta keeps all 8 bytes

  for (std::size_t base = 0; base < n; base += chunk_) {
    const std::size_t count = std::min(chunk_, n - base);
    std::uint64_t prev = 0;  // chunk-local predictor, like one GPU warp
    for (std::size_t j = 0; j < count; ++j) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &in[base + j], 8);
      const std::uint64_t delta = bits - prev;
      prev = bits;
      // Sign-fold: encode the smaller of delta and -delta.
      const std::uint64_t neg = ~delta + 1;
      const bool use_neg = neg < delta;
      const std::uint64_t folded = use_neg ? neg : delta;
      int sig = significant_bytes(folded);
      if (sig == 4) sig = 5;  // 4 is not representable in the 3-bit field
      const std::uint8_t stored = static_cast<std::uint8_t>(sig > 4 ? sig - 1 : sig);
      emit_header(static_cast<std::uint8_t>((use_neg ? 8 : 0) | stored));
      // Payload is the low `sig` bytes of `folded` in little-endian order —
      // exactly its in-memory prefix, so one memcpy replaces the byte loop.
      const std::size_t old = payload.size();
      payload.resize(old + static_cast<std::size_t>(sig));
      std::memcpy(payload.data() + old, &folded, static_cast<std::size_t>(sig));
    }
  }
  if (half) out[pos++] = pending;
  if (!payload.empty()) std::memcpy(out.data() + pos, payload.data(), payload.size());
  return pos + payload.size();
}

std::size_t GfcCodec::decompress(std::span<const std::uint8_t> in, std::span<double> out) const {
  if (in.size() < 16) throw std::invalid_argument("GfcCodec: truncated input");
  std::uint32_t magic = 0, n32 = 0, c32 = 0;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&n32, in.data() + 4, 4);
  std::memcpy(&c32, in.data() + 8, 4);
  if (magic != kMagic) throw std::invalid_argument("GfcCodec: bad magic");
  const std::size_t n = n32;
  const std::size_t chunk = c32;
  if (chunk == 0) throw std::invalid_argument("GfcCodec: corrupt chunk size");
  if (out.size() < n) throw std::invalid_argument("GfcCodec::decompress: output too small");

  const std::size_t header_bytes = (n + 1) / 2;
  if (in.size() < 16 + header_bytes) throw std::runtime_error("GfcCodec: truncated headers");
  const std::uint8_t* headers = in.data() + 16;
  const std::uint8_t* payload = headers + header_bytes;
  const std::size_t payload_size = in.size() - 16 - header_bytes;

  std::size_t ppos = 0;
  for (std::size_t base = 0; base < n; base += chunk) {
    const std::size_t count = std::min(chunk, n - base);
    std::uint64_t prev = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t i = base + j;
      const std::uint8_t byte = headers[i / 2];
      const std::uint8_t nibble = (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
      const bool use_neg = (nibble & 8) != 0;
      const int stored = nibble & 7;
      const int sig = stored >= 4 ? stored + 1 : stored;
      if (ppos + static_cast<std::size_t>(sig) > payload_size) {
        throw std::runtime_error("GfcCodec: truncated payload");
      }
      std::uint64_t folded = 0;
      std::memcpy(&folded, payload + ppos, static_cast<std::size_t>(sig));
      ppos += static_cast<std::size_t>(sig);
      const std::uint64_t delta = use_neg ? (~folded + 1) : folded;
      const std::uint64_t bits = prev + delta;
      prev = bits;
      std::memcpy(&out[i], &bits, 8);
    }
  }
  return n;
}

}  // namespace gcmpi::comp
