// GFC-style lossless compression of double-precision data (after O'Neil &
// Burtscher, "Floating-Point Data Compression at 75 Gb/s on a GPU",
// GPGPU-4 2011) — the other GPU-based lossless compressor of Table I.
//
// Structure mirrors the GPU algorithm: the array is cut into chunks (one
// per warp in the original); within a chunk each value is predicted by the
// previous value (last-value delta on the raw 64-bit integers), the
// residual is sign-folded, and encoded as a 4-bit header (sign bit + 3-bit
// count of significant bytes, with the 4/8 quirk resolved toward keeping
// an extra byte) followed by the non-zero residual bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gcmpi::comp {

class GfcCodec {
 public:
  explicit GfcCodec(std::size_t chunk_values = 1024);

  [[nodiscard]] std::size_t max_compressed_bytes(std::size_t n_values) const;

  std::size_t compress(std::span<const double> in, std::span<std::uint8_t> out) const;
  std::size_t decompress(std::span<const std::uint8_t> in, std::span<double> out) const;

 private:
  std::size_t chunk_;
};

}  // namespace gcmpi::comp
