#include "compress/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace gcmpi::comp {

namespace {
constexpr int kMaxLength = 32;
constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;  // value-slot sentinel (indices are small)

struct Node {
  std::uint64_t weight;
  int left = -1, right = -1;
  std::uint32_t symbol = 0;
  bool leaf = false;
};
}  // namespace

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint32_t> symbols) {
  std::unordered_map<std::uint32_t, std::uint64_t> hist;
  hist.reserve(1024);
  for (std::uint32_t s : symbols) ++hist[s];
  if (hist.empty()) return;

  // Build the Huffman tree.
  std::vector<Node> nodes;
  nodes.reserve(hist.size() * 2);
  using QItem = std::pair<std::uint64_t, int>;  // (weight, node index)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> queue;
  for (const auto& [sym, w] : hist) {
    nodes.push_back(Node{w, -1, -1, sym, true});
    queue.emplace(w, static_cast<int>(nodes.size() - 1));
  }
  while (queue.size() > 1) {
    const auto [wa, a] = queue.top();
    queue.pop();
    const auto [wb, b] = queue.top();
    queue.pop();
    nodes.push_back(Node{wa + wb, a, b, 0, false});
    queue.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }

  // Depth-first code lengths.
  std::vector<std::pair<int, int>> stack;  // (node, depth)
  stack.emplace_back(queue.top().second, 0);
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(idx)];
    if (nd.leaf) {
      const int len = std::max(1, depth);
      if (len > kMaxLength) {
        throw std::runtime_error("HuffmanEncoder: code length limit exceeded");
      }
      entries_.push_back(Entry{nd.symbol, static_cast<std::uint8_t>(len), 0, 0});
    } else {
      stack.emplace_back(nd.left, depth + 1);
      stack.emplace_back(nd.right, depth + 1);
    }
  }

  // Canonical code assignment: sort by (length, symbol), sequential codes.
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    if (a.length != b.length) return a.length < b.length;
    return a.symbol < b.symbol;
  });
  std::uint32_t code = 0;
  int prev_len = entries_.front().length;
  for (auto& e : entries_) {
    code <<= (e.length - prev_len);
    prev_len = e.length;
    e.code = code++;
    // Pre-reverse so encode() can emit the whole code with one put_bits
    // (LSB-first) instead of a put_bit per code bit (MSB-first).
    std::uint32_t r = 0;
    for (int i = 0; i < e.length; ++i) r |= ((e.code >> i) & 1u) << (e.length - 1 - i);
    e.rcode = r;
  }

  // Mean code length under the histogram.
  double weighted = 0;
  std::uint64_t total = 0;
  for (const auto& e : entries_) {
    const std::uint64_t w = hist[e.symbol];
    weighted += static_cast<double>(w) * e.length;
    total += w;
  }
  mean_length_ = weighted / static_cast<double>(total);

  // Open-addressing lookup table for encode().
  std::size_t cap = 16;
  while (cap < entries_.size() * 2) cap <<= 1;
  hash_mask_ = static_cast<std::uint32_t>(cap - 1);
  hash_keys_.assign(cap, 0);
  hash_vals_.assign(cap, kEmptySlot);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::uint32_t h = (entries_[i].symbol * 2654435761u) & hash_mask_;
    while (hash_vals_[h] != kEmptySlot) h = (h + 1) & hash_mask_;
    hash_keys_[h] = entries_[i].symbol;
    hash_vals_[h] = static_cast<std::uint32_t>(i);
  }
}

const HuffmanEncoder::Entry* HuffmanEncoder::find(std::uint32_t symbol) const {
  if (entries_.empty()) return nullptr;
  std::uint32_t h = (symbol * 2654435761u) & hash_mask_;
  while (hash_vals_[h] != kEmptySlot) {
    if (hash_keys_[h] == symbol) return &entries_[hash_vals_[h]];
    h = (h + 1) & hash_mask_;
  }
  return nullptr;
}

void HuffmanEncoder::write_table(BitWriter& w) const {
  w.put_bits(entries_.size(), 32);
  for (const auto& e : entries_) {
    w.put_bits(e.symbol, 32);
    w.put_bits(e.length, 6);
  }
}

void HuffmanEncoder::encode(BitWriter& w, std::uint32_t symbol) const {
  const Entry* e = find(symbol);
  if (e == nullptr) throw std::invalid_argument("HuffmanEncoder: unknown symbol");
  w.put_bits(e->rcode, e->length);
}

HuffmanDecoder::HuffmanDecoder(BitReader& r) {
  const auto n = static_cast<std::size_t>(r.get_bits(32));
  if (n > (1u << 26)) throw std::invalid_argument("HuffmanDecoder: corrupt table size");
  struct Item {
    std::uint32_t symbol;
    std::uint8_t length;
  };
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto sym = static_cast<std::uint32_t>(r.get_bits(32));
    const auto len = static_cast<std::uint8_t>(r.get_bits(6));
    if (len == 0 || len > kMaxLength) throw std::invalid_argument("HuffmanDecoder: bad length");
    items.push_back({sym, len});
    max_length_ = std::max(max_length_, static_cast<int>(len));
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.length != b.length) return a.length < b.length;
    return a.symbol < b.symbol;
  });
  symbols_.reserve(n);
  for (const auto& it : items) {
    ++count_[it.length];
    symbols_.push_back(it.symbol);
  }
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxLength; ++len) {
    first_code_[len] = code;
    first_index_[len] = index;
    code = (code + count_[len]) << 1;
    index += count_[len];
  }
}

std::uint32_t HuffmanDecoder::decode(BitReader& r) const {
  if (symbols_.empty()) throw std::logic_error("HuffmanDecoder: empty codebook");
  // One peek covers the longest possible code; the canonical length scan
  // then runs on a register window instead of per-bit reader calls, and the
  // reader advances once by the matched length.
  const std::uint64_t window = r.peek_bits(max_length_);
  std::uint32_t acc = 0;
  for (int len = 1; len <= max_length_; ++len) {
    acc = (acc << 1) | static_cast<std::uint32_t>((window >> (len - 1)) & 1u);
    if (count_[len] != 0 && acc - first_code_[len] < count_[len]) {
      r.skip(len);
      return symbols_[first_index_[len] + (acc - first_code_[len])];
    }
  }
  throw std::runtime_error("HuffmanDecoder: invalid code in stream");
}

}  // namespace gcmpi::comp
