// Canonical Huffman coding over 32-bit symbols — the entropy-coding stage
// of the SZ-style error-bounded compressor (SZ couples linear-scaling
// quantization with Huffman coding of the quantization codes).
//
// Canonical form: only the code lengths are serialized (per used symbol),
// and both sides rebuild identical codebooks, which keeps the header small
// even for large quantization ranges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitstream.hpp"

namespace gcmpi::comp {

class HuffmanEncoder {
 public:
  /// Build a length-limited (<= 32 bits) canonical code for `symbols`.
  explicit HuffmanEncoder(std::span<const std::uint32_t> symbols);

  /// Serialize the codebook (symbol/length pairs) into the writer.
  void write_table(BitWriter& w) const;

  /// Encode one symbol (must have appeared in the constructor input).
  void encode(BitWriter& w, std::uint32_t symbol) const;

  [[nodiscard]] std::size_t distinct_symbols() const { return entries_.size(); }

  /// Expected bits per symbol under the built code (for cost prediction).
  [[nodiscard]] double mean_code_length() const { return mean_length_; }

 private:
  struct Entry {
    std::uint32_t symbol;
    std::uint8_t length;
    std::uint32_t code;   // canonical value, MSB-first semantics
    std::uint32_t rcode;  // bit-reversed code: one LSB-first put_bits emits
                          // the same MSB-first bit sequence as `code`
  };
  // Sparse symbol -> entry index lookup (symbols can be arbitrary u32).
  [[nodiscard]] const Entry* find(std::uint32_t symbol) const;

  std::vector<Entry> entries_;      // sorted by (length, symbol)
  std::vector<std::uint32_t> hash_keys_;
  std::vector<std::uint32_t> hash_vals_;
  std::uint32_t hash_mask_ = 0;
  double mean_length_ = 0.0;
};

class HuffmanDecoder {
 public:
  /// Rebuild the codebook from a serialized table.
  explicit HuffmanDecoder(BitReader& r);

  [[nodiscard]] std::uint32_t decode(BitReader& r) const;
  [[nodiscard]] std::size_t distinct_symbols() const { return symbols_.size(); }

 private:
  // Canonical decode tables: first code value and symbol offset per length.
  std::vector<std::uint32_t> symbols_;           // in canonical order
  std::uint32_t first_code_[33] = {};
  std::uint32_t first_index_[33] = {};
  std::uint16_t count_[33] = {};
  int max_length_ = 0;
};

}  // namespace gcmpi::comp
