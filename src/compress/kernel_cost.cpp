#include "compress/kernel_cost.hpp"

#include <algorithm>

namespace gcmpi::comp {

double KernelCostModel::block_efficiency(int blocks, const GpuSpec& gpu) const {
  const double b = std::max(1, blocks);
  const double full = static_cast<double>(gpu.sm_count);
  const double eff = b / (b + mpc_block_half_saturation);
  const double norm = full / (full + mpc_block_half_saturation);
  return eff / norm;
}

Time KernelCostModel::mpc_compress(std::uint64_t in_bytes, std::uint64_t out_bytes,
                                   int blocks, const GpuSpec& gpu) const {
  const double bw = mpc_compress_base_gbs * 1e9 * gpu.compute_scale *
                    block_efficiency(blocks, gpu);
  const double weighted = mpc_read_weight * static_cast<double>(in_bytes) +
                          mpc_write_weight * static_cast<double>(out_bytes);
  return Time::seconds(weighted / bw) +
         Time::us(mpc_sync_us_per_block * std::max(1, blocks));
}

Time KernelCostModel::mpc_decompress(std::uint64_t in_bytes, std::uint64_t out_bytes,
                                     int blocks, const GpuSpec& gpu) const {
  const double bw = mpc_decompress_base_gbs * 1e9 * gpu.compute_scale *
                    block_efficiency(blocks, gpu);
  // Decompression reads the compressed stream and writes the original.
  const double weighted = mpc_read_weight * static_cast<double>(out_bytes) +
                          mpc_write_weight * static_cast<double>(in_bytes);
  return Time::seconds(weighted / bw) +
         Time::us(mpc_sync_us_per_block * std::max(1, blocks));
}

Time KernelCostModel::zfp_compress(std::uint64_t original_bytes, int rate,
                                   const GpuSpec& gpu) const {
  const double gbps = zfp_compress_k_gbs / (zfp_c0 + static_cast<double>(rate)) *
                      gpu.compute_scale;
  const double bits = static_cast<double>(original_bytes) * 8.0;
  return zfp_kernel_floor + Time::seconds(bits / (gbps * 1e9));
}

Time KernelCostModel::zfp_decompress(std::uint64_t original_bytes, int rate,
                                     const GpuSpec& gpu) const {
  const double gbps = zfp_decompress_k_gbs / (zfp_c0 + static_cast<double>(rate)) *
                      gpu.compute_scale;
  const double bits = static_cast<double>(original_bytes) * 8.0;
  return zfp_kernel_floor + Time::seconds(bits / (gbps * 1e9));
}

Time KernelCostModel::reduce_kernel(std::uint64_t bytes, const GpuSpec& gpu) const {
  // acc read + in read + acc write = 3x the payload in memory traffic.
  const double bw = reduce_bandwidth_fraction * gpu.mem_bandwidth_gbs * 1e9;
  return Time::seconds(3.0 * static_cast<double>(bytes) / bw);
}

Time KernelCostModel::fused_reduce_overhead(std::uint64_t original_bytes,
                                            const GpuSpec& gpu) const {
  const double bw = reduce_bandwidth_fraction * gpu.mem_bandwidth_gbs * 1e9;
  return Time::seconds(fused_reduce_traffic_bytes_per_byte *
                       static_cast<double>(original_bytes) / bw);
}

}  // namespace gcmpi::comp
