// Virtual-time cost model for the GPU compression/decompression kernels.
//
// Calibration anchors (Table III of the paper, NVIDIA V100, all SMs):
//   MPC  compress  ~205 Gb/s, decompress ~185 Gb/s (input-referenced, on
//        real datasets whose compression ratio is ~1.4);
//   ZFP  rate 16: compress ~450 Gb/s, decompress ~735 Gb/s.
//
// Behavioural features the model must reproduce:
//   * MPC throughput is data-dependent: a large part of the kernel cost is
//     writing the output, so highly compressible data (the paper's OMB
//     dummy buffers, AWP wavefields with CR 3-31) compresses much faster
//     than CR~1.4 datasets. We split cost into a read term and a
//     write term weighted by the realized output size.
//   * MPC kernels busy-wait to synchronize across thread blocks, so
//     per-kernel overhead grows with the number of blocks used, and
//     throughput saturates near half the SMs (Sec. IV-B: "half of the
//     available SMs is roughly the same as using full GPU"). This is what
//     makes MPC-OPT's partitioned multi-stream launch profitable.
//   * ZFP cost per value is roughly proportional to the number of encoded
//     bit planes, i.e. the rate: lower rates are faster as well as smaller.
//   * Other GPUs rescale by GpuSpec::compute_scale.
#pragma once

#include <cstdint>

#include "gpu/cost_model.hpp"
#include "sim/time.hpp"

namespace gcmpi::comp {

using gcmpi::gpu::GpuSpec;
using sim::Time;

struct KernelCostModel {
  // MPC read/write cost split: time = (read_w*in + write_w*out) / base_bw.
  // With the Table-III CR of ~1.4 (out/in ~ 0.71) this reproduces 205 Gb/s.
  double mpc_read_weight = 0.5;
  double mpc_write_weight = 0.7;
  double mpc_compress_base_gbs = 25.6;    // GB/s input-referenced at CR 1.4
  double mpc_decompress_base_gbs = 23.1;  // ~185 Gb/s
  double mpc_sync_us_per_block = 0.35;    // busy-wait inter-block sync
  double mpc_block_half_saturation = 8.0; // blocks at which eff = 50%

  // ZFP: time = bits / throughput(rate); throughput = K / (c0 + rate) Gb/s.
  // c0 = 0: the embedded coder touches exactly `rate` bit planes per value,
  // so kernel time is proportional to the rate — rate 4 runs ~4x faster
  // than rate 16, which is what makes ZFP-OPT(4) profitable even against
  // NVLink for large messages (Fig. 9c).
  double zfp_c0 = 0.0;
  double zfp_compress_k_gbs = 7200.0;    // => 450 Gb/s at rate 16 (Table III)
  double zfp_decompress_k_gbs = 11760.0; // => 735 Gb/s at rate 16
  Time zfp_kernel_floor = Time::us(8);   // scheduling floor per kernel

  // Elementwise reduce (acc = op(acc, in)): memory-bound — reads both
  // operands and writes the accumulator back, at a fraction of peak memory
  // bandwidth (strided collective shards do not stream perfectly).
  double reduce_bandwidth_fraction = 0.75;
  // Fusing the reduce into a decompression kernel only adds the extra
  // accumulator traffic (read + write), not a second kernel pass: the
  // decoded values are combined in registers before the store.
  double fused_reduce_traffic_bytes_per_byte = 2.0;

  /// MPC compression kernel over `in_bytes` producing `out_bytes`, run with
  /// `blocks` thread blocks on `gpu`.
  [[nodiscard]] Time mpc_compress(std::uint64_t in_bytes, std::uint64_t out_bytes,
                                  int blocks, const GpuSpec& gpu) const;

  /// MPC decompression kernel consuming `in_bytes` restoring `out_bytes`.
  [[nodiscard]] Time mpc_decompress(std::uint64_t in_bytes, std::uint64_t out_bytes,
                                    int blocks, const GpuSpec& gpu) const;

  /// ZFP fixed-rate kernels; `original_bytes` is the uncompressed size.
  [[nodiscard]] Time zfp_compress(std::uint64_t original_bytes, int rate,
                                  const GpuSpec& gpu) const;
  [[nodiscard]] Time zfp_decompress(std::uint64_t original_bytes, int rate,
                                    const GpuSpec& gpu) const;

  /// Standalone elementwise reduce kernel over `bytes` of payload data.
  [[nodiscard]] Time reduce_kernel(std::uint64_t bytes, const GpuSpec& gpu) const;

  /// Extra cost of fusing a reduce into a decompression kernel that
  /// restores `original_bytes` of payload.
  [[nodiscard]] Time fused_reduce_overhead(std::uint64_t original_bytes,
                                           const GpuSpec& gpu) const;

  /// Block-count efficiency: blocks/(blocks + half_sat), normalized so that
  /// using every SM of `gpu` gives 1.0.
  [[nodiscard]] double block_efficiency(int blocks, const GpuSpec& gpu) const;
};

}  // namespace gcmpi::comp
