#include "compress/mpc.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "compress/bit_transpose.hpp"

namespace gcmpi::comp {

namespace {

constexpr std::uint32_t kMagic = 0x4d504331u;  // "MPC1"

// Header layout (little-endian u32 words):
//   [0] magic  [1] n_values  [2] dimensionality  [3] chunk_values
//   [4] n_chunks  [5 .. 5+n_chunks) compressed words per chunk
constexpr std::size_t kFixedHeaderWords = 5;

[[nodiscard]] std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

/// Map a signed residual so that small magnitudes have small unsigned
/// values (zig-zag). This plays the role of MPC's residual conditioning:
/// it makes the high bit planes of near-predictable data all zero so the
/// transpose + zero-elimination stages can delete them.
[[nodiscard]] std::uint32_t zigzag(std::uint32_t r) {
  const std::int32_t s = static_cast<std::int32_t>(r);
  return (static_cast<std::uint32_t>(s) << 1) ^ static_cast<std::uint32_t>(s >> 31);
}

[[nodiscard]] std::uint32_t unzigzag(std::uint32_t z) {
  return (z >> 1) ^ (~(z & 1u) + 1u);
}

/// Compress one chunk of `n` values (n <= chunk capacity) into u32 words.
std::size_t compress_chunk(const std::uint32_t* bits, std::size_t n, int dim,
                           std::uint32_t* out) {
  const auto d = static_cast<std::size_t>(dim);
  std::size_t out_words = 0;
  std::uint32_t tile[32];
  for (std::size_t base = 0; base < n; base += 32) {
    // Stage 1+2: dimension-stride residual, zig-zag.
    if (base >= d && base + 32 <= n) {
      // Interior tile: the predictor never clamps and there is no tail
      // padding, so the loop has no data-dependent branches to block
      // vectorization.
      for (std::size_t j = 0; j < 32; ++j) {
        tile[j] = zigzag(bits[base + j] - bits[base + j - d]);
      }
    } else {
      for (std::size_t j = 0; j < 32; ++j) {
        const std::size_t i = base + j;
        if (i < n) {
          const std::uint32_t prev = i >= d ? bits[i - d] : 0u;
          tile[j] = zigzag(bits[i] - prev);
        } else {
          tile[j] = 0;  // tail padding, elided by zero elimination
        }
      }
    }
    // All-zero tile (constant or slowly-varying data hits this constantly):
    // the transpose of zero is zero, so the tile is just an empty mask.
    std::uint32_t any = 0;
    for (std::size_t j = 0; j < 32; ++j) any |= tile[j];
    if (any == 0) {
      out[out_words++] = 0;
      continue;
    }
    // Stage 3: 32x32 bit transpose (log-depth block swap, in place).
    bit_transpose32(tile);
    // Stage 4: zero elimination behind a presence mask. Both loops are
    // branchless: the mask accumulates comparison results, and the scatter
    // always stores but only advances past kept words (the dead store is
    // overwritten by the next kept word or ignored by the word count).
    std::uint32_t mask = 0;
    for (int b = 0; b < 32; ++b) {
      mask |= static_cast<std::uint32_t>(tile[b] != 0) << b;
    }
    out[out_words++] = mask;
    for (int b = 0; b < 32; ++b) {
      out[out_words] = tile[b];
      out_words += tile[b] != 0;
    }
  }
  return out_words;
}

void decompress_chunk(const std::uint32_t* in, std::size_t in_words, std::size_t n,
                      int dim, std::uint32_t* bits) {
  const auto d = static_cast<std::size_t>(dim);
  std::size_t pos = 0;
  std::uint32_t tile[32];
  for (std::size_t base = 0; base < n; base += 32) {
    if (pos >= in_words) throw std::runtime_error("MPC: truncated chunk");
    const std::uint32_t mask = in[pos++];
    if (mask == 0) {
      // Empty tile: every residual is zero, so each value is its predictor.
      for (std::size_t j = 0; j < 32; ++j) {
        const std::size_t i = base + j;
        if (i >= n) break;
        bits[i] = i >= d ? bits[i - d] : 0u;
      }
      continue;
    }
    for (int b = 0; b < 32; ++b) {
      tile[b] = (mask >> b) & 1u ? in[pos++] : 0u;
    }
    bit_transpose32(tile);  // involution: same transpose inverts
    if (base >= d && base + 32 <= n) {
      for (std::size_t j = 0; j < 32; ++j) {
        const std::size_t i = base + j;
        bits[i] = unzigzag(tile[j]) + bits[i - d];
      }
    } else {
      for (std::size_t j = 0; j < 32; ++j) {
        const std::size_t i = base + j;
        if (i >= n) break;
        const std::uint32_t prev = i >= d ? bits[i - d] : 0u;
        bits[i] = unzigzag(tile[j]) + prev;
      }
    }
  }
  if (pos != in_words) throw std::runtime_error("MPC: trailing chunk bytes");
}

}  // namespace

MpcCodec::MpcCodec(int dimensionality, std::size_t chunk_values)
    : dim_(dimensionality), chunk_(chunk_values) {
  if (dim_ < 1 || dim_ > 32) throw std::invalid_argument("MpcCodec: dimensionality must be 1..32");
  if (chunk_ == 0 || chunk_ % 32 != 0) {
    throw std::invalid_argument("MpcCodec: chunk_values must be a positive multiple of 32");
  }
}

std::size_t MpcCodec::max_compressed_bytes(std::size_t n_values) const {
  const std::size_t chunks = n_values == 0 ? 0 : chunk_count(n_values);
  // Each 32-value tile costs at most 1 mask word + 32 payload words, and a
  // partial tail tile in every chunk still pays the full 33 words.
  const std::size_t tiles = (n_values + 31) / 32 + chunks;
  return (kFixedHeaderWords + chunks + 33 * tiles) * 4;
}

std::size_t MpcCodec::compress(std::span<const float> in, std::span<std::uint8_t> out) const {
  const std::size_t n = in.size();
  if (out.size() < max_compressed_bytes(n)) {
    throw std::invalid_argument("MpcCodec::compress: output buffer too small");
  }
  const std::size_t chunks = n == 0 ? 0 : chunk_count(n);
  std::uint8_t* base = out.data();
  store_u32(base + 0, kMagic);
  store_u32(base + 4, static_cast<std::uint32_t>(n));
  store_u32(base + 8, static_cast<std::uint32_t>(dim_));
  store_u32(base + 12, static_cast<std::uint32_t>(chunk_));
  store_u32(base + 16, static_cast<std::uint32_t>(chunks));

  std::uint8_t* size_table = base + kFixedHeaderWords * 4;
  std::uint8_t* payload = size_table + chunks * 4;

  std::vector<std::uint32_t> in_bits(chunk_);
  std::vector<std::uint32_t> scratch(chunk_ + chunk_ / 32 + 1);
  std::size_t payload_words = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_;
    const std::size_t count = std::min(chunk_, n - begin);
    std::memcpy(in_bits.data(), in.data() + begin, count * 4);
    const std::size_t words = compress_chunk(in_bits.data(), count, dim_, scratch.data());
    store_u32(size_table + c * 4, static_cast<std::uint32_t>(words));
    std::memcpy(payload + payload_words * 4, scratch.data(), words * 4);
    payload_words += words;
  }
  return (kFixedHeaderWords + chunks + payload_words) * 4;
}

std::size_t MpcCodec::encoded_values(std::span<const std::uint8_t> in) {
  if (in.size() < kFixedHeaderWords * 4 || load_u32(in.data()) != kMagic) {
    throw std::invalid_argument("MpcCodec: bad header");
  }
  return load_u32(in.data() + 4);
}

std::size_t MpcCodec::decompress(std::span<const std::uint8_t> in, std::span<float> out) const {
  if (in.size() < kFixedHeaderWords * 4) throw std::invalid_argument("MpcCodec: truncated input");
  const std::uint8_t* base = in.data();
  if (load_u32(base) != kMagic) throw std::invalid_argument("MpcCodec: bad magic");
  const std::size_t n = load_u32(base + 4);
  const int dim = static_cast<int>(load_u32(base + 8));
  const std::size_t chunk = load_u32(base + 12);
  const std::size_t chunks = load_u32(base + 16);
  if (dim < 1 || dim > 32 || chunk == 0 || chunk % 32 != 0) {
    throw std::invalid_argument("MpcCodec: corrupt header");
  }
  if (n != 0 && chunks != (n + chunk - 1) / chunk) {
    throw std::invalid_argument("MpcCodec: inconsistent chunk count");
  }
  if (out.size() < n) throw std::invalid_argument("MpcCodec::decompress: output too small");
  if (in.size() < (kFixedHeaderWords + chunks) * 4) {
    throw std::invalid_argument("MpcCodec: truncated size table");
  }

  const std::uint8_t* size_table = base + kFixedHeaderWords * 4;
  const std::uint8_t* payload = size_table + chunks * 4;
  const std::size_t payload_offset = (kFixedHeaderWords + chunks) * 4;

  std::vector<std::uint32_t> scratch(chunk + chunk / 32 + 1);
  std::vector<std::uint32_t> out_bits(chunk);
  std::size_t offset_words = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t words = load_u32(size_table + c * 4);
    if (words > scratch.size()) throw std::runtime_error("MpcCodec: corrupt chunk size");
    const std::size_t begin = c * chunk;
    const std::size_t count = std::min(chunk, n - begin);
    if (payload_offset + (offset_words + words) * 4 > in.size()) {
      throw std::runtime_error("MpcCodec: truncated payload");
    }
    std::memcpy(scratch.data(), payload + offset_words * 4, words * 4);
    decompress_chunk(scratch.data(), words, count, dim, out_bits.data());
    std::memcpy(out.data() + begin, out_bits.data(), count * 4);
    offset_words += words;
  }
  return n;
}

int MpcCodec::tune_dimensionality(std::span<const float> data, std::size_t sample_values) {
  const std::size_t n = std::min(sample_values, data.size());
  if (n < 64) return 1;
  const std::span<const float> sample = data.subspan(0, n);
  int best_dim = 1;
  std::size_t best_size = static_cast<std::size_t>(-1);
  // The size bound is dimensionality-independent, so one allocation serves
  // all eight candidate codecs.
  std::vector<std::uint8_t> buf(MpcCodec(1).max_compressed_bytes(n));
  for (int d = 1; d <= 8; ++d) {
    MpcCodec codec(d);
    const std::size_t size = codec.compress(sample, buf);
    if (size < best_size) {
      best_size = size;
      best_dim = d;
    }
  }
  return best_dim;
}

// ---------------------------------------------------------------------------
// Double-precision variant: same pipeline at 64-bit width.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kMagic64 = 0x4d504338u;  // "MPC8"

[[nodiscard]] std::uint64_t zigzag64(std::uint64_t r) {
  const std::int64_t s = static_cast<std::int64_t>(r);
  return (static_cast<std::uint64_t>(s) << 1) ^ static_cast<std::uint64_t>(s >> 63);
}

[[nodiscard]] std::uint64_t unzigzag64(std::uint64_t z) {
  return (z >> 1) ^ (~(z & 1u) + 1u);
}

std::size_t compress_chunk64(const std::uint64_t* bits, std::size_t n, int dim,
                             std::uint64_t* out) {
  const auto d = static_cast<std::size_t>(dim);
  std::size_t out_words = 0;
  std::uint64_t tile[64];
  for (std::size_t base = 0; base < n; base += 64) {
    if (base >= d && base + 64 <= n) {
      for (std::size_t j = 0; j < 64; ++j) {
        tile[j] = zigzag64(bits[base + j] - bits[base + j - d]);
      }
    } else {
      for (std::size_t j = 0; j < 64; ++j) {
        const std::size_t i = base + j;
        if (i < n) {
          const std::uint64_t prev = i >= d ? bits[i - d] : 0u;
          tile[j] = zigzag64(bits[i] - prev);
        } else {
          tile[j] = 0;
        }
      }
    }
    std::uint64_t any = 0;
    for (std::size_t j = 0; j < 64; ++j) any |= tile[j];
    if (any == 0) {
      out[out_words++] = 0;  // empty mask; zero tile transposes to itself
      continue;
    }
    bit_transpose64(tile);
    std::uint64_t mask = 0;
    for (int b = 0; b < 64; ++b) {
      mask |= static_cast<std::uint64_t>(tile[b] != 0) << b;
    }
    out[out_words++] = mask;
    for (int b = 0; b < 64; ++b) {
      out[out_words] = tile[b];
      out_words += tile[b] != 0;
    }
  }
  return out_words;
}

void decompress_chunk64(const std::uint64_t* in, std::size_t in_words, std::size_t n,
                        int dim, std::uint64_t* bits) {
  const auto d = static_cast<std::size_t>(dim);
  std::size_t pos = 0;
  std::uint64_t tile[64];
  for (std::size_t base = 0; base < n; base += 64) {
    if (pos >= in_words) throw std::runtime_error("MPC64: truncated chunk");
    const std::uint64_t mask = in[pos++];
    if (mask == 0) {
      for (std::size_t j = 0; j < 64; ++j) {
        const std::size_t i = base + j;
        if (i >= n) break;
        bits[i] = i >= d ? bits[i - d] : 0u;
      }
      continue;
    }
    for (int b = 0; b < 64; ++b) {
      tile[b] = (mask >> b) & 1u ? in[pos++] : 0u;
    }
    bit_transpose64(tile);  // involution
    if (base >= d && base + 64 <= n) {
      for (std::size_t j = 0; j < 64; ++j) {
        const std::size_t i = base + j;
        bits[i] = unzigzag64(tile[j]) + bits[i - d];
      }
    } else {
      for (std::size_t j = 0; j < 64; ++j) {
        const std::size_t i = base + j;
        if (i >= n) break;
        const std::uint64_t prev = i >= d ? bits[i - d] : 0u;
        bits[i] = unzigzag64(tile[j]) + prev;
      }
    }
  }
  if (pos != in_words) throw std::runtime_error("MPC64: trailing chunk bytes");
}

}  // namespace

MpcCodec64::MpcCodec64(int dimensionality, std::size_t chunk_values)
    : dim_(dimensionality), chunk_(chunk_values) {
  if (dim_ < 1 || dim_ > 64) throw std::invalid_argument("MpcCodec64: dimensionality must be 1..64");
  if (chunk_ == 0 || chunk_ % 64 != 0) {
    throw std::invalid_argument("MpcCodec64: chunk_values must be a positive multiple of 64");
  }
}

std::size_t MpcCodec64::max_compressed_bytes(std::size_t n_values) const {
  const std::size_t chunks = n_values == 0 ? 0 : chunk_count(n_values);
  const std::size_t tiles = (n_values + 63) / 64 + chunks;
  return (kFixedHeaderWords + chunks) * 4 + 65 * tiles * 8;
}

std::size_t MpcCodec64::compress(std::span<const double> in, std::span<std::uint8_t> out) const {
  const std::size_t n = in.size();
  if (out.size() < max_compressed_bytes(n)) {
    throw std::invalid_argument("MpcCodec64::compress: output buffer too small");
  }
  const std::size_t chunks = n == 0 ? 0 : chunk_count(n);
  std::uint8_t* base = out.data();
  store_u32(base + 0, kMagic64);
  store_u32(base + 4, static_cast<std::uint32_t>(n));
  store_u32(base + 8, static_cast<std::uint32_t>(dim_));
  store_u32(base + 12, static_cast<std::uint32_t>(chunk_));
  store_u32(base + 16, static_cast<std::uint32_t>(chunks));

  std::uint8_t* size_table = base + kFixedHeaderWords * 4;
  std::uint8_t* payload = size_table + chunks * 4;

  std::vector<std::uint64_t> in_bits(chunk_);
  std::vector<std::uint64_t> scratch(chunk_ + chunk_ / 64 + 1);
  std::size_t payload_words = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_;
    const std::size_t count = std::min(chunk_, n - begin);
    std::memcpy(in_bits.data(), in.data() + begin, count * 8);
    const std::size_t words = compress_chunk64(in_bits.data(), count, dim_, scratch.data());
    store_u32(size_table + c * 4, static_cast<std::uint32_t>(words));
    std::memcpy(payload + payload_words * 8, scratch.data(), words * 8);
    payload_words += words;
  }
  return (kFixedHeaderWords + chunks) * 4 + payload_words * 8;
}

std::size_t MpcCodec64::decompress(std::span<const std::uint8_t> in,
                                   std::span<double> out) const {
  if (in.size() < kFixedHeaderWords * 4) throw std::invalid_argument("MpcCodec64: truncated input");
  const std::uint8_t* base = in.data();
  if (load_u32(base) != kMagic64) throw std::invalid_argument("MpcCodec64: bad magic");
  const std::size_t n = load_u32(base + 4);
  const int dim = static_cast<int>(load_u32(base + 8));
  const std::size_t chunk = load_u32(base + 12);
  const std::size_t chunks = load_u32(base + 16);
  if (dim < 1 || dim > 64 || chunk == 0 || chunk % 64 != 0) {
    throw std::invalid_argument("MpcCodec64: corrupt header");
  }
  if (n != 0 && chunks != (n + chunk - 1) / chunk) {
    throw std::invalid_argument("MpcCodec64: inconsistent chunk count");
  }
  if (out.size() < n) throw std::invalid_argument("MpcCodec64::decompress: output too small");
  if (in.size() < (kFixedHeaderWords + chunks) * 4) {
    throw std::invalid_argument("MpcCodec64: truncated size table");
  }

  const std::uint8_t* size_table = base + kFixedHeaderWords * 4;
  const std::uint8_t* payload = size_table + chunks * 4;
  const std::size_t payload_offset = (kFixedHeaderWords + chunks) * 4;

  std::vector<std::uint64_t> scratch(chunk + chunk / 64 + 1);
  std::vector<std::uint64_t> out_bits(chunk);
  std::size_t offset_words = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t words = load_u32(size_table + c * 4);
    if (words > scratch.size()) throw std::runtime_error("MpcCodec64: corrupt chunk size");
    const std::size_t begin = c * chunk;
    const std::size_t count = std::min(chunk, n - begin);
    if (payload_offset + (offset_words + words) * 8 > in.size()) {
      throw std::runtime_error("MpcCodec64: truncated payload");
    }
    std::memcpy(scratch.data(), payload + offset_words * 8, words * 8);
    decompress_chunk64(scratch.data(), words, count, dim, out_bits.data());
    std::memcpy(out.data() + begin, out_bits.data(), count * 8);
    offset_words += words;
  }
  return n;
}

}  // namespace gcmpi::comp
