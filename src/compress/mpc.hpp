// From-scratch reimplementation of MPC, the Massively Parallel Compression
// algorithm for single-precision scientific data (Yang, Mukka, Hesaaraki,
// Burtscher, IEEE Cluster 2015).
//
// Structure mirrors the GPU algorithm:
//   * the array is cut into fixed-size chunks, one per "thread block";
//   * within a chunk, each value is predicted by the value `dim` positions
//     earlier (the dimensionality-based last-value predictor that makes MPC
//     effective on interleaved multi-field data);
//   * the 32-bit residuals are mapped to put the information into the low
//     bits, bit-transposed in 32x32 tiles so that equal high bits across
//     neighbouring values form all-zero words, and zero words are elided
//     behind a 32-bit presence mask (zero elimination);
//   * chunks compress to different sizes, so a per-chunk size table is
//     emitted — the serial analog of the `d_off` offset array the CUDA
//     kernels synchronize through (Sec. III of the paper).
//
// The codec is bit-exact lossless for arbitrary payloads (NaNs, infinities,
// denormals included) because all arithmetic is modular on the raw bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gcmpi::comp {

class MpcCodec {
 public:
  /// `dimensionality`: stride of the value predictor (1..32; the MPC paper
  /// tunes it per dataset). `chunk_values`: values per thread-block chunk;
  /// must be a positive multiple of 32.
  explicit MpcCodec(int dimensionality = 1, std::size_t chunk_values = 1024);

  [[nodiscard]] int dimensionality() const { return dim_; }
  [[nodiscard]] std::size_t chunk_values() const { return chunk_; }

  /// Number of thread-block chunks (== GPU thread blocks == d_off entries).
  [[nodiscard]] std::size_t chunk_count(std::size_t n_values) const {
    return (n_values + chunk_ - 1) / chunk_;
  }

  /// Worst-case compressed size (incompressible data expands by ~3.5%).
  [[nodiscard]] std::size_t max_compressed_bytes(std::size_t n_values) const;

  /// Compress `in` into `out`; returns bytes written.
  std::size_t compress(std::span<const float> in, std::span<std::uint8_t> out) const;

  /// Decompress; returns number of values restored (must equal out.size()
  /// capacity check is enforced).
  std::size_t decompress(std::span<const std::uint8_t> in, std::span<float> out) const;

  /// Number of float values encoded in a compressed buffer (header peek).
  [[nodiscard]] static std::size_t encoded_values(std::span<const std::uint8_t> in);

  /// Pick the dimensionality in [1, 8] giving the best ratio on a sample
  /// prefix of the data — the "fine-tuned dimensionality" of Table III.
  [[nodiscard]] static int tune_dimensionality(std::span<const float> data,
                                               std::size_t sample_values = 1u << 16);

 private:
  int dim_;
  std::size_t chunk_;
};

/// Double-precision MPC (the published algorithm supports both widths):
/// identical pipeline with 64-bit residuals, 64x64 bit-transpose tiles,
/// and 64-bit zero-elimination masks.
class MpcCodec64 {
 public:
  explicit MpcCodec64(int dimensionality = 1, std::size_t chunk_values = 1024);

  [[nodiscard]] int dimensionality() const { return dim_; }
  [[nodiscard]] std::size_t chunk_values() const { return chunk_; }
  [[nodiscard]] std::size_t chunk_count(std::size_t n_values) const {
    return (n_values + chunk_ - 1) / chunk_;
  }
  [[nodiscard]] std::size_t max_compressed_bytes(std::size_t n_values) const;

  std::size_t compress(std::span<const double> in, std::span<std::uint8_t> out) const;
  std::size_t decompress(std::span<const std::uint8_t> in, std::span<double> out) const;

 private:
  int dim_;
  std::size_t chunk_;
};

}  // namespace gcmpi::comp
