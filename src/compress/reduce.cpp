#include "compress/reduce.hpp"

#include <algorithm>

namespace gcmpi::comp {

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Max: return "max";
    case ReduceOp::Min: return "min";
  }
  return "?";
}

namespace {

template <typename T>
void reduce_impl(T* acc, const T* in, std::size_t n, ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

}  // namespace

void reduce_inplace(float* acc, const float* in, std::size_t n, ReduceOp op) {
  reduce_impl(acc, in, n, op);
}

void reduce_inplace(double* acc, const double* in, std::size_t n, ReduceOp op) {
  reduce_impl(acc, in, n, op);
}

}  // namespace gcmpi::comp
