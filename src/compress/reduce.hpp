// Elementwise reduction primitives shared by the collective engine.
//
// The canonical convention, relied on by every determinism test: the
// accumulator is always the FIRST operand, so `reduce_inplace(acc, in)`
// computes acc[i] = op(acc[i], in[i]). With IEEE floats this makes the
// result depend only on the *fold order*, which each collective algorithm
// fixes canonically (see core/collective.hpp), never on delivery timing.
//
// The NaN convention follows std::max/std::min: if acc[i] is NaN the
// accumulator is kept, if in[i] is NaN the comparison is false and acc[i]
// is kept too. Sum propagates NaN as IEEE addition does. The host oracle
// in core::allreduce_oracle uses these exact primitives, so fused GPU
// reductions must match it bit-for-bit on lossless codecs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gcmpi::comp {

enum class ReduceOp : std::uint8_t { Sum, Max, Min };

[[nodiscard]] const char* reduce_op_name(ReduceOp op);

/// acc[i] = op(acc[i], in[i]) for i in [0, n).
void reduce_inplace(float* acc, const float* in, std::size_t n, ReduceOp op);
void reduce_inplace(double* acc, const double* in, std::size_t n, ReduceOp op);

}  // namespace gcmpi::comp
