#include "compress/sz.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "compress/bitstream.hpp"
#include "compress/huffman.hpp"

namespace gcmpi::comp {

namespace {

constexpr std::uint32_t kMagic = 0x535a4331u;  // "SZC1"

/// Best-of-three curve-fitting prediction from reconstructed history.
[[nodiscard]] double predict(const float* r, std::size_t i) {
  if (i == 0) return 0.0;
  const double p1 = r[i - 1];
  if (i == 1) return p1;
  const double p2 = 2.0 * r[i - 1] - r[i - 2];
  if (i == 2) return p2;
  const double p3 = 3.0 * r[i - 1] - 3.0 * r[i - 2] + r[i - 3];
  // SZ picks the model that fit the previous point best; evaluate each
  // model's error at i-1 using the points before it.
  const double prev = r[i - 1];
  const double e1 = std::fabs(prev - r[i - 2]);
  const double e2 = i >= 3 ? std::fabs(prev - (2.0 * r[i - 2] - r[i - 3])) : e1;
  const double e3 = i >= 4 ? std::fabs(prev - (3.0 * r[i - 2] - 3.0 * r[i - 3] + r[i - 4])) : e2;
  if (e1 <= e2 && e1 <= e3) return p1;
  if (e2 <= e3) return p2;
  return p3;
}

}  // namespace

SzCodec::SzCodec(double error_bound, int quant_bits)
    : error_bound_(error_bound), quant_bits_(quant_bits) {
  if (!(error_bound > 0.0)) throw std::invalid_argument("SzCodec: error_bound must be > 0");
  if (quant_bits < 4 || quant_bits > 24) {
    throw std::invalid_argument("SzCodec: quant_bits must be 4..24");
  }
}

std::size_t SzCodec::max_compressed_bytes(std::size_t n_values) const {
  // Worst case: every code distinct (Huffman table ~38 bits/entry) plus a
  // ~log2(n)-bit code and a 32-bit verbatim payload per value.
  return 96 + n_values * 14;
}

std::size_t SzCodec::compress(std::span<const float> in, std::span<std::uint8_t> out) const {
  const std::size_t n = in.size();
  if (out.size() < max_compressed_bytes(n)) {
    throw std::invalid_argument("SzCodec::compress: output too small");
  }
  const std::uint32_t bins = 1u << quant_bits_;
  const std::uint32_t mid = bins / 2;
  const std::uint32_t escape = bins;  // one symbol beyond the bin range
  const double inv_step = 1.0 / (2.0 * error_bound_);

  // Pass 1: quantize against the reconstructed stream.
  std::vector<float> recon(n);
  std::vector<std::uint32_t> codes(n);
  std::vector<float> verbatim;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = predict(recon.data(), i);
    const double diff = static_cast<double>(in[i]) - pred;
    const double scaled = diff * inv_step;
    bool predictable = std::isfinite(in[i]) && std::fabs(scaled) < mid - 1;
    if (predictable) {
      const auto q = static_cast<std::int32_t>(std::llround(scaled));
      // The decompressor stores float32, so the bound must hold for the
      // float-rounded reconstruction, not the double intermediate.
      const auto rec = static_cast<float>(pred + 2.0 * error_bound_ * q);
      if (std::fabs(static_cast<double>(rec) - in[i]) <= error_bound_) {
        codes[i] = static_cast<std::uint32_t>(q + static_cast<std::int32_t>(mid));
        recon[i] = rec;
        continue;
      }
    }
    codes[i] = escape;  // unpredictable: stored verbatim, error = 0
    verbatim.push_back(in[i]);
    recon[i] = in[i];
  }

  // Pass 2: entropy-code the quantization codes.
  BitWriter w;
  w.reserve_bits(max_compressed_bytes(n) * 8);
  w.put_bits(kMagic, 32);
  w.put_bits(n, 64);
  w.put_bits(static_cast<std::uint64_t>(quant_bits_), 8);
  double eb = error_bound_;
  std::uint64_t eb_bits = 0;
  std::memcpy(&eb_bits, &eb, 8);
  w.put_bits(eb_bits, 64);

  HuffmanEncoder huff(codes);
  huff.write_table(w);
  std::size_t verb_at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    huff.encode(w, codes[i]);
    if (codes[i] == escape) {
      std::uint32_t bitsv = 0;
      std::memcpy(&bitsv, &verbatim[verb_at++], 4);
      w.put_bits(bitsv, 32);
    }
  }
  const std::vector<std::uint8_t> bytes = w.take();
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return bytes.size();
}

std::size_t SzCodec::encoded_values(std::span<const std::uint8_t> in) {
  BitReader r(in);
  if (r.get_bits(32) != kMagic) throw std::invalid_argument("SzCodec: bad magic");
  return static_cast<std::size_t>(r.get_bits(64));
}

std::size_t SzCodec::decompress(std::span<const std::uint8_t> in, std::span<float> out) const {
  BitReader r(in);
  if (r.get_bits(32) != kMagic) throw std::invalid_argument("SzCodec: bad magic");
  const auto n = static_cast<std::size_t>(r.get_bits(64));
  const auto qb = static_cast<int>(r.get_bits(8));
  const std::uint64_t eb_bits = r.get_bits(64);
  double eb = 0;
  std::memcpy(&eb, &eb_bits, 8);
  if (qb != quant_bits_) throw std::invalid_argument("SzCodec: quant_bits mismatch");
  if (out.size() < n) throw std::invalid_argument("SzCodec::decompress: output too small");

  const std::uint32_t bins = 1u << qb;
  const std::uint32_t mid = bins / 2;
  const std::uint32_t escape = bins;

  HuffmanDecoder huff(r);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t code = huff.decode(r);
    if (code == escape) {
      const auto bitsv = static_cast<std::uint32_t>(r.get_bits(32));
      float v = 0;
      std::memcpy(&v, &bitsv, 4);
      out[i] = v;
    } else if (code <= 2 * mid) {
      const double pred = predict(out.data(), i);
      const auto q = static_cast<std::int32_t>(code) - static_cast<std::int32_t>(mid);
      out[i] = static_cast<float>(pred + 2.0 * eb * q);
    } else {
      throw std::runtime_error("SzCodec: corrupt quantization code");
    }
  }
  return n;
}

}  // namespace gcmpi::comp
