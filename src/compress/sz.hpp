// SZ-style error-bounded lossy compression for float32 streams (after
// Di & Cappello, "Fast Error-Bounded Lossy HPC Data Compression with SZ",
// IPDPS 2016, and the SZ 1.4 linear-scaling quantization design).
//
// Pipeline per value, against the *reconstructed* history (so the bound
// holds end to end):
//   1. predict with the best of three curve-fitting models — preceding
//      neighbor, linear extrapolation, quadratic extrapolation;
//   2. linear-scaling quantization of the prediction error into
//      2^quant_bits bins of width 2*error_bound;
//   3. in-range codes are Huffman-coded; out-of-range values are emitted
//      verbatim behind an escape code (the "unpredictable data" path).
//
// This is the error-bounded alternative to ZFP's fixed-rate mode: the
// ratio is data-dependent but every reconstructed value differs from the
// original by at most `error_bound`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gcmpi::comp {

class SzCodec {
 public:
  /// `error_bound`: maximum absolute reconstruction error (> 0).
  /// `quant_bits`: log2 of the quantization bins (4..24; SZ default 16).
  explicit SzCodec(double error_bound, int quant_bits = 16);

  [[nodiscard]] double error_bound() const { return error_bound_; }

  [[nodiscard]] std::size_t max_compressed_bytes(std::size_t n_values) const;

  /// Compress; returns bytes written into `out`.
  std::size_t compress(std::span<const float> in, std::span<std::uint8_t> out) const;

  /// Decompress; returns the number of values restored.
  std::size_t decompress(std::span<const std::uint8_t> in, std::span<float> out) const;

  /// Number of values held by a compressed buffer (header peek).
  [[nodiscard]] static std::size_t encoded_values(std::span<const std::uint8_t> in);

 private:
  double error_bound_;
  int quant_bits_;
};

}  // namespace gcmpi::comp
