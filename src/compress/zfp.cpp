#include "compress/zfp.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "compress/bitstream.hpp"

namespace gcmpi::comp {

namespace {

constexpr int kIntPrec = 32;      // bit planes per coefficient
constexpr int kEmaxBias = 150;    // covers float exponents incl. denormals
constexpr int kEmaxBits = 9;

// The lifting transforms rely on two's-complement wrap-around: truncated
// bit planes can push reconstructed coefficients past INT32 range, and the
// inverse transform must wrap exactly like the forward one so the lossless
// path stays bit-exact. Route +/-/<< through uint32 to keep that defined.
[[nodiscard]] std::int32_t wadd(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
[[nodiscard]] std::int32_t wsub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
[[nodiscard]] std::int32_t wshl1(std::int32_t a) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) << 1);
}

/// zfp forward lifting transform over 4 values with stride s.
void fwd_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x = wadd(x, w); x >>= 1; w = wsub(w, x);
  z = wadd(z, y); z >>= 1; y = wsub(y, z);
  x = wadd(x, z); x >>= 1; z = wsub(z, x);
  w = wadd(w, y); w >>= 1; y = wsub(y, w);
  w = wadd(w, y >> 1); y = wsub(y, w >> 1);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Exact inverse of fwd_lift.
void inv_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y = wadd(y, w >> 1); w = wsub(w, y >> 1);
  y = wadd(y, w); w = wshl1(w); w = wsub(w, y);
  z = wadd(z, x); x = wshl1(x); x = wsub(x, z);
  y = wadd(y, z); z = wshl1(z); z = wsub(z, y);
  w = wadd(w, x); x = wshl1(x); x = wsub(x, w);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Total-sequency coefficient order for a d-dimensional block: low-frequency
/// (small coordinate sum) coefficients first so truncation drops the least
/// important bits. Tie-break by linear index (deterministic; not
/// bit-identical to libzfp's table but serves the same purpose).
template <int Dims>
const std::array<std::uint8_t, std::size_t(1) << (2 * Dims)>& perm() {
  static const auto table = [] {
    constexpr std::size_t n = std::size_t(1) << (2 * Dims);
    std::array<std::uint8_t, n> t{};
    std::array<std::uint8_t, n> idx{};
    std::iota(idx.begin(), idx.end(), std::uint8_t{0});
    auto coord_sum = [](std::size_t i) {
      return (i & 3u) + ((i >> 2) & 3u) + ((i >> 4) & 3u);
    };
    std::stable_sort(idx.begin(), idx.end(), [&](std::uint8_t a, std::uint8_t b) {
      return coord_sum(a) < coord_sum(b);
    });
    t = idx;
    return t;
  }();
  return table;
}

[[nodiscard]] std::uint32_t int_to_negabinary(std::int32_t x) {
  const std::uint32_t mask = 0xAAAAAAAAu;
  return (static_cast<std::uint32_t>(x) + mask) ^ mask;
}

[[nodiscard]] std::int32_t negabinary_to_int(std::uint32_t x) {
  const std::uint32_t mask = 0xAAAAAAAAu;
  return static_cast<std::int32_t>((x ^ mask) - mask);
}

/// Embedded bit-plane encoder with group testing (zfp's encode_ints).
/// Writes at most `budget` bits; stops above plane `kmin` (fixed-precision
/// and fixed-accuracy modes truncate by plane instead of by budget).
///
/// The emitted bit sequence is identical to the scalar reference (one
/// group-test bit, then a unary run of zeros ending in the next value's
/// significance bit), but each unary run is emitted as one put_bits call
/// sized by countr_zero instead of a bit-at-a-time loop.
template <int BlockSize>
void encode_ints(BitWriter& w, const std::uint32_t* u, std::size_t budget, int kmin) {
  constexpr std::uint32_t bs = BlockSize;
  std::size_t bits = budget;
  std::uint32_t n = 0;  // values known to be significant so far
  for (int k = kIntPrec; bits > 0 && k-- > kmin;) {
    // Extract bit plane k across the block.
    std::uint64_t x = 0;
    for (std::uint32_t i = 0; i < bs; ++i) {
      x += static_cast<std::uint64_t>((u[i] >> k) & 1u) << i;
    }
    // Verbatim bits for the already-significant prefix.
    const std::uint32_t m = static_cast<std::uint32_t>(std::min<std::size_t>(n, bits));
    bits -= m;
    w.put_bits(x, static_cast<int>(m));
    x = (m < 64) ? (x >> m) : 0;
    // Group-tested unary expansion of the remainder of the plane.
    while (n < bs && bits) {
      --bits;  // group-test bit
      if (x == 0) {
        w.put_bit(0);
        break;  // rest of the plane is zero
      }
      w.put_bit(1);
      if (n == bs - 1) {
        // Last position: the group bit doubles as the significance bit.
        n = bs;
        break;
      }
      const std::size_t head = bs - 1 - n;  // unary positions before the cap
      const auto tz = static_cast<std::size_t>(std::countr_zero(x));
      if (tz < head && tz < bits) {
        // Full run: tz zeros then the terminating one, in one store.
        w.put_bits(std::uint64_t{1} << tz, static_cast<int>(tz + 1));
        bits -= tz + 1;
        x >>= tz + 1;
        n += static_cast<std::uint32_t>(tz + 1);
        continue;
      }
      // Clipped run: only zeros fit before the budget or the position cap.
      const std::size_t zeros = std::min(std::min(tz, head), bits);
      w.put_bits(0, static_cast<int>(zeros));
      bits -= zeros;
      n = bs;  // plane over either way: budget exhausted or position cap hit
      break;
    }
  }
}

/// Scatter plane k into the values. Small blocks take the branchless form
/// (the data-dependent jump loop mispredicts once or twice per plane, which
/// dominates the decode for 4- and 16-value blocks); 64-value blocks keep
/// the sparse set-bit walk, which wins while high planes are mostly zero.
template <int BlockSize>
inline void deposit_plane(std::uint32_t* u, std::uint64_t x, int k) {
  if (x == 0) return;  // empty planes dominate smooth data; skip the stores
  if constexpr (BlockSize <= 16) {
    for (int i = 0; i < BlockSize; ++i) {
      u[i] |= static_cast<std::uint32_t>((x >> i) & 1u) << k;
    }
  } else {
    while (x != 0) {
      const int i = std::countr_zero(x);
      u[i] |= 1u << k;
      x &= x - 1;
    }
  }
}

[[nodiscard]] inline std::uint64_t reverse_bits64(std::uint64_t x) {
  x = __builtin_bswap64(x);
  x = ((x & 0x0F0F0F0F0F0F0F0Full) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0Full);
  x = ((x & 0x3333333333333333ull) << 2) | ((x >> 2) & 0x3333333333333333ull);
  x = ((x & 0x5555555555555555ull) << 1) | ((x >> 1) & 0x5555555555555555ull);
  return x;
}

/// Compress the even-position bits of x into the low 32 bits.
[[nodiscard]] inline std::uint64_t even_bits64(std::uint64_t x) {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return x;
}

/// Compress bits at positions 0, 3, 6, ..., 60 into the low 21 bits
/// (the Morton 3D coordinate compaction).
[[nodiscard]] inline std::uint64_t stride3_bits64(std::uint64_t x) {
  x &= 0x1249249249249249ull;
  x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3ull;
  x = (x ^ (x >> 4)) & 0x100F00F00F00F00Full;
  x = (x ^ (x >> 8)) & 0x001F0000FF0000FFull;
  x = (x ^ (x >> 16)) & 0x001F00000000FFFFull;
  x = (x ^ (x >> 32)) & 0x00000000001FFFFFull;
  return x;
}

/// Compress bits at positions 0, 4, 8, ... into the low 16 bits.
[[nodiscard]] inline std::uint64_t stride4_bits64(std::uint64_t x) {
  x &= 0x1111111111111111ull;
  x = (x | (x >> 3)) & 0x0303030303030303ull;
  x = (x | (x >> 6)) & 0x000F000F000F000Full;
  x = (x | (x >> 12)) & 0x000000FF000000FFull;
  x = (x | (x >> 24)) & 0x000000000000FFFFull;
  return x;
}

/// decode_ints for budgets that fit one reader window (< 64 bits) — every
/// fixed-rate 1D block lands here (rate*4 - 10 header bits <= 54). The whole
/// payload is peeked once and the entire plane loop runs on registers; the
/// reader advances a single time at the end.
template <int BlockSize>
void decode_ints_small(BitReader& r, std::uint32_t* out, std::size_t budget, int kmin) {
  constexpr std::uint32_t bs = BlockSize;
  // Accumulate into a local block: with constant indices the compiler keeps
  // small blocks in registers (or vectors) instead of read-modify-writing
  // the caller's array once per plane.
  std::uint32_t u[BlockSize] = {};
  std::uint64_t win = r.peek_bits(static_cast<int>(budget));
  int t = 0;  // bits consumed from the window
  std::size_t bits = budget;
  std::uint32_t n = 0;
  int k = kIntPrec;
  // Deposit a batch of q extracted plane bits (stream order, descending k)
  // into value i: plane p of the run is bit plane k-1-p, so the bits land
  // reversed, as the contiguous range [k-q, k-1].
  auto deposit_column = [&u](int i, std::uint64_t e, int q, int kk) {
    u[i] |= static_cast<std::uint32_t>((reverse_bits64(e) >> (64 - q)) << (kk - q));
  };
  while (bits > 0 && k > kmin) {
    // Steady-state batching. A quiet plane (no new significance) with n
    // values already significant is n verbatim bits followed by a 0 group
    // bit, so a run of them is a periodic pattern of period n+1: locate the
    // first 1 group bit with countr_zero on the masked window and peel the
    // whole run with stride-(n+1) bit compressions instead of a plane loop.
    // n == 1 is the dominant regime for smooth data (DC significant, ACs
    // quiet); n == 0 covers the leading planes and near-constant blocks.
    if (n == 0) {
      const int q = std::min(std::min(static_cast<int>(std::countr_zero(win)), k - kmin),
                             static_cast<int>(bits));
      if (q > 0) {
        win >>= q;
        t += q;
        bits -= static_cast<std::size_t>(q);
        k -= q;
        if (bits == 0 || k == kmin) break;
      }
    } else if (n == 1) {
      const std::uint64_t g = win & 0xAAAAAAAAAAAAAAAAull;
      const int quiet = (g != 0) ? (std::countr_zero(g) >> 1) : 32;
      const int q = std::min(std::min(quiet, k - kmin), static_cast<int>(bits >> 1));
      if (q > 0) {
        deposit_column(0, even_bits64(win) & ((std::uint64_t{1} << q) - 1u), q, k);
        win >>= 2 * q;
        t += 2 * q;
        bits -= static_cast<std::size_t>(2 * q);
        k -= q;
        if (bits == 0 || k == kmin) break;
      }
    } else if (n == 2) {
      const std::uint64_t g = win & 0x4924924924924924ull;
      const int quiet = (g != 0) ? (std::countr_zero(g) / 3) : 21;
      const int q = std::min(std::min(quiet, k - kmin), static_cast<int>(bits / 3));
      if (q > 0) {
        const std::uint64_t qm = (std::uint64_t{1} << q) - 1u;
        deposit_column(0, stride3_bits64(win) & qm, q, k);
        deposit_column(1, stride3_bits64(win >> 1) & qm, q, k);
        win >>= 3 * q;
        t += 3 * q;
        bits -= static_cast<std::size_t>(3 * q);
        k -= q;
        if (bits == 0 || k == kmin) break;
      }
    } else if (n == 3) {
      const std::uint64_t g = win & 0x8888888888888888ull;
      const int quiet = (g != 0) ? (std::countr_zero(g) >> 2) : 16;
      const int q = std::min(std::min(quiet, k - kmin), static_cast<int>(bits >> 2));
      if (q > 0) {
        const std::uint64_t qm = (std::uint64_t{1} << q) - 1u;
        deposit_column(0, stride4_bits64(win) & qm, q, k);
        deposit_column(1, stride4_bits64(win >> 1) & qm, q, k);
        deposit_column(2, stride4_bits64(win >> 2) & qm, q, k);
        win >>= 4 * q;
        t += 4 * q;
        bits -= static_cast<std::size_t>(4 * q);
        k -= q;
        if (bits == 0 || k == kmin) break;
      }
    }
    --k;
    const std::uint32_t m = static_cast<std::uint32_t>(std::min<std::size_t>(n, bits));
    bits -= m;
    std::uint64_t x = win & ((std::uint64_t{1} << m) - 1u);
    win >>= m;
    t += static_cast<int>(m);
    while (n < bs && bits) {
      --bits;  // group-test bit
      ++t;
      const std::uint64_t g = win & 1u;
      win >>= 1;
      if (g == 0) break;
      const auto limit = static_cast<std::size_t>(std::min<std::size_t>(bs - 1 - n, bits));
      const auto z =
          static_cast<std::size_t>(std::countr_zero(win | (std::uint64_t{1} << limit)));
      if (z < limit) {
        win >>= z + 1;
        t += static_cast<int>(z + 1);
        bits -= z + 1;
        x += std::uint64_t{1} << (n + z);
        n += static_cast<std::uint32_t>(z + 1);
        continue;
      }
      // Clipped run: the significance bit at position n+z is implied by the
      // budget or position cap, exactly as the scalar loop's exit path.
      win >>= z;
      t += static_cast<int>(z);
      bits -= z;
      x += std::uint64_t{1} << (n + z);
      n += static_cast<std::uint32_t>(z + 1);
      break;
    }
    deposit_plane<BlockSize>(u, x, k);
    if (n == bs) break;  // all significant: the rest is pure verbatim
  }
  if (n == bs) {
    if constexpr (bs == 4) {
      // All values significant: the remaining full planes are a 4 x q bit
      // matrix, transposed with four stride-4 compressions at once.
      const int q = std::min(k - kmin, static_cast<int>(bits >> 2));
      if (q > 0) {
        const std::uint64_t qm = (std::uint64_t{1} << q) - 1u;
        deposit_column(0, stride4_bits64(win) & qm, q, k);
        deposit_column(1, stride4_bits64(win >> 1) & qm, q, k);
        deposit_column(2, stride4_bits64(win >> 2) & qm, q, k);
        deposit_column(3, stride4_bits64(win >> 3) & qm, q, k);
        win >>= 4 * q;
        t += 4 * q;
        bits -= static_cast<std::size_t>(4 * q);
        k -= q;
      }
    } else {
      while (k > kmin && bits >= bs) {
        // bs == 64 cannot reach here (bits <= budget < 64), so the shifts
        // are guarded for compile-time well-formedness only.
        --k;
        deposit_plane<BlockSize>(u, (bs < 64) ? (win & ((std::uint64_t{1} << bs) - 1u)) : win, k);
        win = (bs < 64) ? (win >> bs) : 0;
        t += static_cast<int>(bs);
        bits -= bs;
      }
    }
    if (k > kmin && bits > 0) {
      // Budget ends inside the final plane: m = min(n, bits) = bits < bs.
      deposit_plane<BlockSize>(u, win & ((std::uint64_t{1} << bits) - 1u), k - 1);
      t += static_cast<int>(bits);
      bits = 0;
    }
  }
  r.skip(t);
  std::memcpy(out, u, sizeof(u));
}

/// Mirror of encode_ints: consumes exactly the bit positions the scalar
/// reference reads, batching each unary run with peek_bits + countr_zero.
template <int BlockSize>
void decode_ints(BitReader& r, std::uint32_t* out, std::size_t budget, int kmin) {
  constexpr std::uint32_t bs = BlockSize;
  if (budget < 64) {
    decode_ints_small<BlockSize>(r, out, budget, kmin);
    return;
  }
  std::uint32_t u[BlockSize] = {};
  std::size_t bits = budget;
  std::uint32_t n = 0;
  auto deposit = [&u](std::uint64_t x, int k) { deposit_plane<BlockSize>(u, x, k); };
  int k = kIntPrec;
  if constexpr (bs <= 16) {
    // A whole plane (verbatim prefix + group bits + unary runs) consumes at
    // most 2*bs + 1 <= 33 bits, so one peek covers it and the plane parses
    // entirely out of a register with a single skip at the end.
    constexpr int kPlanePeek = 2 * static_cast<int>(bs) + 1;
    while (bits > 0 && k-- > kmin) {
      std::uint64_t win = r.peek_bits(kPlanePeek);
      int t = 0;  // bits consumed from the window
      const std::uint32_t m = static_cast<std::uint32_t>(std::min<std::size_t>(n, bits));
      bits -= m;
      std::uint64_t x = win & ((std::uint64_t{1} << m) - 1u);
      win >>= m;
      t += static_cast<int>(m);
      while (n < bs && bits) {
        --bits;  // group-test bit
        ++t;
        const std::uint64_t g = win & 1u;
        win >>= 1;
        if (g == 0) break;
        const auto limit =
            static_cast<std::size_t>(std::min<std::size_t>(bs - 1 - n, bits));
        const auto z = static_cast<std::size_t>(
            std::countr_zero(win | (std::uint64_t{1} << limit)));
        if (z < limit) {
          win >>= z + 1;
          t += static_cast<int>(z + 1);
          bits -= z + 1;
          x += std::uint64_t{1} << (n + z);
          n += static_cast<std::uint32_t>(z + 1);
          continue;
        }
        // Clipped run: the significance bit at position n+z is implied by
        // the budget or position cap, exactly as the scalar loop's exit path.
        win >>= z;
        t += static_cast<int>(z);
        bits -= z;
        x += std::uint64_t{1} << (n + z);
        n += static_cast<std::uint32_t>(z + 1);
        break;
      }
      r.skip(t);
      deposit(x, k);
      if (n == bs) break;  // all significant: the rest is pure verbatim
    }
  } else {
    while (bits > 0 && k-- > kmin) {
      const std::uint32_t m = static_cast<std::uint32_t>(std::min<std::size_t>(n, bits));
      bits -= m;
      std::uint64_t x = r.get_bits(static_cast<int>(m));
      while (n < bs && bits) {
        --bits;  // group-test bit
        if (!r.get_bit()) break;
        // Unary run: zeros until the next significance bit, capped by the
        // remaining budget and by position bs-1 (whose bit is implied).
        const auto limit =
            static_cast<std::size_t>(std::min<std::size_t>(bs - 1 - n, bits));  // <= 63
        const std::uint64_t window = r.peek_bits(static_cast<int>(limit));
        const auto z = static_cast<std::size_t>(
            std::countr_zero(window | (std::uint64_t{1} << limit)));
        if (z < limit) {
          r.skip(static_cast<int>(z + 1));
          bits -= z + 1;
          x += std::uint64_t{1} << (n + z);
          n += static_cast<std::uint32_t>(z + 1);
          continue;
        }
        // Clipped run: the significance bit at position n+z is implied by the
        // budget or position cap, exactly as the scalar loop's exit path.
        r.skip(static_cast<int>(z));
        bits -= z;
        x += std::uint64_t{1} << (n + z);
        n += static_cast<std::uint32_t>(z + 1);
        break;
      }
      deposit(x, k);
      if (n == bs) break;  // all significant: the rest is pure verbatim
    }
  }
  // Verbatim tail: every remaining plane is exactly bs bits with no group
  // tests, so several planes come out of the reader per call (64/bs at a
  // time) instead of one.
  if (n == bs) {
    constexpr int kPlanesPerRead = 64 / static_cast<int>(bs);
    while (k > kmin && bits >= bs) {
      const int planes = std::min(
          {k - kmin, kPlanesPerRead, static_cast<int>(bits / bs)});
      std::uint64_t v = r.get_bits(planes * static_cast<int>(bs));
      bits -= static_cast<std::size_t>(planes) * bs;
      for (int p = 0; p < planes; ++p) {
        --k;
        deposit((bs < 64) ? (v & ((std::uint64_t{1} << bs) - 1)) : v, k);
        v = (bs < 64) ? (v >> bs) : 0;
      }
    }
    if (k > kmin && bits > 0) {
      // Budget ends inside the final plane: m = min(n, bits) = bits < bs.
      deposit(r.get_bits(static_cast<int>(bits)), k - 1);
      bits = 0;
    }
  }
  std::memcpy(out, u, sizeof(u));
}

template <int Dims>
struct BlockTraits {
  static constexpr int kSize = 1 << (2 * Dims);
};

template <int Dims>
void fwd_xform(std::int32_t* b) {
  if constexpr (Dims == 1) {
    fwd_lift(b, 1);
  } else if constexpr (Dims == 2) {
    for (int y = 0; y < 4; ++y) fwd_lift(b + 4 * y, 1);
    for (int x = 0; x < 4; ++x) fwd_lift(b + x, 4);
  } else {
    for (int z = 0; z < 4; ++z)
      for (int y = 0; y < 4; ++y) fwd_lift(b + 16 * z + 4 * y, 1);
    for (int z = 0; z < 4; ++z)
      for (int x = 0; x < 4; ++x) fwd_lift(b + 16 * z + x, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) fwd_lift(b + 4 * y + x, 16);
  }
}

template <int Dims>
void inv_xform(std::int32_t* b) {
  if constexpr (Dims == 1) {
    inv_lift(b, 1);
  } else if constexpr (Dims == 2) {
    for (int x = 0; x < 4; ++x) inv_lift(b + x, 4);
    for (int y = 0; y < 4; ++y) inv_lift(b + 4 * y, 1);
  } else {
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) inv_lift(b + 4 * y + x, 16);
    for (int z = 0; z < 4; ++z)
      for (int x = 0; x < 4; ++x) inv_lift(b + 16 * z + x, 4);
    for (int z = 0; z < 4; ++z)
      for (int y = 0; y < 4; ++y) inv_lift(b + 16 * z + 4 * y, 1);
  }
}

/// Per-mode coding bounds for one block; kmin is the lowest bit plane kept.
struct BlockCoding {
  std::size_t budget;
  int kmin;
  bool pad;  // fixed rate pads to exactly `budget` + header bits
};

template <int Dims>
BlockCoding block_coding(ZfpMode mode, int rate, int precision, double tolerance, int emax) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  switch (mode) {
    case ZfpMode::FixedPrecision:
      return {std::size_t{10} + 64u * BS, kIntPrec - precision, false};
    case ZfpMode::FixedAccuracy: {
      // Keep every plane whose original-domain weight exceeds the
      // tolerance; guard planes absorb quantization + transform gain.
      int minexp = 0;
      (void)std::frexp(tolerance, &minexp);
      int kmin = minexp + (kIntPrec - 2) - emax - (2 + Dims);
      if (kmin < 0) kmin = 0;
      if (kmin > kIntPrec) kmin = kIntPrec;
      return {std::size_t{10} + 64u * BS, kmin, false};
    }
    case ZfpMode::FixedRate:
    default:
      return {static_cast<std::size_t>(rate) * BS, 0, true};
  }
}

template <int Dims>
void encode_block(BitWriter& w, const float* fblock, ZfpMode mode, int rate, int precision,
                  double tolerance) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  const std::size_t block_start = w.bit_size();
  const std::size_t rate_bits = static_cast<std::size_t>(rate) * BS;

  float fmax = 0.0f;
  for (int i = 0; i < BS; ++i) {
    const float a = std::fabs(fblock[i]);
    if (std::isfinite(a) && a > fmax) fmax = a;
  }
  if (fmax == 0.0f) {
    w.put_bit(0);  // all-zero block
    if (mode == ZfpMode::FixedRate) w.pad_to(block_start + rate_bits);
    return;
  }
  w.put_bit(1);
  int emax = 0;
  (void)std::frexp(fmax, &emax);  // fmax = m * 2^emax, 0.5 <= m < 1
  w.put_bits(static_cast<std::uint64_t>(emax + kEmaxBias), kEmaxBits);

  // Block floating point: quantize with 2 guard bits => |q| < 2^30.
  std::int32_t iblock[BS];
  const double scale = std::ldexp(1.0, (kIntPrec - 2) - emax);
  for (int i = 0; i < BS; ++i) {
    const float f = fblock[i];
    iblock[i] = std::isfinite(f) ? static_cast<std::int32_t>(static_cast<double>(f) * scale) : 0;
  }

  fwd_xform<Dims>(iblock);

  std::uint32_t ublock[BS];
  if constexpr (Dims == 1) {
    for (int i = 0; i < BS; ++i) ublock[i] = int_to_negabinary(iblock[i]);
  } else {
    const auto& p = perm<Dims>();
    for (int i = 0; i < BS; ++i) {
      ublock[i] = int_to_negabinary(iblock[p[static_cast<std::size_t>(i)]]);
    }
  }

  const BlockCoding c = block_coding<Dims>(mode, rate, precision, tolerance, emax);
  const std::size_t used = w.bit_size() - block_start;
  encode_ints<BS>(w, ublock, c.pad ? c.budget - used : c.budget, c.kmin);
  if (c.pad) w.pad_to(block_start + c.budget);
}

template <int Dims>
void decode_block(BitReader& r, float* fblock, ZfpMode mode, int rate, int precision,
                  double tolerance) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  const std::size_t block_start = r.tell();
  const std::size_t rate_bits = static_cast<std::size_t>(rate) * BS;

  // One peek covers the nonzero flag and the exponent; the skip settles the
  // position for either outcome with a single reader advance.
  const std::uint64_t hdr = r.peek_bits(1 + kEmaxBits);
  if ((hdr & 1u) == 0) {
    r.skip(1);
    std::fill_n(fblock, BS, 0.0f);
    if (mode == ZfpMode::FixedRate) r.seek(block_start + rate_bits);
    return;
  }
  r.skip(1 + kEmaxBits);
  const int emax =
      static_cast<int>((hdr >> 1) & ((1u << kEmaxBits) - 1u)) - kEmaxBias;

  std::uint32_t ublock[BS];
  const BlockCoding c = block_coding<Dims>(mode, rate, precision, tolerance, emax);
  const std::size_t used = r.tell() - block_start;
  decode_ints<BS>(r, ublock, c.pad ? c.budget - used : c.budget, c.kmin);
  if (c.pad) r.seek(block_start + c.budget);

  std::int32_t iblock[BS];
  if constexpr (Dims == 1) {
    // The 1D sequency permutation is the identity; skip the table lookup
    // (and its static-init guard) entirely.
    for (int i = 0; i < BS; ++i) iblock[i] = negabinary_to_int(ublock[i]);
  } else {
    const auto& p = perm<Dims>();
    for (int i = 0; i < BS; ++i) {
      iblock[p[static_cast<std::size_t>(i)]] = negabinary_to_int(ublock[i]);
    }
  }

  inv_xform<Dims>(iblock);

  const double scale = std::ldexp(1.0, emax - (kIntPrec - 2));
  for (int i = 0; i < BS; ++i) {
    fblock[i] = static_cast<float>(iblock[i] * scale);
  }
}

/// Gather a (possibly partial) block, replicating edge values as padding.
template <int Dims>
void gather(const float* data, const ZfpField& f, std::size_t bx, std::size_t by,
            std::size_t bz, float* block) {
  for (std::size_t z = 0; z < (Dims >= 3 ? 4u : 1u); ++z) {
    const std::size_t sz = std::min(4 * bz + z, f.nz - 1);
    for (std::size_t y = 0; y < (Dims >= 2 ? 4u : 1u); ++y) {
      const std::size_t sy = std::min(4 * by + y, f.ny - 1);
      for (std::size_t x = 0; x < 4u; ++x) {
        const std::size_t sx = std::min(4 * bx + x, f.nx - 1);
        block[16 * z + 4 * y + x] = data[(sz * f.ny + sy) * f.nx + sx];
      }
    }
  }
}

/// Scatter a block back, dropping padded lanes.
template <int Dims>
void scatter(const float* block, const ZfpField& f, std::size_t bx, std::size_t by,
             std::size_t bz, float* data) {
  for (std::size_t z = 0; z < (Dims >= 3 ? 4u : 1u); ++z) {
    const std::size_t dz = 4 * bz + z;
    if (dz >= f.nz) break;
    for (std::size_t y = 0; y < (Dims >= 2 ? 4u : 1u); ++y) {
      const std::size_t dy = 4 * by + y;
      if (dy >= f.ny) break;
      for (std::size_t x = 0; x < 4u; ++x) {
        const std::size_t dx = 4 * bx + x;
        if (dx >= f.nx) break;
        data[(dz * f.ny + dy) * f.nx + dx] = block[16 * z + 4 * y + x];
      }
    }
  }
}

struct ModeParams {
  ZfpMode mode;
  int rate;
  int precision;
  double tolerance;
};

template <int Dims>
void compress_impl(const float* in, const ZfpField& f, const ModeParams& m, BitWriter& w) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  float block[64];
  const std::size_t bx_n = (f.nx + 3) / 4;
  const std::size_t by_n = Dims >= 2 ? (f.ny + 3) / 4 : 1;
  const std::size_t bz_n = Dims >= 3 ? (f.nz + 3) / 4 : 1;
  for (std::size_t bz = 0; bz < bz_n; ++bz) {
    for (std::size_t by = 0; by < by_n; ++by) {
      for (std::size_t bx = 0; bx < bx_n; ++bx) {
        // For 1D blocks only the first 4 lanes are populated.
        std::fill_n(block, BS, 0.0f);
        gather<Dims>(in, f, bx, by, bz, block);
        encode_block<Dims>(w, block, m.mode, m.rate, m.precision, m.tolerance);
      }
    }
  }
}

template <int Dims>
void decompress_impl(BitReader& r, const ZfpField& f, const ModeParams& m, float* out) {
  float block[64];
  const std::size_t bx_n = (f.nx + 3) / 4;
  const std::size_t by_n = Dims >= 2 ? (f.ny + 3) / 4 : 1;
  const std::size_t bz_n = Dims >= 3 ? (f.nz + 3) / 4 : 1;
  for (std::size_t bz = 0; bz < bz_n; ++bz) {
    for (std::size_t by = 0; by < by_n; ++by) {
      for (std::size_t bx = 0; bx < bx_n; ++bx) {
        decode_block<Dims>(r, block, m.mode, m.rate, m.precision, m.tolerance);
        scatter<Dims>(block, f, bx, by, bz, out);
      }
    }
  }
}

void validate_field(const ZfpField& f) {
  if (f.dims < 1 || f.dims > 3) throw std::invalid_argument("ZfpField: dims must be 1..3");
  if (f.nx == 0 || f.ny == 0 || f.nz == 0) {
    throw std::invalid_argument("ZfpField: zero extent");
  }
  if (f.dims < 3 && f.nz != 1) throw std::invalid_argument("ZfpField: nz must be 1 for dims<3");
  if (f.dims < 2 && f.ny != 1) throw std::invalid_argument("ZfpField: ny must be 1 for dims<2");
}

}  // namespace

std::size_t ZfpField::blocks() const {
  const std::size_t bx = (nx + 3) / 4;
  const std::size_t by = dims >= 2 ? (ny + 3) / 4 : 1;
  const std::size_t bz = dims >= 3 ? (nz + 3) / 4 : 1;
  return bx * by * bz;
}

ZfpCodec::ZfpCodec(int rate) : rate_(rate) {
  // Rate 4 is the paper's most aggressive setting; below that a 1D block's
  // bit budget cannot even hold the exponent header.
  if (rate < 4 || rate > 32) throw std::invalid_argument("ZfpCodec: rate must be 4..32");
}

ZfpCodec ZfpCodec::fixed_precision(int precision) {
  if (precision < 1 || precision > 32) {
    throw std::invalid_argument("ZfpCodec: precision must be 1..32");
  }
  return ZfpCodec(ZfpMode::FixedPrecision, 32, precision, 0.0);
}

ZfpCodec ZfpCodec::fixed_accuracy(double tolerance) {
  if (!(tolerance > 0.0) || !std::isfinite(tolerance)) {
    throw std::invalid_argument("ZfpCodec: tolerance must be positive and finite");
  }
  return ZfpCodec(ZfpMode::FixedAccuracy, 32, 32, tolerance);
}

std::size_t ZfpCodec::compressed_bytes(const ZfpField& field) const {
  validate_field(field);
  const std::size_t block_values = std::size_t(1) << (2 * field.dims);
  const std::size_t maxbits = mode_ == ZfpMode::FixedRate
                                  ? static_cast<std::size_t>(rate_) * block_values
                                  : 10 + 64 * block_values;  // variable-mode bound
  const std::size_t total_bits = field.blocks() * maxbits;
  return ((total_bits + 63) / 64) * 8;  // word-aligned stream
}

std::size_t ZfpCodec::compress(std::span<const float> in, const ZfpField& field,
                               std::span<std::uint8_t> out) const {
  validate_field(field);
  if (in.size() < field.values()) throw std::invalid_argument("ZfpCodec::compress: input too small");
  const std::size_t need = compressed_bytes(field);
  if (out.size() < need) throw std::invalid_argument("ZfpCodec::compress: output too small");

  const ModeParams m{mode_, rate_, precision_, tolerance_};
  BitWriter w;
  w.reserve_bits(need * 8);  // block loop never reallocates the word buffer
  switch (field.dims) {
    case 1: compress_impl<1>(in.data(), field, m, w); break;
    case 2: compress_impl<2>(in.data(), field, m, w); break;
    case 3: compress_impl<3>(in.data(), field, m, w); break;
    default: break;
  }
  const std::vector<std::uint8_t> bytes = w.take();
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return bytes.size();
}

void ZfpCodec::decompress(std::span<const std::uint8_t> in, const ZfpField& field,
                          std::span<float> out) const {
  validate_field(field);
  if (out.size() < field.values()) throw std::invalid_argument("ZfpCodec::decompress: output too small");
  const ModeParams m{mode_, rate_, precision_, tolerance_};
  BitReader r(in);
  switch (field.dims) {
    case 1: decompress_impl<1>(r, field, m, out.data()); break;
    case 2: decompress_impl<2>(r, field, m, out.data()); break;
    case 3: decompress_impl<3>(r, field, m, out.data()); break;
    default: break;
  }
}

double ZfpCodec::error_bound(double max_abs) const {
  if (max_abs <= 0.0) return 0.0;
  // Truncating to the rate budget leaves ~2^(emax - planes + 5) of error
  // (30-bit quantization aligned at the block exponent, transform gain
  // <= 2^dims). `planes` is the bit planes the budget can actually code:
  // the per-block header (zero marker + biased emax) is paid out of the
  // same fixed-rate budget, and on 1D blocks (4 values) it costs up to
  // three whole planes — at low rates that dominates the error.
  int emax = 0;
  (void)std::frexp(max_abs, &emax);
  const int header_planes = (1 + kEmaxBits + 3) / 4;  // worst case: 1D blocks
  const int planes = rate_ > header_planes ? rate_ - header_planes : 0;
  return std::ldexp(1.0, emax - planes + 5);
}

}  // namespace gcmpi::comp
