#include "compress/zfp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "compress/bitstream.hpp"

namespace gcmpi::comp {

namespace {

constexpr int kIntPrec = 32;      // bit planes per coefficient
constexpr int kEmaxBias = 150;    // covers float exponents incl. denormals
constexpr int kEmaxBits = 9;

// The lifting transforms rely on two's-complement wrap-around: truncated
// bit planes can push reconstructed coefficients past INT32 range, and the
// inverse transform must wrap exactly like the forward one so the lossless
// path stays bit-exact. Route +/-/<< through uint32 to keep that defined.
[[nodiscard]] std::int32_t wadd(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
[[nodiscard]] std::int32_t wsub(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
[[nodiscard]] std::int32_t wshl1(std::int32_t a) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) << 1);
}

/// zfp forward lifting transform over 4 values with stride s.
void fwd_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x = wadd(x, w); x >>= 1; w = wsub(w, x);
  z = wadd(z, y); z >>= 1; y = wsub(y, z);
  x = wadd(x, z); x >>= 1; z = wsub(z, x);
  w = wadd(w, y); w >>= 1; y = wsub(y, w);
  w = wadd(w, y >> 1); y = wsub(y, w >> 1);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Exact inverse of fwd_lift.
void inv_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y = wadd(y, w >> 1); w = wsub(w, y >> 1);
  y = wadd(y, w); w = wshl1(w); w = wsub(w, y);
  z = wadd(z, x); x = wshl1(x); x = wsub(x, z);
  y = wadd(y, z); z = wshl1(z); z = wsub(z, y);
  w = wadd(w, x); x = wshl1(x); x = wsub(x, w);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Total-sequency coefficient order for a d-dimensional block: low-frequency
/// (small coordinate sum) coefficients first so truncation drops the least
/// important bits. Tie-break by linear index (deterministic; not
/// bit-identical to libzfp's table but serves the same purpose).
template <int Dims>
const std::array<std::uint8_t, std::size_t(1) << (2 * Dims)>& perm() {
  static const auto table = [] {
    constexpr std::size_t n = std::size_t(1) << (2 * Dims);
    std::array<std::uint8_t, n> t{};
    std::array<std::uint8_t, n> idx{};
    std::iota(idx.begin(), idx.end(), std::uint8_t{0});
    auto coord_sum = [](std::size_t i) {
      return (i & 3u) + ((i >> 2) & 3u) + ((i >> 4) & 3u);
    };
    std::stable_sort(idx.begin(), idx.end(), [&](std::uint8_t a, std::uint8_t b) {
      return coord_sum(a) < coord_sum(b);
    });
    t = idx;
    return t;
  }();
  return table;
}

[[nodiscard]] std::uint32_t int_to_negabinary(std::int32_t x) {
  const std::uint32_t mask = 0xAAAAAAAAu;
  return (static_cast<std::uint32_t>(x) + mask) ^ mask;
}

[[nodiscard]] std::int32_t negabinary_to_int(std::uint32_t x) {
  const std::uint32_t mask = 0xAAAAAAAAu;
  return static_cast<std::int32_t>((x ^ mask) - mask);
}

/// Embedded bit-plane encoder with group testing (zfp's encode_ints).
/// Writes at most `budget` bits; stops above plane `kmin` (fixed-precision
/// and fixed-accuracy modes truncate by plane instead of by budget).
template <int BlockSize>
void encode_ints(BitWriter& w, const std::uint32_t* u, std::size_t budget, int kmin) {
  constexpr std::uint32_t bs = BlockSize;
  std::size_t bits = budget;
  std::uint32_t n = 0;  // values known to be significant so far
  for (int k = kIntPrec; bits > 0 && k-- > kmin;) {
    // Extract bit plane k across the block.
    std::uint64_t x = 0;
    for (std::uint32_t i = 0; i < bs; ++i) {
      x += static_cast<std::uint64_t>((u[i] >> k) & 1u) << i;
    }
    // Verbatim bits for the already-significant prefix.
    const std::uint32_t m = static_cast<std::uint32_t>(std::min<std::size_t>(n, bits));
    bits -= m;
    w.put_bits(x, static_cast<int>(m));
    x = (m < 64) ? (x >> m) : 0;
    // Group-tested unary expansion of the remainder of the plane.
    auto write_bit = [&w](std::uint32_t b) {
      w.put_bit(b);
      return b;
    };
    for (; n < bs && bits && (bits--, write_bit(x != 0 ? 1u : 0u)); x >>= 1, n++) {
      for (; n < bs - 1 && bits && (bits--, !write_bit(x & 1u)); x >>= 1, n++) {
      }
    }
  }
}

/// Mirror of encode_ints.
template <int BlockSize>
void decode_ints(BitReader& r, std::uint32_t* u, std::size_t budget, int kmin) {
  constexpr std::uint32_t bs = BlockSize;
  std::fill_n(u, BlockSize, 0u);
  std::size_t bits = budget;
  std::uint32_t n = 0;
  for (int k = kIntPrec; bits > 0 && k-- > kmin;) {
    const std::uint32_t m = static_cast<std::uint32_t>(std::min<std::size_t>(n, bits));
    bits -= m;
    std::uint64_t x = r.get_bits(static_cast<int>(m));
    for (; n < bs && bits && (bits--, r.get_bit());
         x += std::uint64_t{1} << n, n++) {
      for (; n < bs - 1 && bits && (bits--, !r.get_bit()); n++) {
      }
    }
    // Deposit plane k.
    for (std::uint32_t i = 0; x != 0; ++i, x >>= 1) {
      if (x & 1u) u[i] |= 1u << k;
    }
  }
}

template <int Dims>
struct BlockTraits {
  static constexpr int kSize = 1 << (2 * Dims);
};

template <int Dims>
void fwd_xform(std::int32_t* b) {
  if constexpr (Dims == 1) {
    fwd_lift(b, 1);
  } else if constexpr (Dims == 2) {
    for (int y = 0; y < 4; ++y) fwd_lift(b + 4 * y, 1);
    for (int x = 0; x < 4; ++x) fwd_lift(b + x, 4);
  } else {
    for (int z = 0; z < 4; ++z)
      for (int y = 0; y < 4; ++y) fwd_lift(b + 16 * z + 4 * y, 1);
    for (int z = 0; z < 4; ++z)
      for (int x = 0; x < 4; ++x) fwd_lift(b + 16 * z + x, 4);
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) fwd_lift(b + 4 * y + x, 16);
  }
}

template <int Dims>
void inv_xform(std::int32_t* b) {
  if constexpr (Dims == 1) {
    inv_lift(b, 1);
  } else if constexpr (Dims == 2) {
    for (int x = 0; x < 4; ++x) inv_lift(b + x, 4);
    for (int y = 0; y < 4; ++y) inv_lift(b + 4 * y, 1);
  } else {
    for (int y = 0; y < 4; ++y)
      for (int x = 0; x < 4; ++x) inv_lift(b + 4 * y + x, 16);
    for (int z = 0; z < 4; ++z)
      for (int x = 0; x < 4; ++x) inv_lift(b + 16 * z + x, 4);
    for (int z = 0; z < 4; ++z)
      for (int y = 0; y < 4; ++y) inv_lift(b + 16 * z + 4 * y, 1);
  }
}

/// Per-mode coding bounds for one block; kmin is the lowest bit plane kept.
struct BlockCoding {
  std::size_t budget;
  int kmin;
  bool pad;  // fixed rate pads to exactly `budget` + header bits
};

template <int Dims>
BlockCoding block_coding(ZfpMode mode, int rate, int precision, double tolerance, int emax) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  switch (mode) {
    case ZfpMode::FixedPrecision:
      return {std::size_t{10} + 64u * BS, kIntPrec - precision, false};
    case ZfpMode::FixedAccuracy: {
      // Keep every plane whose original-domain weight exceeds the
      // tolerance; guard planes absorb quantization + transform gain.
      int minexp = 0;
      (void)std::frexp(tolerance, &minexp);
      int kmin = minexp + (kIntPrec - 2) - emax - (2 + Dims);
      if (kmin < 0) kmin = 0;
      if (kmin > kIntPrec) kmin = kIntPrec;
      return {std::size_t{10} + 64u * BS, kmin, false};
    }
    case ZfpMode::FixedRate:
    default:
      return {static_cast<std::size_t>(rate) * BS, 0, true};
  }
}

template <int Dims>
void encode_block(BitWriter& w, const float* fblock, ZfpMode mode, int rate, int precision,
                  double tolerance) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  const std::size_t block_start = w.bit_size();
  const std::size_t rate_bits = static_cast<std::size_t>(rate) * BS;

  float fmax = 0.0f;
  for (int i = 0; i < BS; ++i) {
    const float a = std::fabs(fblock[i]);
    if (std::isfinite(a) && a > fmax) fmax = a;
  }
  if (fmax == 0.0f) {
    w.put_bit(0);  // all-zero block
    if (mode == ZfpMode::FixedRate) w.pad_to(block_start + rate_bits);
    return;
  }
  w.put_bit(1);
  int emax = 0;
  (void)std::frexp(fmax, &emax);  // fmax = m * 2^emax, 0.5 <= m < 1
  w.put_bits(static_cast<std::uint64_t>(emax + kEmaxBias), kEmaxBits);

  // Block floating point: quantize with 2 guard bits => |q| < 2^30.
  std::int32_t iblock[BS];
  const double scale = std::ldexp(1.0, (kIntPrec - 2) - emax);
  for (int i = 0; i < BS; ++i) {
    const float f = fblock[i];
    iblock[i] = std::isfinite(f) ? static_cast<std::int32_t>(static_cast<double>(f) * scale) : 0;
  }

  fwd_xform<Dims>(iblock);

  const auto& p = perm<Dims>();
  std::uint32_t ublock[BS];
  for (int i = 0; i < BS; ++i) ublock[i] = int_to_negabinary(iblock[p[static_cast<std::size_t>(i)]]);

  const BlockCoding c = block_coding<Dims>(mode, rate, precision, tolerance, emax);
  const std::size_t used = w.bit_size() - block_start;
  encode_ints<BS>(w, ublock, c.pad ? c.budget - used : c.budget, c.kmin);
  if (c.pad) w.pad_to(block_start + c.budget);
}

template <int Dims>
void decode_block(BitReader& r, float* fblock, ZfpMode mode, int rate, int precision,
                  double tolerance) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  const std::size_t block_start = r.tell();
  const std::size_t rate_bits = static_cast<std::size_t>(rate) * BS;

  if (r.get_bit() == 0) {
    std::fill_n(fblock, BS, 0.0f);
    if (mode == ZfpMode::FixedRate) r.seek(block_start + rate_bits);
    return;
  }
  const int emax = static_cast<int>(r.get_bits(kEmaxBits)) - kEmaxBias;

  std::uint32_t ublock[BS];
  const BlockCoding c = block_coding<Dims>(mode, rate, precision, tolerance, emax);
  const std::size_t used = r.tell() - block_start;
  decode_ints<BS>(r, ublock, c.pad ? c.budget - used : c.budget, c.kmin);
  if (c.pad) r.seek(block_start + c.budget);

  const auto& p = perm<Dims>();
  std::int32_t iblock[BS];
  for (int i = 0; i < BS; ++i) iblock[p[static_cast<std::size_t>(i)]] = negabinary_to_int(ublock[i]);

  inv_xform<Dims>(iblock);

  const double scale = std::ldexp(1.0, emax - (kIntPrec - 2));
  for (int i = 0; i < BS; ++i) {
    fblock[i] = static_cast<float>(iblock[i] * scale);
  }
}

/// Gather a (possibly partial) block, replicating edge values as padding.
template <int Dims>
void gather(const float* data, const ZfpField& f, std::size_t bx, std::size_t by,
            std::size_t bz, float* block) {
  for (std::size_t z = 0; z < (Dims >= 3 ? 4u : 1u); ++z) {
    const std::size_t sz = std::min(4 * bz + z, f.nz - 1);
    for (std::size_t y = 0; y < (Dims >= 2 ? 4u : 1u); ++y) {
      const std::size_t sy = std::min(4 * by + y, f.ny - 1);
      for (std::size_t x = 0; x < 4u; ++x) {
        const std::size_t sx = std::min(4 * bx + x, f.nx - 1);
        block[16 * z + 4 * y + x] = data[(sz * f.ny + sy) * f.nx + sx];
      }
    }
  }
}

/// Scatter a block back, dropping padded lanes.
template <int Dims>
void scatter(const float* block, const ZfpField& f, std::size_t bx, std::size_t by,
             std::size_t bz, float* data) {
  for (std::size_t z = 0; z < (Dims >= 3 ? 4u : 1u); ++z) {
    const std::size_t dz = 4 * bz + z;
    if (dz >= f.nz) break;
    for (std::size_t y = 0; y < (Dims >= 2 ? 4u : 1u); ++y) {
      const std::size_t dy = 4 * by + y;
      if (dy >= f.ny) break;
      for (std::size_t x = 0; x < 4u; ++x) {
        const std::size_t dx = 4 * bx + x;
        if (dx >= f.nx) break;
        data[(dz * f.ny + dy) * f.nx + dx] = block[16 * z + 4 * y + x];
      }
    }
  }
}

struct ModeParams {
  ZfpMode mode;
  int rate;
  int precision;
  double tolerance;
};

template <int Dims>
void compress_impl(const float* in, const ZfpField& f, const ModeParams& m, BitWriter& w) {
  constexpr int BS = BlockTraits<Dims>::kSize;
  float block[64];
  const std::size_t bx_n = (f.nx + 3) / 4;
  const std::size_t by_n = Dims >= 2 ? (f.ny + 3) / 4 : 1;
  const std::size_t bz_n = Dims >= 3 ? (f.nz + 3) / 4 : 1;
  for (std::size_t bz = 0; bz < bz_n; ++bz) {
    for (std::size_t by = 0; by < by_n; ++by) {
      for (std::size_t bx = 0; bx < bx_n; ++bx) {
        // For 1D blocks only the first 4 lanes are populated.
        std::fill_n(block, BS, 0.0f);
        gather<Dims>(in, f, bx, by, bz, block);
        encode_block<Dims>(w, block, m.mode, m.rate, m.precision, m.tolerance);
      }
    }
  }
}

template <int Dims>
void decompress_impl(BitReader& r, const ZfpField& f, const ModeParams& m, float* out) {
  float block[64];
  const std::size_t bx_n = (f.nx + 3) / 4;
  const std::size_t by_n = Dims >= 2 ? (f.ny + 3) / 4 : 1;
  const std::size_t bz_n = Dims >= 3 ? (f.nz + 3) / 4 : 1;
  for (std::size_t bz = 0; bz < bz_n; ++bz) {
    for (std::size_t by = 0; by < by_n; ++by) {
      for (std::size_t bx = 0; bx < bx_n; ++bx) {
        decode_block<Dims>(r, block, m.mode, m.rate, m.precision, m.tolerance);
        scatter<Dims>(block, f, bx, by, bz, out);
      }
    }
  }
}

void validate_field(const ZfpField& f) {
  if (f.dims < 1 || f.dims > 3) throw std::invalid_argument("ZfpField: dims must be 1..3");
  if (f.nx == 0 || f.ny == 0 || f.nz == 0) {
    throw std::invalid_argument("ZfpField: zero extent");
  }
  if (f.dims < 3 && f.nz != 1) throw std::invalid_argument("ZfpField: nz must be 1 for dims<3");
  if (f.dims < 2 && f.ny != 1) throw std::invalid_argument("ZfpField: ny must be 1 for dims<2");
}

}  // namespace

std::size_t ZfpField::blocks() const {
  const std::size_t bx = (nx + 3) / 4;
  const std::size_t by = dims >= 2 ? (ny + 3) / 4 : 1;
  const std::size_t bz = dims >= 3 ? (nz + 3) / 4 : 1;
  return bx * by * bz;
}

ZfpCodec::ZfpCodec(int rate) : rate_(rate) {
  // Rate 4 is the paper's most aggressive setting; below that a 1D block's
  // bit budget cannot even hold the exponent header.
  if (rate < 4 || rate > 32) throw std::invalid_argument("ZfpCodec: rate must be 4..32");
}

ZfpCodec ZfpCodec::fixed_precision(int precision) {
  if (precision < 1 || precision > 32) {
    throw std::invalid_argument("ZfpCodec: precision must be 1..32");
  }
  return ZfpCodec(ZfpMode::FixedPrecision, 32, precision, 0.0);
}

ZfpCodec ZfpCodec::fixed_accuracy(double tolerance) {
  if (!(tolerance > 0.0) || !std::isfinite(tolerance)) {
    throw std::invalid_argument("ZfpCodec: tolerance must be positive and finite");
  }
  return ZfpCodec(ZfpMode::FixedAccuracy, 32, 32, tolerance);
}

std::size_t ZfpCodec::compressed_bytes(const ZfpField& field) const {
  validate_field(field);
  const std::size_t block_values = std::size_t(1) << (2 * field.dims);
  const std::size_t maxbits = mode_ == ZfpMode::FixedRate
                                  ? static_cast<std::size_t>(rate_) * block_values
                                  : 10 + 64 * block_values;  // variable-mode bound
  const std::size_t total_bits = field.blocks() * maxbits;
  return ((total_bits + 63) / 64) * 8;  // word-aligned stream
}

std::size_t ZfpCodec::compress(std::span<const float> in, const ZfpField& field,
                               std::span<std::uint8_t> out) const {
  validate_field(field);
  if (in.size() < field.values()) throw std::invalid_argument("ZfpCodec::compress: input too small");
  const std::size_t need = compressed_bytes(field);
  if (out.size() < need) throw std::invalid_argument("ZfpCodec::compress: output too small");

  const ModeParams m{mode_, rate_, precision_, tolerance_};
  BitWriter w;
  switch (field.dims) {
    case 1: compress_impl<1>(in.data(), field, m, w); break;
    case 2: compress_impl<2>(in.data(), field, m, w); break;
    case 3: compress_impl<3>(in.data(), field, m, w); break;
    default: break;
  }
  const std::vector<std::uint8_t> bytes = w.take();
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return bytes.size();
}

void ZfpCodec::decompress(std::span<const std::uint8_t> in, const ZfpField& field,
                          std::span<float> out) const {
  validate_field(field);
  if (out.size() < field.values()) throw std::invalid_argument("ZfpCodec::decompress: output too small");
  const ModeParams m{mode_, rate_, precision_, tolerance_};
  BitReader r(in);
  switch (field.dims) {
    case 1: decompress_impl<1>(r, field, m, out.data()); break;
    case 2: decompress_impl<2>(r, field, m, out.data()); break;
    case 3: decompress_impl<3>(r, field, m, out.data()); break;
    default: break;
  }
}

double ZfpCodec::error_bound(double max_abs) const {
  if (max_abs <= 0.0) return 0.0;
  // Truncating to the rate budget leaves ~2^(emax - planes + 5) of error
  // (30-bit quantization aligned at the block exponent, transform gain
  // <= 2^dims). `planes` is the bit planes the budget can actually code:
  // the per-block header (zero marker + biased emax) is paid out of the
  // same fixed-rate budget, and on 1D blocks (4 values) it costs up to
  // three whole planes — at low rates that dominates the error.
  int emax = 0;
  (void)std::frexp(max_abs, &emax);
  const int header_planes = (1 + kEmaxBits + 3) / 4;  // worst case: 1D blocks
  const int planes = rate_ > header_planes ? rate_ - header_planes : 0;
  return std::ldexp(1.0, emax - planes + 5);
}

}  // namespace gcmpi::comp
