// From-scratch reimplementation of ZFP fixed-rate compression for 32-bit
// floating-point arrays in 1, 2, or 3 dimensions (P. Lindstrom, "Fixed-Rate
// Compressed Floating-Point Arrays", TVCG 2014).
//
// Each 4^d block is encoded independently in exactly `rate * 4^d` bits:
//   1. block-floating-point: align all values to the block's max exponent,
//      quantizing to 32-bit integers with 2 guard bits;
//   2. integer lifting transform (the zfp non-orthogonal decorrelator)
//      applied along each dimension;
//   3. total-sequency reordering of coefficients, negabinary mapping;
//   4. embedded bit-plane coding with group testing, truncated at the bit
//      budget and zero-padded to it (fixed rate => fixed compression ratio
//      32/rate, exactly as exploited by the paper's ZFP-OPT scheme).
//
// This is a behaviour-faithful codec (same transform, same coding scheme,
// same rate semantics), not a bit-compatible clone of libzfp: the
// coefficient permutation tie-break and the container layout differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gcmpi::comp {

/// Array geometry for a ZFP (de)compression call; float32 values only,
/// matching the paper's single-precision datasets.
struct ZfpField {
  int dims = 1;  // 1, 2, or 3
  std::size_t nx = 0;
  std::size_t ny = 1;
  std::size_t nz = 1;

  [[nodiscard]] std::size_t values() const { return nx * ny * nz; }
  [[nodiscard]] std::size_t blocks() const;
  static ZfpField d1(std::size_t nx) { return {1, nx, 1, 1}; }
  static ZfpField d2(std::size_t nx, std::size_t ny) { return {2, nx, ny, 1}; }
  static ZfpField d3(std::size_t nx, std::size_t ny, std::size_t nz) {
    return {3, nx, ny, nz};
  }
};

/// Compression modes, mirroring libzfp's:
///   FixedRate:      exactly `rate` bits per value; the paper's mode (the
///                   only one its CUDA backend supports) — size predictable.
///   FixedPrecision: keep `precision` most-significant bit planes per
///                   block; variable size, relative-error control.
///   FixedAccuracy:  keep every bit plane above `tolerance`; variable
///                   size, absolute-error control.
enum class ZfpMode : std::uint8_t { FixedRate, FixedPrecision, FixedAccuracy };

class ZfpCodec {
 public:
  /// `rate` = compressed bits per value, 2..32. Rate 16 halves the data
  /// (the paper's default); rates 8 and 4 give ratios 4 and 8.
  explicit ZfpCodec(int rate);

  /// Fixed-precision constructor: `precision` in 1..32 bit planes.
  [[nodiscard]] static ZfpCodec fixed_precision(int precision);
  /// Fixed-accuracy constructor: absolute error tolerance > 0.
  [[nodiscard]] static ZfpCodec fixed_accuracy(double tolerance);

  [[nodiscard]] ZfpMode mode() const { return mode_; }
  [[nodiscard]] int rate() const { return rate_; }
  [[nodiscard]] int precision() const { return precision_; }
  [[nodiscard]] double tolerance() const { return tolerance_; }
  [[nodiscard]] double ratio() const { return 32.0 / rate_; }

  /// Exact compressed size for FixedRate (computable a priori, which is
  /// why ZFP-OPT needs no size readback from the GPU); an upper bound for
  /// the variable-size modes.
  [[nodiscard]] std::size_t compressed_bytes(const ZfpField& field) const;

  /// Compress `in` (field.values() floats) into `out`; returns bytes
  /// written (== compressed_bytes(field) in FixedRate mode). `out` must
  /// hold compressed_bytes(field).
  std::size_t compress(std::span<const float> in, const ZfpField& field,
                       std::span<std::uint8_t> out) const;

  /// Decompress into `out` (field.values() floats).
  void decompress(std::span<const std::uint8_t> in, const ZfpField& field,
                  std::span<float> out) const;

  /// Upper bound on the pointwise absolute error for data whose magnitude
  /// is at most `max_abs` (fixed-rate truncation bound).
  [[nodiscard]] double error_bound(double max_abs) const;

 private:
  ZfpCodec(ZfpMode mode, int rate, int precision, double tolerance)
      : mode_(mode), rate_(rate), precision_(precision), tolerance_(tolerance) {}

  ZfpMode mode_ = ZfpMode::FixedRate;
  int rate_ = 16;
  int precision_ = 32;
  double tolerance_ = 0.0;
};

}  // namespace gcmpi::comp
