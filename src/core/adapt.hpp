// Adaptive compression control plane — the core-side policy interface.
//
// The paper's Sec. IX future work asks for compression decisions driven by
// a real-time monitor. src/adapt implements that closed loop; this header
// is the thin seam the rest of the library sees, so gcmpi_core/gcmpi_mpi
// never depend on the adapt library: CompressionManager and the collective
// engines consult an AdaptivePolicy pointer when one is installed (via
// mpi::WorldOptions::adaptive) and behave exactly as before when it is
// null — the control plane is inert by default.
//
// Channel scopes: every consultation (and the telemetry it generates) is
// tagged with the call site it came from, so the controller can keep
// independent per-channel statistics for the serial p2p path, batched
// alltoall launches, pipeline chunks, and the collective engines.
#pragma once

#include <cstdint>

#include "core/collective.hpp"
#include "core/config.hpp"
#include "sim/time.hpp"

namespace gcmpi::core {

inline constexpr const char* kScopeP2P = "p2p";
inline constexpr const char* kScopeBatch = "batch";
inline constexpr const char* kScopeChunk = "chunk";
inline constexpr const char* kScopeAllreduce = "allreduce";
inline constexpr const char* kScopeAlltoall = "alltoall";
inline constexpr const char* kScopeBcast = "bcast";
inline constexpr const char* kScopeAllgather = "allgather";
inline constexpr const char* kScopeGather = "gather";
inline constexpr const char* kScopeScatter = "scatter";

/// One codec decision for one outgoing message (or batch, or chunk).
struct CompressChoice {
  bool use_compression = false;
  Algorithm algorithm = Algorithm::None;
  int zfp_rate = 0;  // meaningful only when algorithm == ZFP
};

/// Closed-loop selection policy consulted before every compression and at
/// the collective engines' algorithm-resolution points. Implemented by
/// adapt::AdaptiveController; the default (no policy installed) keeps the
/// static CompressionConfig / CollectiveTuning behaviour bit-for-bit.
class AdaptivePolicy {
 public:
  virtual ~AdaptivePolicy() = default;

  /// Pick the codec for a `bytes`-sized eligible message on `scope`.
  /// Called only for messages the static gate already qualified
  /// (device-resident, above threshold), so returning use_compression =
  /// false degrades that message to the ordinary raw-bypass path.
  virtual CompressChoice choose_codec(sim::Time now, int rank, const char* scope,
                                      std::uint64_t bytes) = 0;

  /// Resolve the allreduce/reduce-scatter schedule. Must return the SAME
  /// algorithm to every rank of one collective (MPI ranks issue their
  /// collectives in identical order, which implementations use to keep a
  /// per-rank round index into a shared decision sequence).
  virtual CollectiveAlgorithm choose_allreduce(sim::Time now, int rank,
                                               std::uint64_t bytes, int ranks, int nodes,
                                               int gpus_per_node) = 0;

  /// Resolve the alltoall schedule (naive pairwise vs batched one-shot).
  /// Same all-ranks-agree contract as choose_allreduce.
  virtual CollectiveAlgorithm choose_alltoall(sim::Time now, int rank,
                                              std::uint64_t block_bytes, int ranks) = 0;

  /// Resolve the bcast schedule (flat binomial vs hierarchical per-node
  /// staging). Same all-ranks-agree contract as choose_allreduce.
  virtual CollectiveAlgorithm choose_bcast(sim::Time now, int rank, std::uint64_t bytes,
                                           int ranks, int nodes, int gpus_per_node) = 0;

  /// Resolve the allgather schedule (flat ring vs leader ring of node
  /// slabs). Same all-ranks-agree contract.
  virtual CollectiveAlgorithm choose_allgather(sim::Time now, int rank,
                                               std::uint64_t block_bytes, int ranks,
                                               int nodes, int gpus_per_node) = 0;

  /// Resolve the gather schedule (direct-to-root vs leader-staged slabs).
  /// Same all-ranks-agree contract.
  virtual CollectiveAlgorithm choose_gather(sim::Time now, int rank,
                                            std::uint64_t block_bytes, int ranks,
                                            int nodes, int gpus_per_node) = 0;

  /// Resolve the scatter schedule (direct-from-root vs batched node slabs).
  /// Same all-ranks-agree contract.
  virtual CollectiveAlgorithm choose_scatter(sim::Time now, int rank,
                                             std::uint64_t block_bytes, int ranks,
                                             int nodes, int gpus_per_node) = 0;
};

}  // namespace gcmpi::core
