#include "core/collective.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace gcmpi::core {

const char* collective_algorithm_name(CollectiveAlgorithm a) {
  switch (a) {
    case CollectiveAlgorithm::Auto: return "auto";
    case CollectiveAlgorithm::Linear: return "linear";
    case CollectiveAlgorithm::Ring: return "ring";
    case CollectiveAlgorithm::Hierarchical: return "hierarchical";
    case CollectiveAlgorithm::BatchedPairwise: return "batched";
  }
  return "?";
}

CollectiveAlgorithm resolve_allreduce_algorithm(const CollectiveTuning& tuning,
                                                std::uint64_t bytes, int ranks,
                                                int nodes, int gpus_per_node) {
  if (tuning.algorithm != CollectiveAlgorithm::Auto) return tuning.algorithm;
  if (ranks < tuning.ring_min_ranks || bytes < tuning.ring_min_bytes) {
    return CollectiveAlgorithm::Linear;
  }
  if (tuning.allow_hierarchical && nodes > 1 && gpus_per_node > 1) {
    return CollectiveAlgorithm::Hierarchical;
  }
  return CollectiveAlgorithm::Ring;
}

namespace {

/// Shared resolution rule for the leader-staged moving collectives: the
/// hierarchical schedule needs a genuine two-level topology; a forced
/// Hierarchical on a degenerate one resolves to the flat path (Linear) so
/// the result is bit-identical to the flat schedule by construction.
CollectiveAlgorithm resolve_hier(const CollectiveTuning& tuning, CollectiveAlgorithm forced,
                                 std::uint64_t floor_bytes, std::uint64_t bytes, int ranks,
                                 int nodes, int gpus_per_node) {
  const bool two_level = nodes > 1 && gpus_per_node > 1;
  if (forced != CollectiveAlgorithm::Auto) {
    return forced == CollectiveAlgorithm::Hierarchical && two_level
               ? CollectiveAlgorithm::Hierarchical
               : CollectiveAlgorithm::Linear;
  }
  if (!tuning.allow_hierarchical || !two_level) return CollectiveAlgorithm::Linear;
  if (ranks < tuning.hier_min_ranks || bytes < floor_bytes) return CollectiveAlgorithm::Linear;
  return CollectiveAlgorithm::Hierarchical;
}

}  // namespace

CollectiveAlgorithm resolve_bcast_algorithm(const CollectiveTuning& tuning,
                                            std::uint64_t bytes, int ranks, int nodes,
                                            int gpus_per_node) {
  return resolve_hier(tuning, tuning.bcast_algorithm, tuning.hier_min_bytes, bytes, ranks,
                      nodes, gpus_per_node);
}

CollectiveAlgorithm resolve_allgather_algorithm(const CollectiveTuning& tuning,
                                                std::uint64_t block_bytes, int ranks,
                                                int nodes, int gpus_per_node) {
  return resolve_hier(tuning, tuning.allgather_algorithm, tuning.hier_min_block_bytes,
                      block_bytes, ranks, nodes, gpus_per_node);
}

CollectiveAlgorithm resolve_gather_algorithm(const CollectiveTuning& tuning,
                                             std::uint64_t block_bytes, int ranks,
                                             int nodes, int gpus_per_node) {
  return resolve_hier(tuning, tuning.gather_algorithm, tuning.hier_min_block_bytes,
                      block_bytes, ranks, nodes, gpus_per_node);
}

CollectiveAlgorithm resolve_scatter_algorithm(const CollectiveTuning& tuning,
                                              std::uint64_t block_bytes, int ranks,
                                              int nodes, int gpus_per_node) {
  return resolve_hier(tuning, tuning.scatter_algorithm, tuning.hier_min_block_bytes,
                      block_bytes, ranks, nodes, gpus_per_node);
}

CollectiveAlgorithm resolve_alltoall_algorithm(const CollectiveTuning& tuning,
                                               std::uint64_t block_bytes, int ranks) {
  if (tuning.alltoall_algorithm != CollectiveAlgorithm::Auto) {
    return tuning.alltoall_algorithm == CollectiveAlgorithm::BatchedPairwise
               ? CollectiveAlgorithm::BatchedPairwise
               : CollectiveAlgorithm::Linear;
  }
  if (ranks < tuning.alltoall_min_ranks || block_bytes < tuning.alltoall_min_block_bytes) {
    return CollectiveAlgorithm::Linear;
  }
  return CollectiveAlgorithm::BatchedPairwise;
}

namespace {

/// Ring fold for shard `s` over `parts` contributions (each a full-length
/// vector): partial = x[(s+1)%N]; then op(x[(s+k)%N], partial) for k=2..N.
/// Writes the reduced shard into `out`.
void ring_fold_shard(const std::vector<const float*>& parts, std::size_t n, int s,
                     ReduceOp op, float* out) {
  const int N = static_cast<int>(parts.size());
  const auto [lo, hi] = shard_range(n, N, s);
  const std::size_t len = hi - lo;
  if (len == 0) return;
  std::memcpy(out + lo, parts[static_cast<std::size_t>((s + 1) % N)] + lo, len * 4);
  std::vector<float> partial(out + lo, out + hi);
  for (int k = 2; k <= N; ++k) {
    const int j = (s + k) % N;
    std::memcpy(out + lo, parts[static_cast<std::size_t>(j)] + lo, len * 4);
    comp::reduce_inplace(out + lo, partial.data(), len, op);
    partial.assign(out + lo, out + hi);
  }
}

std::vector<float> ring_oracle(const std::vector<const float*>& parts, std::size_t n,
                               ReduceOp op) {
  const int N = static_cast<int>(parts.size());
  std::vector<float> out(n);
  if (N == 1) {
    std::memcpy(out.data(), parts[0], n * 4);
    return out;
  }
  for (int s = 0; s < N; ++s) ring_fold_shard(parts, n, s, op, out.data());
  return out;
}

/// Replay the fixed Rabenseifner fold + recursive-doubling schedule of
/// mpi::Rank::allreduce (the Linear path) on the host.
std::vector<float> linear_oracle(const std::vector<std::vector<float>>& x,
                                 ReduceOp op) {
  const int P = static_cast<int>(x.size());
  const std::size_t n = x[0].size();
  std::vector<std::vector<float>> accum = x;

  int pof2 = 1;
  while (pof2 * 2 <= P) pof2 *= 2;
  const int rem = P - pof2;

  std::vector<int> newrank(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    if (r < 2 * rem) {
      if (r % 2 != 0) {
        newrank[static_cast<std::size_t>(r)] = -1;
      } else {
        comp::reduce_inplace(accum[static_cast<std::size_t>(r)].data(),
                             accum[static_cast<std::size_t>(r + 1)].data(), n, op);
        newrank[static_cast<std::size_t>(r)] = r / 2;
      }
    } else {
      newrank[static_cast<std::size_t>(r)] = r - rem;
    }
  }

  for (int mask = 1; mask < pof2; mask <<= 1) {
    // sendrecv exchanges the pre-step accumulators on both sides.
    const std::vector<std::vector<float>> snapshot = accum;
    for (int r = 0; r < P; ++r) {
      const int nr = newrank[static_cast<std::size_t>(r)];
      if (nr < 0) continue;
      const int peer_new = nr ^ mask;
      const int peer = peer_new < rem ? peer_new * 2 : peer_new + rem;
      comp::reduce_inplace(accum[static_cast<std::size_t>(r)].data(),
                           snapshot[static_cast<std::size_t>(peer)].data(), n, op);
    }
  }

  // Un-fold only copies the result back to folded-away odd ranks; rank 0
  // (always a surviving even rank) already holds the final vector.
  return accum[0];
}

}  // namespace

std::vector<float> allreduce_oracle(const std::vector<std::vector<float>>& contributions,
                                    ReduceOp op, CollectiveAlgorithm algorithm,
                                    int gpus_per_node) {
  assert(!contributions.empty());
  const int P = static_cast<int>(contributions.size());
  const std::size_t n = contributions[0].size();
  if (P == 1 || n == 0) return contributions[0];

  switch (algorithm) {
    case CollectiveAlgorithm::Linear:
      return linear_oracle(contributions, op);
    case CollectiveAlgorithm::Ring: {
      std::vector<const float*> parts;
      parts.reserve(static_cast<std::size_t>(P));
      for (const auto& c : contributions) parts.push_back(c.data());
      return ring_oracle(parts, n, op);
    }
    case CollectiveAlgorithm::Hierarchical: {
      const int gpn = gpus_per_node > 0 ? gpus_per_node : 1;
      const int nodes = (P + gpn - 1) / gpn;
      // Phase 1: leaders fold their members in ascending rank order.
      std::vector<std::vector<float>> partials;
      partials.reserve(static_cast<std::size_t>(nodes));
      for (int node = 0; node < nodes; ++node) {
        const int leader = node * gpn;
        std::vector<float> acc = contributions[static_cast<std::size_t>(leader)];
        for (int m = leader + 1; m < std::min(leader + gpn, P); ++m) {
          comp::reduce_inplace(acc.data(), contributions[static_cast<std::size_t>(m)].data(),
                               n, op);
        }
        partials.push_back(std::move(acc));
      }
      // Phase 2: node partials fold along the leader ring.
      std::vector<const float*> parts;
      parts.reserve(partials.size());
      for (const auto& p : partials) parts.push_back(p.data());
      return ring_oracle(parts, n, op);
    }
    case CollectiveAlgorithm::Auto:
    case CollectiveAlgorithm::BatchedPairwise:
      assert(false && "allreduce_oracle needs a concrete allreduce algorithm");
      break;
  }
  return contributions[0];
}

}  // namespace gcmpi::core
