// Collective algorithm selection and the canonical-order reduction oracle.
//
// Determinism contract (pinned by tests/test_determinism.cpp): every
// allreduce algorithm reduces in a *canonical fold order* that is a pure
// function of (algorithm, ranks, topology) — never of message delivery
// timing. The fold always uses comp::reduce_inplace with the accumulator
// as the first operand (see compress/reduce.hpp), and `allreduce_oracle`
// replays the exact order on the host, so with lossless codecs the engine
// must reproduce the oracle bit-for-bit.
//
// Canonical orders:
//   Linear       — Rabenseifner fold + recursive doubling, the fixed
//                  schedule in src/mpi/collectives.cpp.
//   Ring         — shard s is folded along the ring rotation: starting
//                  from rank s+1's contribution, each next rank j applies
//                  op(x_j, partial); rank s finishes its own shard.
//   Hierarchical — each node leader folds its members in ascending rank
//                  order, then node partials fold along the leader ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "compress/reduce.hpp"

namespace gcmpi::core {

using comp::ReduceOp;
using comp::reduce_op_name;

enum class CollectiveAlgorithm : std::uint8_t {
  Auto,
  Linear,
  Ring,
  Hierarchical,
  // Alltoall only: compress all P-1 outgoing blocks in ONE batched kernel
  // launch, then exchange slab slices over the scattered pairwise schedule
  // (see src/mpi/alltoall_engine.cpp).
  BatchedPairwise,
};

[[nodiscard]] const char* collective_algorithm_name(CollectiveAlgorithm a);

/// Allreduce/reduce-scatter algorithm selection knobs, surfaced through
/// mpi::WorldOptions::collectives.
struct CollectiveTuning {
  CollectiveAlgorithm algorithm = CollectiveAlgorithm::Auto;
  // Auto policy: ring algorithms shard the message across ranks, so they
  // only pay off once per-shard chunks are big enough to compress and to
  // saturate the wire; below these floors the linear schedule's lower hop
  // count wins. The byte floor matches the measured crossover in
  // bench/fig11_collectives.cpp: on Longhorn at 8 ranks the ring pulls
  // ahead of the linear schedule between 4 and 8 MiB.
  std::uint64_t ring_min_bytes = 4ull << 20;
  int ring_min_ranks = 4;
  bool allow_hierarchical = true;  // use the leader ring when nodes > 1

  // Alltoall: naive pairwise sendrecv (one compression launch per
  // destination) vs the batched engine (one launch for all P-1 blocks).
  // Auto policy: batching only pays once the per-destination blocks are
  // big enough that their compression kernels — not the launch overhead
  // being amortized — dominate; below the floors the eager/serial path's
  // lower per-message cost wins. The byte floor matches the measured
  // crossover in bench/ext_alltoall.cpp on Longhorn at 8 ranks.
  CollectiveAlgorithm alltoall_algorithm = CollectiveAlgorithm::Auto;
  std::uint64_t alltoall_min_block_bytes = 1ull << 20;
  int alltoall_min_ranks = 4;

  // Hierarchical staging for the moving collectives (bcast / allgather /
  // gather / scatter): stage payloads at one representative per node so the
  // shared IB NIC carries one wire transit per node instead of one per
  // rank (gZCCL-style topology awareness; see src/mpi/hier_engine.cpp).
  // Auto policy: below the floors the flat schedules' lower hop count and
  // launch overhead win; above them the per-node staging pays for itself.
  // Hierarchical staging needs a real two-level topology (nodes > 1 AND
  // gpus_per_node > 1) — degenerate topologies fall back to the flat path
  // even when forced, bit-identically.
  CollectiveAlgorithm bcast_algorithm = CollectiveAlgorithm::Auto;
  CollectiveAlgorithm allgather_algorithm = CollectiveAlgorithm::Auto;
  CollectiveAlgorithm gather_algorithm = CollectiveAlgorithm::Auto;
  CollectiveAlgorithm scatter_algorithm = CollectiveAlgorithm::Auto;
  std::uint64_t hier_min_bytes = 1ull << 20;        // full-message floor (bcast)
  std::uint64_t hier_min_block_bytes = 256ull << 10;  // per-rank block floor
  int hier_min_ranks = 4;
};

/// Resolve `Auto` into a concrete algorithm for a `bytes`-sized allreduce
/// over `ranks` ranks on a (nodes x gpus_per_node) cluster. Non-Auto
/// settings are honored as-is (degenerate topologies still run correctly:
/// Hierarchical with one GPU per node degenerates to Ring).
[[nodiscard]] CollectiveAlgorithm resolve_allreduce_algorithm(
    const CollectiveTuning& tuning, std::uint64_t bytes, int ranks, int nodes,
    int gpus_per_node);

/// Resolve the bcast schedule for a `bytes`-sized message: Hierarchical
/// (root compresses once, node representatives forward the wire form over
/// IB, intra-node fan-out below them) or Linear (the flat binomial tree).
/// A forced Hierarchical on a degenerate topology (one node, or one GPU
/// per node) resolves to Linear: there is no second level to stage on.
[[nodiscard]] CollectiveAlgorithm resolve_bcast_algorithm(const CollectiveTuning& tuning,
                                                          std::uint64_t bytes, int ranks,
                                                          int nodes, int gpus_per_node);

/// Resolve the allgather schedule for `block_bytes` per-rank blocks:
/// Hierarchical (intra-node gather to the leader, leader ring of node
/// slabs in wire form, intra-node bcast of the assembled vector) or
/// Linear (the flat ring). Same degenerate-topology rule as bcast.
[[nodiscard]] CollectiveAlgorithm resolve_allgather_algorithm(
    const CollectiveTuning& tuning, std::uint64_t block_bytes, int ranks, int nodes,
    int gpus_per_node);

/// Resolve the gather schedule: Hierarchical (members stage blocks at the
/// node leader, leaders ship one assembled slab to the root) or Linear
/// (every rank sends its block straight to the root).
[[nodiscard]] CollectiveAlgorithm resolve_gather_algorithm(const CollectiveTuning& tuning,
                                                           std::uint64_t block_bytes,
                                                           int ranks, int nodes,
                                                           int gpus_per_node);

/// Resolve the scatter schedule: Hierarchical (the root batch-compresses
/// one slab per remote node, leaders fan the blocks out intra-node) or
/// Linear (the root sends every rank its block directly).
[[nodiscard]] CollectiveAlgorithm resolve_scatter_algorithm(const CollectiveTuning& tuning,
                                                            std::uint64_t block_bytes,
                                                            int ranks, int nodes,
                                                            int gpus_per_node);

/// Resolve the alltoall schedule for `block_bytes` per-destination blocks
/// over `ranks` ranks: BatchedPairwise (one-launch batch compression) or
/// Linear (the legacy naive pairwise sendrecv loop). A non-Auto
/// tuning.alltoall_algorithm is honored: BatchedPairwise forces the batch
/// engine, anything else forces the naive loop.
[[nodiscard]] CollectiveAlgorithm resolve_alltoall_algorithm(
    const CollectiveTuning& tuning, std::uint64_t block_bytes, int ranks);

/// Contiguous shard of an n-element vector split across P ranks:
/// [first, second) for shard s, balanced to within one element.
[[nodiscard]] inline std::pair<std::size_t, std::size_t> shard_range(std::size_t n,
                                                                     int P,
                                                                     int s) {
  const auto p = static_cast<std::size_t>(P);
  const auto i = static_cast<std::size_t>(s);
  return {n * i / p, n * (i + 1) / p};
}

/// Host-side replay of the canonical fold order: given every rank's
/// contribution, compute the allreduce result `algorithm` must produce.
/// `algorithm` must be concrete (not Auto); `gpus_per_node` shapes the
/// Hierarchical fold and is ignored otherwise.
[[nodiscard]] std::vector<float> allreduce_oracle(
    const std::vector<std::vector<float>>& contributions, ReduceOp op,
    CollectiveAlgorithm algorithm, int gpus_per_node = 1);

}  // namespace gcmpi::core
