#include "core/config.hpp"

namespace gcmpi::core {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::None: return "none";
    case Algorithm::MPC: return "MPC";
    case Algorithm::ZFP: return "ZFP";
  }
  return "?";
}

CompressionConfig CompressionConfig::off() { return {}; }

CompressionConfig CompressionConfig::mpc_naive(int dimensionality) {
  CompressionConfig c;
  c.enabled = true;
  c.algorithm = Algorithm::MPC;
  c.mpc_dimensionality = dimensionality;
  c.use_buffer_pool = false;
  c.use_gdrcopy = false;
  c.multi_stream_partitions = false;
  c.cache_device_attributes = false;
  return c;
}

CompressionConfig CompressionConfig::mpc_opt(int dimensionality) {
  CompressionConfig c;
  c.enabled = true;
  c.algorithm = Algorithm::MPC;
  c.mpc_dimensionality = dimensionality;
  return c;
}

CompressionConfig CompressionConfig::zfp_naive(int rate) {
  CompressionConfig c;
  c.enabled = true;
  c.algorithm = Algorithm::ZFP;
  c.zfp_rate = rate;
  c.use_buffer_pool = false;
  c.use_gdrcopy = false;
  c.multi_stream_partitions = false;
  c.cache_device_attributes = false;
  return c;
}

CompressionConfig CompressionConfig::zfp_opt(int rate) {
  CompressionConfig c;
  c.enabled = true;
  c.algorithm = Algorithm::ZFP;
  c.zfp_rate = rate;
  return c;
}

}  // namespace gcmpi::core
