// Configuration of the on-the-fly message compression framework.
//
// "Naive" vs "-OPT" in the paper is a set of orthogonal optimizations; we
// expose each as a toggle so the ablation benchmarks can isolate them:
//   * use_buffer_pool:          pre-allocated GPU buffer pool vs per-message
//                               cudaMalloc/cudaFree            (Sec. IV-B 1+2)
//   * use_gdrcopy:              GDRCopy size readback vs cudaMemcpy (IV-B 3)
//   * multi_stream_partitions:  decomposed MPC kernels on CUDA streams vs
//                               one full-GPU kernel             (Sec. IV-B)
//   * cache_device_attributes:  cudaDeviceGetAttribute + static cache vs
//                               cudaGetDeviceProperties per call (Sec. V-B)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcmpi::core {

enum class Algorithm : std::uint8_t { None = 0, MPC = 1, ZFP = 2 };

[[nodiscard]] const char* algorithm_name(Algorithm a);

struct PartitionRule {
  std::uint64_t max_bytes;  // rule applies to messages up to this size
  int partitions;
};

struct CompressionConfig {
  bool enabled = false;
  Algorithm algorithm = Algorithm::None;

  /// Only device-resident messages of at least this size are compressed
  /// (the paper's "pre-defined threshold").
  std::uint64_t threshold_bytes = 256 * 1024;

  /// Also compress messages that stay inside a node. Fig. 9(c) shows
  /// compression cannot beat NVLink below 8MB, so applications on
  /// NVLink-equipped clusters disable this (a static form of the dynamic
  /// per-path selection the paper proposes as future work).
  bool compress_intra_node = true;

  // --- MPC control parameters (the "A" header fields of Fig. 4) ---
  int mpc_dimensionality = 1;
  std::size_t mpc_chunk_values = 1024;

  // --- ZFP control parameters ---
  int zfp_rate = 16;  // compressed bits per value

  // --- optimization toggles (all false == the naive integration) ---
  bool use_buffer_pool = true;
  bool use_gdrcopy = true;
  bool multi_stream_partitions = true;
  bool cache_device_attributes = true;

  /// Message-size -> partition-count tuning table for MPC-OPT ("we
  /// fine-tune the number of partitions used for different message sizes");
  /// defaults from bench/ablation_partitions on the V100 model.
  std::vector<PartitionRule> partition_table = {
      {512ull << 10, 1}, {2ull << 20, 2}, {8ull << 20, 4}, {~0ull, 8}};

  // --- buffer pool sizing (allocated untimed at init, like MPI_Init) ---
  std::size_t pool_buffer_bytes = 40ull << 20;
  std::size_t pool_buffers = 4;

  [[nodiscard]] int partitions_for(std::uint64_t bytes) const {
    if (!multi_stream_partitions) return 1;
    for (const auto& r : partition_table) {
      if (bytes <= r.max_bytes) return r.partitions;
    }
    return 1;
  }

  /// The paper's proposed schemes as ready-made configurations.
  [[nodiscard]] static CompressionConfig off();
  [[nodiscard]] static CompressionConfig mpc_naive(int dimensionality = 1);
  [[nodiscard]] static CompressionConfig mpc_opt(int dimensionality = 1);
  [[nodiscard]] static CompressionConfig zfp_naive(int rate = 16);
  [[nodiscard]] static CompressionConfig zfp_opt(int rate = 16);
};

}  // namespace gcmpi::core
