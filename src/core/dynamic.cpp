#include "core/dynamic.hpp"

#include <algorithm>

#include "compress/mpc.hpp"

namespace gcmpi::core {

DynamicSelector::DynamicSelector(gpu::GpuSpec gpu, double network_gbs, bool lossy_allowed,
                                 int min_zfp_rate, double intra_network_gbs)
    : gpu_(gpu),
      network_gbs_(network_gbs),
      lossy_allowed_(lossy_allowed),
      min_zfp_rate_(min_zfp_rate),
      intra_network_gbs_(intra_network_gbs) {}

double DynamicSelector::intra_bps() const {
  // Without a measured intra-node LinkSpec, keep the historical NVLink ~=
  // 4x IB approximation so existing decisions are unchanged.
  return (intra_network_gbs_ > 0.0 ? intra_network_gbs_ : network_gbs_ * 4.0) * 1e9;
}

double DynamicSelector::hop_kernel_secs(double bytes, double cr) const {
  const auto b = static_cast<std::uint64_t>(bytes);
  const int blocks = std::max(1, gpu_.sm_count / 4);
  const auto secs = [](Time t) { return static_cast<double>(t.count_ns()) * 1e-9; };
  return secs(model_.mpc_compress(b, static_cast<std::uint64_t>(bytes / cr), blocks, gpu_)) +
         secs(model_.mpc_decompress(static_cast<std::uint64_t>(bytes / cr), b, blocks, gpu_));
}

double DynamicSelector::estimate_mpc_ratio(std::span<const float> message,
                                           std::size_t sample_values) const {
  const std::size_t n = std::min(sample_values, message.size());
  if (n < 64) return 1.0;
  const comp::MpcCodec codec(1);
  std::vector<std::uint8_t> buf(codec.max_compressed_bytes(n));
  const std::size_t size = codec.compress(message.subspan(0, n), buf);
  return static_cast<double>(n * 4) / static_cast<double>(size);
}

std::vector<CandidateCost> DynamicSelector::evaluate(std::uint64_t message_bytes,
                                                     double mpc_cr) const {
  const double wire_bps = network_gbs_ * 1e9;
  auto wire = [&](double bytes) { return Time::seconds(bytes / wire_bps); };
  std::vector<CandidateCost> out;

  // No compression: T = S/B (eq. 1, setup time common to all candidates).
  out.push_back({Algorithm::None, 0, 1.0, wire(static_cast<double>(message_bytes))});

  // MPC: partitioned kernels on both sides + compressed wire (eq. 2).
  {
    const auto compressed =
        static_cast<std::uint64_t>(static_cast<double>(message_bytes) / std::max(1.0, mpc_cr));
    const int blocks = std::max(1, gpu_.sm_count / 4);
    const Time t = model_.mpc_compress(message_bytes / 4, compressed / 4, blocks, gpu_) +
                   wire(static_cast<double>(compressed)) +
                   model_.mpc_decompress(compressed / 4, message_bytes / 4, blocks, gpu_);
    out.push_back({Algorithm::MPC, 0, mpc_cr, t});
  }

  // ZFP at the allowed fixed rates.
  if (lossy_allowed_) {
    for (int rate : {16, 8, 4}) {
      if (rate < min_zfp_rate_) continue;
      const double cr = 32.0 / rate;
      const Time t = model_.zfp_compress(message_bytes, rate, gpu_) +
                     wire(static_cast<double>(message_bytes) / cr) +
                     model_.zfp_decompress(message_bytes, rate, gpu_);
      out.push_back({Algorithm::ZFP, rate, cr, t});
    }
  }

  std::sort(out.begin(), out.end(),
            [](const CandidateCost& a, const CandidateCost& b) { return a.predicted < b.predicted; });
  return out;
}

CandidateCost DynamicSelector::choose(std::span<const float> message) const {
  const double cr = estimate_mpc_ratio(message);
  return evaluate(message.size() * 4, cr).front();
}

void DynamicSelector::apply(const CandidateCost& decision, CompressionConfig& config) {
  switch (decision.algorithm) {
    case Algorithm::None:
      config.enabled = false;
      config.algorithm = Algorithm::None;
      break;
    case Algorithm::MPC:
      config.enabled = true;
      config.algorithm = Algorithm::MPC;
      break;
    case Algorithm::ZFP:
      config.enabled = true;
      config.algorithm = Algorithm::ZFP;
      config.zfp_rate = decision.zfp_rate;
      break;
  }
}

CollectiveAlgorithm DynamicSelector::choose_allreduce_algorithm(
    std::uint64_t message_bytes, int ranks, int nodes, int gpus_per_node,
    double mpc_cr) const {
  if (ranks <= 2 || message_bytes == 0) return CollectiveAlgorithm::Linear;
  const double wire_bps = network_gbs_ * 1e9;
  const double cr = std::max(1.0, mpc_cr);
  const double S = static_cast<double>(message_bytes);
  const int blocks = std::max(1, gpu_.sm_count / 4);
  const auto secs = [](Time t) { return static_cast<double>(t.count_ns()) * 1e-9; };
  const auto hop_kernels = [&](double bytes) {
    // Per hop: recompress the outgoing shard + fused decode of the incoming.
    const auto b = static_cast<std::uint64_t>(bytes);
    return secs(model_.mpc_compress(b, static_cast<std::uint64_t>(bytes / cr), blocks, gpu_)) +
           secs(model_.mpc_decompress(static_cast<std::uint64_t>(bytes / cr), b, blocks, gpu_)) +
           secs(model_.fused_reduce_overhead(b, gpu_));
  };

  // Linear (Rabenseifner): ~log2(P)+1 serialized full-vector exchanges,
  // each compressed once per direction.
  double logp = 1.0;
  for (int p = 1; p < ranks; p <<= 1) logp += 1.0;
  const double linear = logp * (S / (cr * wire_bps) + hop_kernels(S));

  // Ring: 2(P-1) steps of S/P-sized shards; kernels per hop.
  const double shard = S / static_cast<double>(ranks);
  const double steps = 2.0 * static_cast<double>(ranks - 1);
  const double ring = steps * (shard / (cr * wire_bps) + hop_kernels(shard));

  // Hierarchical: intra-node fold (gpn-1 full-vector hops over the fast
  // intra-node link, approximated at 4x the wire) + a leader ring + the
  // intra-node result broadcast.
  double hier = 1e18;  // effectively +inf unless applicable
  if (nodes > 1 && gpus_per_node > 1) {
    const double intra = 2.0 * static_cast<double>(gpus_per_node - 1) * S /
                         (cr * intra_bps());
    const double nshard = S / static_cast<double>(nodes);
    const double nsteps = 2.0 * static_cast<double>(nodes - 1);
    hier = intra + nsteps * (nshard / (cr * wire_bps) + hop_kernels(nshard)) +
           hop_kernels(S) * static_cast<double>(gpus_per_node);
  }

  if (hier < linear && hier < ring) return CollectiveAlgorithm::Hierarchical;
  return ring < linear ? CollectiveAlgorithm::Ring : CollectiveAlgorithm::Linear;
}

CollectiveAlgorithm DynamicSelector::choose_alltoall_algorithm(std::uint64_t block_bytes,
                                                               int ranks,
                                                               double mpc_cr) const {
  // Below the compression engagement floor (CompressionConfig's default
  // threshold) neither schedule launches kernels, so batching has nothing
  // to amortize; same when the sample says the blocks are incompressible.
  constexpr std::uint64_t kCompressFloorBytes = 256ull << 10;
  if (ranks <= 2 || block_bytes == 0) return CollectiveAlgorithm::Linear;
  if (block_bytes < kCompressFloorBytes || mpc_cr <= 1.0) {
    return CollectiveAlgorithm::Linear;
  }

  const double wire_bps = network_gbs_ * 1e9;
  const double cr = std::max(1.0, mpc_cr);
  const double S = static_cast<double>(block_bytes);
  const auto wire_b = static_cast<std::uint64_t>(S / cr);
  const int n_blocks = ranks - 1;
  const auto secs = [](Time t) { return static_cast<double>(t.count_ns()) * 1e-9; };

  // Naive pairwise: every step pays its own full-SM compress launch+sync,
  // the wire, and a full-SM decompress — all serialized across P-1 steps.
  const int full = std::max(1, gpu_.sm_count);
  const double per_step = secs(model_.mpc_compress(block_bytes, wire_b, full, gpu_)) +
                          S / (cr * wire_bps) +
                          secs(model_.mpc_decompress(wire_b, block_bytes, full, gpu_));
  const double naive = static_cast<double>(n_blocks) * per_step;

  // Batched: ONE launch round with sm/(P-1) thread blocks per destination
  // block (the kernels run concurrently, so the elapsed compression time is
  // one divided-SM kernel), then the same P-1 serialized transfers with the
  // decodes enqueued as slices arrive — only the last decode is exposed.
  const int divided = std::max(1, gpu_.sm_count / n_blocks);
  const double batched =
      secs(model_.mpc_compress(block_bytes, wire_b, divided, gpu_)) +
      static_cast<double>(n_blocks) * (S / (cr * wire_bps)) +
      secs(model_.mpc_decompress(wire_b, block_bytes, full, gpu_));

  return batched < naive ? CollectiveAlgorithm::BatchedPairwise
                         : CollectiveAlgorithm::Linear;
}

CollectiveAlgorithm DynamicSelector::choose_bcast_algorithm(std::uint64_t message_bytes,
                                                            int ranks, int nodes,
                                                            int gpus_per_node,
                                                            double mpc_cr) const {
  if (ranks <= 2 || message_bytes == 0 || nodes <= 1 || gpus_per_node <= 1) {
    return CollectiveAlgorithm::Linear;
  }
  const double wire_bps = network_gbs_ * 1e9;
  const double cr = std::max(1.0, mpc_cr);
  const double S = static_cast<double>(message_bytes);
  const auto log2ceil = [](int p) {
    double d = 0.0;
    for (int v = 1; v < p; v <<= 1) d += 1.0;
    return std::max(1.0, d);
  };

  // Flat binomial: the tree depth is log2(P) full-message transits, nearly
  // all crossing IB on a block rank layout, plus one compress and the leaf
  // decode. (Forwarded wire forms: no per-hop recompression.)
  const double kernels = hop_kernel_secs(S, cr);
  const double flat = log2ceil(ranks) * S / (cr * wire_bps) + kernels;

  // Hierarchical: log2(nodes) IB transits of the same wire form, then the
  // intra-node fan-out (gpn-1 copies over NVLink, decoded once per node off
  // the inter-node critical path).
  const double hier = log2ceil(nodes) * S / (cr * wire_bps) +
                      static_cast<double>(gpus_per_node - 1) * S / (cr * intra_bps()) +
                      kernels;
  return hier < flat ? CollectiveAlgorithm::Hierarchical : CollectiveAlgorithm::Linear;
}

CollectiveAlgorithm DynamicSelector::choose_allgather_algorithm(std::uint64_t block_bytes,
                                                                int ranks, int nodes,
                                                                int gpus_per_node,
                                                                double mpc_cr) const {
  if (ranks <= 2 || block_bytes == 0 || nodes <= 1 || gpus_per_node <= 1) {
    return CollectiveAlgorithm::Linear;
  }
  const double wire_bps = network_gbs_ * 1e9;
  const double cr = std::max(1.0, mpc_cr);
  const double B = static_cast<double>(block_bytes);
  const double gpn = static_cast<double>(gpus_per_node);

  // Flat ring: P-1 steps, each moving one block (and paying one block-sized
  // decode); the node-boundary hops carry every block across IB one at a
  // time, so per-message kernel overhead is paid P-1 times.
  const double flat = static_cast<double>(ranks - 1) * (B / (cr * wire_bps) +
                                                        hop_kernel_secs(B, cr));

  // Hierarchical: members stage blocks at the leader over NVLink, the
  // leader ring moves nodes-1 gpn-sized slabs (one compress+decode per
  // slab), and the assembled vector fans back out intra-node.
  const double slab = gpn * B;
  const double total = static_cast<double>(ranks) * B;
  const double hier = (gpn - 1.0) * B / intra_bps() +
                      static_cast<double>(nodes - 1) *
                          (slab / (cr * wire_bps) + hop_kernel_secs(slab, cr)) +
                      total / (cr * intra_bps());
  return hier < flat ? CollectiveAlgorithm::Hierarchical : CollectiveAlgorithm::Linear;
}

CollectiveAlgorithm DynamicSelector::choose_gather_algorithm(std::uint64_t block_bytes,
                                                             int ranks, int nodes,
                                                             int gpus_per_node,
                                                             double mpc_cr) const {
  if (ranks <= 2 || block_bytes == 0 || nodes <= 1 || gpus_per_node <= 1) {
    return CollectiveAlgorithm::Linear;
  }
  const double wire_bps = network_gbs_ * 1e9;
  const double cr = std::max(1.0, mpc_cr);
  const double B = static_cast<double>(block_bytes);
  const double gpn = static_cast<double>(gpus_per_node);

  // Flat: P-1 blocks converge on the root's NIC, each its own compress +
  // decode launch; the NIC ingress serializes the inter-node ones.
  const double flat = static_cast<double>(ranks - 1) * (B / (cr * wire_bps) +
                                                        hop_kernel_secs(B, cr));

  // Hierarchical: the intra-node staging rides NVLink, then nodes-1 slabs
  // (gpn blocks each) cross IB with one compress+decode per slab.
  const double slab = gpn * B;
  const double hier = (gpn - 1.0) * B / intra_bps() +
                      static_cast<double>(nodes - 1) *
                          (slab / (cr * wire_bps) + hop_kernel_secs(slab, cr));
  return hier < flat ? CollectiveAlgorithm::Hierarchical : CollectiveAlgorithm::Linear;
}

CollectiveAlgorithm DynamicSelector::choose_scatter_algorithm(std::uint64_t block_bytes,
                                                              int ranks, int nodes,
                                                              int gpus_per_node,
                                                              double mpc_cr) const {
  // Same traffic shape as gather with the direction reversed (the root's
  // batched compress amortizes the launch the same way the leaders' slab
  // staging does), so the crossover is shared.
  return choose_gather_algorithm(block_bytes, ranks, nodes, gpus_per_node, mpc_cr);
}

}  // namespace gcmpi::core
