#include "core/dynamic.hpp"

#include <algorithm>

#include "compress/mpc.hpp"

namespace gcmpi::core {

DynamicSelector::DynamicSelector(gpu::GpuSpec gpu, double network_gbs, bool lossy_allowed,
                                 int min_zfp_rate)
    : gpu_(gpu),
      network_gbs_(network_gbs),
      lossy_allowed_(lossy_allowed),
      min_zfp_rate_(min_zfp_rate) {}

double DynamicSelector::estimate_mpc_ratio(std::span<const float> message,
                                           std::size_t sample_values) const {
  const std::size_t n = std::min(sample_values, message.size());
  if (n < 64) return 1.0;
  const comp::MpcCodec codec(1);
  std::vector<std::uint8_t> buf(codec.max_compressed_bytes(n));
  const std::size_t size = codec.compress(message.subspan(0, n), buf);
  return static_cast<double>(n * 4) / static_cast<double>(size);
}

std::vector<CandidateCost> DynamicSelector::evaluate(std::uint64_t message_bytes,
                                                     double mpc_cr) const {
  const double wire_bps = network_gbs_ * 1e9;
  auto wire = [&](double bytes) { return Time::seconds(bytes / wire_bps); };
  std::vector<CandidateCost> out;

  // No compression: T = S/B (eq. 1, setup time common to all candidates).
  out.push_back({Algorithm::None, 0, 1.0, wire(static_cast<double>(message_bytes))});

  // MPC: partitioned kernels on both sides + compressed wire (eq. 2).
  {
    const auto compressed =
        static_cast<std::uint64_t>(static_cast<double>(message_bytes) / std::max(1.0, mpc_cr));
    const int blocks = std::max(1, gpu_.sm_count / 4);
    const Time t = model_.mpc_compress(message_bytes / 4, compressed / 4, blocks, gpu_) +
                   wire(static_cast<double>(compressed)) +
                   model_.mpc_decompress(compressed / 4, message_bytes / 4, blocks, gpu_);
    out.push_back({Algorithm::MPC, 0, mpc_cr, t});
  }

  // ZFP at the allowed fixed rates.
  if (lossy_allowed_) {
    for (int rate : {16, 8, 4}) {
      if (rate < min_zfp_rate_) continue;
      const double cr = 32.0 / rate;
      const Time t = model_.zfp_compress(message_bytes, rate, gpu_) +
                     wire(static_cast<double>(message_bytes) / cr) +
                     model_.zfp_decompress(message_bytes, rate, gpu_);
      out.push_back({Algorithm::ZFP, rate, cr, t});
    }
  }

  std::sort(out.begin(), out.end(),
            [](const CandidateCost& a, const CandidateCost& b) { return a.predicted < b.predicted; });
  return out;
}

CandidateCost DynamicSelector::choose(std::span<const float> message) const {
  const double cr = estimate_mpc_ratio(message);
  return evaluate(message.size() * 4, cr).front();
}

void DynamicSelector::apply(const CandidateCost& decision, CompressionConfig& config) {
  switch (decision.algorithm) {
    case Algorithm::None:
      config.enabled = false;
      config.algorithm = Algorithm::None;
      break;
    case Algorithm::MPC:
      config.enabled = true;
      config.algorithm = Algorithm::MPC;
      break;
    case Algorithm::ZFP:
      config.enabled = true;
      config.algorithm = Algorithm::ZFP;
      config.zfp_rate = decision.zfp_rate;
      break;
  }
}

}  // namespace gcmpi::core
