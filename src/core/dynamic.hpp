// Dynamic compression selection — the paper's future work (Sec. IX):
// "explore the dynamic design to automatically determine the use of
// compression or selection of different algorithms for specific
// communication calls based on the compression costs and communication
// time".
//
// The selector estimates the MPC compression ratio from a small real
// sample of the message, evaluates the analytical cost model of Sec. II-A
// (eq. 2) for every candidate scheme, and picks the minimum-latency one:
//
//   T' = T_compr + T_oh_compr + S/(CR*B) + T_decompr + T_oh_decompr
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/kernel_cost.hpp"
#include "core/collective.hpp"
#include "core/config.hpp"
#include "gpu/cost_model.hpp"
#include "sim/time.hpp"

namespace gcmpi::core {

using sim::Time;

struct CandidateCost {
  Algorithm algorithm = Algorithm::None;
  int zfp_rate = 0;          // 0 for None/MPC
  double estimated_cr = 1.0;
  Time predicted;            // end-to-end predicted transfer latency
};

class DynamicSelector {
 public:
  /// `network_gbs`: bandwidth of the link the message will traverse.
  /// `lossy_allowed`: whether the application tolerates ZFP's fixed-rate
  /// loss for this buffer (AWP at rate 4 does not — Sec. VII-A).
  /// `intra_network_gbs`: bandwidth of the intra-node link, used by the
  /// hierarchical collective pricing to weigh NVLink fan-out against IB
  /// transits; 0 keeps the historical 4x-the-wire approximation.
  DynamicSelector(gpu::GpuSpec gpu, double network_gbs, bool lossy_allowed = true,
                  int min_zfp_rate = 8, double intra_network_gbs = 0.0);

  /// Estimate the MPC ratio by really compressing `sample_values` values
  /// of the message (cheap: default 16K values).
  [[nodiscard]] double estimate_mpc_ratio(std::span<const float> message,
                                          std::size_t sample_values = 16384) const;

  /// Evaluate every candidate for a `message_bytes`-sized device message
  /// whose sampled MPC ratio is `mpc_cr`; sorted best-first.
  [[nodiscard]] std::vector<CandidateCost> evaluate(std::uint64_t message_bytes,
                                                    double mpc_cr) const;

  /// One-call convenience: sample + evaluate + pick.
  [[nodiscard]] CandidateCost choose(std::span<const float> message) const;

  /// Apply a decision onto a config (keeps all other knobs).
  static void apply(const CandidateCost& decision, CompressionConfig& config);

  /// Cost-model companion to core::resolve_allreduce_algorithm: predict the
  /// completion time of each allreduce algorithm for a `message_bytes`
  /// vector over `ranks` ranks (nodes x gpus_per_node topology) whose
  /// sampled MPC ratio is `mpc_cr`, and return the fastest. Linear moves
  /// the full vector O(log P) times; the ring algorithms move ~2S of
  /// compressed shards plus per-hop kernel time (gZCCL-style analysis).
  [[nodiscard]] CollectiveAlgorithm choose_allreduce_algorithm(
      std::uint64_t message_bytes, int ranks, int nodes, int gpus_per_node,
      double mpc_cr) const;

  /// Cost-model companion to core::resolve_alltoall_algorithm: price the
  /// naive pairwise alltoall (P-1 serialized full-SM compress launches,
  /// one per destination block) against the batched engine (one launch
  /// round with the SMs divided across the P-1 blocks, decodes overlapped
  /// with the remaining transfers) from the kernel-cost batch terms, and
  /// return Linear (naive) or BatchedPairwise. Below the compression floor
  /// — or when the sampled ratio says the data is incompressible — there
  /// are no kernels to batch and the naive path wins by default.
  [[nodiscard]] CollectiveAlgorithm choose_alltoall_algorithm(std::uint64_t block_bytes,
                                                              int ranks,
                                                              double mpc_cr) const;

  /// Cost-model companion to core::resolve_bcast_algorithm: price the flat
  /// binomial tree (log2 P serialized wire transits of the whole message,
  /// most of them crossing IB) against the hierarchical staging (log2 nodes
  /// IB transits + the NVLink fan-out + one decode per node off the
  /// critical path) and return Linear or Hierarchical.
  [[nodiscard]] CollectiveAlgorithm choose_bcast_algorithm(std::uint64_t message_bytes,
                                                           int ranks, int nodes,
                                                           int gpus_per_node,
                                                           double mpc_cr) const;

  /// Flat ring of P-1 per-rank blocks vs intra-node gather + leader ring
  /// of node slabs + intra-node slab broadcast.
  [[nodiscard]] CollectiveAlgorithm choose_allgather_algorithm(std::uint64_t block_bytes,
                                                               int ranks, int nodes,
                                                               int gpus_per_node,
                                                               double mpc_cr) const;

  /// P-1 individually compressed blocks converging on the root's NIC vs
  /// nodes-1 leader slabs (one compress+decode per node).
  [[nodiscard]] CollectiveAlgorithm choose_gather_algorithm(std::uint64_t block_bytes,
                                                            int ranks, int nodes,
                                                            int gpus_per_node,
                                                            double mpc_cr) const;

  /// Mirror of choose_gather_algorithm for the root-to-ranks direction
  /// (the root batch-compresses one slab per remote node).
  [[nodiscard]] CollectiveAlgorithm choose_scatter_algorithm(std::uint64_t block_bytes,
                                                             int ranks, int nodes,
                                                             int gpus_per_node,
                                                             double mpc_cr) const;

 private:
  [[nodiscard]] double intra_bps() const;
  /// MPC compress + decompress kernel seconds for one `bytes`-sized hop at
  /// ratio `cr` (quarter-SM partitioned launches, the engines' shape).
  [[nodiscard]] double hop_kernel_secs(double bytes, double cr) const;

  gpu::GpuSpec gpu_;
  double network_gbs_;
  bool lossy_allowed_;
  int min_zfp_rate_;
  double intra_network_gbs_;
  comp::KernelCostModel model_;
};

}  // namespace gcmpi::core
