#include "core/header.hpp"

#include <cstring>
#include <stdexcept>

namespace gcmpi::core {

namespace {
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
T get(std::span<const std::uint8_t> in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size()) throw std::invalid_argument("CompressionHeader: truncated");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

std::size_t CompressionHeader::wire_bytes() const {
  const std::size_t base = 1 + 1 + 8 + 8 + 4 + 2 + 4 + 2 + 2 + partition_bytes.size() * 4;
  return base + (pipeline_chunks >= 2 ? 4 + 8 : 0);
}

std::vector<std::uint8_t> CompressionHeader::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_bytes());
  put<std::uint8_t>(out, static_cast<std::uint8_t>(algorithm));
  put<std::uint8_t>(out, compressed ? 1 : 0);
  put<std::uint64_t>(out, original_bytes);
  put<std::uint64_t>(out, compressed_bytes);
  put<std::uint32_t>(out, payload_crc32c);
  put<std::uint16_t>(out, mpc_dimensionality);
  put<std::uint32_t>(out, mpc_chunk_values);
  put<std::uint16_t>(out, zfp_rate);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(partition_bytes.size()));
  for (std::uint32_t b : partition_bytes) put<std::uint32_t>(out, b);
  if (pipeline_chunks >= 2) {
    put<std::uint32_t>(out, pipeline_chunks);
    put<std::uint64_t>(out, pipeline_chunk_bytes);
  }
  return out;
}

CompressionHeader CompressionHeader::deserialize(std::span<const std::uint8_t> in) {
  CompressionHeader h;
  std::size_t pos = 0;
  const auto alg = get<std::uint8_t>(in, pos);
  if (alg > 2) throw std::invalid_argument("CompressionHeader: bad algorithm");
  h.algorithm = static_cast<Algorithm>(alg);
  h.compressed = get<std::uint8_t>(in, pos) != 0;
  h.original_bytes = get<std::uint64_t>(in, pos);
  h.compressed_bytes = get<std::uint64_t>(in, pos);
  h.payload_crc32c = get<std::uint32_t>(in, pos);
  h.mpc_dimensionality = get<std::uint16_t>(in, pos);
  h.mpc_chunk_values = get<std::uint32_t>(in, pos);
  h.zfp_rate = get<std::uint16_t>(in, pos);
  const auto nparts = get<std::uint16_t>(in, pos);
  h.partition_bytes.reserve(nparts);
  for (std::uint16_t i = 0; i < nparts; ++i) {
    h.partition_bytes.push_back(get<std::uint32_t>(in, pos));
  }
  if (pos != in.size()) {
    // Pipeline announcement record, present only on pipelined RTS headers.
    h.pipeline_chunks = get<std::uint32_t>(in, pos);
    h.pipeline_chunk_bytes = get<std::uint64_t>(in, pos);
    if (h.pipeline_chunks < 2) {
      throw std::invalid_argument("CompressionHeader: bad pipeline record");
    }
  }
  if (pos != in.size()) throw std::invalid_argument("CompressionHeader: trailing bytes");
  return h;
}

}  // namespace gcmpi::core
