// Compression header piggybacked on the rendezvous RTS packet (Fig. 3/4).
//
// Carries the control parameters ("A": algorithm + its kernel
// configuration) and the results of compression ("B": compressed sizes,
// per-partition sizes for MPC-OPT's multi-stream scheme) so the receiver
// can launch the matching decompression kernels without an extra message
// exchange. The struct serializes to a compact wire format so its on-wire
// size is charged accurately on the RTS.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"

namespace gcmpi::core {

struct CompressionHeader {
  Algorithm algorithm = Algorithm::None;
  bool compressed = false;  // false => payload sent raw (e.g. fallback)
  std::uint64_t original_bytes = 0;
  std::uint64_t compressed_bytes = 0;

  // CRC32C over the wire payload exactly as transmitted (compressed bytes
  // when `compressed`, raw bytes otherwise). Computed only when the wire
  // reliability layer is active (see DESIGN.md); 0 otherwise. Verified by
  // the receiver before decompression so a flipped bit in a compressed
  // stream can never fan out into the user buffer.
  std::uint32_t payload_crc32c = 0;

  // MPC control parameters + per-partition compressed sizes (bytes).
  std::uint16_t mpc_dimensionality = 1;
  std::uint32_t mpc_chunk_values = 1024;
  std::vector<std::uint32_t> partition_bytes;

  // ZFP control parameters (1D fixed-rate as used in the paper).
  std::uint16_t zfp_rate = 16;

  // Chunked pipelined rendezvous announcement (RTS only). When >= 2 the
  // payload follows as `pipeline_chunks` separate data packets of up to
  // `pipeline_chunk_bytes` original bytes each, every one carrying its own
  // per-chunk header sub-record and CRC32C. Serialized as a trailing record
  // only when pipelining is announced, so serial headers stay byte-for-byte
  // identical to the pre-pipeline wire format.
  std::uint32_t pipeline_chunks = 0;
  std::uint64_t pipeline_chunk_bytes = 0;

  [[nodiscard]] int partitions() const {
    return partition_bytes.empty() ? 1 : static_cast<int>(partition_bytes.size());
  }

  /// Size of the serialized header as carried in the RTS packet.
  [[nodiscard]] std::size_t wire_bytes() const;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static CompressionHeader deserialize(std::span<const std::uint8_t> in);

  bool operator==(const CompressionHeader&) const = default;
};

}  // namespace gcmpi::core
