#include "core/manager.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "fault/injector.hpp"

namespace gcmpi::core {

using sim::Phase;

namespace {

constexpr Time kZfpStreamFieldCreation = Time::us(9);  // Sec. V-A

void charge(Timeline& tl, Time t, Breakdown* bd, Phase phase) {
  tl.advance(t);
  if (bd != nullptr) bd->add(phase, t);
}

/// Contiguous value ranges for MPC-OPT's data partitioning (Fig. 7); each
/// partition is chunk-aligned so chunk/thread-block boundaries never split.
struct Partition {
  std::size_t offset;  // in values
  std::size_t count;
};

std::vector<Partition> make_partitions(std::size_t n_values, int requested,
                                       std::size_t chunk) {
  std::vector<Partition> parts;
  const std::size_t max_parts = std::max<std::size_t>(1, n_values / chunk);
  const std::size_t n = std::min<std::size_t>(static_cast<std::size_t>(std::max(1, requested)), max_parts);
  std::size_t per = (n_values + n - 1) / n;
  per = ((per + chunk - 1) / chunk) * chunk;
  std::size_t off = 0;
  while (off < n_values) {
    const std::size_t cnt = std::min(per, n_values - off);
    parts.push_back({off, cnt});
    off += cnt;
  }
  return parts;
}

}  // namespace

CompressionManager::CompressionManager(gpu::Gpu& gpu, CompressionConfig config)
    : gpu_(gpu), config_(std::move(config)) {
  if (config_.enabled && config_.use_buffer_pool) {
    // Pre-allocated at init time (MPI_Init), hence untimed (Sec. IV-B 1).
    pool_.emplace(gpu_, config_.pool_buffer_bytes, config_.pool_buffers);
  }
}

bool CompressionManager::should_compress(const void* buf, std::uint64_t bytes) const {
  return config_.enabled && config_.algorithm != Algorithm::None &&
         bytes >= config_.threshold_bytes && bytes % 4 == 0 && bytes >= 16 &&
         gpu_.owns(buf);
}

CompressionManager::AdaptiveGuard::AdaptiveGuard(CompressionManager& mgr, Timeline& tl,
                                                 const char* scope, std::uint64_t bytes,
                                                 bool eligible)
    : mgr_(mgr),
      saved_algorithm_(mgr.config_.algorithm),
      saved_zfp_rate_(mgr.config_.zfp_rate) {
  if (mgr.adapt_ == nullptr || !eligible) return;
  const CompressChoice choice = mgr.adapt_->choose_codec(tl.now(), mgr.rank_id_, scope, bytes);
  active_ = true;
  if (!choice.use_compression) {
    // The policy degrades this message to the ordinary raw-bypass path.
    mgr.config_.algorithm = Algorithm::None;
    return;
  }
  mgr.config_.algorithm = choice.algorithm;
  if (choice.algorithm == Algorithm::ZFP && choice.zfp_rate > 0) {
    mgr.config_.zfp_rate = choice.zfp_rate;
  }
}

CompressionManager::AdaptiveGuard::~AdaptiveGuard() {
  if (!active_) return;
  mgr_.config_.algorithm = saved_algorithm_;
  mgr_.config_.zfp_rate = saved_zfp_rate_;
}

void CompressionManager::acquire_staging(Timeline& tl, std::size_t bytes, Breakdown* bd,
                                         gpu::BufferPool::Lease& lease,
                                         void*& naive_buffer, bool& used_pool) {
  ++staging_acquisitions_;
  if (config_.use_buffer_pool) {
    lease = pool_->acquire(tl, bytes, bd);
    naive_buffer = nullptr;
    used_pool = true;
  } else {
    naive_buffer = gpu_.malloc_device(tl, bytes, bd);
    used_pool = false;
  }
}

PlanEntry* CompressionManager::plan_entry(PlanKind kind, Algorithm algo, std::uint64_t bytes,
                                          int param) {
  if (!plan_cache_enabled_) return nullptr;
  const PlanKey key{kind, algo, bytes, param};
  auto [it, inserted] = plans_.try_emplace(key);
  if (inserted) it->second.key = key;
  return &it->second;
}

int CompressionManager::plan_slot_acquire(Timeline& tl, PlanEntry* plan, std::size_t capacity,
                                          Breakdown* bd, gpu::BufferPool::Lease& lease,
                                          void*& naive_buffer, bool& used_pool) {
  if (plan == nullptr) {
    acquire_staging(tl, capacity, bd, lease, naive_buffer, used_pool);
    return -1;
  }
  if (plan->capacity < capacity) plan->capacity = capacity;
  for (std::size_t i = 0; i < plan->slots.size(); ++i) {
    PlanSlot& slot = plan->slots[i];
    if (slot.in_use) continue;
    slot.in_use = true;
    lease = slot.lease;
    naive_buffer = slot.naive_buffer;
    used_pool = slot.used_pool;
    ++plan->hits;
    ++plan_stats_.hits;
    return static_cast<int>(i);
  }
  // No free slot: grow the plan by one (a real acquisition). Steady-state
  // iterations find every slot free and never reach here.
  PlanSlot slot;
  acquire_staging(tl, plan->capacity, bd, slot.lease, slot.naive_buffer, slot.used_pool);
  slot.in_use = true;
  lease = slot.lease;
  naive_buffer = slot.naive_buffer;
  used_pool = slot.used_pool;
  plan->slots.push_back(slot);
  ++plan->misses;
  ++plan_stats_.misses;
  return static_cast<int>(plan->slots.size() - 1);
}

void CompressionManager::plan_slot_release(PlanEntry* plan, int slot) {
  if (plan == nullptr || slot < 0) return;
  plan->slots[static_cast<std::size_t>(slot)].in_use = false;
}

void CompressionManager::plan_mark_ready(Timeline& tl, PlanEntry* plan, Breakdown* bd) {
  if (plan == nullptr || plan->graph_ready) return;
  // One-time capture + cudaGraphInstantiate of the launch sequence that
  // just ran; every later message replays it with a single graph_launch.
  charge(tl, gpu_.costs().graph_instantiate, bd, Phase::Other);
  plan->graph_ready = true;
  ++plan_stats_.graphs_instantiated;
}

CompressionManager::WireData CompressionManager::compress_for_send(
    Timeline& tl, const void* buf, std::uint64_t bytes) {
  const Time started = tl.now();
  WireData wire;
  wire.header.original_bytes = bytes;
  ++stats_.messages_considered;

  // Consult the closed-loop policy for statically qualified messages; its
  // codec (or raw-degrade) choice overrides config_ for this call only.
  AdaptiveGuard adapt_guard(*this, tl, kScopeP2P, bytes, should_compress(buf, bytes));

  if (!should_compress(buf, bytes)) {
    wire.data = buf;
    wire.bytes = bytes;
    wire.header.compressed = false;
    wire.header.compressed_bytes = bytes;
    stats_.original_bytes += bytes;
    stats_.wire_bytes += bytes;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, EventKind::RawBypass, Algorithm::None, bytes,
                          bytes, Time::zero()});
    }
    return wire;
  }

  // Injected compression-kernel faults (chaos testing). A hard launch
  // failure is detected immediately and the message degrades to a raw
  // send; a truncated-output fault is only caught after the kernels ran,
  // via the size validation below — both are survivable by design.
  fault::CodecFault injected;
  if (fault_ != nullptr) injected = fault_->on_compress(rank_id_);
  if (injected.fail) {
    // The launch itself errored: charge the wasted enqueue, then send raw.
    tl.advance(gpu_.costs().kernel_launch);
    wire.data = buf;
    wire.bytes = bytes;
    wire.header.compressed = false;
    wire.header.compressed_bytes = bytes;
    ++stats_.messages_fallback_raw;
    ++stats_.codec_faults;
    stats_.original_bytes += bytes;
    stats_.wire_bytes += bytes;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, EventKind::CodecFault, config_.algorithm, bytes,
                          bytes, tl.now() - started});
    }
    return wire;
  }

  const auto* values = static_cast<const float*>(buf);
  const std::size_t n = bytes / 4;
  Breakdown* bd = &sender_bd_;

  if (config_.algorithm == Algorithm::MPC) {
    const comp::MpcCodec codec(config_.mpc_dimensionality, config_.mpc_chunk_values);
    const std::size_t capacity = codec.max_compressed_bytes(n) +
                                 16 * static_cast<std::size_t>(config_.partitions_for(bytes));
    wire.plan = plan_entry(PlanKind::SendP2P, Algorithm::MPC, bytes,
                           config_.partitions_for(bytes));
    const bool plan_mode = wire.plan != nullptr && wire.plan->graph_ready;
    wire.plan_slot = plan_slot_acquire(tl, wire.plan, capacity, bd, wire.lease,
                                       wire.naive_buffer, wire.used_pool);
    auto* out = static_cast<std::uint8_t*>(wire.used_pool ? wire.lease.data : wire.naive_buffer);

    const MpcOutput result = run_mpc_compress(tl, values, n, out, capacity, bd, plan_mode);
    plan_mark_ready(tl, wire.plan, bd);

    wire.header.algorithm = Algorithm::MPC;
    wire.header.mpc_dimensionality = static_cast<std::uint16_t>(config_.mpc_dimensionality);
    wire.header.mpc_chunk_values = static_cast<std::uint32_t>(config_.mpc_chunk_values);
    wire.header.partition_bytes = result.partition_bytes;
    wire.header.compressed_bytes = result.total_bytes;

    if (result.total_bytes >= bytes) {
      // Compression did not pay off: fall back to sending the raw buffer.
      // The kernel time was already spent (and charged) — this is the real
      // cost of a lossless compressor on incompressible data.
      release_send(tl, wire);
      wire.data = buf;
      wire.bytes = bytes;
      wire.header.compressed = false;
      wire.header.compressed_bytes = bytes;
      wire.header.partition_bytes.clear();
      ++stats_.messages_fallback_raw;
      stats_.original_bytes += bytes;
      stats_.wire_bytes += bytes;
      if (telemetry_ != nullptr) {
        telemetry_->record({started, rank_id_, EventKind::FallbackRaw, Algorithm::MPC, bytes,
                            bytes, tl.now() - started});
      }
      return wire;
    }
    wire.data = out;
    wire.bytes = result.total_bytes;
    wire.header.compressed = true;
  } else {  // ZFP
    const comp::ZfpCodec codec(config_.zfp_rate);
    const comp::ZfpField field = comp::ZfpField::d1(n);
    const std::size_t out_bytes = codec.compressed_bytes(field);
    wire.plan = plan_entry(PlanKind::SendP2P, Algorithm::ZFP, bytes, config_.zfp_rate);
    const bool plan_mode = wire.plan != nullptr && wire.plan->graph_ready;
    wire.plan_slot = plan_slot_acquire(tl, wire.plan, out_bytes, bd, wire.lease,
                                       wire.naive_buffer, wire.used_pool);
    auto* out = static_cast<std::uint8_t*>(wire.used_pool ? wire.lease.data : wire.naive_buffer);

    const std::uint64_t written = run_zfp_compress(tl, values, n, out, out_bytes, bd, plan_mode);
    plan_mark_ready(tl, wire.plan, bd);

    wire.header.algorithm = Algorithm::ZFP;
    wire.header.zfp_rate = static_cast<std::uint16_t>(config_.zfp_rate);
    wire.header.compressed_bytes = written;
    wire.header.compressed = true;
    wire.data = out;
    wire.bytes = written;
  }

  if (injected.truncate) {
    // The kernels ran but the device-reported output size disagrees with
    // the bytes actually written (truncated stream). Caught by the size
    // validation on readback; never put a short stream on the wire —
    // degrade to raw instead.
    release_send(tl, wire);
    wire.data = buf;
    wire.bytes = bytes;
    wire.header.compressed = false;
    wire.header.compressed_bytes = bytes;
    wire.header.partition_bytes.clear();
    ++stats_.messages_fallback_raw;
    ++stats_.codec_faults;
    stats_.original_bytes += bytes;
    stats_.wire_bytes += bytes;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, EventKind::CodecFault, config_.algorithm, bytes,
                          bytes, tl.now() - started});
    }
    return wire;
  }

  ++stats_.messages_compressed;
  stats_.original_bytes += bytes;
  stats_.wire_bytes += wire.bytes;
  if (telemetry_ != nullptr) {
    telemetry_->record({started, rank_id_, EventKind::Compress, config_.algorithm, bytes,
                        wire.bytes, tl.now() - started});
  }
  return wire;
}

CompressionManager::MpcOutput CompressionManager::run_mpc_compress(
    Timeline& tl, const float* values, std::size_t n, std::uint8_t* out,
    std::size_t out_capacity, Breakdown* bd, bool plan_mode) {
  const comp::MpcCodec codec(config_.mpc_dimensionality, config_.mpc_chunk_values);
  const auto parts = make_partitions(n, config_.partitions_for(n * 4), config_.mpc_chunk_values);
  const int n_parts = static_cast<int>(parts.size());
  const int blocks_per_kernel =
      config_.multi_stream_partitions
          ? std::max(1, gpu_.spec().sm_count / std::max(1, n_parts))
          : gpu_.spec().sm_count;  // original MPC always uses every SM

  // d_off scratch: cudaMalloc'ed per message in the naive scheme, pooled in
  // MPC-OPT; either way it is memset to -1 before the kernels run. A cached
  // plan owns a persistent d_off and replays the memset as a graph node.
  const std::size_t d_off_bytes = codec.chunk_count(n) * 4;
  if (!plan_mode) {
    if (!config_.use_buffer_pool) {
      charge(tl, gpu_.costs().cuda_malloc(d_off_bytes), bd, Phase::MemoryAllocation);
    }
    charge(tl, gpu_.costs().cuda_memset_launch, bd, Phase::MemoryAllocation);
  }

  // Launch one compression kernel per partition, round-robin over streams.
  // Plan mode submits the whole round as one captured graph: a single
  // graph_launch on the first stream, the remaining nodes cost no host time.
  MpcOutput result;
  std::size_t out_off = 0;
  std::vector<int> used_streams;
  for (int p = 0; p < n_parts; ++p) {
    const auto& part = parts[static_cast<std::size_t>(p)];
    const std::size_t cap = codec.max_compressed_bytes(part.count);
    if (out_off + cap > out_capacity) throw std::runtime_error("MPC staging overflow");
    const std::size_t psize = codec.compress({values + part.offset, part.count},
                                             {out + out_off, cap});
    const int sid = p % gpu_.num_streams();
    used_streams.push_back(sid);
    const Time cost = cost_model_.mpc_compress(part.count * 4, psize, blocks_per_kernel,
                                               gpu_.spec());
    if (!plan_mode) {
      gpu_.stream(sid).launch(tl, cost, bd, Phase::CompressionKernel);
    } else if (p == 0) {
      gpu_.stream(sid).launch_graph(tl, cost, bd, Phase::CompressionKernel);
    } else {
      gpu_.stream(sid).enqueue_graphed(tl, cost);
    }
    result.partition_bytes.push_back(static_cast<std::uint32_t>(psize));
    out_off += psize;
  }
  result.total_bytes = out_off;

  // Wait for all partition kernels.
  for (int sid : used_streams) {
    gpu_.stream(sid).synchronize(tl, bd, Phase::CompressionKernel);
  }

  // Combine the partitions into one contiguous buffer in fixed order
  // (Fig. 7). One D2D copy per partition on the copy stream (graph nodes
  // under a cached plan).
  if (n_parts > 1) {
    gpu::Stream& copy_stream = gpu_.stream(0);
    for (std::uint32_t psize : result.partition_bytes) {
      if (!plan_mode) {
        copy_stream.launch(tl, gpu_.costs().d2d_copy(psize), bd, Phase::CombinePartitions);
      } else {
        copy_stream.enqueue_graphed(tl, gpu_.costs().d2d_copy(psize));
      }
    }
    copy_stream.synchronize(tl, bd, Phase::CombinePartitions);
  }

  // Read back the compressed sizes (the 4-byte control words): cudaMemcpy
  // costs ~20us per call; GDRCopy reduces it to a few microseconds.
  for (int p = 0; p < n_parts; ++p) {
    const std::uint32_t device_word = result.partition_bytes[static_cast<std::size_t>(p)];
    std::uint32_t host_word = 0;
    if (config_.use_gdrcopy) {
      gpu_.gdrcopy_small(tl, &host_word, &device_word, 4, bd);
    } else {
      gpu_.memcpy_d2h_small(tl, &host_word, &device_word, 4, bd);
    }
  }

  if (!plan_mode && !config_.use_buffer_pool) {
    charge(tl, gpu_.costs().cuda_free, bd, Phase::MemoryAllocation);  // d_off
  }
  return result;
}

std::uint64_t CompressionManager::run_zfp_compress(Timeline& tl, const float* values,
                                                   std::size_t n, std::uint8_t* out,
                                                   std::size_t out_capacity,
                                                   Breakdown* bd, bool plan_mode) {
  if (!plan_mode) {
    // zfp_stream / zfp_field construction on the CPU (cheap, Sec. V-A);
    // cached plans hold the objects and skip the rebuild.
    charge(tl, kZfpStreamFieldCreation, bd, Phase::StreamFieldCreation);
    // get_max_grid_dims: the dominant naive overhead vs the ZFP-OPT cache.
    if (config_.cache_device_attributes) {
      (void)gpu_.query_max_grid_dim_cached(tl, bd);
    } else {
      (void)gpu_.query_max_grid_dim_via_properties(tl, bd);
    }
  }

  const comp::ZfpCodec codec(config_.zfp_rate);
  const comp::ZfpField field = comp::ZfpField::d1(n);
  const std::size_t written = codec.compress({values, n}, field, {out, out_capacity});

  const Time cost = cost_model_.zfp_compress(n * 4, config_.zfp_rate, gpu_.spec());
  if (plan_mode) {
    gpu_.stream(0).launch_graph(tl, cost, bd, Phase::CompressionKernel);
  } else {
    gpu_.stream(0).launch(tl, cost, bd, Phase::CompressionKernel);
  }
  gpu_.stream(0).synchronize(tl, bd, Phase::CompressionKernel);
  return written;
}

CompressionManager::BatchWire CompressionManager::compress_batch(
    Timeline& tl, const std::vector<BatchInput>& blocks) {
  const Time started = tl.now();
  BatchWire batch;
  batch.blocks.resize(blocks.size());

  // One policy consultation covers the whole batch (it is one launch and
  // one fault domain); the choice applies to every eligible block.
  std::uint64_t adapt_bytes = 0;
  if (adapt_ != nullptr) {
    for (const auto& in : blocks) {
      if (should_compress(in.buf, in.bytes)) adapt_bytes += in.bytes;
    }
  }
  AdaptiveGuard adapt_guard(*this, tl, kScopeBatch, adapt_bytes, adapt_bytes > 0);

  // Default every block to a raw view of the caller's buffer; the batched
  // kernels below upgrade the eligible ones to slab slices.
  std::uint64_t original_total = 0;
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    auto& b = batch.blocks[i];
    b.data = blocks[i].buf;
    b.bytes = blocks[i].bytes;
    b.header.original_bytes = blocks[i].bytes;
    b.header.compressed_bytes = blocks[i].bytes;
    ++stats_.messages_considered;
    original_total += blocks[i].bytes;
    if (should_compress(blocks[i].buf, blocks[i].bytes)) eligible.push_back(i);
  }

  const auto count_raw_bytes = [&] {
    for (const auto& in : blocks) {
      stats_.original_bytes += in.bytes;
      stats_.wire_bytes += in.bytes;
    }
  };
  const auto record_event = [&](EventKind kind, Algorithm algo, std::uint64_t wire_total) {
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, kind, algo, original_total, wire_total,
                          tl.now() - started, kScopeBatch});
    }
  };

  if (eligible.empty()) {
    count_raw_bytes();
    record_event(EventKind::RawBypass, Algorithm::None, original_total);
    return batch;
  }

  // One batched launch means one fault consultation covering every block:
  // a hard launch failure degrades the whole batch to raw sends.
  fault::CodecFault injected;
  if (fault_ != nullptr) injected = fault_->on_compress(rank_id_);
  if (injected.fail) {
    tl.advance(gpu_.costs().kernel_launch);
    stats_.messages_fallback_raw += eligible.size();
    ++stats_.codec_faults;
    count_raw_bytes();
    record_event(EventKind::CodecFault, config_.algorithm, original_total);
    return batch;
  }

  Breakdown* bd = &sender_bd_;
  const int n_batch = static_cast<int>(eligible.size());
  std::uint64_t eligible_total = 0;
  for (std::size_t idx : eligible) eligible_total += blocks[idx].bytes;
  std::vector<std::uint64_t> psize(eligible.size(), 0);
  std::vector<std::size_t> offset(eligible.size(), 0);
  std::vector<std::size_t> cap(eligible.size(), 0);
  std::uint8_t* slab = nullptr;

  if (config_.algorithm == Algorithm::MPC) {
    const comp::MpcCodec codec(config_.mpc_dimensionality, config_.mpc_chunk_values);
    std::size_t slab_capacity = 0;
    std::size_t d_off_bytes = 0;
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      const std::size_t n = blocks[eligible[k]].bytes / 4;
      cap[k] = codec.max_compressed_bytes(n) + 16;
      slab_capacity += cap[k];
      d_off_bytes += codec.chunk_count(n) * 4;
    }
    // The per-block capacity offsets (the batch's offset-table slab) are a
    // pure function of the shape, so a cached plan re-serves the same slab
    // slot with the table precomputed.
    batch.plan = plan_entry(PlanKind::Batch, Algorithm::MPC, eligible_total, n_batch);
    const bool plan_mode = batch.plan != nullptr && batch.plan->graph_ready;
    batch.plan_slot = plan_slot_acquire(tl, batch.plan, slab_capacity, bd, batch.lease,
                                        batch.naive_buffer, batch.used_pool);
    slab = static_cast<std::uint8_t*>(batch.used_pool ? batch.lease.data : batch.naive_buffer);

    // ONE d_off scratch allocation + memset for the whole batch, where the
    // naive per-destination scheme pays one per message.
    if (!plan_mode) {
      if (!config_.use_buffer_pool) {
        charge(tl, gpu_.costs().cuda_malloc(d_off_bytes), bd, Phase::MemoryAllocation);
      }
      charge(tl, gpu_.costs().cuda_memset_launch, bd, Phase::MemoryAllocation);
    }

    // Divide the SMs across the batch (MPC-OPT's partitioned launch applied
    // across destinations): every block's kernel runs concurrently on its
    // stream and the launch+sync round is paid once.
    const int blocks_per_kernel = std::max(1, gpu_.spec().sm_count / n_batch);
    std::size_t out_off = 0;
    std::vector<int> used_streams;
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      const auto& in = blocks[eligible[k]];
      const std::size_t n = in.bytes / 4;
      if (out_off + cap[k] > slab_capacity) throw std::runtime_error("batch slab overflow");
      psize[k] = codec.compress({static_cast<const float*>(in.buf), n},
                                {slab + out_off, cap[k]});
      offset[k] = out_off;
      const int sid = static_cast<int>(k) % gpu_.num_streams();
      used_streams.push_back(sid);
      const Time cost =
          cost_model_.mpc_compress(in.bytes, psize[k], blocks_per_kernel, gpu_.spec());
      if (!plan_mode) {
        gpu_.stream(sid).launch(tl, cost, bd, Phase::CompressionKernel);
      } else if (k == 0) {
        gpu_.stream(sid).launch_graph(tl, cost, bd, Phase::CompressionKernel);
      } else {
        gpu_.stream(sid).enqueue_graphed(tl, cost);
      }
      out_off += psize[k];
    }
    for (int sid : used_streams) {
      gpu_.stream(sid).synchronize(tl, bd, Phase::CompressionKernel);
    }

    // The per-block size control words live contiguously in the batch's
    // offset/length table, so ONE small readback covers all of them where
    // the naive scheme pays one round-trip per destination.
    std::vector<std::uint32_t> size_table(eligible.size());
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      size_table[k] = static_cast<std::uint32_t>(psize[k]);
    }
    std::vector<std::uint32_t> host_table(eligible.size());
    if (config_.use_gdrcopy) {
      gpu_.gdrcopy_small(tl, host_table.data(), size_table.data(),
                         host_table.size() * 4, bd);
    } else {
      gpu_.memcpy_d2h_small(tl, host_table.data(), size_table.data(),
                            host_table.size() * 4, bd);
    }
    if (!config_.use_buffer_pool) {
      charge(tl, gpu_.costs().cuda_free, bd, Phase::MemoryAllocation);  // d_off
    }
  } else {  // ZFP
    const comp::ZfpCodec codec(config_.zfp_rate);
    batch.plan = plan_entry(PlanKind::Batch, Algorithm::ZFP, eligible_total,
                            (n_batch << 16) | config_.zfp_rate);
    const bool plan_mode = batch.plan != nullptr && batch.plan->graph_ready;
    // One stream/field creation and one grid-dim query cover the batch
    // (zero with a cached plan: the objects are held across rounds).
    if (!plan_mode) {
      charge(tl, kZfpStreamFieldCreation, bd, Phase::StreamFieldCreation);
      if (config_.cache_device_attributes) {
        (void)gpu_.query_max_grid_dim_cached(tl, bd);
      } else {
        (void)gpu_.query_max_grid_dim_via_properties(tl, bd);
      }
    }

    std::size_t slab_capacity = 0;
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      const std::size_t n = blocks[eligible[k]].bytes / 4;
      cap[k] = codec.compressed_bytes(comp::ZfpField::d1(n));
      slab_capacity += cap[k];
    }
    batch.plan_slot = plan_slot_acquire(tl, batch.plan, slab_capacity, bd, batch.lease,
                                        batch.naive_buffer, batch.used_pool);
    slab = static_cast<std::uint8_t*>(batch.used_pool ? batch.lease.data : batch.naive_buffer);

    std::size_t out_off = 0;
    std::vector<int> used_streams;
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      const auto& in = blocks[eligible[k]];
      const std::size_t n = in.bytes / 4;
      psize[k] = codec.compress({static_cast<const float*>(in.buf), n},
                                comp::ZfpField::d1(n), {slab + out_off, cap[k]});
      offset[k] = out_off;
      const int sid = static_cast<int>(k) % gpu_.num_streams();
      used_streams.push_back(sid);
      const Time cost = cost_model_.zfp_compress(in.bytes, config_.zfp_rate, gpu_.spec());
      if (!plan_mode) {
        gpu_.stream(sid).launch(tl, cost, bd, Phase::CompressionKernel);
      } else if (k == 0) {
        gpu_.stream(sid).launch_graph(tl, cost, bd, Phase::CompressionKernel);
      } else {
        gpu_.stream(sid).enqueue_graphed(tl, cost);
      }
      out_off += psize[k];
    }
    for (int sid : used_streams) {
      gpu_.stream(sid).synchronize(tl, bd, Phase::CompressionKernel);
    }
  }
  plan_mark_ready(tl, batch.plan, bd);

  // Finalize headers block by block; an injected truncate fault (caught by
  // the size validation on readback) degrades the whole batch to raw.
  std::size_t n_compressed = 0;
  for (std::size_t k = 0; k < eligible.size(); ++k) {
    auto& b = batch.blocks[eligible[k]];
    const auto& in = blocks[eligible[k]];
    if (injected.truncate || psize[k] >= in.bytes) {
      ++stats_.messages_fallback_raw;  // raw view is already in place
      continue;
    }
    b.data = slab + offset[k];
    b.bytes = psize[k];
    b.header.compressed = true;
    b.header.algorithm = config_.algorithm;
    b.header.compressed_bytes = psize[k];
    if (config_.algorithm == Algorithm::MPC) {
      b.header.mpc_dimensionality = static_cast<std::uint16_t>(config_.mpc_dimensionality);
      b.header.mpc_chunk_values = static_cast<std::uint32_t>(config_.mpc_chunk_values);
      b.header.partition_bytes = {static_cast<std::uint32_t>(psize[k])};
    } else {
      b.header.zfp_rate = static_cast<std::uint16_t>(config_.zfp_rate);
    }
    ++stats_.messages_compressed;
    ++n_compressed;
  }
  if (injected.truncate) ++stats_.codec_faults;

  std::uint64_t wire_total = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    stats_.original_bytes += blocks[i].bytes;
    stats_.wire_bytes += batch.blocks[i].bytes;
    wire_total += batch.blocks[i].bytes;
  }
  if (injected.truncate) {
    record_event(EventKind::CodecFault, config_.algorithm, wire_total);
  } else if (n_compressed > 0) {
    record_event(EventKind::Compress, config_.algorithm, wire_total);
  } else {
    record_event(EventKind::FallbackRaw, config_.algorithm, wire_total);
  }
  return batch;
}

void CompressionManager::release_batch(Timeline& tl, BatchWire& batch) {
  if (batch.plan != nullptr) {
    // The slab is a held plan slot: hand it back to the plan, not the pool.
    plan_slot_release(batch.plan, batch.plan_slot);
    batch.plan = nullptr;
    batch.plan_slot = -1;
    batch.lease = {};
    batch.naive_buffer = nullptr;
    batch.used_pool = false;
    return;
  }
  if (batch.used_pool) {
    pool_->release(batch.lease);
    batch.lease = {};
    batch.used_pool = false;
  } else if (batch.naive_buffer != nullptr) {
    gpu_.free_device(tl, batch.naive_buffer, &sender_bd_);
    batch.naive_buffer = nullptr;
  }
}

void CompressionManager::release_send(Timeline& tl, WireData& wire) {
  if (wire.plan != nullptr) {
    plan_slot_release(wire.plan, wire.plan_slot);
    wire.plan = nullptr;
    wire.plan_slot = -1;
    wire.lease = {};
    wire.naive_buffer = nullptr;
    wire.used_pool = false;
    return;
  }
  if (wire.used_pool) {
    pool_->release(wire.lease);
    wire.lease = {};
    wire.used_pool = false;
  } else if (wire.naive_buffer != nullptr) {
    gpu_.free_device(tl, wire.naive_buffer, &sender_bd_);
    wire.naive_buffer = nullptr;
  }
}

CompressionManager::RecvStaging CompressionManager::prepare_receive(
    Timeline& tl, const CompressionHeader& header) {
  RecvStaging staging;
  if (!header.compressed) return staging;
  Breakdown* bd = &receiver_bd_;
  staging.plan = plan_entry(PlanKind::Recv, header.algorithm, header.original_bytes,
                            header.algorithm == Algorithm::ZFP
                                ? static_cast<int>(header.zfp_rate)
                                : header.partitions());
  // Plan slots are sized for the worst case (a raw-bounded wire can never
  // exceed original_bytes), so every later compressed size fits in place.
  const std::size_t capacity =
      staging.plan != nullptr
          ? static_cast<std::size_t>(std::max(header.original_bytes, header.compressed_bytes))
          : static_cast<std::size_t>(header.compressed_bytes);
  staging.plan_slot = plan_slot_acquire(tl, staging.plan, capacity, bd, staging.lease,
                                        staging.naive_buffer, staging.used_pool);
  staging.data = staging.used_pool ? staging.lease.data : staging.naive_buffer;
  return staging;
}

void CompressionManager::decompress_received(Timeline& tl, const CompressionHeader& header,
                                             const RecvStaging& staging, void* user_buf,
                                             std::uint64_t user_bytes, bool synchronize,
                                             int stream_hint) {
  if (!header.compressed) return;
  if (header.original_bytes > user_bytes) {
    throw std::runtime_error("CompressionManager: user buffer too small");
  }
  Breakdown* bd = &receiver_bd_;
  const auto* in = static_cast<const std::uint8_t*>(staging.data);
  auto* out = static_cast<float*>(user_buf);
  const std::size_t n = header.original_bytes / 4;

  const Time started = tl.now();
  if (fault_ != nullptr && fault_->on_decompress(rank_id_)) {
    // Injected decompression-kernel fault: the launch errors out before
    // any output is produced. Charge the wasted enqueue and report; the
    // caller recovers (protocol NACK -> raw resend, or a local relaunch).
    tl.advance(gpu_.costs().kernel_launch);
    ++stats_.codec_faults;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, EventKind::CodecFault, header.algorithm,
                          header.original_bytes, header.compressed_bytes, tl.now() - started});
    }
    throw CodecFaultError{};
  }
  const bool plan_mode = staging.plan != nullptr && staging.plan->graph_ready;
  if (header.algorithm == Algorithm::MPC) {
    run_mpc_decompress(tl, header, in, out, n, bd, synchronize, stream_hint, plan_mode);
  } else if (header.algorithm == Algorithm::ZFP) {
    run_zfp_decompress(tl, header, in, out, n, bd, synchronize, stream_hint, plan_mode);
  } else {
    throw std::runtime_error("CompressionManager: compressed payload with no algorithm");
  }
  plan_mark_ready(tl, staging.plan, bd);
  if (telemetry_ != nullptr) {
    telemetry_->record({started, rank_id_, EventKind::Decompress, header.algorithm,
                        header.original_bytes, header.compressed_bytes, tl.now() - started});
  }
}

void CompressionManager::decompress_with_retry(Timeline& tl, const CompressionHeader& header,
                                               const RecvStaging& staging, void* user_buf,
                                               std::uint64_t user_bytes, bool synchronize,
                                               int max_retries, int stream_hint) {
  for (int attempt = 0;; ++attempt) {
    try {
      decompress_received(tl, header, staging, user_buf, user_bytes, synchronize,
                          stream_hint);
      return;
    } catch (const CodecFaultError&) {
      if (attempt >= max_retries) throw;
      // Transient kernel fault: relaunch. Each retry consults the injector
      // again, so a fresh draw decides whether this attempt succeeds.
    }
  }
}

void CompressionManager::decompress_reduce(Timeline& tl, const CompressionHeader& header,
                                           const RecvStaging& staging, float* acc,
                                           std::uint64_t acc_bytes, comp::ReduceOp op,
                                           bool synchronize) {
  if (!header.compressed) {
    throw std::runtime_error("CompressionManager: decompress_reduce needs a compressed payload");
  }
  if (header.original_bytes > acc_bytes) {
    throw std::runtime_error("CompressionManager: accumulator too small");
  }
  Breakdown* bd = &receiver_bd_;
  const auto* in = static_cast<const std::uint8_t*>(staging.data);
  const std::size_t n = header.original_bytes / 4;

  const Time started = tl.now();
  if (fault_ != nullptr && fault_->on_decompress(rank_id_)) {
    // Same contract as decompress_received: the fused kernel errors out
    // before storing anything, so the accumulator still holds its pre-hop
    // partial and the caller can simply relaunch.
    tl.advance(gpu_.costs().kernel_launch);
    ++stats_.codec_faults;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, EventKind::CodecFault, header.algorithm,
                          header.original_bytes, header.compressed_bytes, tl.now() - started});
    }
    throw CodecFaultError{};
  }

  const bool plan_mode = staging.plan != nullptr && staging.plan->graph_ready;
  std::vector<float> decoded(n);
  if (header.algorithm == Algorithm::MPC) {
    run_mpc_decompress(tl, header, in, decoded.data(), n, bd, /*synchronize=*/false,
                       /*stream_hint=*/0, plan_mode);
  } else if (header.algorithm == Algorithm::ZFP) {
    run_zfp_decompress(tl, header, in, decoded.data(), n, bd, /*synchronize=*/false,
                       /*stream_hint=*/0, plan_mode);
  } else {
    throw std::runtime_error("CompressionManager: compressed payload with no algorithm");
  }
  // The fusion combines decoded values with the accumulator in registers
  // before the store: only the extra accumulator traffic is charged, on the
  // decode kernels' tail (a graph node under a cached plan).
  const Time fused = cost_model_.fused_reduce_overhead(header.original_bytes, gpu_.spec());
  if (plan_mode) {
    gpu_.stream(0).enqueue_graphed(tl, fused);
  } else {
    gpu_.stream(0).launch(tl, fused, bd, Phase::DecompressionKernel);
  }
  plan_mark_ready(tl, staging.plan, bd);
  comp::reduce_inplace(acc, decoded.data(), n, op);
  if (synchronize) gpu_.device_synchronize(tl, bd);
  if (telemetry_ != nullptr) {
    telemetry_->record({started, rank_id_, EventKind::Decompress, header.algorithm,
                        header.original_bytes, header.compressed_bytes, tl.now() - started});
  }
}

void CompressionManager::decompress_reduce_with_retry(Timeline& tl,
                                                      const CompressionHeader& header,
                                                      const RecvStaging& staging, float* acc,
                                                      std::uint64_t acc_bytes,
                                                      comp::ReduceOp op, bool synchronize,
                                                      int max_retries) {
  for (int attempt = 0;; ++attempt) {
    try {
      decompress_reduce(tl, header, staging, acc, acc_bytes, op, synchronize);
      return;
    } catch (const CodecFaultError&) {
      if (attempt >= max_retries) throw;
    }
  }
}

Time CompressionManager::reduce_device(Timeline& tl, const float* in, float* acc,
                                       std::size_t n, comp::ReduceOp op, bool synchronize) {
  Breakdown* bd = &receiver_bd_;
  const Time done = gpu_.stream(0).launch(
      tl, cost_model_.reduce_kernel(n * 4, gpu_.spec()), bd, Phase::DecompressionKernel);
  comp::reduce_inplace(acc, in, n, op);
  if (synchronize) gpu_.stream(0).synchronize(tl, bd, Phase::DecompressionKernel);
  return done;
}

void CompressionManager::run_mpc_decompress(Timeline& tl, const CompressionHeader& header,
                                            const std::uint8_t* in, float* out,
                                            std::size_t n, Breakdown* bd, bool synchronize,
                                            int stream_hint, bool plan_mode) {
  const comp::MpcCodec codec(header.mpc_dimensionality,
                             header.mpc_chunk_values);
  const int n_parts = header.partitions();
  const int blocks_per_kernel =
      config_.multi_stream_partitions
          ? std::max(1, gpu_.spec().sm_count / std::max(1, n_parts))
          : gpu_.spec().sm_count;

  // d_off scratch on the receiver side as well (Algorithm 2); a cached
  // plan holds a persistent one and replays the memset inside the graph.
  const std::size_t d_off_bytes = codec.chunk_count(n) * 4;
  if (!plan_mode) {
    if (!config_.use_buffer_pool) {
      charge(tl, gpu_.costs().cuda_malloc(d_off_bytes), bd, Phase::MemoryAllocation);
    }
    charge(tl, gpu_.costs().cuda_memset_launch, bd, Phase::MemoryAllocation);
  }

  std::size_t in_off = 0;
  std::size_t val_off = 0;
  std::vector<int> used_streams;
  for (int p = 0; p < n_parts; ++p) {
    const std::size_t psize = header.partition_bytes.empty()
                                  ? header.compressed_bytes
                                  : header.partition_bytes[static_cast<std::size_t>(p)];
    const std::span<const std::uint8_t> pin{in + in_off, psize};
    const std::size_t pvalues = comp::MpcCodec::encoded_values(pin);
    if (val_off + pvalues > n) throw std::runtime_error("MPC partition overflow");
    codec.decompress(pin, {out + val_off, pvalues});

    const int sid = (stream_hint + p) % gpu_.num_streams();
    used_streams.push_back(sid);
    const Time cost = cost_model_.mpc_decompress(psize, pvalues * 4, blocks_per_kernel,
                                                 gpu_.spec());
    if (!plan_mode) {
      gpu_.stream(sid).launch(tl, cost, bd, Phase::DecompressionKernel);
    } else if (p == 0) {
      gpu_.stream(sid).launch_graph(tl, cost, bd, Phase::DecompressionKernel);
    } else {
      gpu_.stream(sid).enqueue_graphed(tl, cost);
    }
    in_off += psize;
    val_off += pvalues;
  }
  if (val_off != n) throw std::runtime_error("MPC partitions do not cover message");
  if (synchronize) {
    for (int sid : used_streams) {
      gpu_.stream(sid).synchronize(tl, bd, Phase::DecompressionKernel);
    }
  }
  if (!plan_mode && !config_.use_buffer_pool) {
    charge(tl, gpu_.costs().cuda_free, bd, Phase::MemoryAllocation);  // d_off
  }
}

void CompressionManager::run_zfp_decompress(Timeline& tl, const CompressionHeader& header,
                                            const std::uint8_t* in, float* out,
                                            std::size_t n, Breakdown* bd, bool synchronize,
                                            int stream_hint, bool plan_mode) {
  if (!plan_mode) {
    charge(tl, kZfpStreamFieldCreation, bd, Phase::StreamFieldCreation);
    if (config_.cache_device_attributes) {
      (void)gpu_.query_max_grid_dim_cached(tl, bd);
    } else {
      (void)gpu_.query_max_grid_dim_via_properties(tl, bd);
    }
  }

  const comp::ZfpCodec codec(header.zfp_rate);
  const comp::ZfpField field = comp::ZfpField::d1(n);
  codec.decompress({in, header.compressed_bytes}, field, {out, n});

  const int sid = stream_hint % gpu_.num_streams();
  const Time cost = cost_model_.zfp_decompress(n * 4, header.zfp_rate, gpu_.spec());
  if (plan_mode) {
    gpu_.stream(sid).launch_graph(tl, cost, bd, Phase::DecompressionKernel);
  } else {
    gpu_.stream(sid).launch(tl, cost, bd, Phase::DecompressionKernel);
  }
  if (synchronize) gpu_.stream(sid).synchronize(tl, bd, Phase::DecompressionKernel);
}

// ---------------------------------------------------------------------------
// Chunked pipelined rendezvous
// ---------------------------------------------------------------------------

CompressionManager::ChunkWire CompressionManager::compress_chunk(
    Timeline& tl, const void* buf, std::uint64_t bytes, int chunk_index, int blocks) {
  ChunkWire ck;
  ck.wire.header.original_bytes = bytes;

  // Per-chunk policy consultation: each chunk carries its own header, so
  // the codec may change mid-message as the controller learns.
  AdaptiveGuard adapt_guard(*this, tl, kScopeChunk, bytes,
                            config_.enabled && config_.algorithm != Algorithm::None &&
                                bytes % 4 == 0 && bytes >= 16);

  const bool eligible = config_.enabled && config_.algorithm != Algorithm::None &&
                        bytes % 4 == 0 && bytes >= 16;
  fault::CodecFault injected;
  if (eligible && fault_ != nullptr) injected = fault_->on_compress(rank_id_);
  if (!eligible || injected.fail) {
    if (injected.fail) {
      // The launch itself errored: charge the wasted enqueue, send raw.
      tl.advance(gpu_.costs().kernel_launch);
      ++stats_.codec_faults;
      if (telemetry_ != nullptr) {
        telemetry_->record({tl.now(), rank_id_, EventKind::CodecFault, config_.algorithm,
                            bytes, bytes, Time::zero(), kScopeChunk});
      }
    }
    ck.wire.data = buf;
    ck.wire.bytes = bytes;
    ck.wire.header.compressed = false;
    ck.wire.header.compressed_bytes = bytes;
    ck.finished = true;
    ++stats_.pipeline_chunks_raw;
    stats_.original_bytes += bytes;
    stats_.wire_bytes += bytes;
    ck.kernel_done = tl.now();
    return ck;
  }
  ck.pending_truncate = injected.truncate;

  const auto* values = static_cast<const float*>(buf);
  const std::size_t n = bytes / 4;
  Breakdown* bd = &sender_bd_;

  if (config_.algorithm == Algorithm::MPC) {
    const comp::MpcCodec codec(config_.mpc_dimensionality, config_.mpc_chunk_values);
    const std::size_t capacity = codec.max_compressed_bytes(n) + 16;
    ck.wire.plan = plan_entry(PlanKind::ChunkSend, Algorithm::MPC, bytes, blocks);
    const bool plan_mode = ck.wire.plan != nullptr && ck.wire.plan->graph_ready;
    ck.wire.plan_slot = plan_slot_acquire(tl, ck.wire.plan, capacity, bd, ck.wire.lease,
                                          ck.wire.naive_buffer, ck.wire.used_pool);
    auto* out =
        static_cast<std::uint8_t*>(ck.wire.used_pool ? ck.wire.lease.data : ck.wire.naive_buffer);
    // Per-chunk d_off scratch + memset, exactly as the serial launch pays
    // (held + replayed as a graph node once the chunk plan is cached).
    if (!plan_mode) {
      if (!config_.use_buffer_pool) {
        charge(tl, gpu_.costs().cuda_malloc(codec.chunk_count(n) * 4), bd,
               Phase::MemoryAllocation);
      }
      charge(tl, gpu_.costs().cuda_memset_launch, bd, Phase::MemoryAllocation);
    }

    const std::size_t psize = codec.compress({values, n}, {out, capacity});
    gpu::Stream& stream = gpu_.stream(chunk_index % gpu_.num_streams());
    const Time cost = cost_model_.mpc_compress(bytes, psize, blocks, gpu_.spec());
    ck.kernel_done = plan_mode ? stream.launch_graph(tl, cost, bd, Phase::CompressionKernel)
                               : stream.launch(tl, cost, bd, Phase::CompressionKernel);
    ck.kernel_time = cost;
    plan_mark_ready(tl, ck.wire.plan, bd);

    ck.wire.data = out;
    ck.wire.bytes = psize;
    ck.wire.header.algorithm = Algorithm::MPC;
    ck.wire.header.mpc_dimensionality = static_cast<std::uint16_t>(config_.mpc_dimensionality);
    ck.wire.header.mpc_chunk_values = static_cast<std::uint32_t>(config_.mpc_chunk_values);
    ck.wire.header.compressed_bytes = psize;
    ck.wire.header.compressed = true;
  } else {  // ZFP
    ck.wire.plan = plan_entry(PlanKind::ChunkSend, Algorithm::ZFP, bytes, config_.zfp_rate);
    const bool plan_mode = ck.wire.plan != nullptr && ck.wire.plan->graph_ready;
    if (!plan_mode) {
      charge(tl, kZfpStreamFieldCreation, bd, Phase::StreamFieldCreation);
      if (config_.cache_device_attributes) {
        (void)gpu_.query_max_grid_dim_cached(tl, bd);
      } else {
        (void)gpu_.query_max_grid_dim_via_properties(tl, bd);
      }
    }
    const comp::ZfpCodec codec(config_.zfp_rate);
    const comp::ZfpField field = comp::ZfpField::d1(n);
    const std::size_t out_capacity = codec.compressed_bytes(field);
    ck.wire.plan_slot = plan_slot_acquire(tl, ck.wire.plan, out_capacity, bd, ck.wire.lease,
                                          ck.wire.naive_buffer, ck.wire.used_pool);
    auto* out =
        static_cast<std::uint8_t*>(ck.wire.used_pool ? ck.wire.lease.data : ck.wire.naive_buffer);
    const std::uint64_t written = codec.compress({values, n}, field, {out, out_capacity});
    // ZFP kernels expose no block-count knob to divide the GPU fairly
    // among concurrent chunks, so chunk kernels serialize on stream 0.
    const Time cost = cost_model_.zfp_compress(bytes, config_.zfp_rate, gpu_.spec());
    ck.kernel_done = plan_mode
                         ? gpu_.stream(0).launch_graph(tl, cost, bd, Phase::CompressionKernel)
                         : gpu_.stream(0).launch(tl, cost, bd, Phase::CompressionKernel);
    ck.kernel_time = cost;
    plan_mark_ready(tl, ck.wire.plan, bd);

    ck.wire.data = out;
    ck.wire.bytes = written;
    ck.wire.header.algorithm = Algorithm::ZFP;
    ck.wire.header.zfp_rate = static_cast<std::uint16_t>(config_.zfp_rate);
    ck.wire.header.compressed_bytes = written;
    ck.wire.header.compressed = true;
  }
  return ck;
}

void CompressionManager::finish_chunk(Timeline& tl, ChunkWire& ck, const void* buf,
                                      std::uint64_t bytes) {
  if (ck.finished) return;
  Breakdown* bd = &sender_bd_;
  const Time started = tl.now();
  // The codec that actually ran (the adaptive policy may have overridden
  // config_ for this chunk's compress_chunk call, since restored).
  const Algorithm used = ck.wire.header.algorithm;

  if (ck.wire.header.algorithm == Algorithm::MPC) {
    // Size readback of the chunk's single control word.
    const auto device_word = static_cast<std::uint32_t>(ck.wire.bytes);
    std::uint32_t host_word = 0;
    if (config_.use_gdrcopy) {
      gpu_.gdrcopy_small(tl, &host_word, &device_word, 4, bd);
    } else {
      gpu_.memcpy_d2h_small(tl, &host_word, &device_word, 4, bd);
    }
    if (!config_.use_buffer_pool) {
      charge(tl, gpu_.costs().cuda_free, bd, Phase::MemoryAllocation);  // d_off
    }
  }
  // cudaStreamSynchronize on the chunk's stream; the protocol only calls
  // finish_chunk at/after kernel_done, so only the call cost remains.
  charge(tl, gpu_.costs().stream_sync, bd, Phase::CompressionKernel);

  if (ck.pending_truncate || ck.wire.bytes >= bytes) {
    // Truncated stream (injected) or incompressible chunk: never put a
    // short or inflated stream on the wire — degrade this chunk to raw.
    release_send(tl, ck.wire);
    ck.wire.data = buf;
    ck.wire.bytes = bytes;
    ck.wire.header.compressed = false;
    ck.wire.header.compressed_bytes = bytes;
    ck.wire.header.partition_bytes.clear();
    if (ck.pending_truncate) ++stats_.codec_faults;
    ++stats_.pipeline_chunks_raw;
    stats_.original_bytes += bytes;
    stats_.wire_bytes += bytes;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_,
                          ck.pending_truncate ? EventKind::CodecFault : EventKind::FallbackRaw,
                          used, bytes, bytes, tl.now() - started, kScopeChunk});
    }
    ck.finished = true;
    return;
  }

  ++stats_.pipeline_chunks_compressed;
  stats_.original_bytes += bytes;
  stats_.wire_bytes += ck.wire.bytes;
  if (telemetry_ != nullptr) {
    telemetry_->record({started, rank_id_, EventKind::Compress, used, bytes,
                        ck.wire.bytes, ck.kernel_time, kScopeChunk});
  }
  ck.finished = true;
}

CompressionManager::PipelineStaging CompressionManager::prepare_pipeline_receive(
    Timeline& tl, std::uint64_t chunk_capacity, int slices) {
  PipelineStaging st;
  st.slices = std::max(1, slices);
  st.slice_bytes = (static_cast<std::size_t>(chunk_capacity) + 255) & ~std::size_t{255};
  Breakdown* bd = &receiver_bd_;
  st.plan = plan_entry(PlanKind::PipeRecv, Algorithm::None, chunk_capacity, slices);
  st.plan_slot =
      plan_slot_acquire(tl, st.plan, st.slice_bytes * static_cast<std::size_t>(st.slices), bd,
                        st.lease, st.naive_buffer, st.used_pool);
  st.base = st.used_pool ? st.lease.data : st.naive_buffer;
  return st;
}

void CompressionManager::release_pipeline_receive(Timeline& tl, PipelineStaging& staging) {
  if (staging.plan != nullptr) {
    plan_slot_release(staging.plan, staging.plan_slot);
    staging.plan = nullptr;
    staging.plan_slot = -1;
    staging.lease = {};
    staging.naive_buffer = nullptr;
    staging.used_pool = false;
    staging.base = nullptr;
    return;
  }
  if (staging.used_pool) {
    pool_->release(staging.lease);
    staging.lease = {};
    staging.used_pool = false;
  } else if (staging.naive_buffer != nullptr) {
    gpu_.free_device(tl, staging.naive_buffer, &receiver_bd_);
    staging.naive_buffer = nullptr;
  }
  staging.base = nullptr;
}

Time CompressionManager::decompress_chunk(Timeline& tl, const CompressionHeader& header,
                                          const void* staged, void* out,
                                          std::uint64_t out_capacity, int chunk_index,
                                          int blocks, Time* kernel_time) {
  if (!header.compressed) return tl.now();  // raw chunks are plain memcpys
  if (header.original_bytes > out_capacity) {
    throw std::runtime_error("CompressionManager: pipeline chunk exceeds buffer");
  }
  Breakdown* bd = &receiver_bd_;
  const Time started = tl.now();
  if (fault_ != nullptr && fault_->on_decompress(rank_id_)) {
    tl.advance(gpu_.costs().kernel_launch);
    ++stats_.codec_faults;
    if (telemetry_ != nullptr) {
      telemetry_->record({started, rank_id_, EventKind::CodecFault, header.algorithm,
                          header.original_bytes, header.compressed_bytes, tl.now() - started,
                          kScopeChunk});
    }
    throw CodecFaultError{};
  }

  const auto* in = static_cast<const std::uint8_t*>(staged);
  auto* values = static_cast<float*>(out);
  const std::size_t n = header.original_bytes / 4;
  PlanEntry* plan =
      plan_entry(PlanKind::ChunkRecv, header.algorithm, header.original_bytes, blocks);
  const bool plan_mode = plan != nullptr && plan->graph_ready;
  Time done;
  Time cost;
  if (header.algorithm == Algorithm::MPC) {
    const comp::MpcCodec codec(header.mpc_dimensionality, header.mpc_chunk_values);
    if (!plan_mode) {
      if (!config_.use_buffer_pool) {
        charge(tl, gpu_.costs().cuda_malloc(codec.chunk_count(n) * 4), bd,
               Phase::MemoryAllocation);
      }
      charge(tl, gpu_.costs().cuda_memset_launch, bd, Phase::MemoryAllocation);
    }
    const std::span<const std::uint8_t> pin{in, header.compressed_bytes};
    if (comp::MpcCodec::encoded_values(pin) != n) {
      throw std::runtime_error("CompressionManager: pipeline chunk stream mismatch");
    }
    codec.decompress(pin, {values, n});
    gpu::Stream& stream = gpu_.stream(chunk_index % gpu_.num_streams());
    cost = cost_model_.mpc_decompress(header.compressed_bytes, n * 4, blocks, gpu_.spec());
    done = plan_mode ? stream.launch_graph(tl, cost, bd, Phase::DecompressionKernel)
                     : stream.launch(tl, cost, bd, Phase::DecompressionKernel);
    if (!plan_mode && !config_.use_buffer_pool) {
      charge(tl, gpu_.costs().cuda_free, bd, Phase::MemoryAllocation);  // d_off
    }
  } else if (header.algorithm == Algorithm::ZFP) {
    if (!plan_mode) {
      charge(tl, kZfpStreamFieldCreation, bd, Phase::StreamFieldCreation);
      if (config_.cache_device_attributes) {
        (void)gpu_.query_max_grid_dim_cached(tl, bd);
      } else {
        (void)gpu_.query_max_grid_dim_via_properties(tl, bd);
      }
    }
    const comp::ZfpCodec codec(header.zfp_rate);
    const comp::ZfpField field = comp::ZfpField::d1(n);
    codec.decompress({in, header.compressed_bytes}, field, {values, n});
    cost = cost_model_.zfp_decompress(n * 4, header.zfp_rate, gpu_.spec());
    done = plan_mode ? gpu_.stream(0).launch_graph(tl, cost, bd, Phase::DecompressionKernel)
                     : gpu_.stream(0).launch(tl, cost, bd, Phase::DecompressionKernel);
  } else {
    throw std::runtime_error("CompressionManager: compressed chunk with no algorithm");
  }
  plan_mark_ready(tl, plan, bd);
  if (kernel_time != nullptr) *kernel_time = cost;
  if (telemetry_ != nullptr) {
    telemetry_->record({started, rank_id_, EventKind::Decompress, header.algorithm,
                        header.original_bytes, header.compressed_bytes, cost, kScopeChunk});
  }
  return done;
}

void CompressionManager::release_receive(Timeline& tl, RecvStaging& staging) {
  if (staging.plan != nullptr) {
    plan_slot_release(staging.plan, staging.plan_slot);
    staging.plan = nullptr;
    staging.plan_slot = -1;
    staging.lease = {};
    staging.naive_buffer = nullptr;
    staging.used_pool = false;
    staging.data = nullptr;
    return;
  }
  if (staging.used_pool) {
    pool_->release(staging.lease);
    staging.lease = {};
    staging.used_pool = false;
  } else if (staging.naive_buffer != nullptr) {
    gpu_.free_device(tl, staging.naive_buffer, &receiver_bd_);
    staging.naive_buffer = nullptr;
  }
  staging.data = nullptr;
}

}  // namespace gcmpi::core
