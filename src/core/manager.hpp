// CompressionManager: the per-rank engine implementing Algorithms 1-3 of
// the paper. The MPI rendezvous protocol calls into it on both sides:
//
//   sender:   compress_for_send()  -> wire buffer + header for the RTS
//             release_send()       -> return pooled / free naive buffers
//   receiver: prepare_receive()    -> temp device buffer for the payload
//             decompress_received()-> restore into the user buffer
//             release_receive()
//
// Every CUDA-call cost is charged to the provided Timeline and attributed
// to a Breakdown phase, which is how the Fig. 6/8/10 breakdown benchmarks
// are produced.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "compress/kernel_cost.hpp"
#include "compress/mpc.hpp"
#include "compress/reduce.hpp"
#include "compress/zfp.hpp"
#include "core/adapt.hpp"
#include "core/config.hpp"
#include "core/header.hpp"
#include "core/plan_cache.hpp"
#include "core/telemetry.hpp"
#include "gpu/buffer_pool.hpp"
#include "gpu/device.hpp"
#include "sim/stats.hpp"
#include "sim/timeline.hpp"

#include <stdexcept>

namespace gcmpi::fault {
class FaultInjector;
}

namespace gcmpi::core {

using sim::Breakdown;
using sim::Time;
using sim::Timeline;

/// Thrown by decompress_received when the (injected) decompression kernel
/// fails. The rendezvous protocol turns this into a NACK that asks the
/// sender for a raw resend; collectives retry the kernel locally (see
/// decompress_with_retry).
struct CodecFaultError : std::runtime_error {
  CodecFaultError() : std::runtime_error("injected decompression kernel fault") {}
};

/// Counters for the experiment reports.
struct CompressionStats {
  std::uint64_t messages_considered = 0;
  std::uint64_t messages_compressed = 0;
  std::uint64_t messages_fallback_raw = 0;  // compression did not pay off
  std::uint64_t codec_faults = 0;           // injected kernel faults survived
  std::uint64_t original_bytes = 0;
  std::uint64_t wire_bytes = 0;

  // Chunked pipelined rendezvous (byte totals land in the fields above).
  std::uint64_t pipelined_messages = 0;
  std::uint64_t pipeline_chunks_compressed = 0;
  std::uint64_t pipeline_chunks_raw = 0;  // per-chunk raw fallbacks

  [[nodiscard]] double achieved_ratio() const {
    return wire_bytes == 0 ? 1.0
                           : static_cast<double>(original_bytes) /
                                 static_cast<double>(wire_bytes);
  }
};

class CompressionManager {
 public:
  CompressionManager(gpu::Gpu& gpu, CompressionConfig config);

  [[nodiscard]] const CompressionConfig& config() const { return config_; }
  CompressionConfig& mutable_config() { return config_; }
  [[nodiscard]] gpu::Gpu& gpu() { return gpu_; }

  /// Does this message qualify for on-the-fly compression? (device-resident
  /// float payload of at least threshold size, Sec. III-A step 1).
  [[nodiscard]] bool should_compress(const void* buf, std::uint64_t bytes) const;

  struct WireData {
    const void* data = nullptr;        // bytes to put on the wire
    std::uint64_t bytes = 0;
    CompressionHeader header;
    // ownership of the staging buffer (one of the two below, or none if raw)
    gpu::BufferPool::Lease lease;      // OPT path
    void* naive_buffer = nullptr;      // naive path (timed cudaMalloc)
    bool used_pool = false;
    // Plan-cache slot (persistent channels): when set, release_send gives
    // the slot back to the plan instead of the pool.
    PlanEntry* plan = nullptr;
    int plan_slot = -1;
  };

  struct RecvStaging {
    void* data = nullptr;
    gpu::BufferPool::Lease lease;
    void* naive_buffer = nullptr;
    bool used_pool = false;
    PlanEntry* plan = nullptr;
    int plan_slot = -1;
  };

  /// Sender side (Algorithms 1 and 3). Returns the wire view; if
  /// compression did not pay off, header.compressed is false and `data`
  /// aliases `buf`.
  WireData compress_for_send(Timeline& tl, const void* buf, std::uint64_t bytes);

  /// Release sender staging once the payload left the node (send complete).
  void release_send(Timeline& tl, WireData& wire);

  // --- batched one-shot compression (alltoall/shuffle engine) ---
  //
  // compress_batch packs N independent outgoing blocks into ONE wire slab:
  // the launch/sync overhead of the N compression kernels is paid once —
  // the SMs are divided across the blocks (MPC-OPT's partitioned launch
  // applied across destinations instead of within one message), all kernels
  // are enqueued round-robin over the streams, and a single sync round plus
  // a single d_off memset/readback pass covers the whole batch. Each block
  // keeps its own CompressionHeader (and its own incompressible-raw
  // fallback), so every slab slice is a self-contained wire message.
  // Exactly ONE telemetry event is recorded per batch.

  struct BatchInput {
    const void* buf = nullptr;
    std::uint64_t bytes = 0;
  };

  struct BatchWire {
    struct Block {
      const void* data = nullptr;  // wire bytes: a slab slice, or the raw buf
      std::uint64_t bytes = 0;
      CompressionHeader header;
    };
    std::vector<Block> blocks;  // aligned with the compress_batch input
    // ownership of the shared slab (all compressed blocks live in it)
    gpu::BufferPool::Lease lease;
    void* naive_buffer = nullptr;
    bool used_pool = false;
    PlanEntry* plan = nullptr;
    int plan_slot = -1;
  };

  /// Compress every eligible block of the batch in one batched launch;
  /// ineligible or incompressible blocks come back as raw views of the
  /// caller's buffers. Blocks must stay alive until release_batch.
  BatchWire compress_batch(Timeline& tl, const std::vector<BatchInput>& blocks);

  /// Release the batch slab once every slice left the node.
  void release_batch(Timeline& tl, BatchWire& batch);

  /// Receiver side, on RTS match (Algorithm 2, steps before CTS).
  RecvStaging prepare_receive(Timeline& tl, const CompressionHeader& header);

  /// Receiver side, after the compressed payload arrived (steps 6-7).
  /// With `synchronize == false` the decompression kernels are only
  /// enqueued on the GPU streams (the compression-aware collectives overlap
  /// them with subsequent transfers); the caller must device_synchronize()
  /// before touching `user_buf`'s results or releasing the staging.
  /// `stream_hint` rotates the decode kernels' stream assignment so that
  /// independent messages (e.g. the slices of a batched alltoall) do not
  /// serialize behind each other on stream 0.
  /// Throws CodecFaultError when an injected decompression fault fires.
  void decompress_received(Timeline& tl, const CompressionHeader& header,
                           const RecvStaging& staging, void* user_buf,
                           std::uint64_t user_bytes, bool synchronize = true,
                           int stream_hint = 0);

  /// decompress_received with local kernel-relaunch recovery: an injected
  /// transient decompression fault is retried (a fresh launch, a fresh
  /// fault draw) up to `max_retries` times before the error propagates.
  /// Used where no protocol-level resend exists (wire-form collectives).
  void decompress_with_retry(Timeline& tl, const CompressionHeader& header,
                             const RecvStaging& staging, void* user_buf,
                             std::uint64_t user_bytes, bool synchronize = true,
                             int max_retries = 8, int stream_hint = 0);

  /// Fused decompress+reduce (the collective engine's hop primitive):
  /// decode the staged payload and fold it into the device accumulator,
  /// acc[i] = op(acc[i], decoded[i]), in one kernel pass. Costs the normal
  /// decompression kernels plus the extra accumulator read+write traffic.
  /// The injected-fault check fires BEFORE any output is produced, so the
  /// accumulator is untouched on a CodecFaultError and a relaunch is safe.
  void decompress_reduce(Timeline& tl, const CompressionHeader& header,
                         const RecvStaging& staging, float* acc,
                         std::uint64_t acc_bytes, comp::ReduceOp op,
                         bool synchronize = true);

  /// decompress_reduce with the same local kernel-relaunch recovery as
  /// decompress_with_retry (fresh launch, fresh fault draw per attempt).
  void decompress_reduce_with_retry(Timeline& tl, const CompressionHeader& header,
                                    const RecvStaging& staging, float* acc,
                                    std::uint64_t acc_bytes, comp::ReduceOp op,
                                    bool synchronize = true, int max_retries = 8);

  /// Plain on-device elementwise reduce of an uncompressed incoming payload
  /// into the accumulator (raw collective hops). Returns the kernel's
  /// device completion time.
  Time reduce_device(Timeline& tl, const float* in, float* acc, std::size_t n,
                     comp::ReduceOp op, bool synchronize = true);

  void release_receive(Timeline& tl, RecvStaging& staging);

  // --- chunked pipelined rendezvous (see mpi/pipeline.hpp) ---
  //
  // A pipelined message is compressed one chunk at a time: each chunk is a
  // single-partition kernel on stream (chunk_index % num_streams) with a
  // caller-chosen block count, so up to max_in_flight chunk kernels share
  // the GPU concurrently — MPC-OPT's partitioned launch lifted to the
  // protocol level. compress_chunk charges only host-side enqueue costs to
  // `tl` and reports the kernel's completion time; the protocol schedules
  // finish_chunk at (or after) that time to pay the size readback and make
  // the raw-fallback decision before the chunk goes on the wire.

  struct ChunkWire {
    WireData wire;     // staging ownership + per-chunk header sub-record
    Time kernel_done;  // device completion of this chunk's kernels
    Time kernel_time;  // pure device occupancy (overlap telemetry)
    bool pending_truncate = false;  // injected truncate fault, applied at finish
    bool finished = false;          // raw chunks skip the finish work
  };

  /// Launch compression of one pipeline chunk (`buf`, `bytes` must be the
  /// chunk's slice of the user buffer). Ineligible chunks (tiny tail,
  /// injected launch fault) come back as finished raw views.
  ChunkWire compress_chunk(Timeline& tl, const void* buf, std::uint64_t bytes,
                           int chunk_index, int blocks);

  /// Host-side completion of a launched chunk at/after kernel_done: size
  /// readback, incompressible/truncate fallback to raw, stats + telemetry.
  void finish_chunk(Timeline& tl, ChunkWire& chunk, const void* buf,
                    std::uint64_t bytes);

  /// Receiver staging for a whole pipelined transfer: ONE pooled buffer
  /// (or naive cudaMalloc) sub-allocated into `slices` per-chunk slices,
  /// so a deep pipeline costs one acquisition, not one per chunk.
  struct PipelineStaging {
    void* base = nullptr;
    std::size_t slice_bytes = 0;
    int slices = 0;
    gpu::BufferPool::Lease lease;
    void* naive_buffer = nullptr;
    bool used_pool = false;
    PlanEntry* plan = nullptr;
    int plan_slot = -1;
    [[nodiscard]] bool valid() const { return base != nullptr; }
    [[nodiscard]] void* slice(int chunk_index) const {
      return static_cast<std::uint8_t*>(base) +
             static_cast<std::size_t>(chunk_index % slices) * slice_bytes;
    }
  };

  PipelineStaging prepare_pipeline_receive(Timeline& tl, std::uint64_t chunk_capacity,
                                           int slices);
  void release_pipeline_receive(Timeline& tl, PipelineStaging& staging);

  /// Launch decompression of one arrived chunk from its staging slice into
  /// `out`; returns the kernel completion time (the receive completes at
  /// the max over chunks). Throws CodecFaultError on an injected fault.
  Time decompress_chunk(Timeline& tl, const CompressionHeader& header, const void* staged,
                        void* out, std::uint64_t out_capacity, int chunk_index, int blocks,
                        Time* kernel_time = nullptr);

  /// Stats hook: one pipelined message enters the pipeline (its bytes are
  /// accounted chunk by chunk as they are finished).
  void note_pipelined_message() {
    ++stats_.messages_considered;
    ++stats_.pipelined_messages;
  }

  /// Attach an INAM-style monitor; every (de)compression is recorded.
  void attach_telemetry(Telemetry* telemetry, int rank) {
    telemetry_ = telemetry;
    rank_id_ = rank;
  }

  /// Attach the deterministic fault injector; compression/decompression
  /// operations then consult it for kernel faults (chaos testing).
  void attach_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }

  /// Attach the closed-loop codec selection policy; compress_for_send /
  /// compress_batch / compress_chunk then consult it for every statically
  /// qualified message. Null (the default) keeps the static config.
  void attach_adaptive(AdaptivePolicy* policy) { adapt_ = policy; }

  /// Persistent-channel plan cache (see core/plan_cache.hpp): repeated
  /// same-shape operations reuse held staging leases, skip the per-call
  /// codec setup, and replay a captured launch graph. Off (the default)
  /// leaves every charge byte-identical to the uncached paths.
  void enable_plan_cache(bool on) { plan_cache_enabled_ = on; }
  [[nodiscard]] bool plan_cache_enabled() const { return plan_cache_enabled_; }
  [[nodiscard]] const PlanCacheStats& plan_stats() const { return plan_stats_; }
  /// Every staging buffer acquisition (pool or naive), including plan-slot
  /// growth. Warm iterations on cached plans must not move this counter.
  [[nodiscard]] std::uint64_t staging_acquisitions() const { return staging_acquisitions_; }

  [[nodiscard]] const CompressionStats& stats() const { return stats_; }
  [[nodiscard]] Breakdown& sender_breakdown() { return sender_bd_; }
  [[nodiscard]] Breakdown& receiver_breakdown() { return receiver_bd_; }
  void reset_stats() {
    stats_ = {};
    sender_bd_.clear();
    receiver_bd_.clear();
  }

 private:
  struct MpcOutput {
    std::vector<std::uint32_t> partition_bytes;
    std::uint64_t total_bytes = 0;
  };

  /// Run the (possibly partitioned) MPC compression kernels; writes the
  /// compressed stream into `out` and charges all kernel/copy/readback
  /// costs. `bd` selects sender vs receiver attribution. With `plan_mode`
  /// the memset/kernel enqueues replay as one captured graph and the
  /// per-call host setup is skipped (the plan already holds it).
  MpcOutput run_mpc_compress(Timeline& tl, const float* values, std::size_t n,
                             std::uint8_t* out, std::size_t out_capacity,
                             Breakdown* bd, bool plan_mode = false);
  void run_mpc_decompress(Timeline& tl, const CompressionHeader& header,
                          const std::uint8_t* in, float* out, std::size_t n,
                          Breakdown* bd, bool synchronize, int stream_hint = 0,
                          bool plan_mode = false);

  std::uint64_t run_zfp_compress(Timeline& tl, const float* values, std::size_t n,
                                 std::uint8_t* out, std::size_t out_capacity,
                                 Breakdown* bd, bool plan_mode = false);
  void run_zfp_decompress(Timeline& tl, const CompressionHeader& header,
                          const std::uint8_t* in, float* out, std::size_t n,
                          Breakdown* bd, bool synchronize, int stream_hint = 0,
                          bool plan_mode = false);

  /// Acquire a staging device buffer: pooled (OPT) or cudaMalloc'ed (naive).
  void acquire_staging(Timeline& tl, std::size_t bytes, Breakdown* bd,
                       gpu::BufferPool::Lease& lease, void*& naive_buffer,
                       bool& used_pool);

  // --- plan cache internals ---
  /// Find-or-create the cache entry for a shape; nullptr when disabled.
  PlanEntry* plan_entry(PlanKind kind, Algorithm algo, std::uint64_t bytes, int param);
  /// Hand out a staging slot from the plan (hit: no acquisition) or grow it
  /// via acquire_staging (miss). Falls through to a plain acquisition when
  /// `plan` is null. Returns the slot index (-1 when unplanned).
  int plan_slot_acquire(Timeline& tl, PlanEntry* plan, std::size_t capacity, Breakdown* bd,
                        gpu::BufferPool::Lease& lease, void*& naive_buffer, bool& used_pool);
  void plan_slot_release(PlanEntry* plan, int slot);
  /// First-use epilogue: pay the one-time graph capture/instantiate and
  /// mark the plan replayable.
  void plan_mark_ready(Timeline& tl, PlanEntry* plan, Breakdown* bd);

  gpu::Gpu& gpu_;
  CompressionConfig config_;
  comp::KernelCostModel cost_model_;
  std::optional<gpu::BufferPool> pool_;  // compressed-data buffers
  CompressionStats stats_;
  Breakdown sender_bd_;
  Breakdown receiver_bd_;
  /// Apply the adaptive policy's choice for `scope` to config_ for the
  /// duration of one compression call; restores on destruction. No-op when
  /// no policy is attached.
  class AdaptiveGuard {
   public:
    AdaptiveGuard(CompressionManager& mgr, Timeline& tl, const char* scope,
                  std::uint64_t bytes, bool eligible);
    ~AdaptiveGuard();
    AdaptiveGuard(const AdaptiveGuard&) = delete;
    AdaptiveGuard& operator=(const AdaptiveGuard&) = delete;

   private:
    CompressionManager& mgr_;
    Algorithm saved_algorithm_;
    int saved_zfp_rate_;
    bool active_ = false;
  };

  Telemetry* telemetry_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  AdaptivePolicy* adapt_ = nullptr;
  int rank_id_ = -1;

  bool plan_cache_enabled_ = false;
  std::map<PlanKey, PlanEntry> plans_;  // node stability: entries are pointed into
  PlanCacheStats plan_stats_;
  std::uint64_t staging_acquisitions_ = 0;
};

}  // namespace gcmpi::core
