// Compression plan cache (persistent-channel support, see mpi/channel.hpp
// and DESIGN.md §13).
//
// Iterative workloads send the same (shape, codec) message every timestep,
// yet each call re-derives the whole launch plan: a staging acquisition, a
// zfp_stream/zfp_field construction + grid-dim query (ZFP), a d_off memset
// enqueue and one kernel enqueue per partition (MPC). A PlanEntry caches
// everything that is a pure function of the shape:
//
//   * staging slots — BufferPool leases (or naive allocations) held across
//     iterations instead of acquired/released per message;
//   * the host-side codec setup — stream/field objects and the cached
//     attribute read are reused, not recreated;
//   * the launch sequence — captured into a CUDA graph on first use (one
//     timed cudaGraphInstantiate), then replayed with a single
//     cudaGraphLaunch per message regardless of node count.
//
// The cache is strictly opt-in (CompressionManager::enable_plan_cache);
// when disabled every path charges exactly what it always did, so pinned
// world-dump SHAs are unaffected.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "gpu/buffer_pool.hpp"

namespace gcmpi::core {

enum class PlanKind : std::uint8_t {
  SendP2P,   // compress_for_send staging + launch sequence
  Recv,      // prepare_receive staging + decompress launch sequence
  Batch,     // compress_batch slab + offset table + batched launch round
  ChunkSend, // per-chunk pipeline compression
  ChunkRecv, // per-chunk pipeline decompression (graph only, no staging)
  PipeRecv,  // prepare_pipeline_receive slice slab
};

struct PlanKey {
  PlanKind kind = PlanKind::SendP2P;
  Algorithm algorithm = Algorithm::None;
  std::uint64_t bytes = 0;  // message/chunk/batch shape
  int param = 0;            // zfp rate, partition count, block count, slices
  auto operator<=>(const PlanKey&) const = default;
};

/// One held staging buffer. `in_use` guards concurrent same-shape
/// operations (e.g. pipeline chunks in flight); the slot vector grows on
/// demand and then serves every later iteration with zero acquisitions.
struct PlanSlot {
  gpu::BufferPool::Lease lease;
  void* naive_buffer = nullptr;
  bool used_pool = false;
  bool in_use = false;
};

struct PlanEntry {
  PlanKey key;
  std::size_t capacity = 0;  // staging bytes each slot holds
  /// Launch sequence captured + instantiated (first use paid for it);
  /// subsequent uses replay it with one graph_launch and skip the
  /// host-side codec setup.
  bool graph_ready = false;
  std::vector<PlanSlot> slots;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;                 // staging served from a held slot
  std::uint64_t misses = 0;               // slot had to be acquired
  std::uint64_t graphs_instantiated = 0;  // one-time captures paid
};

}  // namespace gcmpi::core
