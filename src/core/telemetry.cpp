#include "core/telemetry.hpp"

namespace gcmpi::core {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Compress: return "compress";
    case EventKind::Decompress: return "decompress";
    case EventKind::RawBypass: return "raw";
    case EventKind::FallbackRaw: return "fallback";
    case EventKind::Retransmit: return "retransmit";
    case EventKind::CorruptionDetected: return "corruption";
    case EventKind::CodecFault: return "codec_fault";
  }
  return "?";
}

Telemetry::Summary Telemetry::summarize(int rank) const {
  Summary s;
  for (const auto& ev : events_) {
    if (rank >= 0 && ev.rank != rank) continue;
    switch (ev.kind) {
      case EventKind::Compress:
        ++s.compressions;
        s.original_bytes += ev.original_bytes;
        s.wire_bytes += ev.wire_bytes;
        s.compression_time += ev.duration;
        break;
      case EventKind::Decompress:
        ++s.decompressions;
        s.decompression_time += ev.duration;
        break;
      case EventKind::RawBypass:
        ++s.raw_bypasses;
        break;
      case EventKind::FallbackRaw:
        ++s.fallbacks;
        s.compression_time += ev.duration;
        break;
      case EventKind::Retransmit:
        ++s.retransmits;
        break;
      case EventKind::CorruptionDetected:
        ++s.corruptions_detected;
        break;
      case EventKind::CodecFault:
        ++s.codec_faults;
        break;
    }
  }
  return s;
}

void Telemetry::write_csv(std::ostream& os) const {
  os << "time_us,rank,kind,algorithm,original_bytes,wire_bytes,duration_us\n";
  for (const auto& ev : events_) {
    os << ev.at.to_us() << ',' << ev.rank << ',' << event_kind_name(ev.kind) << ','
       << algorithm_name(ev.algorithm) << ',' << ev.original_bytes << ',' << ev.wire_bytes
       << ',' << ev.duration.to_us() << '\n';
  }
}

void Telemetry::write_pipeline_csv(std::ostream& os) const {
  os << "time_us,src,dst,algorithm,original_bytes,wire_bytes,chunks,retransmits,"
        "span_us,compress_busy_us,transfer_busy_us,decompress_busy_us\n";
  for (const auto& p : pipelines_) {
    os << p.at.to_us() << ',' << p.src << ',' << p.dst << ','
       << algorithm_name(p.algorithm) << ',' << p.original_bytes << ',' << p.wire_bytes
       << ',' << p.chunks << ',' << p.retransmits << ',' << p.span.to_us() << ','
       << p.compress_busy.to_us() << ',' << p.transfer_busy.to_us() << ','
       << p.decompress_busy.to_us() << '\n';
  }
}

void Telemetry::write_collective_csv(std::ostream& os) const {
  os << "time_us,rank,op,algorithm,bytes,hops,reduces,span_us,compress_busy_us,"
        "transfer_busy_us,reduce_busy_us\n";
  for (const auto& c : collectives_) {
    os << c.at.to_us() << ',' << c.rank << ',' << c.op << ',' << c.algorithm << ','
       << c.bytes << ',' << c.hops << ',' << c.reduces << ',' << c.span.to_us() << ','
       << c.compress_busy.to_us() << ',' << c.transfer_busy.to_us() << ','
       << c.reduce_busy.to_us() << '\n';
  }
}

}  // namespace gcmpi::core
