#include "core/telemetry.hpp"

namespace gcmpi::core {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::Compress: return "compress";
    case EventKind::Decompress: return "decompress";
    case EventKind::RawBypass: return "raw";
    case EventKind::FallbackRaw: return "fallback";
    case EventKind::Retransmit: return "retransmit";
    case EventKind::CorruptionDetected: return "corruption";
    case EventKind::CodecFault: return "codec_fault";
  }
  return "?";
}

Telemetry::Summary Telemetry::summarize(int rank) const {
  Summary s;
  for (const auto& ev : events_) {
    if (rank >= 0 && ev.rank != rank) continue;
    switch (ev.kind) {
      case EventKind::Compress:
        ++s.compressions;
        s.original_bytes += ev.original_bytes;
        s.wire_bytes += ev.wire_bytes;
        s.compression_time += ev.duration;
        break;
      case EventKind::Decompress:
        ++s.decompressions;
        s.decompression_time += ev.duration;
        break;
      case EventKind::RawBypass:
        ++s.raw_bypasses;
        break;
      case EventKind::FallbackRaw:
        ++s.fallbacks;
        s.compression_time += ev.duration;
        break;
      case EventKind::Retransmit:
        ++s.retransmits;
        break;
      case EventKind::CorruptionDetected:
        ++s.corruptions_detected;
        break;
      case EventKind::CodecFault:
        ++s.codec_faults;
        break;
    }
  }
  for (const auto& p : pipelines_) {
    if (rank >= 0 && p.src != rank && p.dst != rank) continue;
    ++s.pipelined_transfers;
    s.pipeline_chunks += p.chunks;
    s.pipeline_retransmits += p.retransmits;
    s.pipeline_span += p.span;
    s.pipeline_compress_busy += p.compress_busy;
    s.pipeline_transfer_busy += p.transfer_busy;
    s.pipeline_decompress_busy += p.decompress_busy;
  }
  for (const auto& c : collectives_) {
    if (rank >= 0 && c.rank != rank) continue;
    ++s.collectives;
    s.collective_hops += c.hops;
    s.collective_reduces += c.reduces;
    s.collective_span += c.span;
    s.collective_compress_busy += c.compress_busy;
    s.collective_transfer_busy += c.transfer_busy;
    s.collective_reduce_busy += c.reduce_busy;
  }
  for (const auto& d : decisions_) {
    if (rank >= 0 && d.rank != rank) continue;
    ++s.decisions;
    if (d.probe) ++s.probes;
  }
  for (const auto& ch : channels_) {
    if (rank >= 0 && ch.src != rank && ch.dst != rank) continue;
    ++s.channels;
    s.channel_warmups += ch.warmups;
    s.channel_warm_sends += ch.warm_sends;
    s.channel_credit_stalls += ch.credit_stalls;
    s.channel_retransmits += ch.retransmits;
    s.channel_raw_degrades += ch.raw_degrades;
    s.channel_plan_hits += ch.plan_hits;
    s.channel_plan_misses += ch.plan_misses;
    s.channel_header_bytes_saved += ch.header_bytes_saved;
  }
  return s;
}

void Telemetry::write_csv(std::ostream& os) const {
  os << "time_us,rank,kind,algorithm,original_bytes,wire_bytes,duration_us\n";
  for (const auto& ev : events_) {
    os << ev.at.to_us() << ',' << ev.rank << ',' << event_kind_name(ev.kind) << ','
       << algorithm_name(ev.algorithm) << ',' << ev.original_bytes << ',' << ev.wire_bytes
       << ',' << ev.duration.to_us() << '\n';
  }
}

void Telemetry::write_pipeline_csv(std::ostream& os) const {
  os << "time_us,src,dst,algorithm,original_bytes,wire_bytes,chunks,retransmits,"
        "span_us,compress_busy_us,transfer_busy_us,decompress_busy_us\n";
  for (const auto& p : pipelines_) {
    os << p.at.to_us() << ',' << p.src << ',' << p.dst << ','
       << algorithm_name(p.algorithm) << ',' << p.original_bytes << ',' << p.wire_bytes
       << ',' << p.chunks << ',' << p.retransmits << ',' << p.span.to_us() << ','
       << p.compress_busy.to_us() << ',' << p.transfer_busy.to_us() << ','
       << p.decompress_busy.to_us() << '\n';
  }
}

void Telemetry::write_collective_csv(std::ostream& os) const {
  os << "time_us,rank,op,algorithm,bytes,hops,reduces,span_us,compress_busy_us,"
        "transfer_busy_us,reduce_busy_us\n";
  for (const auto& c : collectives_) {
    os << c.at.to_us() << ',' << c.rank << ',' << c.op << ',' << c.algorithm << ','
       << c.bytes << ',' << c.hops << ',' << c.reduces << ',' << c.span.to_us() << ','
       << c.compress_busy.to_us() << ',' << c.transfer_busy.to_us() << ','
       << c.reduce_busy.to_us() << '\n';
  }
}

void Telemetry::write_decision_csv(std::ostream& os) const {
  os << "time_us,rank,scope,bytes,choice,probe,quarantined,predicted_us\n";
  for (const auto& d : decisions_) {
    os << d.at.to_us() << ',' << d.rank << ',' << d.scope << ',' << d.bytes << ','
       << d.choice << ',' << (d.probe ? 1 : 0) << ',' << (d.quarantined ? 1 : 0) << ','
       << d.predicted_us << '\n';
  }
}

void Telemetry::write_channel_csv(std::ostream& os) const {
  os << "time_us,id,src,dst,tag_class,bytes,warmups,warm_sends,credit_stalls,"
        "retransmits,raw_degrades,plan_hits,plan_misses,header_bytes_saved\n";
  for (const auto& ch : channels_) {
    os << ch.at.to_us() << ',' << ch.id << ',' << ch.src << ',' << ch.dst << ','
       << ch.tag_class << ',' << ch.bytes << ',' << ch.warmups << ',' << ch.warm_sends
       << ',' << ch.credit_stalls << ',' << ch.retransmits << ',' << ch.raw_degrades
       << ',' << ch.plan_hits << ',' << ch.plan_misses << ',' << ch.header_bytes_saved
       << '\n';
  }
}

namespace {

// Emit one Trace Event Format object. ph "X" = complete (needs dur),
// "i" = instant. pid carries the rank; tid the stream/track name.
void trace_event(std::ostream& os, bool& first, const char* name, char ph,
                 double ts_us, double dur_us, int pid, const char* tid,
                 std::uint64_t original_bytes, std::uint64_t wire_bytes) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":")" << ph << R"(","ts":)" << ts_us
     << R"(,"pid":)" << pid << R"(,"tid":")" << tid << '"';
  if (ph == 'X') os << R"(,"dur":)" << dur_us;
  if (ph == 'i') os << R"(,"s":"t")";
  os << R"(,"args":{"original_bytes":)" << original_bytes << R"(,"wire_bytes":)"
     << wire_bytes << "}}";
}

}  // namespace

void Telemetry::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& ev : events_) {
    const bool has_span = ev.duration.count_ns() > 0;
    trace_event(os, first, event_kind_name(ev.kind), has_span ? 'X' : 'i',
                ev.at.to_us(), ev.duration.to_us(), ev.rank, "codec", ev.original_bytes,
                ev.wire_bytes);
  }
  for (const auto& p : pipelines_) {
    // The transfer span appears on both endpoints' timelines; the stage
    // busy totals ride in args of the sender's span.
    trace_event(os, first, "pipeline_send", 'X', p.at.to_us(), p.span.to_us(), p.src,
                "pipeline", p.original_bytes, p.wire_bytes);
    trace_event(os, first, "pipeline_recv", 'X', p.at.to_us(), p.span.to_us(), p.dst,
                "pipeline", p.original_bytes, p.wire_bytes);
  }
  for (const auto& c : collectives_) {
    trace_event(os, first, c.op, 'X', c.at.to_us(), c.span.to_us(), c.rank, "collective",
                c.bytes, 0);
  }
  for (const auto& d : decisions_) {
    trace_event(os, first, d.choice, 'i', d.at.to_us(), 0.0, d.rank, "adapt", d.bytes, 0);
  }
  for (const auto& ch : channels_) {
    // Lifetime totals flushed at end of run: one instant on each endpoint's
    // channel track, warm-send count in original_bytes' place would mislead,
    // so args carry the shape bytes and the control bytes amortized away.
    trace_event(os, first, "channel", 'i', ch.at.to_us(), 0.0, ch.src, "channel",
                ch.bytes, ch.header_bytes_saved);
    trace_event(os, first, "channel", 'i', ch.at.to_us(), 0.0, ch.dst, "channel",
                ch.bytes, ch.header_bytes_saved);
  }
  os << "\n]}\n";
}

}  // namespace gcmpi::core
