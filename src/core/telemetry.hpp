// Telemetry: in-flight monitoring of the compression framework, modeled on
// the paper's future-work plan to drive dynamic compression decisions with
// a real-time monitor "like OSU INAM" (Sec. IX).
//
// Every compression/decompression/fallback on any rank is recorded with
// its virtual timestamp, sizes, and time spent, enabling:
//   * per-rank and global summaries (ratio achieved, time in kernels,
//     bytes saved on the wire);
//   * time-series export (CSV) for external analysis;
//   * the feedback signal a DynamicSelector-style policy consumes.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/config.hpp"
#include "sim/time.hpp"

namespace gcmpi::core {

enum class EventKind : std::uint8_t {
  Compress,            // sender-side compression performed
  Decompress,          // receiver-side decompression performed
  RawBypass,           // message did not qualify (threshold / host / disabled)
  FallbackRaw,         // compression ran but did not pay off; sent raw
  Retransmit,          // reliability layer re-pushed a rendezvous payload
  CorruptionDetected,  // receiver CRC32C mismatch on an arrived payload
  CodecFault,          // compression/decompression kernel fault (injected)
};

[[nodiscard]] const char* event_kind_name(EventKind k);

struct TelemetryEvent {
  sim::Time at;                 // virtual time of the operation's start
  int rank = -1;
  EventKind kind = EventKind::RawBypass;
  Algorithm algorithm = Algorithm::None;
  std::uint64_t original_bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::Time duration;           // virtual time spent in the operation
  /// Channel the operation belongs to (core/adapt.hpp scope names): the
  /// serial p2p path, a batched alltoall launch, or a pipeline chunk.
  /// Not part of the CSV export (the legacy column set is pinned by the
  /// determinism dumps); consumed by the adaptive control plane.
  const char* channel = "p2p";
};

/// One completed chunked pipelined rendezvous transfer: per-stage busy
/// time against the transfer's span, so fig10-style breakdowns can show
/// the overlap (busy sums may exceed the span — that IS the overlap; with
/// concurrent chunk kernels a stage's own busy time can too).
struct PipelineRecord {
  sim::Time at;  // pipeline start (CTS arrival at the sender)
  int src = -1;
  int dst = -1;
  Algorithm algorithm = Algorithm::None;
  std::uint64_t original_bytes = 0;
  std::uint64_t wire_bytes = 0;  // total pushed, retransmissions included
  std::uint32_t chunks = 0;
  std::uint32_t retransmits = 0;
  sim::Time span;             // start -> receive completion
  sim::Time compress_busy;    // sum of chunk compression kernel time
  sim::Time transfer_busy;    // sum of chunk wire-serialization time
  sim::Time decompress_busy;  // sum of chunk decompression kernel time
};

/// One completed collective on one rank, as executed by the ring or
/// hierarchical engine (the linear p2p composition predates this record
/// and stays silent so legacy dumps are unchanged). Stage busy times
/// follow the PipelineRecord convention: sums of per-hop busy intervals
/// against the collective's span, overlap included.
struct CollectiveRecord {
  sim::Time at;  // collective entry on this rank
  int rank = -1;
  const char* op = "allreduce";   // static name: "allreduce", "reduce_scatter"
  const char* algorithm = "ring"; // core::collective_algorithm_name
  std::uint64_t bytes = 0;        // per-rank payload bytes
  std::uint32_t hops = 0;         // wire messages this rank sent
  std::uint32_t reduces = 0;      // fused/raw reduce launches on this rank
  sim::Time span;                 // entry -> result available
  sim::Time compress_busy;        // shard (re)compression time
  sim::Time transfer_busy;        // blocked in wire sends/receives
  sim::Time reduce_busy;          // fused decompress+reduce (and final decode)
};

/// One persistent channel's lifetime totals (mpi/channel.hpp), flushed at
/// the end of World::run in deterministic (key-sorted) order. Quantifies
/// what the warm protocol amortized: handshake-free sends, control bytes
/// avoided, plan-cache reuse, and the fault recoveries absorbed without a
/// channel teardown.
struct ChannelRecord {
  sim::Time at;  // flush time (end of run)
  std::uint32_t id = 0;
  int src = -1;
  int dst = -1;
  int tag_class = 0;  // exact user tag, or -1 for engine wire channels
  std::uint64_t bytes = 0;
  std::uint32_t warmups = 0;
  std::uint64_t warm_sends = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t raw_degrades = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t header_bytes_saved = 0;
};

/// One adaptive-control-plane decision: which codec (or collective
/// schedule) the controller picked for one message/batch/chunk/collective
/// round, whether it was an exploratory probe of the runner-up, and
/// whether a quarantined candidate was excluded from the choice.
struct DecisionRecord {
  sim::Time at;
  int rank = -1;
  const char* scope = "p2p";   // channel (core/adapt.hpp scope names)
  std::uint64_t bytes = 0;
  const char* choice = "raw";  // "raw"|"mpc"|"zfp8"|... or a schedule name
  bool probe = false;          // counter-based exploration of the runner-up
  bool quarantined = false;    // some candidate was quarantined at decision time
  double predicted_us = 0.0;   // the chosen candidate's predicted latency
};

/// Live subscriber to the telemetry streams: every record() call is
/// forwarded as it happens, so a policy (adapt::AdaptiveController) can
/// close the loop without polling the stored vectors.
class TelemetryObserver {
 public:
  virtual ~TelemetryObserver() = default;
  virtual void on_event(const TelemetryEvent&) {}
  virtual void on_pipeline(const PipelineRecord&) {}
  virtual void on_collective(const CollectiveRecord&) {}
};

class Telemetry {
 public:
  void record(const TelemetryEvent& ev) {
    events_.push_back(ev);
    if (observer_ != nullptr) observer_->on_event(ev);
  }
  void record_pipeline(const PipelineRecord& rec) {
    pipelines_.push_back(rec);
    if (observer_ != nullptr) observer_->on_pipeline(rec);
  }
  void record_collective(const CollectiveRecord& rec) {
    collectives_.push_back(rec);
    if (observer_ != nullptr) observer_->on_collective(rec);
  }
  void record_decision(const DecisionRecord& rec) { decisions_.push_back(rec); }
  void record_channel(const ChannelRecord& rec) { channels_.push_back(rec); }

  /// Install (or clear, with nullptr) the live stream subscriber.
  void set_observer(TelemetryObserver* observer) { observer_ = observer; }

  [[nodiscard]] const std::vector<TelemetryEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<PipelineRecord>& pipelines() const { return pipelines_; }
  [[nodiscard]] const std::vector<CollectiveRecord>& collectives() const {
    return collectives_;
  }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const { return decisions_; }
  [[nodiscard]] const std::vector<ChannelRecord>& channels() const { return channels_; }
  void clear() {
    events_.clear();
    pipelines_.clear();
    collectives_.clear();
    decisions_.clear();
    channels_.clear();
  }

  struct Summary {
    std::uint64_t compressions = 0;
    std::uint64_t decompressions = 0;
    std::uint64_t raw_bypasses = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t corruptions_detected = 0;
    std::uint64_t codec_faults = 0;
    std::uint64_t original_bytes = 0;  // over compressed sends
    std::uint64_t wire_bytes = 0;
    sim::Time compression_time;
    sim::Time decompression_time;

    // Chunked pipelined rendezvous (PipelineRecord stream). For per-rank
    // summaries a transfer counts toward both its src and its dst rank.
    std::uint64_t pipelined_transfers = 0;
    std::uint64_t pipeline_chunks = 0;
    std::uint64_t pipeline_retransmits = 0;
    sim::Time pipeline_span;             // sum of transfer spans
    sim::Time pipeline_compress_busy;    // per-stage busy totals (overlap
    sim::Time pipeline_transfer_busy;    // included: sums may exceed span)
    sim::Time pipeline_decompress_busy;

    // Engine-executed collectives (CollectiveRecord stream).
    std::uint64_t collectives = 0;
    std::uint64_t collective_hops = 0;
    std::uint64_t collective_reduces = 0;
    sim::Time collective_span;
    sim::Time collective_compress_busy;
    sim::Time collective_transfer_busy;
    sim::Time collective_reduce_busy;

    // Adaptive control plane (DecisionRecord stream).
    std::uint64_t decisions = 0;
    std::uint64_t probes = 0;

    // Persistent channels (ChannelRecord stream). For per-rank summaries a
    // channel counts toward both its src and its dst rank.
    std::uint64_t channels = 0;
    std::uint64_t channel_warmups = 0;
    std::uint64_t channel_warm_sends = 0;
    std::uint64_t channel_credit_stalls = 0;
    std::uint64_t channel_retransmits = 0;
    std::uint64_t channel_raw_degrades = 0;
    std::uint64_t channel_plan_hits = 0;
    std::uint64_t channel_plan_misses = 0;
    std::uint64_t channel_header_bytes_saved = 0;

    [[nodiscard]] double achieved_ratio() const {
      return wire_bytes == 0 ? 1.0
                             : static_cast<double>(original_bytes) /
                                   static_cast<double>(wire_bytes);
    }
    [[nodiscard]] std::uint64_t bytes_saved() const {
      return original_bytes >= wire_bytes ? original_bytes - wire_bytes : 0;
    }
  };

  /// Aggregate over all four record streams; `rank` = -1 for the whole job.
  [[nodiscard]] Summary summarize(int rank = -1) const;

  /// One CSV row per event: time_us,rank,kind,algorithm,original,wire,duration_us
  void write_csv(std::ostream& os) const;

  /// One CSV row per pipelined transfer with per-stage busy/occupancy.
  void write_pipeline_csv(std::ostream& os) const;

  /// One CSV row per engine-executed collective with per-stage busy times.
  void write_collective_csv(std::ostream& os) const;

  /// One CSV row per adaptive control-plane decision.
  void write_decision_csv(std::ostream& os) const;

  /// One CSV row per persistent channel's lifetime totals.
  void write_channel_csv(std::ostream& os) const;

  /// All streams as a Chrome/Perfetto trace (chrome://tracing "Trace Event
  /// Format" JSON): one process per rank; events, pipeline spans,
  /// collective spans, and decisions on separate tracks.
  void write_chrome_trace(std::ostream& os) const;

 private:
  std::vector<TelemetryEvent> events_;
  std::vector<PipelineRecord> pipelines_;
  std::vector<CollectiveRecord> collectives_;
  std::vector<DecisionRecord> decisions_;
  std::vector<ChannelRecord> channels_;
  TelemetryObserver* observer_ = nullptr;
};

}  // namespace gcmpi::core
