// Telemetry: in-flight monitoring of the compression framework, modeled on
// the paper's future-work plan to drive dynamic compression decisions with
// a real-time monitor "like OSU INAM" (Sec. IX).
//
// Every compression/decompression/fallback on any rank is recorded with
// its virtual timestamp, sizes, and time spent, enabling:
//   * per-rank and global summaries (ratio achieved, time in kernels,
//     bytes saved on the wire);
//   * time-series export (CSV) for external analysis;
//   * the feedback signal a DynamicSelector-style policy consumes.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "core/config.hpp"
#include "sim/time.hpp"

namespace gcmpi::core {

enum class EventKind : std::uint8_t {
  Compress,            // sender-side compression performed
  Decompress,          // receiver-side decompression performed
  RawBypass,           // message did not qualify (threshold / host / disabled)
  FallbackRaw,         // compression ran but did not pay off; sent raw
  Retransmit,          // reliability layer re-pushed a rendezvous payload
  CorruptionDetected,  // receiver CRC32C mismatch on an arrived payload
  CodecFault,          // compression/decompression kernel fault (injected)
};

[[nodiscard]] const char* event_kind_name(EventKind k);

struct TelemetryEvent {
  sim::Time at;                 // virtual time of the operation's start
  int rank = -1;
  EventKind kind = EventKind::RawBypass;
  Algorithm algorithm = Algorithm::None;
  std::uint64_t original_bytes = 0;
  std::uint64_t wire_bytes = 0;
  sim::Time duration;           // virtual time spent in the operation
};

/// One completed chunked pipelined rendezvous transfer: per-stage busy
/// time against the transfer's span, so fig10-style breakdowns can show
/// the overlap (busy sums may exceed the span — that IS the overlap; with
/// concurrent chunk kernels a stage's own busy time can too).
struct PipelineRecord {
  sim::Time at;  // pipeline start (CTS arrival at the sender)
  int src = -1;
  int dst = -1;
  Algorithm algorithm = Algorithm::None;
  std::uint64_t original_bytes = 0;
  std::uint64_t wire_bytes = 0;  // total pushed, retransmissions included
  std::uint32_t chunks = 0;
  std::uint32_t retransmits = 0;
  sim::Time span;             // start -> receive completion
  sim::Time compress_busy;    // sum of chunk compression kernel time
  sim::Time transfer_busy;    // sum of chunk wire-serialization time
  sim::Time decompress_busy;  // sum of chunk decompression kernel time
};

/// One completed collective on one rank, as executed by the ring or
/// hierarchical engine (the linear p2p composition predates this record
/// and stays silent so legacy dumps are unchanged). Stage busy times
/// follow the PipelineRecord convention: sums of per-hop busy intervals
/// against the collective's span, overlap included.
struct CollectiveRecord {
  sim::Time at;  // collective entry on this rank
  int rank = -1;
  const char* op = "allreduce";   // static name: "allreduce", "reduce_scatter"
  const char* algorithm = "ring"; // core::collective_algorithm_name
  std::uint64_t bytes = 0;        // per-rank payload bytes
  std::uint32_t hops = 0;         // wire messages this rank sent
  std::uint32_t reduces = 0;      // fused/raw reduce launches on this rank
  sim::Time span;                 // entry -> result available
  sim::Time compress_busy;        // shard (re)compression time
  sim::Time transfer_busy;        // blocked in wire sends/receives
  sim::Time reduce_busy;          // fused decompress+reduce (and final decode)
};

class Telemetry {
 public:
  void record(const TelemetryEvent& ev) { events_.push_back(ev); }
  void record_pipeline(const PipelineRecord& rec) { pipelines_.push_back(rec); }
  void record_collective(const CollectiveRecord& rec) { collectives_.push_back(rec); }

  [[nodiscard]] const std::vector<TelemetryEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<PipelineRecord>& pipelines() const { return pipelines_; }
  [[nodiscard]] const std::vector<CollectiveRecord>& collectives() const {
    return collectives_;
  }
  void clear() {
    events_.clear();
    pipelines_.clear();
    collectives_.clear();
  }

  struct Summary {
    std::uint64_t compressions = 0;
    std::uint64_t decompressions = 0;
    std::uint64_t raw_bypasses = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t corruptions_detected = 0;
    std::uint64_t codec_faults = 0;
    std::uint64_t original_bytes = 0;  // over compressed sends
    std::uint64_t wire_bytes = 0;
    sim::Time compression_time;
    sim::Time decompression_time;

    [[nodiscard]] double achieved_ratio() const {
      return wire_bytes == 0 ? 1.0
                             : static_cast<double>(original_bytes) /
                                   static_cast<double>(wire_bytes);
    }
    [[nodiscard]] std::uint64_t bytes_saved() const {
      return original_bytes >= wire_bytes ? original_bytes - wire_bytes : 0;
    }
  };

  /// Aggregate over all events; `rank` = -1 for the whole job.
  [[nodiscard]] Summary summarize(int rank = -1) const;

  /// One CSV row per event: time_us,rank,kind,algorithm,original,wire,duration_us
  void write_csv(std::ostream& os) const;

  /// One CSV row per pipelined transfer with per-stage busy/occupancy.
  void write_pipeline_csv(std::ostream& os) const;

  /// One CSV row per engine-executed collective with per-stage busy times.
  void write_collective_csv(std::ostream& os) const;

 private:
  std::vector<TelemetryEvent> events_;
  std::vector<PipelineRecord> pipelines_;
  std::vector<CollectiveRecord> collectives_;
};

}  // namespace gcmpi::core
