#include "data/datasets.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sim/rng.hpp"

namespace gcmpi::data {

using sim::Rng;

const std::vector<DatasetInfo>& table3_datasets() {
  static const std::vector<DatasetInfo> table = {
      {"msg_bt", 128.0, 92.9, 1.339, 2.0, 5},
      {"msg_lu", 93.0, 99.2, 1.444, 2.0, 3},
      {"msg_sp", 16.0, 98.9, 1.352, 2.0, 5},
      {"msg_sppm", 16.0, 10.2, 8.951, 2.0, 1},
      {"msg_sweep3d", 60.0, 89.8, 1.537, 2.0, 1},
      {"obs_error", 30.0, 18.0, 1.301, 2.0, 1},
      {"obs_info", 9.1, 23.9, 1.440, 2.0, 1},
      {"num_plasma", 17.0, 0.3, 1.348, 2.0, 1},
  };
  return table;
}

std::vector<float> smooth_field(std::size_t n, double noise, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  const double w1 = 2.0 * M_PI / 977.0;
  const double w2 = 2.0 * M_PI / 8191.0;
  const double phase1 = rng.uniform(0.0, 6.28);
  const double phase2 = rng.uniform(0.0, 6.28);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double s = std::sin(w1 * t + phase1) + 0.6 * std::sin(w2 * t + phase2) +
                     0.1 * std::sin(w1 * 7.3 * t);
    v[i] = static_cast<float>(s * (1.0 + noise * rng.normal()));
  }
  return v;
}

std::vector<float> plateau_field(std::size_t n, int levels, std::size_t mean_run,
                                 std::uint64_t seed) {
  Rng rng(seed);
  // Levels share one binade ([1,2)) so a level jump only disturbs mantissa
  // bit planes — the structure that gives the real msg_sppm its CR ~9.
  std::vector<float> alphabet(static_cast<std::size_t>(levels));
  for (auto& a : alphabet) a = 1.0f + static_cast<float>(rng.next_below(1 << 12)) / 4096.0f;
  std::vector<float> v(n);
  std::size_t i = 0;
  while (i < n) {
    const float level = alphabet[rng.next_below(alphabet.size())];
    const std::size_t run = 1 + rng.next_below(2 * mean_run);
    for (std::size_t j = 0; j < run && i < n; ++j, ++i) v[i] = level;
  }
  return v;
}

std::vector<float> quantized_noise(std::size_t n, int unique_values, std::uint64_t seed) {
  Rng rng(seed);
  // Observational data: values from a bounded sensor range (one binade)
  // quantized to instrument precision, in unpredictable order. Deltas stay
  // within the mantissa, giving the mild lossless CR (~1.3-1.4) the paper
  // reports for obs_error / obs_info / num_plasma.
  const std::uint64_t quant = 1 << 18;
  std::vector<float> alphabet(static_cast<std::size_t>(unique_values));
  for (auto& a : alphabet) {
    a = 1.0f + static_cast<float>(rng.next_below(quant)) / static_cast<float>(quant);
  }
  std::vector<float> v(n);
  for (auto& x : v) x = alphabet[rng.next_below(alphabet.size())];
  return v;
}

std::vector<float> interleaved_fields(std::size_t n, int fields, double noise,
                                      std::uint64_t seed) {
  Rng rng(seed);
  const auto nf = static_cast<std::size_t>(fields);
  std::vector<double> phase(nf), scale(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    phase[f] = rng.uniform(0.0, 6.28);
    scale[f] = rng.uniform(0.5, 2.0);
  }
  std::vector<float> v(n);
  const double w = 2.0 * M_PI / 1531.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t f = i % nf;
    const double t = static_cast<double>(i / nf);
    const double s = scale[f] * std::sin(w * t + phase[f]) +
                     0.3 * std::sin(w * 3.7 * t + 2.0 * phase[f]);
    v[i] = static_cast<float>(s + noise * rng.normal());
  }
  return v;
}

double unique_fraction(std::span<const float> v) {
  std::unordered_set<float> set(v.begin(), v.end());
  return v.empty() ? 0.0 : static_cast<double>(set.size()) / static_cast<double>(v.size());
}

std::vector<float> generate(const std::string& name, std::size_t n, std::uint64_t seed) {
  // Tuned to approximate Table III's unique-value % and MPC CR per dataset.
  if (name == "msg_bt") return interleaved_fields(n, 5, 4e-3, seed);
  if (name == "msg_lu") return interleaved_fields(n, 3, 2e-3, seed ^ 0x11);
  if (name == "msg_sp") return interleaved_fields(n, 5, 3.5e-3, seed ^ 0x22);
  if (name == "msg_sppm") return plateau_field(n, 200, 256, seed ^ 0x33);
  if (name == "msg_sweep3d") return smooth_field(n, 1.5e-3, seed ^ 0x44);
  if (name == "obs_error") return quantized_noise(n, 60000, seed ^ 0x55);
  if (name == "obs_info") return quantized_noise(n, 30000, seed ^ 0x66);
  if (name == "num_plasma") return quantized_noise(n, 2000, seed ^ 0x77);
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace gcmpi::data
