// Synthetic stand-ins for the eight HPC datasets of Table III (msg_bt,
// msg_lu, msg_sp, msg_sppm, msg_sweep3d, obs_error, obs_info, num_plasma —
// originally from Burtscher's FPC/MPC corpus, not redistributable here).
//
// Each generator is tuned along the two axes the paper characterizes the
// real sets by — unique-value fraction and MPC compression ratio — so the
// collective/microbenchmark results keep the same per-dataset ordering
// (e.g. msg_sppm compresses ~9x and benefits most from MPC-OPT).
// EXPERIMENTS.md records paper-vs-measured CR per dataset.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gcmpi::data {

struct DatasetInfo {
  const char* name;
  double size_mb_paper;        // original dataset size
  double unique_pct_paper;     // % unique values (Table III)
  double mpc_cr_paper;         // MPC compression ratio (Table III)
  double zfp_cr_paper;         // always 2 at rate 16
  int mpc_dimensionality;      // tuned dim used by our generator/benchmarks
};

/// The eight Table III rows, in paper order.
[[nodiscard]] const std::vector<DatasetInfo>& table3_datasets();

/// Generate `n` float32 values of the named dataset. Deterministic in
/// (name, n, seed). Throws on unknown name.
[[nodiscard]] std::vector<float> generate(const std::string& name, std::size_t n,
                                          std::uint64_t seed = 42);

// --- generic field generators, used by the datasets and the app proxies ---

/// Smooth multi-frequency field with additive noise; `noise` is relative to
/// the signal amplitude. Low noise => highly MPC-compressible.
[[nodiscard]] std::vector<float> smooth_field(std::size_t n, double noise,
                                              std::uint64_t seed);

/// Piecewise-constant plateaus from a small alphabet of levels (the
/// msg_sppm texture: ~10% unique values, long duplicate runs).
[[nodiscard]] std::vector<float> plateau_field(std::size_t n, int levels,
                                               std::size_t mean_run, std::uint64_t seed);

/// Values drawn from a small alphabet in random order (low unique %, but
/// unpredictable deltas => low lossless CR, the num_plasma regime).
[[nodiscard]] std::vector<float> quantized_noise(std::size_t n, int unique_values,
                                                 std::uint64_t seed);

/// Interleaved multi-field record data: `fields` smooth series interleaved
/// value-by-value, so the best MPC dimensionality equals `fields`.
[[nodiscard]] std::vector<float> interleaved_fields(std::size_t n, int fields,
                                                    double noise, std::uint64_t seed);

/// Fraction of distinct values in `v` (matches Table III's "Unique vals").
[[nodiscard]] double unique_fraction(std::span<const float> v);

}  // namespace gcmpi::data
