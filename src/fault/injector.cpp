#include "fault/injector.hpp"

namespace gcmpi::fault {

namespace {

/// SplitMix64 finalizer: the same bijective mixer the sim::Rng seeder uses.
constexpr std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t stream_key(std::uint8_t s, int a, int b) {
  return (static_cast<std::uint64_t>(s) << 56) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a + 1)) << 28) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b + 1));
}

}  // namespace

std::uint64_t FaultInjector::draw_u64(Stream s, int a, int b) {
  const std::uint64_t key = stream_key(static_cast<std::uint8_t>(s), a, b);
  const std::uint64_t n = counters_[key]++;
  // Two mixer rounds decorrelate (seed ^ key) from the counter.
  return mix(mix(plan_.seed ^ key) ^ n);
}

double FaultInjector::draw(Stream s, int a, int b) {
  return static_cast<double>(draw_u64(s, a, b) >> 11) * 0x1.0p-53;
}

PacketFault FaultInjector::on_data_packet(int src, int dst, bool inter_node) {
  PacketFault f;
  ++stats_.data_packets;
  if (inter_node) ++stats_.inter_node_data_packets;
  if (plan_.drop_probability > 0.0 && draw(Stream::Drop, src, dst) < plan_.drop_probability) {
    f.drop = true;
    ++stats_.drops;
    if (inter_node) ++stats_.inter_node_drops;
    return f;  // a dropped packet cannot also be corrupted
  }
  if (plan_.corrupt_probability > 0.0 &&
      draw(Stream::Corrupt, src, dst) < plan_.corrupt_probability) {
    f.corrupt = true;
    f.corrupt_bits = draw_u64(Stream::CorruptBits, src, dst);
    ++stats_.corruptions;
    if (inter_node) ++stats_.inter_node_corruptions;
  }
  if (plan_.latency_spike_probability > 0.0 &&
      draw(Stream::DataLatency, src, dst) < plan_.latency_spike_probability) {
    f.extra_latency = plan_.latency_spike;
    ++stats_.latency_spikes;
  }
  return f;
}

sim::Time FaultInjector::timing_fault(int src, int dst) {
  if (plan_.latency_spike_probability > 0.0 &&
      draw(Stream::ControlLatency, src, dst) < plan_.latency_spike_probability) {
    ++stats_.latency_spikes;
    return plan_.latency_spike;
  }
  return sim::Time::zero();
}

WindowEffect FaultInjector::window_at(sim::Time t, int src_node, int dst_node) {
  WindowEffect e;
  e.defer_until = t;
  for (const auto& w : plan_.windows) {
    if (w.node != -1 && w.node != src_node && w.node != dst_node) continue;
    if (!w.contains(e.defer_until)) continue;
    if (w.down) {
      // NIC stall: the transfer cannot start before the window closes.
      // Re-check remaining windows from the deferred start.
      if (w.end > e.defer_until) {
        e.defer_until = w.end;
        ++stats_.stalls;
      }
    } else if (w.bandwidth_scale < e.bandwidth_scale) {
      e.bandwidth_scale = w.bandwidth_scale;
      ++stats_.degradations;
    }
  }
  return e;
}

CodecFault FaultInjector::on_compress(int rank) {
  CodecFault f;
  if (plan_.compress_fail_probability > 0.0 &&
      draw(Stream::CompressFail, rank, rank) < plan_.compress_fail_probability) {
    f.fail = true;
  } else if (plan_.compress_truncate_probability > 0.0 &&
             draw(Stream::CompressTruncate, rank, rank) <
                 plan_.compress_truncate_probability) {
    f.truncate = true;
  }
  if (f.any()) ++stats_.compress_faults;
  return f;
}

bool FaultInjector::on_decompress(int rank) {
  if (plan_.decompress_fail_probability > 0.0 &&
      draw(Stream::DecompressFail, rank, rank) < plan_.decompress_fail_probability) {
    ++stats_.decompress_faults;
    return true;
  }
  return false;
}

}  // namespace gcmpi::fault
