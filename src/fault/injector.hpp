// FaultInjector: turns a FaultPlan into a deterministic fault schedule.
//
// Every decision is drawn from an independent counter-based stream keyed by
// (decision kind, src, dst): the verdict for the Nth data packet from rank
// A to rank B is a pure function of (seed, kind, A, B, N). Interleaving
// traffic on other links therefore cannot perturb a link's fault schedule,
// which is what makes "same seed => same fault schedule" hold at the level
// of individual transfers, not just whole runs.
//
// The simulator consults the injector at well-defined points:
//   * net::Fabric::transfer_data  -> on_data_packet (drop/corrupt/spike)
//   * net::Fabric::transfer       -> timing_fault   (spike only) + window_at
//   * core::CompressionManager    -> on_compress / on_decompress
#pragma once

#include <cstdint>
#include <unordered_map>

#include "fault/plan.hpp"
#include "sim/time.hpp"

namespace gcmpi::fault {

/// Verdict for one data packet.
struct PacketFault {
  bool drop = false;
  bool corrupt = false;
  std::uint64_t corrupt_bits = 0;  // raw entropy; caller mods by payload bits
  sim::Time extra_latency = sim::Time::zero();
};

/// Verdict for one sender-side compression operation.
struct CodecFault {
  bool fail = false;      // kernel failure: no compressed output at all
  bool truncate = false;  // kernel reported a short/invalid output
  [[nodiscard]] bool any() const { return fail || truncate; }
};

/// Effect of the link-state windows on a transfer starting at `t`.
struct WindowEffect {
  sim::Time defer_until = sim::Time::zero();  // > t when a down window stalls
  double bandwidth_scale = 1.0;               // < 1 while degraded
};

/// Injection counters, for tests and the chaos bench. The inter_node_*
/// counters split out the packets whose src and dst sit on different nodes
/// (as reported by the Fabric), so topology-aware collectives can assert
/// their IB transit budget — e.g. hierarchical bcast must show exactly
/// nodes-1 inter-node data packets plus the inter-node retransmits.
struct FaultStats {
  std::uint64_t data_packets = 0;
  std::uint64_t drops = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t inter_node_data_packets = 0;
  std::uint64_t inter_node_drops = 0;
  std::uint64_t inter_node_corruptions = 0;
  std::uint64_t latency_spikes = 0;
  std::uint64_t stalls = 0;        // transfers deferred by a down window
  std::uint64_t degradations = 0;  // transfers slowed by a degraded window
  std::uint64_t compress_faults = 0;
  std::uint64_t decompress_faults = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Per-data-packet verdict (rendezvous payload push src -> dst).
  /// `inter_node` feeds the inter_node_* stats split; it does NOT change
  /// the verdict draw, so fault schedules are unchanged.
  PacketFault on_data_packet(int src, int dst, bool inter_node = false);

  /// Extra propagation latency for any non-data packet src -> dst.
  sim::Time timing_fault(int src, int dst);

  /// Combined effect of every window matching an inter-node transfer
  /// between `src_node` and `dst_node` that starts at `t`.
  WindowEffect window_at(sim::Time t, int src_node, int dst_node);

  /// Sender-side codec verdict for one compression of `bytes`.
  CodecFault on_compress(int rank);

  /// Receiver-side verdict: true when the decompression kernel fails.
  bool on_decompress(int rank);

 private:
  enum class Stream : std::uint8_t {
    Drop = 1,
    Corrupt,
    CorruptBits,
    DataLatency,
    ControlLatency,
    CompressFail,
    CompressTruncate,
    DecompressFail,
  };

  /// Next raw 64-bit draw on the (stream, a, b) decision stream.
  std::uint64_t draw_u64(Stream s, int a, int b);
  /// Next uniform [0,1) draw on the (stream, a, b) decision stream.
  double draw(Stream s, int a, int b);

  FaultPlan plan_;
  FaultStats stats_;
  std::unordered_map<std::uint64_t, std::uint64_t> counters_;
};

}  // namespace gcmpi::fault
