// FaultPlan: the declarative description of everything that is allowed to
// go wrong in a simulated run — per-packet wire faults (drop, payload bit
// corruption, latency spikes), time-bounded link degradation windows (NIC
// flaps, bandwidth brownouts), and per-operation codec faults (compression
// kernel failure, truncated output, decompression kernel failure).
//
// A plan is pure data; the seeded FaultInjector turns it into a
// deterministic fault schedule. No plan installed == a perfect fabric,
// and every protocol path is bit-identical to a build without the fault
// subsystem at all (see the reliability section of DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace gcmpi::fault {

/// A time window during which one (or every) inter-node link misbehaves.
/// `down` models a NIC stall/flap: transfers attempting to start inside the
/// window are deferred to its end. Otherwise `bandwidth_scale` < 1 models a
/// degraded link (serialization time divided by the scale).
struct LinkFaultWindow {
  int node = -1;  // matches transfers whose src OR dst node is `node`; -1 = any
  sim::Time begin = sim::Time::zero();
  sim::Time end = sim::Time::zero();
  double bandwidth_scale = 1.0;
  bool down = false;

  [[nodiscard]] bool contains(sim::Time t) const { return t >= begin && t < end; }
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // --- per data packet (rendezvous payload transfers) ---
  double drop_probability = 0.0;
  double corrupt_probability = 0.0;  // one flipped payload bit per hit

  // --- per packet, any kind (data, eager, RTS/CTS/NACK control) ---
  double latency_spike_probability = 0.0;
  sim::Time latency_spike = sim::Time::us(50);

  // --- per codec operation ---
  double compress_fail_probability = 0.0;      // kernel launch/exec failure
  double compress_truncate_probability = 0.0;  // kernel reports short output
  double decompress_fail_probability = 0.0;    // receiver-side kernel failure

  // --- deterministic link-state windows ---
  std::vector<LinkFaultWindow> windows;

  [[nodiscard]] bool has_packet_faults() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0;
  }

  /// Lossy-wire preset: `drop` / `corrupt` per data packet.
  [[nodiscard]] static FaultPlan lossy(std::uint64_t seed, double drop, double corrupt) {
    FaultPlan p;
    p.seed = seed;
    p.drop_probability = drop;
    p.corrupt_probability = corrupt;
    return p;
  }

  /// Flaky-codec preset: compression kernels fail with probability `fail`.
  [[nodiscard]] static FaultPlan flaky_codec(std::uint64_t seed, double fail) {
    FaultPlan p;
    p.seed = seed;
    p.compress_fail_probability = fail;
    return p;
  }
};

}  // namespace gcmpi::fault
