// RAII wrapper over a device allocation. Untimed acquisition/release —
// timed allocation on a critical path goes through Gpu::malloc_device at
// the call site so the cost can be attributed to the right breakdown phase.
#pragma once

#include <cstddef>
#include <span>
#include <utility>

#include "gpu/device.hpp"

namespace gcmpi::gpu {

class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Gpu& gpu, std::size_t bytes)
      : gpu_(&gpu), ptr_(gpu.malloc_device_untimed(bytes)), bytes_(bytes) {}
  ~DeviceBuffer() { reset(); }

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : gpu_(o.gpu_), ptr_(o.ptr_), bytes_(o.bytes_) {
    o.gpu_ = nullptr;
    o.ptr_ = nullptr;
    o.bytes_ = 0;
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      gpu_ = std::exchange(o.gpu_, nullptr);
      ptr_ = std::exchange(o.ptr_, nullptr);
      bytes_ = std::exchange(o.bytes_, 0);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  void reset() {
    if (gpu_ != nullptr && ptr_ != nullptr) gpu_->free_device_untimed(ptr_);
    gpu_ = nullptr;
    ptr_ = nullptr;
    bytes_ = 0;
  }

  [[nodiscard]] void* data() const { return ptr_; }
  [[nodiscard]] std::size_t size() const { return bytes_; }
  [[nodiscard]] bool empty() const { return ptr_ == nullptr; }

  template <typename T>
  [[nodiscard]] std::span<T> as_span() const {
    return {static_cast<T*>(ptr_), bytes_ / sizeof(T)};
  }

 private:
  Gpu* gpu_ = nullptr;
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace gcmpi::gpu
