#include "gpu/buffer_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace gcmpi::gpu {

BufferPool::BufferPool(Gpu& gpu, std::size_t buffer_bytes, std::size_t count)
    : gpu_(gpu), buffer_bytes_(buffer_bytes) {
  buffers_.reserve(count);
  free_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    buffers_.emplace_back(gpu_, buffer_bytes_);
    free_.push_back(i);
  }
}

BufferPool::Lease BufferPool::acquire(Timeline& tl, std::size_t bytes, Breakdown* bd) {
  ++acquire_count_;
  // Size-aware reuse: best-fit over the free list so an oversized buffer
  // released earlier can serve both oversized and ordinary requests, and
  // the lease always reports the buffer's true capacity (an oversized
  // buffer is bigger than buffer_bytes_; advertising less would make a
  // caller reject a staging area that actually fits).
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const std::size_t cap = buffers_[free_[i]].size();
    if (cap < bytes) continue;
    if (best == free_.size() || cap < buffers_[free_[best]].size() ||
        (cap == buffers_[free_[best]].size() && free_[i] < free_[best])) {
      best = i;
    }
  }
  if (best != free_.size()) {
    const std::size_t idx = free_[best];
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    return Lease{buffers_[idx].data(), buffers_[idx].size(), idx};
  }
  // Grow on demand: this is a real cudaMalloc on the critical path, exactly
  // the cost the pre-allocation is designed to avoid in the common case.
  if (bytes > buffer_bytes_) {
    // Oversized request: a dedicated buffer of exactly the needed size.
    const Time t = gpu_.costs().cuda_malloc(bytes);
    tl.advance(t);
    if (bd != nullptr) bd->add(Phase::MemoryAllocation, t);
    buffers_.emplace_back(gpu_, bytes);
    ++grow_count_;
    return Lease{buffers_.back().data(), bytes, buffers_.size() - 1};
  }
  // Exhaustion: grow geometrically — double the pool with one slab-sized
  // cudaMalloc instead of one buffer per miss, so a deep pipeline that
  // drains the pool charges a single allocation, not one per chunk.
  const std::size_t added = std::max<std::size_t>(1, buffers_.size());
  const Time t = gpu_.costs().cuda_malloc(added * buffer_bytes_);
  tl.advance(t);
  if (bd != nullptr) bd->add(Phase::MemoryAllocation, t);
  for (std::size_t i = 1; i < added; ++i) {
    buffers_.emplace_back(gpu_, buffer_bytes_);
    free_.push_back(buffers_.size() - 1);
  }
  buffers_.emplace_back(gpu_, buffer_bytes_);
  ++grow_count_;
  return Lease{buffers_.back().data(), buffer_bytes_, buffers_.size() - 1};
}

void BufferPool::release(const Lease& lease) {
  if (!lease.valid()) return;
  if (lease.index >= buffers_.size() || buffers_[lease.index].data() != lease.data) {
    throw std::invalid_argument("BufferPool::release: stale lease");
  }
  free_.push_back(lease.index);
}

}  // namespace gcmpi::gpu
