#include "gpu/buffer_pool.hpp"

#include <stdexcept>

namespace gcmpi::gpu {

BufferPool::BufferPool(Gpu& gpu, std::size_t buffer_bytes, std::size_t count)
    : gpu_(gpu), buffer_bytes_(buffer_bytes) {
  buffers_.reserve(count);
  free_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    buffers_.emplace_back(gpu_, buffer_bytes_);
    free_.push_back(i);
  }
}

BufferPool::Lease BufferPool::acquire(Timeline& tl, std::size_t bytes, Breakdown* bd) {
  if (bytes <= buffer_bytes_ && !free_.empty()) {
    const std::size_t idx = free_.back();
    free_.pop_back();
    return Lease{buffers_[idx].data(), buffer_bytes_, idx};
  }
  // Grow on demand: this is a real cudaMalloc on the critical path, exactly
  // the cost the pre-allocation is designed to avoid in the common case.
  const std::size_t alloc_bytes = bytes > buffer_bytes_ ? bytes : buffer_bytes_;
  const Time t = gpu_.costs().cuda_malloc(alloc_bytes);
  tl.advance(t);
  if (bd != nullptr) bd->add(Phase::MemoryAllocation, t);
  buffers_.emplace_back(gpu_, alloc_bytes);
  ++grow_count_;
  return Lease{buffers_.back().data(), alloc_bytes, buffers_.size() - 1};
}

void BufferPool::release(const Lease& lease) {
  if (!lease.valid()) return;
  if (lease.index >= buffers_.size() || buffers_[lease.index].data() != lease.data) {
    throw std::invalid_argument("BufferPool::release: stale lease");
  }
  free_.push_back(lease.index);
}

}  // namespace gcmpi::gpu
