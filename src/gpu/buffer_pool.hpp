// Pre-allocated device buffer pool (MPC-OPT optimization #1, Sec. IV-B).
//
// Buffers are cudaMalloc'ed once at initialization time (the paper does it
// in MPI_Init) so that per-message sends/receives pay zero allocation cost:
// acquire() hands out a free pooled buffer in O(1); if the pool is
// exhausted it grows on demand, which *is* charged as a cudaMalloc — the
// same behaviour the paper describes ("dynamically increased on demand").
#pragma once

#include <cstddef>
#include <vector>

#include "gpu/buffer.hpp"
#include "gpu/device.hpp"

namespace gcmpi::gpu {

class BufferPool {
 public:
  /// Pre-allocate `count` buffers of `buffer_bytes` each, untimed.
  BufferPool(Gpu& gpu, std::size_t buffer_bytes, std::size_t count);

  /// Handle to a pooled buffer; release() must be called when the request
  /// completes (the framework does this from the protocol layer).
  struct Lease {
    void* data = nullptr;
    std::size_t size = 0;
    std::size_t index = static_cast<std::size_t>(-1);
    [[nodiscard]] bool valid() const { return data != nullptr; }
  };

  /// Acquire a buffer able to hold `bytes`. Free pooled buffer (best fit
  /// by true capacity, so released oversized buffers are reused): no time
  /// charged. Pool exhausted: the pool doubles with ONE timed slab
  /// cudaMalloc (geometric growth, attributed to MemoryAllocation), so
  /// repeated misses amortize. Oversized request with no big-enough free
  /// buffer: a dedicated buffer. Lease::size is the buffer's true capacity.
  [[nodiscard]] Lease acquire(Timeline& tl, std::size_t bytes,
                              Breakdown* bd = nullptr);
  void release(const Lease& lease);

  [[nodiscard]] std::size_t buffer_bytes() const { return buffer_bytes_; }
  [[nodiscard]] std::size_t total_buffers() const { return buffers_.size(); }
  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }
  [[nodiscard]] std::size_t grow_count() const { return grow_count_; }
  [[nodiscard]] std::size_t acquire_count() const { return acquire_count_; }

 private:
  Gpu& gpu_;
  std::size_t buffer_bytes_;
  std::vector<DeviceBuffer> buffers_;
  std::vector<std::size_t> free_;
  std::size_t grow_count_ = 0;
  std::size_t acquire_count_ = 0;
};

}  // namespace gcmpi::gpu
