// Calibrated cost model for CUDA runtime operations.
//
// The paper's optimizations (MPC-OPT / ZFP-OPT) win precisely by removing
// specific per-call CUDA driver costs from the communication critical path.
// This model charges those costs in virtual time, calibrated to the values
// the paper measured:
//   * cudaMemcpy D2H of a 4-byte size word: ~20 us   (Sec. IV-A)
//   * GDRCopy of the same word:             1-5 us   (Sec. IV-B, we use 3)
//   * cudaGetDeviceProperties:              ~1840 us (Sec. V-A)
//   * cached cudaDeviceGetAttribute:        ~1 us    (Sec. V-B)
//   * cudaMalloc dominating small-message latency (83.4% at 256 KB, Fig. 6a)
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace gcmpi::gpu {

using sim::Time;

struct CostModel {
  // --- driver call costs ---
  Time cuda_malloc_base = Time::us(220);     // driver + page-table setup
  double cuda_malloc_per_mib_us = 13.0;      // grows with allocation size
  Time cuda_free = Time::us(90);
  Time cuda_memcpy_d2h_small = Time::us(20); // 4-byte size readback
  Time gdrcopy_small = Time::us(3);          // low-latency mapped read
  Time cuda_memset_launch = Time::us(4);     // async memset enqueue
  Time kernel_launch = Time::us(6);          // host-side enqueue cost
  Time stream_sync = Time::us(4);            // cudaStreamSynchronize overhead
  Time event_record = Time::us(1);
  // CUDA-graph replay: a captured launch sequence (memset + kernels) is
  // re-submitted with one cudaGraphLaunch regardless of node count. The
  // capture + cudaGraphInstantiate cost is paid once, at plan warm-up.
  Time graph_launch = Time::us(2);
  Time graph_instantiate = Time::us(30);
  Time device_properties_query = Time::us(1840);  // cudaGetDeviceProperties
  Time device_attribute_query = Time::us(15);     // first cudaDeviceGetAttribute
  Time cached_attribute_read = Time::us(1);       // static value after caching

  // --- on-device copy engines (GB/s) ---
  double d2d_bandwidth_gbs = 790.0;   // device-to-device copy engine
  double h2d_bandwidth_gbs = 11.0;    // over PCIe
  double d2h_bandwidth_gbs = 11.0;

  /// cudaMalloc(bytes): base driver cost plus a size-dependent term.
  [[nodiscard]] Time cuda_malloc(std::uint64_t bytes) const {
    const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
    return cuda_malloc_base + Time::us(cuda_malloc_per_mib_us * mib);
  }

  /// Bulk cudaMemcpyDeviceToDevice of `bytes` (async on a stream).
  [[nodiscard]] Time d2d_copy(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, d2d_bandwidth_gbs);
  }

  [[nodiscard]] Time h2d_copy(std::uint64_t bytes) const {
    return cuda_memcpy_d2h_small + sim::transfer_time(bytes, h2d_bandwidth_gbs);
  }

  [[nodiscard]] Time d2h_copy(std::uint64_t bytes) const {
    return cuda_memcpy_d2h_small + sim::transfer_time(bytes, d2h_bandwidth_gbs);
  }
};

/// Static description of a GPU part; `compute_scale` rescales compression
/// kernel throughputs that were calibrated on a V100 (Table III).
struct GpuSpec {
  const char* name = "V100";
  int sm_count = 80;
  double peak_fp32_tflops = 14.0;
  double mem_bandwidth_gbs = 900.0;
  double compute_scale = 1.0;  // V100 == 1.0
  std::uint64_t memory_bytes = 16ULL << 30;
  CostModel costs{};
};

[[nodiscard]] GpuSpec v100_spec();
[[nodiscard]] GpuSpec rtx5000_spec();

}  // namespace gcmpi::gpu
