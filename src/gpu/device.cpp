#include "gpu/device.hpp"

#include <cstring>

namespace gcmpi::gpu {

GpuSpec v100_spec() {
  GpuSpec s;
  s.name = "Tesla V100";
  s.sm_count = 80;
  s.peak_fp32_tflops = 14.0;
  s.mem_bandwidth_gbs = 900.0;
  s.compute_scale = 1.0;
  s.memory_bytes = 16ULL << 30;
  return s;
}

GpuSpec rtx5000_spec() {
  GpuSpec s;
  s.name = "Quadro RTX 5000";
  s.sm_count = 48;
  s.peak_fp32_tflops = 11.2;
  s.mem_bandwidth_gbs = 448.0;
  s.compute_scale = 0.55;  // Table-III throughputs rescaled from V100
  s.memory_bytes = 16ULL << 30;
  return s;
}

namespace {
void charge(Timeline& tl, Time t, Breakdown* bd, Phase phase) {
  tl.advance(t);
  if (bd != nullptr) bd->add(phase, t);
}
}  // namespace

Time Stream::launch(Timeline& tl, Time gpu_duration, Breakdown* bd, Phase launch_phase) {
  const Time launch_cost = gpu_->costs().kernel_launch;
  charge(tl, launch_cost, bd, launch_phase);
  const Time start = tail_ > tl.now() ? tail_ : tl.now();
  tail_ = start + gpu_duration;
  return tail_;
}

Time Stream::launch_graph(Timeline& tl, Time gpu_duration, Breakdown* bd, Phase launch_phase) {
  const Time launch_cost = gpu_->costs().graph_launch;
  charge(tl, launch_cost, bd, launch_phase);
  const Time start = tail_ > tl.now() ? tail_ : tl.now();
  tail_ = start + gpu_duration;
  return tail_;
}

Time Stream::enqueue_graphed(Timeline& tl, Time gpu_duration) {
  const Time start = tail_ > tl.now() ? tail_ : tl.now();
  tail_ = start + gpu_duration;
  return tail_;
}

void Stream::synchronize(Timeline& tl, Breakdown* bd, Phase phase) {
  const Time overhead = gpu_->costs().stream_sync;
  if (tail_ > tl.now()) {
    const Time waited = tail_ - tl.now();
    tl.advance_to(tail_);
    if (bd != nullptr) bd->add(phase, waited);
  }
  charge(tl, overhead, bd, phase);
}

Gpu::Gpu(GpuSpec spec, int num_streams) : spec_(spec) {
  streams_.reserve(static_cast<std::size_t>(num_streams));
  for (int i = 0; i < num_streams; ++i) streams_.emplace_back(*this);
}

void* Gpu::malloc_device_untimed(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes_in_use_ + bytes > spec_.memory_bytes) {
    throw std::runtime_error("Gpu: out of device memory");
  }
  auto storage = std::make_unique<std::byte[]>(bytes);
  void* p = storage.get();
  allocations_.emplace(reinterpret_cast<std::uintptr_t>(p),
                       std::make_pair(std::move(storage), bytes));
  bytes_in_use_ += bytes;
  return p;
}

void Gpu::free_device_untimed(void* p) {
  auto it = allocations_.find(reinterpret_cast<std::uintptr_t>(p));
  if (it == allocations_.end()) throw std::invalid_argument("Gpu::free: unknown pointer");
  bytes_in_use_ -= it->second.second;
  allocations_.erase(it);
}

void* Gpu::malloc_device(Timeline& tl, std::size_t bytes, Breakdown* bd) {
  charge(tl, spec_.costs.cuda_malloc(bytes), bd, Phase::MemoryAllocation);
  return malloc_device_untimed(bytes);
}

void Gpu::free_device(Timeline& tl, void* p, Breakdown* bd) {
  charge(tl, spec_.costs.cuda_free, bd, Phase::MemoryAllocation);
  free_device_untimed(p);
}

bool Gpu::owns(const void* p) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  auto it = allocations_.upper_bound(addr);
  if (it == allocations_.begin()) return false;
  --it;
  return addr < it->first + it->second.second;
}

std::size_t Gpu::allocation_size(const void* p) const {
  auto it = allocations_.find(reinterpret_cast<std::uintptr_t>(p));
  if (it == allocations_.end()) throw std::invalid_argument("Gpu::allocation_size: not a base pointer");
  return it->second.second;
}

void Gpu::memcpy_d2h_small(Timeline& tl, void* dst, const void* src,
                           std::size_t bytes, Breakdown* bd) {
  charge(tl, spec_.costs.cuda_memcpy_d2h_small, bd, Phase::DataCopies);
  std::memcpy(dst, src, bytes);
}

void Gpu::gdrcopy_small(Timeline& tl, void* dst, const void* src,
                        std::size_t bytes, Breakdown* bd) {
  charge(tl, spec_.costs.gdrcopy_small, bd, Phase::DataCopies);
  std::memcpy(dst, src, bytes);
}

void Gpu::memcpy_d2d_async(Timeline& tl, Stream& stream, void* dst,
                           const void* src, std::size_t bytes, Breakdown* bd) {
  std::memmove(dst, src, bytes);  // real effect now; time modeled on stream
  stream.launch(tl, spec_.costs.d2d_copy(bytes), bd, Phase::DataCopies);
}

void Gpu::memset_async(Timeline& tl, Stream& stream, void* p, int value,
                       std::size_t bytes, Breakdown* bd) {
  std::memset(p, value, bytes);
  // Tiny device-side duration; enqueue cost dominates.
  charge(tl, spec_.costs.cuda_memset_launch, bd, Phase::MemoryAllocation);
  stream.launch(tl, sim::transfer_time(bytes, spec_.mem_bandwidth_gbs), bd,
                Phase::MemoryAllocation);
}

int Gpu::query_max_grid_dim_via_properties(Timeline& tl, Breakdown* bd) {
  charge(tl, spec_.costs.device_properties_query, bd, Phase::DeviceQuery);
  return max_grid_dim_;
}

int Gpu::query_max_grid_dim_cached(Timeline& tl, Breakdown* bd) {
  if (!attr_cached_) {
    charge(tl, spec_.costs.device_attribute_query, bd, Phase::DeviceQuery);
    attr_cached_ = true;
  } else {
    charge(tl, spec_.costs.cached_attribute_read, bd, Phase::DeviceQuery);
  }
  return max_grid_dim_;
}

void Gpu::device_synchronize(Timeline& tl, Breakdown* bd) {
  Time latest = tl.now();
  for (const auto& s : streams_) {
    if (s.tail() > latest) latest = s.tail();
  }
  if (latest > tl.now()) {
    const Time waited = latest - tl.now();
    tl.advance_to(latest);
    if (bd != nullptr) bd->add(Phase::Other, waited);
  }
  charge(tl, spec_.costs.stream_sync, bd, Phase::Other);
}

}  // namespace gcmpi::gpu
