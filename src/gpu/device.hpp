// Simulated GPU device: a real host-memory heap tagged as "device memory"
// plus virtual-time models for CUDA runtime calls and in-order streams.
//
// Bytes are real (kernels executed on the host transform real buffers, so
// compression ratios and accuracy are genuine); *time* is virtual, charged
// through CostModel / Stream. The pointer registry lets the MPI layer
// detect device buffers the way CUDA-aware MPIs use cuPointerGetAttribute.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "sim/timeline.hpp"
#include "sim/stats.hpp"

namespace gcmpi::gpu {

using sim::Timeline;
using sim::Breakdown;
using sim::Phase;
using sim::Time;

class Gpu;

/// In-order execution queue, the analog of a cudaStream_t. Kernel launches
/// are asynchronous with respect to the host actor: the launch charges only
/// host-side enqueue cost; the work completes at `tail()` in virtual time.
class Stream {
 public:
  explicit Stream(Gpu& gpu) : gpu_(&gpu) {}

  /// Enqueue `gpu_duration` of device work. Charges host launch overhead to
  /// `tl` (attributed to `launch_phase` if a breakdown is given) and
  /// returns the completion time of the enqueued work.
  Time launch(Timeline& tl, Time gpu_duration, Breakdown* bd = nullptr,
              Phase launch_phase = Phase::Other);

  /// Enqueue `gpu_duration` of device work via a pre-instantiated CUDA
  /// graph: one cudaGraphLaunch replaces the whole captured sequence of
  /// memset/kernel enqueues, so the host-side cost is graph_launch no
  /// matter how many nodes the graph holds.
  Time launch_graph(Timeline& tl, Time gpu_duration, Breakdown* bd = nullptr,
                    Phase launch_phase = Phase::Other);

  /// Enqueue `gpu_duration` of device work that is a node of a graph whose
  /// cudaGraphLaunch was already charged (via launch_graph on the first
  /// node's stream): the node costs no additional host time.
  Time enqueue_graphed(Timeline& tl, Time gpu_duration);

  /// Block the host actor until all enqueued work completed
  /// (cudaStreamSynchronize).
  void synchronize(Timeline& tl, Breakdown* bd = nullptr,
                   Phase phase = Phase::Other);

  /// Completion time of the last enqueued operation.
  [[nodiscard]] Time tail() const { return tail_; }

 private:
  Gpu* gpu_;
  Time tail_ = Time::zero();
};

/// One simulated GPU. Owns a device heap (real memory), streams, and the
/// attribute cache that ZFP-OPT introduces.
class Gpu {
 public:
  explicit Gpu(GpuSpec spec, int num_streams = 8);
  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] const CostModel& costs() const { return spec_.costs; }

  // --- device memory (real bytes, modeled allocation time) ---

  /// cudaMalloc: real allocation + virtual-time driver cost.
  void* malloc_device(Timeline& tl, std::size_t bytes, Breakdown* bd = nullptr);
  /// cudaFree (charged off the critical path rarely matters; still modeled).
  void free_device(Timeline& tl, void* p, Breakdown* bd = nullptr);
  /// Allocation with *no* time charge — used at init time (MPI_Init pools).
  void* malloc_device_untimed(std::size_t bytes);
  void free_device_untimed(void* p);

  /// True if `p` points into this device's heap (any offset).
  [[nodiscard]] bool owns(const void* p) const;
  /// Bytes usable at `p` (p must be the start of an allocation).
  [[nodiscard]] std::size_t allocation_size(const void* p) const;
  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }
  [[nodiscard]] std::size_t allocation_count() const { return allocations_.size(); }

  // --- copies ---

  /// Blocking cudaMemcpy D2H of a small control word (the MPC size fetch).
  void memcpy_d2h_small(Timeline& tl, void* dst, const void* src,
                        std::size_t bytes, Breakdown* bd = nullptr);
  /// GDRCopy read of a small control word (the MPC-OPT optimization).
  void gdrcopy_small(Timeline& tl, void* dst, const void* src,
                     std::size_t bytes, Breakdown* bd = nullptr);
  /// Async D2D copy on `stream` (used to merge MPC-OPT partitions).
  void memcpy_d2d_async(Timeline& tl, Stream& stream, void* dst,
                        const void* src, std::size_t bytes, Breakdown* bd = nullptr);
  /// Async memset (the d_off "-1" initialization).
  void memset_async(Timeline& tl, Stream& stream, void* p, int value,
                    std::size_t bytes, Breakdown* bd = nullptr);

  // --- device attribute queries (the ZFP-OPT fix, Sec. V) ---

  /// cudaGetDeviceProperties: full property struct, ~1.84 ms every call.
  int query_max_grid_dim_via_properties(Timeline& tl, Breakdown* bd = nullptr);
  /// cudaDeviceGetAttribute with static caching: first call ~15 us, then ~1 us.
  int query_max_grid_dim_cached(Timeline& tl, Breakdown* bd = nullptr);
  [[nodiscard]] bool attribute_cache_warm() const { return attr_cached_; }

  // --- streams ---
  [[nodiscard]] Stream& stream(int i) { return streams_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int num_streams() const { return static_cast<int>(streams_.size()); }
  /// Wait for *all* streams (cudaDeviceSynchronize).
  void device_synchronize(Timeline& tl, Breakdown* bd = nullptr);

 private:
  friend class Stream;
  GpuSpec spec_;
  std::vector<Stream> streams_;
  // Heap: start address -> owning storage. std::map keeps ordering for the
  // `owns` containment query.
  std::map<std::uintptr_t, std::pair<std::unique_ptr<std::byte[]>, std::size_t>> allocations_;
  std::size_t bytes_in_use_ = 0;
  bool attr_cached_ = false;
  int max_grid_dim_ = 2147483647;  // CUDA maxGridSize[0] on both parts
};

}  // namespace gcmpi::gpu
