// Alltoall/shuffle engine: batched one-shot compression for the pairwise
// exchange (the hot path behind the paper's Dask/cuPy shuffle results).
//
// The naive alltoall compresses each of the P-1 per-destination blocks
// with its own kernel launch and sync, so launch overhead scales O(P) per
// rank. The batched engine compresses ALL outgoing blocks in one launch
// round (CompressionManager::compress_batch divides the SMs across the
// blocks and packs them into one wire slab), then serves every destination
// its slice over the scattered pairwise schedule — at step t, rank r sends
// to (r+t)%P and receives from (r-t)%P, so no port sees two slices at
// once. Receivers enqueue each arriving slice's decompression without a
// stream sync (it overlaps the remaining transfers) and synchronize once
// at the end.
//
// Every slice is a WireMessage moved with isend_wire/irecv_wire, so it
// rides the rendezvous reliability layer: a dropped or corrupted slice is
// CRC-detected and retransmits only itself, and injected decode faults are
// recovered by local kernel relaunch (decompress_with_retry).
#include <cstring>
#include <vector>

#include "mpi/world.hpp"

namespace gcmpi::mpi {

core::CollectiveAlgorithm Rank::select_alltoall(std::uint64_t block_bytes) const {
  // Same Auto-only refinement + all-ranks-agree contract as select_allreduce.
  if (world_.options().adaptive != nullptr &&
      world_.options().collectives.alltoall_algorithm == core::CollectiveAlgorithm::Auto) {
    return world_.options().adaptive->choose_alltoall(ctx_.now(), rank_, block_bytes,
                                                      world_.cluster().ranks());
  }
  return core::resolve_alltoall_algorithm(world_.options().collectives, block_bytes,
                                          world_.cluster().ranks());
}

void Rank::alltoall_batched(const std::uint8_t* sendbuf, std::uint64_t block_bytes,
                            std::uint8_t* recvbuf, int tag) {
  const int P = size();
  const sim::Time started = ctx_.now();
  CollStats st;
  auto& mgr = compression();

  // One batched compression launch for the P-1 outgoing blocks, built in
  // the scattered send order so wires[step-1] is step's destination.
  std::vector<WireBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(P - 1));
  for (int step = 1; step < P; ++step) {
    const int dst = (rank_ + step) % P;
    blocks.push_back({sendbuf + static_cast<std::uint64_t>(dst) * block_bytes, block_bytes,
                      dst, tag});
  }
  const sim::Time c0 = ctx_.now();
  std::vector<WireMessage> wires = make_wire_batch(blocks);
  st.compress_busy += ctx_.now() - c0;

  // Every slice already exists in the wire slab, so post the whole schedule
  // at once: the P-1 rendezvous handshakes and wire transfers pipeline on
  // the fabric instead of paying one round-trip per pairwise step.
  std::vector<WireMessage> inbox(static_cast<std::size_t>(P - 1));
  std::vector<Request> rreqs;
  std::vector<Request> sreqs;
  rreqs.reserve(inbox.size());
  sreqs.reserve(inbox.size());
  for (int step = 1; step < P; ++step) {
    const int src = (rank_ - step + P) % P;
    rreqs.push_back(irecv_wire(&inbox[static_cast<std::size_t>(step - 1)], src, tag));
  }
  for (int step = 1; step < P; ++step) {
    const int dst = (rank_ + step) % P;
    sreqs.push_back(isend_wire(wires[static_cast<std::size_t>(step - 1)], dst, tag));
  }

  std::vector<core::CompressionManager::RecvStaging> stagings;
  for (int step = 1; step < P; ++step) {
    const int src = (rank_ - step + P) % P;

    const sim::Time t0 = ctx_.now();
    (void)wait(rreqs[static_cast<std::size_t>(step - 1)]);
    st.transfer_busy += ctx_.now() - t0;
    ++st.hops;

    // Enqueue the arrived slice's decompression; the kernels overlap the
    // remaining transfers and are drained once, below.
    const sim::Time d0 = ctx_.now();
    sim::Timeline tl(ctx_.now());
    WireMessage& in = inbox[static_cast<std::size_t>(step - 1)];
    auto* out = recvbuf + static_cast<std::uint64_t>(src) * block_bytes;
    if (in.header.compressed) {
      auto staging = mgr.prepare_receive(tl, in.header);
      std::memcpy(staging.data, in.payload->data(), in.payload->size());
      // Rotate the decode stream per slice: the P-1 decompressions are
      // independent, so they run concurrently instead of queueing on one
      // stream behind each other.
      mgr.decompress_with_retry(tl, in.header, staging, out, block_bytes,
                                /*synchronize=*/false, /*max_retries=*/8,
                                /*stream_hint=*/step - 1);
      stagings.push_back(std::move(staging));
    } else if (!in.payload->empty()) {
      std::memcpy(out, in.payload->data(), in.payload->size());
    }
    ctx_.advance_to(tl.now());
    st.reduce_busy += ctx_.now() - d0;
  }
  const sim::Time w0 = ctx_.now();
  waitall(sreqs);
  st.transfer_busy += ctx_.now() - w0;

  // Single sync covers every enqueued decompression of the collective.
  sim::Timeline end(ctx_.now());
  const sim::Time s0 = end.now();
  gpu().device_synchronize(end, &mgr.receiver_breakdown());
  for (auto& s : stagings) mgr.release_receive(end, s);
  ctx_.advance_to(end.now());
  st.reduce_busy += ctx_.now() - s0;

  record_collective("alltoall", core::CollectiveAlgorithm::BatchedPairwise,
                    static_cast<std::uint64_t>(P) * block_bytes, started, st);
}

std::vector<Request> Rank::isend_batched(const std::vector<WireBlock>& blocks) {
  // Batch-compress only the blocks the normal isend path would compress,
  // and only when there are at least two of them to amortize the launch
  // over; everything else (small, host-resident, intra-node-exempt blocks)
  // takes the ordinary eager/rendezvous path.
  std::vector<std::size_t> batched;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto& b = blocks[i];
    if (b.peer != rank_ && world_.batch_compress_eligible(rank_, b.peer, b.buf, b.bytes)) {
      batched.push_back(i);
    }
  }

  std::vector<Request> reqs(blocks.size());
  std::vector<bool> is_batched(blocks.size(), false);
  if (batched.size() >= 2) {
    std::vector<WireBlock> sub;
    sub.reserve(batched.size());
    for (std::size_t idx : batched) sub.push_back(blocks[idx]);
    const std::vector<WireMessage> wires = make_wire_batch(sub);
    for (std::size_t k = 0; k < batched.size(); ++k) {
      const auto& b = blocks[batched[k]];
      reqs[batched[k]] = isend_wire(wires[k], b.peer, b.tag);
      is_batched[batched[k]] = true;
    }
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!is_batched[i]) reqs[i] = isend(blocks[i].buf, blocks[i].bytes, blocks[i].peer,
                                        blocks[i].tag);
  }
  return reqs;
}

}  // namespace gcmpi::mpi
