#include "mpi/channel.hpp"

#include <cstring>
#include <stdexcept>

namespace gcmpi::mpi {

namespace {
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
T get(std::span<const std::uint8_t> in, std::size_t& pos) {
  if (pos + sizeof(T) > in.size()) throw std::invalid_argument("RepeatHeader: truncated");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

std::size_t RepeatHeader::wire_bytes() const {
  return 4 + 4 + 8 + 4 + 1 + 1 + partition_bytes.size() * 4;
}

std::vector<std::uint8_t> RepeatHeader::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_bytes());
  put<std::uint32_t>(out, channel);
  put<std::uint32_t>(out, seq);
  put<std::uint64_t>(out, wire_len);
  put<std::uint32_t>(out, crc32c);
  put<std::uint8_t>(out, flags);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(partition_bytes.size()));
  for (std::uint32_t b : partition_bytes) put<std::uint32_t>(out, b);
  return out;
}

RepeatHeader RepeatHeader::deserialize(std::span<const std::uint8_t> in) {
  RepeatHeader r;
  std::size_t pos = 0;
  r.channel = get<std::uint32_t>(in, pos);
  r.seq = get<std::uint32_t>(in, pos);
  r.wire_len = get<std::uint64_t>(in, pos);
  r.crc32c = get<std::uint32_t>(in, pos);
  r.flags = get<std::uint8_t>(in, pos);
  const auto nparts = get<std::uint8_t>(in, pos);
  r.partition_bytes.reserve(nparts);
  for (std::uint8_t i = 0; i < nparts; ++i) {
    r.partition_bytes.push_back(get<std::uint32_t>(in, pos));
  }
  if (pos != in.size()) throw std::invalid_argument("RepeatHeader: trailing bytes");
  return r;
}

core::CompressionHeader RepeatHeader::expand(const core::CompressionHeader& tmpl) const {
  core::CompressionHeader h = tmpl;
  h.compressed = compressed();
  h.compressed_bytes = wire_len;
  h.payload_crc32c = crc32c;
  h.partition_bytes = partition_bytes;
  if (!h.compressed) {
    // Raw payloads (incompressible fallback or decode-fault degrade) are
    // described by a plain header, exactly as the cold protocol's raw wire.
    h.algorithm = core::Algorithm::None;
  }
  return h;
}

core::CompressionHeader make_channel_template(const core::CompressionHeader& first,
                                              std::uint64_t bytes) {
  core::CompressionHeader t;
  // Shape-invariant control parameters ("A" fields): survive in the
  // template. A channel warmed on a raw first message still records the
  // codec the route is configured for via the caller overriding algorithm.
  t.algorithm = first.algorithm;
  t.original_bytes = bytes;
  t.mpc_dimensionality = first.mpc_dimensionality;
  t.mpc_chunk_values = first.mpc_chunk_values;
  t.zfp_rate = first.zfp_rate;
  // Per-message results ("B" fields) travel in each RepeatHeader instead.
  t.compressed = false;
  t.compressed_bytes = 0;
  t.payload_crc32c = 0;
  return t;
}

}  // namespace gcmpi::mpi
