// Persistent channels: plan-cached, handshake-free repeated exchanges.
//
// Iterative applications (halo exchanges, alltoall training steps) send the
// same (source, destination, tag, shape) message every timestep, yet the
// rendezvous protocol renegotiates each one from scratch: an RTS carrying
// the full compression header, a CTS granting the receiver staging it just
// acquired, and a full launch-plan derivation on both GPUs. A persistent
// channel amortizes all of it:
//
//   * warm-up — after the first successful cold delivery on an eligible
//     (src, dst, tag, shape) route, the receiver pre-acquires staging for
//     the shape, caches the compression-header template, and grants the
//     sender N credits in ONE control packet;
//   * warm sends — while credits last the sender skips the RTS/CTS round
//     trip entirely: the payload ships with a compact RepeatHeader (channel
//     id + sequence + wire length + CRC) from which the receiver rebuilds
//     the full header using the cached template. Credits refill as the
//     receiver consumes, piggybacked on the (zero-cost) completion
//     notification, so a steady-state iteration costs zero control-plane
//     round trips and zero staging acquisitions;
//   * plan reuse — compression/decompression on a warm channel runs through
//     the CompressionManager plan cache (core/plan_cache.hpp): held staging
//     slots, skipped codec setup, CUDA-graph launch replay;
//   * fault composition — a dropped or corrupted warm payload retransmits
//     on the channel (per-message watchdog/NACK, same budget as the serial
//     protocol) without tearing the channel down; a decompression fault
//     degrades THAT message to a raw resend while the channel stays warm.
//
// Channels are strictly opt-in (WorldOptions::persistent). Off, the wire
// format and every charge are byte-identical to the cold protocol, so the
// pinned world-dump SHAs are unaffected.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "core/header.hpp"
#include "core/manager.hpp"

namespace gcmpi::mpi {

/// Channel identity. User point-to-point sends key on the exact tag; the
/// collective engines mint a fresh tag per invocation, so their wire sends
/// key on tag_class = kWireTagClass instead and the channel persists across
/// invocations (the real tag still travels in the message envelope for
/// MPI matching).
struct ChannelKey {
  int src = -1;
  int dst = -1;
  int tag_class = 0;  // exact tag, or kWireTagClass for engine wire sends
  std::uint64_t bytes = 0;
  auto operator<=>(const ChannelKey&) const = default;
};

inline constexpr int kWireTagClass = -1;

/// The compact per-message header of a warm send — the whole point of the
/// channel. The cold protocol ships rts_bytes + a full serialized
/// CompressionHeader and answers with cts_bytes; a warm message carries
/// only what changes between iterations: which channel, which sequence
/// number, how many wire bytes, their CRC, and (MPC) the per-partition
/// split. Everything else is reconstructed from the channel's cached
/// template.
struct RepeatHeader {
  std::uint32_t channel = 0;
  std::uint32_t seq = 0;
  std::uint64_t wire_len = 0;   // payload bytes on the wire
  std::uint32_t crc32c = 0;     // payload CRC (reliability layer; 0 if off)
  std::uint8_t flags = 0;
  std::vector<std::uint32_t> partition_bytes;  // MPC multi-stream split

  static constexpr std::uint8_t kCompressed = 0x1;  // payload is encoded
  static constexpr std::uint8_t kRawDegrade = 0x2;  // decode-fault fallback

  [[nodiscard]] bool compressed() const { return (flags & kCompressed) != 0; }

  /// Serialized size as charged on the wire.
  [[nodiscard]] std::size_t wire_bytes() const;
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static RepeatHeader deserialize(std::span<const std::uint8_t> in);

  /// Rebuild the full compression header the receiver needs from this
  /// repeat record plus the channel's cached template.
  [[nodiscard]] core::CompressionHeader expand(const core::CompressionHeader& tmpl) const;

  bool operator==(const RepeatHeader&) const = default;
};

/// Build the template cached at warm-up from the first delivered header:
/// the shape-invariant fields survive, the per-message ones are cleared.
[[nodiscard]] core::CompressionHeader make_channel_template(
    const core::CompressionHeader& first, std::uint64_t bytes);

/// One persistent channel. Lives in the World's channel table; the sender
/// side uses the credit/sequence fields, the receiver side the staging and
/// consume cursor (both ends of a simulated channel share the object, as
/// the real implementation shares the channel state via the control plane).
struct Channel {
  std::uint32_t id = 0;
  ChannelKey key;

  // --- sender side ---
  bool warm = false;
  int credits = 0;
  std::uint32_t next_send_seq = 0;

  // --- receiver side ---
  std::uint32_t next_consume_seq = 0;
  core::CompressionHeader tmpl;  // cached at warm-up, expands RepeatHeaders
  core::CompressionManager::RecvStaging staging;  // held across iterations
  bool staging_held = false;

  // --- telemetry (flushed as one ChannelRecord at end of run) ---
  std::uint32_t warmups = 0;        // cold->warm transitions (grants sent)
  std::uint64_t warm_sends = 0;     // messages that skipped the handshake
  std::uint64_t credit_stalls = 0;  // sends parked waiting for a credit
  std::uint64_t retransmits = 0;    // warm payload re-pushes (NACK/timeout)
  std::uint64_t raw_degrades = 0;   // decode faults degraded to raw resend
  std::uint64_t plan_hits = 0;      // plan-cache hits charged on this channel
  std::uint64_t plan_misses = 0;
  std::uint64_t header_bytes_saved = 0;  // cold control bytes avoided
};

}  // namespace gcmpi::mpi
