// Collective algorithm engine: compression-aware ring reduce-scatter /
// allgather allreduce and the hierarchical intra-node + leader-ring
// variant (gZCCL/ZCCL-style, folded onto the paper's wire primitives).
//
// Every inter-rank hop moves a WireMessage, so it rides the rendezvous
// reliability layer: a dropped or corrupted hop re-pushes only that hop's
// payload (CRC verification happens before wire delivery). Each arriving
// shard is folded into the device accumulator with the manager's FUSED
// decompress+reduce kernels, enqueued without a stream sync so the decode
// of hop t overlaps the exchange of hop t+1; the accumulator is drained
// only right before its next recompression.
//
// Determinism: the fold order of every algorithm is the canonical order
// replayed by core::allreduce_oracle — ring rotation per shard, ascending
// rank order within a node — and the fused primitive always folds
// accumulator-first (acc = op(acc, incoming)), so results are bit-identical
// across runs and delivery timings.
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/world.hpp"

namespace gcmpi::mpi {

core::CollectiveAlgorithm Rank::select_allreduce(std::uint64_t bytes) const {
  const auto& cl = world_.cluster();
  // The adaptive control plane only refines Auto: a forced algorithm stays
  // forced. Every rank of one collective receives the same answer (the
  // controller keys a shared decision sequence by per-rank round index).
  if (world_.options().adaptive != nullptr &&
      world_.options().collectives.algorithm == core::CollectiveAlgorithm::Auto) {
    return world_.options().adaptive->choose_allreduce(ctx_.now(), rank_, bytes, cl.ranks(),
                                                       cl.nodes, cl.gpus_per_node);
  }
  return core::resolve_allreduce_algorithm(world_.options().collectives, bytes,
                                           cl.ranks(), cl.nodes, cl.gpus_per_node);
}

void Rank::record_collective(const char* op, core::CollectiveAlgorithm algorithm,
                             std::uint64_t bytes, sim::Time started,
                             const CollStats& st) {
  core::Telemetry* t = world_.options().telemetry;
  if (t == nullptr) return;
  core::CollectiveRecord rec;
  rec.at = started;
  rec.rank = rank_;
  rec.op = op;
  rec.algorithm = core::collective_algorithm_name(algorithm);
  rec.bytes = bytes;
  rec.hops = st.hops;
  rec.reduces = st.reduces;
  rec.span = ctx_.now() - started;
  rec.compress_busy = st.compress_busy;
  rec.transfer_busy = st.transfer_busy;
  rec.reduce_busy = st.reduce_busy;
  t->record_collective(rec);
}

void Rank::ring_reduce_scatter_members(const std::vector<int>& members, int pos,
                                       float* acc, std::size_t n, ReduceOp op, int tag,
                                       CollStats& st) {
  const int N = static_cast<int>(members.size());
  if (N <= 1 || n == 0) return;
  auto& mgr = compression();
  const int right = members[static_cast<std::size_t>((pos + 1) % N)];
  const int left = members[static_cast<std::size_t>((pos - 1 + N) % N)];

  // Offset -1 schedule: at step t this member sends shard (pos-t-1) and
  // receives shard (pos-t-2), so after N-1 steps position s owns the fully
  // reduced shard s (MPI_Reduce_scatter_block placement for free).
  std::vector<core::CompressionManager::RecvStaging> stagings;
  bool kernels_in_flight = false;
  auto drain = [&] {
    sim::Timeline tl(ctx_.now());
    gpu().device_synchronize(tl, &mgr.receiver_breakdown());
    for (auto& s : stagings) mgr.release_receive(tl, s);
    stagings.clear();
    ctx_.advance_to(tl.now());
    kernels_in_flight = false;
  };

  for (int step = 0; step < N - 1; ++step) {
    const int send_s = (pos - step - 1 + 2 * N) % N;
    const int recv_s = (pos - step - 2 + 2 * N) % N;
    const auto [slo, shi] = core::shard_range(n, N, send_s);
    const auto [rlo, rhi] = core::shard_range(n, N, recv_s);
    const std::size_t slen = shi - slo;
    const std::size_t rlen = rhi - rlo;

    // The shard going out now is the one the previous step's fused kernels
    // reduced: drain them before recompressing it.
    WireMessage out;
    if (slen > 0) {
      const sim::Time t0 = ctx_.now();
      if (kernels_in_flight) drain();
      out = make_wire(acc + slo, slen * 4);
      st.compress_busy += ctx_.now() - t0;
    }

    // Empty shards are skipped on both sides: the sender's shard at step t
    // is exactly its right neighbor's receive shard, so the skip agrees.
    const sim::Time t1 = ctx_.now();
    Request rr, sr;
    WireMessage in;
    if (rlen > 0) rr = irecv_wire(&in, left, tag);
    if (slen > 0) {
      sr = isend_wire(out, right, tag);
      ++st.hops;
    }
    if (rr) (void)wait(rr);
    if (sr) (void)wait(sr);
    st.transfer_busy += ctx_.now() - t1;

    if (rlen > 0) {
      const sim::Time t2 = ctx_.now();
      sim::Timeline tl(ctx_.now());
      if (in.header.compressed) {
        auto staging = mgr.prepare_receive(tl, in.header);
        std::memcpy(staging.data, in.payload->data(), in.payload->size());
        mgr.decompress_reduce_with_retry(tl, in.header, staging, acc + rlo, rlen * 4, op,
                                         /*synchronize=*/false);
        stagings.push_back(staging);
      } else {
        (void)mgr.reduce_device(tl,
                                reinterpret_cast<const float*>(in.payload->data()),
                                acc + rlo, rlen, op, /*synchronize=*/false);
      }
      ++st.reduces;
      kernels_in_flight = true;
      ctx_.advance_to(tl.now());
      st.reduce_busy += ctx_.now() - t2;
    }
  }
  // Own shard's fused reduce finished the schedule; drain before callers
  // read or recompress the accumulator.
  if (kernels_in_flight) {
    const sim::Time t0 = ctx_.now();
    drain();
    st.reduce_busy += ctx_.now() - t0;
  }
}

void Rank::ring_allgather_members(const std::vector<int>& members, int pos, float* acc,
                                  std::size_t n, int tag, CollStats& st) {
  const int N = static_cast<int>(members.size());
  if (N <= 1 || n == 0) return;
  auto& mgr = compression();
  const int right = members[static_cast<std::size_t>((pos + 1) % N)];
  const int left = members[static_cast<std::size_t>((pos - 1 + N) % N)];

  // Each member compresses its reduced shard ONCE; the wire forms then
  // circulate, with decompression kernels enqueued as shards arrive so they
  // overlap the remaining ring steps (the allgather idiom).
  std::vector<WireMessage> wires(static_cast<std::size_t>(N));
  {
    const auto [lo, hi] = core::shard_range(n, N, pos);
    if (hi > lo) {
      const sim::Time t0 = ctx_.now();
      wires[static_cast<std::size_t>(pos)] = make_wire(acc + lo, (hi - lo) * 4);
      st.compress_busy += ctx_.now() - t0;
    }
  }

  std::vector<core::CompressionManager::RecvStaging> stagings;
  for (int step = 0; step < N - 1; ++step) {
    const int send_s = (pos - step + 2 * N) % N;
    const int recv_s = (pos - step - 1 + 2 * N) % N;
    const auto [slo, shi] = core::shard_range(n, N, send_s);
    const auto [rlo, rhi] = core::shard_range(n, N, recv_s);
    const std::size_t slen = shi - slo;
    const std::size_t rlen = rhi - rlo;

    const sim::Time t0 = ctx_.now();
    Request rr, sr;
    WireMessage in;
    if (rlen > 0) rr = irecv_wire(&in, left, tag);
    if (slen > 0) {
      sr = isend_wire(wires[static_cast<std::size_t>(send_s)], right, tag);
      ++st.hops;
    }
    if (rr) (void)wait(rr);
    if (sr) (void)wait(sr);
    st.transfer_busy += ctx_.now() - t0;

    if (rlen > 0) {
      const sim::Time t1 = ctx_.now();
      sim::Timeline tl(ctx_.now());
      if (in.header.compressed) {
        auto staging = mgr.prepare_receive(tl, in.header);
        std::memcpy(staging.data, in.payload->data(), in.payload->size());
        mgr.decompress_with_retry(tl, in.header, staging, acc + rlo, rlen * 4,
                                  /*synchronize=*/false);
        stagings.push_back(staging);
      } else {
        std::memcpy(acc + rlo, in.payload->data(), in.payload->size());
      }
      ctx_.advance_to(tl.now());
      st.reduce_busy += ctx_.now() - t1;
      wires[static_cast<std::size_t>(recv_s)] = std::move(in);
    }
  }
  // Drain the overlapped decompressions and return the pool buffers.
  sim::Timeline end(ctx_.now());
  gpu().device_synchronize(end, &mgr.receiver_breakdown());
  for (auto& s : stagings) mgr.release_receive(end, s);
  ctx_.advance_to(end.now());
}

void Rank::allreduce_ring(const float* sendbuf, float* recvbuf, std::size_t n,
                          ReduceOp op, int tag) {
  const sim::Time started = ctx_.now();
  CollStats st;
  const int P = size();

  // Device accumulator: the engine always reduces on-GPU, so compression
  // applies even when the caller passed host memory.
  auto* acc = static_cast<float*>(gpu_malloc(n * 4));
  std::memcpy(acc, sendbuf, n * 4);
  compute(gpu().costs().d2d_copy(n * 4));

  std::vector<int> members(static_cast<std::size_t>(P));
  std::iota(members.begin(), members.end(), 0);
  ring_reduce_scatter_members(members, rank_, acc, n, op, tag, st);
  ring_allgather_members(members, rank_, acc, n, tag, st);

  std::memcpy(recvbuf, acc, n * 4);
  compute(gpu().costs().d2d_copy(n * 4));
  gpu_free(acc);
  record_collective("allreduce", core::CollectiveAlgorithm::Ring, n * 4, started, st);
}

void Rank::allreduce_hierarchical(const float* sendbuf, float* recvbuf, std::size_t n,
                                  ReduceOp op, int tag) {
  const sim::Time started = ctx_.now();
  CollStats st;
  const auto& cl = world_.cluster();
  const int leader = cl.node_leader(rank_);
  const int node_end = std::min(leader + cl.gpus_per_node, size());

  auto* acc = static_cast<float*>(gpu_malloc(n * 4));
  std::memcpy(acc, sendbuf, n * 4);
  compute(gpu().costs().d2d_copy(n * 4));

  if (rank_ != leader) {
    // Member: ship the contribution to the node leader, receive the final
    // vector back in wire form.
    sim::Time t0 = ctx_.now();
    WireMessage w = make_wire(acc, n * 4);
    st.compress_busy += ctx_.now() - t0;
    t0 = ctx_.now();
    Request sr = isend_wire(w, leader, tag);
    (void)wait(sr);
    ++st.hops;
    WireMessage in;
    Request rr = irecv_wire(&in, leader, tag);
    (void)wait(rr);
    st.transfer_busy += ctx_.now() - t0;
    t0 = ctx_.now();
    decompress_wire(in, acc, n * 4);
    st.reduce_busy += ctx_.now() - t0;
  } else {
    // Phase 1: fold the node's members into the leader accumulator in
    // ascending rank order (the canonical intra-node order), fused on-GPU.
    auto& mgr = compression();
    std::vector<core::CompressionManager::RecvStaging> stagings;
    for (int m = leader + 1; m < node_end; ++m) {
      sim::Time t0 = ctx_.now();
      WireMessage in;
      Request rr = irecv_wire(&in, m, tag);
      (void)wait(rr);
      st.transfer_busy += ctx_.now() - t0;
      t0 = ctx_.now();
      sim::Timeline tl(ctx_.now());
      if (in.header.compressed) {
        auto staging = mgr.prepare_receive(tl, in.header);
        std::memcpy(staging.data, in.payload->data(), in.payload->size());
        mgr.decompress_reduce_with_retry(tl, in.header, staging, acc, n * 4, op,
                                         /*synchronize=*/false);
        stagings.push_back(staging);
      } else {
        (void)mgr.reduce_device(tl,
                                reinterpret_cast<const float*>(in.payload->data()), acc,
                                n, op, /*synchronize=*/false);
      }
      ++st.reduces;
      ctx_.advance_to(tl.now());
      st.reduce_busy += ctx_.now() - t0;
    }
    if (!stagings.empty() || node_end - leader > 1) {
      // Drain the intra-node fused reduces before the leader ring
      // recompresses shards of the accumulator.
      sim::Timeline tl(ctx_.now());
      gpu().device_synchronize(tl, &mgr.receiver_breakdown());
      for (auto& s : stagings) mgr.release_receive(tl, s);
      ctx_.advance_to(tl.now());
    }

    // Phase 2: ring allreduce of node partials across the leader ring.
    std::vector<int> leaders(static_cast<std::size_t>(cl.nodes));
    for (int node = 0; node < cl.nodes; ++node) {
      leaders[static_cast<std::size_t>(node)] = node * cl.gpus_per_node;
    }
    const int my_node = cl.node_of(rank_);
    ring_reduce_scatter_members(leaders, my_node, acc, n, op, tag, st);
    ring_allgather_members(leaders, my_node, acc, n, tag, st);

    // Phase 3: hand the result back to the node's members (compressed once,
    // wire-forwarded to each).
    if (node_end - leader > 1) {
      sim::Time t0 = ctx_.now();
      WireMessage w = make_wire(acc, n * 4);
      st.compress_busy += ctx_.now() - t0;
      t0 = ctx_.now();
      std::vector<Request> sends;
      for (int m = leader + 1; m < node_end; ++m) sends.push_back(isend_wire(w, m, tag));
      waitall(sends);
      st.hops += static_cast<std::uint32_t>(node_end - leader - 1);
      st.transfer_busy += ctx_.now() - t0;
    }
  }

  std::memcpy(recvbuf, acc, n * 4);
  compute(gpu().costs().d2d_copy(n * 4));
  gpu_free(acc);
  record_collective("allreduce", core::CollectiveAlgorithm::Hierarchical, n * 4, started,
                    st);
}

void Rank::reduce_scatter(const float* sendbuf, float* recvbuf, std::size_t recvcount,
                          ReduceOp op) {
  const int tag = next_coll_tag();
  const int P = size();
  const std::size_t n = recvcount * static_cast<std::size_t>(P);
  if (P == 1) {
    std::memcpy(recvbuf, sendbuf, recvcount * 4);
    return;
  }
  if (select_allreduce(n * 4) == core::CollectiveAlgorithm::Linear) {
    // Small/low-rank: binomial reduce to rank 0, then scatter the shards.
    std::vector<float> full(rank_ == 0 ? n : 0);
    reduce(sendbuf, full.data(), n, op, 0);
    scatter(full.data(), recvcount * 4, recvbuf, 0);
    return;
  }
  // Ring reduce-scatter: with n = P*recvcount the balanced shards are
  // exactly the recvcount-sized blocks, so position r ends owning block r.
  const sim::Time started = ctx_.now();
  CollStats st;
  auto* acc = static_cast<float*>(gpu_malloc(n * 4));
  std::memcpy(acc, sendbuf, n * 4);
  compute(gpu().costs().d2d_copy(n * 4));
  std::vector<int> members(static_cast<std::size_t>(P));
  std::iota(members.begin(), members.end(), 0);
  ring_reduce_scatter_members(members, rank_, acc, n, op, tag, st);
  const auto [lo, hi] = core::shard_range(n, P, rank_);
  std::memcpy(recvbuf, acc + lo, (hi - lo) * 4);
  compute(gpu().costs().d2d_copy((hi - lo) * 4));
  gpu_free(acc);
  record_collective("reduce_scatter", core::CollectiveAlgorithm::Ring, n * 4, started,
                    st);
}

}  // namespace gcmpi::mpi
