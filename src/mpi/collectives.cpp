// Collective operations built on the point-to-point layer, so every hop of
// every collective inherits on-the-fly compression exactly as the paper's
// modified OSU collective benchmarks do (Sec. VI-B).
//
// Algorithms follow the classic MPICH choices: binomial broadcast/reduce,
// ring allgather (bandwidth-optimal for large messages), Rabenseifner-style
// non-power-of-two folding + recursive doubling for allreduce, pairwise
// exchange for alltoall, dissemination barrier.
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "mpi/world.hpp"

namespace gcmpi::mpi {

namespace {

constexpr int kCollTagBase = 1 << 20;

// The canonical accumulator-first fold shared with the collective engine
// and the host oracle (see compress/reduce.hpp).
void apply_op(float* acc, const float* in, std::size_t n, ReduceOp op) {
  comp::reduce_inplace(acc, in, n, op);
}

}  // namespace

int Rank::next_coll_tag() { return kCollTagBase + (coll_seq_++ & 0xFFFF); }

void Rank::barrier() {
  const int tag = next_coll_tag();
  const int P = size();
  char token = 0;
  for (int mask = 1; mask < P; mask <<= 1) {
    const int dst = (rank_ + mask) % P;
    const int src = (rank_ - mask + P) % P;
    sendrecv(&token, 1, dst, tag, &token, 1, src, tag);
  }
}

void Rank::bcast(void* buf, std::uint64_t bytes, int root) {
  const int tag = next_coll_tag();
  const int P = size();
  if (P == 1) return;
  const int vrank = (rank_ - root + P) % P;

  // Small messages: plain binomial tree over the eager path.
  if (bytes <= world_.options().eager_threshold) {
    int mask = 1;
    while (mask < P) {
      if (vrank & mask) {
        const int src = ((vrank - mask) + root) % P;
        (void)recv(buf, bytes, src, tag);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < P) {
        const int dst = ((vrank + mask) + root) % P;
        send(buf, bytes, dst, tag);
      }
      mask >>= 1;
    }
    return;
  }

  // Topology-aware staging: one inter-node wire transit per node instead of
  // one per rank (see hier_engine.cpp).
  if (select_bcast(bytes) == core::CollectiveAlgorithm::Hierarchical) {
    bcast_hierarchical(buf, bytes, root, tag);
    return;
  }

  // Chunked pipelined hops: when the pipeline covers this size, run the
  // binomial tree over plain point-to-point sends so every edge overlaps
  // compression, transfer, and decompression chunk by chunk. The wire-
  // forwarding scheme below can't chunk — it ships one opaque stream — and
  // for pipeline-sized messages the per-hop overlap wins over forwarding.
  const WorldOptions& opt = world_.options();
  if (opt.pipeline.enabled && opt.pipeline.collectives && bytes >= opt.pipeline.min_bytes) {
    int pmask = 1;
    if (vrank != 0) {
      while (pmask < P) {
        if (vrank & pmask) {
          const int src = ((vrank - pmask) + root) % P;
          (void)recv(buf, bytes, src, tag);
          break;
        }
        pmask <<= 1;
      }
    } else {
      while (pmask < P) pmask <<= 1;
    }
    pmask >>= 1;
    std::vector<Request> sends;
    while (pmask > 0) {
      if (vrank + pmask < P) {
        const int dst = ((vrank + pmask) + root) % P;
        sends.push_back(isend(buf, bytes, dst, tag));
      }
      pmask >>= 1;
    }
    waitall(sends);
    return;
  }

  // Compression-aware binomial broadcast: the root compresses ONCE; every
  // intermediate rank forwards the wire representation to its children
  // before decompressing its own copy, so neither recompression nor
  // decompression sits on the tree's critical path.
  WireMessage msg;
  int mask = 1;
  if (vrank != 0) {
    while (mask < P) {
      if (vrank & mask) {
        const int src = ((vrank - mask) + root) % P;
        Request r = irecv_wire(&msg, src, tag);
        (void)wait(r);
        break;
      }
      mask <<= 1;
    }
  } else {
    msg = make_wire(buf, bytes);
    while (mask < P) mask <<= 1;
  }
  mask >>= 1;
  std::vector<Request> sends;
  while (mask > 0) {
    if (vrank + mask < P) {
      const int dst = ((vrank + mask) + root) % P;
      sends.push_back(isend_wire(msg, dst, tag));
    }
    mask >>= 1;
  }
  if (vrank != 0) decompress_wire(msg, buf, bytes);  // overlaps the forwards
  waitall(sends);
}

void Rank::allgather(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf) {
  const int tag = next_coll_tag();
  const int P = size();
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  std::memcpy(out + static_cast<std::uint64_t>(rank_) * block_bytes, sendbuf, block_bytes);
  if (P == 1) return;

  const int right = (rank_ + 1) % P;
  const int left = (rank_ - 1 + P) % P;

  // Small blocks: recursive doubling (log P rounds) when P is a power of
  // two — the latency-optimal MPICH choice — otherwise the classic ring.
  if (block_bytes <= world_.options().eager_threshold) {
    if ((P & (P - 1)) == 0) {
      // After round r, each rank holds the 2^(r+1)-block group containing
      // its own block, aligned to the group boundary.
      for (int mask = 1; mask < P; mask <<= 1) {
        const int peer = rank_ ^ mask;
        const int my_group = (rank_ / mask) * mask;
        const int peer_group = (peer / mask) * mask;
        const std::uint64_t group_bytes = static_cast<std::uint64_t>(mask) * block_bytes;
        sendrecv(out + static_cast<std::uint64_t>(my_group) * block_bytes, group_bytes, peer,
                 tag, out + static_cast<std::uint64_t>(peer_group) * block_bytes, group_bytes,
                 peer, tag);
      }
      return;
    }
    for (int step = 0; step < P - 1; ++step) {
      const int send_idx = (rank_ - step + P) % P;
      const int recv_idx = (rank_ - step - 1 + P) % P;
      sendrecv(out + static_cast<std::uint64_t>(send_idx) * block_bytes, block_bytes, right,
               tag, out + static_cast<std::uint64_t>(recv_idx) * block_bytes, block_bytes,
               left, tag);
    }
    return;
  }

  // Topology-aware staging: leaders ring node slabs so each node pays
  // nodes-1 inter-node transits instead of P-1 (see hier_engine.cpp).
  if (select_allgather(block_bytes) == core::CollectiveAlgorithm::Hierarchical) {
    allgather_hierarchical(sendbuf, block_bytes, recvbuf, tag);
    return;
  }

  // Chunked pipelined ring: pipeline-sized blocks go through plain
  // point-to-point hops so each ring step overlaps chunk compression,
  // transfer, and decompression (see bcast above for the rationale).
  const WorldOptions& opt = world_.options();
  if (opt.pipeline.enabled && opt.pipeline.collectives &&
      block_bytes >= opt.pipeline.min_bytes) {
    for (int step = 0; step < P - 1; ++step) {
      const int send_idx = (rank_ - step + P) % P;
      const int recv_idx = (rank_ - step - 1 + P) % P;
      sendrecv(out + static_cast<std::uint64_t>(send_idx) * block_bytes, block_bytes, right,
               tag, out + static_cast<std::uint64_t>(recv_idx) * block_bytes, block_bytes,
               left, tag);
    }
    return;
  }

  // Compression-aware ring: each block is compressed once by its owner and
  // circulates in wire form; decompression kernels are enqueued as blocks
  // arrive (no stream sync) so they overlap the remaining ring steps, with
  // one device synchronization at the end.
  auto& mgr = compression();
  std::vector<WireMessage> wires(static_cast<std::size_t>(P));
  wires[static_cast<std::size_t>(rank_)] = make_wire(sendbuf, block_bytes);

  std::vector<core::CompressionManager::RecvStaging> stagings;
  sim::Timeline tl(ctx_.now());
  for (int step = 0; step < P - 1; ++step) {
    const int send_idx = (rank_ - step + P) % P;
    const int recv_idx = (rank_ - step - 1 + P) % P;
    WireMessage incoming;
    Request rr = irecv_wire(&incoming, left, tag);
    Request sr = isend_wire(wires[static_cast<std::size_t>(send_idx)], right, tag);
    (void)wait(rr);
    (void)wait(sr);

    // Enqueue this block's decompression without blocking the ring.
    tl.advance_to(ctx_.now());
    auto* dst = out + static_cast<std::uint64_t>(recv_idx) * block_bytes;
    if (incoming.header.compressed) {
      auto staging = mgr.prepare_receive(tl, incoming.header);
      std::memcpy(staging.data, incoming.payload->data(), incoming.payload->size());
      mgr.decompress_with_retry(tl, incoming.header, staging, dst, block_bytes,
                                /*synchronize=*/false);
      stagings.push_back(staging);
    } else {
      std::memcpy(dst, incoming.payload->data(), incoming.payload->size());
    }
    ctx_.advance_to(tl.now());
    wires[static_cast<std::size_t>(recv_idx)] = std::move(incoming);
  }
  // Drain the overlapped decompression kernels and return the pool buffers.
  sim::Timeline end(ctx_.now());
  gpu().device_synchronize(end, &mgr.receiver_breakdown());
  for (auto& s : stagings) mgr.release_receive(end, s);
  ctx_.advance_to(end.now());
}

void Rank::reduce(const float* sendbuf, float* recvbuf, std::size_t n, ReduceOp op,
                  int root) {
  const int tag = next_coll_tag();
  const int P = size();
  const int vrank = (rank_ - root + P) % P;

  // Small vectors ride the eager path uncompressed; the host-side fold is
  // cheaper than staging a device accumulator for them.
  if (n * 4 <= world_.options().eager_threshold) {
    std::vector<float> accum(sendbuf, sendbuf + n);
    std::vector<float> tmp(n);
    for (int mask = 1; mask < P; mask <<= 1) {
      if ((vrank & mask) == 0) {
        const int peer_v = vrank | mask;
        if (peer_v < P) {
          const int peer = (peer_v + root) % P;
          (void)recv(tmp.data(), n * 4, peer, tag);
          apply_op(accum.data(), tmp.data(), n, op);
        }
      } else {
        const int peer = ((vrank & ~mask) + root) % P;
        send(accum.data(), n * 4, peer, tag);
        break;
      }
    }
    if (rank_ == root) std::memcpy(recvbuf, accum.data(), n * 4);
    return;
  }

  // Rendezvous-sized vectors: same binomial schedule, but each hop moves a
  // wire form and arriving contributions fold into a device accumulator
  // with the manager's FUSED decompress+reduce kernels (enqueued without a
  // stream sync, so the decode of one child overlaps the wait for the
  // next). The fold order is identical to the host path — children in
  // ascending mask order, accumulator-first — so results are bit-identical.
  const sim::Time started = ctx_.now();
  CollStats st;
  auto& mgr = compression();
  auto* acc = static_cast<float*>(gpu_malloc(n * 4));
  std::memcpy(acc, sendbuf, n * 4);
  compute(gpu().costs().d2d_copy(n * 4));

  std::vector<core::CompressionManager::RecvStaging> stagings;
  bool kernels_in_flight = false;
  auto drain = [&] {
    const sim::Time t0 = ctx_.now();
    sim::Timeline tl(ctx_.now());
    gpu().device_synchronize(tl, &mgr.receiver_breakdown());
    for (auto& s : stagings) mgr.release_receive(tl, s);
    stagings.clear();
    ctx_.advance_to(tl.now());
    kernels_in_flight = false;
    st.reduce_busy += ctx_.now() - t0;
  };

  for (int mask = 1; mask < P; mask <<= 1) {
    if ((vrank & mask) == 0) {
      const int peer_v = vrank | mask;
      if (peer_v < P) {
        const int peer = (peer_v + root) % P;
        WireMessage in;
        Request rr = irecv_wire(&in, peer, tag);
        const sim::Time t0 = ctx_.now();
        (void)wait(rr);
        st.transfer_busy += ctx_.now() - t0;
        const sim::Time t1 = ctx_.now();
        sim::Timeline tl(ctx_.now());
        if (in.header.compressed) {
          auto staging = mgr.prepare_receive(tl, in.header);
          std::memcpy(staging.data, in.payload->data(), in.payload->size());
          mgr.decompress_reduce_with_retry(tl, in.header, staging, acc, n * 4, op,
                                           /*synchronize=*/false);
          stagings.push_back(staging);
        } else {
          (void)mgr.reduce_device(tl, reinterpret_cast<const float*>(in.payload->data()),
                                  acc, n, op, /*synchronize=*/false);
        }
        ++st.reduces;
        kernels_in_flight = true;
        ctx_.advance_to(tl.now());
        st.reduce_busy += ctx_.now() - t1;
      }
    } else {
      // The accumulator ships upward: drain the pending fused folds first,
      // then compress it once for the single parent hop.
      if (kernels_in_flight) drain();
      const sim::Time t0 = ctx_.now();
      WireMessage w = make_wire(acc, n * 4);
      st.compress_busy += ctx_.now() - t0;
      const int peer = ((vrank & ~mask) + root) % P;
      const sim::Time t1 = ctx_.now();
      Request sr = isend_wire(w, peer, tag);
      (void)wait(sr);
      ++st.hops;
      st.transfer_busy += ctx_.now() - t1;
      break;
    }
  }
  if (kernels_in_flight) drain();
  if (rank_ == root) {
    std::memcpy(recvbuf, acc, n * 4);
    compute(gpu().costs().d2d_copy(n * 4));
  }
  gpu_free(acc);
  record_collective("reduce", core::CollectiveAlgorithm::Linear, n * 4, started, st);
}

void Rank::allreduce(const float* sendbuf, float* recvbuf, std::size_t n, ReduceOp op) {
  const int tag = next_coll_tag();
  const int P = size();
  if (P == 1) {
    std::memcpy(recvbuf, sendbuf, n * 4);
    return;
  }
  switch (select_allreduce(n * 4)) {
    case core::CollectiveAlgorithm::Ring:
      allreduce_ring(sendbuf, recvbuf, n, op, tag);
      return;
    case core::CollectiveAlgorithm::Hierarchical:
      allreduce_hierarchical(sendbuf, recvbuf, n, op, tag);
      return;
    default:
      allreduce_linear(sendbuf, recvbuf, n, op, tag);
      return;
  }
}

void Rank::allreduce_linear(const float* sendbuf, float* recvbuf, std::size_t n,
                            ReduceOp op, int tag) {
  const int P = size();
  std::vector<float> accum(sendbuf, sendbuf + n);
  std::vector<float> tmp(n);

  // Fold non-power-of-two ranks into the largest power of two.
  int pof2 = 1;
  while (pof2 * 2 <= P) pof2 *= 2;
  const int rem = P - pof2;
  int newrank;
  if (rank_ < 2 * rem) {
    if (rank_ % 2 != 0) {  // odd: ship data to the even partner and idle
      send(accum.data(), n * 4, rank_ - 1, tag);
      newrank = -1;
    } else {
      (void)recv(tmp.data(), n * 4, rank_ + 1, tag);
      apply_op(accum.data(), tmp.data(), n, op);
      newrank = rank_ / 2;
    }
  } else {
    newrank = rank_ - rem;
  }

  if (newrank >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer_new = newrank ^ mask;
      const int peer = peer_new < rem ? peer_new * 2 : peer_new + rem;
      sendrecv(accum.data(), n * 4, peer, tag, tmp.data(), n * 4, peer, tag);
      apply_op(accum.data(), tmp.data(), n, op);
    }
  }

  // Un-fold: even partners return the result to the odd ranks.
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      send(accum.data(), n * 4, rank_ + 1, tag);
    } else {
      (void)recv(accum.data(), n * 4, rank_ - 1, tag);
    }
  }
  std::memcpy(recvbuf, accum.data(), n * 4);
}

void Rank::alltoall(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf) {
  const int tag = next_coll_tag();
  const int P = size();
  const auto* in = static_cast<const std::uint8_t*>(sendbuf);
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  std::memcpy(out + static_cast<std::uint64_t>(rank_) * block_bytes,
              in + static_cast<std::uint64_t>(rank_) * block_bytes, block_bytes);
  if (P > 1 && block_bytes > 0 &&
      select_alltoall(block_bytes) == core::CollectiveAlgorithm::BatchedPairwise) {
    // One batched compression launch for all P-1 outgoing blocks; see
    // alltoall_engine.cpp.
    alltoall_batched(in, block_bytes, out, tag);
    return;
  }
  for (int step = 1; step < P; ++step) {
    const int dst = (rank_ + step) % P;
    const int src = (rank_ - step + P) % P;
    sendrecv(in + static_cast<std::uint64_t>(dst) * block_bytes, block_bytes, dst, tag,
             out + static_cast<std::uint64_t>(src) * block_bytes, block_bytes, src, tag);
  }
}

void Rank::gather(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf, int root) {
  const int tag = next_coll_tag();
  const int P = size();
  if (P > 1 && block_bytes > 0 &&
      select_gather(block_bytes) == core::CollectiveAlgorithm::Hierarchical) {
    // Leader-staged: remote nodes ship one assembled slab each instead of
    // gpus_per_node individual blocks (see hier_engine.cpp).
    gather_hierarchical(sendbuf, block_bytes, recvbuf, root, tag);
    return;
  }
  if (rank_ == root) {
    auto* out = static_cast<std::uint8_t*>(recvbuf);
    std::memcpy(out + static_cast<std::uint64_t>(root) * block_bytes, sendbuf, block_bytes);
    // Post every irecv up front so arrivals complete in whatever order the
    // senders finish — a blocking recv in rank order would serialize the
    // root on the slowest early sender (head-of-line blocking).
    std::vector<Request> reqs;
    reqs.reserve(static_cast<std::size_t>(P - 1));
    for (int r = 0; r < P; ++r) {
      if (r == root) continue;
      reqs.push_back(irecv(out + static_cast<std::uint64_t>(r) * block_bytes, block_bytes,
                           r, tag));
    }
    waitall(reqs);
  } else {
    send(sendbuf, block_bytes, root, tag);
  }
}

void Rank::scatter(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf, int root) {
  const int tag = next_coll_tag();
  const int P = size();
  if (P > 1 && block_bytes > 0 &&
      select_scatter(block_bytes) == core::CollectiveAlgorithm::Hierarchical) {
    // Root batch-compresses one slab per remote node in a single launch;
    // leaders fan the blocks out intra-node (see hier_engine.cpp).
    scatter_hierarchical(sendbuf, block_bytes, recvbuf, root, tag);
    return;
  }
  if (rank_ == root) {
    const auto* in = static_cast<const std::uint8_t*>(sendbuf);
    std::memcpy(recvbuf, in + static_cast<std::uint64_t>(root) * block_bytes, block_bytes);
    // The root's P-1 outgoing blocks are a natural batch: compress them in
    // one launch and keep every send in flight at once.
    std::vector<WireBlock> blocks;
    blocks.reserve(static_cast<std::size_t>(P - 1));
    for (int r = 0; r < P; ++r) {
      if (r == root) continue;
      blocks.push_back({in + static_cast<std::uint64_t>(r) * block_bytes, block_bytes, r,
                        tag});
    }
    auto reqs = isend_batched(blocks);
    waitall(reqs);
  } else {
    (void)recv(recvbuf, block_bytes, root, tag);
  }
}

}  // namespace gcmpi::mpi
