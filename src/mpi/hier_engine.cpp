// Hierarchical moving collectives: topology-aware bcast / allgather /
// gather / scatter staged at one representative per node.
//
// Flat schedules send one (possibly compressed) message per remote RANK
// across the inter-node fabric, so a node with G GPUs pushes or pulls G
// copies of the same traffic through its shared IB NIC. The hierarchical
// schedules here move exactly ONE wire transit per remote NODE:
//
//   bcast      root compresses once; the wire form hops a binomial tree
//              over node representatives (IB), then fans out intra-node
//              over NVLink; each node decodes once, off the inter-node
//              critical path.
//   allgather  members stage blocks at their node leader; the leader ring
//              circulates node SLABS in wire form (nodes-1 IB transits per
//              leader); the assembled vector fans back out intra-node.
//   gather     members stage blocks at the leader; each leader ships one
//              assembled slab to the root (nodes-1 IB transits total).
//   scatter    the root batch-compresses one slab per remote node in a
//              single kernel launch (isend_batched); leaders fan the
//              blocks out intra-node.
//
// Intra-node hops honor the compress_intra_node gate: when it is off the
// staging traffic moves raw over NVLink (make_intra_wire), exactly like
// the point-to-point path. Every inter-node hop is a WireMessage on the
// rendezvous reliability layer, so per-hop CRC/NACK/retransmit recovery
// applies unchanged — a corrupted slab re-pushes only itself.
//
// Selection: resolve_{bcast,allgather,gather,scatter}_algorithm floors
// (forced knobs honored; degenerate topologies resolve to Linear so the
// flat path runs bit-identically), refined by the adaptive control plane
// under Auto with the shared all-ranks-agree decision sequence.
#include <algorithm>
#include <cstring>
#include <vector>

#include "mpi/world.hpp"

namespace gcmpi::mpi {

namespace {

/// The adaptive controller prices with the same degenerate guard as the
/// resolver, but defend the engines anyway: Hierarchical needs two levels.
core::CollectiveAlgorithm sanitize(core::CollectiveAlgorithm alg, int nodes,
                                   int gpus_per_node) {
  if (alg == core::CollectiveAlgorithm::Hierarchical && !(nodes > 1 && gpus_per_node > 1)) {
    return core::CollectiveAlgorithm::Linear;
  }
  return alg;
}

}  // namespace

core::CollectiveAlgorithm Rank::select_bcast(std::uint64_t bytes) const {
  const auto& cl = world_.cluster();
  // Same Auto-only refinement + all-ranks-agree contract as select_allreduce.
  if (world_.options().adaptive != nullptr &&
      world_.options().collectives.bcast_algorithm == core::CollectiveAlgorithm::Auto) {
    return sanitize(world_.options().adaptive->choose_bcast(ctx_.now(), rank_, bytes,
                                                            cl.ranks(), cl.nodes,
                                                            cl.gpus_per_node),
                    cl.nodes, cl.gpus_per_node);
  }
  return core::resolve_bcast_algorithm(world_.options().collectives, bytes, cl.ranks(),
                                       cl.nodes, cl.gpus_per_node);
}

core::CollectiveAlgorithm Rank::select_allgather(std::uint64_t block_bytes) const {
  const auto& cl = world_.cluster();
  if (world_.options().adaptive != nullptr &&
      world_.options().collectives.allgather_algorithm == core::CollectiveAlgorithm::Auto) {
    return sanitize(world_.options().adaptive->choose_allgather(ctx_.now(), rank_,
                                                                block_bytes, cl.ranks(),
                                                                cl.nodes, cl.gpus_per_node),
                    cl.nodes, cl.gpus_per_node);
  }
  return core::resolve_allgather_algorithm(world_.options().collectives, block_bytes,
                                           cl.ranks(), cl.nodes, cl.gpus_per_node);
}

core::CollectiveAlgorithm Rank::select_gather(std::uint64_t block_bytes) const {
  const auto& cl = world_.cluster();
  if (world_.options().adaptive != nullptr &&
      world_.options().collectives.gather_algorithm == core::CollectiveAlgorithm::Auto) {
    return sanitize(world_.options().adaptive->choose_gather(ctx_.now(), rank_, block_bytes,
                                                             cl.ranks(), cl.nodes,
                                                             cl.gpus_per_node),
                    cl.nodes, cl.gpus_per_node);
  }
  return core::resolve_gather_algorithm(world_.options().collectives, block_bytes,
                                        cl.ranks(), cl.nodes, cl.gpus_per_node);
}

core::CollectiveAlgorithm Rank::select_scatter(std::uint64_t block_bytes) const {
  const auto& cl = world_.cluster();
  if (world_.options().adaptive != nullptr &&
      world_.options().collectives.scatter_algorithm == core::CollectiveAlgorithm::Auto) {
    return sanitize(world_.options().adaptive->choose_scatter(ctx_.now(), rank_,
                                                              block_bytes, cl.ranks(),
                                                              cl.nodes, cl.gpus_per_node),
                    cl.nodes, cl.gpus_per_node);
  }
  return core::resolve_scatter_algorithm(world_.options().collectives, block_bytes,
                                         cl.ranks(), cl.nodes, cl.gpus_per_node);
}

WireMessage Rank::make_intra_wire(const void* buf, std::uint64_t bytes) {
  if (world_.compression_.compress_intra_node) return make_wire(buf, bytes);
  return world_.make_raw_wire(buf, bytes);
}

void Rank::bcast_hierarchical(void* buf, std::uint64_t bytes, int root, int tag) {
  const sim::Time started = ctx_.now();
  CollStats st;
  const auto& cl = world_.cluster();
  const int P = size();
  const int nodes = cl.nodes;
  const int gpn = cl.gpus_per_node;
  const int root_node = cl.node_of(root);
  const int my_node = cl.node_of(rank_);
  // One representative per node carries the inter-node traffic: the root
  // itself on the root's node (it already holds the data), the node leader
  // elsewhere.
  const int rep = my_node == root_node ? root : cl.node_leader(rank_);

  if (rank_ != rep) {
    // Member: one intra-node hop from the representative, then decode.
    WireMessage in;
    Request rr = irecv_wire(&in, rep, tag);
    const sim::Time t0 = ctx_.now();
    (void)wait(rr);
    st.transfer_busy += ctx_.now() - t0;
    const sim::Time t1 = ctx_.now();
    decompress_wire(in, buf, bytes);
    st.reduce_busy += ctx_.now() - t1;
    record_collective("bcast", core::CollectiveAlgorithm::Hierarchical, bytes, started, st);
    return;
  }

  // Representative: binomial tree over nodes in virtual node order.
  const int vnode = (my_node - root_node + nodes) % nodes;
  WireMessage msg;
  int mask = 1;
  if (vnode != 0) {
    while (mask < nodes) {
      if (vnode & mask) {
        const int src_node = ((vnode - mask) + root_node) % nodes;
        const int src = src_node == root_node ? root : src_node * gpn;
        WireMessage in;
        Request rr = irecv_wire(&in, src, tag);
        const sim::Time t0 = ctx_.now();
        (void)wait(rr);
        st.transfer_busy += ctx_.now() - t0;
        msg = std::move(in);
        break;
      }
      mask <<= 1;
    }
  } else {
    const sim::Time t0 = ctx_.now();
    msg = make_wire(buf, bytes);
    st.compress_busy += ctx_.now() - t0;
    while (mask < nodes) mask <<= 1;
  }

  // Forward the SAME wire form down the tree — no recompression anywhere.
  // Virtual node 0 is the root's node, so every child here is remote.
  mask >>= 1;
  const sim::Time t2 = ctx_.now();
  std::vector<Request> sends;
  while (mask > 0) {
    if (vnode + mask < nodes) {
      const int dst_node = ((vnode + mask) + root_node) % nodes;
      sends.push_back(isend_wire(msg, dst_node * gpn, tag));
      ++st.hops;
    }
    mask >>= 1;
  }

  // Intra-node fan-out: forward the wire form when the intra gate compresses
  // NVLink traffic (members decode in parallel); otherwise decode once here
  // and fan the raw bytes out. Either way the decode is off the inter-node
  // critical path — the tree forwards above were already posted.
  const int node_begin = cl.node_leader(rank_);
  const int node_end = std::min(node_begin + gpn, P);
  if (world_.compression_.compress_intra_node) {
    for (int m = node_begin; m < node_end; ++m) {
      if (m == rep) continue;
      sends.push_back(isend_wire(msg, m, tag));
      ++st.hops;
    }
    if (rank_ != root) {
      const sim::Time t3 = ctx_.now();
      decompress_wire(msg, buf, bytes);
      st.reduce_busy += ctx_.now() - t3;
    }
  } else {
    if (rank_ != root) {
      const sim::Time t3 = ctx_.now();
      decompress_wire(msg, buf, bytes);
      st.reduce_busy += ctx_.now() - t3;
    }
    const WireMessage raw = world_.make_raw_wire(buf, bytes);
    for (int m = node_begin; m < node_end; ++m) {
      if (m == rep) continue;
      sends.push_back(isend_wire(raw, m, tag));
      ++st.hops;
    }
  }
  waitall(sends);
  st.transfer_busy += ctx_.now() - t2;
  record_collective("bcast", core::CollectiveAlgorithm::Hierarchical, bytes, started, st);
}

void Rank::allgather_hierarchical(const void* sendbuf, std::uint64_t block_bytes,
                                  void* recvbuf, int tag) {
  const sim::Time started = ctx_.now();
  CollStats st;
  const auto& cl = world_.cluster();
  const int P = size();
  const int nodes = cl.nodes;
  const int gpn = cl.gpus_per_node;
  const int my_node = cl.node_of(rank_);
  const int leader = cl.node_leader(rank_);
  auto* out = static_cast<std::uint8_t*>(recvbuf);
  const std::uint64_t total = static_cast<std::uint64_t>(P) * block_bytes;
  const auto node_begin = [&](int node) { return node * gpn; };
  const auto node_count = [&](int node) {
    return std::min((node + 1) * gpn, P) - node * gpn;
  };

  if (rank_ != leader) {
    // Member: stage the block at the leader, receive the assembled vector.
    const sim::Time t0 = ctx_.now();
    send(sendbuf, block_bytes, leader, tag);
    ++st.hops;
    WireMessage in;
    Request rr = irecv_wire(&in, leader, tag);
    (void)wait(rr);
    st.transfer_busy += ctx_.now() - t0;
    const sim::Time t1 = ctx_.now();
    decompress_wire(in, out, total);
    st.reduce_busy += ctx_.now() - t1;
    record_collective("allgather", core::CollectiveAlgorithm::Hierarchical, total, started,
                      st);
    return;
  }

  // The leader assembles in device memory so the slab compressions are
  // eligible regardless of where the caller's recvbuf lives (the allreduce
  // engine's device-accumulator idiom).
  auto* full = static_cast<std::uint8_t*>(gpu_malloc(total));

  // Leader phase 1: collect the node's blocks contiguously (the node's
  // ranks are consecutive, so they land in place in the assembled vector).
  std::memcpy(full + static_cast<std::uint64_t>(rank_) * block_bytes, sendbuf, block_bytes);
  compute(gpu().costs().d2d_copy(block_bytes));
  {
    const sim::Time t0 = ctx_.now();
    std::vector<Request> reqs;
    for (int m = leader + 1; m < std::min(leader + gpn, P); ++m) {
      reqs.push_back(irecv(full + static_cast<std::uint64_t>(m) * block_bytes, block_bytes,
                           m, tag));
    }
    waitall(reqs);
    st.transfer_busy += ctx_.now() - t0;
  }

  // Leader phase 2: ring over node leaders, circulating node SLABS in wire
  // form — each leader compresses its own slab exactly once and forwards
  // the others; decodes are enqueued without a stream sync so they overlap
  // the remaining ring steps.
  auto& mgr = compression();
  const int right = ((my_node + 1) % nodes) * gpn;
  const int left = ((my_node - 1 + nodes) % nodes) * gpn;
  std::vector<WireMessage> wires(static_cast<std::size_t>(nodes));
  {
    const sim::Time t0 = ctx_.now();
    wires[static_cast<std::size_t>(my_node)] =
        make_wire(full + static_cast<std::uint64_t>(node_begin(my_node)) * block_bytes,
                  static_cast<std::uint64_t>(node_count(my_node)) * block_bytes);
    st.compress_busy += ctx_.now() - t0;
  }
  std::vector<core::CompressionManager::RecvStaging> stagings;
  for (int step = 0; step < nodes - 1; ++step) {
    const int send_n = (my_node - step + nodes) % nodes;
    const int recv_n = (my_node - step - 1 + nodes) % nodes;
    const sim::Time t0 = ctx_.now();
    WireMessage in;
    Request rr = irecv_wire(&in, left, tag);
    Request sr = isend_wire(wires[static_cast<std::size_t>(send_n)], right, tag);
    (void)wait(rr);
    (void)wait(sr);
    ++st.hops;
    st.transfer_busy += ctx_.now() - t0;

    const sim::Time t1 = ctx_.now();
    sim::Timeline tl(ctx_.now());
    auto* dst = full + static_cast<std::uint64_t>(node_begin(recv_n)) * block_bytes;
    const std::uint64_t slab = static_cast<std::uint64_t>(node_count(recv_n)) * block_bytes;
    if (in.header.compressed) {
      auto staging = mgr.prepare_receive(tl, in.header);
      std::memcpy(staging.data, in.payload->data(), in.payload->size());
      mgr.decompress_with_retry(tl, in.header, staging, dst, slab,
                                /*synchronize=*/false);
      stagings.push_back(staging);
    } else {
      std::memcpy(dst, in.payload->data(), in.payload->size());
    }
    ctx_.advance_to(tl.now());
    st.reduce_busy += ctx_.now() - t1;
    wires[static_cast<std::size_t>(recv_n)] = std::move(in);
  }
  {
    // Drain the overlapped decodes before fanning the assembled buffer out.
    const sim::Time t0 = ctx_.now();
    sim::Timeline end(ctx_.now());
    gpu().device_synchronize(end, &mgr.receiver_breakdown());
    for (auto& s : stagings) mgr.release_receive(end, s);
    ctx_.advance_to(end.now());
    st.reduce_busy += ctx_.now() - t0;
  }

  // Leader phase 3: intra-node bcast of the assembled vector (compressed
  // once when the intra gate is on, raw otherwise).
  if (gpn > 1) {
    const sim::Time t0 = ctx_.now();
    WireMessage w = make_intra_wire(full, total);
    st.compress_busy += ctx_.now() - t0;
    const sim::Time t1 = ctx_.now();
    std::vector<Request> sends;
    for (int m = leader + 1; m < std::min(leader + gpn, P); ++m) {
      sends.push_back(isend_wire(w, m, tag));
      ++st.hops;
    }
    waitall(sends);
    st.transfer_busy += ctx_.now() - t1;
  }
  std::memcpy(out, full, total);
  compute(gpu().costs().d2d_copy(total));
  gpu_free(full);
  record_collective("allgather", core::CollectiveAlgorithm::Hierarchical, total, started,
                    st);
}

void Rank::gather_hierarchical(const void* sendbuf, std::uint64_t block_bytes,
                               void* recvbuf, int root, int tag) {
  const sim::Time started = ctx_.now();
  CollStats st;
  const auto& cl = world_.cluster();
  const int P = size();
  const int gpn = cl.gpus_per_node;
  const int root_node = cl.node_of(root);
  const int my_node = cl.node_of(rank_);
  const int leader = cl.node_leader(rank_);

  if (rank_ == root) {
    auto* out = static_cast<std::uint8_t*>(recvbuf);
    std::memcpy(out + static_cast<std::uint64_t>(root) * block_bytes, sendbuf, block_bytes);
    // Post everything up front (no head-of-line blocking): per-rank blocks
    // from the root's own node, ONE slab per remote node — the slabs are
    // contiguous runs of `out` because each node's ranks are consecutive.
    std::vector<Request> reqs;
    for (int m = cl.node_leader(root); m < std::min(cl.node_leader(root) + gpn, P); ++m) {
      if (m == root) continue;
      reqs.push_back(irecv(out + static_cast<std::uint64_t>(m) * block_bytes, block_bytes,
                           m, tag));
    }
    for (int node = 0; node < cl.nodes; ++node) {
      if (node == root_node) continue;
      const int first = node * gpn;
      const std::uint64_t slab =
          static_cast<std::uint64_t>(std::min((node + 1) * gpn, P) - first) * block_bytes;
      reqs.push_back(
          irecv(out + static_cast<std::uint64_t>(first) * block_bytes, slab, first, tag));
    }
    const sim::Time t0 = ctx_.now();
    waitall(reqs);
    st.transfer_busy += ctx_.now() - t0;
    record_collective("gather", core::CollectiveAlgorithm::Hierarchical,
                      static_cast<std::uint64_t>(P) * block_bytes, started, st);
    return;
  }

  if (my_node == root_node) {
    // The root's node needs no staging: its blocks never cross IB.
    send(sendbuf, block_bytes, root, tag);
    return;
  }

  if (rank_ != leader) {
    // Remote member: stage the block at the node leader over NVLink.
    send(sendbuf, block_bytes, leader, tag);
    return;
  }

  // Remote leader: assemble the node slab in device memory in rank order,
  // ship it to the root as ONE message — the single IB transit this node
  // pays; rendezvous compression (and its CRC/NACK recovery) applies to
  // the whole slab.
  const int count = std::min(leader + gpn, P) - leader;
  const std::uint64_t slab_bytes = static_cast<std::uint64_t>(count) * block_bytes;
  auto* slab = static_cast<std::uint8_t*>(gpu_malloc(slab_bytes));
  std::memcpy(slab, sendbuf, block_bytes);
  compute(gpu().costs().d2d_copy(block_bytes));
  {
    const sim::Time t0 = ctx_.now();
    std::vector<Request> reqs;
    for (int m = leader + 1; m < leader + count; ++m) {
      reqs.push_back(irecv(slab + static_cast<std::uint64_t>(m - leader) * block_bytes,
                           block_bytes, m, tag));
    }
    waitall(reqs);
    st.transfer_busy += ctx_.now() - t0;
  }
  const sim::Time t1 = ctx_.now();
  send(slab, slab_bytes, root, tag);
  ++st.hops;
  st.transfer_busy += ctx_.now() - t1;
  gpu_free(slab);
  record_collective("gather", core::CollectiveAlgorithm::Hierarchical,
                    static_cast<std::uint64_t>(P) * block_bytes, started, st);
}

void Rank::scatter_hierarchical(const void* sendbuf, std::uint64_t block_bytes,
                                void* recvbuf, int root, int tag) {
  const sim::Time started = ctx_.now();
  CollStats st;
  const auto& cl = world_.cluster();
  const int P = size();
  const int gpn = cl.gpus_per_node;
  const int root_node = cl.node_of(root);
  const int my_node = cl.node_of(rank_);
  const int leader = cl.node_leader(rank_);

  if (rank_ == root) {
    const auto* in = static_cast<const std::uint8_t*>(sendbuf);
    std::memcpy(recvbuf, in + static_cast<std::uint64_t>(root) * block_bytes, block_bytes);
    // One batched multi-destination send: a slab per remote node (batch-
    // compressed in one kernel launch) plus the root's own node's per-rank
    // blocks (intra-node, so they take the ordinary path inside
    // isend_batched's eligibility split).
    std::vector<WireBlock> blocks;
    for (int node = 0; node < cl.nodes; ++node) {
      if (node == root_node) continue;
      const int first = node * gpn;
      const std::uint64_t slab =
          static_cast<std::uint64_t>(std::min((node + 1) * gpn, P) - first) * block_bytes;
      blocks.push_back({in + static_cast<std::uint64_t>(first) * block_bytes, slab, first,
                        tag});
    }
    for (int m = cl.node_leader(root); m < std::min(cl.node_leader(root) + gpn, P); ++m) {
      if (m == root) continue;
      blocks.push_back({in + static_cast<std::uint64_t>(m) * block_bytes, block_bytes, m,
                        tag});
    }
    const sim::Time t0 = ctx_.now();
    auto reqs = isend_batched(blocks);
    st.hops += static_cast<std::uint32_t>(blocks.size());
    waitall(reqs);
    st.transfer_busy += ctx_.now() - t0;
    record_collective("scatter", core::CollectiveAlgorithm::Hierarchical,
                      static_cast<std::uint64_t>(P) * block_bytes, started, st);
    return;
  }

  if (my_node == root_node) {
    (void)recv(recvbuf, block_bytes, root, tag);
    return;
  }

  if (rank_ != leader) {
    (void)recv(recvbuf, block_bytes, leader, tag);
    return;
  }

  // Remote leader: receive the node slab (decoded by the rendezvous layer)
  // into device memory, keep block 0, fan the rest out over NVLink.
  const int count = std::min(leader + gpn, P) - leader;
  const std::uint64_t slab_bytes = static_cast<std::uint64_t>(count) * block_bytes;
  auto* slab = static_cast<std::uint8_t*>(gpu_malloc(slab_bytes));
  const sim::Time t0 = ctx_.now();
  (void)recv(slab, slab_bytes, root, tag);
  st.transfer_busy += ctx_.now() - t0;
  std::memcpy(recvbuf, slab, block_bytes);
  compute(gpu().costs().d2d_copy(block_bytes));
  {
    const sim::Time t1 = ctx_.now();
    std::vector<Request> sends;
    for (int m = leader + 1; m < leader + count; ++m) {
      sends.push_back(isend(slab + static_cast<std::uint64_t>(m - leader) * block_bytes,
                            block_bytes, m, tag));
      ++st.hops;
    }
    waitall(sends);
    st.transfer_busy += ctx_.now() - t1;
  }
  gpu_free(slab);
  record_collective("scatter", core::CollectiveAlgorithm::Hierarchical,
                    static_cast<std::uint64_t>(P) * block_bytes, started, st);
}

}  // namespace gcmpi::mpi
