#include "mpi/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "compress/kernel_cost.hpp"

namespace gcmpi::mpi {

namespace {

constexpr std::uint64_t kChunkAlign = 64ull << 10;  // MPC chunk multiple
constexpr std::uint64_t kMinChunk = 256ull << 10;

/// Planning-time compression ratio: the tune must not depend on payload
/// content (determinism), so use the codec's nominal ratio — fixed-rate for
/// ZFP, the Table-III CR-ish 2.0 for MPC on typical HPC data.
double planning_ratio(const core::CompressionConfig& cfg) {
  if (cfg.algorithm == core::Algorithm::ZFP) {
    return 32.0 / static_cast<double>(std::max(1, cfg.zfp_rate));
  }
  return 2.0;
}

}  // namespace

int pipeline_chunk_blocks(const gpu::GpuSpec& gpu, int max_in_flight, int chunks) {
  const int window = std::max(1, std::min(max_in_flight, chunks));
  return std::max(1, gpu.sm_count / window);
}

std::uint64_t auto_chunk_bytes(std::uint64_t message_bytes,
                               const core::CompressionConfig& cfg,
                               const gpu::GpuSpec& gpu, const net::LinkSpec& link,
                               const PipelineConfig& pipeline) {
  const comp::KernelCostModel model;
  const double ratio = planning_ratio(cfg);
  const int window = std::max(1, pipeline.max_in_flight);
  const int blocks = std::max(1, gpu.sm_count / window);

  // Per-byte slope of each stage, probed at two sizes so per-kernel fixed
  // costs cancel out. GPU stages run up to `window` chunks concurrently on
  // separate streams, so their effective slope is divided by the window.
  const auto probe = [&](auto&& cost_at) {
    constexpr std::uint64_t p = 1ull << 20;
    const double t1 = cost_at(p);
    const double t2 = cost_at(2 * p);
    return std::pair<double, double>{(t2 - t1) / static_cast<double>(p),  // ns/byte
                                     t1 - (t2 - t1)};                     // fixed ns
  };
  std::pair<double, double> comp;
  std::pair<double, double> decomp;
  if (cfg.algorithm == core::Algorithm::ZFP) {
    comp = probe([&](std::uint64_t b) {
      return static_cast<double>(model.zfp_compress(b, cfg.zfp_rate, gpu).count_ns());
    });
    decomp = probe([&](std::uint64_t b) {
      return static_cast<double>(model.zfp_decompress(b, cfg.zfp_rate, gpu).count_ns());
    });
  } else {
    comp = probe([&](std::uint64_t b) {
      const auto out = static_cast<std::uint64_t>(static_cast<double>(b) / ratio);
      return static_cast<double>(model.mpc_compress(b, out, blocks, gpu).count_ns());
    });
    decomp = probe([&](std::uint64_t b) {
      const auto in = static_cast<std::uint64_t>(static_cast<double>(b) / ratio);
      return static_cast<double>(model.mpc_decompress(in, b, blocks, gpu).count_ns());
    });
  }
  const double wire_slope = 1.0 / ratio / link.bandwidth_gbs;  // ns per original byte

  const double s = std::max({wire_slope, comp.first / window, decomp.first / window});

  // Per-chunk fixed overhead: stage intercepts plus the host-side protocol
  // and driver charges every chunk pays (enqueues, readback, progress).
  const gpu::CostModel& c = gpu.costs;
  const double host_ns = static_cast<double>(
      (c.cuda_memset_launch + c.kernel_launch + c.stream_sync + c.gdrcopy_small +
       link.per_message_overhead)
          .count_ns());
  const double overhead = std::max(0.0, comp.second) + std::max(0.0, decomp.second) + host_ns;

  const double c_star =
      std::sqrt(static_cast<double>(message_bytes) * overhead / (2.0 * std::max(s, 1e-9)));
  auto chunk = static_cast<std::uint64_t>(c_star);
  chunk = std::clamp<std::uint64_t>(chunk, kMinChunk, std::max(kMinChunk, message_bytes));
  chunk = std::max(kChunkAlign, (chunk / kChunkAlign) * kChunkAlign);
  return chunk;
}

}  // namespace gcmpi::mpi
