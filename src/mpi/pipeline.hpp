// Chunked pipelined rendezvous configuration (PR: overlap compression,
// wire transfer, and decompression).
//
// A large rendezvous message is split into N pipeline chunks; chunk i+1 is
// compressed on the sender's streams while chunk i occupies the wire and
// chunk i-1 decompresses at the receiver, so the simulated critical path is
//   max(compress, transfer, decompress) + pipeline fill/drain
// instead of their sum. Chunk kernels reuse MPC-OPT's partitioned-launch
// idea one level up: each chunk is a single-partition kernel on stream
// (chunk % num_streams) with sm_count / max_in_flight thread blocks, so up
// to max_in_flight chunks genuinely share the GPU, exactly like the
// multi-stream partitions of one serial message do.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "gpu/cost_model.hpp"
#include "net/link.hpp"

namespace gcmpi::mpi {

struct PipelineConfig {
  /// Master switch; off reproduces the serial rendezvous bit-for-bit.
  bool enabled = false;
  /// Messages below this stay on the serial path (the pipeline's per-chunk
  /// launch/readback overhead is not worth paying under ~1 MB).
  std::uint64_t min_bytes = 1ull << 20;
  /// Pipeline chunk size; 0 selects the cost-model auto-tune below.
  std::uint64_t chunk_bytes = 0;
  /// Chunks concurrently in flight (compressing / on the wire / arriving).
  /// Also divides the SMs among concurrent chunk kernels.
  int max_in_flight = 4;
  /// Route large bcast/allgather hops through the chunked path instead of
  /// the serial wire-forwarding scheme.
  bool collectives = true;
};

/// Cost-model-driven chunk size: balances the per-chunk fixed overhead O
/// (kernel launches, memset, size readback, per-message wire overhead)
/// against the fill/drain cost of the slowest pipeline stage s (ns/byte),
/// minimizing  T(c) ~ s*B + 2*s*c + O*B/c  at  c* = sqrt(B*O / (2*s)).
/// Monotone non-decreasing in message_bytes; the result is clamped to
/// [256 KiB, message_bytes] and rounded down to a 64 KiB multiple so MPC
/// chunk (1024-value) boundaries are never split.
[[nodiscard]] std::uint64_t auto_chunk_bytes(std::uint64_t message_bytes,
                                             const core::CompressionConfig& cfg,
                                             const gpu::GpuSpec& gpu,
                                             const net::LinkSpec& link,
                                             const PipelineConfig& pipeline);

/// Thread blocks per chunk kernel: divide the SMs among the chunks that can
/// run concurrently (the window), never below 1.
[[nodiscard]] int pipeline_chunk_blocks(const gpu::GpuSpec& gpu, int max_in_flight,
                                        int chunks);

}  // namespace gcmpi::mpi
