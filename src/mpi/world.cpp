#include "mpi/world.hpp"

#include <cstring>
#include <stdexcept>

#include "util/crc32c.hpp"

namespace gcmpi::mpi {

using sim::Time;
using sim::Timeline;

namespace {

/// CRC32C of a staged payload. Checksums are charged zero virtual time:
/// real NICs fold the ICRC into the DMA engine, so the paper's timing
/// model is unchanged by turning the reliability layer on.
std::uint32_t payload_crc(const std::vector<std::uint8_t>& payload) {
  return payload.empty() ? 0 : util::crc32c(payload.data(), payload.size());
}

/// Tags at/above this value are collective-internal (see collectives.cpp's
/// kCollTagBase): a fresh one is minted per invocation, so a channel keyed
/// on it would never see a second message.
constexpr int kMaxUserTag = 1 << 20;

/// Can this freshly compressed header ride the warm channel? The cached
/// template only expands RepeatHeaders whose control parameters it holds;
/// an adaptive codec/rate switch demotes the message to a cold send (which
/// keeps the channel's template authoritative).
bool warm_compatible(const Channel& ch, const core::CompressionHeader& h) {
  if (!h.compressed) return true;  // raw wires need no template fields
  if (h.algorithm != ch.tmpl.algorithm) return false;
  if (h.algorithm == core::Algorithm::ZFP && h.zfp_rate != ch.tmpl.zfp_rate) return false;
  if (h.algorithm == core::Algorithm::MPC &&
      (h.mpc_dimensionality != ch.tmpl.mpc_dimensionality ||
       h.mpc_chunk_values != ch.tmpl.mpc_chunk_values)) {
    return false;
  }
  return h.partition_bytes.size() <= 255;  // RepeatHeader's u8 count
}

}  // namespace

World::World(sim::Engine& engine, net::ClusterSpec cluster,
             core::CompressionConfig compression, WorldOptions options)
    : engine_(engine),
      cluster_(std::move(cluster)),
      compression_(std::move(compression)),
      options_(options),
      fabric_(std::make_unique<net::Fabric>(cluster_)),
      reliability_(options.fault != nullptr || options.verify_checksums) {
  fabric_->set_fault_injector(options_.fault);
  ranks_.resize(static_cast<std::size_t>(cluster_.ranks()));
  int rank_id = 0;
  for (auto& r : ranks_) {
    r.gpu = std::make_unique<gpu::Gpu>(cluster_.gpu);
    r.mgr = std::make_unique<core::CompressionManager>(*r.gpu, compression_);
    if (options_.telemetry != nullptr) {
      r.mgr->attach_telemetry(options_.telemetry, rank_id);
    }
    if (options_.fault != nullptr) {
      r.mgr->attach_fault_injector(options_.fault);
    }
    if (options_.adaptive != nullptr) {
      r.mgr->attach_adaptive(options_.adaptive);
    }
    if (options_.persistent.enabled) {
      // Warm channels reuse compression plans across iterations (held
      // staging slots, graph-replayed launches); see core/plan_cache.hpp.
      r.mgr->enable_plan_cache(true);
    }
    ++rank_id;
  }
}

World::~World() = default;

gpu::Gpu& World::gpu_of(int rank) { return *ranks_.at(static_cast<std::size_t>(rank)).gpu; }

core::CompressionManager& World::compression_of(int rank) {
  return *ranks_.at(static_cast<std::size_t>(rank)).mgr;
}

void World::run(std::function<void(Rank&)> main) {
  for (int r = 0; r < cluster_.ranks(); ++r) {
    engine_.spawn("rank" + std::to_string(r), [this, r, main](sim::ActorContext& ctx) {
      Rank rank(*this, r, ctx);
      main(rank);
    });
  }
  engine_.run();
  // Flush one ChannelRecord per persistent channel (map order: key-sorted,
  // deterministic) so the telemetry streams can report warm-channel reuse.
  if (options_.telemetry != nullptr) {
    for (const auto& [key, ch] : channels_) {
      options_.telemetry->record_channel(
          {engine_.now(), ch.id, key.src, key.dst, key.tag_class, key.bytes, ch.warmups,
           ch.warm_sends, ch.credit_stalls, ch.retransmits, ch.raw_degrades, ch.plan_hits,
           ch.plan_misses, ch.header_bytes_saved});
    }
  }
}

void World::complete(const Request& req, Status status) {
  complete_at(req, status, engine_.now());
}

void World::complete_at(const Request& req, Status status, Time at) {
  req->status = status;
  req->complete = true;
  if (req->waiter != sim::kNoActor) {
    const sim::ActorId waiter = req->waiter;
    req->waiter = sim::kNoActor;
    engine_.wake(waiter, at);
  }
}

// ---------------------------------------------------------------------------
// Point-to-point protocol
// ---------------------------------------------------------------------------

Request World::do_isend(sim::ActorContext& ctx, int src, const void* buf,
                        std::uint64_t bytes, int dst, int tag) {
  if (dst < 0 || dst >= cluster_.ranks()) throw std::invalid_argument("isend: bad destination");
  auto req = std::make_shared<RequestState>();
  Envelope env{src, dst, tag, bytes};

  // Self-sends and small messages use the eager path: the payload is staged
  // (buffered-send semantics) and the send completes locally.
  if (dst == src || bytes <= options_.eager_threshold) {
    auto payload = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<const std::uint8_t*>(buf),
        static_cast<const std::uint8_t*>(buf) + bytes);
    if (reliability_) env.crc = payload_crc(*payload);
    ctx.advance(options_.host_send_overhead);
    const Time t_arr = fabric_->transfer(ctx.now(), src, dst, bytes + options_.envelope_bytes);
    EagerMsg msg{env, std::move(payload)};
    engine_.schedule(t_arr, [this, msg = std::move(msg)]() mutable {
      on_eager_arrival(std::move(msg));
    });
    complete(req, Status{src, tag, bytes});
    return req;
  }

  // Chunked pipelined rendezvous: large compressible messages overlap
  // compression, wire transfer, and decompression chunk by chunk.
  if (pipeline_eligible(src, dst, buf, bytes)) {
    const std::uint64_t cb = resolve_chunk_bytes(src, dst, bytes);
    if ((bytes + cb - 1) / cb >= 2) {
      return pipeline_isend(ctx, src, buf, bytes, dst, tag, cb);
    }
  }

  // Persistent channels: repeated sends on the same (src, dst, tag, shape)
  // route skip the handshake once the channel is warm.
  Channel* ch = nullptr;
  if (channel_eligible(src, dst, tag, buf, bytes)) {
    ch = channel_for(ChannelKey{src, dst, tag, bytes});
  }

  // Rendezvous: compress on the sender GPU (Algorithm 1 / 3), then RTS with
  // the piggybacked compression header. Intra-node paths may be exempted
  // from compression (CompressionConfig::compress_intra_node).
  const bool allow = compression_.compress_intra_node || !cluster_.same_node(src, dst);
  const core::PlanCacheStats plan0 =
      ch != nullptr ? ranks_[static_cast<std::size_t>(src)].mgr->plan_stats()
                    : core::PlanCacheStats{};
  WireMessage wire = allow ? do_make_wire(ctx, src, buf, bytes)
                           : make_raw_wire(buf, bytes);
  if (ch != nullptr) {
    const auto& plan1 = ranks_[static_cast<std::size_t>(src)].mgr->plan_stats();
    ch->plan_hits += plan1.hits - plan0.hits;
    ch->plan_misses += plan1.misses - plan0.misses;
    if (ch->warm && warm_compatible(*ch, wire.header)) {
      return warm_isend(ctx, ch, env, wire.header, std::move(wire.payload), buf, false);
    }
  }
  ctx.advance(options_.host_send_overhead);

  const Time t_rts = fabric_->control(ctx.now(), src, dst,
                                      options_.rts_bytes + wire.header.wire_bytes());
  RtsMsg rts{env, wire.header, std::move(wire.payload), req, buf};
  engine_.schedule(t_rts, [this, rts = std::move(rts)]() mutable {
    on_rts_arrival(std::move(rts));
  });
  return req;
}

WireMessage World::make_raw_wire(const void* buf, std::uint64_t bytes) const {
  core::CompressionHeader raw;
  raw.original_bytes = bytes;
  raw.compressed_bytes = bytes;
  auto payload = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<const std::uint8_t*>(buf),
      static_cast<const std::uint8_t*>(buf) + bytes);
  if (reliability_) raw.payload_crc32c = payload_crc(*payload);
  return WireMessage{raw, std::move(payload)};
}

WireMessage World::do_make_wire(sim::ActorContext& ctx, int rank, const void* buf,
                                std::uint64_t bytes) {
  auto& state = ranks_[static_cast<std::size_t>(rank)];
  Timeline tl(ctx.now());
  auto wire = state.mgr->compress_for_send(tl, buf, bytes);
  auto payload = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<const std::uint8_t*>(wire.data),
      static_cast<const std::uint8_t*>(wire.data) + wire.bytes);
  WireMessage msg{wire.header, std::move(payload)};
  if (reliability_) msg.header.payload_crc32c = payload_crc(*msg.payload);
  state.mgr->release_send(tl, wire);
  ctx.advance_to(tl.now());
  return msg;
}

std::vector<WireMessage> World::do_make_wire_batch(sim::ActorContext& ctx, int rank,
                                                   const std::vector<Rank::WireBlock>& blocks) {
  auto& state = ranks_[static_cast<std::size_t>(rank)];
  Timeline tl(ctx.now());
  std::vector<WireMessage> out(blocks.size());

  // Blocks to intra-node peers may be exempt from compression (mirroring
  // do_isend); they skip the batch and go raw.
  std::vector<core::CompressionManager::BatchInput> inputs;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto& b = blocks[i];
    const bool allow =
        compression_.compress_intra_node || !cluster_.same_node(rank, b.peer);
    if (allow) {
      inputs.push_back({b.buf, b.bytes});
      index.push_back(i);
    } else {
      out[i] = make_raw_wire(b.buf, b.bytes);
    }
  }

  if (!inputs.empty()) {
    auto batch = state.mgr->compress_batch(tl, inputs);
    for (std::size_t k = 0; k < index.size(); ++k) {
      const auto& b = batch.blocks[k];
      auto payload = std::make_shared<std::vector<std::uint8_t>>(
          static_cast<const std::uint8_t*>(b.data),
          static_cast<const std::uint8_t*>(b.data) + b.bytes);
      WireMessage msg{b.header, std::move(payload)};
      if (reliability_) msg.header.payload_crc32c = payload_crc(*msg.payload);
      out[index[k]] = std::move(msg);
    }
    state.mgr->release_batch(tl, batch);
  }
  ctx.advance_to(tl.now());
  return out;
}

bool World::batch_compress_eligible(int src, int dst, const void* buf,
                                    std::uint64_t bytes) const {
  if (!compression_.compress_intra_node && cluster_.same_node(src, dst)) return false;
  return ranks_[static_cast<std::size_t>(src)].mgr->should_compress(buf, bytes);
}

Request World::do_isend_wire(sim::ActorContext& ctx, int src, const WireMessage& msg,
                             int dst, int tag) {
  if (dst < 0 || dst >= cluster_.ranks()) throw std::invalid_argument("isend_wire: bad destination");
  if (dst == src) throw std::invalid_argument("isend_wire: self-send unsupported");
  if (!msg.payload) throw std::invalid_argument("isend_wire: empty message");
  Envelope env{src, dst, tag, msg.original_bytes()};

  // Engine wire sends ride tag-wildcard channels: the collective tag
  // changes every invocation, but the (src, dst, shape) route repeats, so
  // iteration two onward skips the RTS/CTS round trip entirely.
  if (options_.persistent.enabled) {
    Channel* ch = channel_for(ChannelKey{src, dst, kWireTagClass, msg.original_bytes()});
    core::CompressionHeader hdr = msg.header;
    if (reliability_) hdr.payload_crc32c = payload_crc(*msg.payload);
    if (ch->warm && warm_compatible(*ch, hdr)) {
      return warm_isend(ctx, ch, env, hdr, msg.payload, nullptr, true);
    }
  }

  auto req = std::make_shared<RequestState>();
  // Forwarding a pre-built wire representation: protocol costs only — the
  // whole point of the compression-aware collectives.
  ctx.advance(options_.host_send_overhead);
  const Time t_rts = fabric_->control(ctx.now(), src, dst,
                                      options_.rts_bytes + msg.header.wire_bytes());
  RtsMsg rts{env, msg.header, msg.payload, req};
  // A forwarded payload is byte-identical to the original, so recomputing
  // the CRC here both covers wire messages minted before the reliability
  // layer was on and reproduces the original value otherwise. No raw
  // fallback for forwards: there is no original user buffer to resend.
  if (reliability_) rts.header.payload_crc32c = payload_crc(*rts.payload);
  engine_.schedule(t_rts, [this, rts = std::move(rts)]() mutable {
    on_rts_arrival(std::move(rts));
  });
  return req;
}

// Eager delivery failures complete the receive with a clean StatusError
// instead of throwing: at a gather root one bad contributor must not take
// down the whole job (head-of-line audit; see TESTING.md).
StatusError World::deliver_eager_to(PostedRecv& recv, const EagerMsg& msg) {
  if (!msg.crc_ok) return StatusError::ChecksumMismatch;
  if (recv.capacity < msg.env.bytes) return StatusError::Truncated;
  // Zero-byte messages are legal (match + status only); memcpy with a null
  // src/dst is not, even for size 0.
  if (!msg.payload->empty()) std::memcpy(recv.buf, msg.payload->data(), msg.payload->size());
  return StatusError::None;
}

void World::wake_probers(RankState& state, const Envelope& env) {
  for (auto it = state.probe_waiters.begin(); it != state.probe_waiters.end(); ++it) {
    const bool match = (it->src == kAnySource || it->src == env.src) &&
                       (it->tag == kAnyTag || it->tag == env.tag);
    if (match) {
      const sim::ActorId actor = it->actor;
      state.probe_waiters.erase(it);
      engine_.wake(actor, engine_.now());
      return;  // one arrival satisfies one prober; others re-scan on wake
    }
  }
}

void World::on_eager_arrival(EagerMsg msg) {
  auto& state = ranks_[static_cast<std::size_t>(msg.env.dst)];
  // Eager messages ride the reliable control plane, so this checksum is an
  // end-to-end assertion rather than a recovery trigger: a mismatch is
  // surfaced as StatusError::ChecksumMismatch on the matching receive.
  msg.crc_ok = !reliability_ || msg.env.crc == payload_crc(*msg.payload);
  for (auto it = state.posted.begin(); it != state.posted.end(); ++it) {
    if (matches(*it, msg.env)) {
      PostedRecv recv = *it;
      state.posted.erase(it);
      Status status{msg.env.src, msg.env.tag, msg.env.bytes};
      if (recv.wire_out != nullptr) {
        if (!msg.crc_ok) {
          status.bytes = 0;
          status.error = StatusError::ChecksumMismatch;
        } else {
          core::CompressionHeader raw;
          raw.original_bytes = msg.env.bytes;
          raw.compressed_bytes = msg.env.bytes;
          raw.payload_crc32c = msg.env.crc;
          *recv.wire_out = WireMessage{raw, msg.payload};
        }
      } else {
        status.error = deliver_eager_to(recv, msg);
        if (status.error != StatusError::None) status.bytes = 0;
      }
      complete(recv.req, status);
      return;
    }
  }
  wake_probers(state, msg.env);
  msg.arrival = state.next_arrival++;
  state.unexpected_eager.push_back(std::move(msg));
}

void World::on_rts_arrival(RtsMsg rts) {
  auto& state = ranks_[static_cast<std::size_t>(rts.env.dst)];
  for (auto it = state.posted.begin(); it != state.posted.end(); ++it) {
    if (matches(*it, rts.env)) {
      PostedRecv recv = *it;
      state.posted.erase(it);
      Timeline tl(engine_.now() + options_.progress_overhead);
      begin_rndv_receive(tl, std::move(rts), std::move(recv));
      return;
    }
  }
  wake_probers(state, rts.env);
  rts.arrival = state.next_arrival++;
  state.pending_rts.push_back(std::move(rts));
}

void World::begin_rndv_receive(Timeline& tl, RtsMsg rts, PostedRecv recv) {
  if (rts.header.pipeline_chunks >= 2) {
    begin_pipeline(tl, std::move(rts), std::move(recv));
    return;
  }
  auto& state = ranks_[static_cast<std::size_t>(rts.env.dst)];
  // Receiver prepares the temporary device buffer for the compressed
  // payload (Algorithm 2), then clears the sender to send. Wire-form
  // receives keep the payload compressed, so no staging buffer is needed.
  auto staging = std::make_shared<core::CompressionManager::RecvStaging>(
      recv.wire_out != nullptr ? core::CompressionManager::RecvStaging{}
                               : state.mgr->prepare_receive(tl, rts.header));
  auto tx = std::make_shared<RndvTransfer>();
  tx->env = rts.env;
  tx->header = std::move(rts.header);
  tx->payload = std::move(rts.payload);
  tx->send_req = std::move(rts.send_req);
  tx->recv = std::move(recv);
  tx->staging = std::move(staging);
  tx->sender_buf = rts.sender_buf;

  const Time t_cts = fabric_->control(tl.now(), tx->env.dst, tx->env.src, options_.cts_bytes);
  engine_.schedule(t_cts, [this, tx]() {
    // Sender-side CTS handling: push the (compressed) payload.
    push_rndv_data(tx);
  });
}

void World::push_rndv_data(const RndvPtr& tx) {
  if (tx->done) return;
  tx->recovery_pending = false;
  ++tx->attempts;
  const Time start = engine_.now() + options_.progress_overhead;
  const std::uint64_t wire_bytes = tx->payload->size() + options_.envelope_bytes;
  const net::Fabric::Delivery d =
      fabric_->transfer_data(start, tx->env.src, tx->env.dst, wire_bytes);

  if (!d.dropped) {
    Payload delivered = tx->payload;
    if (d.corrupted) {
      // Flip one bit of a private copy; the sender's staged payload must
      // stay intact for the retransmission the receiver will ask for.
      delivered = std::make_shared<std::vector<std::uint8_t>>(*tx->payload);
      if (!delivered->empty()) {
        const std::uint64_t bit = d.corrupt_bits % (delivered->size() * 8);
        (*delivered)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    engine_.schedule(d.at, [this, tx, delivered]() { on_rndv_data(tx, delivered); });
    return;
  }

  // The fabric dropped the packet. The receiver cannot NACK what it never
  // saw, so a timeout covers this case: the margin starts one
  // retransmit_timeout past the would-be arrival and grows by
  // retransmit_backoff with every failed attempt.
  Time margin = options_.retransmit_timeout;
  for (int i = 1; i < tx->attempts; ++i) {
    margin = Time::ns(static_cast<std::int64_t>(static_cast<double>(margin.count_ns()) *
                                                options_.retransmit_backoff));
  }
  tx->watchdog = engine_.schedule_cancelable(
      d.at + margin, [this, tx]() { request_retransmit(tx, engine_.now(), false); });
}

void World::on_rndv_data(const RndvPtr& tx, const Payload& delivered) {
  if (tx->done) return;
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  Timeline tl(engine_.now() + options_.progress_overhead);

  if (reliability_ && payload_crc(*delivered) != tx->header.payload_crc32c) {
    // A flipped bit anywhere in the payload — detected before any of it
    // can reach a decompression kernel or the user buffer.
    if (options_.telemetry != nullptr) {
      options_.telemetry->record({tl.now(), tx->env.dst, core::EventKind::CorruptionDetected,
                                  tx->header.algorithm, tx->env.bytes, delivered->size(),
                                  Time::zero()});
    }
    request_retransmit(tx, tl.now(), false);
    return;
  }

  if (tx->recv.wire_out != nullptr) {
    // Deliver the wire representation as-is; the application decompresses
    // later (or forwards it on).
    *tx->recv.wire_out = WireMessage{tx->header, delivered};
  } else if (tx->header.compressed) {
    // The payload landed in the receiver's temporary device buffer;
    // decompress into the user buffer (Algorithm 2, steps 6-7).
    std::memcpy(tx->staging->data, delivered->data(), delivered->size());
    try {
      state.mgr->decompress_received(tl, tx->header, *tx->staging, tx->recv.buf,
                                     tx->recv.capacity);
    } catch (const core::CodecFaultError&) {
      // The stream is intact (CRC passed) but the kernel failed; ask the
      // sender for the raw buffer instead of relaunching on the same data.
      request_retransmit(tx, tl.now(), true);
      return;
    }
    state.mgr->release_receive(tl, *tx->staging);
  } else {
    if (tx->recv.capacity < tx->env.bytes) {
      throw std::runtime_error("MiniMPI: rendezvous truncation (receive buffer too small)");
    }
    if (!delivered->empty()) std::memcpy(tx->recv.buf, delivered->data(), delivered->size());
    if (tx->staging->data != nullptr) {
      // A decode-fault fallback switched the transfer to raw after the
      // receiver had already staged for the compressed form.
      state.mgr->release_receive(tl, *tx->staging);
    }
  }

  tx->done = true;
  sim::Engine::cancel(tx->watchdog);
  complete(tx->send_req, Status{tx->env.dst, tx->env.tag, tx->env.bytes});
  complete_at(tx->recv.req, Status{tx->env.src, tx->env.tag, tx->env.bytes}, tl.now());
  // A successful cold exchange is the channel's warm-up exchange: the
  // receiver now grants credits so the next message can skip the handshake.
  maybe_warm_channel(tx->env, tx->header, tx->recv.wire_out != nullptr, tl.now());
}

void World::request_retransmit(const RndvPtr& tx, Time at, bool decode_fail) {
  if (tx->done || tx->recovery_pending) return;
  sim::Engine::cancel(tx->watchdog);
  if (tx->attempts > options_.max_data_retries) {
    fail_rndv(tx, at);
    return;
  }
  tx->recovery_pending = true;
  if (options_.telemetry != nullptr) {
    options_.telemetry->record({at, tx->env.dst, core::EventKind::Retransmit,
                                tx->header.algorithm, tx->env.bytes, tx->payload->size(),
                                Time::zero()});
  }
  // NACK rides the reliable control plane back to the sender. For drop
  // timeouts the "NACK" models the sender's own retransmission timer, but
  // charging the control round-trip keeps the two recovery paths uniform.
  const Time t_nack = fabric_->control(at, tx->env.dst, tx->env.src, options_.nack_bytes);
  engine_.schedule(t_nack, [this, tx, decode_fail]() {
    if (tx->done) return;
    if (decode_fail && tx->sender_buf != nullptr && !tx->fell_back_raw) {
      switch_to_raw(tx);
    }
    push_rndv_data(tx);
  });
}

void World::switch_to_raw(const RndvPtr& tx) {
  // Decompression keeps failing on an intact stream: resend the original
  // user buffer uncompressed (graceful degradation). The send request is
  // still pending, so MPI semantics keep that buffer alive and unchanged.
  tx->fell_back_raw = true;
  tx->payload = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<const std::uint8_t*>(tx->sender_buf),
      static_cast<const std::uint8_t*>(tx->sender_buf) + tx->env.bytes);
  core::CompressionHeader raw;
  raw.original_bytes = tx->env.bytes;
  raw.compressed_bytes = tx->env.bytes;
  if (reliability_) raw.payload_crc32c = payload_crc(*tx->payload);
  tx->header = raw;
}

void World::fail_rndv(const RndvPtr& tx, Time at) {
  // Retry budget exhausted: complete both sides with a clean error status
  // instead of hanging the job on an undeliverable payload.
  tx->done = true;
  sim::Engine::cancel(tx->watchdog);
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  if (tx->staging && tx->staging->data != nullptr) {
    Timeline tl(at);
    state.mgr->release_receive(tl, *tx->staging);
  }
  Status recv_status{tx->env.src, tx->env.tag, 0};
  recv_status.error = StatusError::RetryLimit;
  Status send_status{tx->env.dst, tx->env.tag, 0};
  send_status.error = StatusError::RetryLimit;
  complete_at(tx->send_req, send_status, at);
  complete_at(tx->recv.req, recv_status, at);
}

// ---------------------------------------------------------------------------
// Persistent channels (see mpi/channel.hpp)
// ---------------------------------------------------------------------------

bool World::channel_eligible(int src, int dst, int tag, const void* buf,
                             std::uint64_t bytes) const {
  if (!options_.persistent.enabled) return false;
  if (dst == src || bytes <= options_.eager_threshold) return false;
  if (tag < 0 || tag >= kMaxUserTag) return false;
  if (pipeline_eligible(src, dst, buf, bytes)) {
    // Messages that ride the chunked pipeline keep their own overlap
    // machinery; warming them would need per-chunk channel state.
    const std::uint64_t cb = resolve_chunk_bytes(src, dst, bytes);
    if ((bytes + cb - 1) / cb >= 2) return false;
  }
  return true;
}

Channel* World::channel_for(const ChannelKey& key) {
  auto [it, inserted] = channels_.try_emplace(key);
  if (inserted) {
    it->second.id = next_channel_id_++;
    it->second.key = key;
  }
  return &it->second;
}

void World::maybe_warm_channel(const Envelope& env, const core::CompressionHeader& header,
                               bool wire_mode, Time at) {
  if (!options_.persistent.enabled) return;
  // The sender registered the channel at its first send: user p2p sends
  // under their exact tag, engine wire sends under the wildcard class.
  auto it = channels_.find(ChannelKey{env.src, env.dst, env.tag, env.bytes});
  if (it == channels_.end()) {
    it = channels_.find(ChannelKey{env.src, env.dst, kWireTagClass, env.bytes});
  }
  if (it == channels_.end() || it->second.warm) return;
  Channel* ch = &it->second;

  // Header template: shape-invariant control parameters the RepeatHeader
  // expansion needs. A raw first delivery (fallback) still records the
  // route's configured codec so later compressed messages stay expandable.
  core::CompressionHeader basis = header;
  const bool allow =
      compression_.compress_intra_node || !cluster_.same_node(env.src, env.dst);
  if (!header.compressed && allow && compression_.algorithm != core::Algorithm::None) {
    basis.algorithm = compression_.algorithm;
    basis.zfp_rate = static_cast<std::uint16_t>(compression_.zfp_rate);
    basis.mpc_dimensionality = static_cast<std::uint16_t>(compression_.mpc_dimensionality);
    basis.mpc_chunk_values = static_cast<std::uint32_t>(compression_.mpc_chunk_values);
  }
  ch->tmpl = make_channel_template(basis, env.bytes);

  Timeline tl(at);  // receiver progress-engine work (one-time warm-up cost)
  if (!wire_mode && ch->tmpl.algorithm != core::Algorithm::None && allow) {
    // Pre-acquire the decode staging the warm consumes will reuse. Sized
    // for the raw-fallback upper bound, so every per-iteration compressed
    // size fits.
    auto& state = ranks_[static_cast<std::size_t>(env.dst)];
    core::CompressionHeader synth = ch->tmpl;
    synth.compressed = true;
    synth.compressed_bytes = env.bytes;
    if (synth.algorithm == core::Algorithm::MPC) {
      synth.partition_bytes.assign(
          static_cast<std::size_t>(compression_.partitions_for(env.bytes)), 0);
    }
    ch->staging = state.mgr->prepare_receive(tl, synth);
    ch->staging_held = true;
  }

  // ONE control packet grants the full credit window; refills piggyback on
  // the (zero-cost) consume notifications from then on.
  ++ch->warmups;
  const Time t_grant =
      fabric_->control(tl.now(), env.dst, env.src, options_.persistent.grant_bytes);
  engine_.schedule(t_grant, [this, ch]() {
    ch->warm = true;
    ch->credits = std::max(1, options_.persistent.credits);
  });
}

Request World::warm_isend(sim::ActorContext& ctx, Channel* ch, const Envelope& env,
                          const core::CompressionHeader& header, Payload payload,
                          const void* sender_buf, bool wire_mode) {
  auto req = std::make_shared<RequestState>();
  auto tx = std::make_shared<WarmTransfer>();
  tx->ch = ch;
  tx->env = env;
  tx->payload = std::move(payload);
  tx->send_req = req;
  tx->sender_buf = sender_buf;
  tx->wire_mode = wire_mode;
  tx->seq = ch->next_send_seq++;

  RepeatHeader rh;
  rh.channel = ch->id;
  rh.seq = tx->seq;
  rh.wire_len = tx->payload->size();
  rh.crc32c = header.payload_crc32c;
  rh.flags = header.compressed ? RepeatHeader::kCompressed : 0;
  rh.partition_bytes = header.partition_bytes;
  tx->repeat_bytes = rh.serialize();

  ++ch->warm_sends;
  const std::size_t cold_ctrl =
      options_.rts_bytes + header.wire_bytes() + options_.cts_bytes;
  ch->header_bytes_saved += cold_ctrl > rh.wire_bytes() ? cold_ctrl - rh.wire_bytes() : 0;

  ctx.advance(options_.host_send_overhead);
  if (ch->credits <= 0) {
    // Credit window exhausted: the payload is staged and queued; the next
    // consume notification funds the push.
    ++ch->credit_stalls;
    stalled_[ch->id].push_back(tx);
    return req;
  }
  --ch->credits;
  push_warm_data(tx, ctx.now());
  return req;
}

void World::push_warm_data(const WarmPtr& tx, Time start) {
  if (tx->done) return;
  tx->recovery_pending = false;
  ++tx->attempts;
  const std::uint64_t wire_bytes =
      tx->payload->size() + options_.envelope_bytes + tx->repeat_bytes.size();
  const net::Fabric::Delivery d =
      fabric_->transfer_data(start, tx->env.src, tx->env.dst, wire_bytes);

  if (!d.dropped) {
    Payload delivered = tx->payload;
    if (d.corrupted) {
      delivered = std::make_shared<std::vector<std::uint8_t>>(*tx->payload);
      if (!delivered->empty()) {
        const std::uint64_t bit = d.corrupt_bits % (delivered->size() * 8);
        (*delivered)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    engine_.schedule(d.at, [this, tx, delivered]() { on_warm_data(tx, delivered); });
    return;
  }

  // Dropped: same watchdog margin/backoff policy as the cold protocol,
  // scoped to this message — the channel itself stays warm.
  Time margin = options_.retransmit_timeout;
  for (int i = 1; i < tx->attempts; ++i) {
    margin = Time::ns(static_cast<std::int64_t>(static_cast<double>(margin.count_ns()) *
                                                options_.retransmit_backoff));
  }
  tx->watchdog = engine_.schedule_cancelable(
      d.at + margin, [this, tx]() { warm_retransmit(tx, engine_.now(), false); });
}

void World::on_warm_data(const WarmPtr& tx, const Payload& delivered) {
  if (tx->done) return;
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  Timeline tl(engine_.now() + options_.progress_overhead);
  const RepeatHeader rh = RepeatHeader::deserialize(tx->repeat_bytes);

  if (reliability_ && payload_crc(*delivered) != rh.crc32c) {
    if (options_.telemetry != nullptr) {
      options_.telemetry->record({tl.now(), tx->env.dst, core::EventKind::CorruptionDetected,
                                  tx->ch->tmpl.algorithm, tx->env.bytes, delivered->size(),
                                  Time::zero()});
    }
    warm_retransmit(tx, tl.now(), false);
    return;
  }

  tx->delivered = delivered;
  // Only the channel's next in-order message may consume (non-overtaking
  // under retransmission gaps); successors park until the gap closes.
  if (tx->seq == tx->ch->next_consume_seq) {
    for (auto it = state.posted.begin(); it != state.posted.end(); ++it) {
      if (matches(*it, tx->env)) {
        PostedRecv recv = *it;
        state.posted.erase(it);
        consume_warm(tx, std::move(recv), tl);
        drain_parked_warm(tx->env.dst);
        return;
      }
    }
  }
  wake_probers(state, tx->env);
  tx->arrival = state.next_arrival++;
  state.parked_warm.push_back(tx);
}

void World::consume_warm(const WarmPtr& tx, PostedRecv recv, Timeline& tl) {
  Channel* ch = tx->ch;
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  const RepeatHeader rh = RepeatHeader::deserialize(tx->repeat_bytes);
  core::CompressionHeader header = rh.expand(ch->tmpl);
  const Payload delivered = tx->delivered != nullptr ? tx->delivered : tx->payload;

  if (recv.wire_out != nullptr) {
    // Engine wire receive: hand over the compressed form as-is.
    *recv.wire_out = WireMessage{header, delivered};
  } else if (header.compressed) {
    if (!ch->staging_held) {
      // Channel warmed on wire-form deliveries; the first buffer-form
      // consume acquires the staging, which is then held like the rest.
      core::CompressionHeader synth = header;
      synth.compressed_bytes = tx->env.bytes;
      ch->staging = state.mgr->prepare_receive(tl, synth);
      ch->staging_held = true;
    }
    const bool planned = ch->staging.plan != nullptr && ch->staging.plan->graph_ready;
    std::memcpy(ch->staging.data, delivered->data(), delivered->size());
    try {
      state.mgr->decompress_received(tl, header, ch->staging, recv.buf, recv.capacity);
    } catch (const core::CodecFaultError&) {
      // Intact stream, faulting kernel: repost the receive so the raw
      // redelivery finds it, and ask the sender to degrade this message.
      state.posted.push_front(std::move(recv));
      warm_retransmit(tx, tl.now(), true);
      return;
    }
    if (planned) {
      ++ch->plan_hits;
    } else {
      ++ch->plan_misses;
    }
  } else {
    if (recv.capacity < tx->env.bytes) {
      throw std::runtime_error("MiniMPI: rendezvous truncation (receive buffer too small)");
    }
    if (!delivered->empty()) std::memcpy(recv.buf, delivered->data(), delivered->size());
  }

  tx->done = true;
  tx->delivered.reset();
  sim::Engine::cancel(tx->watchdog);
  ++ch->next_consume_seq;
  complete(tx->send_req, Status{tx->env.dst, tx->env.tag, tx->env.bytes});
  complete_at(recv.req, Status{tx->env.src, tx->env.tag, tx->env.bytes}, tl.now());
  // Credit refill piggybacks on the (zero-cost) consume notification.
  refill_credit(ch, tl.now());
}

void World::drain_parked_warm(int dst) {
  auto& state = ranks_[static_cast<std::size_t>(dst)];
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = state.parked_warm.begin(); it != state.parked_warm.end(); ++it) {
      const WarmPtr tx = *it;
      if (tx->done || tx->seq != tx->ch->next_consume_seq) continue;
      auto rit = state.posted.begin();
      for (; rit != state.posted.end(); ++rit) {
        if (matches(*rit, tx->env)) break;
      }
      if (rit == state.posted.end()) continue;
      PostedRecv recv = *rit;
      state.posted.erase(rit);
      state.parked_warm.erase(it);
      Timeline tl(engine_.now());
      consume_warm(tx, std::move(recv), tl);
      progress = true;
      break;  // iterators invalidated; rescan for the next head
    }
  }
}

void World::warm_retransmit(const WarmPtr& tx, Time at, bool decode_fail) {
  if (tx->done || tx->recovery_pending) return;
  sim::Engine::cancel(tx->watchdog);
  if (tx->attempts > options_.max_data_retries) {
    fail_warm(tx, at);
    return;
  }
  tx->recovery_pending = true;
  ++tx->ch->retransmits;
  if (options_.telemetry != nullptr) {
    options_.telemetry->record({at, tx->env.dst, core::EventKind::Retransmit,
                                tx->ch->tmpl.algorithm, tx->env.bytes, tx->payload->size(),
                                Time::zero()});
  }
  const Time t_nack = fabric_->control(at, tx->env.dst, tx->env.src, options_.nack_bytes);
  engine_.schedule(t_nack, [this, tx, decode_fail]() {
    if (tx->done) return;
    if (decode_fail && tx->sender_buf != nullptr && !tx->fell_back_raw) {
      // Degrade THIS message to a raw resend; the channel stays warm and
      // the next iteration compresses again.
      tx->fell_back_raw = true;
      ++tx->ch->raw_degrades;
      tx->payload = std::make_shared<std::vector<std::uint8_t>>(
          static_cast<const std::uint8_t*>(tx->sender_buf),
          static_cast<const std::uint8_t*>(tx->sender_buf) + tx->env.bytes);
      RepeatHeader rh = RepeatHeader::deserialize(tx->repeat_bytes);
      rh.wire_len = tx->payload->size();
      rh.crc32c = reliability_ ? payload_crc(*tx->payload) : 0;
      rh.flags = RepeatHeader::kRawDegrade;
      rh.partition_bytes.clear();
      tx->repeat_bytes = rh.serialize();
    }
    push_warm_data(tx, engine_.now());
  });
}

void World::fail_warm(const WarmPtr& tx, Time at) {
  // Retry budget exhausted: fail the send cleanly and demote the channel to
  // cold (it re-warms on the next successful cold exchange). Successor
  // messages already staged keep flowing — the consume path does not check
  // warmth — so nothing hangs.
  tx->done = true;
  sim::Engine::cancel(tx->watchdog);
  Channel* ch = tx->ch;
  ch->warm = false;
  ch->credits = 0;
  if (ch->next_consume_seq == tx->seq) ++ch->next_consume_seq;
  Status send_status{tx->env.dst, tx->env.tag, 0};
  send_status.error = StatusError::RetryLimit;
  complete_at(tx->send_req, send_status, at);
  // Flush the stall queue: no credits will ever refill a demoted channel.
  auto it = stalled_.find(ch->id);
  if (it != stalled_.end()) {
    std::deque<WarmPtr> pending = std::move(it->second);
    stalled_.erase(it);
    for (auto& p : pending) push_warm_data(p, at);
  }
  drain_parked_warm(tx->env.dst);
}

void World::refill_credit(Channel* ch, Time at) {
  ++ch->credits;
  auto it = stalled_.find(ch->id);
  if (it == stalled_.end() || it->second.empty()) return;
  WarmPtr tx = it->second.front();
  it->second.pop_front();
  --ch->credits;
  push_warm_data(tx, at);
}

// ---------------------------------------------------------------------------
// Chunked pipelined rendezvous (see mpi/pipeline.hpp)
// ---------------------------------------------------------------------------

bool World::pipeline_eligible(int src, int dst, const void* buf, std::uint64_t bytes) const {
  const PipelineConfig& cfg = options_.pipeline;
  if (!cfg.enabled || bytes < cfg.min_bytes) return false;
  if (!compression_.compress_intra_node && cluster_.same_node(src, dst)) return false;
  return ranks_[static_cast<std::size_t>(src)].mgr->should_compress(buf, bytes);
}

std::uint64_t World::resolve_chunk_bytes(int src, int dst, std::uint64_t bytes) const {
  const PipelineConfig& cfg = options_.pipeline;
  if (cfg.chunk_bytes != 0) {
    return std::min(std::max<std::uint64_t>(cfg.chunk_bytes, 1), bytes);
  }
  const net::LinkSpec& link = cluster_.same_node(src, dst) ? cluster_.intra : cluster_.inter;
  return auto_chunk_bytes(bytes, compression_, cluster_.gpu, link, cfg);
}

Request World::pipeline_isend(sim::ActorContext& ctx, int src, const void* buf,
                              std::uint64_t bytes, int dst, int tag,
                              std::uint64_t chunk_bytes) {
  auto req = std::make_shared<RequestState>();
  Envelope env{src, dst, tag, bytes};
  // The RTS announces the chunk geometry; compression has NOT run yet — it
  // is overlapped with the transfers once the CTS arrives. Per-chunk
  // headers (sizes, CRCs) travel with each chunk's envelope instead.
  core::CompressionHeader announce;
  announce.algorithm = compression_.algorithm;
  announce.original_bytes = bytes;
  announce.compressed_bytes = bytes;
  announce.pipeline_chunks = static_cast<std::uint32_t>((bytes + chunk_bytes - 1) / chunk_bytes);
  announce.pipeline_chunk_bytes = chunk_bytes;
  ctx.advance(options_.host_send_overhead);
  const Time t_rts =
      fabric_->control(ctx.now(), src, dst, options_.rts_bytes + announce.wire_bytes());
  RtsMsg rts{env, announce, nullptr, req, buf};
  engine_.schedule(t_rts, [this, rts = std::move(rts)]() mutable {
    on_rts_arrival(std::move(rts));
  });
  return req;
}

void World::begin_pipeline(Timeline& tl, RtsMsg rts, PostedRecv recv) {
  auto& state = ranks_[static_cast<std::size_t>(rts.env.dst)];
  if (recv.wire_out == nullptr && recv.capacity < rts.env.bytes) {
    throw std::runtime_error("MiniMPI: rendezvous truncation (receive buffer too small)");
  }
  auto tx = std::make_shared<PipelineTransfer>();
  tx->env = rts.env;
  tx->send_req = std::move(rts.send_req);
  tx->recv = std::move(recv);
  tx->sender_buf = rts.sender_buf;
  tx->chunk_bytes = rts.header.pipeline_chunk_bytes;
  tx->chunks = static_cast<int>(rts.header.pipeline_chunks);
  tx->window = std::min(tx->chunks, std::max(1, options_.pipeline.max_in_flight));
  tx->blocks = pipeline_chunk_blocks(cluster_.gpu, options_.pipeline.max_in_flight, tx->chunks);
  tx->chunk_state.resize(static_cast<std::size_t>(tx->chunks));
  // One staging acquisition for the whole transfer, sub-divided into
  // `window` slices; chunk i stages in slice i % window. A chunk's slice is
  // only touched within its own arrival event, so the reuse is safe.
  tx->staging = state.mgr->prepare_pipeline_receive(tl, tx->chunk_bytes, tx->window);
  if (tx->recv.wire_out != nullptr) {
    // Wire-form receivers of a pipelined send get the reassembled message
    // as a raw wire view (the per-chunk streams are not forwardable).
    tx->assemble = std::make_shared<std::vector<std::uint8_t>>(tx->env.bytes);
  }
  tx->recv_cursor = tl.now();
  const Time t_cts = fabric_->control(tl.now(), tx->env.dst, tx->env.src, options_.cts_bytes);
  engine_.schedule(t_cts, [this, tx]() { start_pipeline_sender(tx); });
}

void World::start_pipeline_sender(const PipePtr& tx) {
  if (tx->done) return;
  tx->start = engine_.now();
  tx->send_cursor = engine_.now() + options_.progress_overhead;
  ranks_[static_cast<std::size_t>(tx->env.src)].mgr->note_pipelined_message();
  for (int i = 0; i < tx->window; ++i) launch_pipeline_chunk(tx);
}

void World::launch_pipeline_chunk(const PipePtr& tx) {
  if (tx->done || tx->next_chunk >= tx->chunks) return;
  const int ci = tx->next_chunk++;
  const std::uint64_t off = static_cast<std::uint64_t>(ci) * tx->chunk_bytes;
  const std::uint64_t len = pipeline_chunk_len(tx, ci);
  auto& state = ranks_[static_cast<std::size_t>(tx->env.src)];
  Timeline tl(tx->send_cursor);
  auto ck = std::make_shared<core::CompressionManager::ChunkWire>(state.mgr->compress_chunk(
      tl, static_cast<const std::uint8_t*>(tx->sender_buf) + off, len, ci, tx->blocks));
  tx->send_cursor = tl.now();
  tx->compress_busy += ck->kernel_time;
  // Host-side completion (size readback, fallback decision, push) runs
  // once the chunk's kernels drain AND the progress thread is free.
  const Time ready = std::max(ck->kernel_done, tx->send_cursor);
  engine_.schedule(ready, [this, tx, ci, ck]() { pipeline_chunk_ready(tx, ci, ck); });
}

void World::pipeline_chunk_ready(const PipePtr& tx, int chunk,
                                 const std::shared_ptr<core::CompressionManager::ChunkWire>& ck) {
  if (tx->done) return;
  auto& state = ranks_[static_cast<std::size_t>(tx->env.src)];
  const std::uint64_t off = static_cast<std::uint64_t>(chunk) * tx->chunk_bytes;
  const std::uint64_t len = pipeline_chunk_len(tx, chunk);
  const auto* user = static_cast<const std::uint8_t*>(tx->sender_buf) + off;
  Timeline tl(std::max(engine_.now(), tx->send_cursor));
  state.mgr->finish_chunk(tl, *ck, user, len);
  auto payload = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<const std::uint8_t*>(ck->wire.data),
      static_cast<const std::uint8_t*>(ck->wire.data) + ck->wire.bytes);
  auto& cs = tx->chunk_state[static_cast<std::size_t>(chunk)];
  cs.header = ck->wire.header;
  if (reliability_) cs.header.payload_crc32c = payload_crc(*payload);
  cs.payload = std::move(payload);
  state.mgr->release_send(tl, ck->wire);
  tx->send_cursor = tl.now();
  push_pipeline_chunk(tx, chunk, tx->send_cursor);
  // Keep the window full: one finished chunk funds the next launch.
  launch_pipeline_chunk(tx);
}

void World::push_pipeline_chunk(const PipePtr& tx, int chunk, Time start) {
  if (tx->done) return;
  auto& cs = tx->chunk_state[static_cast<std::size_t>(chunk)];
  cs.recovery_pending = false;
  ++cs.attempts;
  const std::uint64_t wire_bytes =
      cs.payload->size() + options_.envelope_bytes + cs.header.wire_bytes();
  const net::Fabric::Delivery d =
      fabric_->transfer_data(start, tx->env.src, tx->env.dst, wire_bytes);
  tx->wire_total += cs.payload->size();
  tx->transfer_busy += d.wire;  // occupancy including retransmitted pushes

  if (!d.dropped) {
    Payload delivered = cs.payload;
    if (d.corrupted) {
      delivered = std::make_shared<std::vector<std::uint8_t>>(*cs.payload);
      if (!delivered->empty()) {
        const std::uint64_t bit = d.corrupt_bits % (delivered->size() * 8);
        (*delivered)[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    engine_.schedule(d.at, [this, tx, chunk, delivered]() {
      on_pipeline_data(tx, chunk, delivered);
    });
    return;
  }

  // Dropped: per-chunk watchdog, same margin/backoff policy as the serial
  // protocol but scoped to this chunk only.
  Time margin = options_.retransmit_timeout;
  for (int i = 1; i < cs.attempts; ++i) {
    margin = Time::ns(static_cast<std::int64_t>(static_cast<double>(margin.count_ns()) *
                                                options_.retransmit_backoff));
  }
  cs.watchdog = engine_.schedule_cancelable(d.at + margin, [this, tx, chunk]() {
    pipeline_retransmit(tx, chunk, engine_.now(), false);
  });
}

void World::on_pipeline_data(const PipePtr& tx, int chunk, const Payload& delivered) {
  if (tx->done) return;
  auto& cs = tx->chunk_state[static_cast<std::size_t>(chunk)];
  if (cs.received) return;  // stale duplicate from a raced retransmit
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  Timeline tl(std::max(engine_.now() + options_.progress_overhead, tx->recv_cursor));

  if (reliability_ && payload_crc(*delivered) != cs.header.payload_crc32c) {
    if (options_.telemetry != nullptr) {
      options_.telemetry->record({tl.now(), tx->env.dst, core::EventKind::CorruptionDetected,
                                  cs.header.algorithm, cs.header.original_bytes,
                                  delivered->size(), Time::zero()});
    }
    pipeline_retransmit(tx, chunk, tl.now(), false);
    return;
  }

  const std::uint64_t off = static_cast<std::uint64_t>(chunk) * tx->chunk_bytes;
  const std::uint64_t len = pipeline_chunk_len(tx, chunk);
  auto* out = (tx->recv.wire_out != nullptr ? tx->assemble->data()
                                            : static_cast<std::uint8_t*>(tx->recv.buf)) +
              off;
  if (cs.header.compressed) {
    void* slice = tx->staging.slice(chunk);
    std::memcpy(slice, delivered->data(), delivered->size());
    Time kernel_time;
    try {
      const Time done = state.mgr->decompress_chunk(tl, cs.header, slice, out, len, chunk,
                                                    tx->blocks, &kernel_time);
      tx->recv_done = std::max(tx->recv_done, done);
      tx->decompress_busy += kernel_time;
    } catch (const core::CodecFaultError&) {
      // Intact stream (CRC passed), faulting kernel: ask the sender to
      // resend just this chunk raw.
      pipeline_retransmit(tx, chunk, tl.now(), true);
      return;
    }
  } else {
    if (!delivered->empty()) std::memcpy(out, delivered->data(), delivered->size());
    tx->recv_done = std::max(tx->recv_done, tl.now());
  }
  cs.received = true;
  sim::Engine::cancel(cs.watchdog);
  tx->recv_cursor = tl.now();
  ++tx->arrived;
  if (tx->arrived == tx->chunks) {
    engine_.schedule(std::max(tx->recv_done, tl.now()), [this, tx]() { finish_pipeline(tx); });
  }
}

void World::pipeline_retransmit(const PipePtr& tx, int chunk, Time at, bool decode_fail) {
  auto& cs = tx->chunk_state[static_cast<std::size_t>(chunk)];
  if (tx->done || cs.received || cs.recovery_pending) return;
  sim::Engine::cancel(cs.watchdog);
  if (cs.attempts > options_.max_data_retries) {
    fail_pipeline(tx, at);
    return;
  }
  cs.recovery_pending = true;
  ++tx->retransmits;
  if (options_.telemetry != nullptr) {
    options_.telemetry->record({at, tx->env.dst, core::EventKind::Retransmit,
                                cs.header.algorithm, cs.header.original_bytes,
                                cs.payload->size(), Time::zero()});
  }
  const Time t_nack = fabric_->control(at, tx->env.dst, tx->env.src, options_.nack_bytes);
  engine_.schedule(t_nack, [this, tx, chunk, decode_fail]() {
    if (tx->done) return;
    auto& cs = tx->chunk_state[static_cast<std::size_t>(chunk)];
    if (cs.received) return;
    if (decode_fail && !cs.fell_back_raw) {
      // This chunk's decompression keeps faulting: degrade IT (and only it)
      // to a raw resend from the still-live user buffer.
      cs.fell_back_raw = true;
      const std::uint64_t off = static_cast<std::uint64_t>(chunk) * tx->chunk_bytes;
      const std::uint64_t len = pipeline_chunk_len(tx, chunk);
      const auto* user = static_cast<const std::uint8_t*>(tx->sender_buf) + off;
      cs.payload = std::make_shared<std::vector<std::uint8_t>>(user, user + len);
      core::CompressionHeader raw;
      raw.original_bytes = len;
      raw.compressed_bytes = len;
      if (reliability_) raw.payload_crc32c = payload_crc(*cs.payload);
      cs.header = raw;
    }
    push_pipeline_chunk(tx, chunk, engine_.now());
  });
}

void World::finish_pipeline(const PipePtr& tx) {
  if (tx->done) return;
  tx->done = true;
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  Timeline tl(engine_.now());
  // One final cudaStreamSynchronize before the user buffer is handed over.
  tl.advance(state.gpu->costs().stream_sync);
  state.mgr->release_pipeline_receive(tl, tx->staging);
  if (tx->recv.wire_out != nullptr) {
    core::CompressionHeader raw;
    raw.original_bytes = tx->env.bytes;
    raw.compressed_bytes = tx->env.bytes;
    if (reliability_) raw.payload_crc32c = payload_crc(*tx->assemble);
    *tx->recv.wire_out = WireMessage{raw, tx->assemble};
  }
  if (options_.telemetry != nullptr) {
    options_.telemetry->record_pipeline(
        {tx->start, tx->env.src, tx->env.dst, compression_.algorithm, tx->env.bytes,
         tx->wire_total, static_cast<std::uint32_t>(tx->chunks), tx->retransmits,
         tl.now() - tx->start, tx->compress_busy, tx->transfer_busy, tx->decompress_busy});
  }
  complete(tx->send_req, Status{tx->env.dst, tx->env.tag, tx->env.bytes});
  complete_at(tx->recv.req, Status{tx->env.src, tx->env.tag, tx->env.bytes}, tl.now());
}

void World::fail_pipeline(const PipePtr& tx, Time at) {
  tx->done = true;
  for (auto& cs : tx->chunk_state) sim::Engine::cancel(cs.watchdog);
  auto& state = ranks_[static_cast<std::size_t>(tx->env.dst)];
  if (tx->staging.valid()) {
    Timeline tl(at);
    state.mgr->release_pipeline_receive(tl, tx->staging);
  }
  Status recv_status{tx->env.src, tx->env.tag, 0};
  recv_status.error = StatusError::RetryLimit;
  Status send_status{tx->env.dst, tx->env.tag, 0};
  send_status.error = StatusError::RetryLimit;
  complete_at(tx->send_req, send_status, at);
  complete_at(tx->recv.req, recv_status, at);
}

Request World::do_irecv(sim::ActorContext& ctx, int dst, void* buf, std::uint64_t capacity,
                        int src, int tag, WireMessage* wire_out) {
  auto req = std::make_shared<RequestState>();
  auto& state = ranks_[static_cast<std::size_t>(dst)];
  PostedRecv self{buf, capacity, src, tag, req, wire_out};

  // Find the OLDEST matching unexpected message across the queues so a
  // later eager message can never overtake an earlier rendezvous one.
  auto eager_it = state.unexpected_eager.end();
  for (auto it = state.unexpected_eager.begin(); it != state.unexpected_eager.end(); ++it) {
    if (matches(self, it->env)) {
      eager_it = it;
      break;
    }
  }
  auto rts_it = state.pending_rts.end();
  for (auto it = state.pending_rts.begin(); it != state.pending_rts.end(); ++it) {
    if (matches(self, it->env)) {
      rts_it = it;
      break;
    }
  }
  // Parked warm-channel arrivals: only a channel's next in-order message is
  // matchable (a predecessor in retransmission recovery blocks successors).
  auto warm_it = state.parked_warm.end();
  for (auto it = state.parked_warm.begin(); it != state.parked_warm.end(); ++it) {
    if (!(*it)->done && (*it)->seq == (*it)->ch->next_consume_seq &&
        matches(self, (*it)->env)) {
      warm_it = it;
      break;
    }
  }
  const bool has_eager = eager_it != state.unexpected_eager.end();
  const bool has_rts = rts_it != state.pending_rts.end();
  const bool has_warm = warm_it != state.parked_warm.end();
  const std::uint64_t eager_at = has_eager ? eager_it->arrival : ~0ull;
  const std::uint64_t rts_at = has_rts ? rts_it->arrival : ~0ull;
  const std::uint64_t warm_at = has_warm ? (*warm_it)->arrival : ~0ull;

  if (has_warm && warm_at < eager_at && warm_at < rts_at) {
    WarmPtr tx = *warm_it;
    state.parked_warm.erase(warm_it);
    Timeline tl(ctx.now());
    consume_warm(tx, std::move(self), tl);
    ctx.advance_to(tl.now());
    drain_parked_warm(dst);
    return req;
  }
  if (has_eager && eager_at < rts_at) {
    Status status{eager_it->env.src, eager_it->env.tag, eager_it->env.bytes};
    if (wire_out != nullptr) {
      if (!eager_it->crc_ok) {
        status.bytes = 0;
        status.error = StatusError::ChecksumMismatch;
      } else {
        core::CompressionHeader raw;
        raw.original_bytes = eager_it->env.bytes;
        raw.compressed_bytes = eager_it->env.bytes;
        raw.payload_crc32c = eager_it->env.crc;
        *wire_out = WireMessage{raw, eager_it->payload};
      }
    } else {
      status.error = deliver_eager_to(self, *eager_it);
      if (status.error != StatusError::None) status.bytes = 0;
    }
    state.unexpected_eager.erase(eager_it);
    ctx.advance(options_.host_recv_overhead);
    req->status = status;
    req->complete = true;
    return req;
  }
  if (has_rts) {
    RtsMsg rts = std::move(*rts_it);
    state.pending_rts.erase(rts_it);
    Timeline tl(ctx.now());
    begin_rndv_receive(tl, std::move(rts), std::move(self));
    ctx.advance_to(tl.now());
    return req;
  }
  // Nothing waiting: post the receive.
  state.posted.push_back(std::move(self));
  ctx.advance(options_.host_recv_overhead);
  return req;
}

bool World::do_iprobe(int rank, int src, int tag, Status* status) {
  auto& state = ranks_[static_cast<std::size_t>(rank)];
  auto match = [&](const Envelope& env) {
    return (src == kAnySource || src == env.src) && (tag == kAnyTag || tag == env.tag);
  };
  for (const auto& m : state.unexpected_eager) {
    if (match(m.env)) {
      if (status != nullptr) *status = Status{m.env.src, m.env.tag, m.env.bytes};
      return true;
    }
  }
  for (const auto& m : state.pending_rts) {
    if (match(m.env)) {
      if (status != nullptr) *status = Status{m.env.src, m.env.tag, m.env.bytes};
      return true;
    }
  }
  for (const auto& tx : state.parked_warm) {
    if (!tx->done && tx->seq == tx->ch->next_consume_seq && match(tx->env)) {
      if (status != nullptr) *status = Status{tx->env.src, tx->env.tag, tx->env.bytes};
      return true;
    }
  }
  return false;
}

Status World::do_probe(sim::ActorContext& ctx, int rank, int src, int tag) {
  Status status;
  while (!do_iprobe(rank, src, tag, &status)) {
    auto& state = ranks_[static_cast<std::size_t>(rank)];
    state.probe_waiters.push_back(ProbeWaiter{src, tag, ctx.id()});
    ctx.block();
  }
  return status;
}

// ---------------------------------------------------------------------------
// Rank facade
// ---------------------------------------------------------------------------

int Rank::size() const { return world_.size(); }

gpu::Gpu& Rank::gpu() { return world_.gpu_of(rank_); }

core::CompressionManager& Rank::compression() { return world_.compression_of(rank_); }

void* Rank::gpu_malloc(std::size_t bytes) {
  Timeline tl(ctx_.now());
  void* p = gpu().malloc_device(tl, bytes);
  ctx_.advance_to(tl.now());
  return p;
}

void Rank::gpu_free(void* p) {
  Timeline tl(ctx_.now());
  gpu().free_device(tl, p);
  ctx_.advance_to(tl.now());
}

Request Rank::isend(const void* buf, std::uint64_t bytes, int dst, int tag) {
  return world_.do_isend(ctx_, rank_, buf, bytes, dst, tag);
}

Request Rank::irecv(void* buf, std::uint64_t capacity, int src, int tag) {
  return world_.do_irecv(ctx_, rank_, buf, capacity, src, tag);
}

WireMessage Rank::make_wire(const void* buf, std::uint64_t bytes) {
  return world_.do_make_wire(ctx_, rank_, buf, bytes);
}

std::vector<WireMessage> Rank::make_wire_batch(const std::vector<WireBlock>& blocks) {
  return world_.do_make_wire_batch(ctx_, rank_, blocks);
}

Request Rank::isend_wire(const WireMessage& msg, int dst, int tag) {
  return world_.do_isend_wire(ctx_, rank_, msg, dst, tag);
}

Request Rank::irecv_wire(WireMessage* out, int src, int tag) {
  return world_.do_irecv(ctx_, rank_, nullptr, ~0ull, src, tag, out);
}

void Rank::decompress_wire(const WireMessage& msg, void* buf, std::uint64_t capacity) {
  if (!msg.payload) throw std::invalid_argument("decompress_wire: empty message");
  auto& mgr = compression();
  sim::Timeline tl(ctx_.now());
  if (msg.header.compressed) {
    auto staging = mgr.prepare_receive(tl, msg.header);
    if (!msg.payload->empty()) std::memcpy(staging.data, msg.payload->data(), msg.payload->size());
    // Wire-form receives have no protocol-level resend path, so injected
    // decompression faults are recovered by relaunching the kernels.
    mgr.decompress_with_retry(tl, msg.header, staging, buf, capacity);
    mgr.release_receive(tl, staging);
  } else {
    if (capacity < msg.payload->size()) {
      throw std::runtime_error("decompress_wire: buffer too small");
    }
    if (!msg.payload->empty()) std::memcpy(buf, msg.payload->data(), msg.payload->size());
  }
  ctx_.advance_to(tl.now());
}

Status Rank::wait(Request& req) {
  if (!req) throw std::invalid_argument("wait: null request");
  while (!req->complete) {
    req->waiter = ctx_.id();
    ctx_.block();
  }
  req->waiter = sim::kNoActor;
  return req->status;
}

void Rank::waitall(std::vector<Request>& reqs) {
  for (auto& r : reqs) (void)wait(r);
}

void Rank::send(const void* buf, std::uint64_t bytes, int dst, int tag) {
  Request req = isend(buf, bytes, dst, tag);
  (void)wait(req);
}

Status Rank::recv(void* buf, std::uint64_t capacity, int src, int tag) {
  Request req = irecv(buf, capacity, src, tag);
  return wait(req);
}

Status Rank::probe(int src, int tag) { return world_.do_probe(ctx_, rank_, src, tag); }

bool Rank::iprobe(int src, int tag, Status* status) {
  return world_.do_iprobe(rank_, src, tag, status);
}

void Rank::sendrecv(const void* sendbuf, std::uint64_t send_bytes, int dst, int sendtag,
                    void* recvbuf, std::uint64_t recv_capacity, int src, int recvtag) {
  Request rr = irecv(recvbuf, recv_capacity, src, recvtag);
  Request sr = isend(sendbuf, send_bytes, dst, sendtag);
  (void)wait(rr);
  (void)wait(sr);
}

}  // namespace gcmpi::mpi
