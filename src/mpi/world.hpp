// MiniMPI: an MPI-like message-passing library running on the simulated
// GPU cluster, with the paper's on-the-fly compression framework integrated
// into its rendezvous protocol.
//
// Protocol (mirrors MVAPICH2's, Sec. III-A):
//   * eager:      messages <= eager_threshold are staged and delivered with
//                 their envelope in one hop; sends complete locally.
//   * rendezvous: the sender first (optionally) compresses the payload on
//                 its GPU, then sends an RTS carrying the compression
//                 header; the receiver, once a matching receive exists,
//                 prepares a temporary device buffer and answers with CTS;
//                 the sender then pushes the (compressed) payload; on
//                 arrival the receiver decompresses into the user buffer.
//
// Each rank is an actor thread; the receiver side of the protocol runs in
// engine events, modeling MVAPICH2-GDR's asynchronous progress engine.
// Collectives (bcast, allgather, allreduce, reduce, alltoall, gather,
// scatter, barrier) are built from these point-to-point primitives, so they
// inherit per-hop compression exactly as in the paper's OMB experiments.
//
// Wire reliability (active when WorldOptions::fault is set, or when
// verify_checksums is requested explicitly):
//   * every payload carries a CRC32C — in the eager envelope for eager
//     messages, in the piggybacked CompressionHeader for rendezvous;
//   * rendezvous data packets can be dropped or bit-corrupted by the fault
//     injector; the receiver NACKs on CRC mismatch, a sender-side timeout
//     covers drops, and the payload is re-pushed with exponential backoff
//     up to max_data_retries before both requests complete with
//     StatusError::RetryLimit (no hangs);
//   * a decompression kernel fault NACKs with decode_fail, and the sender
//     falls back to resending the raw (uncompressed) user buffer.
// Control packets (RTS/CTS/NACK) and eager messages ride the modeled
// link-level-reliable control plane and are never dropped.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include <map>

#include "core/adapt.hpp"
#include "core/collective.hpp"
#include "core/manager.hpp"
#include "fault/injector.hpp"
#include "gpu/device.hpp"
#include "mpi/channel.hpp"
#include "mpi/pipeline.hpp"
#include "net/cluster.hpp"
#include "sim/engine.hpp"

namespace gcmpi::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Why a request finished unsuccessfully. Only the reliability layer
/// produces non-None values today.
enum class StatusError : std::uint8_t {
  None = 0,
  RetryLimit = 1,         // rendezvous payload never delivered within retry budget
  Truncated = 2,          // eager message larger than the posted receive buffer
  ChecksumMismatch = 3,   // eager payload failed its end-to-end CRC32C check
};

struct Status {
  int source = -1;
  int tag = -1;
  std::uint64_t bytes = 0;
  StatusError error = StatusError::None;

  [[nodiscard]] bool ok() const { return error == StatusError::None; }
};

struct RequestState {
  bool complete = false;
  Status status{};
  sim::ActorId waiter = sim::kNoActor;
};
using Request = std::shared_ptr<RequestState>;

/// A message in its on-the-wire (possibly compressed) representation.
/// Produced by Rank::make_wire / irecv_wire, consumed by isend_wire /
/// decompress_wire. Lets collectives compress once and forward the
/// compressed bytes through the tree/ring instead of paying a
/// decompress+recompress cycle per hop (the compression-aware collectives
/// design; see Sec. VI-B reproduction notes in DESIGN.md).
struct WireMessage {
  core::CompressionHeader header;
  std::shared_ptr<std::vector<std::uint8_t>> payload;
  [[nodiscard]] std::uint64_t original_bytes() const { return header.original_bytes; }
};

/// Reduction operators for reduce/allreduce on float data (the canonical
/// accumulator-first primitives from compress/reduce.hpp).
using ReduceOp = core::ReduceOp;

struct WorldOptions {
  std::uint64_t eager_threshold = 16 * 1024;
  core::Telemetry* telemetry = nullptr;  // optional INAM-style monitor
  sim::Time host_send_overhead = sim::Time::us(0.4);
  sim::Time host_recv_overhead = sim::Time::us(0.4);
  sim::Time progress_overhead = sim::Time::us(0.5);  // per protocol event
  std::uint64_t envelope_bytes = 48;                 // wire header per message
  std::uint64_t rts_bytes = 64;                      // RTS before piggyback
  std::uint64_t cts_bytes = 32;

  // --- wire reliability (see the protocol notes at the top of this file) ---
  /// Deterministic chaos source consulted by the fabric and the codecs.
  /// Installing one turns the reliability layer on.
  fault::FaultInjector* fault = nullptr;
  /// Force CRC computation/verification even without an injector (the
  /// checksums are then pure assertions: nothing corrupts the payloads).
  bool verify_checksums = false;
  /// Give up after this many re-pushes of one rendezvous payload; both
  /// requests then complete with StatusError::RetryLimit.
  int max_data_retries = 8;
  /// Sender-side drop-detection margin past the expected arrival, doubled
  /// (by retransmit_backoff) after every failed attempt.
  sim::Time retransmit_timeout = sim::Time::us(200);
  double retransmit_backoff = 2.0;
  std::uint64_t nack_bytes = 32;  // control packet asking for a re-push

  /// Chunked pipelined rendezvous (see mpi/pipeline.hpp). Off by default:
  /// the serial protocol above is reproduced bit-for-bit.
  PipelineConfig pipeline;

  /// Collective algorithm engine tuning (allreduce/reduce_scatter: linear
  /// p2p composition vs compression-aware ring vs hierarchical leader
  /// ring). Auto keeps small/low-rank jobs on the legacy linear schedule.
  core::CollectiveTuning collectives;

  /// Closed-loop codec/algorithm selection (src/adapt). When installed it
  /// is consulted by every rank's CompressionManager before each compress
  /// and by the collective engines' Auto algorithm resolution; telemetry
  /// feeds it back (bind it to `telemetry` above). Null = static tuning.
  core::AdaptivePolicy* adaptive = nullptr;

  /// Persistent channels (see mpi/channel.hpp): repeated same-shape
  /// exchanges skip the RTS/CTS handshake after a one-time warm-up and
  /// reuse cached compression plans + held receiver staging. Off by
  /// default: the cold protocol is reproduced bit-for-bit.
  struct PersistentOptions {
    bool enabled = false;
    /// Credits granted at warm-up: warm messages the sender may have in
    /// flight before the receiver's consume notifications refill them.
    int credits = 4;
    /// Size of the one-time credit-grant control packet.
    std::uint64_t grant_bytes = 32;
  };
  PersistentOptions persistent;
};

class World;

/// Per-rank facade handed to the application function: the MPI API.
class Rank {
 public:
  Rank(World& world, int rank, sim::ActorContext& ctx) : world_(world), rank_(rank), ctx_(ctx) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] sim::Time now() const { return ctx_.now(); }
  [[nodiscard]] gpu::Gpu& gpu();
  [[nodiscard]] core::CompressionManager& compression();
  [[nodiscard]] sim::ActorContext& ctx() { return ctx_; }

  /// Elapse virtual compute time (e.g. a GPU kernel of the application).
  void compute(sim::Time t) { ctx_.advance(t); }

  // --- device memory helpers ---
  [[nodiscard]] void* gpu_malloc(std::size_t bytes);
  void gpu_free(void* p);

  // --- point-to-point ---
  Request isend(const void* buf, std::uint64_t bytes, int dst, int tag);
  Request irecv(void* buf, std::uint64_t capacity, int src, int tag);

  // --- wire-level primitives (compression-aware collectives) ---
  /// Compress `buf` once into its wire representation (charges the full
  /// sender-side compression cost; raw pass-through if not eligible).
  [[nodiscard]] WireMessage make_wire(const void* buf, std::uint64_t bytes);
  /// Send an existing wire representation: no recompression, only protocol
  /// and transfer costs.
  Request isend_wire(const WireMessage& msg, int dst, int tag);
  /// Receive a message in wire form: completes at payload arrival, without
  /// decompressing. `out` must stay alive until the request completes.
  Request irecv_wire(WireMessage* out, int src, int tag);
  /// Decompress a wire message into `buf` (charges receiver-side costs).
  void decompress_wire(const WireMessage& msg, void* buf, std::uint64_t capacity);
  /// One outgoing block of a batched multi-destination send.
  struct WireBlock {
    const void* buf = nullptr;
    std::uint64_t bytes = 0;
    int peer = -1;
    int tag = 0;
  };
  /// Compress every eligible block of the batch in ONE batched kernel
  /// launch (CompressionManager::compress_batch): the launch+sync overhead
  /// is paid once for the whole batch instead of once per destination.
  /// Returns one wire message per block, aligned with the input.
  [[nodiscard]] std::vector<WireMessage> make_wire_batch(const std::vector<WireBlock>& blocks);
  /// Multi-destination send (shuffles, scatter roots): blocks that qualify
  /// for batched compression (>= 2 of them) go through make_wire_batch +
  /// isend_wire; the rest take the normal isend path. Returns one request
  /// per block, aligned with the input.
  [[nodiscard]] std::vector<Request> isend_batched(const std::vector<WireBlock>& blocks);
  void send(const void* buf, std::uint64_t bytes, int dst, int tag);
  Status recv(void* buf, std::uint64_t capacity, int src, int tag);
  /// Block until a matching message is available without receiving it
  /// (MPI_Probe); the status reports source, tag, and size.
  Status probe(int src, int tag);
  /// Non-blocking probe (MPI_Iprobe); true if a matching message waits.
  bool iprobe(int src, int tag, Status* status = nullptr);
  Status wait(Request& req);
  void waitall(std::vector<Request>& reqs);
  void sendrecv(const void* sendbuf, std::uint64_t send_bytes, int dst, int sendtag,
                void* recvbuf, std::uint64_t recv_capacity, int src, int recvtag);

  // --- collectives ---
  void barrier();
  void bcast(void* buf, std::uint64_t bytes, int root);
  /// Gather `block_bytes` from every rank into recvbuf (size*block_bytes).
  void allgather(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf);
  void reduce(const float* sendbuf, float* recvbuf, std::size_t n, ReduceOp op, int root);
  void allreduce(const float* sendbuf, float* recvbuf, std::size_t n, ReduceOp op);
  /// MPI_Reduce_scatter_block: reduce a P*recvcount vector, leave shard r
  /// (recvcount floats) at rank r. Ring-capable (see coll_engine.cpp).
  void reduce_scatter(const float* sendbuf, float* recvbuf, std::size_t recvcount,
                      ReduceOp op);
  void alltoall(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf);
  void gather(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf, int root);
  void scatter(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf, int root);

 private:
  int next_coll_tag();

  // --- collective algorithm engine (coll_engine.cpp) ---
  /// Per-hop stage accounting for one engine collective on this rank.
  struct CollStats {
    std::uint32_t hops = 0;
    std::uint32_t reduces = 0;
    sim::Time compress_busy;
    sim::Time transfer_busy;
    sim::Time reduce_busy;
  };
  [[nodiscard]] core::CollectiveAlgorithm select_allreduce(std::uint64_t bytes) const;
  void allreduce_linear(const float* sendbuf, float* recvbuf, std::size_t n, ReduceOp op,
                        int tag);
  void allreduce_ring(const float* sendbuf, float* recvbuf, std::size_t n, ReduceOp op,
                      int tag);
  void allreduce_hierarchical(const float* sendbuf, float* recvbuf, std::size_t n,
                              ReduceOp op, int tag);
  /// Ring reduce-scatter over `members` (this rank at `members[pos]`): after
  /// N-1 steps the member at position s owns the fully reduced shard s of
  /// the device accumulator `acc` (n floats).
  void ring_reduce_scatter_members(const std::vector<int>& members, int pos, float* acc,
                                   std::size_t n, ReduceOp op, int tag, CollStats& st);
  /// Ring allgather of the reduced shards (wire forms forwarded, decode
  /// overlapped): on return every member's `acc` holds the full vector.
  void ring_allgather_members(const std::vector<int>& members, int pos, float* acc,
                              std::size_t n, int tag, CollStats& st);
  void record_collective(const char* op, core::CollectiveAlgorithm algorithm,
                         std::uint64_t bytes, sim::Time started, const CollStats& st);

  // --- hierarchical moving collectives (hier_engine.cpp) ---
  // Two-level staging for bcast/allgather/gather/scatter: one wire transit
  // crosses IB per node (forwarded compressed form), intra-node traffic
  // rides NVLink, decode happens once per node off the inter-node critical
  // path. Selected by the resolve_*_algorithm floors (or forced knobs),
  // refined by the adaptive control plane under Auto.
  [[nodiscard]] core::CollectiveAlgorithm select_bcast(std::uint64_t bytes) const;
  [[nodiscard]] core::CollectiveAlgorithm select_allgather(std::uint64_t block_bytes) const;
  [[nodiscard]] core::CollectiveAlgorithm select_gather(std::uint64_t block_bytes) const;
  [[nodiscard]] core::CollectiveAlgorithm select_scatter(std::uint64_t block_bytes) const;
  void bcast_hierarchical(void* buf, std::uint64_t bytes, int root, int tag);
  void allgather_hierarchical(const void* sendbuf, std::uint64_t block_bytes,
                              void* recvbuf, int tag);
  void gather_hierarchical(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf,
                           int root, int tag);
  void scatter_hierarchical(const void* sendbuf, std::uint64_t block_bytes, void* recvbuf,
                            int root, int tag);
  /// Intra-node fan-out form of a payload this rank holds raw: compressed
  /// wire when the compress_intra_node gate is on, raw wire otherwise.
  [[nodiscard]] WireMessage make_intra_wire(const void* buf, std::uint64_t bytes);

  // --- alltoall engine (alltoall_engine.cpp) ---
  [[nodiscard]] core::CollectiveAlgorithm select_alltoall(std::uint64_t block_bytes) const;
  /// Batched alltoall: ONE compression launch for the P-1 outgoing blocks,
  /// slab slices exchanged over the scattered pairwise schedule, decodes
  /// enqueued per arriving slice and synced once at the end. The caller
  /// already placed the rank's own block in `recvbuf`.
  void alltoall_batched(const std::uint8_t* sendbuf, std::uint64_t block_bytes,
                        std::uint8_t* recvbuf, int tag);

  World& world_;
  int rank_;
  sim::ActorContext& ctx_;
  int coll_seq_ = 0;
};

class World {
 public:
  World(sim::Engine& engine, net::ClusterSpec cluster,
        core::CompressionConfig compression = core::CompressionConfig::off(),
        WorldOptions options = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Spawn one actor per rank running `main` and run the simulation.
  void run(std::function<void(Rank&)> main);

  [[nodiscard]] int size() const { return cluster_.ranks(); }
  [[nodiscard]] const net::ClusterSpec& cluster() const { return cluster_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] gpu::Gpu& gpu_of(int rank);
  [[nodiscard]] core::CompressionManager& compression_of(int rank);
  [[nodiscard]] const WorldOptions& options() const { return options_; }
  /// Persistent-channel table (inspection/tests); empty unless
  /// WorldOptions::persistent is enabled.
  [[nodiscard]] const std::map<ChannelKey, Channel>& channels() const { return channels_; }

 private:
  friend class Rank;

  struct Envelope {
    int src = -1;
    int dst = -1;
    int tag = 0;
    std::uint64_t bytes = 0;   // original message size
    std::uint32_t crc = 0;     // eager payload CRC32C (reliability layer)
  };

  using Payload = std::shared_ptr<std::vector<std::uint8_t>>;

  struct EagerMsg {
    Envelope env;
    Payload payload;
    std::uint64_t arrival = 0;  // per-receiver arrival order (matching)
    bool crc_ok = true;         // end-to-end CRC verdict (reliability layer)
  };

  struct RtsMsg {
    Envelope env;
    core::CompressionHeader header;
    Payload payload;  // wire bytes, staged at send time
    Request send_req;
    const void* sender_buf = nullptr;  // user buffer, for raw-resend fallback
    std::uint64_t arrival = 0;
  };

  struct PostedRecv {
    void* buf = nullptr;
    std::uint64_t capacity = 0;
    int src = kAnySource;
    int tag = kAnyTag;
    Request req;
    WireMessage* wire_out = nullptr;  // set => deliver wire form, skip decompress
  };

  /// One in-flight rendezvous payload transfer (CTS received, data being
  /// pushed), kept alive until verified delivery or retry exhaustion.
  struct RndvTransfer {
    Envelope env;
    core::CompressionHeader header;
    Payload payload;
    Request send_req;
    PostedRecv recv;
    std::shared_ptr<core::CompressionManager::RecvStaging> staging;
    const void* sender_buf = nullptr;
    int attempts = 0;               // payload pushes so far
    bool done = false;
    bool fell_back_raw = false;     // decode faults switched us to raw
    bool recovery_pending = false;  // a NACK/timeout is already in flight
    sim::Engine::CancelToken watchdog;
  };
  using RndvPtr = std::shared_ptr<RndvTransfer>;

  /// One in-flight warm-channel message (persistent channels): the payload
  /// ships with a compact RepeatHeader instead of the RTS/CTS handshake.
  /// Mirrors RndvTransfer's recovery machinery — per-message watchdog,
  /// NACK-driven re-push, raw degradation on decode faults — but scoped to
  /// the channel: recovery never tears the channel down.
  struct WarmTransfer {
    Channel* ch = nullptr;
    Envelope env;
    std::vector<std::uint8_t> repeat_bytes;  // serialized RepeatHeader
    Payload payload;                         // sender-staged wire bytes
    Request send_req;
    const void* sender_buf = nullptr;  // raw-degrade source (user p2p only)
    bool wire_mode = false;            // deliver wire form (engine channels)
    std::uint32_t seq = 0;
    int attempts = 0;
    bool done = false;
    bool fell_back_raw = false;
    bool recovery_pending = false;
    std::uint64_t arrival = 0;  // stamp when parked unexpected
    Payload delivered;          // arrived bytes, kept while parked
    sim::Engine::CancelToken watchdog;
  };
  using WarmPtr = std::shared_ptr<WarmTransfer>;

  /// One in-flight CHUNKED pipelined rendezvous (announced via an RTS whose
  /// header carries pipeline_chunks >= 2). Compression, wire transfer, and
  /// decompression of consecutive chunks overlap; each chunk has its own
  /// CRC, watchdog, and retransmission budget, so a lost or corrupted chunk
  /// re-pushes only itself.
  struct PipelineTransfer {
    Envelope env;
    Request send_req;
    PostedRecv recv;
    const void* sender_buf = nullptr;
    std::uint64_t chunk_bytes = 0;
    int chunks = 0;
    int window = 0;  // max chunks concurrently in flight
    int blocks = 0;  // thread blocks per chunk kernel (SMs / window)
    core::CompressionManager::PipelineStaging staging;  // receiver slices
    Payload assemble;  // wire-form receivers: chunks reassemble here

    // Progress-thread host cursors: per-chunk host work (launches, size
    // readbacks, CRC handling) serializes on the owning side's cursor even
    // when chunk events interleave in engine time.
    sim::Time start;        // CTS arrival at the sender = pipeline start
    sim::Time send_cursor;
    sim::Time recv_cursor;
    sim::Time recv_done;    // max over chunk decompression completions
    int next_chunk = 0;     // next chunk to launch compression for
    int arrived = 0;        // chunks verified + consumed at the receiver
    bool done = false;

    struct ChunkState {
      core::CompressionHeader header;  // per-chunk sub-record (own CRC)
      Payload payload;                 // staged wire bytes of this chunk
      int attempts = 0;
      bool received = false;
      bool fell_back_raw = false;
      bool recovery_pending = false;
      sim::Engine::CancelToken watchdog;
    };
    std::vector<ChunkState> chunk_state;

    // Overlap telemetry accumulators (PipelineRecord).
    std::uint64_t wire_total = 0;  // payload bytes pushed, retransmits included
    std::uint32_t retransmits = 0;
    sim::Time compress_busy;
    sim::Time transfer_busy;
    sim::Time decompress_busy;
  };
  using PipePtr = std::shared_ptr<PipelineTransfer>;

  struct ProbeWaiter {
    int src = kAnySource;
    int tag = kAnyTag;
    sim::ActorId actor = sim::kNoActor;
  };

  struct RankState {
    std::unique_ptr<gpu::Gpu> gpu;
    std::unique_ptr<core::CompressionManager> mgr;
    std::deque<PostedRecv> posted;
    std::deque<EagerMsg> unexpected_eager;
    std::deque<RtsMsg> pending_rts;
    std::deque<WarmPtr> parked_warm;  // warm arrivals with no posted receive
    std::vector<ProbeWaiter> probe_waiters;
    std::uint64_t next_arrival = 0;  // stamps unexpected messages so a
                                     // receive matches the OLDEST arrival
                                     // across the unexpected queues (MPI
                                     // non-overtaking)
  };

  [[nodiscard]] static bool matches(const PostedRecv& r, const Envelope& e) {
    return (r.src == kAnySource || r.src == e.src) && (r.tag == kAnyTag || r.tag == e.tag);
  }

  // Protocol steps (see .cpp). Receiver-side handlers run in engine events.
  Request do_isend(sim::ActorContext& ctx, int src, const void* buf,
                   std::uint64_t bytes, int dst, int tag);
  Request do_irecv(sim::ActorContext& ctx, int dst, void* buf, std::uint64_t capacity,
                   int src, int tag, WireMessage* wire_out = nullptr);
  WireMessage do_make_wire(sim::ActorContext& ctx, int rank, const void* buf,
                           std::uint64_t bytes);
  std::vector<WireMessage> do_make_wire_batch(sim::ActorContext& ctx, int rank,
                                              const std::vector<Rank::WireBlock>& blocks);
  /// Would the normal isend path compress this block? (eligibility gate for
  /// routing a block through the batched compress path)
  [[nodiscard]] bool batch_compress_eligible(int src, int dst, const void* buf,
                                             std::uint64_t bytes) const;
  WireMessage make_raw_wire(const void* buf, std::uint64_t bytes) const;
  Request do_isend_wire(sim::ActorContext& ctx, int src, const WireMessage& msg, int dst,
                        int tag);
  void on_eager_arrival(EagerMsg msg);
  void on_rts_arrival(RtsMsg rts);
  void begin_rndv_receive(sim::Timeline& tl, RtsMsg rts, PostedRecv recv);
  // Reliability-aware data phase: push (or re-push) the payload, verify it
  // on arrival, NACK / time out / fail cleanly as needed.
  void push_rndv_data(const RndvPtr& tx);
  void on_rndv_data(const RndvPtr& tx, const Payload& delivered);
  void request_retransmit(const RndvPtr& tx, sim::Time at, bool decode_fail);
  void switch_to_raw(const RndvPtr& tx);
  void fail_rndv(const RndvPtr& tx, sim::Time at);
  // Chunked pipelined rendezvous (see mpi/pipeline.hpp and DESIGN.md).
  [[nodiscard]] bool pipeline_eligible(int src, int dst, const void* buf,
                                       std::uint64_t bytes) const;
  [[nodiscard]] std::uint64_t resolve_chunk_bytes(int src, int dst,
                                                  std::uint64_t bytes) const;
  Request pipeline_isend(sim::ActorContext& ctx, int src, const void* buf,
                         std::uint64_t bytes, int dst, int tag,
                         std::uint64_t chunk_bytes);
  void begin_pipeline(sim::Timeline& tl, RtsMsg rts, PostedRecv recv);
  void start_pipeline_sender(const PipePtr& tx);
  void launch_pipeline_chunk(const PipePtr& tx);
  void pipeline_chunk_ready(const PipePtr& tx, int chunk,
                            const std::shared_ptr<core::CompressionManager::ChunkWire>& ck);
  void push_pipeline_chunk(const PipePtr& tx, int chunk, sim::Time start);
  void on_pipeline_data(const PipePtr& tx, int chunk, const Payload& delivered);
  void pipeline_retransmit(const PipePtr& tx, int chunk, sim::Time at, bool decode_fail);
  void finish_pipeline(const PipePtr& tx);
  void fail_pipeline(const PipePtr& tx, sim::Time at);
  [[nodiscard]] std::uint64_t pipeline_chunk_len(const PipePtr& tx, int chunk) const {
    const std::uint64_t off = static_cast<std::uint64_t>(chunk) * tx->chunk_bytes;
    return std::min(tx->chunk_bytes, tx->env.bytes - off);
  }

  // --- persistent channels (see mpi/channel.hpp) ---
  /// Is this send eligible to ride (and eventually warm) a channel? User
  /// point-to-point only: collective-internal tags mint a fresh value per
  /// invocation and would never re-warm (engines ride wire channels).
  [[nodiscard]] bool channel_eligible(int src, int dst, int tag, const void* buf,
                                      std::uint64_t bytes) const;
  /// Find-or-create the channel for a key (assigns the id on creation).
  Channel* channel_for(const ChannelKey& key);
  /// Receiver-side warm-up after a successful cold delivery: pre-acquire
  /// staging, cache the header template, send the one-time credit grant.
  void maybe_warm_channel(const Envelope& env, const core::CompressionHeader& header,
                          bool wire_mode, sim::Time at);
  /// Handshake-free warm send: consume a credit (or stall), ship the
  /// payload with a RepeatHeader. `header` is the freshly compressed wire
  /// header; `payload` the staged wire bytes.
  Request warm_isend(sim::ActorContext& ctx, Channel* ch, const Envelope& env,
                     const core::CompressionHeader& header, Payload payload,
                     const void* sender_buf, bool wire_mode);
  void push_warm_data(const WarmPtr& tx, sim::Time start);
  void on_warm_data(const WarmPtr& tx, const Payload& delivered);
  /// Deliver a verified, in-order warm message to a matching posted
  /// receive; consumes a credit refill slot and drains the stall queue.
  void consume_warm(const WarmPtr& tx, PostedRecv recv, sim::Timeline& tl);
  /// After a consume bumped next_consume_seq, a parked out-of-order
  /// successor may have become the head: try to match it.
  void drain_parked_warm(int dst);
  void warm_retransmit(const WarmPtr& tx, sim::Time at, bool decode_fail);
  void fail_warm(const WarmPtr& tx, sim::Time at);
  /// Sender-side credit refill (piggybacked on the zero-cost completion
  /// notification): un-stall the oldest parked send if any.
  void refill_credit(Channel* ch, sim::Time at);

  void complete(const Request& req, Status status);
  void complete_at(const Request& req, Status status, sim::Time at);
  StatusError deliver_eager_to(PostedRecv& recv, const EagerMsg& msg);
  bool do_iprobe(int rank, int src, int tag, Status* status);
  Status do_probe(sim::ActorContext& ctx, int rank, int src, int tag);
  void wake_probers(RankState& state, const Envelope& env);

  sim::Engine& engine_;
  net::ClusterSpec cluster_;
  core::CompressionConfig compression_;
  WorldOptions options_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<RankState> ranks_;
  bool reliability_ = false;  // fault injector installed or CRCs forced on

  // Persistent channels: table ordered by key for deterministic telemetry
  // flush; entries are pointed into, so node stability matters.
  std::map<ChannelKey, Channel> channels_;
  std::uint32_t next_channel_id_ = 0;
  /// Per-send stall queue for credit-exhausted channels (sender side).
  std::map<std::uint32_t, std::deque<WarmPtr>> stalled_;
};

}  // namespace gcmpi::mpi
