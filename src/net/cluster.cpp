#include "net/cluster.hpp"

#include "gpu/device.hpp"

namespace gcmpi::net {

ClusterSpec longhorn(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "Longhorn (V100, NVLink, IB-EDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::v100_spec();
  c.intra = nvlink3();
  c.inter = ib_edr();
  return c;
}

ClusterSpec frontera_liquid(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "Frontera Liquid (RTX5000, PCIe, IB-FDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::rtx5000_spec();
  c.intra = pcie3_x16();
  c.inter = ib_fdr();
  return c;
}

ClusterSpec lassen(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "Lassen (V100, NVLink, IB-EDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::v100_spec();
  c.intra = nvlink3();
  c.inter = ib_edr();
  return c;
}

ClusterSpec ri2(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "RI2 (V100, PCIe host bridge, IB-EDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::v100_spec();
  c.intra = pcie3_x16();
  c.inter = ib_edr();
  return c;
}

Fabric::Fabric(const ClusterSpec& spec) : spec_(spec) {
  if (spec_.nodes < 1 || spec_.gpus_per_node < 1) {
    throw std::invalid_argument("Fabric: bad cluster dimensions");
  }
  node_tx_.resize(static_cast<std::size_t>(spec_.nodes));
  node_rx_.resize(static_cast<std::size_t>(spec_.nodes));
  gpu_tx_.resize(static_cast<std::size_t>(spec_.ranks()));
  gpu_rx_.resize(static_cast<std::size_t>(spec_.ranks()));
}

Fabric::Port& Fabric::tx_port(int src, int dst) {
  return spec_.same_node(src, dst) ? gpu_tx_[static_cast<std::size_t>(src)]
                                   : node_tx_[static_cast<std::size_t>(spec_.node_of(src))];
}

Fabric::Port& Fabric::rx_port(int src, int dst) {
  return spec_.same_node(src, dst) ? gpu_rx_[static_cast<std::size_t>(dst)]
                                   : node_rx_[static_cast<std::size_t>(spec_.node_of(dst))];
}

Time Fabric::transfer(Time earliest, int src_rank, int dst_rank, std::uint64_t bytes) {
  if (src_rank == dst_rank) return earliest;  // self-send: no wire
  const LinkSpec& link = route(src_rank, dst_rank);
  Port& tx = tx_port(src_rank, dst_rank);
  Port& rx = rx_port(src_rank, dst_rank);
  Time start = earliest;
  if (tx.busy_until > start) start = tx.busy_until;
  if (rx.busy_until > start) start = rx.busy_until;
  const Time wire = link.wire_time(bytes) + link.per_message_overhead;
  tx.busy_until = start + wire;
  rx.busy_until = start + wire;
  bytes_moved_ += bytes;
  return start + wire + link.latency;
}

Time Fabric::control(Time earliest, int src_rank, int dst_rank, std::uint64_t bytes) {
  return transfer(earliest, src_rank, dst_rank, bytes);
}

}  // namespace gcmpi::net
