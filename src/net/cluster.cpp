#include "net/cluster.hpp"

#include "gpu/device.hpp"

namespace gcmpi::net {

ClusterSpec longhorn(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "Longhorn (V100, NVLink, IB-EDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::v100_spec();
  c.intra = nvlink3();
  c.inter = ib_edr();
  return c;
}

ClusterSpec frontera_liquid(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "Frontera Liquid (RTX5000, PCIe, IB-FDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::rtx5000_spec();
  c.intra = pcie3_x16();
  c.inter = ib_fdr();
  return c;
}

ClusterSpec lassen(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "Lassen (V100, NVLink, IB-EDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::v100_spec();
  c.intra = nvlink3();
  c.inter = ib_edr();
  return c;
}

ClusterSpec ri2(int nodes, int gpus_per_node) {
  ClusterSpec c;
  c.name = "RI2 (V100, PCIe host bridge, IB-EDR)";
  c.nodes = nodes;
  c.gpus_per_node = gpus_per_node;
  c.gpu = gpu::v100_spec();
  c.intra = pcie3_x16();
  c.inter = ib_edr();
  return c;
}

Fabric::Fabric(const ClusterSpec& spec) : spec_(spec) {
  if (spec_.nodes < 1 || spec_.gpus_per_node < 1) {
    throw std::invalid_argument("Fabric: bad cluster dimensions");
  }
  node_tx_.resize(static_cast<std::size_t>(spec_.nodes));
  node_rx_.resize(static_cast<std::size_t>(spec_.nodes));
  gpu_tx_.resize(static_cast<std::size_t>(spec_.ranks()));
  gpu_rx_.resize(static_cast<std::size_t>(spec_.ranks()));
}

Fabric::Port& Fabric::tx_port(int src, int dst) {
  return spec_.same_node(src, dst) ? gpu_tx_[static_cast<std::size_t>(src)]
                                   : node_tx_[static_cast<std::size_t>(spec_.node_of(src))];
}

Fabric::Port& Fabric::rx_port(int src, int dst) {
  return spec_.same_node(src, dst) ? gpu_rx_[static_cast<std::size_t>(dst)]
                                   : node_rx_[static_cast<std::size_t>(spec_.node_of(dst))];
}

Time Fabric::occupy_and_arrive(Time earliest, int src_rank, int dst_rank,
                               std::uint64_t bytes, Time* start_out, Time* wire_out) {
  const LinkSpec& link = route(src_rank, dst_rank);
  Port& tx = tx_port(src_rank, dst_rank);
  Port& rx = rx_port(src_rank, dst_rank);
  Time start = earliest;
  if (tx.busy_until > start) start = tx.busy_until;
  if (rx.busy_until > start) start = rx.busy_until;
  Time wire = link.wire_time(bytes) + link.per_message_overhead;
  if (fault_ != nullptr && !spec_.same_node(src_rank, dst_rank)) {
    const auto w = fault_->window_at(start, spec_.node_of(src_rank), spec_.node_of(dst_rank));
    if (w.defer_until > start) start = w.defer_until;  // NIC stall/flap
    if (w.bandwidth_scale < 1.0) {                     // degraded link
      wire = Time::ns(static_cast<std::int64_t>(
          static_cast<double>(wire.count_ns()) / w.bandwidth_scale));
    }
  }
  tx.busy_until = start + wire;
  rx.busy_until = start + wire;
  bytes_moved_ += bytes;
  if (start_out != nullptr) *start_out = start;
  if (wire_out != nullptr) *wire_out = wire;
  return start + wire + link.latency;
}

Time Fabric::transfer(Time earliest, int src_rank, int dst_rank, std::uint64_t bytes) {
  if (src_rank == dst_rank) return earliest;  // self-send: no wire
  Time at = occupy_and_arrive(earliest, src_rank, dst_rank, bytes);
  if (fault_ != nullptr) at += fault_->timing_fault(src_rank, dst_rank);
  return at;
}

Time Fabric::control(Time earliest, int src_rank, int dst_rank, std::uint64_t bytes) {
  if (src_rank != dst_rank) ++control_packets_;
  return transfer(earliest, src_rank, dst_rank, bytes);
}

Fabric::Delivery Fabric::transfer_data(Time earliest, int src_rank, int dst_rank,
                                       std::uint64_t bytes) {
  Delivery d;
  if (src_rank == dst_rank) {
    d.at = earliest;
    d.start = earliest;
    return d;
  }
  d.at = occupy_and_arrive(earliest, src_rank, dst_rank, bytes, &d.start, &d.wire);
  if (fault_ != nullptr) {
    const auto f =
        fault_->on_data_packet(src_rank, dst_rank, !spec_.same_node(src_rank, dst_rank));
    d.dropped = f.drop;
    d.corrupted = f.corrupt;
    d.corrupt_bits = f.corrupt_bits;
    d.at += f.extra_latency;
  }
  return d;
}

Time Fabric::estimate(int src_rank, int dst_rank, std::uint64_t bytes) const {
  if (src_rank == dst_rank) return Time::zero();
  const LinkSpec& link = route(src_rank, dst_rank);
  return link.wire_time(bytes) + link.per_message_overhead + link.latency;
}

}  // namespace gcmpi::net
