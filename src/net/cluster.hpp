// Cluster topology: `nodes` x `gpus_per_node` GPUs, an intra-node link
// between GPUs of the same node, an inter-node link between nodes, plus
// the Fabric that tracks port occupancy for deterministic contention.
//
// One MPI rank maps to one GPU (block distribution: rank r lives on node
// r / gpus_per_node), matching the paper's "N nodes, P ppn" runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "gpu/cost_model.hpp"
#include "net/link.hpp"
#include "sim/time.hpp"

namespace gcmpi::net {

using sim::Time;

struct ClusterSpec {
  std::string name;
  int nodes = 2;
  int gpus_per_node = 1;
  gpu::GpuSpec gpu;
  LinkSpec intra;  // GPU <-> GPU within a node (NVLink or PCIe)
  LinkSpec inter;  // node <-> node (InfiniBand)

  [[nodiscard]] int ranks() const { return nodes * gpus_per_node; }
  [[nodiscard]] int node_of(int rank) const { return rank / gpus_per_node; }
  [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
  /// Lowest rank on `rank`'s node: the node's representative in the
  /// hierarchical collectives' inter-node leader ring.
  [[nodiscard]] int node_leader(int rank) const { return node_of(rank) * gpus_per_node; }
  [[nodiscard]] bool is_node_leader(int rank) const { return rank == node_leader(rank); }
};

/// TACC Longhorn: V100, NVLink intra-node, IB EDR inter-node.
[[nodiscard]] ClusterSpec longhorn(int nodes, int gpus_per_node);
/// TACC Frontera "Liquid" subsystem: Quadro RTX 5000, PCIe, IB FDR.
[[nodiscard]] ClusterSpec frontera_liquid(int nodes, int gpus_per_node);
/// LLNL Lassen: V100, NVLink, IB EDR (dual-rail modeled as single EDR).
[[nodiscard]] ClusterSpec lassen(int nodes, int gpus_per_node);
/// OSU RI2: V100 on PCIe host bridge, IB EDR.
[[nodiscard]] ClusterSpec ri2(int nodes, int gpus_per_node);

/// Port-occupancy tracker. For every transfer it serializes on the source
/// egress port and destination ingress port of the traversed link and
/// returns the arrival time of the last byte.
class Fabric {
 public:
  explicit Fabric(const ClusterSpec& spec);

  /// Move `bytes` from `src_rank` to `dst_rank` starting no earlier than
  /// `earliest`. Returns arrival time of the full message. Subject to the
  /// installed fault injector's timing faults (latency spikes, link-state
  /// windows) but never dropped or corrupted — the eager/control plane is
  /// modeled as link-level reliable, like small-MTU IB packets.
  [[nodiscard]] Time transfer(Time earliest, int src_rank, int dst_rank,
                              std::uint64_t bytes);

  /// Small control message (RTS/CTS/NACK): pays latency + overhead and a
  /// negligible serialization term, but still ordered through the ports so
  /// protocol messages cannot overtake each other.
  [[nodiscard]] Time control(Time earliest, int src_rank, int dst_rank,
                             std::uint64_t bytes = 64);

  /// Outcome of a data-plane transfer under fault injection. `at` is the
  /// would-be arrival time; when `dropped` the packet still occupied the
  /// ports (it was transmitted, then lost) but must not be delivered.
  struct Delivery {
    Time at;
    bool dropped = false;
    bool corrupted = false;
    std::uint64_t corrupt_bits = 0;  // entropy for picking the flipped bit
    // Port-occupancy span of this packet (serialization + per-message
    // overhead, after any degraded-link stretch). Chunked pipelined sends
    // sum these to report wire-stage busy time: back-to-back chunks queue
    // on the same tx/rx ports, so consecutive spans tile the link.
    Time start;
    Time wire;
  };

  /// Like transfer(), but for rendezvous payload packets: consults the
  /// fault injector for drop/corruption verdicts in addition to the timing
  /// faults. Identical to transfer() when no injector is installed.
  [[nodiscard]] Delivery transfer_data(Time earliest, int src_rank, int dst_rank,
                                       std::uint64_t bytes);

  /// Nominal unloaded time for `bytes` over the route (no port queueing,
  /// no faults): the receiver-side basis for retransmission timeouts.
  [[nodiscard]] Time estimate(int src_rank, int dst_rank, std::uint64_t bytes) const;

  /// Install (or clear, with nullptr) the deterministic fault injector.
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }
  [[nodiscard]] fault::FaultInjector* fault_injector() const { return fault_; }

  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }
  /// Count of control-plane packets (RTS/CTS/NACK/credit grants) that hit
  /// the wire. Warm persistent channels are asserted against this: an
  /// iteration on fully warmed channels must not move the counter.
  [[nodiscard]] std::uint64_t control_packets() const { return control_packets_; }

 private:
  struct Port {
    Time busy_until = Time::zero();
  };
  [[nodiscard]] const LinkSpec& route(int src, int dst) const {
    return spec_.same_node(src, dst) ? spec_.intra : spec_.inter;
  }
  Port& tx_port(int src, int dst);
  Port& rx_port(int src, int dst);
  /// Shared port/serialization core: applies link-state windows, occupies
  /// the ports, and returns the arrival time (before any latency spike).
  /// `start_out`/`wire_out` report the occupancy window when non-null.
  Time occupy_and_arrive(Time earliest, int src_rank, int dst_rank, std::uint64_t bytes,
                         Time* start_out = nullptr, Time* wire_out = nullptr);

  ClusterSpec spec_;
  // Inter-node: one egress + one ingress port per node (the IB HCA).
  std::vector<Port> node_tx_, node_rx_;
  // Intra-node: one port per GPU endpoint (NVLink/PCIe lane).
  std::vector<Port> gpu_tx_, gpu_rx_;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t control_packets_ = 0;
  fault::FaultInjector* fault_ = nullptr;  // non-owning; nullptr = perfect fabric
};

}  // namespace gcmpi::net
