// Cluster topology: `nodes` x `gpus_per_node` GPUs, an intra-node link
// between GPUs of the same node, an inter-node link between nodes, plus
// the Fabric that tracks port occupancy for deterministic contention.
//
// One MPI rank maps to one GPU (block distribution: rank r lives on node
// r / gpus_per_node), matching the paper's "N nodes, P ppn" runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "net/link.hpp"
#include "sim/time.hpp"

namespace gcmpi::net {

using sim::Time;

struct ClusterSpec {
  std::string name;
  int nodes = 2;
  int gpus_per_node = 1;
  gpu::GpuSpec gpu;
  LinkSpec intra;  // GPU <-> GPU within a node (NVLink or PCIe)
  LinkSpec inter;  // node <-> node (InfiniBand)

  [[nodiscard]] int ranks() const { return nodes * gpus_per_node; }
  [[nodiscard]] int node_of(int rank) const { return rank / gpus_per_node; }
  [[nodiscard]] bool same_node(int a, int b) const { return node_of(a) == node_of(b); }
};

/// TACC Longhorn: V100, NVLink intra-node, IB EDR inter-node.
[[nodiscard]] ClusterSpec longhorn(int nodes, int gpus_per_node);
/// TACC Frontera "Liquid" subsystem: Quadro RTX 5000, PCIe, IB FDR.
[[nodiscard]] ClusterSpec frontera_liquid(int nodes, int gpus_per_node);
/// LLNL Lassen: V100, NVLink, IB EDR (dual-rail modeled as single EDR).
[[nodiscard]] ClusterSpec lassen(int nodes, int gpus_per_node);
/// OSU RI2: V100 on PCIe host bridge, IB EDR.
[[nodiscard]] ClusterSpec ri2(int nodes, int gpus_per_node);

/// Port-occupancy tracker. For every transfer it serializes on the source
/// egress port and destination ingress port of the traversed link and
/// returns the arrival time of the last byte.
class Fabric {
 public:
  explicit Fabric(const ClusterSpec& spec);

  /// Move `bytes` from `src_rank` to `dst_rank` starting no earlier than
  /// `earliest`. Returns arrival time of the full message.
  [[nodiscard]] Time transfer(Time earliest, int src_rank, int dst_rank,
                              std::uint64_t bytes);

  /// Small control message (RTS/CTS): pays latency + overhead and a
  /// negligible serialization term, but still ordered through the ports so
  /// protocol messages cannot overtake each other.
  [[nodiscard]] Time control(Time earliest, int src_rank, int dst_rank,
                             std::uint64_t bytes = 64);

  [[nodiscard]] const ClusterSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  struct Port {
    Time busy_until = Time::zero();
  };
  [[nodiscard]] const LinkSpec& route(int src, int dst) const {
    return spec_.same_node(src, dst) ? spec_.intra : spec_.inter;
  }
  Port& tx_port(int src, int dst);
  Port& rx_port(int src, int dst);

  ClusterSpec spec_;
  // Inter-node: one egress + one ingress port per node (the IB HCA).
  std::vector<Port> node_tx_, node_rx_;
  // Intra-node: one port per GPU endpoint (NVLink/PCIe lane).
  std::vector<Port> gpu_tx_, gpu_rx_;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace gcmpi::net
