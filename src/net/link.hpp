// Interconnect link model (LogGP-flavoured): a transfer of S bytes costs
//   latency + overhead + S / bandwidth
// and serializes on the sender-side and receiver-side port resources, so
// concurrent transfers through one NIC or NVLink queue behind each other.
// This is what makes the model saturate exactly like the paper's Fig. 2(a).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace gcmpi::net {

using sim::Time;

struct LinkSpec {
  std::string name;
  double bandwidth_gbs = 12.5;     // one-way payload bandwidth
  Time latency = Time::us(1.5);    // propagation + switch
  Time per_message_overhead = Time::us(0.8);

  /// Pure serialization (port occupancy) time for `bytes`.
  [[nodiscard]] Time wire_time(std::uint64_t bytes) const {
    return sim::transfer_time(bytes, bandwidth_gbs);
  }
};

// --- presets used by the paper's four clusters ---

[[nodiscard]] inline LinkSpec ib_edr() {
  return {"InfiniBand EDR", 12.5, Time::us(1.5), Time::us(0.8)};
}
[[nodiscard]] inline LinkSpec ib_fdr() {
  return {"InfiniBand FDR", 6.8, Time::us(1.7), Time::us(0.9)};
}
[[nodiscard]] inline LinkSpec ib_hdr() {
  return {"InfiniBand HDR", 25.0, Time::us(1.3), Time::us(0.7)};
}
[[nodiscard]] inline LinkSpec nvlink3() {  // 3-lane NVLink2 (Sierra/Longhorn class)
  return {"NVLink 3-lane", 75.0, Time::us(1.0), Time::us(0.4)};
}
[[nodiscard]] inline LinkSpec pcie3_x16() {
  return {"PCIe Gen3 x16", 10.5, Time::us(1.3), Time::us(0.6)};
}

}  // namespace gcmpi::net
