#include "sim/engine.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gcmpi::sim {

std::string to_string(Time t) {
  char buf[64];
  if (t.count_ns() < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3f us", t.to_us());
  } else if (t.count_ns() < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", t.to_ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f s", t.to_seconds());
  }
  return buf;
}

Time ActorContext::now() const { return engine_.now(); }

void ActorContext::advance(Time dt) {
  if (dt < Time::zero()) throw std::invalid_argument("ActorContext::advance: negative dt");
  engine_.actor_yield_runnable_at(id_, engine_.now() + dt);
}

void ActorContext::advance_to(Time t) {
  if (t <= engine_.now()) return;
  engine_.actor_yield_runnable_at(id_, t);
}

void ActorContext::block() { engine_.actor_yield_blocked(id_); }

Engine::~Engine() { join_all(); }

ActorId Engine::spawn(std::string name, std::function<void(ActorContext&)> body) {
  if (running_) throw std::logic_error("Engine::spawn: cannot spawn while running");
  auto actor = std::make_unique<Actor>();
  actor->name = std::move(name);
  actor->body = std::move(body);
  actors_.push_back(std::move(actor));
  return static_cast<ActorId>(actors_.size() - 1);
}

void Engine::schedule(Time t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Engine::schedule: time in the past");
  queue_.push(Event{t, next_seq_++, kNoActor, std::move(fn)});
}

Engine::CancelToken Engine::schedule_cancelable(Time t, std::function<void()> fn) {
  auto armed = std::make_shared<bool>(true);
  schedule(t, [armed, fn = std::move(fn)] {
    if (*armed) fn();
  });
  return armed;
}

void Engine::cancel(CancelToken& token) {
  if (token) {
    *token = false;
    token.reset();
  }
}

void Engine::wake(ActorId id, Time t) {
  Actor& a = *actors_.at(id);
  if (a.state != ActorState::Blocked) {
    throw std::logic_error("Engine::wake: actor '" + a.name + "' is not blocked");
  }
  a.state = ActorState::Runnable;
  enqueue_resume(id, t < now_ ? now_ : t);
}

void Engine::enqueue_resume(ActorId id, Time t) {
  queue_.push(Event{t, next_seq_++, id, nullptr});
}

void Engine::actor_main(ActorId id) {
  Actor& a = *actors_[id];
  {
    // Wait for the first resume before touching any engine state.
    std::unique_lock lock(a.mutex);
    a.cv.wait(lock, [&] { return a.resume_flag; });
    a.resume_flag = false;
  }
  ActorContext ctx(*this, id);
  try {
    a.body(ctx);
  } catch (...) {
    a.error = std::current_exception();
  }
  std::unique_lock lock(a.mutex);
  a.state = ActorState::Finished;
  a.yield_flag = true;
  a.cv.notify_all();
}

void Engine::yield_to_engine(Actor& a) {
  std::unique_lock lock(a.mutex);
  a.yield_flag = true;
  a.cv.notify_all();
  a.cv.wait(lock, [&] { return a.resume_flag; });
  a.resume_flag = false;
}

void Engine::actor_yield_runnable_at(ActorId id, Time t) {
  Actor& a = *actors_[id];
  a.state = ActorState::Runnable;
  enqueue_resume(id, t);
  yield_to_engine(a);
  if (aborting_) throw SimulationAborted{};
}

void Engine::actor_yield_blocked(ActorId id) {
  Actor& a = *actors_[id];
  a.state = ActorState::Blocked;
  yield_to_engine(a);
  if (aborting_) throw SimulationAborted{};
}

void Engine::resume_actor(ActorId id) {
  Actor& a = *actors_[id];
  if (a.state == ActorState::NotStarted) {
    a.thread = std::thread([this, id] { actor_main(id); });
  }
  a.state = ActorState::Running;
  std::unique_lock lock(a.mutex);
  a.resume_flag = true;
  a.cv.notify_all();
  a.cv.wait(lock, [&] { return a.yield_flag; });
  a.yield_flag = false;
}

void Engine::run() {
  if (running_) throw std::logic_error("Engine::run: re-entered");
  running_ = true;
  // All actors start at time zero.
  for (ActorId id = 0; id < actors_.size(); ++id) enqueue_resume(id, Time::zero());

  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (ev.actor == kNoActor) {
      try {
        ev.fn();
      } catch (...) {
        abort_all();
        running_ = false;
        throw;
      }
    } else {
      Actor& a = *actors_[ev.actor];
      if (a.state == ActorState::Finished) continue;
      resume_actor(ev.actor);
      if (a.error) {
        const std::exception_ptr error = a.error;
        a.error = nullptr;
        abort_all();
        running_ = false;
        std::rethrow_exception(error);
      }
    }
  }

  // Queue drained: every actor must have finished, otherwise we deadlocked.
  std::ostringstream blocked;
  bool deadlock = false;
  for (const auto& a : actors_) {
    if (a->state != ActorState::Finished && a->state != ActorState::NotStarted) {
      deadlock = true;
      blocked << " '" << a->name << "'";
    }
  }
  running_ = false;
  if (deadlock) {
    abort_all();
    throw std::runtime_error("Engine::run: deadlock, blocked actors:" + blocked.str());
  }
  join_all();
}

void Engine::abort_all() {
  // Resume every parked actor with the abort flag set so its thread
  // unwinds (SimulationAborted) and can be joined.
  aborting_ = true;
  queue_ = {};
  for (ActorId id = 0; id < actors_.size(); ++id) {
    Actor& a = *actors_[id];
    if (a.state == ActorState::Blocked || a.state == ActorState::Runnable) {
      resume_actor(id);
    }
  }
  join_all();
}

void Engine::join_all() {
  for (auto& a : actors_) {
    if (a->thread.joinable()) a->thread.join();
  }
}

}  // namespace gcmpi::sim
