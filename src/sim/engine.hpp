// Sequential discrete-event engine with threaded actors.
//
// An MPI rank in the simulated cluster is an "actor": a user function that
// runs on its own std::thread but is scheduled cooperatively — the engine
// resumes exactly one actor at a time and advances a single global virtual
// clock. Actor code therefore reads like ordinary blocking MPI code while
// the whole simulation stays deterministic and data-race free.
//
// Scheduling model:
//   * The engine owns a priority queue of events ordered by (time, seq).
//   * ActorContext::advance(dt) re-enqueues the caller at now+dt and yields.
//   * ActorContext::block() yields without re-enqueueing; some other event
//     must later call Engine::wake(actor, t).
//   * Plain callbacks scheduled with Engine::schedule(t, fn) run on the
//     engine thread between actor resumptions (never concurrently with one).
//
// Deadlock (all actors blocked, queue empty) throws with a diagnostic that
// lists the blocked actors — invaluable when debugging protocol bugs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/time.hpp"

namespace gcmpi::sim {

class Engine;

using ActorId = std::uint32_t;
inline constexpr ActorId kNoActor = static_cast<ActorId>(-1);

/// Handed to each actor body; the actor's only interface to virtual time.
class ActorContext {
 public:
  ActorContext(Engine& engine, ActorId id) : engine_(engine), id_(id) {}

  [[nodiscard]] ActorId id() const { return id_; }
  [[nodiscard]] Engine& engine() { return engine_; }

  /// Current virtual time (global clock; valid while this actor runs).
  [[nodiscard]] Time now() const;

  /// Elapse `dt` of virtual time (models computation / driver overhead).
  void advance(Time dt);

  /// Elapse until absolute time `t` (no-op if `t` <= now()).
  void advance_to(Time t);

  /// Yield until some event calls Engine::wake(id()). Returns at the wake
  /// time. Used by blocking receive / wait primitives.
  void block();

 private:
  Engine& engine_;
  ActorId id_;
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register an actor. Must be called before run(). The body runs on its
  /// own thread once run() starts; all bodies begin at time zero.
  ActorId spawn(std::string name, std::function<void(ActorContext&)> body);

  /// Run the simulation to completion. Rethrows the first actor exception.
  /// Throws std::runtime_error on deadlock.
  void run();

  /// Global virtual clock (time of the event being dispatched).
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule a callback on the engine thread at absolute time `t`.
  void schedule(Time t, std::function<void()> fn);

  /// Schedule a callback `dt` after the current time.
  void schedule_after(Time dt, std::function<void()> fn) { schedule(now_ + dt, std::move(fn)); }

  /// Cancelable timeout: like schedule(), but the returned token can later
  /// be passed to cancel() to turn the pending callback into a no-op (the
  /// queue slot still drains at `t`). Used for protocol watchdog timers
  /// (e.g. the rendezvous retransmission timeout) that are usually
  /// disarmed by the event they guard against.
  using CancelToken = std::shared_ptr<bool>;
  CancelToken schedule_cancelable(Time t, std::function<void()> fn);
  static void cancel(CancelToken& token);

  /// Wake a blocked actor at absolute time `t` (>= now). It is an error to
  /// wake an actor that is not blocked.
  void wake(ActorId id, Time t);

  /// Wake a blocked actor `dt` after the current time.
  void wake_after(ActorId id, Time dt) { wake(id, now_ + dt); }

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] const std::string& actor_name(ActorId id) const { return actors_[id]->name; }

 private:
  friend class ActorContext;

  enum class ActorState : std::uint8_t { NotStarted, Runnable, Running, Blocked, Finished };

  struct Actor {
    std::string name;
    std::function<void(ActorContext&)> body;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    bool resume_flag = false;  // engine -> actor: you may run
    bool yield_flag = false;   // actor -> engine: I have yielded
    ActorState state = ActorState::NotStarted;
    std::exception_ptr error;
  };

  struct Event {
    Time time;
    std::uint64_t seq;
    ActorId actor;                // kNoActor for plain callbacks
    std::function<void()> fn;     // only for plain callbacks
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Actor-side primitives (called from actor threads via ActorContext).
  void actor_yield_runnable_at(ActorId id, Time t);  // advance()
  void actor_yield_blocked(ActorId id);              // block()

  void resume_actor(ActorId id);   // engine side: hand control + wait for yield
  void actor_main(ActorId id);     // thread body
  void yield_to_engine(Actor& a);  // actor side: flip flags, wait for resume
  void enqueue_resume(ActorId id, Time t);
  void join_all();
  /// Unwind every live actor (SimulationAborted) and join; used on any
  /// abnormal termination so run() can throw without leaking parked threads.
  void abort_all();

  std::vector<std::unique_ptr<Actor>> actors_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  bool running_ = false;
  bool aborting_ = false;  // set on deadlock; resumed actors unwind
};

/// Thrown out of blocking primitives when the engine aborts a deadlocked
/// simulation so actor threads can unwind and be joined.
struct SimulationAborted : std::exception {
  const char* what() const noexcept override { return "simulation aborted (deadlock)"; }
};

}  // namespace gcmpi::sim
