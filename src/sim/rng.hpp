// Deterministic pseudo-random number generation (xoshiro256**).
//
// The simulation must be bit-reproducible across runs and platforms, so we
// do not use std::mt19937 through std::uniform_*_distribution (whose
// algorithms are implementation-defined). All randomness in datasets,
// workloads, and models flows through this generator.
#pragma once

#include <cstdint>
#include <cmath>

namespace gcmpi::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace gcmpi::sim
