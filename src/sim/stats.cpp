#include "sim/stats.hpp"

namespace gcmpi::sim {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::MemoryAllocation: return "Memory Allocation";
    case Phase::DataCopies: return "Data Copies (compressed)";
    case Phase::CompressionKernel: return "Compression Kernel";
    case Phase::DecompressionKernel: return "Decompression Kernel";
    case Phase::CombinePartitions: return "Combine data partitions";
    case Phase::StreamFieldCreation: return "zfp_stream/field creation";
    case Phase::DeviceQuery: return "get_max_grid_dims";
    case Phase::Communication: return "Comm & Other (wire)";
    case Phase::Other: return "Other (protocol)";
  }
  return "?";
}

std::vector<std::pair<Phase, Time>> Breakdown::nonzero() const {
  std::vector<std::pair<Phase, Time>> out;
  for (std::size_t i = 0; i < kPhases; ++i) {
    if (totals_[i] > Time::zero()) out.emplace_back(static_cast<Phase>(i), totals_[i]);
  }
  return out;
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  const double m = mean();
  return sum2_ / static_cast<double>(n_) - m * m;
}

}  // namespace gcmpi::sim
