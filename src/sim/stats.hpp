// Lightweight time-attribution accumulators used to regenerate the paper's
// latency-breakdown figures (Fig. 6, 8, 10): every phase of a communication
// with compression charges its virtual-time cost to a named category.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace gcmpi::sim {

/// Categories mirroring the stacked bars in the paper's breakdown figures.
enum class Phase : std::uint8_t {
  MemoryAllocation,    // cudaMalloc / cudaFree on the critical path
  DataCopies,          // cudaMemcpy / GDRCopy of sizes & compressed data
  CompressionKernel,   // GPU compression kernel execution
  DecompressionKernel, // GPU decompression kernel execution
  CombinePartitions,   // ordered D2D merges of partitioned output (MPC-OPT)
  StreamFieldCreation, // zfp_stream / zfp_field construction (CPU)
  DeviceQuery,         // get_max_grid_dims / cudaGetDeviceProperties
  Communication,       // wire time (RTS/CTS + payload)
  Other,               // protocol processing, launch/sync overheads
};

[[nodiscard]] const char* phase_name(Phase p);

/// Accumulates time per phase. Copyable value type; merge with +=.
class Breakdown {
 public:
  void add(Phase p, Time t) { totals_[static_cast<std::size_t>(p)] += t; }
  [[nodiscard]] Time get(Phase p) const { return totals_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] Time total() const {
    Time sum = Time::zero();
    for (Time t : totals_) sum += t;
    return sum;
  }
  Breakdown& operator+=(const Breakdown& o) {
    for (std::size_t i = 0; i < kPhases; ++i) totals_[i] += o.totals_[i];
    return *this;
  }
  void clear() { totals_.fill(Time::zero()); }

  /// All phases with nonzero time, in enum order.
  [[nodiscard]] std::vector<std::pair<Phase, Time>> nonzero() const;

  static constexpr std::size_t kPhases = 9;

 private:
  std::array<Time, kPhases> totals_{};
};

/// Streaming scalar statistics (latency samples, ratios, ...).
class Summary {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum2_ += x * x;
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const;

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0, sum2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

}  // namespace gcmpi::sim
