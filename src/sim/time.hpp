// Virtual time for the discrete-event simulation.
//
// Time is an integer count of nanoseconds wrapped in a strong type so that
// raw integers (byte counts, ranks, ...) cannot be accidentally mixed with
// durations. All cost models produce Time values; the engine never consults
// the wall clock.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace gcmpi::sim {

class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t nanoseconds) : ns_(nanoseconds) {}

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(double v) {
    return Time{static_cast<std::int64_t>(v * 1e3)};
  }
  [[nodiscard]] static constexpr Time ms(double v) {
    return Time{static_cast<std::int64_t>(v * 1e6)};
  }
  [[nodiscard]] static constexpr Time seconds(double v) {
    return Time{static_cast<std::int64_t>(v * 1e9)};
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Time& operator+=(Time o) { ns_ += o.ns_; return *this; }
  constexpr Time& operator-=(Time o) { ns_ -= o.ns_; return *this; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr auto operator<=>(Time a, Time b) = default;

 private:
  std::int64_t ns_ = 0;
};

/// Time to move `bytes` at `gigabytes_per_second` (pure serialization term).
[[nodiscard]] constexpr Time transfer_time(std::uint64_t bytes, double gigabytes_per_second) {
  return Time::seconds(static_cast<double>(bytes) / (gigabytes_per_second * 1e9));
}

[[nodiscard]] std::string to_string(Time t);

}  // namespace gcmpi::sim
