// A movable point on the virtual clock.
//
// Cost-charging code (GPU driver calls, protocol processing) is written
// against Timeline so it can run in two contexts:
//   * inside an actor: wrap the actor clock, then ActorContext::advance_to
//     the timeline's end;
//   * inside an engine event (e.g. the receiver side of the rendezvous
//     protocol, which progresses asynchronously): start the timeline at the
//     event time and schedule follow-up events at its end.
#pragma once

#include "sim/time.hpp"

namespace gcmpi::sim {

class Timeline {
 public:
  constexpr explicit Timeline(Time start) : t_(start) {}

  [[nodiscard]] constexpr Time now() const { return t_; }
  constexpr void advance(Time dt) { t_ += dt; }
  constexpr void advance_to(Time t) {
    if (t > t_) t_ = t;
  }

 private:
  Time t_;
};

}  // namespace gcmpi::sim
