#include "util/crc32c.hpp"

#include <array>

namespace gcmpi::util {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::uint32_t t[8][256];
};

Tables build_tables() {
  Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
    tb.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tb.t[0][i];
    for (int s = 1; s < 8; ++s) {
      c = tb.t[0][c & 0xFFu] ^ (c >> 8);
      tb.t[s][i] = c;
    }
  }
  return tb;
}

const Tables& tables() {
  static const Tables tb = build_tables();
  return tb;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes, std::uint32_t crc) {
  const auto& tb = tables();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~crc;
  // Head: align the slice-by-8 loop to an 8-byte stride.
  while (bytes != 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --bytes;
  }
  while (bytes >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  static_cast<std::uint32_t>(p[1]) << 8 |
                                  static_cast<std::uint32_t>(p[2]) << 16 |
                                  static_cast<std::uint32_t>(p[3]) << 24);
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    c = tb.t[7][lo & 0xFFu] ^ tb.t[6][(lo >> 8) & 0xFFu] ^ tb.t[5][(lo >> 16) & 0xFFu] ^
        tb.t[4][lo >> 24] ^ tb.t[3][hi & 0xFFu] ^ tb.t[2][(hi >> 8) & 0xFFu] ^
        tb.t[1][(hi >> 16) & 0xFFu] ^ tb.t[0][hi >> 24];
    p += 8;
    bytes -= 8;
  }
  while (bytes-- != 0) c = tb.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  return ~c;
}

std::uint32_t crc32c_reference(const void* data, std::size_t bytes, std::uint32_t crc) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~crc;
  for (std::size_t i = 0; i < bytes; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
  }
  return ~c;
}

}  // namespace gcmpi::util
