// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum used by iSCSI, ext4, and RDMA wire protocols, and by this
// library to verify every rendezvous payload end-to-end (see the fault &
// reliability section of DESIGN.md). Software slice-by-8 implementation —
// on real NICs the ICRC is computed in hardware, so the simulator charges
// zero virtual time for it.
//
// Incremental use: pass the previous return value as `crc` to extend a
// running checksum over split buffers; the default 0 starts a fresh one.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gcmpi::util {

/// CRC32C of `bytes` bytes at `data`, chained onto `crc` (0 = fresh).
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t bytes,
                                   std::uint32_t crc = 0);

/// Bit-at-a-time reference implementation (for cross-checking the sliced
/// tables in tests; do not use on hot paths).
[[nodiscard]] std::uint32_t crc32c_reference(const void* data, std::size_t bytes,
                                             std::uint32_t crc = 0);

}  // namespace gcmpi::util
