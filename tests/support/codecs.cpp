#include "support/codecs.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <sstream>

#include "compress/fpc.hpp"
#include "compress/gfc.hpp"
#include "compress/huffman.hpp"
#include "compress/mpc.hpp"
#include "compress/sz.hpp"
#include "compress/zfp.hpp"

namespace gcmpi::testing {

namespace {

using comp::ZfpCodec;
using comp::ZfpField;

template <typename T>
std::string hex_bits(T v) {
  using U = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(sizeof(T) * 2) << std::setfill('0')
     << std::bit_cast<U>(v);
  return os.str();
}

template <typename T>
std::optional<std::string> first_bit_divergence(std::span<const T> in,
                                                std::span<const T> out) {
  if (in.size() != out.size()) {
    return "restored " + std::to_string(out.size()) + " of " +
           std::to_string(in.size()) + " values";
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (std::memcmp(&in[i], &out[i], sizeof(T)) != 0) {
      return "first divergence at [" + std::to_string(i) + "]: wrote " +
             hex_bits(in[i]) + " read " + hex_bits(out[i]);
    }
  }
  return std::nullopt;
}

std::optional<std::string> bound_divergence(std::span<const float> in,
                                            std::span<const float> out, double bound) {
  if (in.size() != out.size()) {
    return "restored " + std::to_string(out.size()) + " of " +
           std::to_string(in.size()) + " values";
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double err = std::fabs(static_cast<double>(in[i]) - static_cast<double>(out[i]));
    if (!(err <= bound) || !std::isfinite(out[i])) {
      std::ostringstream os;
      os << "error bound violated at [" << i << "]: in " << in[i] << " out " << out[i]
         << " |err| " << err << " bound " << bound;
      return os.str();
    }
  }
  return std::nullopt;
}

Property<float> mpc_prop(int dim, std::size_t chunk) {
  return [dim, chunk](std::span<const float> in) -> std::optional<std::string> {
    const comp::MpcCodec codec(dim, chunk);
    std::vector<std::uint8_t> buf(codec.max_compressed_bytes(in.size()));
    const std::size_t size = codec.compress(in, buf);
    if (size > buf.size()) return "compress overran max_compressed_bytes";
    if (comp::MpcCodec::encoded_values({buf.data(), size}) != in.size()) {
      return "encoded_values header peek mismatch";
    }
    std::vector<float> out(in.size(), -99.0f);
    const std::size_t n = codec.decompress({buf.data(), size}, out);
    if (n != in.size()) return "decompress returned wrong count";
    return first_bit_divergence(in, std::span<const float>(out));
  };
}

Property<float> zfp_rate_prop(int rate) {
  return [rate](std::span<const float> in) -> std::optional<std::string> {
    if (in.empty()) return std::nullopt;  // zero-extent fields are rejected by design
    const ZfpCodec codec(rate);
    const ZfpField f = ZfpField::d1(in.size());
    std::vector<std::uint8_t> buf(codec.compressed_bytes(f));
    const std::size_t written = codec.compress(in, f, buf);
    if (written != buf.size()) return "fixed-rate size not exact";
    std::vector<float> out(in.size(), -1.0f);
    codec.decompress(buf, f, out);
    double max_abs = 0.0;
    for (float x : in) {
      if (std::isfinite(x)) max_abs = std::max(max_abs, std::fabs(static_cast<double>(x)));
    }
    return bound_divergence(in, std::span<const float>(out), codec.error_bound(max_abs));
  };
}

/// 2D/3D fixed-rate round trip: fold the 1D payload into a boxy field so
/// partial blocks occur on every axis.
Property<float> zfp_multidim_prop(int rate, int dims) {
  return [rate, dims](std::span<const float> in) -> std::optional<std::string> {
    if (in.empty()) return std::nullopt;
    ZfpField f;
    if (dims == 2) {
      std::size_t nx = 1;
      while ((nx + 1) * (nx + 1) <= in.size()) ++nx;
      f = ZfpField::d2(nx, (in.size() + nx - 1) / nx);
    } else {
      std::size_t nx = 1;
      while ((nx + 1) * (nx + 1) * (nx + 1) <= in.size()) ++nx;
      const std::size_t ny = nx;
      const std::size_t nz = (in.size() + nx * ny - 1) / (nx * ny);
      f = ZfpField::d3(nx, ny, nz);
    }
    std::vector<float> padded(f.values(), 0.0f);
    std::memcpy(padded.data(), in.data(), in.size() * sizeof(float));
    const ZfpCodec codec(rate);
    std::vector<std::uint8_t> buf(codec.compressed_bytes(f));
    if (codec.compress(padded, f, buf) != buf.size()) return "fixed-rate size not exact";
    std::vector<float> out(f.values(), -1.0f);
    codec.decompress(buf, f, out);
    double max_abs = 0.0;
    for (float x : padded) max_abs = std::max(max_abs, std::fabs(static_cast<double>(x)));
    return bound_divergence(padded, std::span<const float>(out), codec.error_bound(max_abs));
  };
}

Property<float> zfp_accuracy_prop(double tolerance) {
  return [tolerance](std::span<const float> in) -> std::optional<std::string> {
    if (in.empty()) return std::nullopt;
    const auto codec = ZfpCodec::fixed_accuracy(tolerance);
    const ZfpField f = ZfpField::d1(in.size());
    std::vector<std::uint8_t> buf(codec.compressed_bytes(f));
    const std::size_t written = codec.compress(in, f, buf);
    if (written > buf.size()) return "compress overran the upper bound";
    std::vector<float> out(in.size(), -1.0f);
    codec.decompress({buf.data(), written}, f, out);
    return bound_divergence(in, std::span<const float>(out), tolerance);
  };
}

/// Fixed-precision mode has no simple absolute bound; the fuzzable
/// invariants are: encode is deterministic, size respects the upper bound,
/// and finite input decodes to finite output.
Property<float> zfp_precision_prop(int precision) {
  return [precision](std::span<const float> in) -> std::optional<std::string> {
    if (in.empty()) return std::nullopt;
    const auto codec = ZfpCodec::fixed_precision(precision);
    const ZfpField f = ZfpField::d1(in.size());
    std::vector<std::uint8_t> buf(codec.compressed_bytes(f));
    const std::size_t a = codec.compress(in, f, buf);
    if (a > buf.size()) return "compress overran the upper bound";
    std::vector<std::uint8_t> buf2(codec.compressed_bytes(f));
    const std::size_t b = codec.compress(in, f, buf2);
    if (a != b || std::memcmp(buf.data(), buf2.data(), a) != 0) {
      return "encode is not deterministic";
    }
    std::vector<float> out(in.size(), -1.0f);
    codec.decompress({buf.data(), a}, f, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (!std::isfinite(out[i])) {
        return "non-finite output at [" + std::to_string(i) + "] from finite input";
      }
    }
    return std::nullopt;
  };
}

Property<float> sz_prop(double bound, int quant_bits) {
  return [bound, quant_bits](std::span<const float> in) -> std::optional<std::string> {
    const comp::SzCodec codec(bound, quant_bits);
    std::vector<std::uint8_t> buf(codec.max_compressed_bytes(in.size()));
    const std::size_t size = codec.compress(in, buf);
    if (size > buf.size()) return "compress overran max_compressed_bytes";
    if (comp::SzCodec::encoded_values({buf.data(), size}) != in.size()) {
      return "encoded_values header peek mismatch";
    }
    std::vector<float> out(in.size(), -99.0f);
    if (codec.decompress({buf.data(), size}, out) != in.size()) {
      return "decompress returned wrong count";
    }
    return bound_divergence(in, std::span<const float>(out), bound);
  };
}

/// Huffman over the raw bit patterns of the payload (the SZ quantization
/// codes in production): table + stream must restore every symbol.
Property<float> huffman_prop() {
  return [](std::span<const float> in) -> std::optional<std::string> {
    if (in.empty()) return std::nullopt;
    std::vector<std::uint32_t> symbols(in.size());
    std::memcpy(symbols.data(), in.data(), in.size() * sizeof(float));
    comp::BitWriter w;
    const comp::HuffmanEncoder enc(symbols);
    enc.write_table(w);
    for (std::uint32_t s : symbols) enc.encode(w, s);
    const auto bytes = w.take();
    comp::BitReader r(bytes);
    const comp::HuffmanDecoder dec(r);
    if (dec.distinct_symbols() != enc.distinct_symbols()) {
      return "decoder rebuilt a different codebook size";
    }
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      const std::uint32_t got = dec.decode(r);
      if (got != symbols[i]) {
        return "first divergence at [" + std::to_string(i) + "]: wrote " +
               hex_bits(std::bit_cast<float>(symbols[i])) + " read " +
               hex_bits(std::bit_cast<float>(got));
      }
    }
    return std::nullopt;
  };
}

Property<double> mpc64_prop(int dim, std::size_t chunk) {
  return [dim, chunk](std::span<const double> in) -> std::optional<std::string> {
    const comp::MpcCodec64 codec(dim, chunk);
    std::vector<std::uint8_t> buf(codec.max_compressed_bytes(in.size()));
    const std::size_t size = codec.compress(in, buf);
    if (size > buf.size()) return "compress overran max_compressed_bytes";
    std::vector<double> out(in.size(), -99.0);
    if (codec.decompress({buf.data(), size}, out) != in.size()) {
      return "decompress returned wrong count";
    }
    return first_bit_divergence(in, std::span<const double>(out));
  };
}

Property<double> fpc_prop(unsigned lg) {
  return [lg](std::span<const double> in) -> std::optional<std::string> {
    const comp::FpcCodec codec(lg);
    std::vector<std::uint8_t> buf(codec.max_compressed_bytes(in.size()));
    const std::size_t size = codec.compress(in, buf);
    if (size > buf.size()) return "compress overran max_compressed_bytes";
    std::vector<double> out(in.size(), -99.0);
    if (codec.decompress({buf.data(), size}, out) != in.size()) {
      return "decompress returned wrong count";
    }
    return first_bit_divergence(in, std::span<const double>(out));
  };
}

Property<double> gfc_prop(std::size_t chunk) {
  return [chunk](std::span<const double> in) -> std::optional<std::string> {
    const comp::GfcCodec codec(chunk);
    std::vector<std::uint8_t> buf(codec.max_compressed_bytes(in.size()));
    const std::size_t size = codec.compress(in, buf);
    if (size > buf.size()) return "compress overran max_compressed_bytes";
    std::vector<double> out(in.size(), -99.0);
    if (codec.decompress({buf.data(), size}, out) != in.size()) {
      return "decompress returned wrong count";
    }
    return first_bit_divergence(in, std::span<const double>(out));
  };
}

}  // namespace

std::vector<FloatCodecCheck> float_codec_checks() {
  std::vector<FloatCodecCheck> checks;
  for (const auto& [dim, chunk] : {std::pair<int, std::size_t>{1, 1024},
                                   {2, 1024},
                                   {4, 32},
                                   {8, 256},
                                   {32, 64}}) {
    checks.push_back({"mpc_dim" + std::to_string(dim) + "_chunk" + std::to_string(chunk),
                      false, 1u << 16, mpc_prop(dim, chunk)});
  }
  for (int rate : {4, 8, 16, 32}) {
    checks.push_back({"zfp_rate" + std::to_string(rate), true, 1u << 15, zfp_rate_prop(rate)});
  }
  checks.push_back({"zfp_rate16_2d", true, 1u << 13, zfp_multidim_prop(16, 2)});
  checks.push_back({"zfp_rate8_3d", true, 1u << 12, zfp_multidim_prop(8, 3)});
  checks.push_back({"zfp_accuracy_1e_3", true, 1u << 14, zfp_accuracy_prop(1e-3)});
  checks.push_back({"zfp_accuracy_1e_6", true, 1u << 14, zfp_accuracy_prop(1e-6)});
  checks.push_back({"zfp_precision_20", true, 1u << 14, zfp_precision_prop(20)});
  checks.push_back({"sz_1e_2_q16", true, 1u << 15, sz_prop(1e-2, 16)});
  checks.push_back({"sz_1e_4_q12", true, 1u << 15, sz_prop(1e-4, 12)});
  checks.push_back({"huffman_bits", false, 1u << 14, huffman_prop()});
  return checks;
}

std::vector<DoubleCodecCheck> double_codec_checks() {
  std::vector<DoubleCodecCheck> checks;
  checks.push_back({"mpc64_dim1_chunk1024", false, 1u << 15, mpc64_prop(1, 1024)});
  checks.push_back({"mpc64_dim2_chunk64", false, 1u << 15, mpc64_prop(2, 64)});
  checks.push_back({"fpc_lg10", false, 1u << 15, fpc_prop(10)});
  checks.push_back({"fpc_lg16", false, 1u << 15, fpc_prop(16)});
  checks.push_back({"gfc_chunk32", false, 1u << 15, gfc_prop(32)});
  checks.push_back({"gfc_chunk1024", false, 1u << 15, gfc_prop(1024)});
  return checks;
}

}  // namespace gcmpi::testing
