// Uniform round-trip properties for every codec in src/compress, shaped
// for the property harness: each entry is a named Property that compresses
// a payload, decompresses it, and validates either bit-exactness (MPC,
// FPC, GFC, Huffman) or the codec's published error bound (ZFP fixed
// rate/accuracy, SZ). The fuzz suite iterates these against all payload
// kinds; the failure message pinpoints the first diverging value.
#pragma once

#include <string>
#include <vector>

#include "support/property.hpp"

namespace gcmpi::testing {

struct FloatCodecCheck {
  std::string name;
  bool finite_only = false;   // lossy codecs sanitize NaN/Inf; bound checks
                              // only make sense on finite payloads
  std::size_t max_values = 1u << 16;
  Property<float> prop;
};

struct DoubleCodecCheck {
  std::string name;
  bool finite_only = false;
  std::size_t max_values = 1u << 15;
  Property<double> prop;
};

/// All float32 codec round-trip properties: MPC at several dimensionalities
/// and chunk sizes, ZFP at every paper rate plus the variable-size modes,
/// SZ at loose and tight bounds, and Huffman over the raw bit patterns.
[[nodiscard]] std::vector<FloatCodecCheck> float_codec_checks();

/// All float64 codec properties: MPC64, FPC, GFC.
[[nodiscard]] std::vector<DoubleCodecCheck> double_codec_checks();

}  // namespace gcmpi::testing
