#include "support/payloads.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace gcmpi::testing {

namespace {

float from_bits(std::uint32_t bits) { return std::bit_cast<float>(bits); }
double from_bits64(std::uint64_t bits) { return std::bit_cast<double>(bits); }

std::vector<float> constant(std::size_t n, sim::Rng& rng) {
  const float v = static_cast<float>(rng.uniform(-1e4, 1e4));
  return std::vector<float>(n, v);
}

std::vector<float> smooth(std::size_t n, sim::Rng& rng) {
  const double f1 = rng.uniform(0.001, 0.05);
  const double f2 = rng.uniform(0.0001, 0.01);
  const double amp = rng.uniform(0.1, 1e3);
  const double noise = rng.uniform(0.0, 1e-4);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(amp * (std::sin(f1 * x) + 0.3 * std::cos(f2 * x)) +
                              amp * noise * rng.normal());
  }
  return v;
}

// A ghost-zone plane of an AWP-style 3D staggered-grid velocity field:
// spatially correlated in two axes, a few propagating wavelets, tiny
// material noise. Flattened row-major like the solver's halo packing.
std::vector<float> velocity_plane(std::size_t n, sim::Rng& rng) {
  std::size_t nx = 1;
  while ((nx + 1) * (nx + 1) <= n) ++nx;
  const std::size_t ny = nx == 0 ? 0 : (n + nx - 1) / nx;
  const int wavelets = 2 + static_cast<int>(rng.next_below(4));
  std::vector<double> cx(static_cast<std::size_t>(wavelets)), cy(cx.size()),
      sigma(cx.size()), amp(cx.size()), k(cx.size());
  for (std::size_t w = 0; w < cx.size(); ++w) {
    cx[w] = rng.uniform(0.0, static_cast<double>(nx));
    cy[w] = rng.uniform(0.0, static_cast<double>(ny));
    sigma[w] = rng.uniform(2.0, 12.0);
    amp[w] = rng.uniform(0.01, 5.0);
    k[w] = rng.uniform(0.1, 0.9);
  }
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i % nx);
    const double y = static_cast<double>(i / nx);
    double val = 0.0;
    for (std::size_t w = 0; w < cx.size(); ++w) {
      const double dx = x - cx[w], dy = y - cy[w];
      const double r2 = (dx * dx + dy * dy) / (2.0 * sigma[w] * sigma[w]);
      val += amp[w] * std::exp(-r2) * std::cos(k[w] * (dx + dy));
    }
    v[i] = static_cast<float>(val * (1.0 + 1e-6 * rng.normal()));
  }
  return v;
}

std::vector<float> special_values(std::size_t n, sim::Rng& rng) {
  static const float kEdge[] = {
      0.0f, -0.0f,
      std::numeric_limits<float>::infinity(), -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      from_bits(0x7f800001u),  // signaling-NaN bit pattern
      from_bits(0xffc12345u),  // negative NaN with payload bits
      std::numeric_limits<float>::denorm_min(), -std::numeric_limits<float>::denorm_min(),
      from_bits(0x007fffffu),  // largest denormal
      std::numeric_limits<float>::min(), std::numeric_limits<float>::max(),
      -std::numeric_limits<float>::max(), 1.0f, -1.0f,
  };
  std::vector<float> v(n);
  for (auto& x : v) {
    if (rng.next_double() < 0.7) {
      x = kEdge[rng.next_below(sizeof(kEdge) / sizeof(kEdge[0]))];
    } else {
      x = static_cast<float>(rng.normal());
    }
  }
  return v;
}

std::vector<float> zero_runs(std::size_t n, sim::Rng& rng) {
  auto v = smooth(n, rng);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t live = rng.next_below(200) + 1;
    const std::size_t dead = rng.next_below(400) + 1;
    i += live;
    for (std::size_t j = i; j < n && j < i + dead; ++j) v[j] = 0.0f;
    i += dead;
  }
  return v;
}

std::vector<float> high_entropy(std::size_t n, sim::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = from_bits(rng.next_u32());
  return v;
}

std::vector<float> plateaus(std::size_t n, sim::Rng& rng) {
  const int levels = 2 + static_cast<int>(rng.next_below(14));
  std::vector<float> alphabet(static_cast<std::size_t>(levels));
  for (auto& a : alphabet) a = static_cast<float>(rng.uniform(-100.0, 100.0));
  std::vector<float> v(n);
  std::size_t i = 0;
  while (i < n) {
    const float level = alphabet[rng.next_below(alphabet.size())];
    const std::size_t run = rng.next_below(64) + 1;
    for (std::size_t j = i; j < n && j < i + run; ++j) v[j] = level;
    i += run;
  }
  return v;
}

std::vector<float> interleaved(std::size_t n, sim::Rng& rng) {
  const int fields = 2 + static_cast<int>(rng.next_below(7));
  std::vector<double> freq(static_cast<std::size_t>(fields)), amp(freq.size());
  for (std::size_t f = 0; f < freq.size(); ++f) {
    freq[f] = rng.uniform(0.001, 0.1);
    amp[f] = rng.uniform(0.5, 50.0);
  }
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t f = i % freq.size();
    v[i] = static_cast<float>(amp[f] * std::sin(freq[f] * static_cast<double>(i / freq.size())));
  }
  return v;
}

std::vector<float> quantized_noise(std::size_t n, sim::Rng& rng) {
  const int unique = 4 + static_cast<int>(rng.next_below(60));
  std::vector<float> alphabet(static_cast<std::size_t>(unique));
  for (auto& a : alphabet) a = static_cast<float>(rng.normal() * 10.0);
  std::vector<float> v(n);
  for (auto& x : v) x = alphabet[rng.next_below(alphabet.size())];
  return v;
}

std::vector<float> denormal_drift(std::size_t n, sim::Rng& rng) {
  std::vector<float> v(n);
  std::uint32_t bits = static_cast<std::uint32_t>(rng.next_below(0x007fffffu));
  for (auto& x : v) {
    bits = (bits + static_cast<std::uint32_t>(rng.next_below(7))) & 0x007fffffu;
    x = from_bits(bits | (rng.next_double() < 0.5 ? 0x80000000u : 0u));
  }
  return v;
}

}  // namespace

const char* payload_kind_name(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::Constant: return "constant";
    case PayloadKind::SmoothField: return "smooth_field";
    case PayloadKind::VelocityPlane: return "velocity_plane";
    case PayloadKind::SpecialValues: return "special_values";
    case PayloadKind::ZeroRuns: return "zero_runs";
    case PayloadKind::HighEntropy: return "high_entropy";
    case PayloadKind::Plateaus: return "plateaus";
    case PayloadKind::Interleaved: return "interleaved";
    case PayloadKind::QuantizedNoise: return "quantized_noise";
    case PayloadKind::DenormalDrift: return "denormal_drift";
    case PayloadKind::kCount: break;
  }
  return "?";
}

bool payload_kind_finite(PayloadKind kind) {
  return kind != PayloadKind::SpecialValues && kind != PayloadKind::HighEntropy;
}

std::vector<float> make_floats(PayloadKind kind, std::size_t n, std::uint64_t seed) {
  // Decorrelate the per-case stream from the kind so equal seeds across
  // kinds do not yield related sequences.
  sim::Rng rng(seed * 0x100000001b3ULL + static_cast<std::uint64_t>(kind));
  switch (kind) {
    case PayloadKind::Constant: return constant(n, rng);
    case PayloadKind::SmoothField: return smooth(n, rng);
    case PayloadKind::VelocityPlane: return velocity_plane(n, rng);
    case PayloadKind::SpecialValues: return special_values(n, rng);
    case PayloadKind::ZeroRuns: return zero_runs(n, rng);
    case PayloadKind::HighEntropy: return high_entropy(n, rng);
    case PayloadKind::Plateaus: return plateaus(n, rng);
    case PayloadKind::Interleaved: return interleaved(n, rng);
    case PayloadKind::QuantizedNoise: return quantized_noise(n, rng);
    case PayloadKind::DenormalDrift: return denormal_drift(n, rng);
    case PayloadKind::kCount: break;
  }
  return {};
}

std::vector<double> make_doubles(PayloadKind kind, std::size_t n, std::uint64_t seed) {
  if (kind == PayloadKind::HighEntropy) {
    sim::Rng rng(seed * 0x100000001b3ULL + static_cast<std::uint64_t>(kind));
    std::vector<double> v(n);
    for (auto& x : v) x = from_bits64(rng.next_u64());
    return v;
  }
  if (kind == PayloadKind::SpecialValues) {
    sim::Rng rng(seed * 0x100000001b3ULL + static_cast<std::uint64_t>(kind));
    static const double kEdge[] = {
        0.0, -0.0,
        std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        from_bits64(0x7ff0000000000001ULL),  // signaling-NaN bit pattern
        std::numeric_limits<double>::denorm_min(), -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(), std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(), 1.0, -1.0,
    };
    std::vector<double> v(n);
    for (auto& x : v) {
      x = rng.next_double() < 0.7 ? kEdge[rng.next_below(sizeof(kEdge) / sizeof(kEdge[0]))]
                                  : rng.normal();
    }
    return v;
  }
  // Widen the float generators: exact in double, keeps the same structure.
  const auto f = make_floats(kind, n, seed);
  std::vector<double> v(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) v[i] = static_cast<double>(f[i]);
  return v;
}

PayloadCase draw_case(sim::Rng& rng, std::size_t max_values, bool finite_only) {
  PayloadCase c;
  do {
    c.kind = static_cast<PayloadKind>(rng.next_below(static_cast<std::uint64_t>(PayloadKind::kCount)));
  } while (finite_only && !payload_kind_finite(c.kind));
  // Bias toward boundary lengths: empty, singletons, 32/64-tile edges, and
  // MPC chunk edges; otherwise log-uniform up to max_values.
  static const std::size_t kEdges[] = {0, 1, 2, 3, 4, 5, 31, 32, 33, 63, 64, 65,
                                       127, 128, 129, 1023, 1024, 1025, 4095, 4096, 4097};
  if (rng.next_double() < 0.35) {
    c.n = kEdges[rng.next_below(sizeof(kEdges) / sizeof(kEdges[0]))];
    if (c.n > max_values) c.n = max_values;
  } else {
    const double lo = 1.0, hi = std::log2(static_cast<double>(max_values < 2 ? 2 : max_values));
    c.n = static_cast<std::size_t>(std::pow(2.0, rng.uniform(lo, hi)));
    if (c.n > max_values) c.n = max_values;
  }
  c.seed = rng.next_u64();
  return c;
}

std::string describe(const PayloadCase& c) {
  return std::string(payload_kind_name(c.kind)) + " n=" + std::to_string(c.n) +
         " seed=" + std::to_string(c.seed);
}

std::uint64_t test_seed() {
  if (const char* env = std::getenv("GCMPI_TEST_SEED"); env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xC0DECULL;
}

}  // namespace gcmpi::testing
