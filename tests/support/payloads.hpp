// Seeded structured payload generators for the property/fuzz harness.
//
// Every generator is a pure function of (kind, n, seed) so a failing case
// is fully reproducible from the three numbers printed in the failure
// report. The kinds cover the regimes the paper's codecs must survive:
// smooth physical fields (the happy path), AWP-like velocity ghost planes,
// IEEE-754 edge values (NaN payload bits, infinities, denormals, signed
// zeros), long zero runs, and adversarial high-entropy noise that must not
// corrupt even when it expands.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace gcmpi::testing {

enum class PayloadKind : int {
  Constant = 0,      // one repeated value (maximum compressibility)
  SmoothField,       // multi-frequency smooth signal + tiny noise
  VelocityPlane,     // AWP-like 2D velocity ghost plane, row-major
  SpecialValues,     // NaN variants, +-Inf, +-0, denormals, extremes
  ZeroRuns,          // smooth data interrupted by long all-zero runs
  HighEntropy,       // adversarial random bit patterns (incompressible)
  Plateaus,          // piecewise-constant runs from a small alphabet
  Interleaved,       // multi-field record interleaving (MPC's dim > 1 case)
  QuantizedNoise,    // small alphabet in random order (low lossless CR)
  DenormalDrift,     // values drifting through the denormal range
  kCount
};

[[nodiscard]] const char* payload_kind_name(PayloadKind kind);

/// True when every generated value is finite (safe for lossy error-bound
/// checks); SpecialValues and HighEntropy can produce NaN/Inf bits.
[[nodiscard]] bool payload_kind_finite(PayloadKind kind);

[[nodiscard]] std::vector<float> make_floats(PayloadKind kind, std::size_t n,
                                             std::uint64_t seed);
[[nodiscard]] std::vector<double> make_doubles(PayloadKind kind, std::size_t n,
                                               std::uint64_t seed);

/// One drawn fuzz case: everything needed to regenerate the payload.
struct PayloadCase {
  PayloadKind kind = PayloadKind::Constant;
  std::size_t n = 0;
  std::uint64_t seed = 0;
};

/// Draw a case with size in [0, max_values]; sizes are biased toward
/// small-but-interesting lengths (0, 1, 31..33, chunk edges) plus a
/// uniform tail so chunk/tile boundaries are hit often.
[[nodiscard]] PayloadCase draw_case(sim::Rng& rng, std::size_t max_values,
                                    bool finite_only = false);

[[nodiscard]] std::string describe(const PayloadCase& c);

/// Root seed for the whole harness: $GCMPI_TEST_SEED if set (decimal or
/// 0x-hex), else a fixed default so CI runs are reproducible.
[[nodiscard]] std::uint64_t test_seed();

}  // namespace gcmpi::testing
