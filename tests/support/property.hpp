// Minimal property-testing harness: run a predicate over generated inputs,
// and on failure greedily shrink the input to a (locally) minimal failing
// payload before reporting, QuickCheck-style. The report carries the
// payload case triple (kind, n, seed) plus the shrunken values so any
// failure is reproducible with GCMPI_TEST_SEED and pastable into a
// regression test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "support/payloads.hpp"

namespace gcmpi::testing {

/// A property over a payload: empty optional == holds; otherwise the
/// explanation of the violation (first bad index, expected vs got bits...).
template <typename T>
using Property = std::function<std::optional<std::string>(std::span<const T>)>;

/// Greedily shrink `input` while `prop` keeps failing. Candidate moves:
/// drop the front half, drop the back half, drop quarters, then truncate
/// single elements off the tail. Bounded by `max_steps` property calls so
/// pathological codecs cannot stall the suite.
template <typename T>
std::vector<T> shrink_failing(std::vector<T> input, const Property<T>& prop,
                              int max_steps = 200) {
  int steps = 0;
  auto fails = [&](const std::vector<T>& v) {
    ++steps;
    return prop(std::span<const T>(v)).has_value();
  };
  bool progress = true;
  while (progress && steps < max_steps && input.size() > 1) {
    progress = false;
    const std::size_t n = input.size();
    // Halves, then quarters.
    for (std::size_t denom : {2u, 4u}) {
      const std::size_t piece = n / denom;
      if (piece == 0) continue;
      for (std::size_t start = 0; start + piece <= n; start += piece) {
        std::vector<T> candidate;
        candidate.reserve(n - piece);
        candidate.insert(candidate.end(), input.begin(),
                         input.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(candidate.end(),
                         input.begin() + static_cast<std::ptrdiff_t>(start + piece),
                         input.end());
        if (fails(candidate)) {
          input = std::move(candidate);
          progress = true;
          break;
        }
        if (steps >= max_steps) return input;
      }
      if (progress) break;
    }
  }
  // Tail truncation for the last few elements.
  while (steps < max_steps && input.size() > 1) {
    std::vector<T> candidate(input.begin(), input.end() - 1);
    if (!fails(candidate)) break;
    input = std::move(candidate);
  }
  return input;
}

/// Render a shrunken failing payload compactly (hex bits + value preview).
template <typename T>
std::string render_payload(std::span<const T> v, std::size_t max_items = 16) {
  std::ostringstream os;
  os << "[" << v.size() << " values]";
  const std::size_t show = v.size() < max_items ? v.size() : max_items;
  for (std::size_t i = 0; i < show; ++i) os << " " << v[i];
  if (show < v.size()) os << " ...";
  return os.str();
}

/// Run `cases` fuzz iterations of `prop` over drawn payloads; on the first
/// failure, shrink and return the formatted report. Empty optional == all
/// cases passed. `name` labels the unit under test in the report.
template <typename T>
std::optional<std::string> check_property(
    const std::string& name, int cases, std::uint64_t root_seed, std::size_t max_values,
    bool finite_only, const std::function<std::vector<T>(const PayloadCase&)>& gen,
    const Property<T>& prop) {
  sim::Rng rng(root_seed);
  for (int i = 0; i < cases; ++i) {
    const PayloadCase c = draw_case(rng, max_values, finite_only);
    std::vector<T> payload = gen(c);
    auto error = prop(std::span<const T>(payload));
    if (!error) continue;
    const auto shrunk = shrink_failing(payload, prop);
    auto shrunk_error = prop(std::span<const T>(shrunk));
    std::ostringstream os;
    os << name << ": property violated on case #" << i << " (" << describe(c)
       << ", root seed " << root_seed << ")\n  original failure: " << *error
       << "\n  shrunk to " << render_payload(std::span<const T>(shrunk))
       << "\n  shrunk failure: " << (shrunk_error ? *shrunk_error : error->c_str())
       << "\n  reproduce with GCMPI_TEST_SEED=" << root_seed;
    return os.str();
  }
  return std::nullopt;
}

}  // namespace gcmpi::testing
