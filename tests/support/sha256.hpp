// Minimal self-contained SHA-256 for the golden-stream tests.
//
// The golden tests pin the exact compressed bytes each codec emits; a
// cryptographic digest keeps the pinned corpus to one short hex string per
// case instead of megabytes of expected output. No external dependency on
// purpose — the container has no crypto library baked in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace gcmpi::testing {

/// Lowercase hex SHA-256 digest of `data`.
[[nodiscard]] std::string sha256_hex(std::span<const std::uint8_t> data);

}  // namespace gcmpi::testing
