#include "support/world_dump.hpp"

#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "fault/injector.hpp"
#include "mpi/world.hpp"
#include "sim/rng.hpp"
#include "support/payloads.hpp"

namespace gcmpi::testing {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) h = (h ^ p[i]) * 0x100000001b3ULL;
  return h;
}

}  // namespace

std::string run_world_dump(const WorldScenario& s) {
  const int P = s.nodes * s.gpus_per_node;

  // Plan all p2p traffic up front, deterministically in the scenario seed.
  sim::Rng rng(s.seed);
  struct Send {
    int dst;
    int tag;
    PayloadCase payload;
  };
  std::vector<std::vector<Send>> plan(static_cast<std::size_t>(P));
  std::vector<int> expected(static_cast<std::size_t>(P), 0);
  for (int src = 0; src < P; ++src) {
    for (int m = 0; m < s.messages_per_rank; ++m) {
      Send snd;
      const int d = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P - 1)));
      snd.dst = d >= src ? d + 1 : d;
      snd.tag = 1 + static_cast<int>(rng.next_below(4));
      snd.payload = draw_case(rng, s.max_message_values);
      if (snd.payload.n == 0) snd.payload.n = 1;  // probe-free drain needs bytes
      plan[static_cast<std::size_t>(src)].push_back(snd);
      ++expected[static_cast<std::size_t>(snd.dst)];
    }
  }

  sim::Engine engine;
  core::Telemetry telemetry;
  auto cfg = s.compression ? core::CompressionConfig::mpc_opt() : core::CompressionConfig::off();
  cfg.threshold_bytes = 8 * 1024;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.pipeline.enabled = s.pipeline;
  opts.pipeline.min_bytes = s.pipeline_min_bytes;
  opts.pipeline.chunk_bytes = s.pipeline_chunk_bytes;
  opts.pipeline.max_in_flight = s.pipeline_max_in_flight;
  opts.collectives.algorithm =
      static_cast<core::CollectiveAlgorithm>(s.collective_algorithm);
  opts.collectives.alltoall_algorithm =
      static_cast<core::CollectiveAlgorithm>(s.alltoall_algorithm);
  const auto hier_alg = static_cast<core::CollectiveAlgorithm>(s.hier_algorithm);
  opts.collectives.bcast_algorithm = hier_alg;
  opts.collectives.allgather_algorithm = hier_alg;
  opts.collectives.gather_algorithm = hier_alg;
  opts.collectives.scatter_algorithm = hier_alg;
  std::optional<fault::FaultInjector> injector;
  if (s.fault_seed != 0) {
    fault::FaultPlan plan;
    plan.seed = s.fault_seed;
    plan.drop_probability = s.fault_drop;
    plan.corrupt_probability = s.fault_corrupt;
    plan.decompress_fail_probability = s.fault_decompress;
    injector.emplace(plan);
    opts.fault = &*injector;
  }
  mpi::World world(engine, net::longhorn(s.nodes, s.gpus_per_node), cfg, opts);

  // Per-rank observation log: every receive completion and collective
  // result, stamped with virtual time. Indexed by rank so the dump order
  // is independent of actor scheduling.
  std::vector<std::vector<std::string>> observed(static_cast<std::size_t>(P));

  world.run([&](mpi::Rank& R) {
    const int me = R.rank();
    auto& log = observed[static_cast<std::size_t>(me)];
    std::vector<mpi::Request> sends;
    std::vector<std::vector<float>> live;
    std::vector<void*> device_bufs;
    for (const auto& snd : plan[static_cast<std::size_t>(me)]) {
      live.push_back(make_floats(snd.payload.kind, snd.payload.n, snd.payload.seed));
      const std::uint64_t bytes = live.back().size() * 4;
      const void* src = live.back().data();
      if (s.device_payloads) {
        void* d = R.gpu_malloc(bytes);
        std::memcpy(d, src, bytes);
        device_bufs.push_back(d);
        src = d;
      }
      sends.push_back(R.isend(src, bytes, snd.dst, snd.tag));
    }
    std::vector<float> rbuf(s.max_message_values + 16);
    for (int m = 0; m < expected[static_cast<std::size_t>(me)]; ++m) {
      const auto st = R.recv(rbuf.data(), rbuf.size() * 4, mpi::kAnySource, mpi::kAnyTag);
      std::ostringstream os;
      os << "recv rank=" << me << " t_ns=" << R.now().count_ns() << " src=" << st.source
         << " tag=" << st.tag << " bytes=" << st.bytes << " fnv="
         << fnv1a(rbuf.data(), st.bytes);
      log.push_back(os.str());
    }
    R.waitall(sends);
    for (void* d : device_bufs) R.gpu_free(d);

    for (int round = 0; round < s.collective_rounds; ++round) {
      float v = static_cast<float>(me * 13 + round);
      float sum = 0.0f;
      R.allreduce(&v, &sum, 1, mpi::ReduceOp::Sum);
      std::vector<float> block(256, static_cast<float>(me) + 0.5f);
      std::vector<float> all(block.size() * static_cast<std::size_t>(P));
      R.allgather(block.data(), block.size() * 4, all.data());
      std::vector<float> bc = data::generate("msg_sppm", 4096,
                                             static_cast<std::uint64_t>(round + 1));
      R.bcast(bc.data(), bc.size() * 4, round % P);
      std::ostringstream os;
      os << "coll rank=" << me << " round=" << round << " t_ns=" << R.now().count_ns()
         << " sum=" << sum << " fnv_all=" << fnv1a(all.data(), all.size() * 4)
         << " fnv_bcast=" << fnv1a(bc.data(), bc.size() * 4);
      if (s.engine_allreduce_values > 0) {
        // Engine-sized allreduce: device-resident contributions so the ring
        // hops compress; the result checksum pins bit-exact reproducibility.
        const std::size_t n = s.engine_allreduce_values;
        const auto mine = make_floats(PayloadKind::SmoothField, n,
                                      s.seed * 1000 + static_cast<std::uint64_t>(me));
        auto* dev = static_cast<float*>(R.gpu_malloc(n * 4 + 4));
        std::memcpy(dev, mine.data(), n * 4);
        std::vector<float> ar(n);
        R.allreduce(dev, ar.data(), n, mpi::ReduceOp::Sum);
        R.gpu_free(dev);
        os << " fnv_ar=" << fnv1a(ar.data(), n * 4);
      }
      if (s.alltoall_block_values > 0) {
        // Engine-sized alltoall: device-resident per-destination blocks so
        // the batched wire slab compresses; the receive-buffer checksum
        // pins the whole scattered exchange bit-exactly.
        const std::size_t bn = s.alltoall_block_values;
        auto* send = static_cast<float*>(
            R.gpu_malloc(bn * 4 * static_cast<std::size_t>(P)));
        for (int d = 0; d < P; ++d) {
          const auto blk = make_floats(
              PayloadKind::SmoothField, bn,
              s.seed * 2000 + static_cast<std::uint64_t>(me) * 131 +
                  static_cast<std::uint64_t>(d) + static_cast<std::uint64_t>(round));
          std::memcpy(send + static_cast<std::size_t>(d) * bn, blk.data(), bn * 4);
        }
        std::vector<float> a2a(bn * static_cast<std::size_t>(P));
        R.alltoall(send, bn * 4, a2a.data());
        R.gpu_free(send);
        os << " fnv_a2a=" << fnv1a(a2a.data(), a2a.size() * 4);
      }
      if (s.hier_block_values > 0) {
        // Hierarchical moving collectives: device-resident payloads so the
        // per-node staging slabs compress; each op's checksum pins its
        // one-wire-transit-per-node schedule bit-exactly.
        const std::size_t hn = s.hier_block_values;
        const int root = (round + 1) % P;
        auto* dev = static_cast<float*>(
            R.gpu_malloc(hn * 4 * static_cast<std::size_t>(P) + 4));
        const auto msg = make_floats(PayloadKind::SmoothField, hn,
                                     s.seed * 3000 + static_cast<std::uint64_t>(round));
        if (me == root) std::memcpy(dev, msg.data(), hn * 4);
        R.bcast(dev, hn * 4, root);
        os << " fnv_hb=" << fnv1a(dev, hn * 4);

        const auto mine = make_floats(PayloadKind::SmoothField, hn,
                                      s.seed * 4000 + static_cast<std::uint64_t>(me) * 17 +
                                          static_cast<std::uint64_t>(round));
        std::memcpy(dev, mine.data(), hn * 4);
        std::vector<float> vec(hn * static_cast<std::size_t>(P));
        R.allgather(dev, hn * 4, vec.data());
        os << " fnv_hag=" << fnv1a(vec.data(), vec.size() * 4);

        vec.assign(vec.size(), 0.0f);
        R.gather(dev, hn * 4, vec.data(), root);
        if (me == root) os << " fnv_hg=" << fnv1a(vec.data(), vec.size() * 4);

        if (me == root) {
          for (int d = 0; d < P; ++d) {
            const auto blk = make_floats(
                PayloadKind::SmoothField, hn,
                s.seed * 5000 + static_cast<std::uint64_t>(d) * 31 +
                    static_cast<std::uint64_t>(round));
            std::memcpy(dev + static_cast<std::size_t>(d) * hn, blk.data(), hn * 4);
          }
        }
        std::vector<float> piece(hn);
        R.scatter(dev, hn * 4, piece.data(), root);
        os << " fnv_hsc=" << fnv1a(piece.data(), hn * 4);
        R.gpu_free(dev);
      }
      log.push_back(os.str());
      R.barrier();
    }
  });

  std::ostringstream dump;
  dump << "scenario seed=" << s.seed << " ranks=" << P
       << " msgs=" << s.messages_per_rank << " compression=" << s.compression << "\n";
  for (int r = 0; r < P; ++r) {
    for (const auto& line : observed[static_cast<std::size_t>(r)]) dump << line << "\n";
    const auto& stats = world.compression_of(r).stats();
    dump << "stats rank=" << r << " considered=" << stats.messages_considered
         << " compressed=" << stats.messages_compressed
         << " fallback=" << stats.messages_fallback_raw
         << " codec_faults=" << stats.codec_faults
         << " original=" << stats.original_bytes << " wire=" << stats.wire_bytes;
    if (stats.pipelined_messages > 0) {
      // Only printed when the rank actually pipelined, so serial-mode dumps
      // stay byte-identical to their pre-pipeline form.
      dump << " pipelined=" << stats.pipelined_messages
           << " pchunks=" << stats.pipeline_chunks_compressed
           << " praw=" << stats.pipeline_chunks_raw;
    }
    dump << "\n";
  }
  dump << "telemetry_events=" << telemetry.events().size() << "\n";
  telemetry.write_csv(dump);
  const auto summary = telemetry.summarize();
  dump << "telemetry_summary compressions=" << summary.compressions
       << " decompressions=" << summary.decompressions
       << " bypasses=" << summary.raw_bypasses << " fallbacks=" << summary.fallbacks
       << " retransmits=" << summary.retransmits
       << " corruptions=" << summary.corruptions_detected
       << " codec_faults=" << summary.codec_faults
       << " original=" << summary.original_bytes << " wire=" << summary.wire_bytes
       << " ct_ns=" << summary.compression_time.count_ns()
       << " dt_ns=" << summary.decompression_time.count_ns() << "\n";
  if (!telemetry.pipelines().empty()) {
    dump << "pipeline_transfers=" << telemetry.pipelines().size() << "\n";
    telemetry.write_pipeline_csv(dump);
  }
  if (!telemetry.collectives().empty()) {
    // Only present when the engine (ring/hierarchical) ran; legacy linear
    // scenarios keep their pre-engine dump bytes.
    dump << "collective_records=" << telemetry.collectives().size() << "\n";
    telemetry.write_collective_csv(dump);
  }
  if (injector.has_value()) {
    // Only emitted when something actually fired, so an idle plan's dump
    // stays byte-identical to a run with no injector at all.
    const auto& fs = injector->stats();
    if (fs.drops + fs.corruptions + fs.latency_spikes + fs.stalls + fs.degradations +
            fs.compress_faults + fs.decompress_faults >
        0) {
      dump << "fault_stats data_packets=" << fs.data_packets << " drops=" << fs.drops
           << " corruptions=" << fs.corruptions << " spikes=" << fs.latency_spikes
           << " stalls=" << fs.stalls << " degradations=" << fs.degradations
           << " compress_faults=" << fs.compress_faults
           << " decompress_faults=" << fs.decompress_faults << "\n";
    }
  }
  dump << "engine_final_ns=" << engine.now().count_ns() << "\n";
  return dump.str();
}

std::string first_divergence(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    ++line;
    if (!ga && !gb) return "dumps are identical";
    if (ga != gb || la != lb) {
      std::ostringstream os;
      os << "first divergence at line " << line << ":\n  run1: "
         << (ga ? la : "<end of dump>") << "\n  run2: " << (gb ? lb : "<end of dump>");
      return os.str();
    }
  }
}

}  // namespace gcmpi::testing
