// Deterministic scenario runner for the determinism suite: run a seeded
// mixed workload (random point-to-point traffic + collectives) on a
// simulated cluster and serialize everything observable — per-rank receive
// timeline with virtual timestamps and payload checksums, compression
// stats, the full telemetry event log, and the final engine clock — into
// one canonical text dump. The simulator's contract is that two runs of
// the same scenario produce byte-identical dumps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gcmpi::testing {

struct WorldScenario {
  int nodes = 4;
  int gpus_per_node = 2;            // ranks = nodes * gpus_per_node
  int messages_per_rank = 20;       // random p2p sends per rank
  std::size_t max_message_values = 16384;
  bool compression = true;          // MPC-OPT with a low threshold
  int collective_rounds = 2;        // allreduce+allgather+bcast interleaved
  std::uint64_t seed = 1;

  // Fault injection: a nonzero fault_seed installs a FaultInjector with
  // these rates. An installed-but-idle plan (all rates zero) must produce
  // a dump byte-identical to fault_seed == 0 (reliability transparency).
  std::uint64_t fault_seed = 0;
  double fault_drop = 0.0;
  double fault_corrupt = 0.0;
  double fault_decompress = 0.0;

  // Chunked pipelined rendezvous. device_payloads stages every p2p payload
  // in device memory (making it compression- and pipeline-eligible);
  // `pipeline` enables the chunked path. Both default off, and the stats /
  // telemetry sections only grow pipeline lines when transfers actually
  // pipelined, so legacy scenario dumps stay byte-identical.
  bool device_payloads = false;
  bool pipeline = false;
  std::uint64_t pipeline_min_bytes = 1ull << 20;
  std::uint64_t pipeline_chunk_bytes = 0;  // 0 = cost-model auto-tune
  int pipeline_max_in_flight = 4;

  // Collective algorithm engine. A nonzero engine_allreduce_values adds one
  // engine-sized allreduce (device-resident, that many floats) per
  // collective round, logged with its result checksum; collective_algorithm
  // pins WorldOptions::collectives.algorithm (0 = Auto). The dump only
  // grows collective-record lines when the engine actually ran, so legacy
  // scenario dumps stay byte-identical.
  std::size_t engine_allreduce_values = 0;
  int collective_algorithm = 0;  // core::CollectiveAlgorithm numeric value

  // Batched alltoall engine. A nonzero alltoall_block_values adds one
  // device-resident alltoall (that many floats per destination block) per
  // collective round, logged with its receive-buffer checksum;
  // alltoall_algorithm pins WorldOptions::collectives.alltoall_algorithm
  // (0 = Auto). Inert by default, so legacy scenario dumps stay
  // byte-identical.
  std::size_t alltoall_block_values = 0;
  int alltoall_algorithm = 0;  // core::CollectiveAlgorithm numeric value

  // Hierarchical moving collectives. A nonzero hier_block_values adds one
  // device-resident bcast (that many floats, rotating root) plus an
  // allgather / gather / scatter (that many floats per block) per
  // collective round, each logged with its result checksum;
  // hier_algorithm pins all four per-op knobs (0 = Auto). Inert by
  // default, so legacy scenario dumps stay byte-identical.
  std::size_t hier_block_values = 0;
  int hier_algorithm = 0;  // core::CollectiveAlgorithm numeric value
};

[[nodiscard]] std::string run_world_dump(const WorldScenario& s);

/// Locate the first diverging line between two dumps and format a
/// human-readable diff snippet (line number, both lines, context).
[[nodiscard]] std::string first_divergence(const std::string& a, const std::string& b);

}  // namespace gcmpi::testing
