// Adaptive control-plane tests (the paper's Sec. IX closed loop): decision
// determinism across reruns, convergence to the best fixed codec on a
// stationary workload, codec quarantine under an injected fault storm, and
// the all-ranks-agree contract for adaptive collective selection.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "fault/injector.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using adapt::AdaptiveController;
using adapt::AdaptiveOptions;
using core::Telemetry;

// IB EDR's ~12.5 GB/s effective inter-node bandwidth — the same figure the
// static DynamicSelector tests use, so prior and fabric roughly agree.
constexpr double kNetworkGbs = 12.5;

struct StreamResult {
  sim::Time elapsed = sim::Time::zero();
  std::vector<float> received;
};

/// Rank 0 streams `iters` copies of `payload` to rank 1 over the two-node
/// Longhorn fabric; returns final virtual time and the last received copy.
StreamResult run_p2p_stream(const core::CompressionConfig& cfg,
                            AdaptiveController* controller, Telemetry* telemetry,
                            fault::FaultInjector* injector,
                            const std::vector<float>& payload, int iters) {
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.telemetry = telemetry;
  opts.fault = injector;
  opts.adaptive = controller;
  if (controller != nullptr && telemetry != nullptr) controller->bind(*telemetry);
  mpi::World world(engine, net::longhorn(2, 1), cfg, opts);

  const std::size_t n = payload.size();
  StreamResult out;
  out.received.resize(n, 0.0f);
  world.run([&](mpi::Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::memcpy(dev, payload.data(), n * 4);
    for (int i = 0; i < iters; ++i) {
      if (R.rank() == 0) {
        R.send(dev, n * 4, 1, i);
      } else {
        R.recv(dev, n * 4, 0, i);
      }
    }
    if (R.rank() == 1) std::memcpy(out.received.data(), dev, n * 4);
    R.gpu_free(dev);
  });
  out.elapsed = engine.now();
  return out;
}

std::string decision_csv(const Telemetry& t) {
  std::ostringstream os;
  t.write_decision_csv(os);
  return os.str();
}

// (a) Determinism: two identical adaptive runs replay the exact same
// decision sequence — probes included — byte for byte.
TEST(Adaptive, DecisionSequenceDeterministicAcrossReruns) {
  const std::size_t n = (4u << 20) / 4;
  const auto payload = data::generate("msg_sppm", n);
  std::string csv[2];
  for (int run = 0; run < 2; ++run) {
    Telemetry telemetry;
    AdaptiveController controller(gpu::v100_spec(), kNetworkGbs);
    run_p2p_stream(core::CompressionConfig::mpc_opt(), &controller, &telemetry,
                   nullptr, payload, 24);
    csv[run] = decision_csv(telemetry);
  }
  EXPECT_FALSE(csv[0].empty());
  EXPECT_EQ(csv[0], csv[1]);
}

// (b) Convergence: on a stationary workload the late, non-probe decisions
// all pick whichever fixed codec actually runs faster, within a bounded
// probe budget, and delivery stays bit-exact.
TEST(Adaptive, ConvergesToBestFixedCodecOnStationaryWorkload) {
  const std::size_t n = (4u << 20) / 4;
  const auto payload = data::generate("msg_sppm", n);
  const int iters = 32;

  const StreamResult raw = run_p2p_stream(core::CompressionConfig::off(), nullptr,
                                          nullptr, nullptr, payload, iters);
  const StreamResult mpc = run_p2p_stream(core::CompressionConfig::mpc_opt(), nullptr,
                                          nullptr, nullptr, payload, iters);
  const char* winner = mpc.elapsed < raw.elapsed ? "mpc" : "raw";

  Telemetry telemetry;
  AdaptiveOptions aopts;
  aopts.lossy_allowed = false;  // raw-vs-MPC duel; keeps delivery bit-exact
  AdaptiveController controller(gpu::v100_spec(), kNetworkGbs, aopts);
  const StreamResult adaptive = run_p2p_stream(core::CompressionConfig::mpc_opt(),
                                               &controller, &telemetry, nullptr,
                                               payload, iters);

  EXPECT_EQ(adaptive.received, payload);

  std::vector<const core::DecisionRecord*> p2p;
  int probes = 0;
  for (const auto& d : telemetry.decisions()) {
    if (std::strcmp(d.scope, "p2p") != 0) continue;
    p2p.push_back(&d);
    if (d.probe) ++probes;
  }
  ASSERT_EQ(p2p.size(), static_cast<std::size_t>(iters));
  // Probe budget: the counter-based draw routes ~1/probe_period decisions
  // to the runner-up; over 32 rounds that must stay well under a quarter.
  EXPECT_LE(probes, 8);
  // Every late non-probe decision agrees with the measured best fixed codec.
  for (std::size_t i = p2p.size() - 8; i < p2p.size(); ++i) {
    if (p2p[i]->probe) continue;
    EXPECT_STREQ(p2p[i]->choice, winner) << "decision " << i;
  }
}

// (c) Quarantine: a fault storm on the compression kernel trips the
// per-family streak, the controller degrades to raw, and delivery stays
// correct throughout.
TEST(Adaptive, QuarantinesFaultyCodecAndDegradesToRaw) {
  const std::size_t n = (4u << 20) / 4;
  const auto payload = data::generate("msg_sppm", n);
  const int iters = 24;

  fault::FaultInjector injector(fault::FaultPlan::flaky_codec(7, 1.0));
  Telemetry telemetry;
  AdaptiveOptions aopts;
  aopts.lossy_allowed = false;  // candidates: raw + MPC only
  AdaptiveController controller(gpu::v100_spec(), kNetworkGbs, aopts);
  const StreamResult got = run_p2p_stream(core::CompressionConfig::mpc_opt(),
                                          &controller, &telemetry, &injector,
                                          payload, iters);

  EXPECT_EQ(got.received, payload);  // every faulted compress fell back to raw

  int quarantined = 0;
  int raw_after_quarantine = 0;
  int mpc_after_quarantine = 0;
  bool seen_quarantine = false;
  for (const auto& d : telemetry.decisions()) {
    if (std::strcmp(d.scope, "p2p") != 0) continue;
    if (d.quarantined) {
      ++quarantined;
      seen_quarantine = true;
    }
    if (seen_quarantine && !d.probe) {
      if (std::strcmp(d.choice, "raw") == 0) ++raw_after_quarantine;
      if (std::strcmp(d.choice, "mpc") == 0) ++mpc_after_quarantine;
    }
  }
  EXPECT_GT(quarantined, 0) << "fault storm never tripped the quarantine";
  // Graceful degradation: once MPC is quarantined, the loop runs raw.
  EXPECT_GT(raw_after_quarantine, 0);
  EXPECT_EQ(mpc_after_quarantine, 0);
  // The codec faults actually happened (the streak fed on real events).
  EXPECT_GE(telemetry.summarize().codec_faults, 3u);
}

// (d) Collectives: the shared decision sequence keeps every rank on the
// same algorithm (no mismatch deadlock) and the reduction stays exact.
TEST(Adaptive, AllreduceAgreesAcrossRanksAndMatchesOracle) {
  const int nodes = 2, gpn = 2;
  const int P = nodes * gpn;
  const std::size_t n = (2u << 20) / 4;

  // Small-integer inputs: every partial sum is exactly representable, so
  // the oracle is order-independent (the ring and hierarchical schedules
  // reduce in different orders than a sequential host loop).
  std::vector<std::vector<float>> inputs;
  std::vector<float> expect(n, 0.0f);
  for (int r = 0; r < P; ++r) {
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<float>(static_cast<int>((i * 31 + static_cast<std::size_t>(r) * 17) % 257) - 128);
    }
    for (std::size_t i = 0; i < n; ++i) expect[i] += v[i];
    inputs.push_back(std::move(v));
  }

  Telemetry telemetry;
  AdaptiveOptions aopts;
  aopts.lossy_allowed = false;
  AdaptiveController controller(gpu::v100_spec(), kNetworkGbs, aopts);
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.adaptive = &controller;
  controller.bind(telemetry);
  sim::Engine engine;
  mpi::World world(engine, net::longhorn(nodes, gpn), core::CompressionConfig::mpc_opt(),
                   opts);

  int mismatches = 0;
  world.run([&](mpi::Rank& R) {
    std::vector<float> out(n, -1.0f);
    for (int round = 0; round < 3; ++round) {
      R.allreduce(inputs[static_cast<std::size_t>(R.rank())].data(), out.data(), n,
                  mpi::ReduceOp::Sum);
      for (std::size_t i = 0; i < n; ++i) {
        if (out[i] != expect[i]) ++mismatches;
      }
    }
  });
  EXPECT_EQ(mismatches, 0);

  // The controller logged one allreduce decision per round, replayed by
  // all ranks (one shared sequence, not one per rank).
  int allreduce_decisions = 0;
  for (const auto& d : telemetry.decisions()) {
    if (std::strcmp(d.scope, "allreduce") == 0) ++allreduce_decisions;
  }
  EXPECT_EQ(allreduce_decisions, 3);
}

}  // namespace
