// AWP proxy tests: physics sanity of the wave solver and exact equivalence
// between the serial solver and the distributed (halo-exchange) run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "apps/awp/distributed.hpp"
#include "apps/awp/solver.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using namespace gcmpi::apps::awp;

struct Fields {
  Grid g;
  std::vector<float> p, vx, vy, vz;
  explicit Fields(Grid grid)
      : g(grid), p(g.storage(), 0.0f), vx(g.storage(), 0.0f), vy(g.storage(), 0.0f),
        vz(g.storage(), 0.0f) {}
  Solver solver(PhysicsParams params = {}) { return {g, params, p, vx, vy, vz}; }
};

TEST(AwpSolver, RejectsBadSetups) {
  Fields f({8, 8, 8});
  PhysicsParams bad;
  bad.dt = 1.0;  // violates CFL
  EXPECT_THROW(f.solver(bad), std::invalid_argument);
  std::vector<float> tiny(8);
  EXPECT_THROW(Solver({8, 8, 8}, {}, tiny, tiny, tiny, tiny), std::invalid_argument);
}

TEST(AwpSolver, QuiescentFieldStaysQuiescent) {
  Fields f({8, 8, 8});
  auto s = f.solver();
  for (int i = 0; i < 10; ++i) {
    s.apply_rigid_boundary(true, true, true, true);
    s.step_velocity();
    s.step_pressure();
  }
  for (float x : f.p) EXPECT_EQ(x, 0.0f);
  for (float x : f.vx) EXPECT_EQ(x, 0.0f);
}

TEST(AwpSolver, PulsePropagatesOutward) {
  Fields f({24, 24, 24});
  auto s = f.solver();
  s.inject_pulse(12, 12, 12, 1.0, 2.0);
  const float p_center_before = f.p[f.g.at(12, 12, 12)];
  const float p_far_before = std::fabs(f.p[f.g.at(2, 2, 2)]);
  for (int i = 0; i < 30; ++i) {
    s.apply_rigid_boundary(true, true, true, true);
    s.step_velocity();
    s.apply_rigid_boundary(true, true, true, true);
    s.step_pressure();
  }
  const float p_center_after = f.p[f.g.at(12, 12, 12)];
  float p_far_after = 0;
  for (std::ptrdiff_t k = 0; k < 24; ++k) p_far_after = std::max(p_far_after, std::fabs(f.p[f.g.at(2, 2, k)]));
  EXPECT_LT(std::fabs(p_center_after), p_center_before);  // pulse left the center
  EXPECT_GT(p_far_after, p_far_before);                   // ... and reached far cells
}

TEST(AwpSolver, EnergyStaysBounded) {
  Fields f({16, 16, 16});
  auto s = f.solver();
  s.inject_pulse(8, 8, 8, 1.0, 2.5);
  const double e0 = s.energy();
  ASSERT_GT(e0, 0.0);
  for (int i = 0; i < 100; ++i) {
    s.apply_rigid_boundary(true, true, true, true);
    s.step_velocity();
    s.apply_rigid_boundary(true, true, true, true);
    s.step_pressure();
  }
  const double e1 = s.energy();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_GT(e1, 0.3 * e0);  // no blow-up, no collapse
  EXPECT_LT(e1, 1.7 * e0);
}

TEST(AwpSolver, PackUnpackRoundTrip) {
  Fields a({6, 8, 10}), b({6, 8, 10});
  auto sa = a.solver();
  auto sb = b.solver();
  sa.inject_pulse(3, 4, 5, 1.0, 1.5);
  std::vector<float> buf(sa.x_face_values());
  sa.pack_x(true, buf);
  sb.unpack_x(false, buf);
  // b's low-x ghost plane now equals a's high-x interior plane.
  for (std::ptrdiff_t k = 0; k < 10; ++k) {
    for (std::ptrdiff_t j = 0; j < 8; ++j) {
      EXPECT_EQ(b.p[b.g.at(-1, j, k)], a.p[a.g.at(5, j, k)]);
    }
  }
  std::vector<float> ybuf(sa.y_face_values());
  sa.pack_y(false, ybuf);
  sb.unpack_y(true, ybuf);
  for (std::ptrdiff_t k = 0; k < 10; ++k) {
    for (std::ptrdiff_t i = 0; i < 6; ++i) {
      EXPECT_EQ(b.p[b.g.at(i, 8, k)], a.p[a.g.at(i, 0, k)]);
    }
  }
}

/// The load-bearing test: a 2x2 distributed run must produce bit-identical
/// fields to a serial run of the same global problem.
TEST(AwpDistributed, MatchesSerialBitwise) {
  const Grid local{8, 8, 12};
  const int px = 2, py = 2;
  const Grid global{local.nx * px, local.ny * py, local.nz};
  const int steps = 6;

  // Serial reference.
  Fields ref(global);
  auto rs = ref.solver();
  rs.inject_pulse(static_cast<std::ptrdiff_t>(global.nx / 2),
                  static_cast<std::ptrdiff_t>(global.ny / 2),
                  static_cast<std::ptrdiff_t>(global.nz / 2), 1.0, 3.0);
  for (int s = 0; s < steps; ++s) {
    rs.apply_rigid_boundary(true, true, true, true);
    rs.step_velocity();
    rs.apply_rigid_boundary(true, true, true, true);
    rs.step_pressure();
  }

  // Distributed run, collecting each rank's interior pressure.
  sim::Engine engine;
  mpi::World world(engine, net::longhorn(4, 1), core::CompressionConfig::off());
  std::vector<std::vector<float>> interior(4);
  world.run([&](mpi::Rank& R) {
    // Replicates run_awp's exact stepping order using the public pieces so
    // the final per-rank fields can be captured for comparison.
    const int cx = R.rank() % px, cy = R.rank() / px;
    Fields f(local);
    auto s = f.solver();
    s.inject_pulse(static_cast<std::ptrdiff_t>(global.nx / 2) - cx * static_cast<std::ptrdiff_t>(local.nx),
                   static_cast<std::ptrdiff_t>(global.ny / 2) - cy * static_cast<std::ptrdiff_t>(local.ny),
                   static_cast<std::ptrdiff_t>(local.nz / 2), 1.0, 3.0);

    const std::size_t xv = s.x_face_values(), yv = s.y_face_values();
    std::vector<float> sxm(xv), sxp(xv), rxm(xv), rxp(xv), sym(yv), syp(yv), rym(yv), ryp(yv);
    const int xm = cx > 0 ? R.rank() - 1 : -1;
    const int xp = cx < px - 1 ? R.rank() + 1 : -1;
    const int ym = cy > 0 ? R.rank() - px : -1;
    const int yp = cy < py - 1 ? R.rank() + px : -1;

    auto exchange = [&] {
      std::vector<mpi::Request> reqs;
      if (xm >= 0) reqs.push_back(R.irecv(rxm.data(), xv * 4, xm, 2));
      if (xp >= 0) reqs.push_back(R.irecv(rxp.data(), xv * 4, xp, 1));
      if (ym >= 0) reqs.push_back(R.irecv(rym.data(), yv * 4, ym, 4));
      if (yp >= 0) reqs.push_back(R.irecv(ryp.data(), yv * 4, yp, 3));
      if (xm >= 0) { s.pack_x(false, sxm); reqs.push_back(R.isend(sxm.data(), xv * 4, xm, 1)); }
      if (xp >= 0) { s.pack_x(true, sxp); reqs.push_back(R.isend(sxp.data(), xv * 4, xp, 2)); }
      if (ym >= 0) { s.pack_y(false, sym); reqs.push_back(R.isend(sym.data(), yv * 4, ym, 3)); }
      if (yp >= 0) { s.pack_y(true, syp); reqs.push_back(R.isend(syp.data(), yv * 4, yp, 4)); }
      R.waitall(reqs);
      if (xm >= 0) s.unpack_x(false, rxm);
      if (xp >= 0) s.unpack_x(true, rxp);
      if (ym >= 0) s.unpack_y(false, rym);
      if (yp >= 0) s.unpack_y(true, ryp);
    };

    for (int st = 0; st < steps; ++st) {
      exchange();
      s.apply_rigid_boundary(cx == 0, cx == px - 1, cy == 0, cy == py - 1);
      s.step_velocity();
      exchange();
      s.apply_rigid_boundary(cx == 0, cx == px - 1, cy == 0, cy == py - 1);
      s.step_pressure();
    }

    // Extract interior pressure.
    auto& out = interior[static_cast<std::size_t>(R.rank())];
    out.resize(local.cells());
    std::size_t w = 0;
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(local.nz); ++k) {
      for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(local.ny); ++j) {
        for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(local.nx); ++i) {
          out[w++] = f.p[f.g.at(i, j, k)];
        }
      }
    }
  });

  // Compare each rank's interior against the serial reference, bitwise.
  int mismatches = 0;
  for (int r = 0; r < 4; ++r) {
    const int cx = r % px, cy = r / px;
    std::size_t w = 0;
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(local.nz); ++k) {
      for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(local.ny); ++j) {
        for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(local.nx); ++i) {
          const float expect =
              ref.p[global.at(i + cx * static_cast<std::ptrdiff_t>(local.nx),
                              j + cy * static_cast<std::ptrdiff_t>(local.ny), k)];
          if (std::memcmp(&expect, &interior[static_cast<std::size_t>(r)][w], 4) != 0) {
            ++mismatches;
          }
          ++w;
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(AwpDistributed, RunAwpReportsSaneMetrics) {
  sim::Engine engine;
  mpi::World world(engine, net::longhorn(4, 2), core::CompressionConfig::off());
  AwpReport report;
  world.run([&](mpi::Rank& R) {
    AwpConfig cfg;
    cfg.local = {12, 12, 16};
    cfg.px = 4;
    cfg.py = 2;
    cfg.steps = 4;
    auto rep = apps::awp::run_awp(R, cfg);
    if (R.rank() == 0) report = rep;
  });
  EXPECT_EQ(report.ranks, 8);
  EXPECT_GT(report.total_time, sim::Time::zero());
  EXPECT_GT(report.gpu_tflops, 0.0);
  EXPECT_GT(report.final_energy, 0.0f);
  EXPECT_GT(report.compute_time, sim::Time::zero());
  EXPECT_GT(report.comm_time, sim::Time::zero());
}

TEST(AwpDistributed, CompressionPreservesPhysicsExactly) {
  // MPC is lossless, so the distributed run with compression must equal the
  // one without, bit for bit (energy is a sufficient proxy here).
  auto run_one = [&](core::CompressionConfig cfg) {
    sim::Engine engine;
    mpi::World world(engine, net::longhorn(4, 1), cfg);
    float energy = 0;
    world.run([&](mpi::Rank& R) {
      AwpConfig c;
      c.local = {10, 10, 64};
      c.px = 2;
      c.py = 2;
      c.steps = 5;
      auto rep = apps::awp::run_awp(R, c);
      if (R.rank() == 0) energy = static_cast<float>(rep.final_energy);
    });
    return energy;
  };
  core::CompressionConfig mpc = core::CompressionConfig::mpc_opt();
  mpc.threshold_bytes = 4096;  // halo faces here are small
  const float e_base = run_one(core::CompressionConfig::off());
  const float e_mpc = run_one(mpc);
  EXPECT_EQ(e_base, e_mpc);
}

}  // namespace

namespace {

TEST(AwpDistributed, ZfpLossRatesMatchPaperAccuracyClaim) {
  // Sec. VII-A: lower ZFP rates give more speedup but "would generate
  // incorrect output as it exceeds the lowest precision AWP-ODC can
  // tolerate". Rate 16 must track the exact result closely; rate 4 must
  // visibly distort the physics (while staying finite).
  auto energy_with = [&](core::CompressionConfig cfg) {
    sim::Engine engine;
    cfg.threshold_bytes = 4096;
    mpi::World world(engine, net::longhorn(4, 1), cfg);
    double energy = 0;
    world.run([&](mpi::Rank& R) {
      AwpConfig c;
      // Faces must exceed the eager threshold so the halo actually takes
      // the compressed rendezvous path: 20*96*4 fields*4B = ~30KB.
      c.local = {12, 20, 96};
      c.px = 2;
      c.py = 2;
      c.steps = 8;
      auto rep = apps::awp::run_awp(R, c);
      if (R.rank() == 0) energy = rep.final_energy;
    });
    return energy;
  };
  const double exact = energy_with(core::CompressionConfig::off());
  const double r16 = energy_with(core::CompressionConfig::zfp_opt(16));
  const double r4 = energy_with(core::CompressionConfig::zfp_opt(4));
  ASSERT_GT(exact, 0.0);
  const double err16 = std::fabs(r16 - exact) / exact;
  const double err4 = std::fabs(r4 - exact) / exact;
  EXPECT_LT(err16, 0.02);      // rate 16: physically faithful
  EXPECT_GT(err4, 2 * err16);  // rate 4: clearly degraded accuracy
  EXPECT_TRUE(std::isfinite(r4));
}

}  // namespace
