// Bit-level stream tests: exact round-trips through every put/get path,
// word-boundary edge cases, seeks, and a randomized property sweep.
#include <gtest/gtest.h>

#include <vector>

#include "compress/bitstream.hpp"
#include "sim/rng.hpp"

namespace {

using gcmpi::comp::BitReader;
using gcmpi::comp::BitWriter;

TEST(BitStream, SingleBits) {
  BitWriter w;
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  for (int b : pattern) w.put_bit(static_cast<std::uint32_t>(b));
  EXPECT_EQ(w.bit_size(), 9u);
  auto bytes = w.take();
  BitReader r(bytes);
  for (int b : pattern) EXPECT_EQ(r.get_bit(), static_cast<std::uint32_t>(b));
}

TEST(BitStream, MultiBitValues) {
  BitWriter w;
  w.put_bits(0x2A, 6);
  w.put_bits(0xDEADBEEF, 32);
  w.put_bits(0x1, 1);
  auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(6), 0x2Au);
  EXPECT_EQ(r.get_bits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.get_bit(), 1u);
}

TEST(BitStream, SixtyFourBitValues) {
  BitWriter w;
  w.put_bit(1);  // offset so the 64-bit value straddles words
  w.put_bits(0x0123456789ABCDEFull, 64);
  w.put_bits(0xFFFFFFFFFFFFFFFFull, 64);
  auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bit(), 1u);
  EXPECT_EQ(r.get_bits(64), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_bits(64), 0xFFFFFFFFFFFFFFFFull);
}

TEST(BitStream, WordBoundaryExactFill) {
  BitWriter w;
  w.put_bits(0xAAAAAAAAAAAAAAAAull, 64);  // exactly one word
  EXPECT_EQ(w.bit_size(), 64u);
  w.put_bits(0x5, 3);
  EXPECT_EQ(w.bit_size(), 67u);
  auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(64), 0xAAAAAAAAAAAAAAAAull);
  EXPECT_EQ(r.get_bits(3), 0x5u);
}

TEST(BitStream, HighBitsAboveCountAreMasked) {
  BitWriter w;
  w.put_bits(0xFF, 3);  // only low 3 bits should land
  w.put_bits(0, 5);
  auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(8), 0x7u);
}

TEST(BitStream, PadTo) {
  BitWriter w;
  w.put_bits(0x3, 2);
  w.pad_to(130);
  EXPECT_EQ(w.bit_size(), 130u);
  auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(2), 0x3u);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(r.get_bit(), 0u);
}

TEST(BitStream, PadToCannotShrink) {
  BitWriter w;
  w.put_bits(0xFFFF, 16);
  EXPECT_THROW(w.pad_to(8), std::invalid_argument);
}

TEST(BitStream, ReaderSeek) {
  BitWriter w;
  for (int i = 0; i < 16; ++i) w.put_bits(static_cast<std::uint64_t>(i), 8);
  auto bytes = w.take();
  BitReader r(bytes);
  r.seek(8 * 5);
  EXPECT_EQ(r.get_bits(8), 5u);
  r.seek(0);
  EXPECT_EQ(r.get_bits(8), 0u);
  EXPECT_EQ(r.tell(), 8u);
}

TEST(BitStream, ReadPastEndYieldsZeros) {
  BitWriter w;
  w.put_bits(0xFF, 8);
  auto bytes = w.take();
  BitReader r(bytes);
  r.seek(bytes.size() * 8);
  EXPECT_EQ(r.get_bits(16), 0u);
}

TEST(BitStream, RandomizedRoundTrip) {
  gcmpi::sim::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, int>> writes;
    for (int i = 0; i < 200; ++i) {
      const int n = 1 + static_cast<int>(rng.next_below(64));
      const std::uint64_t v =
          n < 64 ? (rng.next_u64() & ((1ull << n) - 1)) : rng.next_u64();
      writes.emplace_back(v, n);
      w.put_bits(v, n);
    }
    auto bytes = w.take();
    BitReader r(bytes);
    for (const auto& [v, n] : writes) {
      ASSERT_EQ(r.get_bits(n), v) << "trial " << trial;
    }
  }
}

}  // namespace
