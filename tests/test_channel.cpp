// Persistent-channel tests (mpi/channel.hpp): the RepeatHeader wire form,
// warm/cold content equivalence, the tentpole claims — zero control-plane
// round trips and zero staging acquisitions on warm iterations, for the
// serial p2p path AND the collective engines — and fault composition
// (drop/corrupt retransmits on the channel, decode faults degrade one
// message to raw while the channel stays warm).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "fault/injector.hpp"
#include "mpi/channel.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using mpi::Channel;
using mpi::ChannelKey;
using mpi::Rank;
using mpi::RepeatHeader;
using mpi::World;
using sim::Time;

TEST(RepeatHeader, SerializeDeserializeRoundTrip) {
  RepeatHeader h;
  h.channel = 42;
  h.seq = 1'000'003;
  h.wire_len = (1ull << 20) + 17;
  h.crc32c = 0xdeadbeef;
  h.flags = RepeatHeader::kCompressed;
  h.partition_bytes = {100, 200, 300};

  const auto bytes = h.serialize();
  EXPECT_EQ(bytes.size(), h.wire_bytes());
  const RepeatHeader back = RepeatHeader::deserialize(bytes);
  EXPECT_EQ(back, h);

  // A raw-degrade header with no partitions round-trips too.
  RepeatHeader raw;
  raw.channel = 7;
  raw.seq = 9;
  raw.wire_len = 4096;
  raw.flags = RepeatHeader::kRawDegrade;
  EXPECT_EQ(RepeatHeader::deserialize(raw.serialize()), raw);

  // Truncated and over-long inputs are rejected.
  auto short_bytes = bytes;
  short_bytes.pop_back();
  EXPECT_THROW((void)RepeatHeader::deserialize(short_bytes), std::invalid_argument);
  auto long_bytes = bytes;
  long_bytes.push_back(0);
  EXPECT_THROW((void)RepeatHeader::deserialize(long_bytes), std::invalid_argument);
}

TEST(RepeatHeader, ExpandRebuildsFullHeaderFromTemplate) {
  core::CompressionHeader first;
  first.algorithm = core::Algorithm::MPC;
  first.original_bytes = 1 << 20;
  first.mpc_dimensionality = 3;
  first.mpc_chunk_values = 1024;
  first.compressed = true;
  first.compressed_bytes = 123456;  // per-message field: must NOT survive
  first.payload_crc32c = 0x1111;
  const auto tmpl = mpi::make_channel_template(first, 1 << 20);
  EXPECT_EQ(tmpl.compressed_bytes, 0u);
  EXPECT_EQ(tmpl.payload_crc32c, 0u);

  RepeatHeader rep;
  rep.wire_len = 654321;
  rep.crc32c = 0x2222;
  rep.flags = RepeatHeader::kCompressed;
  rep.partition_bytes = {654321};
  const auto h = rep.expand(tmpl);
  EXPECT_TRUE(h.compressed);
  EXPECT_EQ(h.algorithm, core::Algorithm::MPC);
  EXPECT_EQ(h.original_bytes, 1u << 20);
  EXPECT_EQ(h.compressed_bytes, 654321u);
  EXPECT_EQ(h.payload_crc32c, 0x2222u);
  EXPECT_EQ(h.mpc_dimensionality, 3);

  // Raw degrade: the expanded header describes a plain raw wire.
  RepeatHeader rawrep;
  rawrep.wire_len = 1 << 20;
  rawrep.flags = RepeatHeader::kRawDegrade;
  const auto rawh = rawrep.expand(tmpl);
  EXPECT_FALSE(rawh.compressed);
  EXPECT_EQ(rawh.algorithm, core::Algorithm::None);
}

// Total staging acquisitions across every rank of a world.
std::uint64_t total_staging(World& world) {
  std::uint64_t total = 0;
  for (int r = 0; r < world.size(); ++r) {
    total += world.compression_of(r).staging_acquisitions();
  }
  return total;
}

TEST(PersistentChannel, WarmP2PSkipsHandshakeAndStaging) {
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.persistent.enabled = true;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = 1 << 16;  // 256 KiB of floats: compressible route
  const auto payload = data::smooth_field(n, 1e-4, 8);
  const int iters = 8;
  std::uint64_t control_before = 0, control_after = 0;
  std::uint64_t staging_before = 0, staging_after = 0;

  world.run([&](Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::vector<float> out(n);
    if (R.rank() == 0) std::memcpy(dev, payload.data(), n * 4);
    for (int it = 0; it < iters; ++it) {
      if (R.rank() == 0) {
        R.send(dev, n * 4, 1, 7);
      } else {
        std::memset(out.data(), 0, n * 4);
        const auto st = R.recv(out.data(), n * 4, 0, 7);
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(st.bytes, n * 4);
        // Warm iterations deliver bit-exactly what the cold one did.
        ASSERT_EQ(std::memcmp(out.data(), payload.data(), n * 4), 0) << "iter " << it;
      }
      R.barrier();
      if (R.rank() == 0) {
        if (it == 2) {
          control_before = world.fabric().control_packets();
          staging_before = total_staging(world);
        } else if (it == iters - 1) {
          control_after = world.fabric().control_packets();
          staging_after = total_staging(world);
        }
      }
    }
    R.gpu_free(dev);
  });

  // The tentpole claim: steady-state warm iterations run with ZERO
  // control-plane packets (no RTS, no CTS, refills piggyback on the
  // completion notification) and ZERO staging acquisitions (receiver
  // staging held across iterations, sender slots plan-cached).
  EXPECT_EQ(control_after, control_before);
  EXPECT_EQ(staging_after, staging_before);

  ASSERT_EQ(world.channels().size(), 1u);
  const Channel& ch = world.channels().begin()->second;
  EXPECT_EQ(ch.key, (ChannelKey{0, 1, 7, n * 4}));
  EXPECT_TRUE(ch.warm);
  EXPECT_EQ(ch.warmups, 1u);
  EXPECT_GE(ch.warm_sends, static_cast<std::uint64_t>(iters - 2));
  EXPECT_GT(ch.header_bytes_saved, 0u);
  EXPECT_GT(ch.plan_hits, 0u);
  EXPECT_EQ(ch.retransmits, 0u);
  EXPECT_EQ(ch.raw_degrades, 0u);

  // The channel's lifetime totals were flushed as one ChannelRecord.
  const auto s = telemetry.summarize();
  EXPECT_EQ(s.channels, 1u);
  EXPECT_EQ(s.channel_warmups, 1u);
  EXPECT_EQ(s.channel_warm_sends, ch.warm_sends);
  EXPECT_EQ(s.channel_header_bytes_saved, ch.header_bytes_saved);
  std::ostringstream csv;
  telemetry.write_channel_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("warm_sends"), std::string::npos);
  // Header plus one row for the single channel.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(PersistentChannel, DisabledLeavesNoTrace) {
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;  // persistent stays default-off
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);
  const std::size_t n = 1 << 16;
  const auto payload = data::smooth_field(n, 1e-4, 8);
  world.run([&](Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::vector<float> out(n);
    if (R.rank() == 0) std::memcpy(dev, payload.data(), n * 4);
    for (int it = 0; it < 3; ++it) {
      if (R.rank() == 0) {
        R.send(dev, n * 4, 1, 7);
      } else {
        (void)R.recv(out.data(), n * 4, 0, 7);
      }
    }
    R.gpu_free(dev);
  });
  EXPECT_TRUE(world.channels().empty());
  EXPECT_EQ(telemetry.summarize().channels, 0u);
}

TEST(PersistentChannel, WarmRingAllreduceZeroControlPlane) {
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.persistent.enabled = true;
  opts.collectives.algorithm = core::CollectiveAlgorithm::Ring;
  World world(engine, net::longhorn(4, 1), core::CompressionConfig::mpc_opt(), opts);
  const int P = world.size();
  const std::size_t n = 1 << 18;  // 1 MiB of floats; 256 KiB ring shards

  const int iters = 6;
  std::uint64_t control_before = 0, control_after = 0;
  std::uint64_t staging_before = 0, staging_after = 0;
  int mismatches = 0;

  world.run([&](Rank& R) {
    const auto mine =
        data::generate("msg_sppm", n, static_cast<std::uint64_t>(R.rank()) + 1);
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::memcpy(dev, mine.data(), n * 4);
    std::vector<float> cold(n), warm(n);
    for (int it = 0; it < iters; ++it) {
      R.allreduce(dev, it == 0 ? cold.data() : warm.data(), n, mpi::ReduceOp::Sum);
      if (it > 0 && std::memcmp(warm.data(), cold.data(), n * 4) != 0) ++mismatches;
      R.barrier();
      if (R.rank() == 0) {
        if (it == 2) {
          control_before = world.fabric().control_packets();
          staging_before = total_staging(world);
        } else if (it == iters - 1) {
          control_after = world.fabric().control_packets();
          staging_after = total_staging(world);
        }
      }
    }
    R.gpu_free(dev);
  });

  EXPECT_EQ(mismatches, 0);  // warm rounds reproduce the cold result bit-exactly
  EXPECT_EQ(control_after, control_before);
  EXPECT_EQ(staging_after, staging_before);

  // One wire channel per ring edge, all warm, reused across both phases
  // of every round.
  EXPECT_EQ(world.channels().size(), static_cast<std::size_t>(P));
  for (const auto& [key, ch] : world.channels()) {
    EXPECT_EQ(key.tag_class, mpi::kWireTagClass);
    EXPECT_TRUE(ch.warm);
    EXPECT_GT(ch.warm_sends, 0u);
  }
}

TEST(PersistentChannel, WarmBatchedAlltoallZeroControlPlane) {
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.persistent.enabled = true;
  opts.collectives.alltoall_algorithm = core::CollectiveAlgorithm::BatchedPairwise;
  World world(engine, net::longhorn(4, 1), core::CompressionConfig::mpc_opt(), opts);
  const int P = world.size();
  const std::size_t bn = 1 << 17;  // 512 KiB per-destination blocks

  // Every rank's send slab is globally known so each receiver can check
  // its assembled result against the host-computed expectation.
  std::vector<std::vector<float>> slabs;
  for (int r = 0; r < P; ++r) {
    slabs.push_back(data::generate("msg_sweep3d", bn * static_cast<std::size_t>(P),
                                   static_cast<std::uint64_t>(r) + 100));
  }

  const int rounds = 5;
  std::uint64_t control_before = 0, control_after = 0;
  std::uint64_t staging_before = 0, staging_after = 0;
  int mismatches = 0;

  world.run([&](Rank& R) {
    const int me = R.rank();
    const std::size_t slab = bn * static_cast<std::size_t>(P);
    auto* send = static_cast<float*>(R.gpu_malloc(slab * 4));
    auto* recv = static_cast<float*>(R.gpu_malloc(slab * 4));
    std::memcpy(send, slabs[static_cast<std::size_t>(me)].data(), slab * 4);
    for (int round = 0; round < rounds; ++round) {
      std::memset(recv, 0, slab * 4);
      R.alltoall(send, bn * 4, recv);
      for (int s = 0; s < P; ++s) {
        const float* expect =
            slabs[static_cast<std::size_t>(s)].data() + static_cast<std::size_t>(me) * bn;
        if (std::memcmp(recv + static_cast<std::size_t>(s) * bn, expect, bn * 4) != 0) {
          ++mismatches;
        }
      }
      R.barrier();
      if (me == 0) {
        if (round == 2) {
          control_before = world.fabric().control_packets();
          staging_before = total_staging(world);
        } else if (round == rounds - 1) {
          control_after = world.fabric().control_packets();
          staging_after = total_staging(world);
        }
      }
    }
    R.gpu_free(send);
    R.gpu_free(recv);
  });

  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(control_after, control_before);
  EXPECT_EQ(staging_after, staging_before);
  // One channel per ordered rank pair, all riding the wire tag class.
  EXPECT_EQ(world.channels().size(), static_cast<std::size_t>(P * (P - 1)));
  for (const auto& [key, ch] : world.channels()) {
    EXPECT_EQ(key.tag_class, mpi::kWireTagClass);
    EXPECT_TRUE(ch.warm);
  }
}

TEST(PersistentChannel, LossyWireRetransmitsOnChannelWithoutTeardown) {
  // Drops and corruptions on warm payloads recover with a per-message
  // NACK/watchdog re-push on the channel — no RTS/CTS renegotiation, no
  // teardown — and every message still lands bit-exactly.
  fault::FaultInjector injector(fault::FaultPlan::lossy(20260809, 0.2, 0.2));
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  opts.telemetry = &telemetry;
  opts.persistent.enabled = true;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = 1 << 16;
  const auto payload = data::smooth_field(n, 1e-4, 8);
  const int iters = 16;
  world.run([&](Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::vector<float> out(n);
    if (R.rank() == 0) std::memcpy(dev, payload.data(), n * 4);
    for (int it = 0; it < iters; ++it) {
      if (R.rank() == 0) {
        R.send(dev, n * 4, 1, 3);
      } else {
        std::memset(out.data(), 0, n * 4);
        const auto st = R.recv(out.data(), n * 4, 0, 3);
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(std::memcmp(out.data(), payload.data(), n * 4), 0) << "iter " << it;
      }
    }
    R.gpu_free(dev);
  });

  const auto& fs = injector.stats();
  EXPECT_GT(fs.drops + fs.corruptions, 0u);  // the seed actually misbehaved
  ASSERT_EQ(world.channels().size(), 1u);
  const Channel& ch = world.channels().begin()->second;
  EXPECT_TRUE(ch.warm);  // recoveries never tore the channel down
  EXPECT_GT(ch.warm_sends, 0u);
  EXPECT_GT(ch.retransmits, 0u);
  EXPECT_EQ(telemetry.summarize().channel_retransmits, ch.retransmits);
}

TEST(PersistentChannel, DecodeFaultDegradesOneMessageKeepsChannelWarm) {
  // Every decompression faults: each warm message degrades to a raw
  // resend (NACK -> sender re-pushes the original bytes), the channel
  // stays warm, and delivery is still bit-exact.
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.decompress_fail_probability = 1.0;
  fault::FaultInjector injector(plan);
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  opts.persistent.enabled = true;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = 1 << 16;
  const auto payload = data::smooth_field(n, 1e-4, 8);
  const int iters = 6;
  world.run([&](Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    std::vector<float> out(n);
    if (R.rank() == 0) std::memcpy(dev, payload.data(), n * 4);
    for (int it = 0; it < iters; ++it) {
      if (R.rank() == 0) {
        R.send(dev, n * 4, 1, 5);
      } else {
        std::memset(out.data(), 0, n * 4);
        const auto st = R.recv(out.data(), n * 4, 0, 5);
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(std::memcmp(out.data(), payload.data(), n * 4), 0) << "iter " << it;
      }
    }
    R.gpu_free(dev);
  });

  ASSERT_EQ(world.channels().size(), 1u);
  const Channel& ch = world.channels().begin()->second;
  EXPECT_TRUE(ch.warm);
  EXPECT_GT(ch.warm_sends, 0u);
  EXPECT_GT(ch.raw_degrades, 0u);
}

}  // namespace
