// Chaos integration tests: full MiniMPI traffic over a deterministic
// lossy/corrupting fabric with injected codec faults. The reliability
// contract under test: every message is either delivered bit-exactly
// (whatever it took — CRC-triggered NACKs, drop timeouts, raw-resend
// degradation) or completes with a clean RetryLimit error status. No
// hangs, no silent corruption, bounded retries.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/telemetry.hpp"
#include "data/datasets.hpp"
#include "fault/injector.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using mpi::Rank;
using mpi::StatusError;
using mpi::World;
using sim::Time;

TEST(Chaos, LossyWirePt2PtSweepDeliversBitExact) {
  // Fig. 9-style pt2pt sweep (several sizes, both directions) but over a
  // fabric that drops 5% and corrupts 5% of the rendezvous data packets.
  fault::FaultInjector injector(fault::FaultPlan::lossy(20260806, 0.05, 0.05));
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  opts.telemetry = &telemetry;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t sizes[] = {16384, 65536, 262144};  // floats: 64 KB .. 1 MB
  const int iters = 8;
  int messages = 0;

  world.run([&](Rank& R) {
    const int peer = 1 - R.rank();
    for (const std::size_t n : sizes) {
      const auto payload =
          data::generate("msg_sppm", n, /*seed=*/n ^ 0x9e37);
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      std::memcpy(dev, payload.data(), n * 4);
      std::vector<float> rbuf(n);
      for (int it = 0; it < iters; ++it) {
        // Rank 0 sends on even iterations, rank 1 on odd ones.
        const bool sender = (it % 2 == 0) == (R.rank() == 0);
        if (sender) {
          R.send(dev, n * 4, peer, static_cast<int>(n % 1000) + it);
          ++messages;
        } else {
          std::memset(rbuf.data(), 0, n * 4);
          const auto st =
              R.recv(rbuf.data(), n * 4, peer, static_cast<int>(n % 1000) + it);
          ASSERT_TRUE(st.ok());
          ASSERT_EQ(st.bytes, n * 4);
          ASSERT_EQ(std::memcmp(rbuf.data(), payload.data(), n * 4), 0)
              << "size " << n << " iter " << it;
        }
      }
      R.gpu_free(dev);
    }
  });

  // The chosen seed makes the fabric actually misbehave...
  const auto& fs = injector.stats();
  EXPECT_GT(fs.drops + fs.corruptions, 0u);
  // ...and every fault was recovered by a bounded number of re-pushes.
  const auto summary = telemetry.summarize();
  EXPECT_GT(summary.retransmits, 0u);
  EXPECT_LE(summary.retransmits, fs.data_packets);
  EXPECT_EQ(summary.corruptions_detected, fs.corruptions);
}

TEST(Chaos, CollectivesUnderLossAndCorruption) {
  // Binomial-tree bcast + ring allgather (the compression-aware wire
  // forms) on real dataset payloads over a 3%/3% lossy fabric: every rank
  // must end with bit-identical data.
  fault::FaultInjector injector(fault::FaultPlan::lossy(777, 0.03, 0.03));
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  World world(engine, net::longhorn(2, 2), core::CompressionConfig::mpc_opt(), opts);
  const int P = world.size();

  const std::size_t n = 65536;  // 256 KB, well past the eager threshold
  const auto truth = data::generate("msg_sweep3d", n, 3);
  const std::size_t block = 16384;
  std::vector<std::vector<float>> gathered(static_cast<std::size_t>(P));

  world.run([&](Rank& R) {
    const int me = R.rank();
    // bcast from rank 0 out of device memory (compressed per hop).
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    if (me == 0) std::memcpy(dev, truth.data(), n * 4);
    R.bcast(dev, n * 4, 0);
    ASSERT_EQ(std::memcmp(dev, truth.data(), n * 4), 0) << "bcast diverged on rank " << me;

    // allgather of per-rank blocks (slices of the broadcast data).
    auto* sendblk = static_cast<float*>(R.gpu_malloc(block * 4));
    std::memcpy(sendblk, truth.data() + static_cast<std::size_t>(me) * block, block * 4);
    auto& all = gathered[static_cast<std::size_t>(me)];
    all.resize(block * static_cast<std::size_t>(P));
    R.allgather(sendblk, block * 4, all.data());
    R.gpu_free(sendblk);
    R.gpu_free(dev);
  });

  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(std::memcmp(gathered[static_cast<std::size_t>(r)].data(), truth.data(),
                          block * static_cast<std::size_t>(P) * 4),
              0)
        << "allgather diverged on rank " << r;
  }
  EXPECT_GT(injector.stats().data_packets, 0u);
}

TEST(Chaos, RingAllreduceUnderLossIsBitExactWithAccountedRetransmits) {
  // The collective engine's ring allreduce over a 4%/4% lossy fabric: every
  // hop is an independently CRC-verified rendezvous transfer, so a dropped
  // or corrupted hop re-pushes only its own chunk. The result must match
  // the fault-free run bit-for-bit AND the host oracle, and the fabric
  // accounting must close: every rendezvous data push is either one of the
  // ring's scheduled hops or a retransmission of one.
  const int nodes = 2, gpn = 2;
  const int P = nodes * gpn;
  const std::size_t n = 65536;  // 256 KB => 64 KB shards, all past threshold
  auto contribution = [n](int rank) {
    return data::generate("msg_sppm", n, 40 + static_cast<std::uint64_t>(rank));
  };

  auto run_ring = [&](fault::FaultInjector* injector, core::Telemetry* telemetry) {
    sim::Engine engine;
    mpi::WorldOptions opts;
    opts.fault = injector;
    opts.telemetry = telemetry;
    opts.collectives.algorithm = core::CollectiveAlgorithm::Ring;
    auto cfg = core::CompressionConfig::mpc_opt();
    cfg.threshold_bytes = 8 * 1024;
    World world(engine, net::longhorn(nodes, gpn), cfg, opts);
    std::vector<std::vector<float>> outs(static_cast<std::size_t>(P));
    world.run([&](Rank& R) {
      const auto mine = contribution(R.rank());
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      std::memcpy(dev, mine.data(), n * 4);
      auto& out = outs[static_cast<std::size_t>(R.rank())];
      out.resize(n);
      R.allreduce(dev, out.data(), n, mpi::ReduceOp::Sum);
      R.gpu_free(dev);
    });
    return outs;
  };

  const auto clean = run_ring(nullptr, nullptr);

  fault::FaultInjector injector(fault::FaultPlan::lossy(0xC4A05, 0.04, 0.04));
  core::Telemetry telemetry;
  const auto lossy = run_ring(&injector, &telemetry);

  std::vector<std::vector<float>> contribs;
  for (int r = 0; r < P; ++r) contribs.push_back(contribution(r));
  const auto oracle = core::allreduce_oracle(contribs, core::ReduceOp::Sum,
                                             core::CollectiveAlgorithm::Ring);
  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(std::memcmp(lossy[static_cast<std::size_t>(r)].data(),
                          clean[static_cast<std::size_t>(r)].data(), n * 4),
              0)
        << "lossy run diverged from fault-free run on rank " << r;
    ASSERT_EQ(std::memcmp(lossy[static_cast<std::size_t>(r)].data(), oracle.data(), n * 4),
              0)
        << "lossy run diverged from the oracle on rank " << r;
  }

  // Accounting closure: the ring schedules 2*P*(P-1) non-empty shard hops
  // (P-1 reduce-scatter + P-1 allgather steps, P senders each, every shard
  // non-empty at this size); each is one rendezvous data push, plus one
  // push per retransmission. The plan corrupts only data packets (never
  // decompress kernels), so no local-retry path muddies the count.
  const auto& fs = injector.stats();
  const auto summary = telemetry.summarize();
  const std::uint64_t hops = 2ull * P * (P - 1);
  EXPECT_EQ(fs.data_packets, hops + summary.retransmits);
  EXPECT_GT(summary.retransmits, 0u) << "fault plan never fired; chaos path untested";
  EXPECT_GT(fs.drops + fs.corruptions, 0u);
}

TEST(Chaos, BatchedAlltoallUnderLossIsBitExactWithAccountedRetransmits) {
  // The batched alltoall engine over a 4%/4% lossy fabric: every slab
  // slice is its own CRC-verified rendezvous transfer, so a dropped or
  // corrupted slice re-pushes only itself while the other P-2 in-flight
  // slices are untouched. The lossy run must match the fault-free run
  // bit-for-bit, and the packet accounting must close: P*(P-1) scheduled
  // slices plus one push per retransmission.
  const int nodes = 2, gpn = 2;
  const int P = nodes * gpn;
  const std::size_t bn = 65536;  // floats per destination block: 256 KB slices
  auto block = [bn](int src, int dst) {
    return data::generate("msg_sppm", bn,
                          90 + static_cast<std::uint64_t>(src) * 17u +
                              static_cast<std::uint64_t>(dst));
  };

  auto run_alltoall = [&](fault::FaultInjector* injector, core::Telemetry* telemetry) {
    sim::Engine engine;
    mpi::WorldOptions opts;
    opts.fault = injector;
    opts.telemetry = telemetry;
    opts.collectives.alltoall_algorithm = core::CollectiveAlgorithm::BatchedPairwise;
    auto cfg = core::CompressionConfig::mpc_opt();
    cfg.threshold_bytes = 8 * 1024;
    World world(engine, net::longhorn(nodes, gpn), cfg, opts);
    std::vector<std::vector<float>> outs(static_cast<std::size_t>(P));
    world.run([&](Rank& R) {
      auto* send =
          static_cast<float*>(R.gpu_malloc(bn * 4 * static_cast<std::size_t>(P)));
      for (int d = 0; d < P; ++d) {
        const auto b = block(R.rank(), d);
        std::memcpy(send + static_cast<std::size_t>(d) * bn, b.data(), bn * 4);
      }
      auto& out = outs[static_cast<std::size_t>(R.rank())];
      out.assign(bn * static_cast<std::size_t>(P), -1.0f);
      R.alltoall(send, bn * 4, out.data());
      R.gpu_free(send);
    });
    return outs;
  };

  const auto clean = run_alltoall(nullptr, nullptr);

  fault::FaultInjector injector(fault::FaultPlan::lossy(0xA77A11, 0.04, 0.04));
  core::Telemetry telemetry;
  const auto lossy = run_alltoall(&injector, &telemetry);

  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(std::memcmp(lossy[static_cast<std::size_t>(r)].data(),
                          clean[static_cast<std::size_t>(r)].data(),
                          bn * 4 * static_cast<std::size_t>(P)),
              0)
        << "lossy alltoall diverged from fault-free run on rank " << r;
    for (int s = 0; s < P; ++s) {
      const auto expect = block(s, r);
      ASSERT_EQ(std::memcmp(lossy[static_cast<std::size_t>(r)].data() +
                                static_cast<std::size_t>(s) * bn,
                            expect.data(), bn * 4),
                0)
          << "rank " << r << " block from " << s << " corrupted";
    }
  }

  // Accounting closure: the scattered schedule moves exactly P*(P-1)
  // slices, each one rendezvous data push; the plan touches only data
  // packets, so every extra push is an accounted retransmission.
  const auto& fs = injector.stats();
  const auto summary = telemetry.summarize();
  const std::uint64_t scheduled = static_cast<std::uint64_t>(P) * (P - 1);
  EXPECT_EQ(fs.data_packets, scheduled + summary.retransmits);
  EXPECT_GT(summary.retransmits, 0u) << "fault plan never fired; chaos path untested";
  EXPECT_GT(fs.drops + fs.corruptions, 0u);
}

TEST(Chaos, HierarchicalBcastUnderLossIsBitExactWithTransitBudget) {
  // The hierarchical bcast (one inter-node wire transit per node, see
  // src/mpi/hier_engine.cpp) on 4 nodes x 4 GPUs over a 4%/4% lossy
  // fabric. Three rounds from different roots (a non-leader, a leader,
  // one on the last node) must deliver bit-exactly, and the split
  // inter-node accounting must close: the representative tree has exactly
  // nodes-1 IB edges per round and each edge needs exactly one SUCCESSFUL
  // delivery, so every extra inter-node push is an accounted drop or a
  // CRC-caught corruption (the two verdicts are exclusive per packet).
  const int nodes = 4, gpn = 4;
  const int P = nodes * gpn;
  const std::size_t n = 65536;  // 256 KB: rendezvous wire transits
  const int roots[] = {1, 4, 13};
  auto payload = [n](int round) {
    return data::generate("msg_sppm", n, 60 + static_cast<std::uint64_t>(round));
  };

  auto run_bcasts = [&](fault::FaultInjector* injector, core::Telemetry* telemetry) {
    sim::Engine engine;
    mpi::WorldOptions opts;
    opts.fault = injector;
    opts.telemetry = telemetry;
    opts.collectives.bcast_algorithm = core::CollectiveAlgorithm::Hierarchical;
    World world(engine, net::longhorn(nodes, gpn), core::CompressionConfig::mpc_opt(),
                opts);
    std::vector<std::vector<float>> outs(static_cast<std::size_t>(P));
    world.run([&](Rank& R) {
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      auto& out = outs[static_cast<std::size_t>(R.rank())];
      out.resize(n * 3);
      for (int round = 0; round < 3; ++round) {
        const auto truth = payload(round);
        if (R.rank() == roots[round]) {
          std::memcpy(dev, truth.data(), n * 4);
        } else {
          std::memset(dev, 0, n * 4);
        }
        R.bcast(dev, n * 4, roots[round]);
        std::memcpy(out.data() + static_cast<std::size_t>(round) * n, dev, n * 4);
      }
      R.gpu_free(dev);
    });
    return outs;
  };

  const auto clean = run_bcasts(nullptr, nullptr);

  fault::FaultInjector injector(fault::FaultPlan::lossy(0xB0A57C, 0.04, 0.04));
  core::Telemetry telemetry;
  const auto lossy = run_bcasts(&injector, &telemetry);

  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(std::memcmp(lossy[static_cast<std::size_t>(r)].data(),
                          clean[static_cast<std::size_t>(r)].data(), n * 3 * 4),
              0)
        << "lossy hierarchical bcast diverged from fault-free run on rank " << r;
    for (int round = 0; round < 3; ++round) {
      const auto truth = payload(round);
      ASSERT_EQ(std::memcmp(lossy[static_cast<std::size_t>(r)].data() +
                                static_cast<std::size_t>(round) * n,
                            truth.data(), n * 4),
                0)
          << "rank " << r << " round " << round << " corrupted";
    }
  }

  const auto& fs = injector.stats();
  EXPECT_EQ(fs.inter_node_data_packets,
            3ull * (nodes - 1) + fs.inter_node_drops + fs.inter_node_corruptions);
  EXPECT_GT(fs.inter_node_drops + fs.inter_node_corruptions, 0u)
      << "fault plan never hit an IB transit; budget accounting untested";
  EXPECT_GT(telemetry.summarize().retransmits, 0u);
}

TEST(Chaos, RetryLimitCompletesWithCleanErrorStatus) {
  // A black-hole link (100% drop) must not hang: after max_data_retries
  // re-pushes both sides complete with StatusError::RetryLimit.
  fault::FaultInjector injector(fault::FaultPlan::lossy(5, 1.0, 0.0));
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  opts.telemetry = &telemetry;
  opts.max_data_retries = 4;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::off(), opts);

  const std::size_t n = 262144;  // 1 MB: rendezvous
  mpi::Status send_status, recv_status;
  world.run([&](Rank& R) {
    std::vector<float> buf(n, 1.0f);
    if (R.rank() == 0) {
      auto req = R.isend(buf.data(), n * 4, 1, 9);
      send_status = R.wait(req);
    } else {
      auto req = R.irecv(buf.data(), n * 4, 0, 9);
      recv_status = R.wait(req);
    }
  });

  EXPECT_EQ(send_status.error, StatusError::RetryLimit);
  EXPECT_EQ(recv_status.error, StatusError::RetryLimit);
  EXPECT_FALSE(send_status.ok());
  EXPECT_EQ(recv_status.bytes, 0u);
  // 1 initial push + max_data_retries re-pushes, not one more.
  EXPECT_EQ(injector.stats().drops, 5u);
  EXPECT_EQ(telemetry.summarize().retransmits, 4u);
}

TEST(Chaos, CompressionKernelFaultsDegradeToRaw) {
  // Every compression kernel launch fails: all rendezvous messages fall
  // back to raw sends, delivery stays bit-exact, telemetry records the
  // faults.
  fault::FaultInjector injector(fault::FaultPlan::flaky_codec(11, 1.0));
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  opts.telemetry = &telemetry;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = 65536;
  const auto payload = data::generate("obs_error", n, 4);
  world.run([&](Rank& R) {
    if (R.rank() == 0) {
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      std::memcpy(dev, payload.data(), n * 4);
      for (int i = 0; i < 4; ++i) R.send(dev, n * 4, 1, i);
      R.gpu_free(dev);
    } else {
      std::vector<float> rbuf(n);
      for (int i = 0; i < 4; ++i) {
        const auto st = R.recv(rbuf.data(), n * 4, 0, i);
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(std::memcmp(rbuf.data(), payload.data(), n * 4), 0);
      }
    }
  });

  const auto summary = telemetry.summarize();
  EXPECT_EQ(summary.codec_faults, 4u);
  EXPECT_EQ(summary.compressions, 0u);  // no kernel ever succeeded
  EXPECT_EQ(world.compression_of(0).stats().codec_faults, 4u);
  EXPECT_EQ(world.compression_of(0).stats().messages_fallback_raw, 4u);
}

TEST(Chaos, DecompressionFaultsTriggerRawResend) {
  // The receiver's decompression kernel always fails. Protocol-level
  // recovery: NACK(decode_fail) -> the sender re-pushes the original user
  // buffer raw -> delivery completes bit-exactly without decompression.
  fault::FaultPlan plan;
  plan.seed = 13;
  plan.decompress_fail_probability = 1.0;
  fault::FaultInjector injector(plan);
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  opts.telemetry = &telemetry;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::mpc_opt(), opts);

  const std::size_t n = 65536;
  const auto payload = data::generate("msg_sppm", n, 8);
  world.run([&](Rank& R) {
    if (R.rank() == 0) {
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      std::memcpy(dev, payload.data(), n * 4);
      R.send(dev, n * 4, 1, 1);
      R.gpu_free(dev);
    } else {
      std::vector<float> rbuf(n);
      const auto st = R.recv(rbuf.data(), n * 4, 0, 1);
      ASSERT_TRUE(st.ok());
      ASSERT_EQ(std::memcmp(rbuf.data(), payload.data(), n * 4), 0);
    }
  });

  const auto summary = telemetry.summarize();
  EXPECT_EQ(summary.codec_faults, 1u);   // one failed decompress attempt
  EXPECT_EQ(summary.retransmits, 1u);    // one decode_fail NACK -> raw resend
  EXPECT_EQ(injector.stats().decompress_faults, 1u);
}

TEST(Chaos, NicFlapWindowDefersDelivery) {
  // Node 0's NIC is down for the first 2 ms: a rendezvous payload sent at
  // t~0 cannot complete before the window closes.
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.windows.push_back(
      fault::LinkFaultWindow{0, Time::zero(), Time::ms(2), 1.0, true});
  fault::FaultInjector injector(plan);
  sim::Engine engine;
  mpi::WorldOptions opts;
  opts.fault = &injector;
  World world(engine, net::longhorn(2, 1), core::CompressionConfig::off(), opts);

  const std::size_t n = 65536;
  Time recv_done = Time::zero();
  world.run([&](Rank& R) {
    std::vector<float> buf(n, 2.0f);
    if (R.rank() == 0) {
      R.send(buf.data(), n * 4, 1, 0);
    } else {
      R.recv(buf.data(), n * 4, 0, 0);
      recv_done = R.now();
      EXPECT_EQ(buf[0], 2.0f);
    }
  });
  EXPECT_GE(recv_done, Time::ms(2));
  EXPECT_GT(injector.stats().stalls, 0u);
}

}  // namespace
