// Exhaustive collective conformance matrix: allreduce/reduce_scatter swept
// over op x message size x rank count x codec x pipeline x algorithm,
// validated against the host-side canonical-order oracle
// (core::allreduce_oracle). Lossless codecs (raw, MPC) must reproduce the
// oracle BIT-exactly; ZFP is lossy per hop, so ring results are compared
// within a P-scaled tolerance of the oracle on smooth payloads.
//
// The FPC codec is double-precision and has no manager-level wire
// algorithm, so its fused-reduce conformance lives at the codec level in
// tests/test_fuzz_reduce.cpp.
//
// The full cross product would be ~1800 worlds; this suite runs a curated
// ~90-world cover: every dimension is swept fully against a fixed setting
// of the others, plus the interesting interactions (multi-chunk pipeline,
// Auto selection crossover). Labeled `collectives` in ctest (see
// tests/CMakeLists.txt); CI runs `ctest -L collectives` as its own step.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/collective.hpp"
#include "core/dynamic.hpp"
#include "fault/injector.hpp"
#include "gpu/cost_model.hpp"
#include "mpi/world.hpp"
#include "support/payloads.hpp"

namespace {

using namespace gcmpi;
using core::CollectiveAlgorithm;
using gcmpi::testing::make_floats;
using gcmpi::testing::PayloadKind;
using mpi::Rank;
using mpi::ReduceOp;
using mpi::World;

enum class Codec { Raw, Mpc, Zfp };

struct MatrixCase {
  int nodes = 2;
  int gpus_per_node = 1;
  std::size_t n = 1024;         // floats per rank
  ReduceOp op = ReduceOp::Sum;
  Codec codec = Codec::Raw;
  CollectiveAlgorithm algorithm = CollectiveAlgorithm::Ring;
  bool pipeline = false;
};

std::string describe(const MatrixCase& c) {
  std::string s = "P=" + std::to_string(c.nodes * c.gpus_per_node) + "(" +
                  std::to_string(c.nodes) + "x" + std::to_string(c.gpus_per_node) +
                  ") n=" + std::to_string(c.n) + " op=" + core::reduce_op_name(c.op) +
                  " codec=";
  s += c.codec == Codec::Raw ? "raw" : c.codec == Codec::Mpc ? "mpc" : "zfp";
  s += std::string(" algo=") + core::collective_algorithm_name(c.algorithm);
  if (c.pipeline) s += " pipeline";
  return s;
}

core::CompressionConfig config_for(const MatrixCase& c) {
  core::CompressionConfig cfg;
  switch (c.codec) {
    case Codec::Raw: cfg = core::CompressionConfig::off(); break;
    case Codec::Mpc: cfg = core::CompressionConfig::mpc_opt(); break;
    case Codec::Zfp: cfg = core::CompressionConfig::zfp_opt(16); break;
  }
  // Ring shards are n/P-sized: lower the threshold so moderate matrix
  // sizes actually exercise the compressed hop path.
  cfg.threshold_bytes = 4 * 1024;
  return cfg;
}

/// Per-rank contribution: deterministic in (rank, size). SmoothField keeps
/// ZFP's per-hop error small and makes float summation association-
/// sensitive, so any non-canonical fold order diverges bit-wise.
std::vector<float> contribution(int rank, std::size_t n) {
  return make_floats(PayloadKind::SmoothField, n,
                     0x5EEDu + static_cast<std::uint64_t>(rank));
}

struct RunResult {
  std::vector<std::vector<float>> outputs;  // per-rank allreduce result
  bool used_engine = false;                 // any CollectiveRecord emitted?
};

RunResult run_allreduce(const MatrixCase& c) {
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.collectives.algorithm = c.algorithm;
  opts.pipeline.enabled = c.pipeline;
  opts.pipeline.min_bytes = 256 * 1024;
  World world(engine, net::longhorn(c.nodes, c.gpus_per_node), config_for(c), opts);
  const int P = world.size();

  RunResult res;
  res.outputs.assign(static_cast<std::size_t>(P), {});
  world.run([&](Rank& R) {
    const auto mine = contribution(R.rank(), c.n);
    auto* dev = static_cast<float*>(R.gpu_malloc(c.n * 4 + 4));
    std::memcpy(dev, mine.data(), c.n * 4);
    std::vector<float>& out = res.outputs[static_cast<std::size_t>(R.rank())];
    out.resize(c.n);
    R.allreduce(dev, out.data(), c.n, c.op);
    R.gpu_free(dev);
  });
  res.used_engine = !telemetry.collectives().empty();
  return res;
}

class CollectiveMatrix : public ::testing::Test {
 protected:
  void check(const MatrixCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    const auto res = run_allreduce(c);

    // Resolve what the world actually ran (Auto goes through the same
    // policy function the dispatcher uses).
    core::CollectiveTuning tuning;
    tuning.algorithm = c.algorithm;
    const auto resolved = core::resolve_allreduce_algorithm(
        tuning, c.n * 4, P, c.nodes, c.gpus_per_node);

    std::vector<std::vector<float>> contribs;
    for (int r = 0; r < P; ++r) contribs.push_back(contribution(r, c.n));
    const auto oracle =
        core::allreduce_oracle(contribs, c.op, resolved, c.gpus_per_node);

    for (int r = 0; r < P; ++r) {
      const auto& got = res.outputs[static_cast<std::size_t>(r)];
      ASSERT_EQ(got.size(), oracle.size()) << describe(c);
      if (c.codec != Codec::Zfp) {
        ASSERT_EQ(std::memcmp(got.data(), oracle.data(), c.n * 4), 0)
            << describe(c) << " rank " << r << ": engine diverged from the oracle";
      } else {
        // ZFP is lossy per hop; errors accumulate over O(P) hops. Smooth
        // payloads at rate 16 stay well within this envelope.
        for (std::size_t i = 0; i < c.n; ++i) {
          ASSERT_NEAR(got[i], oracle[i], 0.05 * static_cast<double>(P))
              << describe(c) << " rank " << r << " index " << i;
        }
      }
    }

    // With lossless codecs every rank must agree bit-wise with rank 0: the
    // allgather phase forwards one wire form per shard. ZFP is exempt — the
    // shard owner keeps its exact reduced values while the other ranks hold
    // the lossy decode of the forwarded wire form.
    for (int r = 1; c.codec != Codec::Zfp && r < P; ++r) {
      ASSERT_EQ(std::memcmp(res.outputs[0].data(),
                            res.outputs[static_cast<std::size_t>(r)].data(), c.n * 4),
                0)
          << describe(c) << ": ranks 0 and " << r << " disagree";
    }

    // Telemetry cross-check: engine algorithms emit CollectiveRecords, the
    // legacy linear path stays silent (dump compatibility).
    if (P > 1 && c.n > 0) {
      EXPECT_EQ(res.used_engine, resolved != CollectiveAlgorithm::Linear)
          << describe(c);
    }
  }
};

// --- dimension sweeps (each against a fixed default of the others) ---

TEST_F(CollectiveMatrix, OpsSweep) {
  for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min}) {
    for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Ring,
                      CollectiveAlgorithm::Hierarchical}) {
      MatrixCase c;
      c.nodes = 4;
      c.gpus_per_node = 2;
      c.n = 16411;  // odd, 64KiB-unaligned
      c.op = op;
      c.codec = Codec::Mpc;
      c.algorithm = algo;
      check(c);
    }
  }
}

TEST_F(CollectiveMatrix, SizeAndRankSweep) {
  const std::size_t sizes[] = {0, 1, 7, 16411};
  const std::pair<int, int> topos[] = {{1, 1}, {2, 1}, {3, 1}, {4, 2}, {3, 2}};
  for (std::size_t n : sizes) {
    for (auto [nodes, gpn] : topos) {
      for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Ring,
                        CollectiveAlgorithm::Hierarchical}) {
        MatrixCase c;
        c.nodes = nodes;
        c.gpus_per_node = gpn;
        c.n = n;
        c.codec = Codec::Mpc;
        c.algorithm = algo;
        check(c);
      }
    }
  }
}

TEST_F(CollectiveMatrix, CodecSweep) {
  for (Codec codec : {Codec::Raw, Codec::Mpc, Codec::Zfp}) {
    for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Ring,
                      CollectiveAlgorithm::Hierarchical}) {
      MatrixCase c;
      c.nodes = 4;
      c.gpus_per_node = 2;
      c.n = 16411;
      c.codec = codec;
      c.algorithm = algo;
      if (codec == Codec::Zfp && algo == CollectiveAlgorithm::Linear) {
        // The linear path moves host accumulators (never compressed), so
        // ZFP-vs-oracle equality is trivially exact there.
        continue;
      }
      check(c);
    }
  }
}

TEST_F(CollectiveMatrix, PipelineOnMultiChunk) {
  // Multi-chunk sizes with the PR-4 pipeline enabled: the ring engine's
  // wire hops coexist with pipelined point-to-point traffic inside the
  // same world options.
  for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Ring,
                    CollectiveAlgorithm::Hierarchical}) {
    MatrixCase c;
    c.nodes = 2;
    c.gpus_per_node = 2;
    c.n = 300000;  // ~1.2 MB: multiple pipeline chunks on the linear path
    c.codec = Codec::Mpc;
    c.algorithm = algo;
    c.pipeline = true;
    check(c);
  }
}

TEST_F(CollectiveMatrix, AutoSelectionCrossover) {
  // Auto must route small vectors to Linear and large ones (>= the 4 MiB
  // ring floor: the last size is 2^21 floats = 8 MiB) to the engine;
  // conformance holds on both sides of the threshold.
  for (std::size_t n : {std::size_t{1}, std::size_t{16411}, std::size_t{1} << 21}) {
    MatrixCase c;
    c.nodes = 4;
    c.gpus_per_node = 2;
    c.n = n;
    c.codec = Codec::Mpc;
    c.algorithm = CollectiveAlgorithm::Auto;
    check(c);
  }
}

// --- reduce_scatter conformance ---

TEST(ReduceScatterMatrix, RingMatchesOracleShards) {
  const std::pair<int, int> topos[] = {{4, 2}, {3, 1}};
  const std::size_t counts[] = {0, 1, 521};
  for (auto [nodes, gpn] : topos) {
    for (std::size_t recvcount : counts) {
      for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max}) {
        const int P = nodes * gpn;
        const std::size_t n = recvcount * static_cast<std::size_t>(P);
        sim::Engine engine;
        mpi::WorldOptions opts;
        opts.collectives.algorithm = CollectiveAlgorithm::Ring;
        World world(engine, net::longhorn(nodes, gpn),
                    core::CompressionConfig::mpc_opt(), opts);

        std::vector<std::vector<float>> outputs(static_cast<std::size_t>(P));
        world.run([&](Rank& R) {
          const auto mine = contribution(R.rank(), n);
          auto& out = outputs[static_cast<std::size_t>(R.rank())];
          out.assign(recvcount, -1.0f);
          R.reduce_scatter(mine.data(), out.data(), recvcount, op);
        });

        std::vector<std::vector<float>> contribs;
        for (int r = 0; r < P; ++r) contribs.push_back(contribution(r, n));
        // A ring allreduce's shard r IS the reduce-scatter result at rank
        // r: the allgather phase only copies shards around.
        const auto oracle =
            core::allreduce_oracle(contribs, op, CollectiveAlgorithm::Ring, gpn);
        for (int r = 0; r < P; ++r) {
          const auto [lo, hi] = core::shard_range(n, P, r);
          ASSERT_EQ(hi - lo, recvcount);
          ASSERT_EQ(std::memcmp(outputs[static_cast<std::size_t>(r)].data(),
                                oracle.data() + lo, recvcount * 4),
                    0)
              << "P=" << P << " recvcount=" << recvcount << " rank " << r;
        }
      }
    }
  }
}

TEST(ReduceScatterMatrix, LinearFallbackMatchesCommutativeOracle) {
  // Small vectors resolve to the reduce+scatter composition; integer-valued
  // payloads make any fold order exact, so compare against the naive sum.
  const int nodes = 3, gpn = 1, P = 3;
  const std::size_t recvcount = 8;
  const std::size_t n = recvcount * P;
  sim::Engine engine;
  World world(engine, net::longhorn(nodes, gpn), core::CompressionConfig::off());
  std::vector<std::vector<float>> outputs(static_cast<std::size_t>(P));
  world.run([&](Rank& R) {
    std::vector<float> mine(n);
    for (std::size_t i = 0; i < n; ++i) {
      mine[i] = static_cast<float>((R.rank() + 1) * static_cast<int>(i + 1));
    }
    auto& out = outputs[static_cast<std::size_t>(R.rank())];
    out.assign(recvcount, -1.0f);
    R.reduce_scatter(mine.data(), out.data(), recvcount, ReduceOp::Sum);
  });
  for (int r = 0; r < P; ++r) {
    for (std::size_t i = 0; i < recvcount; ++i) {
      const std::size_t idx = static_cast<std::size_t>(r) * recvcount + i;
      const float expect = static_cast<float>((1 + 2 + 3) * static_cast<int>(idx + 1));
      ASSERT_EQ(outputs[static_cast<std::size_t>(r)][i], expect)
          << "rank " << r << " index " << i;
    }
  }
}

// --- alltoall conformance ---
//
// The alltoall oracle is trivial and exact: received block s at rank r must
// equal send block r of rank s. Lossless codecs (raw, MPC) must satisfy it
// bit-exactly through the batched wire slab; ZFP is a single lossy
// encode/decode per block, so it is compared within a fixed tolerance.

struct AlltoallCase {
  int nodes = 2;
  int gpus_per_node = 1;
  std::size_t block_n = 1024;  // floats per destination block
  Codec codec = Codec::Mpc;
  CollectiveAlgorithm algorithm = CollectiveAlgorithm::BatchedPairwise;
};

std::string describe(const AlltoallCase& c) {
  std::string s = "alltoall P=" + std::to_string(c.nodes * c.gpus_per_node) + "(" +
                  std::to_string(c.nodes) + "x" + std::to_string(c.gpus_per_node) +
                  ") block_n=" + std::to_string(c.block_n) + " codec=";
  s += c.codec == Codec::Raw ? "raw" : c.codec == Codec::Mpc ? "mpc" : "zfp";
  s += std::string(" algo=") + core::collective_algorithm_name(c.algorithm);
  return s;
}

/// Block rank r sends to destination d: deterministic in (r, d, size).
std::vector<float> alltoall_block(int src, int dst, std::size_t n) {
  return make_floats(PayloadKind::SmoothField, n,
                     0xA2Au + static_cast<std::uint64_t>(src) * 131u +
                         static_cast<std::uint64_t>(dst));
}

struct AlltoallResult {
  std::vector<std::vector<float>> outputs;  // per-rank P*block_n receive buffer
  std::size_t engine_records = 0;           // "alltoall" CollectiveRecords
};

AlltoallResult run_alltoall_case(const AlltoallCase& c) {
  sim::Engine engine;
  core::Telemetry telemetry;
  mpi::WorldOptions opts;
  opts.telemetry = &telemetry;
  opts.collectives.alltoall_algorithm = c.algorithm;
  auto cfg = config_for(MatrixCase{.codec = c.codec});
  World world(engine, net::longhorn(c.nodes, c.gpus_per_node), cfg, opts);
  const int P = world.size();
  const std::size_t n = c.block_n;

  AlltoallResult res;
  res.outputs.assign(static_cast<std::size_t>(P), {});
  world.run([&](Rank& R) {
    auto* send = static_cast<float*>(R.gpu_malloc(n * 4 * static_cast<std::size_t>(P) + 4));
    for (int d = 0; d < P; ++d) {
      const auto block = alltoall_block(R.rank(), d, n);
      std::memcpy(send + static_cast<std::size_t>(d) * n, block.data(), n * 4);
    }
    auto& out = res.outputs[static_cast<std::size_t>(R.rank())];
    out.assign(n * static_cast<std::size_t>(P), -7.0f);
    R.alltoall(send, n * 4, out.data());
    R.gpu_free(send);
  });
  for (const auto& rec : telemetry.collectives()) {
    if (std::string(rec.op) == "alltoall") ++res.engine_records;
  }
  return res;
}

class AlltoallMatrix : public ::testing::Test {
 protected:
  void check(const AlltoallCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    const auto res = run_alltoall_case(c);

    for (int r = 0; r < P; ++r) {
      const auto& got = res.outputs[static_cast<std::size_t>(r)];
      for (int s = 0; s < P; ++s) {
        const auto expect = alltoall_block(s, r, c.block_n);
        const float* slot = got.data() + static_cast<std::size_t>(s) * c.block_n;
        if (c.codec != Codec::Zfp) {
          ASSERT_EQ(std::memcmp(slot, expect.data(), c.block_n * 4), 0)
              << describe(c) << ": rank " << r << " block from " << s
              << " is not bit-exact";
        } else {
          // One lossy encode/decode per block: rate-16 ZFP on smooth values
          // of magnitude ~1e3 lands well under this absolute envelope.
          for (std::size_t i = 0; i < c.block_n; ++i) {
            ASSERT_NEAR(slot[i], expect[i], 0.25)
                << describe(c) << ": rank " << r << " block from " << s << " index " << i;
          }
        }
      }
    }

    // Telemetry cross-check: the batched engine emits one "alltoall"
    // CollectiveRecord per rank; the naive sendrecv loop emits none.
    core::CollectiveTuning tuning;
    tuning.alltoall_algorithm = c.algorithm;
    const auto resolved = core::resolve_alltoall_algorithm(tuning, c.block_n * 4, P);
    if (P > 1 && c.block_n > 0 && resolved == CollectiveAlgorithm::BatchedPairwise) {
      EXPECT_EQ(res.engine_records, static_cast<std::size_t>(P)) << describe(c);
    } else {
      EXPECT_EQ(res.engine_records, 0u) << describe(c);
    }
  }
};

TEST_F(AlltoallMatrix, SizeAndRankSweepLossless) {
  const std::size_t sizes[] = {0, 1, 521, 16411};
  const std::pair<int, int> topos[] = {{2, 1}, {4, 1}, {3, 2}, {4, 2}};
  for (std::size_t n : sizes) {
    for (auto [nodes, gpn] : topos) {
      for (Codec codec : {Codec::Raw, Codec::Mpc}) {
        for (auto algo :
             {CollectiveAlgorithm::Linear, CollectiveAlgorithm::BatchedPairwise,
              CollectiveAlgorithm::Auto}) {
          AlltoallCase c;
          c.nodes = nodes;
          c.gpus_per_node = gpn;
          c.block_n = n;
          c.codec = codec;
          c.algorithm = algo;
          check(c);
        }
      }
    }
  }
}

TEST_F(AlltoallMatrix, ZfpBlocksStayWithinTolerance) {
  for (auto [nodes, gpn] : {std::pair<int, int>{4, 1}, std::pair<int, int>{3, 2}}) {
    AlltoallCase c;
    c.nodes = nodes;
    c.gpus_per_node = gpn;
    c.block_n = 16411;
    c.codec = Codec::Zfp;
    c.algorithm = CollectiveAlgorithm::BatchedPairwise;
    check(c);
  }
}

TEST_F(AlltoallMatrix, AutoCrossesToBatchedAtTheFloor) {
  // 1 MiB blocks at 8 ranks sit exactly at the default floor: Auto resolves
  // to the engine, and conformance holds there too.
  AlltoallCase c;
  c.nodes = 8;
  c.gpus_per_node = 1;
  c.block_n = (1u << 20) / 4;
  c.codec = Codec::Mpc;
  c.algorithm = CollectiveAlgorithm::Auto;
  check(c);
}

// --- moving collectives (bcast / allgather / gather / scatter) ---
//
// The hierarchical engine restages these at one representative per node
// (see src/mpi/hier_engine.cpp). The oracles are trivial and exact: bcast
// puts the root's payload everywhere, allgather puts rank s's block at
// offset s, gather concatenates at the root, scatter hands rank r the
// root's block r. Lossless codecs must satisfy them BIT-exactly on both
// the flat and the hierarchical schedule; ZFP cases carry per-generation
// tolerances.
//
// Telemetry contract: bcast/allgather check the eager path BEFORE the
// hierarchical select, so a forced Hierarchical at or below the eager
// threshold silently runs the flat eager schedule (no CollectiveRecords).
// Gather/scatter dispatch hierarchically at any nonzero block size. When
// the engine runs, bcast/allgather record on every rank; gather/scatter
// record on the root and the remote node leaders only (`nodes` records).

struct MovingCase {
  int nodes = 4;
  int gpus_per_node = 2;
  std::size_t n = 16411;  // bcast: message floats; others: floats per block
  Codec codec = Codec::Mpc;
  CollectiveAlgorithm algorithm = CollectiveAlgorithm::Linear;
  int root = 1;  // off-leader root exercises the representative selection
};

std::string describe(const char* op, const MovingCase& c) {
  std::string s = std::string(op) + " P=" + std::to_string(c.nodes * c.gpus_per_node) +
                  "(" + std::to_string(c.nodes) + "x" + std::to_string(c.gpus_per_node) +
                  ") n=" + std::to_string(c.n) + " root=" + std::to_string(c.root) +
                  " codec=";
  s += c.codec == Codec::Raw ? "raw" : c.codec == Codec::Mpc ? "mpc" : "zfp";
  s += std::string(" algo=") + core::collective_algorithm_name(c.algorithm);
  return s;
}

/// CI's degenerate-topology job sets GCMPI_FORCE_GPN=1: every swept
/// topology reshapes to P nodes x 1 GPU (same rank count), where forced
/// Hierarchical must resolve to Linear and every oracle must still hold.
std::pair<int, int> moving_topology(int nodes, int gpn) {
  static const int forced = [] {
    const char* v = std::getenv("GCMPI_FORCE_GPN");
    return v != nullptr ? std::atoi(v) : 0;
  }();
  if (forced <= 0) return {nodes, gpn};
  const int P = nodes * gpn;
  return {std::max(1, P / forced), forced};
}

std::vector<float> bcast_payload(std::size_t n) {
  return make_floats(PayloadKind::SmoothField, n, 0xB0CA57u);
}

/// Scatter source block destined for rank d.
std::vector<float> scatter_block(int dst, std::size_t n) {
  return make_floats(PayloadKind::SmoothField, n,
                     0x5CA7u + static_cast<std::uint64_t>(dst) * 131u);
}

struct MovingResult {
  std::vector<std::vector<float>> outputs;
  std::size_t records = 0;  // CollectiveRecords matching the op under test
};

mpi::WorldOptions moving_options(const MovingCase& c, core::Telemetry* t) {
  mpi::WorldOptions opts;
  opts.telemetry = t;
  opts.collectives.bcast_algorithm = c.algorithm;
  opts.collectives.allgather_algorithm = c.algorithm;
  opts.collectives.gather_algorithm = c.algorithm;
  opts.collectives.scatter_algorithm = c.algorithm;
  return opts;
}

std::size_t count_records(const core::Telemetry& t, const char* op) {
  std::size_t k = 0;
  for (const auto& rec : t.collectives()) {
    if (std::string(rec.op) == op) ++k;
  }
  return k;
}

MovingResult run_bcast_case(const MovingCase& c, fault::FaultInjector* inj = nullptr) {
  sim::Engine engine;
  core::Telemetry telemetry;
  auto opts = moving_options(c, &telemetry);
  opts.fault = inj;
  World world(engine, net::longhorn(c.nodes, c.gpus_per_node),
              config_for(MatrixCase{.codec = c.codec}), opts);
  const int P = world.size();
  const auto truth = bcast_payload(c.n);

  MovingResult res;
  res.outputs.assign(static_cast<std::size_t>(P), {});
  world.run([&](Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(c.n * 4 + 4));
    if (R.rank() == c.root) {
      std::memcpy(dev, truth.data(), c.n * 4);
    } else {
      std::memset(dev, 0, c.n * 4);
    }
    R.bcast(dev, c.n * 4, c.root);
    auto& out = res.outputs[static_cast<std::size_t>(R.rank())];
    out.resize(c.n);
    std::memcpy(out.data(), dev, c.n * 4);
    R.gpu_free(dev);
  });
  res.records = count_records(telemetry, "bcast");
  return res;
}

MovingResult run_allgather_case(const MovingCase& c) {
  sim::Engine engine;
  core::Telemetry telemetry;
  auto opts = moving_options(c, &telemetry);
  World world(engine, net::longhorn(c.nodes, c.gpus_per_node),
              config_for(MatrixCase{.codec = c.codec}), opts);
  const int P = world.size();

  MovingResult res;
  res.outputs.assign(static_cast<std::size_t>(P), {});
  world.run([&](Rank& R) {
    const auto mine = contribution(R.rank(), c.n);
    auto* dev = static_cast<float*>(R.gpu_malloc(c.n * 4 + 4));
    std::memcpy(dev, mine.data(), c.n * 4);
    auto& out = res.outputs[static_cast<std::size_t>(R.rank())];
    out.assign(c.n * static_cast<std::size_t>(P), -3.0f);
    R.allgather(dev, c.n * 4, out.data());
    R.gpu_free(dev);
  });
  res.records = count_records(telemetry, "allgather");
  return res;
}

MovingResult run_gather_case(const MovingCase& c) {
  sim::Engine engine;
  core::Telemetry telemetry;
  auto opts = moving_options(c, &telemetry);
  World world(engine, net::longhorn(c.nodes, c.gpus_per_node),
              config_for(MatrixCase{.codec = c.codec}), opts);
  const int P = world.size();

  MovingResult res;
  res.outputs.assign(static_cast<std::size_t>(P), {});
  world.run([&](Rank& R) {
    const auto mine = contribution(R.rank(), c.n);
    auto* dev = static_cast<float*>(R.gpu_malloc(c.n * 4 + 4));
    std::memcpy(dev, mine.data(), c.n * 4);
    auto& out = res.outputs[static_cast<std::size_t>(R.rank())];
    if (R.rank() == c.root) out.assign(c.n * static_cast<std::size_t>(P), -3.0f);
    R.gather(dev, c.n * 4, out.data(), c.root);
    R.gpu_free(dev);
  });
  res.records = count_records(telemetry, "gather");
  return res;
}

MovingResult run_scatter_case(const MovingCase& c, fault::FaultInjector* inj = nullptr) {
  sim::Engine engine;
  core::Telemetry telemetry;
  auto opts = moving_options(c, &telemetry);
  opts.fault = inj;
  World world(engine, net::longhorn(c.nodes, c.gpus_per_node),
              config_for(MatrixCase{.codec = c.codec}), opts);
  const int P = world.size();

  MovingResult res;
  res.outputs.assign(static_cast<std::size_t>(P), {});
  world.run([&](Rank& R) {
    auto* send = static_cast<float*>(
        R.gpu_malloc(c.n * 4 * static_cast<std::size_t>(P) + 4));
    if (R.rank() == c.root) {
      for (int d = 0; d < P; ++d) {
        const auto block = scatter_block(d, c.n);
        std::memcpy(send + static_cast<std::size_t>(d) * c.n, block.data(), c.n * 4);
      }
    }
    auto& out = res.outputs[static_cast<std::size_t>(R.rank())];
    out.assign(c.n, -3.0f);
    R.scatter(send, c.n * 4, out.data(), c.root);
    R.gpu_free(send);
  });
  res.records = count_records(telemetry, "scatter");
  return res;
}

class MovingMatrix : public ::testing::Test {
 protected:
  static std::uint64_t eager_threshold() { return mpi::WorldOptions{}.eager_threshold; }

  static CollectiveAlgorithm resolved_for(const char* op, const MovingCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    core::CollectiveTuning t;
    t.bcast_algorithm = c.algorithm;
    t.allgather_algorithm = c.algorithm;
    t.gather_algorithm = c.algorithm;
    t.scatter_algorithm = c.algorithm;
    const std::uint64_t bytes = c.n * 4;
    if (std::string(op) == "bcast") {
      return core::resolve_bcast_algorithm(t, bytes, P, c.nodes, c.gpus_per_node);
    }
    if (std::string(op) == "allgather") {
      return core::resolve_allgather_algorithm(t, bytes, P, c.nodes, c.gpus_per_node);
    }
    if (std::string(op) == "gather") {
      return core::resolve_gather_algorithm(t, bytes, P, c.nodes, c.gpus_per_node);
    }
    return core::resolve_scatter_algorithm(t, bytes, P, c.nodes, c.gpus_per_node);
  }

  void check_bcast(const MovingCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    const auto res = run_bcast_case(c);
    const auto truth = bcast_payload(c.n);
    for (int r = 0; r < P; ++r) {
      const auto& got = res.outputs[static_cast<std::size_t>(r)];
      if (c.codec != Codec::Zfp) {
        ASSERT_EQ(std::memcmp(got.data(), truth.data(), c.n * 4), 0)
            << describe("bcast", c) << " rank " << r;
      } else {
        // One encode at the root, one decode per rank: a single lossy
        // generation regardless of the schedule.
        for (std::size_t i = 0; i < c.n; ++i) {
          ASSERT_NEAR(got[i], truth[i], 0.25) << describe("bcast", c) << " rank " << r
                                              << " index " << i;
        }
      }
    }
    // Hierarchical records on every rank; the eager path (<= threshold)
    // preempts the engine even when Hierarchical is forced.
    const bool engine = P > 1 && resolved_for("bcast", c) == CollectiveAlgorithm::Hierarchical &&
                        c.n * 4 > eager_threshold();
    EXPECT_EQ(res.records, engine ? static_cast<std::size_t>(P) : 0u)
        << describe("bcast", c);
  }

  void check_allgather(const MovingCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    const auto res = run_allgather_case(c);
    for (int r = 0; r < P; ++r) {
      const auto& got = res.outputs[static_cast<std::size_t>(r)];
      for (int s = 0; s < P; ++s) {
        const auto expect = contribution(s, c.n);
        ASSERT_EQ(std::memcmp(got.data() + static_cast<std::size_t>(s) * c.n,
                              expect.data(), c.n * 4),
                  0)
            << describe("allgather", c) << " rank " << r << " block from " << s;
      }
    }
    const bool engine = P > 1 &&
                        resolved_for("allgather", c) == CollectiveAlgorithm::Hierarchical &&
                        c.n * 4 > eager_threshold();
    EXPECT_EQ(res.records, engine ? static_cast<std::size_t>(P) : 0u)
        << describe("allgather", c);
  }

  void check_gather(const MovingCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    const auto res = run_gather_case(c);
    const auto& got = res.outputs[static_cast<std::size_t>(c.root)];
    for (int s = 0; s < P; ++s) {
      const auto expect = contribution(s, c.n);
      ASSERT_EQ(std::memcmp(got.data() + static_cast<std::size_t>(s) * c.n, expect.data(),
                            c.n * 4),
                0)
          << describe("gather", c) << " block from " << s;
    }
    // Root + one record per remote node leader.
    const bool engine =
        P > 1 && c.n > 0 && resolved_for("gather", c) == CollectiveAlgorithm::Hierarchical;
    EXPECT_EQ(res.records, engine ? static_cast<std::size_t>(c.nodes) : 0u)
        << describe("gather", c);
  }

  void check_scatter(const MovingCase& c) {
    const int P = c.nodes * c.gpus_per_node;
    const auto res = run_scatter_case(c);
    for (int r = 0; r < P; ++r) {
      const auto& got = res.outputs[static_cast<std::size_t>(r)];
      const auto expect = scatter_block(r, c.n);
      if (c.codec != Codec::Zfp) {
        ASSERT_EQ(std::memcmp(got.data(), expect.data(), c.n * 4), 0)
            << describe("scatter", c) << " rank " << r;
      } else {
        // Worst case two lossy generations: root slab -> leader, leader
        // block -> member.
        for (std::size_t i = 0; i < c.n; ++i) {
          ASSERT_NEAR(got[i], expect[i], 0.5)
              << describe("scatter", c) << " rank " << r << " index " << i;
        }
      }
    }
    const bool engine =
        P > 1 && c.n > 0 && resolved_for("scatter", c) == CollectiveAlgorithm::Hierarchical;
    EXPECT_EQ(res.records, engine ? static_cast<std::size_t>(c.nodes) : 0u)
        << describe("scatter", c);
  }
};

TEST_F(MovingMatrix, SizeTopologyCodecSweepLossless) {
  // 4096 floats sit exactly at the 16 KiB eager threshold (flat even when
  // Hierarchical is forced); 16411 floats are past it and odd-sized.
  const std::size_t sizes[] = {1, 4096, 16411};
  const std::pair<int, int> topos[] = {{4, 2}, {3, 2}, {2, 2}, {4, 1}};
  for (std::size_t n : sizes) {
    for (auto [nodes, gpn] : topos) {
      std::tie(nodes, gpn) = moving_topology(nodes, gpn);
      for (Codec codec : {Codec::Raw, Codec::Mpc}) {
        for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Hierarchical}) {
          MovingCase c;
          c.nodes = nodes;
          c.gpus_per_node = gpn;
          c.n = n;
          c.codec = codec;
          c.algorithm = algo;
          check_bcast(c);
          check_allgather(c);
          check_gather(c);
          check_scatter(c);
        }
      }
    }
  }
}

TEST_F(MovingMatrix, AutoCrossesToHierarchicalAtTheFloors) {
  // bcast Auto floor: 1 MiB messages; allgather/gather/scatter: 256 KiB
  // blocks. One size below, one at the floor; conformance holds on both
  // sides and records flip on exactly at the floor.
  for (std::size_t n : {std::size_t{16411}, std::size_t{1} << 18}) {
    MovingCase c;
    std::tie(c.nodes, c.gpus_per_node) = moving_topology(4, 2);
    c.n = n;
    c.algorithm = CollectiveAlgorithm::Auto;
    check_bcast(c);
  }
  for (std::size_t n : {std::size_t{16411}, std::size_t{1} << 16}) {
    MovingCase c;
    std::tie(c.nodes, c.gpus_per_node) = moving_topology(4, 2);
    c.n = n;
    c.algorithm = CollectiveAlgorithm::Auto;
    check_allgather(c);
    check_gather(c);
    check_scatter(c);
  }
}

TEST_F(MovingMatrix, ZfpStaysWithinPerGenerationTolerance) {
  for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Hierarchical}) {
    MovingCase c;
    std::tie(c.nodes, c.gpus_per_node) = moving_topology(4, 2);
    c.codec = Codec::Zfp;
    c.algorithm = algo;
    check_bcast(c);
    check_scatter(c);
  }
}

TEST_F(MovingMatrix, RootOnLastNodeAndLeaderRoot) {
  // Roots that are (a) a node leader and (b) on the highest-numbered node:
  // the virtual-node rotation and the root-node representative choice both
  // get exercised away from the defaults.
  for (int root : {0, 6}) {
    MovingCase c;
    std::tie(c.nodes, c.gpus_per_node) = moving_topology(4, 2);
    c.algorithm = CollectiveAlgorithm::Hierarchical;
    c.root = root;
    check_bcast(c);
    check_gather(c);
    check_scatter(c);
  }
}

TEST_F(MovingMatrix, DegenerateTopologyForcedHierIsBitIdenticalToFlat) {
  // One GPU per node: Hierarchical must resolve to Linear, run the flat
  // schedule, emit no records, and match the forced-Linear run bit-for-bit.
  for (const char* op : {"bcast", "allgather", "gather", "scatter"}) {
    MovingCase hier;
    hier.nodes = 6;
    hier.gpus_per_node = 1;
    hier.algorithm = CollectiveAlgorithm::Hierarchical;
    MovingCase flat = hier;
    flat.algorithm = CollectiveAlgorithm::Linear;

    const auto run = [&](const MovingCase& c) {
      if (std::string(op) == "bcast") return run_bcast_case(c);
      if (std::string(op) == "allgather") return run_allgather_case(c);
      if (std::string(op) == "gather") return run_gather_case(c);
      return run_scatter_case(c);
    };
    const auto a = run(hier);
    const auto b = run(flat);
    EXPECT_EQ(a.records, 0u) << op;
    EXPECT_EQ(b.records, 0u) << op;
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (std::size_t r = 0; r < a.outputs.size(); ++r) {
      ASSERT_EQ(a.outputs[r].size(), b.outputs[r].size()) << op << " rank " << r;
      ASSERT_EQ(std::memcmp(a.outputs[r].data(), b.outputs[r].data(),
                            a.outputs[r].size() * 4),
                0)
          << op << " rank " << r << ": degenerate hierarchical diverged from flat";
    }
  }
}

TEST_F(MovingMatrix, ScatterInterNodeTransitBudget) {
  // The IB transit budget, measured: flat scatter pushes one rendezvous
  // data packet per remote RANK (P - gpus_per_node inter-node packets);
  // the hierarchical schedule pushes one slab per remote NODE (nodes - 1).
  // The batched root send (one compress launch, all sends in flight) is
  // PR-7's isend_batched on the flat path and the slab batch here.
  MovingCase c;
  std::tie(c.nodes, c.gpus_per_node) = moving_topology(4, 2);
  if (c.gpus_per_node == 1) GTEST_SKIP() << "budget split needs a two-level topology";
  const int P = c.nodes * c.gpus_per_node;

  fault::FaultInjector flat_inj{fault::FaultPlan{}};  // inert: pure packet counting
  c.algorithm = CollectiveAlgorithm::Linear;
  const auto flat = run_scatter_case(c, &flat_inj);
  EXPECT_EQ(flat_inj.stats().inter_node_data_packets,
            static_cast<std::uint64_t>(P - c.gpus_per_node));
  EXPECT_EQ(flat_inj.stats().drops, 0u);

  fault::FaultInjector hier_inj{fault::FaultPlan{}};
  c.algorithm = CollectiveAlgorithm::Hierarchical;
  const auto hier = run_scatter_case(c, &hier_inj);
  EXPECT_EQ(hier_inj.stats().inter_node_data_packets,
            static_cast<std::uint64_t>(c.nodes - 1));

  for (int r = 0; r < P; ++r) {
    ASSERT_EQ(std::memcmp(flat.outputs[static_cast<std::size_t>(r)].data(),
                          hier.outputs[static_cast<std::size_t>(r)].data(), c.n * 4),
              0)
        << "rank " << r << ": schedules disagree";
  }
}

TEST_F(MovingMatrix, BcastInterNodeTransitBudget) {
  // Hierarchical bcast from a non-leader root: exactly nodes-1 inter-node
  // wire transits on a clean fabric — the one-transit-per-node guarantee.
  MovingCase c;
  std::tie(c.nodes, c.gpus_per_node) = moving_topology(4, 4);
  if (c.gpus_per_node == 1) GTEST_SKIP() << "budget split needs a two-level topology";
  c.algorithm = CollectiveAlgorithm::Hierarchical;
  fault::FaultInjector inj{fault::FaultPlan{}};
  const auto res = run_bcast_case(c, &inj);
  (void)res;
  EXPECT_EQ(inj.stats().inter_node_data_packets, static_cast<std::uint64_t>(c.nodes - 1));
}

// --- oracle self-checks ---

TEST(OracleSanity, RingOracleMatchesNaiveSumOnIntegers) {
  // Integer-valued floats make summation order-insensitive, so every
  // canonical order must equal the naive left fold.
  const int P = 5;
  const std::size_t n = 97;
  std::vector<std::vector<float>> contribs;
  for (int r = 0; r < P; ++r) {
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>((r + 1) * ((i % 13) + 1));
    contribs.push_back(std::move(v));
  }
  std::vector<float> naive = contribs[0];
  for (int r = 1; r < P; ++r) {
    comp::reduce_inplace(naive.data(), contribs[static_cast<std::size_t>(r)].data(), n,
                         ReduceOp::Sum);
  }
  for (auto algo : {CollectiveAlgorithm::Linear, CollectiveAlgorithm::Ring,
                    CollectiveAlgorithm::Hierarchical}) {
    const auto got = core::allreduce_oracle(contribs, ReduceOp::Sum, algo, 2);
    ASSERT_EQ(std::memcmp(got.data(), naive.data(), n * 4), 0)
        << core::collective_algorithm_name(algo);
  }
}

TEST(OracleSanity, ResolvePolicyHonorsFloors) {
  core::CollectiveTuning t;  // defaults: 4 MiB, 4 ranks
  EXPECT_EQ(core::resolve_allreduce_algorithm(t, 16u << 20, 2, 2, 1),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_allreduce_algorithm(t, 1 << 20, 8, 8, 1),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_allreduce_algorithm(t, 16u << 20, 8, 8, 1),
            CollectiveAlgorithm::Ring);
  EXPECT_EQ(core::resolve_allreduce_algorithm(t, 16u << 20, 8, 4, 2),
            CollectiveAlgorithm::Hierarchical);
  t.allow_hierarchical = false;
  EXPECT_EQ(core::resolve_allreduce_algorithm(t, 16u << 20, 8, 4, 2),
            CollectiveAlgorithm::Ring);
  t.algorithm = CollectiveAlgorithm::Linear;
  EXPECT_EQ(core::resolve_allreduce_algorithm(t, 16u << 20, 8, 4, 2),
            CollectiveAlgorithm::Linear);
}

TEST(OracleSanity, ResolveAlltoallHonorsFloors) {
  core::CollectiveTuning t;  // defaults: 1 MiB blocks, 4 ranks
  // Auto below either floor stays on the naive loop.
  EXPECT_EQ(core::resolve_alltoall_algorithm(t, 512u << 10, 8),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_alltoall_algorithm(t, 4u << 20, 2),
            CollectiveAlgorithm::Linear);
  // Above both floors Auto routes to the batched engine.
  EXPECT_EQ(core::resolve_alltoall_algorithm(t, 1u << 20, 4),
            CollectiveAlgorithm::BatchedPairwise);
  // Forcing overrides the floors in both directions.
  t.alltoall_algorithm = CollectiveAlgorithm::BatchedPairwise;
  EXPECT_EQ(core::resolve_alltoall_algorithm(t, 4 * 1024, 2),
            CollectiveAlgorithm::BatchedPairwise);
  t.alltoall_algorithm = CollectiveAlgorithm::Linear;
  EXPECT_EQ(core::resolve_alltoall_algorithm(t, 16u << 20, 8),
            CollectiveAlgorithm::Linear);
}

TEST(OracleSanity, DynamicSelectorPrefersRingForLargeCompressibleVectors) {
  const core::DynamicSelector sel(gpu::v100_spec(), 12.5);
  EXPECT_EQ(sel.choose_allreduce_algorithm(8u << 20, 8, 8, 1, 4.0),
            CollectiveAlgorithm::Ring);
  EXPECT_EQ(sel.choose_allreduce_algorithm(4 * 1024, 2, 2, 1, 1.0),
            CollectiveAlgorithm::Linear);
}

TEST(OracleSanity, ResolveMovingCollectivesHonorFloorsAndTopology) {
  core::CollectiveTuning t;  // defaults: 1 MiB bcast, 256 KiB blocks, 4 ranks
  // Auto: below the floor stays flat, at/above it goes hierarchical — but
  // only on a genuinely two-level topology.
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 512u << 10, 8, 4, 2),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 1u << 20, 8, 4, 2),
            CollectiveAlgorithm::Hierarchical);
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 16u << 20, 8, 8, 1),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 16u << 20, 8, 1, 8),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_allgather_algorithm(t, 128u << 10, 8, 4, 2),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_allgather_algorithm(t, 256u << 10, 8, 4, 2),
            CollectiveAlgorithm::Hierarchical);
  EXPECT_EQ(core::resolve_gather_algorithm(t, 256u << 10, 8, 4, 2),
            CollectiveAlgorithm::Hierarchical);
  EXPECT_EQ(core::resolve_scatter_algorithm(t, 256u << 10, 8, 4, 2),
            CollectiveAlgorithm::Hierarchical);
  // Too few ranks for the staging to pay off.
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 16u << 20, 2, 2, 1),
            CollectiveAlgorithm::Linear);
  // allow_hierarchical gates Auto.
  t.allow_hierarchical = false;
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 16u << 20, 8, 4, 2),
            CollectiveAlgorithm::Linear);
  t.allow_hierarchical = true;
  // Forcing overrides the floors — except on degenerate topologies, where
  // Hierarchical resolves to Linear (no second level to stage on).
  t.bcast_algorithm = CollectiveAlgorithm::Hierarchical;
  t.gather_algorithm = CollectiveAlgorithm::Hierarchical;
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 4 * 1024, 8, 4, 2),
            CollectiveAlgorithm::Hierarchical);
  EXPECT_EQ(core::resolve_bcast_algorithm(t, 4 * 1024, 8, 8, 1),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(core::resolve_gather_algorithm(t, 4 * 1024, 8, 1, 8),
            CollectiveAlgorithm::Linear);
}

TEST(OracleSanity, DynamicSelectorPrefersHierarchicalOnTwoLevelTopologies) {
  // NVLink intra at 4x the IB wire rate (the default multiplier): staging
  // at node leaders wins for large messages on a 4x4 cluster but can never
  // be chosen on a flat one.
  const core::DynamicSelector sel(gpu::v100_spec(), 12.5);
  EXPECT_EQ(sel.choose_bcast_algorithm(16u << 20, 16, 4, 4, 2.0),
            CollectiveAlgorithm::Hierarchical);
  EXPECT_EQ(sel.choose_bcast_algorithm(16u << 20, 16, 16, 1, 2.0),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(sel.choose_bcast_algorithm(16u << 20, 16, 1, 16, 2.0),
            CollectiveAlgorithm::Linear);
  EXPECT_EQ(sel.choose_allgather_algorithm(4u << 20, 16, 4, 4, 2.0),
            CollectiveAlgorithm::Hierarchical);
  EXPECT_EQ(sel.choose_gather_algorithm(4u << 20, 16, 4, 4, 2.0),
            CollectiveAlgorithm::Hierarchical);
  // Scatter mirrors gather by construction.
  EXPECT_EQ(sel.choose_scatter_algorithm(4u << 20, 16, 4, 4, 2.0),
            sel.choose_gather_algorithm(4u << 20, 16, 4, 4, 2.0));
}

}  // namespace
