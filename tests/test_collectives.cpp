// Collective-operation correctness across rank counts (including
// non-powers of two) and with compression enabled on the hop level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "data/datasets.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using mpi::Rank;
using mpi::World;

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, Barrier) {
  const int P = GetParam();
  sim::Engine engine;
  World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
  int count = 0;
  world.run([&](Rank& R) {
    R.compute(sim::Time::us(static_cast<double>(R.rank()) * 100));
    R.barrier();
    ++count;  // actors run one at a time: no data race
    R.barrier();
  });
  EXPECT_EQ(count, P);
}

TEST_P(CollectiveSizes, BcastFromEveryRoot) {
  const int P = GetParam();
  for (int root = 0; root < P; root += std::max(1, P / 3)) {
    sim::Engine engine;
    World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
    std::vector<int> ok(static_cast<std::size_t>(P), 0);
    world.run([&](Rank& R) {
      std::vector<float> buf(1024, 0.0f);
      if (R.rank() == root) {
        std::iota(buf.begin(), buf.end(), 1.0f);
      }
      R.bcast(buf.data(), buf.size() * 4, root);
      ok[static_cast<std::size_t>(R.rank())] =
          (buf[0] == 1.0f && buf[1023] == 1024.0f) ? 1 : 0;
    });
    for (int r = 0; r < P; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "root " << root;
  }
}

TEST_P(CollectiveSizes, AllgatherCollectsEveryBlock) {
  const int P = GetParam();
  sim::Engine engine;
  World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
  int failures = 0;
  world.run([&](Rank& R) {
    const std::size_t bn = 256;
    std::vector<float> mine(bn, static_cast<float>(R.rank() + 1));
    std::vector<float> all(bn * static_cast<std::size_t>(P), -1.0f);
    R.allgather(mine.data(), bn * 4, all.data());
    for (int r = 0; r < P; ++r) {
      for (std::size_t i = 0; i < bn; ++i) {
        if (all[static_cast<std::size_t>(r) * bn + i] != static_cast<float>(r + 1)) ++failures;
      }
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(CollectiveSizes, AllreduceSumMaxMin) {
  const int P = GetParam();
  sim::Engine engine;
  World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
  int failures = 0;
  world.run([&](Rank& R) {
    const std::size_t n = 64;
    std::vector<float> v(n), sum(n), mx(n), mn(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<float>(R.rank() + 1) * (i % 7 == 0 ? -1.0f : 1.0f);
    R.allreduce(v.data(), sum.data(), n, mpi::ReduceOp::Sum);
    R.allreduce(v.data(), mx.data(), n, mpi::ReduceOp::Max);
    R.allreduce(v.data(), mn.data(), n, mpi::ReduceOp::Min);
    const float total = static_cast<float>(P * (P + 1)) / 2.0f;
    for (std::size_t i = 0; i < n; ++i) {
      const float sign = (i % 7 == 0) ? -1.0f : 1.0f;
      if (sum[i] != sign * total) ++failures;
      if (mx[i] != (sign > 0 ? static_cast<float>(P) : -1.0f)) ++failures;
      if (mn[i] != (sign > 0 ? 1.0f : -static_cast<float>(P))) ++failures;
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(CollectiveSizes, ReduceToRoot) {
  const int P = GetParam();
  sim::Engine engine;
  World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
  float result = 0.0f;
  world.run([&](Rank& R) {
    float v = static_cast<float>(R.rank() + 1);
    float out = 0.0f;
    R.reduce(&v, &out, 1, mpi::ReduceOp::Sum, 0);
    if (R.rank() == 0) result = out;
  });
  EXPECT_EQ(result, static_cast<float>(P * (P + 1)) / 2.0f);
}

TEST_P(CollectiveSizes, AlltoallPermutesBlocks) {
  const int P = GetParam();
  sim::Engine engine;
  World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
  int failures = 0;
  world.run([&](Rank& R) {
    const std::size_t bn = 128;
    std::vector<float> send(bn * static_cast<std::size_t>(P));
    std::vector<float> recv(bn * static_cast<std::size_t>(P), -1.0f);
    // Block for destination d carries value 1000*me + d.
    for (int d = 0; d < P; ++d) {
      for (std::size_t i = 0; i < bn; ++i) {
        send[static_cast<std::size_t>(d) * bn + i] = static_cast<float>(1000 * R.rank() + d);
      }
    }
    R.alltoall(send.data(), bn * 4, recv.data());
    for (int s = 0; s < P; ++s) {
      for (std::size_t i = 0; i < bn; ++i) {
        if (recv[static_cast<std::size_t>(s) * bn + i] !=
            static_cast<float>(1000 * s + R.rank())) {
          ++failures;
        }
      }
    }
  });
  EXPECT_EQ(failures, 0);
}

TEST_P(CollectiveSizes, GatherAndScatter) {
  const int P = GetParam();
  sim::Engine engine;
  World world(engine, net::longhorn(P, 1), core::CompressionConfig::off());
  int failures = 0;
  world.run([&](Rank& R) {
    const std::size_t bn = 32;
    std::vector<float> mine(bn, static_cast<float>(R.rank()) + 0.5f);
    std::vector<float> gathered(bn * static_cast<std::size_t>(P), -1.0f);
    R.gather(mine.data(), bn * 4, gathered.data(), 0);
    if (R.rank() == 0) {
      for (int r = 0; r < P; ++r) {
        if (gathered[static_cast<std::size_t>(r) * bn] != static_cast<float>(r) + 0.5f) ++failures;
      }
    }
    std::vector<float> back(bn, -1.0f);
    R.scatter(gathered.data(), bn * 4, back.data(), 0);
    if (back[0] != static_cast<float>(R.rank()) + 0.5f) ++failures;
  });
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSizes, ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(CollectivesCompressed, BcastOfDeviceDatasetIsLossless) {
  const int P = 4;
  const std::size_t n = (1u << 20) / 4;  // 1MB message
  const auto dataset = data::generate("msg_sweep3d", n);
  sim::Engine engine;
  World world(engine, net::frontera_liquid(P, 1), core::CompressionConfig::mpc_opt());
  int failures = 0;
  world.run([&](Rank& R) {
    auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
    if (R.rank() == 0) std::memcpy(dev, dataset.data(), n * 4);
    R.bcast(dev, n * 4, 0);
    if (std::memcmp(dev, dataset.data(), n * 4) != 0) ++failures;
    R.gpu_free(dev);
  });
  EXPECT_EQ(failures, 0);
}

TEST(CollectivesCompressed, BcastWithCompressionIsFasterOnCompressibleData) {
  const int P = 8;
  const std::size_t n = (4u << 20) / 4;
  const auto dataset = data::generate("msg_sppm", n);  // CR ~9 dataset

  auto run_one = [&](core::CompressionConfig cfg) {
    sim::Engine engine;
    World world(engine, net::frontera_liquid(P, 2), cfg);
    sim::Time done = sim::Time::zero();
    world.run([&](Rank& R) {
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      if (R.rank() == 0) std::memcpy(dev, dataset.data(), n * 4);
      R.barrier();
      R.bcast(dev, n * 4, 0);
      R.barrier();
      if (R.rank() == 0) done = R.now();
      R.gpu_free(dev);
    });
    return done;
  };
  const auto baseline = run_one(core::CompressionConfig::off());
  const auto mpc = run_one(core::CompressionConfig::mpc_opt());
  EXPECT_LT(mpc, baseline);  // Fig. 11(a): biggest win on msg_sppm
}

}  // namespace
