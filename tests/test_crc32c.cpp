// CRC32C (Castagnoli) known-answer and property tests. The reference
// vectors are the iSCSI ones from RFC 3720 Appendix B.4 / the original
// Castagnoli paper, which pin both the polynomial (0x1EDC6F41 reflected)
// and the bit conventions (reflected in/out, init and final XOR ~0).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "util/crc32c.hpp"

namespace {

using gcmpi::util::crc32c;
using gcmpi::util::crc32c_reference;

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_EQ(crc32c_reference(nullptr, 0), 0u);
}

TEST(Crc32c, Rfc3720KnownAnswers) {
  // 32 bytes of zeros.
  std::array<std::uint8_t, 32> zeros{};
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  // 32 bytes of 0xFF.
  std::array<std::uint8_t, 32> ones{};
  ones.fill(0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  // Bytes 0x00..0x1F ascending.
  std::array<std::uint8_t, 32> ascending{};
  std::iota(ascending.begin(), ascending.end(), std::uint8_t{0});
  EXPECT_EQ(crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);

  // Bytes 0x1F..0x00 descending.
  std::array<std::uint8_t, 32> descending{};
  for (std::size_t i = 0; i < descending.size(); ++i) {
    descending[i] = static_cast<std::uint8_t>(0x1F - i);
  }
  EXPECT_EQ(crc32c(descending.data(), descending.size()), 0x113FDB5Cu);
}

TEST(Crc32c, ClassicStringVectors) {
  const std::string digits = "123456789";
  EXPECT_EQ(crc32c(digits.data(), digits.size()), 0xE3069283u);
  const std::string a = "a";
  EXPECT_EQ(crc32c(a.data(), a.size()), 0xC1D04330u);
}

TEST(Crc32c, SliceBy8MatchesBitwiseReference) {
  gcmpi::sim::Rng rng(0xC5C5);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.next_below(4096);
    std::vector<std::uint8_t> buf(n);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(crc32c(buf.data(), buf.size()), crc32c_reference(buf.data(), buf.size()))
        << "length " << n;
  }
}

TEST(Crc32c, IncrementalChainingEqualsOneShot) {
  gcmpi::sim::Rng rng(0xABCD);
  std::vector<std::uint8_t> buf(10'000);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
  const std::uint32_t whole = crc32c(buf.data(), buf.size());

  // Split at every mix of aligned and unaligned boundaries.
  for (const std::size_t cut : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                                std::size_t{64}, std::size_t{4097}, buf.size() - 3}) {
    std::uint32_t crc = crc32c(buf.data(), cut);
    crc = crc32c(buf.data() + cut, buf.size() - cut, crc);
    EXPECT_EQ(crc, whole) << "cut at " << cut;
  }

  // Byte-at-a-time chaining.
  std::uint32_t crc = 0;
  for (const std::uint8_t b : buf) crc = crc32c(&b, 1, crc);
  EXPECT_EQ(crc, whole);
}

TEST(Crc32c, MisalignedStartMatchesAligned) {
  // The slice-by-8 head loop must make unaligned buffers agree with
  // aligned copies of the same bytes.
  std::vector<std::uint8_t> storage(256 + 8);
  gcmpi::sim::Rng rng(99);
  for (auto& b : storage) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (std::size_t offset = 0; offset < 8; ++offset) {
    std::vector<std::uint8_t> copy(storage.begin() + static_cast<std::ptrdiff_t>(offset),
                                   storage.begin() + static_cast<std::ptrdiff_t>(offset) + 256);
    EXPECT_EQ(crc32c(storage.data() + offset, 256), crc32c(copy.data(), 256))
        << "offset " << offset;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> buf(512, 0x5A);
  const std::uint32_t clean = crc32c(buf.data(), buf.size());
  for (const std::size_t bit : {std::size_t{0}, std::size_t{1}, std::size_t{2048},
                                buf.size() * 8 - 1}) {
    auto flipped = buf;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32c(flipped.data(), flipped.size()), clean) << "bit " << bit;
  }
}

}  // namespace
