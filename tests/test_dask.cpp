// Dask proxy tests: transpose-sum correctness with and without (lossy)
// compression, throughput accounting, worker scaling.
#include <gtest/gtest.h>

#include "apps/dask/distributed_array.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using apps::dask::DaskConfig;
using apps::dask::DaskReport;
using apps::dask::run_transpose_sum;

DaskReport run(int workers, core::CompressionConfig cfg, DaskConfig dc) {
  sim::Engine engine;
  mpi::World world(engine, net::ri2(workers, 1), cfg);
  DaskReport report;
  world.run([&](mpi::Rank& R) {
    auto rep = run_transpose_sum(R, dc);
    if (R.rank() == 0) report = rep;
  });
  return report;
}

TEST(Dask, ExactWithoutCompression) {
  DaskConfig dc;
  dc.matrix_n = 512;
  dc.chunk_n = 128;
  const auto report = run(4, core::CompressionConfig::off(), dc);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.max_error, 0.0);
  EXPECT_GT(report.bytes_transferred, 0u);
  EXPECT_GT(report.aggregate_throughput_gbs, 0.0);
}

TEST(Dask, SingleWorkerMovesNothing) {
  DaskConfig dc;
  dc.matrix_n = 256;
  dc.chunk_n = 128;
  const auto report = run(1, core::CompressionConfig::off(), dc);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.bytes_transferred, 0u);
}

TEST(Dask, RejectsBadChunking) {
  DaskConfig dc;
  dc.matrix_n = 500;  // not divisible by chunk
  dc.chunk_n = 128;
  EXPECT_THROW(run(2, core::CompressionConfig::off(), dc), std::invalid_argument);
}

TEST(Dask, ZfpLossyStaysWithinTolerance) {
  DaskConfig dc;
  dc.matrix_n = 1024;
  dc.chunk_n = 256;  // 256 KB chunks take the compressed rendezvous path
  dc.verify_tolerance = 0.02;  // rate-16 quantization on [0,1) data
  auto cfg = core::CompressionConfig::zfp_opt(16);
  cfg.threshold_bytes = 128 * 1024;
  const auto report = run(4, cfg, dc);
  EXPECT_TRUE(report.verified) << "max error " << report.max_error;
  EXPECT_GT(report.max_error, 0.0);  // it IS lossy
}

TEST(Dask, CompressionImprovesThroughput) {
  DaskConfig dc;
  // Paper-scale chunks: Dask moves 8MB-1GB messages (Sec. VII-B); at 4MB
  // the ZFP pipeline clearly beats the raw wire.
  dc.matrix_n = 4096;
  dc.chunk_n = 1024;
  dc.verify = false;
  auto zfp = core::CompressionConfig::zfp_opt(8);
  zfp.threshold_bytes = 128 * 1024;
  const auto base = run(8, core::CompressionConfig::off(), dc);
  const auto comp = run(8, zfp, dc);
  // Fig. 14(b): ZFP-OPT(rate 8) outperforms the baseline (paper: 1.56x).
  EXPECT_GT(comp.aggregate_throughput_gbs, base.aggregate_throughput_gbs);
}

TEST(Dask, MoreWorkersMoreAggregateThroughput) {
  DaskConfig dc;
  dc.matrix_n = 1024;
  dc.chunk_n = 256;
  dc.verify = false;
  const auto w2 = run(2, core::CompressionConfig::off(), dc);
  const auto w8 = run(8, core::CompressionConfig::off(), dc);
  EXPECT_GT(w8.aggregate_throughput_gbs, w2.aggregate_throughput_gbs);
}

}  // namespace
