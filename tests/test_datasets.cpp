// Dataset generator tests: determinism, Table III characteristics
// (unique-value fractions and MPC compression-ratio ordering).
#include <gtest/gtest.h>

#include <vector>

#include "compress/mpc.hpp"
#include "data/datasets.hpp"

namespace {

using namespace gcmpi;

double mpc_ratio(const std::vector<float>& v, int dim) {
  comp::MpcCodec codec(dim);
  std::vector<std::uint8_t> buf(codec.max_compressed_bytes(v.size()));
  const std::size_t size = codec.compress(v, buf);
  return static_cast<double>(v.size() * 4) / static_cast<double>(size);
}

TEST(Datasets, TableListsEightSets) {
  EXPECT_EQ(data::table3_datasets().size(), 8u);
}

TEST(Datasets, GenerationIsDeterministic) {
  for (const auto& info : data::table3_datasets()) {
    const auto a = data::generate(info.name, 4096, 7);
    const auto b = data::generate(info.name, 4096, 7);
    EXPECT_EQ(a, b) << info.name;
    const auto c = data::generate(info.name, 4096, 8);
    EXPECT_NE(a, c) << info.name;
  }
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(data::generate("msg_nope", 100), std::invalid_argument);
}

TEST(Datasets, UniqueFractionRoughlyTracksTable3) {
  const std::size_t n = 1 << 18;
  for (const auto& info : data::table3_datasets()) {
    const auto v = data::generate(info.name, n);
    const double uf = data::unique_fraction(v) * 100.0;
    if (info.unique_pct_paper > 80.0) {
      EXPECT_GT(uf, 60.0) << info.name;
    } else if (info.unique_pct_paper < 1.0) {
      EXPECT_LT(uf, 5.0) << info.name;
    } else {
      EXPECT_LT(uf, 60.0) << info.name;
    }
  }
}

TEST(Datasets, MpcRatiosReproduceTable3Ordering) {
  const std::size_t n = 1 << 19;
  double sppm = 0, plasma = 0, sweep = 0;
  for (const auto& info : data::table3_datasets()) {
    const auto v = data::generate(info.name, n);
    const double cr = mpc_ratio(v, info.mpc_dimensionality);
    if (std::string(info.name) == "msg_sppm") sppm = cr;
    if (std::string(info.name) == "num_plasma") plasma = cr;
    if (std::string(info.name) == "msg_sweep3d") sweep = cr;
    // Every dataset should land in the paper's broad band [1.0, 12].
    EXPECT_GT(cr, 1.0) << info.name;
    EXPECT_LT(cr, 14.0) << info.name;
  }
  // msg_sppm is by far the most compressible (paper: 8.95 vs ~1.3-1.5).
  EXPECT_GT(sppm, 2.0 * plasma);
  EXPECT_GT(sppm, 2.0 * sweep);
}

TEST(Datasets, UniqueFractionHelper) {
  std::vector<float> v = {1.0f, 1.0f, 2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(data::unique_fraction(v), 0.75);
  const std::vector<float> empty;
  EXPECT_DOUBLE_EQ(data::unique_fraction(empty), 0.0);
}

TEST(Datasets, InterleavedFieldsFavorMatchingDim) {
  const auto v = data::interleaved_fields(1 << 16, 6, 1e-5, 4);
  EXPECT_GT(mpc_ratio(v, 6), mpc_ratio(v, 1));
}

}  // namespace
