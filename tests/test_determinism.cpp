// Cross-run determinism of the discrete-event stack: identical seeded
// simulations must charge identical costs and produce byte-identical
// observable output — receive timelines, compression stats, telemetry CSV,
// and the final engine clock. Failures report the first diverging line of
// the canonical dump (tests/support/world_dump.*).
//
// This is the tripwire for the ROADMAP's perf PRs: any accidental
// dependence on wall clock, heap addresses, thread scheduling, or hash
// iteration order shows up here as a one-line diff.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "core/collective.hpp"
#include "core/telemetry.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "support/payloads.hpp"
#include "support/sha256.hpp"
#include "support/world_dump.hpp"

namespace {

using namespace gcmpi;
namespace support = gcmpi::testing;
using support::first_divergence;
using support::run_world_dump;
using support::WorldScenario;

void expect_identical_runs(const WorldScenario& s) {
  const std::string run1 = run_world_dump(s);
  const std::string run2 = run_world_dump(s);
  EXPECT_EQ(run1, run2) << first_divergence(run1, run2);
  EXPECT_GT(run1.size(), 0u);
}

TEST(Determinism, MixedTrafficWithCompressionIsByteIdentical) {
  WorldScenario s;
  s.seed = gcmpi::testing::test_seed();
  expect_identical_runs(s);
}

TEST(Determinism, MixedTrafficWithoutCompressionIsByteIdentical) {
  WorldScenario s;
  s.compression = false;
  s.seed = gcmpi::testing::test_seed() ^ 0x5a5a;
  expect_identical_runs(s);
}

TEST(Determinism, StressScaleWorldIsByteIdentical) {
  // test_stress-scale: more ranks, more messages, bigger payloads, more
  // collective rounds — the regime where nondeterminism from scheduling
  // or container ordering is most likely to surface.
  WorldScenario s;
  s.nodes = 6;
  s.gpus_per_node = 2;
  s.messages_per_rank = 30;
  s.max_message_values = 32768;
  s.collective_rounds = 3;
  s.seed = gcmpi::testing::test_seed() ^ 0x57e55;
  expect_identical_runs(s);
}

TEST(Determinism, FaultyWorldIsByteIdentical) {
  // The chaos regime: drops, corruption, and decompression faults all
  // active. Retransmissions, NACKs, watchdog timeouts, and raw-resend
  // fallbacks must replay identically run to run.
  WorldScenario s;
  s.seed = gcmpi::testing::test_seed() ^ 0xfa;
  s.fault_seed = 0xDEAD;
  s.max_message_values = 65536;  // more rendezvous traffic => more draws
  s.messages_per_rank = 40;
  s.fault_drop = 0.08;
  s.fault_corrupt = 0.05;
  s.fault_decompress = 0.05;
  expect_identical_runs(s);
  // The scenario must actually exercise the reliability machinery: the
  // fault_stats line only prints when at least one fault fired, and a
  // ",retransmit," row is a telemetry *event* (the summary's
  // "retransmits=" label would match a bare "retransmit" even when zero).
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find("fault_stats "), std::string::npos);
  EXPECT_NE(dump.find(",retransmit,"), std::string::npos);
}

TEST(Determinism, IdleFaultPlanMatchesNoPlan) {
  // Reliability transparency: installing an injector whose plan never
  // fires (all probabilities zero) turns on CRC computation/verification
  // but must not change one byte of the observable run — checksums are
  // charged zero virtual time and no protocol path diverges.
  WorldScenario no_plan;
  no_plan.seed = gcmpi::testing::test_seed() ^ 0x1d1e;
  WorldScenario idle_plan = no_plan;
  idle_plan.fault_seed = 123;  // installed, but every rate is 0.0
  const auto a = run_world_dump(no_plan);
  const auto b = run_world_dump(idle_plan);
  EXPECT_EQ(a, b) << first_divergence(a, b);
}

WorldScenario pipelined_scenario() {
  // Big device-resident messages on a 2-rank inter-node world: every
  // qualifying send runs the chunked pipelined rendezvous (fixed 256 KiB
  // chunks so each transfer interleaves several in-flight chunk events).
  WorldScenario s;
  s.nodes = 2;
  s.gpus_per_node = 1;
  s.messages_per_rank = 8;
  s.max_message_values = 512 * 1024;
  s.collective_rounds = 1;
  s.device_payloads = true;
  s.pipeline = true;
  s.pipeline_min_bytes = 1ull << 17;  // draw_case is log-uniform: big is rare
  s.pipeline_chunk_bytes = 128ull << 10;
  s.seed = gcmpi::testing::test_seed() ^ 0x9199;
  return s;
}

TEST(Determinism, PipelinedWorldIsByteIdentical) {
  const WorldScenario s = pipelined_scenario();
  expect_identical_runs(s);
  // The scenario must actually pipeline: the per-transfer telemetry section
  // only prints when at least one chunked rendezvous completed.
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find("pipeline_transfers="), std::string::npos);
  EXPECT_NE(dump.find(" pipelined="), std::string::npos);
}

TEST(Determinism, PipelinedFaultyWorldIsByteIdentical) {
  // Per-chunk watchdogs, NACKs, and raw-resend fallbacks interleaved with
  // in-flight chunk kernels must replay identically run to run.
  WorldScenario s = pipelined_scenario();
  s.fault_seed = 0xBEEF;
  s.fault_drop = 0.10;
  s.fault_corrupt = 0.08;
  s.fault_decompress = 0.08;
  expect_identical_runs(s);
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find("pipeline_transfers="), std::string::npos);
  EXPECT_NE(dump.find(",retransmit,"), std::string::npos);
}

TEST(Determinism, SerialDumpIsUnchangedByThePipelinePR) {
  // Two guarantees in one: (a) the serial-mode dump for a pinned scenario
  // still hashes to the digest captured before the pipelined rendezvous
  // landed (the wire format, cost charges, and dump layout are untouched),
  // and (b) enabling the pipeline on a world whose messages are all below
  // min_bytes is perfectly inert — not one byte of the dump moves.
  WorldScenario s;
  s.seed = 0xC0DEC;
  const std::string serial = run_world_dump(s);
  EXPECT_EQ(serial.size(), 14355u);
  EXPECT_EQ(gcmpi::testing::sha256_hex(
                {reinterpret_cast<const std::uint8_t*>(serial.data()), serial.size()}),
            "86008fcf193b6669198dfc159927b478afc85247be7edf779f53b3bfc29720ff");
  WorldScenario inert = s;
  inert.pipeline = true;  // enabled, but every message is below min_bytes
  const std::string with_pipeline = run_world_dump(inert);
  EXPECT_EQ(serial, with_pipeline) << first_divergence(serial, with_pipeline);
}

WorldScenario ring_scenario() {
  // Engine regime: a forced-Ring world with a device-resident 64 KiB-class
  // allreduce per round (the per-round n=1 allreduce also rides the ring,
  // exercising the empty-shard schedule).
  WorldScenario s;
  s.nodes = 2;
  s.gpus_per_node = 2;
  s.messages_per_rank = 6;
  s.collective_rounds = 2;
  s.engine_allreduce_values = 16411;
  s.collective_algorithm = static_cast<int>(core::CollectiveAlgorithm::Ring);
  s.seed = 0x5176;
  return s;
}

TEST(Determinism, RingAllreduceWorldIsByteIdentical) {
  const WorldScenario s = ring_scenario();
  expect_identical_runs(s);
  // The engine must actually have run: collective records only print when
  // ring/hierarchical collectives completed.
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find("collective_records="), std::string::npos);
  EXPECT_NE(dump.find(",ring,"), std::string::npos);
}

TEST(Determinism, HierarchicalAllreduceWorldIsByteIdentical) {
  WorldScenario s = ring_scenario();
  s.nodes = 3;
  s.collective_algorithm = static_cast<int>(core::CollectiveAlgorithm::Hierarchical);
  s.seed = 0x41E7;
  expect_identical_runs(s);
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find(",hierarchical,"), std::string::npos);
}

TEST(Determinism, RingWorldDumpMatchesPinnedDigest) {
  // Golden for the collective engine itself: the full observable dump of
  // the forced-Ring scenario is pinned, so any change to the engine's fold
  // order, cost charges, telemetry, or wire schedule shows up as a digest
  // mismatch. Update deliberately, never casually.
  const std::string dump = run_world_dump(ring_scenario());
  EXPECT_EQ(gcmpi::testing::sha256_hex(
                {reinterpret_cast<const std::uint8_t*>(dump.data()), dump.size()}),
            "c1213e83bb81756e9493d4d9fde6a748688a3962410e4a022cdc4ef3a097daf2");
}

WorldScenario alltoall_scenario() {
  // Batched-alltoall regime: a forced-BatchedPairwise world with a
  // device-resident 64 KiB-class alltoall per round, so every round runs
  // one batched compression launch per rank and the scattered pairwise
  // wire schedule.
  WorldScenario s;
  s.nodes = 2;
  s.gpus_per_node = 2;
  s.messages_per_rank = 6;
  s.collective_rounds = 2;
  s.alltoall_block_values = 16411;
  s.alltoall_algorithm = static_cast<int>(core::CollectiveAlgorithm::BatchedPairwise);
  s.seed = 0xA22A;
  return s;
}

TEST(Determinism, BatchedAlltoallWorldIsByteIdentical) {
  const WorldScenario s = alltoall_scenario();
  expect_identical_runs(s);
  // The batched engine must actually have run: "alltoall" collective
  // records only print when the BatchedPairwise path completed.
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find("collective_records="), std::string::npos);
  EXPECT_NE(dump.find("alltoall,batched"), std::string::npos);
}

TEST(Determinism, BatchedAlltoallWorldDumpMatchesPinnedDigest) {
  // Golden for the alltoall engine: the full observable dump of the
  // forced-batched scenario is pinned, so any change to compress_batch's
  // cost charges, the scattered wire schedule, the per-slice decode
  // streams, or the telemetry rows shows up as a digest mismatch. Update
  // deliberately, never casually.
  const std::string dump = run_world_dump(alltoall_scenario());
  EXPECT_EQ(gcmpi::testing::sha256_hex(
                {reinterpret_cast<const std::uint8_t*>(dump.data()), dump.size()}),
            "bd22615693184ee41457b8ff8a0632a382aa90fc6effb7a63b7c76c62b808da3");
}

WorldScenario hier_scenario() {
  // Hierarchical moving-collective regime: a forced-Hierarchical 3x2 world
  // running a device-resident 64 KiB-class bcast/allgather/gather/scatter
  // per round (rotating root), so every round exercises the per-node
  // staging slabs, the leader ring, and the batched scatter launch.
  WorldScenario s;
  s.nodes = 3;
  s.gpus_per_node = 2;
  s.messages_per_rank = 6;
  s.collective_rounds = 2;
  s.hier_block_values = 16411;
  s.hier_algorithm = static_cast<int>(core::CollectiveAlgorithm::Hierarchical);
  s.seed = 0x41E8;
  return s;
}

TEST(Determinism, HierarchicalMovingWorldIsByteIdentical) {
  const WorldScenario s = hier_scenario();
  expect_identical_runs(s);
  // The hierarchical engine must actually have run: bcast records only
  // print when the staged schedule completed.
  const auto dump = run_world_dump(s);
  EXPECT_NE(dump.find("collective_records="), std::string::npos);
  EXPECT_NE(dump.find("bcast,hierarchical"), std::string::npos);
  EXPECT_NE(dump.find("scatter,hierarchical"), std::string::npos);
}

TEST(Determinism, HierarchicalMovingWorldDumpMatchesPinnedDigest) {
  // Golden for the hierarchical moving collectives: the full observable
  // dump of the forced-Hierarchical scenario is pinned, so any change to
  // the representative tree, the leader ring, the slab staging costs, or
  // the telemetry rows shows up as a digest mismatch. Update deliberately,
  // never casually.
  const std::string dump = run_world_dump(hier_scenario());
  EXPECT_EQ(gcmpi::testing::sha256_hex(
                {reinterpret_cast<const std::uint8_t*>(dump.data()), dump.size()}),
            "9df52d9c11df81fe8a1afe9fb8d9b96854dd8ab848fdad631fdc9caf7e9c7479");
}

TEST(Determinism, AllreduceIsDeliveryOrderInvariant) {
  // Ranks enter the collective with two very different stagger patterns
  // (ascending vs descending pre-compute delays), skewing message arrival
  // orders; the canonical fold order must make the results — and the
  // oracle match — bit-identical either way.
  const std::size_t n = 16411;
  auto run_skewed = [n](bool ascending) {
    sim::Engine engine;
    mpi::WorldOptions opts;
    opts.collectives.algorithm = core::CollectiveAlgorithm::Ring;
    mpi::World world(engine, net::longhorn(2, 2), core::CompressionConfig::mpc_opt(),
                     opts);
    const int P = world.size();
    std::vector<std::vector<float>> outs(static_cast<std::size_t>(P));
    world.run([&](mpi::Rank& R) {
      const int skew = ascending ? R.rank() : (P - 1 - R.rank());
      R.compute(sim::Time::us(50.0 * skew));
      const auto mine = gcmpi::testing::make_floats(
          gcmpi::testing::PayloadKind::SmoothField, n,
          900 + static_cast<std::uint64_t>(R.rank()));
      auto* dev = static_cast<float*>(R.gpu_malloc(n * 4));
      std::memcpy(dev, mine.data(), n * 4);
      auto& out = outs[static_cast<std::size_t>(R.rank())];
      out.resize(n);
      R.allreduce(dev, out.data(), n, mpi::ReduceOp::Sum);
      R.gpu_free(dev);
    });
    return outs;
  };
  const auto a = run_skewed(true);
  const auto b = run_skewed(false);
  std::vector<std::vector<float>> contribs;
  for (int r = 0; r < 4; ++r) {
    contribs.push_back(gcmpi::testing::make_floats(
        gcmpi::testing::PayloadKind::SmoothField, n, 900 + static_cast<std::uint64_t>(r)));
  }
  const auto oracle = core::allreduce_oracle(contribs, core::ReduceOp::Sum,
                                             core::CollectiveAlgorithm::Ring);
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(std::memcmp(a[r].data(), b[r].data(), n * 4), 0) << "rank " << r;
    ASSERT_EQ(std::memcmp(a[r].data(), oracle.data(), n * 4), 0) << "rank " << r;
  }
}

TEST(Determinism, DifferentFaultSeedsProduceDifferentSchedules) {
  WorldScenario a, b;
  a.seed = b.seed = 21;
  a.fault_seed = 1;
  b.fault_seed = 2;
  a.fault_drop = b.fault_drop = 0.05;
  EXPECT_NE(run_world_dump(a), run_world_dump(b));
}

TEST(Determinism, DifferentSeedsProduceDifferentTimelines) {
  // Sanity check that the dump actually observes the traffic: two
  // different seeds must not collide (else the suite tests nothing).
  WorldScenario a, b;
  a.seed = 11;
  b.seed = 12;
  EXPECT_NE(run_world_dump(a), run_world_dump(b));
}

TEST(Determinism, EngineEventOrderIsStableAcrossRuns) {
  // Record the exact dispatch order (actor id, virtual time) of a pile of
  // same-time and staggered events; the (time, seq) ordering contract
  // means two runs give identical sequences.
  auto trace_once = [] {
    sim::Engine engine;
    std::ostringstream trace;
    sim::Rng rng(7);
    for (int a = 0; a < 32; ++a) {
      const int hops = 1 + static_cast<int>(rng.next_below(12));
      const int stride = 1 + static_cast<int>(rng.next_below(5));
      engine.spawn("actor" + std::to_string(a), [&trace, a, hops, stride](sim::ActorContext& ctx) {
        for (int h = 0; h < hops; ++h) {
          ctx.advance(sim::Time::us(static_cast<double>(stride)));
          trace << a << "@" << ctx.now().count_ns() << "\n";
        }
      });
    }
    engine.run();
    return trace.str();
  };
  const auto t1 = trace_once();
  const auto t2 = trace_once();
  EXPECT_EQ(t1, t2) << first_divergence(t1, t2);
}

TEST(Determinism, TelemetryCsvIsStableAcrossRuns) {
  auto csv_once = [] {
    WorldScenario s;
    s.messages_per_rank = 10;
    s.seed = 77;
    return run_world_dump(s);
  };
  const auto c1 = csv_once();
  const auto c2 = csv_once();
  EXPECT_EQ(c1, c2) << first_divergence(c1, c2);
  // The telemetry section must actually contain compression events.
  EXPECT_NE(c1.find("telemetry_events="), std::string::npos);
  EXPECT_EQ(c1.find("telemetry_events=0"), std::string::npos);
}

TEST(Determinism, PayloadGeneratorsAreScheduleIndependent) {
  // Generating payloads from two interleaved Rng streams must equal
  // generating them back-to-back: draw_case consumes a bounded, fixed
  // number of draws per case.
  sim::Rng a(5), b(5);
  std::vector<gcmpi::testing::PayloadCase> seq1, seq2;
  for (int i = 0; i < 50; ++i) seq1.push_back(gcmpi::testing::draw_case(a, 4096));
  for (int i = 0; i < 50; ++i) seq2.push_back(gcmpi::testing::draw_case(b, 4096));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(seq1[static_cast<std::size_t>(i)].kind, seq2[static_cast<std::size_t>(i)].kind);
    EXPECT_EQ(seq1[static_cast<std::size_t>(i)].n, seq2[static_cast<std::size_t>(i)].n);
    EXPECT_EQ(seq1[static_cast<std::size_t>(i)].seed, seq2[static_cast<std::size_t>(i)].seed);
  }
}

}  // namespace
