// Dynamic per-message scheme selection (the paper's Sec. IX future work):
// the selector must rank candidates by the Sec. II-A cost model and make
// the qualitatively right calls on known data/link combinations.
#include <gtest/gtest.h>

#include "core/dynamic.hpp"
#include "data/datasets.hpp"
#include "gpu/device.hpp"

namespace {

using namespace gcmpi;
using core::Algorithm;
using core::DynamicSelector;

TEST(DynamicSelector, EstimatesRatioFromSample) {
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  const auto sppm = data::generate("msg_sppm", 1 << 16);
  const auto plasma = data::generate("num_plasma", 1 << 16);
  EXPECT_GT(sel.estimate_mpc_ratio(sppm), 5.0);
  EXPECT_LT(sel.estimate_mpc_ratio(plasma), 2.0);
}

TEST(DynamicSelector, TinySampleDefaultsToNoRatio) {
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  std::vector<float> tiny(8, 1.0f);
  EXPECT_DOUBLE_EQ(sel.estimate_mpc_ratio(tiny), 1.0);
}

TEST(DynamicSelector, EvaluateIsSortedBestFirst) {
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  const auto candidates = sel.evaluate(16ull << 20, 1.4);
  ASSERT_GE(candidates.size(), 4u);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].predicted, candidates[i].predicted);
  }
}

TEST(DynamicSelector, PrefersNoCompressionOnNvlink) {
  // 75 GB/s: the wire beats any codec pipeline for MPC-class ratios.
  DynamicSelector sel(gpu::v100_spec(), 75.0);
  const auto best = sel.evaluate(8ull << 20, 1.5).front();
  EXPECT_EQ(best.algorithm, Algorithm::None);
}

TEST(DynamicSelector, PrefersMpcOnHighlyCompressibleSlowLink) {
  DynamicSelector sel(gpu::v100_spec(), 6.8, /*lossy_allowed=*/false);
  const auto best = sel.evaluate(16ull << 20, 20.0).front();
  EXPECT_EQ(best.algorithm, Algorithm::MPC);
}

TEST(DynamicSelector, PrefersZfpOnLowRatioData) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, /*lossy_allowed=*/true, /*min_zfp_rate=*/4);
  const auto best = sel.evaluate(16ull << 20, 1.2).front();
  EXPECT_EQ(best.algorithm, Algorithm::ZFP);
  EXPECT_EQ(best.zfp_rate, 4);  // lowest allowed rate wins on latency
}

TEST(DynamicSelector, LossyConstraintExcludesZfp) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, /*lossy_allowed=*/false);
  for (const auto& c : sel.evaluate(8ull << 20, 1.4)) {
    EXPECT_NE(c.algorithm, Algorithm::ZFP);
  }
}

TEST(DynamicSelector, MinRateConstraintRespected) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, true, /*min_zfp_rate=*/8);
  for (const auto& c : sel.evaluate(8ull << 20, 1.4)) {
    if (c.algorithm == Algorithm::ZFP) EXPECT_GE(c.zfp_rate, 8);
  }
}

TEST(DynamicSelector, ApplyWritesConfig) {
  core::CompressionConfig cfg = core::CompressionConfig::mpc_opt();
  core::CandidateCost zfp{Algorithm::ZFP, 8, 4.0, sim::Time::us(10)};
  DynamicSelector::apply(zfp, cfg);
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.algorithm, Algorithm::ZFP);
  EXPECT_EQ(cfg.zfp_rate, 8);

  core::CandidateCost none{Algorithm::None, 0, 1.0, sim::Time::us(10)};
  DynamicSelector::apply(none, cfg);
  EXPECT_FALSE(cfg.enabled);
}

TEST(DynamicSelector, ChooseEndToEnd) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, true, 8);
  const auto sppm = data::generate("msg_sppm", (8u << 20) / 4);
  const auto choice = sel.choose(sppm);
  // CR ~9-11 lossless vs CR 4 lossy at rate 8: MPC should win or at least
  // compression must be on.
  EXPECT_NE(choice.algorithm, Algorithm::None);
}

}  // namespace
