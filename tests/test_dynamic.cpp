// Dynamic per-message scheme selection (the paper's Sec. IX future work):
// the selector must rank candidates by the Sec. II-A cost model and make
// the qualitatively right calls on known data/link combinations.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "compress/mpc.hpp"
#include "core/dynamic.hpp"
#include "data/datasets.hpp"
#include "gpu/device.hpp"
#include "sim/rng.hpp"
#include "support/payloads.hpp"

namespace {

using namespace gcmpi;
namespace tsup = gcmpi::testing;
using core::Algorithm;
using core::DynamicSelector;

TEST(DynamicSelector, EstimatesRatioFromSample) {
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  const auto sppm = data::generate("msg_sppm", 1 << 16);
  const auto plasma = data::generate("num_plasma", 1 << 16);
  EXPECT_GT(sel.estimate_mpc_ratio(sppm), 5.0);
  EXPECT_LT(sel.estimate_mpc_ratio(plasma), 2.0);
}

TEST(DynamicSelector, TinySampleDefaultsToNoRatio) {
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  std::vector<float> tiny(8, 1.0f);
  EXPECT_DOUBLE_EQ(sel.estimate_mpc_ratio(tiny), 1.0);
}

TEST(DynamicSelector, EvaluateIsSortedBestFirst) {
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  const auto candidates = sel.evaluate(16ull << 20, 1.4);
  ASSERT_GE(candidates.size(), 4u);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].predicted, candidates[i].predicted);
  }
}

TEST(DynamicSelector, PrefersNoCompressionOnNvlink) {
  // 75 GB/s: the wire beats any codec pipeline for MPC-class ratios.
  DynamicSelector sel(gpu::v100_spec(), 75.0);
  const auto best = sel.evaluate(8ull << 20, 1.5).front();
  EXPECT_EQ(best.algorithm, Algorithm::None);
}

TEST(DynamicSelector, PrefersMpcOnHighlyCompressibleSlowLink) {
  DynamicSelector sel(gpu::v100_spec(), 6.8, /*lossy_allowed=*/false);
  const auto best = sel.evaluate(16ull << 20, 20.0).front();
  EXPECT_EQ(best.algorithm, Algorithm::MPC);
}

TEST(DynamicSelector, PrefersZfpOnLowRatioData) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, /*lossy_allowed=*/true, /*min_zfp_rate=*/4);
  const auto best = sel.evaluate(16ull << 20, 1.2).front();
  EXPECT_EQ(best.algorithm, Algorithm::ZFP);
  EXPECT_EQ(best.zfp_rate, 4);  // lowest allowed rate wins on latency
}

TEST(DynamicSelector, LossyConstraintExcludesZfp) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, /*lossy_allowed=*/false);
  for (const auto& c : sel.evaluate(8ull << 20, 1.4)) {
    EXPECT_NE(c.algorithm, Algorithm::ZFP);
  }
}

TEST(DynamicSelector, MinRateConstraintRespected) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, true, /*min_zfp_rate=*/8);
  for (const auto& c : sel.evaluate(8ull << 20, 1.4)) {
    if (c.algorithm == Algorithm::ZFP) {
      EXPECT_GE(c.zfp_rate, 8);
    }
  }
}

TEST(DynamicSelector, ApplyWritesConfig) {
  core::CompressionConfig cfg = core::CompressionConfig::mpc_opt();
  core::CandidateCost zfp{Algorithm::ZFP, 8, 4.0, sim::Time::us(10)};
  DynamicSelector::apply(zfp, cfg);
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.algorithm, Algorithm::ZFP);
  EXPECT_EQ(cfg.zfp_rate, 8);

  core::CandidateCost none{Algorithm::None, 0, 1.0, sim::Time::us(10)};
  DynamicSelector::apply(none, cfg);
  EXPECT_FALSE(cfg.enabled);
}

TEST(DynamicSelectorProperty, ChooseNeverPicksLossyWhenLossyDisallowed) {
  // Property: with lossy_allowed=false, neither choose() nor any candidate
  // evaluate() emits may be ZFP (the only lossy scheme the selector knows),
  // regardless of payload shape, message size, or link bandwidth.
  sim::Rng rng(tsup::test_seed() ^ 0xd15aULL);
  const double bandwidths[] = {1.0, 6.8, 12.5, 25.0, 75.0, 300.0};
  for (int c = 0; c < 60; ++c) {
    const auto pc = tsup::draw_case(rng, 1 << 16, /*finite_only=*/true);
    const auto payload = tsup::make_floats(pc.kind, pc.n, pc.seed);
    const double gbs = bandwidths[rng.next_below(6)];
    DynamicSelector sel(gpu::v100_spec(), gbs, /*lossy_allowed=*/false);
    const auto choice = sel.choose(payload);
    EXPECT_NE(choice.algorithm, Algorithm::ZFP)
        << "lossy pick for kind=" << static_cast<int>(pc.kind) << " n=" << pc.n
        << " seed=" << pc.seed << " gbs=" << gbs;
    const std::uint64_t bytes = std::max<std::uint64_t>(payload.size() * 4, 1);
    for (const auto& cand : sel.evaluate(bytes, 1.4)) {
      EXPECT_NE(cand.algorithm, Algorithm::ZFP)
          << "lossy candidate surfaced at bytes=" << bytes << " gbs=" << gbs;
    }
  }
}

TEST(DynamicSelectorProperty, ConstantBufferEstimateLowerBoundsFullRatio) {
  // Property: on a constant buffer MPC compresses every chunk identically,
  // so the sampled-prefix estimate must track the true full-buffer ratio —
  // never undershooting its lower bound (15% slack for the per-buffer
  // header amortization difference between sample and full sizes).
  sim::Rng rng(tsup::test_seed() ^ 0xc057ULL);
  DynamicSelector sel(gpu::v100_spec(), 12.5);
  const float constants[] = {0.0f, 1.0f, -2.75f, 3.14159e7f, 1.0e-38f, -6.25e-3f};
  for (int c = 0; c < 24; ++c) {
    const std::size_t n = 16384 + rng.next_below(1u << 18);
    const std::vector<float> buf(n, constants[rng.next_below(6)]);
    const double est = sel.estimate_mpc_ratio(buf);
    const comp::MpcCodec codec(1);
    std::vector<std::uint8_t> out(codec.max_compressed_bytes(n));
    const std::size_t full_bytes = codec.compress(buf, out);
    const double full = static_cast<double>(n * 4) / static_cast<double>(full_bytes);
    EXPECT_GE(est, full * 0.85)
        << "estimate " << est << " undershoots full ratio " << full << " at n=" << n
        << " value=" << buf[0];
    EXPECT_GT(est, 1.0) << "constant data must be seen as compressible, n=" << n;
  }
}

TEST(DynamicSelector, ChooseEndToEnd) {
  DynamicSelector sel(gpu::v100_spec(), 12.5, true, 8);
  const auto sppm = data::generate("msg_sppm", (8u << 20) / 4);
  const auto choice = sel.choose(sppm);
  // CR ~9-11 lossless vs CR 4 lossy at rate 8: MPC should win or at least
  // compression must be on.
  EXPECT_NE(choice.algorithm, Algorithm::None);
}

// --- alltoall algorithm choice (batched one-shot vs naive pairwise) ---

TEST(DynamicSelector, AlltoallPicksNaiveBelowTheCompressionFloor) {
  const DynamicSelector sel(gpu::v100_spec(), 12.5);
  // Below 256 KiB blocks the launch amortization can't pay for itself;
  // measured crossover on the V100 model.
  EXPECT_EQ(sel.choose_alltoall_algorithm(128u << 10, 8, 8.0),
            core::CollectiveAlgorithm::Linear);
  // Incompressible data and trivial worlds also stay naive.
  EXPECT_EQ(sel.choose_alltoall_algorithm(8u << 20, 8, 1.0),
            core::CollectiveAlgorithm::Linear);
  EXPECT_EQ(sel.choose_alltoall_algorithm(8u << 20, 2, 8.0),
            core::CollectiveAlgorithm::Linear);
}

TEST(DynamicSelector, AlltoallCrossoverMonotoneInBlockSize) {
  // Once the cost model prefers the batched engine at some block size, it
  // must keep preferring it for every larger block (the per-launch savings
  // only grow): exactly one Linear -> BatchedPairwise transition.
  const DynamicSelector sel(gpu::v100_spec(), 12.5);
  bool batched_seen = false;
  bool crossed_back = false;
  for (std::uint64_t bytes = 64u << 10; bytes <= (64ull << 20); bytes *= 2) {
    const auto got = sel.choose_alltoall_algorithm(bytes, 8, 4.0);
    if (got == core::CollectiveAlgorithm::BatchedPairwise) {
      batched_seen = true;
    } else if (batched_seen) {
      crossed_back = true;
    }
  }
  EXPECT_TRUE(batched_seen) << "batched never chosen up to 64 MiB blocks";
  EXPECT_FALSE(crossed_back) << "choice flipped back to naive at a larger block";
}

TEST(DynamicSelector, AlltoallCrossoverMonotoneInRanks) {
  // More destinations means more serialized launches saved: once batched
  // wins at some P it must keep winning for every larger P.
  const DynamicSelector sel(gpu::v100_spec(), 12.5);
  bool batched_seen = false;
  bool crossed_back = false;
  for (int ranks = 2; ranks <= 64; ++ranks) {
    const auto got = sel.choose_alltoall_algorithm(4u << 20, ranks, 4.0);
    if (got == core::CollectiveAlgorithm::BatchedPairwise) {
      batched_seen = true;
    } else if (batched_seen) {
      crossed_back = true;
    }
  }
  EXPECT_TRUE(batched_seen) << "batched never chosen up to 64 ranks";
  EXPECT_FALSE(crossed_back) << "choice flipped back to naive at a larger P";
}

}  // namespace
