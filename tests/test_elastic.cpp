// Elastic (9-field velocity-stress) solver tests: physics sanity,
// staggered-grid halo pack/unpack, bitwise serial-vs-distributed
// equivalence, and compression transparency.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "apps/awp/distributed.hpp"
#include "apps/awp/elastic.hpp"
#include "mpi/world.hpp"

namespace {

using namespace gcmpi;
using namespace gcmpi::apps::awp;

struct EFields {
  Grid g;
  std::vector<float> storage;
  explicit EFields(Grid grid) : g(grid), storage(ElasticSolver::storage_floats(grid), 0.0f) {}
  ElasticSolver solver(ElasticParams params = {}) { return {g, params, storage}; }
};

void step(ElasticSolver& s, bool all_walls = true) {
  s.apply_rigid_boundary(all_walls, all_walls, all_walls, all_walls);
  s.step_velocity();
  s.apply_rigid_boundary(all_walls, all_walls, all_walls, all_walls);
  s.step_stress();
}

TEST(Elastic, WaveSpeeds) {
  ElasticParams p;
  p.rho = 1.0;
  p.lambda = 2.0;
  p.mu = 1.0;
  EXPECT_DOUBLE_EQ(p.vp(), 2.0);
  EXPECT_DOUBLE_EQ(p.vs(), 1.0);
}

TEST(Elastic, RejectsBadSetups) {
  EFields f({8, 8, 8});
  ElasticParams bad;
  bad.dt = 1.0;  // CFL violation at vp = sqrt(3)
  EXPECT_THROW(f.solver(bad), std::invalid_argument);
  std::vector<float> tiny(64);
  EXPECT_THROW(ElasticSolver({8, 8, 8}, {}, tiny), std::invalid_argument);
}

TEST(Elastic, QuiescentStaysQuiescent) {
  EFields f({8, 8, 8});
  auto s = f.solver();
  for (int i = 0; i < 12; ++i) step(s);
  for (float x : f.storage) EXPECT_EQ(x, 0.0f);
}

TEST(Elastic, PulseRadiatesPAndSWaves) {
  EFields f({20, 20, 20});
  auto s = f.solver();
  s.inject_pulse(10, 10, 10, 1.0, 2.0);
  const double e0 = s.energy();
  ASSERT_GT(e0, 0.0);
  float far_before = 0.0f;
  for (std::ptrdiff_t k = 0; k < 20; ++k) {
    far_before = std::max(far_before, std::fabs(s.field(ElasticSolver::Vx)[f.g.at(2, 10, k)]));
  }
  for (int i = 0; i < 25; ++i) step(s);
  float far_after = 0.0f;
  for (std::ptrdiff_t k = 0; k < 20; ++k) {
    far_after = std::max(far_after, std::fabs(s.field(ElasticSolver::Vx)[f.g.at(2, 10, k)]));
  }
  EXPECT_GT(far_after, far_before);  // motion reached the far region
  const double e1 = s.energy();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_GT(e1, 0.2 * e0);  // no collapse
  EXPECT_LT(e1, 3.0 * e0);  // no blow-up
}

TEST(Elastic, IsotropicPulseKeepsXySymmetry) {
  // An isotropic source in a cube with identical boundaries: the solution
  // must stay symmetric under swapping x and y.
  EFields f({12, 12, 12});
  auto s = f.solver();
  s.inject_pulse(6, 6, 6, 1.0, 2.0);
  for (int i = 0; i < 10; ++i) step(s);
  const auto sxx = s.field(ElasticSolver::Sxx);
  const auto syy = s.field(ElasticSolver::Syy);
  for (std::ptrdiff_t k = 0; k < 12; ++k) {
    for (std::ptrdiff_t j = 0; j < 12; ++j) {
      for (std::ptrdiff_t i = 0; i < 12; ++i) {
        ASSERT_FLOAT_EQ(sxx[f.g.at(i, j, k)], syy[f.g.at(j, i, k)])
            << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Elastic, PackUnpackRoundTrip) {
  EFields a({5, 6, 7}), b({5, 6, 7});
  auto sa = a.solver();
  auto sb = b.solver();
  sa.inject_pulse(2, 3, 3, 1.0, 1.5);
  for (int i = 0; i < 3; ++i) step(sa);

  std::vector<float> xbuf(sa.x_face_values());
  sa.pack_x(true, xbuf);
  sb.unpack_x(false, xbuf);
  for (std::ptrdiff_t k = 0; k < 7; ++k) {
    for (std::ptrdiff_t j = 0; j < 6; ++j) {
      EXPECT_EQ(sb.field(ElasticSolver::Sxz)[b.g.at(-1, j, k)],
                sa.field(ElasticSolver::Sxz)[a.g.at(4, j, k)]);
      EXPECT_EQ(sb.field(ElasticSolver::Vy)[b.g.at(-1, j, k)],
                sa.field(ElasticSolver::Vy)[a.g.at(4, j, k)]);
    }
  }
  std::vector<float> ybuf(sa.y_face_values());
  sa.pack_y(false, ybuf);
  sb.unpack_y(true, ybuf);
  for (std::ptrdiff_t k = 0; k < 7; ++k) {
    for (std::ptrdiff_t i = 0; i < 5; ++i) {
      EXPECT_EQ(sb.field(ElasticSolver::Syz)[b.g.at(i, 6, k)],
                sa.field(ElasticSolver::Syz)[a.g.at(i, 0, k)]);
    }
  }
}

TEST(ElasticDistributed, MatchesSerialBitwise) {
  const Grid local{6, 6, 10};
  const int px = 2, py = 2;
  const Grid global{local.nx * px, local.ny * py, local.nz};
  const int steps = 5;
  ElasticParams phys;
  phys.dt = 0.15;  // matches run_elastic's halved acoustic default

  // Serial reference.
  EFields ref(global);
  auto rs = ref.solver(phys);
  rs.inject_pulse(static_cast<std::ptrdiff_t>(global.nx / 2),
                  static_cast<std::ptrdiff_t>(global.ny / 2),
                  static_cast<std::ptrdiff_t>(global.nz / 2), 1.0, 3.0);
  for (int s = 0; s < steps; ++s) step(rs);

  // Distributed run via run_elastic cannot expose fields, so replicate its
  // loop with captured storage (same order of operations).
  sim::Engine engine;
  mpi::World world(engine, net::longhorn(4, 1), core::CompressionConfig::off());
  std::vector<std::vector<float>> captured(4);
  world.run([&](mpi::Rank& R) {
    const int cx = R.rank() % px, cy = R.rank() / px;
    EFields f(local);
    auto s = f.solver(phys);
    s.inject_pulse(static_cast<std::ptrdiff_t>(global.nx / 2) - cx * static_cast<std::ptrdiff_t>(local.nx),
                   static_cast<std::ptrdiff_t>(global.ny / 2) - cy * static_cast<std::ptrdiff_t>(local.ny),
                   static_cast<std::ptrdiff_t>(local.nz / 2), 1.0, 3.0);
    const std::size_t xv = s.x_face_values(), yv = s.y_face_values();
    std::vector<float> sxm(xv), sxp(xv), rxm(xv), rxp(xv), sym(yv), syp(yv), rym(yv), ryp(yv);
    const int xm = cx > 0 ? R.rank() - 1 : -1;
    const int xp = cx < px - 1 ? R.rank() + 1 : -1;
    const int ym = cy > 0 ? R.rank() - px : -1;
    const int yp = cy < py - 1 ? R.rank() + px : -1;
    auto exchange = [&] {
      std::vector<mpi::Request> reqs;
      if (xm >= 0) reqs.push_back(R.irecv(rxm.data(), xv * 4, xm, 2));
      if (xp >= 0) reqs.push_back(R.irecv(rxp.data(), xv * 4, xp, 1));
      if (ym >= 0) reqs.push_back(R.irecv(rym.data(), yv * 4, ym, 4));
      if (yp >= 0) reqs.push_back(R.irecv(ryp.data(), yv * 4, yp, 3));
      if (xm >= 0) { s.pack_x(false, sxm); reqs.push_back(R.isend(sxm.data(), xv * 4, xm, 1)); }
      if (xp >= 0) { s.pack_x(true, sxp); reqs.push_back(R.isend(sxp.data(), xv * 4, xp, 2)); }
      if (ym >= 0) { s.pack_y(false, sym); reqs.push_back(R.isend(sym.data(), yv * 4, ym, 3)); }
      if (yp >= 0) { s.pack_y(true, syp); reqs.push_back(R.isend(syp.data(), yv * 4, yp, 4)); }
      R.waitall(reqs);
      if (xm >= 0) s.unpack_x(false, rxm);
      if (xp >= 0) s.unpack_x(true, rxp);
      if (ym >= 0) s.unpack_y(false, rym);
      if (yp >= 0) s.unpack_y(true, ryp);
    };
    for (int st = 0; st < steps; ++st) {
      exchange();
      s.apply_rigid_boundary(cx == 0, cx == px - 1, cy == 0, cy == py - 1);
      s.step_velocity();
      exchange();
      s.apply_rigid_boundary(cx == 0, cx == px - 1, cy == 0, cy == py - 1);
      s.step_stress();
    }
    captured[static_cast<std::size_t>(R.rank())] = f.storage;
  });

  // Compare every interior value of every field, bitwise.
  int mismatches = 0;
  for (int r = 0; r < 4; ++r) {
    const int cx = r % px, cy = r / px;
    EFields f(local);
    f.storage = captured[static_cast<std::size_t>(r)];
    auto sd = f.solver(phys);
    for (int fl = 0; fl < ElasticSolver::kFields; ++fl) {
      const auto field = static_cast<ElasticSolver::Field>(fl);
      const auto dist = sd.field(field);
      const auto serial = rs.field(field);
      for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(local.nz); ++k) {
        for (std::ptrdiff_t j = 0; j < static_cast<std::ptrdiff_t>(local.ny); ++j) {
          for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(local.nx); ++i) {
            const float a = dist[local.at(i, j, k)];
            const float b =
                serial[global.at(i + cx * static_cast<std::ptrdiff_t>(local.nx),
                                 j + cy * static_cast<std::ptrdiff_t>(local.ny), k)];
            if (std::memcmp(&a, &b, 4) != 0) ++mismatches;
          }
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(ElasticDistributed, RunElasticReportsAndLosslessCompression) {
  auto run_one = [&](core::CompressionConfig cfg) {
    sim::Engine engine;
    mpi::World world(engine, net::longhorn(4, 1), cfg);
    float energy = 0;
    world.run([&](mpi::Rank& R) {
      AwpConfig c;
      c.local = {8, 8, 48};
      c.px = 2;
      c.py = 2;
      c.steps = 4;
      auto rep = apps::awp::run_elastic(R, c);
      if (R.rank() == 0) energy = static_cast<float>(rep.final_energy);
    });
    return energy;
  };
  core::CompressionConfig mpc = core::CompressionConfig::mpc_opt();
  mpc.threshold_bytes = 4096;
  const float base = run_one(core::CompressionConfig::off());
  const float compressed = run_one(mpc);
  EXPECT_GT(base, 0.0f);
  EXPECT_EQ(base, compressed);  // MPC lossless => identical physics
}

}  // namespace
