// FaultInjector unit tests: deterministic scheduling (same seed => same
// verdict sequence, independent of interleaving), statistical sanity of
// the fault rates, link-state windows through the Fabric, and the codec
// fault streams.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "net/cluster.hpp"

namespace {

using namespace gcmpi;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::LinkFaultWindow;
using fault::PacketFault;
using sim::Time;

std::vector<PacketFault> schedule(FaultInjector& inj, int src, int dst, int n) {
  std::vector<PacketFault> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(inj.on_data_packet(src, dst));
  return out;
}

bool same_verdicts(const std::vector<PacketFault>& a, const std::vector<PacketFault>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].drop != b[i].drop || a[i].corrupt != b[i].corrupt ||
        a[i].corrupt_bits != b[i].corrupt_bits ||
        a[i].extra_latency != b[i].extra_latency) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const FaultPlan plan = FaultPlan::lossy(42, 0.1, 0.05);
  FaultInjector a(plan), b(plan);
  EXPECT_TRUE(same_verdicts(schedule(a, 0, 1, 500), schedule(b, 0, 1, 500)));
  EXPECT_TRUE(same_verdicts(schedule(a, 3, 2, 500), schedule(b, 3, 2, 500)));
}

TEST(FaultInjector, DifferentSeedsDifferentSchedules) {
  FaultInjector a(FaultPlan::lossy(1, 0.1, 0.05));
  FaultInjector b(FaultPlan::lossy(2, 0.1, 0.05));
  EXPECT_FALSE(same_verdicts(schedule(a, 0, 1, 500), schedule(b, 0, 1, 500)));
}

TEST(FaultInjector, LinksAreIndependentStreams) {
  // The verdicts for link 0->1 must not change when traffic on other links
  // is interleaved between its packets: each (kind, src, dst) stream has
  // its own counter.
  const FaultPlan plan = FaultPlan::lossy(7, 0.2, 0.1);
  FaultInjector solo(plan);
  const auto expected = schedule(solo, 0, 1, 300);

  FaultInjector interleaved(plan);
  std::vector<PacketFault> got;
  for (int i = 0; i < 300; ++i) {
    (void)interleaved.on_data_packet(2, 3);  // noise on another link
    got.push_back(interleaved.on_data_packet(0, 1));
    (void)interleaved.on_data_packet(1, 0);  // reverse direction is separate too
  }
  EXPECT_TRUE(same_verdicts(expected, got));
}

TEST(FaultInjector, RatesApproximateProbabilities) {
  FaultInjector inj(FaultPlan::lossy(1234, 0.05, 0.03));
  const int n = 20'000;
  (void)schedule(inj, 0, 1, n);
  const auto& s = inj.stats();
  EXPECT_EQ(s.data_packets, static_cast<std::uint64_t>(n));
  // 3-sigma band around the expected counts.
  EXPECT_NEAR(static_cast<double>(s.drops), 0.05 * n, 3 * std::sqrt(0.05 * 0.95 * n));
  // Corruption draws only happen on non-dropped packets (~0.95 * n of them).
  EXPECT_NEAR(static_cast<double>(s.corruptions), 0.03 * 0.95 * n,
              3 * std::sqrt(0.03 * 0.97 * n));
}

TEST(FaultInjector, DropPrecludesCorruptionOnSamePacket) {
  FaultPlan plan;
  plan.drop_probability = 1.0;
  plan.corrupt_probability = 1.0;
  FaultInjector inj(plan);
  for (int i = 0; i < 50; ++i) {
    const auto f = inj.on_data_packet(0, 1);
    EXPECT_TRUE(f.drop);
    EXPECT_FALSE(f.corrupt);
  }
}

TEST(FaultInjector, CertainLatencySpikeAlwaysFires) {
  FaultPlan plan;
  plan.latency_spike_probability = 1.0;
  plan.latency_spike = Time::us(50);
  FaultInjector inj(plan);
  EXPECT_EQ(inj.timing_fault(0, 1), Time::us(50));
  const auto f = inj.on_data_packet(0, 1);
  EXPECT_EQ(f.extra_latency, Time::us(50));
  EXPECT_FALSE(f.drop);
  EXPECT_FALSE(f.corrupt);
}

TEST(FaultInjector, IdlePlanIsTransparent) {
  // With every probability zero, no draws are consumed and every verdict
  // is clean — the injector is a pure pass-through.
  FaultInjector inj(FaultPlan{});
  for (int i = 0; i < 100; ++i) {
    const auto f = inj.on_data_packet(0, 1);
    EXPECT_FALSE(f.drop);
    EXPECT_FALSE(f.corrupt);
    EXPECT_EQ(f.extra_latency, Time::zero());
    EXPECT_EQ(inj.timing_fault(0, 1), Time::zero());
    EXPECT_FALSE(inj.on_decompress(0));
    EXPECT_FALSE(inj.on_compress(0).any());
  }
  EXPECT_EQ(inj.stats().drops, 0u);
  EXPECT_EQ(inj.stats().corruptions, 0u);
  EXPECT_EQ(inj.stats().latency_spikes, 0u);
}

TEST(FaultInjector, CodecFaultStreams) {
  FaultPlan plan;
  plan.compress_fail_probability = 1.0;
  plan.decompress_fail_probability = 1.0;
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.on_compress(0).fail);
  EXPECT_TRUE(inj.on_decompress(0));
  EXPECT_EQ(inj.stats().compress_faults, 1u);
  EXPECT_EQ(inj.stats().decompress_faults, 1u);

  FaultPlan trunc;
  trunc.compress_truncate_probability = 1.0;
  FaultInjector inj2(trunc);
  const auto f = inj2.on_compress(3);
  EXPECT_FALSE(f.fail);
  EXPECT_TRUE(f.truncate);
}

TEST(FaultInjector, CodecRatesApproximateProbability) {
  FaultPlan plan;
  plan.decompress_fail_probability = 0.1;
  FaultInjector inj(plan);
  const int n = 20'000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += inj.on_decompress(2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits), 0.1 * n, 3 * std::sqrt(0.1 * 0.9 * n));
}

TEST(FaultWindows, DownWindowDefersTransferStart) {
  FaultPlan plan;
  plan.windows.push_back(LinkFaultWindow{-1, Time::zero(), Time::us(100), 1.0, true});
  fault::FaultInjector inj(plan);

  const net::ClusterSpec c = net::longhorn(2, 1);
  net::Fabric clean(c);
  net::Fabric faulty(c);
  faulty.set_fault_injector(&inj);

  const std::uint64_t bytes = 1 << 20;
  const Time t_clean = clean.transfer(Time::zero(), 0, 1, bytes);
  const Time t_faulty = faulty.transfer(Time::zero(), 0, 1, bytes);
  // The NIC flap pushes the start from 0 to the window's end.
  EXPECT_EQ(t_faulty, t_clean + Time::us(100));
  EXPECT_EQ(inj.stats().stalls, 1u);

  // A transfer starting after the window is unaffected.
  net::Fabric faulty2(c);
  faulty2.set_fault_injector(&inj);
  EXPECT_EQ(faulty2.transfer(Time::us(200), 0, 1, bytes),
            clean.transfer(Time::us(200), 0, 1, bytes) + Time::zero());
}

TEST(FaultWindows, DegradedWindowStretchesWireTime) {
  FaultPlan plan;
  plan.windows.push_back(LinkFaultWindow{0, Time::zero(), Time::seconds(10), 0.5, false});
  fault::FaultInjector inj(plan);

  const net::ClusterSpec c = net::longhorn(2, 1);
  net::Fabric clean(c);
  net::Fabric degraded(c);
  degraded.set_fault_injector(&inj);

  const std::uint64_t bytes = 12'500'000;  // 1 ms of EDR wire time
  const Time t_clean = clean.transfer(Time::zero(), 0, 1, bytes);
  const Time t_degraded = degraded.transfer(Time::zero(), 0, 1, bytes);
  EXPECT_GT(t_degraded, t_clean);
  // Serialization term roughly doubles at half bandwidth.
  EXPECT_NEAR(static_cast<double>((t_degraded - t_clean).count_ns()), 1e6, 5e4);
  EXPECT_EQ(inj.stats().degradations, 1u);
}

TEST(FaultWindows, IntraNodeTransfersIgnoreWindows) {
  FaultPlan plan;
  plan.windows.push_back(LinkFaultWindow{-1, Time::zero(), Time::seconds(1), 1.0, true});
  fault::FaultInjector inj(plan);
  const net::ClusterSpec c = net::longhorn(1, 2);  // both ranks on one node
  net::Fabric clean(c);
  net::Fabric faulty(c);
  faulty.set_fault_injector(&inj);
  const Time a = clean.transfer(Time::zero(), 0, 1, 1 << 20);
  const Time b = faulty.transfer(Time::zero(), 0, 1, 1 << 20);
  EXPECT_EQ(a, b);  // NVLink path has no NIC to flap
}

TEST(FaultInjector, DroppedDataPacketsStillOccupyPorts) {
  // A dropped rendezvous payload was transmitted and then lost: the ports
  // stay busy, so a later packet queues behind it exactly as if delivered.
  FaultPlan plan;
  plan.drop_probability = 1.0;
  fault::FaultInjector inj(plan);
  const net::ClusterSpec c = net::longhorn(2, 1);
  net::Fabric fabric(c);
  fabric.set_fault_injector(&inj);

  const std::uint64_t bytes = 12'500'000;  // ~1 ms each
  const auto first = fabric.transfer_data(Time::zero(), 0, 1, bytes);
  EXPECT_TRUE(first.dropped);
  const auto second = fabric.transfer_data(Time::zero(), 0, 1, bytes);
  EXPECT_GT(second.at, first.at);  // queued behind the lost packet
}

}  // namespace
